file(REMOVE_RECURSE
  "libartmt_stats.a"
)
