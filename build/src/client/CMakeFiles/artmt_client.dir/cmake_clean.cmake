file(REMOVE_RECURSE
  "CMakeFiles/artmt_client.dir/client_node.cpp.o"
  "CMakeFiles/artmt_client.dir/client_node.cpp.o.d"
  "CMakeFiles/artmt_client.dir/compiler.cpp.o"
  "CMakeFiles/artmt_client.dir/compiler.cpp.o.d"
  "CMakeFiles/artmt_client.dir/memsync.cpp.o"
  "CMakeFiles/artmt_client.dir/memsync.cpp.o.d"
  "CMakeFiles/artmt_client.dir/service.cpp.o"
  "CMakeFiles/artmt_client.dir/service.cpp.o.d"
  "libartmt_client.a"
  "libartmt_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmt_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
