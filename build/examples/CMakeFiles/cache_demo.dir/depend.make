# Empty dependencies file for cache_demo.
# This may be replaced when dependencies are built.
