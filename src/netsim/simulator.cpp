#include "netsim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace artmt::netsim {

void Simulator::schedule_at(SimTime at, Action action) {
  if (at < now_) {
    throw UsageError("Simulator::schedule_at: time is in the past");
  }
  if (action.heap_allocated()) ++actions_spilled_;
  queue_.push_back(Event{at, next_seq_++, std::move(action)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

void Simulator::schedule_after(SimTime delay, Action action) {
  if (delay < 0) {
    throw UsageError("Simulator::schedule_after: negative delay");
  }
  schedule_at(now_ + delay, std::move(action));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  now_ = ev.at;
  ev.action();
  return true;
}

void Simulator::run_until(SimTime until) {
  while (!queue_.empty() && queue_.front().at <= until) {
    step();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace artmt::netsim
