file(REMOVE_RECURSE
  "libartmt_alloc.a"
)
