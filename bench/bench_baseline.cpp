// Head-to-head: ActiveRMT's runtime provisioning vs the monolithic-P4
// deployment model it replaces (Sections 1, 6.1, 6.2) -- deployment
// latency, blast radius of a change, instance capacity, and memory
// stranding under churn.
#include <cstdio>

#include "baseline/monolithic.hpp"
#include "baseline/netvrm.hpp"
#include "controller/controller.hpp"
#include "harness.hpp"

namespace artmt::bench {
namespace {

void deployment_latency() {
  std::printf("\n## Deployment latency for the next service\n");
  rmt::Pipeline pipeline{rmt::PipelineConfig{}};
  runtime::ActiveRuntime runtime(pipeline);
  controller::Controller ctrl(pipeline, runtime);
  baseline::MonolithicBaseline mono;

  // Load the switch with 20 caches, then time the 21st.
  for (int i = 0; i < 20; ++i) {
    ctrl.admit(apps::cache_request());
    if (ctrl.has_pending()) {
      ctrl.timeout_pending();
      ctrl.apply_pending();
    }
  }
  const auto result = ctrl.admit(apps::cache_request());
  if (ctrl.has_pending()) {
    ctrl.timeout_pending();
    ctrl.apply_pending();
  }
  const double active_s =
      static_cast<double>(result.provisioning_time()) / kSecond;
  const double mono_s =
      static_cast<double>(mono.redeployment_latency()) / kSecond;
  std::printf("ActiveRMT (21st cache, incl. reallocations): %.3f s\n",
              active_s);
  std::printf("monolithic P4 (recompile + re-provision):    %.2f s\n",
              mono_s);
  std::printf("speedup: %.0fx\n", mono_s / active_s);
}

void blast_radius() {
  std::printf("\n## Blast radius of deploying one more service\n");
  rmt::Pipeline pipeline{rmt::PipelineConfig{}};
  runtime::ActiveRuntime runtime(pipeline);
  controller::Controller ctrl(pipeline, runtime);
  for (int i = 0; i < 20; ++i) {
    ctrl.admit(apps::cache_request());
    if (ctrl.has_pending()) {
      ctrl.timeout_pending();
      ctrl.apply_pending();
    }
  }
  const auto result = ctrl.admit(apps::cache_request());
  if (ctrl.has_pending()) {
    ctrl.timeout_pending();
    ctrl.apply_pending();
  }
  baseline::MonolithicBaseline mono;
  std::printf(
      "ActiveRMT: %zu of %u resident services briefly paused; all other "
      "traffic untouched\n",
      result.disturbed.size(), ctrl.allocator().resident_count());
  std::printf(
      "monolithic P4: every service and ALL transit traffic blacked out "
      "for %lld ms\n",
      static_cast<long long>(mono.traffic_disruption() / kMillisecond));
}

void capacity() {
  std::printf("\n## Cache-instance capacity\n");
  baseline::MonolithicBaseline mono;
  std::printf("monolithic P4 (isolated instances): %u\n",
              mono.max_instances(baseline::StaticApp{2, 2, 0}));
  alloc::Allocator allocator(kGeometry, kBlocksPerStage);
  u32 admitted = 0;
  for (int i = 0; i < 500; ++i) {
    if (allocator.allocate(apps::cache_request()).success) ++admitted;
  }
  std::printf("ActiveRMT (elastic, 500 arrivals): %u admitted, utilization "
              "%.2f\n",
              admitted, allocator.utilization());
}

void stranded_memory() {
  std::printf("\n## Memory stranding when half the tenants depart\n");
  baseline::MonolithicBaseline mono;
  const baseline::StaticApp cache{2, 2, 0};
  std::printf("monolithic P4: utilization %.2f -> %.2f (stranded until the "
              "next recompile)\n",
              mono.static_utilization(cache, 22, 22),
              mono.static_utilization(cache, 22, 11));

  alloc::Allocator allocator(kGeometry, kBlocksPerStage);
  std::vector<alloc::AppId> apps_ids;
  for (int i = 0; i < 22; ++i) {
    const auto out = allocator.allocate(apps::cache_request());
    if (out.success) apps_ids.push_back(out.app);
  }
  const double before = allocator.utilization();
  for (std::size_t i = 0; i < apps_ids.size() / 2; ++i) {
    allocator.deallocate(apps_ids[i * 2]);
  }
  std::printf("ActiveRMT: utilization %.2f -> %.2f (survivors absorb the "
              "freed memory immediately)\n",
              before, allocator.utilization());
}

void netvrm_overheads() {
  std::printf("\n## Virtualization overheads: NetVRM model vs ActiveRMT\n");
  baseline::NetVrmModel netvrm;
  std::printf("addressable register memory per stage: NetVRM %u/%u words "
              "(%.0f%%), ActiveRMT %u/%u (100%%)\n",
              netvrm.addressable_per_stage(),
              netvrm.config().words_per_stage,
              100.0 * netvrm.addressable_fraction(),
              netvrm.config().words_per_stage,
              netvrm.config().words_per_stage);
  std::printf("stage budget for a 3-access program: NetVRM %u/20 "
              "(2-stage translation per access), ActiveRMT 20/20 "
              "(mask/offset ride existing entries)\n",
              netvrm.effective_stage_budget(3));
  std::printf("demand  netvrm_granted  netvrm_eff  activermt_granted  "
              "activermt_eff\n");
  for (const u32 words : {100u, 300u, 1000u, 5000u}) {
    const u32 blocks = (words + 255) / 256;  // 1-KB blocks
    const u32 active_granted = blocks * 256;
    std::printf("%-7u %-15u %-11.2f %-18u %.2f\n", words,
                netvrm.words_granted(words), netvrm.page_efficiency(words),
                active_granted,
                static_cast<double>(words) / active_granted);
  }
}

}  // namespace
}  // namespace artmt::bench

int main() {
  std::printf(
      "=== Baseline comparison: ActiveRMT vs monolithic P4 / NetVRM ===\n");
  artmt::bench::deployment_latency();
  artmt::bench::blast_radius();
  artmt::bench::capacity();
  artmt::bench::stranded_memory();
  artmt::bench::netvrm_overheads();
  return 0;
}
