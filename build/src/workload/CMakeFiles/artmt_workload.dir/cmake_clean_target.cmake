file(REMOVE_RECURSE
  "libartmt_workload.a"
)
