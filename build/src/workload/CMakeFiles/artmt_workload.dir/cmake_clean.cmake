file(REMOVE_RECURSE
  "CMakeFiles/artmt_workload.dir/arrivals.cpp.o"
  "CMakeFiles/artmt_workload.dir/arrivals.cpp.o.d"
  "CMakeFiles/artmt_workload.dir/zipf.cpp.o"
  "CMakeFiles/artmt_workload.dir/zipf.cpp.o.d"
  "libartmt_workload.a"
  "libartmt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
