# Empty compiler generated dependencies file for artmt_client.
# This may be replaced when dependencies are built.
