#include "rmt/hash.hpp"

#include <array>
#include <vector>

namespace artmt::rmt {

namespace {

std::array<u32, 256> make_crc32c_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<u32, 256>& crc32c_table() {
  static const std::array<u32, 256> table = make_crc32c_table();
  return table;
}

}  // namespace

u32 crc32c(std::span<const u8> data) {
  const auto& table = crc32c_table();
  u32 crc = 0xffffffffu;
  for (u8 byte : data) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

u32 hash_words(std::span<const Word> words, u32 engine) {
  std::vector<u8> bytes;
  bytes.reserve(words.size() * 4 + 4);
  // Engine selection is modeled as a distinct seed word; real hardware
  // uses differently configured CRC units.
  const Word seed = 0x9e3779b9u * (engine + 1);
  bytes.push_back(static_cast<u8>(seed >> 24));
  bytes.push_back(static_cast<u8>(seed >> 16));
  bytes.push_back(static_cast<u8>(seed >> 8));
  bytes.push_back(static_cast<u8>(seed));
  for (Word w : words) {
    bytes.push_back(static_cast<u8>(w >> 24));
    bytes.push_back(static_cast<u8>(w >> 16));
    bytes.push_back(static_cast<u8>(w >> 8));
    bytes.push_back(static_cast<u8>(w));
  }
  return crc32c(bytes);
}

}  // namespace artmt::rmt
