#include "netsim/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <string>
#include <thread>
#include <utility>

#include "telemetry/metrics.hpp"

namespace artmt::netsim {

namespace detail {
thread_local const ShardContext* tls_shard = nullptr;
}  // namespace detail

// Total order over drained messages derived from simulation state alone
// (never from shard packing or wall clock), so every shard count drains
// the same barrier batch in the same order.
bool ShardedSimulator::mail_before(const MailMsg* a, const MailMsg* b) {
  if (a->arrival != b->arrival) return a->arrival < b->arrival;
  if (a->send != b->send) return a->send < b->send;
  if (a->src_index != b->src_index) return a->src_index < b->src_index;
  return a->tx_seq < b->tx_seq;
}

bool ShardedSimulator::mail_before_val(const MailMsg& a, const MailMsg& b) {
  return mail_before(&a, &b);
}

namespace {

u64 elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - since)
                              .count());
}

}  // namespace

// Reusable two-phase rendezvous. The last arriver runs `serial` while
// holding the barrier mutex, so serial-section writes (next epoch window,
// done flag) are ordered before every other worker's wakeup -- the
// happens-before edge that keeps the engine's plain epoch state and
// mailbox vectors race-free.
class ShardedSimulator::Barrier {
 public:
  explicit Barrier(u32 n) : n_(n) {}

  template <typename F>
  void arrive_and_wait(F&& serial) {
    std::unique_lock<std::mutex> lock(mu_);
    if (++arrived_ == n_) {
      serial();
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    const u64 gen = generation_;
    cv_.wait(lock, [&] { return generation_ != gen; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  u32 n_;
  u32 arrived_ = 0;
  u64 generation_ = 0;
};

ShardedSimulator::ShardedSimulator(u32 shards) {
  if (shards == 0) {
    throw UsageError("ShardedSimulator: shard count must be >= 1");
  }
  shards_.reserve(shards);
  for (u32 i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->metrics = std::make_unique<telemetry::MetricsRegistry>();
    shard->sim.set_metrics(shard->metrics.get());
    shard->outbox.resize(shards);
    shards_.push_back(std::move(shard));
  }
  barrier_ = std::make_unique<Barrier>(shards);
}

ShardedSimulator::~ShardedSimulator() = default;

void ShardedSimulator::bind_network(Network& net) {
  if (net_ != nullptr) {
    throw UsageError("ShardedSimulator: already driving a Network");
  }
  net_ = &net;
}

void ShardedSimulator::pin(Node& node, u32 shard) {
  if (shard >= shards()) {
    throw UsageError("ShardedSimulator::pin: shard out of range");
  }
  if (detail::tls_shard != nullptr) {
    throw UsageError("ShardedSimulator::pin: only while quiescent");
  }
  if (node.shard_assigned_) {
    throw UsageError("ShardedSimulator::pin: node '" + node.name() +
                     "' already assigned (pin before the first run)");
  }
  node.shard_ = shard;
  node.shard_assigned_ = true;
}

void ShardedSimulator::schedule_at(SimTime at, Simulator::Action action) {
  const auto* ctx = detail::tls_shard;
  if (ctx != nullptr && ctx->owner == this) {
    ctx->sim->schedule_at(at, std::move(action));
    return;
  }
  shards_[0]->sim.schedule_at(at, std::move(action));
}

void ShardedSimulator::schedule_after(SimTime delay, Simulator::Action action) {
  const auto* ctx = detail::tls_shard;
  if (ctx != nullptr && ctx->owner == this) {
    ctx->sim->schedule_after(delay, std::move(action));
    return;
  }
  shards_[0]->sim.schedule_after(delay, std::move(action));
}

void ShardedSimulator::schedule_on(const Node& node, SimTime at,
                                   Simulator::Action action) {
  if (detail::tls_shard != nullptr) {
    throw UsageError(
        "ShardedSimulator::schedule_on: only while quiescent (workers "
        "schedule through their own network().simulator())");
  }
  assign_unowned_nodes();  // the node may predate the first run
  shards_[node.shard_]->sim.schedule_at(at, std::move(action));
}

const ShardStats& ShardedSimulator::shard_stats(u32 shard) const {
  if (shard >= shards()) {
    throw UsageError("ShardedSimulator::shard_stats: shard out of range");
  }
  return shards_[shard]->stats;
}

telemetry::MetricsRegistry& ShardedSimulator::shard_metrics(u32 shard) {
  if (shard >= shards()) {
    throw UsageError("ShardedSimulator::shard_metrics: shard out of range");
  }
  return *shards_[shard]->metrics;
}

void ShardedSimulator::merge_metrics_into(
    telemetry::MetricsRegistry& out) const {
  for (const auto& shard : shards_) {
    out.merge_from(*shard->metrics);
  }
}

void ShardedSimulator::export_shard_stats(
    telemetry::MetricsRegistry& out) const {
  // merge_add accumulates: export once per snapshot registry.
  for (u32 i = 0; i < shards(); ++i) {
    const ShardStats& s = shards_[i]->stats;
    const auto fid = static_cast<i32>(i);
    out.counter("sharding", "events_dispatched", fid)
        .merge_add(s.events_dispatched);
    out.counter("sharding", "epochs", fid).merge_add(s.epochs);
    out.counter("sharding", "frames_in", fid).merge_add(s.frames_in);
    out.counter("sharding", "frames_out", fid).merge_add(s.frames_out);
    out.counter("sharding", "barrier_wait_ns", fid)
        .merge_add(s.barrier_wait_ns);
  }
}

void ShardedSimulator::enqueue(MailMsg msg) {
  const auto* ctx = detail::tls_shard;
  if (ctx != nullptr && ctx->owner == this) {
    Shard& src = *shards_[ctx->index];
    const u32 dst = msg.dest->shard_;
    if (dst != ctx->index) ++src.stats.frames_out;
    src.outbox[dst].push_back(std::move(msg));
    return;
  }
  // Quiescent injection (tools priming a scenario before run()): the
  // frame was built from some shard's pool, so clone it into the
  // destination shard's pool now -- no workers are running -- and hold
  // it until the next run's initial drain.
  assign_unowned_nodes();
  msg.src_shard = msg.dest->shard_;  // clone already done: drain moves it
  msg.frame = shards_[msg.dest->shard_]->pool.clone(msg.frame);
  external_mail_.push_back(std::move(msg));
}

void ShardedSimulator::assign_unowned_nodes() {
  if (net_ == nullptr) return;
  const u32 n = shards();
  for (const auto& node : net_->nodes_) {
    if (node->shard_assigned_) continue;
    // Default policy: shard 0 is reserved for pinned nodes (the switch
    // pipeline); unpinned fleets round-robin over the remaining shards.
    node->shard_ = (n == 1) ? 0 : 1 + (next_rr_++ % (n - 1));
    node->shard_assigned_ = true;
  }
}

void ShardedSimulator::compute_lookahead() {
  SimTime w = kNoEvent;
  for (const auto& [key, egress] : net_->egress_) {
    if (egress.spec.latency <= 0) {
      throw UsageError(
          "ShardedSimulator: every link needs latency >= 1ns -- the minimum "
          "latency is the conservative lookahead window");
    }
    w = std::min(w, egress.spec.latency);
  }
  lookahead_ = w;  // kNoEvent when there are no links: one epoch runs all
}

void ShardedSimulator::prepare() {
  if (net_ != nullptr) {
    assign_unowned_nodes();
    compute_lookahead();
  }
  drain_external();
}

void ShardedSimulator::schedule_delivery(Simulator& sim, MailMsg& msg,
                                         Frame frame, u32 shard) {
  Network* net = msg.net;
  Node* dest = msg.dest;
  const u32 port = msg.port;
  sim.schedule_at(msg.arrival,
                  [net, dest, port, shard, f = std::move(frame)]() mutable {
                    net->deliver(*dest, port, std::move(f), shard);
                  });
}

void ShardedSimulator::drain_external() {
  if (external_mail_.empty()) return;
  std::sort(external_mail_.begin(), external_mail_.end(), mail_before_val);
  for (MailMsg& msg : external_mail_) {
    // Frames were cloned into the destination pool at enqueue time.
    schedule_delivery(shards_[msg.dest->shard_]->sim, msg,
                      std::move(msg.frame), msg.dest->shard_);
  }
  external_mail_.clear();
}

void ShardedSimulator::drain_inboxes(u32 dst_idx) {
  Shard& dst = *shards_[dst_idx];
  std::vector<MailMsg*>& batch = dst.drain_scratch;
  batch.clear();
  for (const auto& src : shards_) {
    for (MailMsg& msg : src->outbox[dst_idx]) batch.push_back(&msg);
  }
  // Each outbox is appended in the sender's dispatch (send-time) order,
  // so with one source shard and uniform links the batch usually arrives
  // pre-sorted; the O(n) check dodges the sort on the common path.
  if (!std::is_sorted(batch.begin(), batch.end(), mail_before)) {
    std::sort(batch.begin(), batch.end(), mail_before);
  }
  for (MailMsg* msg : batch) {
    Frame frame;
    if (msg->src_shard == dst_idx) {
      // Same-shard delivery: the slab already belongs to our pool.
      frame = std::move(msg->frame);
    } else {
      // Cross-shard handoff: deep-copy into our pool; the source shard
      // releases the original when it clears its outboxes next epoch.
      frame = dst.pool.clone(msg->frame);
      ++dst.stats.frames_in;
    }
    schedule_delivery(dst.sim, *msg, std::move(frame), dst_idx);
  }
}

void ShardedSimulator::store_error(std::exception_ptr err) {
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!first_error_) first_error_ = err;
  }
  abort_.store(true, std::memory_order_relaxed);
}

void ShardedSimulator::worker_loop(u32 shard_idx, SimTime limit) {
  Shard& shard = *shards_[shard_idx];
  const detail::ShardContext ctx{this, shard_idx, &shard.sim, &shard.pool};
  detail::tls_shard = &ctx;

  while (true) {
    // Phase A: reclaim last epoch's outbox frames (their slabs return to
    // this shard's pool), then run this epoch's window of events.
    try {
      for (auto& box : shard.outbox) box.clear();
      if (!abort_.load(std::memory_order_relaxed)) {
        // Events with at < window_end and at <= limit; the shard clock
        // stays at its last event (never outrunning it) and is aligned
        // globally once the run quiesces.
        SimTime bound = window_end_;  // kNoEvent: no links, drain all
        if (limit != kNoEvent && limit < bound - 1) bound = limit + 1;
        shard.sim.run_window(bound);
      }
    } catch (...) {
      store_error(std::current_exception());
    }

    auto wait_from = std::chrono::steady_clock::now();
    barrier_->arrive_and_wait([] {});
    shard.stats.barrier_wait_ns += elapsed_ns(wait_from);

    // Phase B: drain every mailbox addressed to this shard -- all of
    // them carry arrivals at or beyond the next epoch window, because
    // arrival >= send + lookahead >= window_start + lookahead.
    try {
      if (!abort_.load(std::memory_order_relaxed)) drain_inboxes(shard_idx);
    } catch (...) {
      store_error(std::current_exception());
    }

    wait_from = std::chrono::steady_clock::now();
    barrier_->arrive_and_wait([this, limit] {
      // Serial section: pick the next epoch window from the globally
      // earliest pending event (shard-count-invariant by induction).
      if (abort_.load(std::memory_order_relaxed)) {
        done_ = true;
        return;
      }
      SimTime next = kNoEvent;
      for (const auto& s : shards_) {
        next = std::min(next, s->sim.next_event_time());
      }
      if (next == kNoEvent || next > limit) {
        done_ = true;
        return;
      }
      window_end_ = (lookahead_ == kNoEvent || lookahead_ >= kNoEvent - next)
                        ? kNoEvent
                        : next + lookahead_;
      ++epochs_;
    });
    shard.stats.barrier_wait_ns += elapsed_ns(wait_from);
    ++shard.stats.epochs;

    if (done_) break;  // ordered by the barrier mutex
  }

  detail::tls_shard = nullptr;
}

void ShardedSimulator::run_epochs(SimTime limit) {
  if (detail::tls_shard != nullptr) {
    throw UsageError("ShardedSimulator::run: re-entrant run");
  }
  prepare();

  SimTime start = kNoEvent;
  for (const auto& s : shards_) {
    start = std::min(start, s->sim.next_event_time());
  }
  if (start != kNoEvent && start <= limit) {
    window_end_ = (lookahead_ == kNoEvent || lookahead_ >= kNoEvent - start)
                      ? kNoEvent
                      : start + lookahead_;
    done_ = false;
    abort_.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    ++epochs_;

    const u32 n = shards();
    if (n == 1) {
      worker_loop(0, limit);
    } else {
      std::vector<std::thread> workers;
      workers.reserve(n);
      for (u32 i = 0; i < n; ++i) {
        workers.emplace_back([this, i, limit] { worker_loop(i, limit); });
      }
      for (auto& t : workers) t.join();
    }
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }

  // Quiescent again: release frames still parked in outboxes (the final
  // epoch's cross-shard originals) and align every shard clock.
  for (const auto& s : shards_) {
    for (auto& box : s->outbox) box.clear();
  }
  SimTime final_time = global_now_;
  if (limit != kNoEvent) final_time = std::max(final_time, limit);
  for (const auto& s : shards_) {
    final_time = std::max(final_time, s->sim.now());
  }
  for (const auto& s : shards_) {
    // Pending events (beyond `limit`) all sit after final_time, so this
    // only advances the clock.
    s->sim.run_until(final_time);
  }
  global_now_ = final_time;
  for (const auto& s : shards_) {
    s->stats.events_dispatched = s->sim.events_dispatched();
  }
}

void ShardedSimulator::run() { run_epochs(kNoEvent); }

void ShardedSimulator::run_until(SimTime until) { run_epochs(until); }

}  // namespace artmt::netsim
