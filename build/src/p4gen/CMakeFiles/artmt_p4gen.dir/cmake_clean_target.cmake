file(REMOVE_RECURSE
  "libartmt_p4gen.a"
)
