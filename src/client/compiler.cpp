#include "client/compiler.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace artmt::client {

alloc::AllocationRequest build_request(const ServiceSpec& spec) {
  const active::ProgramAnalysis analysis = active::analyze(spec.program);
  if (analysis.access_positions.empty()) {
    throw CompileError("build_request: program has no memory accesses");
  }
  if (analysis.access_positions.size() != spec.demands.size()) {
    throw CompileError("build_request: demand count (" +
                       std::to_string(spec.demands.size()) +
                       ") != access count (" +
                       std::to_string(analysis.access_positions.size()) + ")");
  }
  if (!analysis.branches_forward) {
    throw CompileError("build_request: program has invalid branch targets");
  }
  alloc::AllocationRequest request;
  request.program_length = analysis.length;
  request.elastic = spec.elastic;
  request.elastic_cap_blocks = spec.elastic_cap_blocks;
  if (!spec.aliases.empty() &&
      spec.aliases.size() != analysis.access_positions.size()) {
    throw CompileError("build_request: alias count != access count");
  }
  for (std::size_t i = 0; i < analysis.access_positions.size(); ++i) {
    alloc::AccessDemand demand;
    demand.position = analysis.access_positions[i];
    demand.demand_blocks = spec.demands[i];
    if (!spec.aliases.empty()) demand.alias = spec.aliases[i];
    request.accesses.push_back(demand);
  }
  if (!analysis.rts_positions.empty() && !spec.ignore_rts_constraint) {
    // The first RTS is the one that must land at ingress to avoid the
    // port-change recirculation.
    request.rts_position = analysis.rts_positions.front();
  }
  return request;
}

alloc::AllocationRequest compose_request(std::span<const ServiceSpec> specs) {
  if (specs.empty()) {
    throw CompileError("compose_request: no programs given");
  }
  std::vector<alloc::AllocationRequest> members;
  members.reserve(specs.size());
  for (const ServiceSpec& spec : specs) {
    members.push_back(build_request(spec));
    if (members.back().accesses.size() != members.front().accesses.size() ||
        members.back().elastic != members.front().elastic) {
      throw CompileError(
          "compose_request: member programs disagree on access count or "
          "elasticity");
    }
    for (std::size_t i = 0; i < members.back().accesses.size(); ++i) {
      if (members.back().accesses[i].alias !=
          members.front().accesses[i].alias) {
        throw CompileError("compose_request: member aliases disagree");
      }
    }
  }

  // Binding gaps: the largest inter-access distance any member needs.
  const std::size_t m = members.front().accesses.size();
  alloc::AllocationRequest out;
  out.elastic = members.front().elastic;
  out.elastic_cap_blocks = members.front().elastic_cap_blocks;
  out.accesses.resize(m);
  u32 previous = 0;
  for (std::size_t i = 0; i < m; ++i) {
    u32 lower = 0;       // max_p position of access i
    u32 gap = 0;         // max_p (pos_i - pos_{i-1})
    u32 demand = 0;
    for (const auto& member : members) {
      const auto& access = member.accesses[i];
      lower = std::max(lower, access.position);
      demand = std::max(demand, access.demand_blocks);
      if (i > 0) {
        gap = std::max(gap,
                       access.position - member.accesses[i - 1].position);
      }
    }
    out.accesses[i].position =
        i == 0 ? lower : std::max(lower, previous + gap);
    out.accesses[i].demand_blocks = demand;
    out.accesses[i].alias = members.front().accesses[i].alias;
    previous = out.accesses[i].position;
  }

  // Binding trailing length and the tightest RTS segment constraint.
  u32 trailing = 0;
  for (const auto& member : members) {
    trailing = std::max(trailing, member.program_length - 1 -
                                      member.accesses.back().position);
  }
  out.program_length = out.accesses.back().position + trailing + 1;

  // RTS: map each member's RTS into the composite by preserving its
  // offset from the preceding access; keep the one that binds earliest.
  for (std::size_t p = 0; p < members.size(); ++p) {
    const auto& member = members[p];
    if (!member.rts_position) continue;
    const u32 rts = *member.rts_position;
    u32 composite_rts = rts;  // before the first access: offset unchanged
    for (std::size_t i = m; i-- > 0;) {
      if (member.accesses[i].position <= rts) {
        composite_rts =
            out.accesses[i].position + (rts - member.accesses[i].position);
        break;
      }
    }
    if (!out.rts_position || composite_rts < *out.rts_position) {
      out.rts_position = composite_rts;
    }
  }
  return out;
}

u32 SynthesizedProgram::bucket_count() const {
  if (access_words.empty()) return 0;
  return *std::min_element(access_words.begin(), access_words.end());
}

SynthesizedProgram synthesize(const ServiceSpec& spec,
                              const alloc::Mutant& mutant,
                              const packet::AllocResponseHeader& regions,
                              u32 logical_stages) {
  const active::ProgramAnalysis analysis = active::analyze(spec.program);
  if (mutant.size() != analysis.access_positions.size()) {
    throw CompileError("synthesize: mutant size != access count");
  }
  SynthesizedProgram out;
  out.program = active::mutate(spec.program, mutant);
  out.compiled = std::make_shared<const active::CompiledProgram>(
      active::CompiledProgram::compile(out.program));
  out.access_base.reserve(mutant.size());
  out.access_words.reserve(mutant.size());
  for (u32 global_stage : mutant) {
    const u32 stage = global_stage % logical_stages;
    if (stage >= packet::kResponseStages) {
      throw CompileError("synthesize: stage beyond response header");
    }
    const packet::StageRegion& region = regions.regions[stage];
    if (!region.allocated()) {
      throw CompileError("synthesize: no region allocated in stage " +
                         std::to_string(stage));
    }
    out.access_base.push_back(region.start_word);
    out.access_words.push_back(region.words());
  }
  return out;
}

void apply_preload(active::Program& program) {
  auto& code = program.code();
  if (!code.empty() && code.front().op == active::Opcode::kMarLoad &&
      code.front().operand == 0 && code.front().label == 0) {
    code.erase(code.begin());
    program.preload_mar = true;
  }
  if (!code.empty() && code.front().op == active::Opcode::kMbrLoad &&
      code.front().operand == 1 && code.front().label == 0) {
    code.erase(code.begin());
    program.preload_mbr = true;
  }
}

}  // namespace artmt::client
