// Tests for the discrete-event engine and the frame-level network model.
#include <gtest/gtest.h>

#include "netsim/network.hpp"
#include "netsim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace artmt::netsim {
namespace {

TEST(Simulator, RunsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, FifoAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(10, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterOffsetsFromNow) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 150);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), UsageError);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), UsageError);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(30);  // events exactly at the boundary run
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilBoundaryIsInclusive) {
  // An event exactly at `until` runs; anything later stays queued and the
  // clock still lands exactly on the boundary.
  Simulator sim;
  std::vector<SimTime> fired;
  sim.schedule_at(100, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(101, [&] { fired.push_back(sim.now()); });
  sim.run_until(100);
  EXPECT_EQ(fired, (std::vector<SimTime>{100}));
  EXPECT_EQ(sim.now(), 100);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{100, 101}));
}

TEST(Simulator, SmallCapturesStayInline) {
  // The event loop's allocation-free claim rests on closures of the
  // delivery path fitting InlineAction's inline buffer.
  Simulator sim;
  int hits = 0;
  Frame frame(64, 0xaa);  // a FrameBuf capture: pointer-sized members only
  sim.schedule_at(1, [&hits, f = std::move(frame)] { hits += f[0] == 0xaa; });
  sim.schedule_at(2, [&hits] { ++hits; });
  sim.run();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(sim.actions_spilled(), 0u);
}

TEST(Simulator, OversizedCapturesSpillToHeap) {
  Simulator sim;
  std::array<u64, 32> big{};  // 256 bytes: larger than the inline buffer
  big[0] = 7;
  u64 seen = 0;
  sim.schedule_at(1, [big, &seen] { seen = big[0]; });
  sim.run();
  EXPECT_EQ(seen, 7u);
  EXPECT_EQ(sim.actions_spilled(), 1u);
}

TEST(Simulator, NestedSchedulingWithinRun) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_after(1, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 4);
}

// Regression: step() used to leave the attached registry stale (dispatch
// count and queue depth were only flushed by the run loops), so
// single-stepping tools read counts from the previous drain.
TEST(Simulator, StepFlushesMetrics) {
  Simulator sim;
  telemetry::MetricsRegistry metrics;
  sim.set_metrics(&metrics);
  auto& dispatched = metrics.counter("netsim", "events_dispatched");
  auto& depth = metrics.gauge("netsim", "queue_depth");
  sim.schedule_at(10, [] {});
  sim.schedule_at(20, [] {});
  sim.schedule_at(30, [] {});

  ASSERT_TRUE(sim.step());
  EXPECT_EQ(dispatched.value(), 1u);
  EXPECT_EQ(depth.value(), 2);
  ASSERT_TRUE(sim.step());
  EXPECT_EQ(dispatched.value(), 2u);
  EXPECT_EQ(depth.value(), 1);
  sim.run();
  EXPECT_EQ(dispatched.value(), 3u);
  EXPECT_EQ(depth.value(), 0);
  EXPECT_FALSE(sim.step());  // empty queue: still flushes, returns false
  EXPECT_EQ(dispatched.value(), 3u);
}

// run_window() dispatches strictly-before-end events without dragging the
// clock to the window edge (the sharded engine's epoch phase).
TEST(Simulator, RunWindowDoesNotAdvanceClockPastLastEvent) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.schedule_at(10, [&] { seen.push_back(sim.now()); });
  sim.schedule_at(25, [&] { seen.push_back(sim.now()); });
  sim.schedule_at(40, [&] { seen.push_back(sim.now()); });

  sim.run_window(40);  // strictly before 40
  EXPECT_EQ(seen, (std::vector<SimTime>{10, 25}));
  EXPECT_EQ(sim.now(), 25);
  EXPECT_EQ(sim.next_event_time(), 40);

  sim.run_window(Simulator::kNoEvent);  // drains the rest
  EXPECT_EQ(seen, (std::vector<SimTime>{10, 25, 40}));
  EXPECT_EQ(sim.now(), 40);
  EXPECT_EQ(sim.next_event_time(), Simulator::kNoEvent);
}

// ---------- network ----------

class Recorder : public Node {
 public:
  explicit Recorder(std::string name) : Node(std::move(name)) {}
  void on_frame(Frame frame, u32 port) override {
    frames.push_back({std::move(frame), port, network().simulator().now()});
  }
  struct Rx {
    Frame frame;
    u32 port;
    SimTime at;
  };
  std::vector<Rx> frames;
};

TEST(Network, DeliversWithLatencyAndSerialization) {
  Simulator sim;
  Network net(sim);
  auto a = std::make_shared<Recorder>("a");
  auto b = std::make_shared<Recorder>("b");
  net.attach(a);
  net.attach(b);
  LinkSpec spec;
  spec.latency = 1000;  // 1 us
  spec.gbps = 8.0;      // 1 byte per ns
  net.connect(*a, 0, *b, 0, spec);

  net.transmit(*a, 0, Frame(100, 0x55));
  sim.run();
  ASSERT_EQ(b->frames.size(), 1u);
  EXPECT_EQ(b->frames[0].at, 1000 + 100);  // latency + serialization
  EXPECT_EQ(b->frames[0].frame.size(), 100u);
}

TEST(Network, Bidirectional) {
  Simulator sim;
  Network net(sim);
  auto a = std::make_shared<Recorder>("a");
  auto b = std::make_shared<Recorder>("b");
  net.attach(a);
  net.attach(b);
  net.connect(*a, 0, *b, 3);
  net.transmit(*b, 3, Frame(10));
  sim.run();
  ASSERT_EQ(a->frames.size(), 1u);
  EXPECT_EQ(a->frames[0].port, 0u);
}

TEST(Network, UnpluggedPortDropsSilently) {
  Simulator sim;
  Network net(sim);
  auto a = std::make_shared<Recorder>("a");
  net.attach(a);
  net.transmit(*a, 9, Frame(10));
  sim.run();
  EXPECT_EQ(net.frames_delivered(), 0u);
  EXPECT_EQ(net.frames_dropped(), 1u);
}

TEST(Network, CountsDropsPerUnpluggedTransmit) {
  Simulator sim;
  Network net(sim);
  auto a = std::make_shared<Recorder>("a");
  auto b = std::make_shared<Recorder>("b");
  net.attach(a);
  net.attach(b);
  net.connect(*a, 0, *b, 0);
  net.transmit(*a, 0, Frame(10));  // delivered
  net.transmit(*a, 1, Frame(10));  // no link on port 1
  net.transmit(*b, 7, Frame(10));  // no link on port 7
  sim.run();
  EXPECT_EQ(net.frames_delivered(), 1u);
  EXPECT_EQ(net.frames_dropped(), 2u);
}

TEST(Network, PooledFramesRoundTrip) {
  // A frame acquired from the network's pool survives transit and its
  // slab is recycled once the receiver lets go of it.
  Simulator sim;
  Network net(sim);
  auto a = std::make_shared<Recorder>("a");
  auto b = std::make_shared<Recorder>("b");
  net.attach(a);
  net.attach(b);
  net.connect(*a, 0, *b, 0);
  Frame frame = net.pool().copy(std::vector<u8>{1, 2, 3, 4});
  net.transmit(*a, 0, std::move(frame));
  sim.run();
  ASSERT_EQ(b->frames.size(), 1u);
  EXPECT_EQ(b->frames[0].frame.to_vector(), (std::vector<u8>{1, 2, 3, 4}));
  EXPECT_TRUE(b->frames[0].frame.pooled());
  b->frames.clear();
  EXPECT_EQ(net.pool().free_slabs(), 1u);
}

TEST(Network, DoubleConnectThrows) {
  Simulator sim;
  Network net(sim);
  auto a = std::make_shared<Recorder>("a");
  auto b = std::make_shared<Recorder>("b");
  auto c = std::make_shared<Recorder>("c");
  net.attach(a);
  net.attach(b);
  net.attach(c);
  net.connect(*a, 0, *b, 0);
  EXPECT_THROW(net.connect(*a, 0, *c, 0), UsageError);
}

TEST(Network, DoubleAttachThrows) {
  Simulator sim;
  Network net(sim);
  auto a = std::make_shared<Recorder>("a");
  net.attach(a);
  EXPECT_THROW(net.attach(a), UsageError);
}

TEST(Network, CountsDeliveries) {
  Simulator sim;
  Network net(sim);
  auto a = std::make_shared<Recorder>("a");
  auto b = std::make_shared<Recorder>("b");
  net.attach(a);
  net.attach(b);
  net.connect(*a, 0, *b, 0);
  net.transmit(*a, 0, Frame(64));
  net.transmit(*a, 0, Frame(64));
  sim.run();
  EXPECT_EQ(net.frames_delivered(), 2u);
  EXPECT_EQ(net.bytes_delivered(), 128u);
}

}  // namespace
}  // namespace artmt::netsim
