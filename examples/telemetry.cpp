// Network-telemetry demo: the frequent-item (heavy-hitter) monitor of
// Appendix B.1 rides on a Zipf request stream; afterwards the client
// extracts the per-bucket (key, count) tables over the data plane and
// prints the detected heavy hitters.
//
// Build & run:  ./build/examples/telemetry
#include <cstdio>

#include "apps/hh_service.hpp"
#include "apps/server_node.hpp"
#include "client/client_node.hpp"
#include "common/logging.hpp"
#include "controller/switch_node.hpp"
#include "workload/zipf.hpp"

using namespace artmt;

int main() {
  set_log_level(LogLevel::kInfo);

  netsim::Simulator sim;
  netsim::Network net(sim);
  auto sw = std::make_shared<controller::SwitchNode>(
      "switch", controller::SwitchNode::Config{});
  auto server = std::make_shared<apps::ServerNode>("server", 0xbb);
  auto client = std::make_shared<client::ClientNode>("client", 0x100, 0xaa);
  net.attach(sw);
  net.attach(server);
  net.attach(client);
  net.connect(*sw, 0, *server, 0);
  net.connect(*sw, 1, *client, 0);
  sw->bind(0xbb, 0);
  sw->bind(0x100, 1);

  auto monitor =
      std::make_shared<apps::FrequentItemService>("monitor", 0xbb);
  client->register_service(monitor);

  // 30k observations from a skewed distribution.
  workload::ZipfGenerator zipf(5'000, 1.3);
  Rng rng(123);
  // The stream driver lives at main scope so scheduled continuations can
  // safely reference it.
  std::function<void(u32)> observe = [&](u32 remaining) {
    if (remaining == 0) {
      // Stream done: pull the tables and report.
      monitor->extract(
          [&sim](std::vector<std::pair<u64, u32>> items) {
            std::printf("\n[t=%.3fs] %zu heavy hitters detected:\n",
                        sim.now() / 1e9, items.size());
            for (std::size_t i = 0; i < items.size() && i < 10; ++i) {
              std::printf("  #%zu key=0x%016llx count>=%u\n", i + 1,
                          static_cast<unsigned long long>(items[i].first),
                          items[i].second);
            }
            std::printf("(true top key: 0x%016llx)\n",
                        static_cast<unsigned long long>(
                            workload::ZipfGenerator::key_for_rank(0)));
          },
          /*min_count=*/20);
      return;
    }
    monitor->observe(
        workload::ZipfGenerator::key_for_rank(zipf.next_rank(rng)));
    sim.schedule_after(50 * 1000,
                       [&observe, remaining] { observe(remaining - 1); });
  };
  monitor->on_ready = [&] {
    std::printf("[t=%.3fs] monitor allocated (%u table slots)\n",
                sim.now() / 1e9, monitor->table_words());
    observe(30'000);
  };
  monitor->request_allocation();

  sim.run();
  std::printf("\nswitch stats: %llu capsules, %llu recirculations\n",
              static_cast<unsigned long long>(sw->runtime().stats().packets),
              static_cast<unsigned long long>(
                  sw->runtime().stats().recirculations));
  return 0;
}
