file(REMOVE_RECURSE
  "libartmt_active.a"
)
