// The in-network cache service (Sections 3.4, 6.3): object GETs are
// activated with the Listing-1 query program; hits RTS back from the
// switch with the value, misses continue to the authoritative server.
// The client populates buckets with the write program (RTS-acked, with
// per-capsule retransmission via client::ReliabilityTracker) and
// re-populates after the allocator moves its memory.
#pragma once

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "apps/kv.hpp"
#include "client/service.hpp"

namespace artmt::apps {

class CacheService : public client::Service {
 public:
  CacheService(std::string name, packet::MacAddr server_mac);

  // --- application API ---
  // Issues an object request activated with the query program; the result
  // arrives via on_result (hit) or handle_server_reply (miss).
  void get(u64 key);

  // Writes the given items into their buckets; calls `done` once every
  // write is acknowledged (or given up on after the tracker's retry
  // budget). Unacked writes back off and retransmit per capsule.
  void populate(std::vector<std::pair<u64, u32>> items,
                std::function<void()> done = nullptr);

  // The populate write-back retransmit loop (stats, schedule tuning).
  [[nodiscard]] client::ReliabilityTracker& populate_reliability() {
    return populate_retry_;
  }

  // Wire this to the client node's passive path for server replies.
  void handle_server_reply(const KvMessage& reply);

  // --- callbacks ---
  // (request_id, key, value, served_by_cache)
  std::function<void(u32, u64, u32, bool)> on_result;
  std::function<void()> on_ready;       // first allocation applied
  std::function<void()> on_relocated;   // allocation moved (buckets zeroed)

  // --- introspection ---
  [[nodiscard]] u32 bucket_count() const;
  [[nodiscard]] u32 bucket_for(u64 key) const;
  struct CacheStats {
    u64 hits = 0;
    u64 misses = 0;
    u64 populate_acks = 0;
    u64 populate_sent = 0;
  };
  [[nodiscard]] const CacheStats& cache_stats() const { return stats_; }
  [[nodiscard]] const std::vector<std::pair<u64, u32>>& hot_set() const {
    return hot_set_;
  }

 protected:
  // One allocation covers both the query and populate programs; the
  // composite request carries the binding constraints of the pair.
  [[nodiscard]] alloc::AllocationRequest allocation_request() const override;
  void on_operational() override;
  void on_moved() override;
  void on_returned(packet::ActivePacket& pkt) override;

 private:
  void send_query(u64 key, u32 request_id);
  void send_populate(u64 key, u32 value, u32 request_id);
  void populate_resolved(u32 request_id);
  void resynthesize_populate();

  packet::MacAddr server_mac_;
  client::SynthesizedProgram populate_synth_;
  CacheStats stats_;
  u32 next_request_ = 1;
  std::unordered_map<u32, std::pair<u64, u32>> outstanding_populates_;
  client::ReliabilityTracker populate_retry_;
  std::function<void()> populate_done_;
  std::vector<std::pair<u64, u32>> hot_set_;  // last populated items
};

}  // namespace artmt::apps
