file(REMOVE_RECURSE
  "CMakeFiles/artmt_active.dir/assembler.cpp.o"
  "CMakeFiles/artmt_active.dir/assembler.cpp.o.d"
  "CMakeFiles/artmt_active.dir/isa.cpp.o"
  "CMakeFiles/artmt_active.dir/isa.cpp.o.d"
  "CMakeFiles/artmt_active.dir/program.cpp.o"
  "CMakeFiles/artmt_active.dir/program.cpp.o.d"
  "libartmt_active.a"
  "libartmt_active.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmt_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
