// End-to-end tests over the discrete-event network: allocation
// negotiation, cache populate/query traffic, the reallocation handshake
// between tenants, heavy-hitter extraction, and Cheetah flows -- the full
// capsule life cycle of Sections 3-5.
#include <gtest/gtest.h>

#include "apps/cache_service.hpp"
#include "apps/hh_service.hpp"
#include "apps/lb_service.hpp"
#include "apps/server_node.hpp"
#include "client/client_node.hpp"
#include "controller/switch_node.hpp"

namespace artmt {
namespace {

using apps::CacheService;
using apps::CheetahLbService;
using apps::FrequentItemService;
using apps::KvMessage;
using apps::ServerNode;
using client::ClientNode;
using controller::SwitchNode;

constexpr packet::MacAddr kSwitchMac = 0x0000aa;
constexpr packet::MacAddr kServerMac = 0x0000bb;
constexpr packet::MacAddr kClientMacBase = 0x000100;

class Testbed {
 public:
  explicit Testbed(u32 clients = 1,
                   alloc::Scheme scheme = alloc::Scheme::kWorstFit)
      : net_(sim_) {
    SwitchNode::Config cfg;
    cfg.scheme = scheme;
    // Shrink control-plane costs so tests converge quickly; ratios stay
    // realistic (table updates dominate).
    cfg.costs.table_entry_update = 100 * kMicrosecond;
    cfg.costs.snapshot_per_block = 1 * kMicrosecond;
    cfg.costs.clear_per_block = 1 * kMicrosecond;
    cfg.costs.extraction_timeout = 200 * kMillisecond;
    switch_ = std::make_shared<SwitchNode>("switch", cfg);
    net_.attach(switch_);

    server_ = std::make_shared<ServerNode>("server", kServerMac);
    net_.attach(server_);
    net_.connect(*switch_, 0, *server_, 0);
    switch_->bind(kServerMac, 0);

    for (u32 i = 0; i < clients; ++i) {
      auto client = std::make_shared<ClientNode>(
          "client" + std::to_string(i), kClientMacBase + i, kSwitchMac);
      net_.attach(client);
      net_.connect(*switch_, i + 1, *client, 0);
      switch_->bind(kClientMacBase + i, i + 1);
      clients_.push_back(std::move(client));
    }
  }

  void run_for(SimTime duration) { sim_.run_until(sim_.now() + duration); }

  netsim::Simulator sim_;
  netsim::Network net_;
  std::shared_ptr<SwitchNode> switch_;
  std::shared_ptr<ServerNode> server_;
  std::vector<std::shared_ptr<ClientNode>> clients_;
};

// Wires a cache's server-reply path through the client's passive hook.
void wire_cache_replies(ClientNode& client, CacheService& cache) {
  client.on_passive = [&cache](netsim::Frame& frame) {
    const auto msg = KvMessage::parse(
        std::span<const u8>(frame).subspan(packet::EthernetHeader::kWireSize));
    if (msg) cache.handle_server_reply(*msg);
  };
}

TEST(E2E, AllocationNegotiationCompletes) {
  Testbed bed;
  auto cache = std::make_shared<CacheService>("cache", kServerMac);
  bed.clients_[0]->register_service(cache);
  cache->request_allocation();
  bed.run_for(2 * kSecond);
  EXPECT_TRUE(cache->operational());
  EXPECT_GT(cache->fid(), 0);
  EXPECT_GT(cache->bucket_count(), 0u);
}

TEST(E2E, CachePopulateQueryOverTheWire) {
  Testbed bed;
  auto cache = std::make_shared<CacheService>("cache", kServerMac);
  bed.clients_[0]->register_service(cache);
  wire_cache_replies(*bed.clients_[0], *cache);

  bed.server_->put(0x1234, 99);
  bed.server_->put(0x5678, 11);

  std::vector<std::tuple<u64, u32, bool>> results;  // key, value, hit
  cache->on_result = [&](u32, u64 key, u32 value, bool hit) {
    results.emplace_back(key, value, hit);
  };

  cache->request_allocation();
  bed.run_for(2 * kSecond);
  ASSERT_TRUE(cache->operational());

  bool populated = false;
  cache->populate({{0x1234, 99}}, [&] { populated = true; });
  bed.run_for(1 * kSecond);
  ASSERT_TRUE(populated);

  cache->get(0x1234);  // hit at the switch
  cache->get(0x5678);  // miss -> server
  bed.run_for(1 * kSecond);

  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(std::get<0>(results[0]), 0x1234u);
  EXPECT_EQ(std::get<1>(results[0]), 99u);
  EXPECT_TRUE(std::get<2>(results[0]));
  EXPECT_EQ(std::get<0>(results[1]), 0x5678u);
  EXPECT_EQ(std::get<1>(results[1]), 11u);
  EXPECT_FALSE(std::get<2>(results[1]));
  EXPECT_EQ(bed.server_->stats().gets_served, 1u);
  EXPECT_EQ(cache->cache_stats().hits, 1u);
  EXPECT_EQ(cache->cache_stats().misses, 1u);
}

TEST(E2E, DenialWhenSwitchFull) {
  Testbed bed(1);
  std::vector<std::shared_ptr<FrequentItemService>> hogs;
  for (int i = 0; i < 24; ++i) {
    auto hog = std::make_shared<FrequentItemService>(
        "hog" + std::to_string(i), kServerMac);
    bed.clients_[0]->register_service(hog);
    hogs.push_back(hog);
  }
  for (auto& hog : hogs) {
    hog->request_allocation();
    bed.run_for(2 * kSecond);
  }
  u32 denied = 0;
  for (auto& hog : hogs) {
    if (hog->state() == client::Service::State::kDenied) ++denied;
  }
  EXPECT_EQ(denied, 1u);  // 23 fit (Section 6.1), the 24th is rejected
}

TEST(E2E, ReallocationHandshakeBetweenTenants) {
  Testbed bed(2, alloc::Scheme::kFirstFit);  // force stage sharing
  auto cache0 = std::make_shared<CacheService>("cache0", kServerMac);
  auto cache1 = std::make_shared<CacheService>("cache1", kServerMac);
  bed.clients_[0]->register_service(cache0);
  bed.clients_[1]->register_service(cache1);

  u32 moved = 0;
  cache0->on_relocated = [&] { ++moved; };

  cache0->request_allocation();
  bed.run_for(2 * kSecond);
  ASSERT_TRUE(cache0->operational());
  const u32 buckets_before = cache0->bucket_count();

  cache1->request_allocation();
  bed.run_for(3 * kSecond);
  ASSERT_TRUE(cache1->operational());
  EXPECT_TRUE(cache0->operational());  // reactivated with its new layout
  EXPECT_EQ(moved, 1u);
  // First-fit stacked both onto the same stages: shares halved.
  EXPECT_LT(cache0->bucket_count(), buckets_before);
  EXPECT_EQ(cache0->bucket_count(), cache1->bucket_count());
}

TEST(E2E, RelocatedCacheRepopulatesAutomatically) {
  Testbed bed(2, alloc::Scheme::kFirstFit);
  auto cache0 = std::make_shared<CacheService>("cache0", kServerMac);
  auto cache1 = std::make_shared<CacheService>("cache1", kServerMac);
  bed.clients_[0]->register_service(cache0);
  bed.clients_[1]->register_service(cache1);
  wire_cache_replies(*bed.clients_[0], *cache0);

  u32 hits = 0;
  cache0->on_result = [&](u32, u64, u32, bool hit) { hits += hit ? 1 : 0; };

  cache0->request_allocation();
  bed.run_for(2 * kSecond);
  cache0->populate({{0xaaaa, 1}, {0xbbbb, 2}});
  bed.run_for(1 * kSecond);

  // The second tenant's arrival moves cache0's memory (zeroed at the
  // switch); the default on_moved handler re-populates the hot set.
  cache1->request_allocation();
  bed.run_for(3 * kSecond);
  ASSERT_TRUE(cache0->operational());

  cache0->get(0xaaaa);
  cache0->get(0xbbbb);
  bed.run_for(1 * kSecond);
  EXPECT_EQ(hits, 2u);
}

TEST(E2E, HeavyHitterObserveAndExtract) {
  Testbed bed;
  auto monitor = std::make_shared<FrequentItemService>(
      "monitor", kServerMac, /*cms_blocks=*/2, /*table_blocks=*/1);
  bed.clients_[0]->register_service(monitor);
  monitor->request_allocation();
  bed.run_for(2 * kSecond);
  ASSERT_TRUE(monitor->operational());

  // 0xf00d is requested 30 times, others once each.
  for (int i = 0; i < 30; ++i) monitor->observe(0xf00d);
  for (u64 k = 1; k <= 20; ++k) monitor->observe(0xcc00 + k);
  bed.run_for(1 * kSecond);

  std::vector<std::pair<u64, u32>> items;
  bool done = false;
  monitor->extract([&](std::vector<std::pair<u64, u32>> found) {
    items = std::move(found);
    done = true;
  });
  bed.run_for(2 * kSecond);
  ASSERT_TRUE(done);
  ASSERT_FALSE(items.empty());
  EXPECT_EQ(items.front().first, 0xf00dULL);  // sorted by count
  EXPECT_GE(items.front().second, 25u);       // CMS overcounts, never under
}

TEST(E2E, CheetahFlowsStickToServers) {
  Testbed bed(1);
  auto backend1 = std::make_shared<ServerNode>("backend1", 0xdd01);
  auto backend2 = std::make_shared<ServerNode>("backend2", 0xdd02);
  bed.net_.attach(backend1);
  bed.net_.attach(backend2);
  bed.net_.connect(*bed.switch_, 8, *backend1, 0);
  bed.net_.connect(*bed.switch_, 9, *backend2, 0);
  bed.switch_->bind(0xdd01, 8);
  bed.switch_->bind(0xdd02, 9);

  auto lb = std::make_shared<CheetahLbService>("lb");
  bed.clients_[0]->register_service(lb);
  std::map<u32, u32> cookies;
  lb->on_flow_opened = [&](u32 flow, u32 cookie) { cookies[flow] = cookie; };
  bed.clients_[0]->on_passive = [&lb](netsim::Frame& frame) {
    const auto msg = KvMessage::parse(
        std::span<const u8>(frame).subspan(packet::EthernetHeader::kWireSize));
    if (msg) lb->handle_cookie_reply(*msg);
  };

  lb->request_allocation();
  bed.run_for(2 * kSecond);
  ASSERT_TRUE(lb->operational());

  bool configured = false;
  lb->configure({8, 9}, [&] { configured = true; });
  bed.run_for(1 * kSecond);
  ASSERT_TRUE(configured);

  for (u32 flow = 1; flow <= 8; ++flow) lb->open_flow(flow);
  bed.run_for(1 * kSecond);
  ASSERT_EQ(cookies.size(), 8u);
  EXPECT_EQ(bed.server_->stats().syns_answered, 0u);  // SYNs hit backends
  const u64 syns = backend1->stats().syns_answered +
                   backend2->stats().syns_answered;
  EXPECT_EQ(syns, 8u);
  EXPECT_GT(backend1->stats().syns_answered, 0u);
  EXPECT_GT(backend2->stats().syns_answered, 0u);

  // Data packets follow their cookies; totals must match per server.
  const u64 b1_syns = backend1->stats().syns_answered;
  const u64 b2_syns = backend2->stats().syns_answered;
  for (u32 flow = 1; flow <= 8; ++flow) {
    for (int i = 0; i < 3; ++i) lb->send_data(flow);
  }
  bed.run_for(1 * kSecond);
  EXPECT_EQ(backend1->stats().data_packets, b1_syns * 3);
  EXPECT_EQ(backend2->stats().data_packets, b2_syns * 3);
}

TEST(E2E, RttGrowsWithProgramLength) {
  // Fig. 8b mechanics: NOP+RTS programs of increasing length.
  Testbed bed;
  auto probe = [&](u32 nops) {
    packet::ArgumentHeader args;
    active::Program program;
    program.push({active::Opcode::kRts});
    for (u32 i = 0; i < nops; ++i) {
      program.push({active::Opcode::kNop});
    }
    program.push({active::Opcode::kReturn});
    auto pkt = packet::ActivePacket::make_program(0, args, program);
    pkt.ethernet.src = kClientMacBase;
    pkt.ethernet.dst = kSwitchMac;
    const SimTime sent = bed.sim_.now();
    SimTime received = -1;
    bed.clients_[0]->on_unclaimed = [&](packet::ActivePacket&) {
      received = bed.sim_.now();
    };
    bed.net_.transmit(*bed.clients_[0], 0, pkt.serialize());
    bed.run_for(10 * kMillisecond);
    EXPECT_GE(received, 0) << nops;
    return received - sent;
  };
  const SimTime rtt10 = probe(8);
  const SimTime rtt20 = probe(18);
  const SimTime rtt30 = probe(28);
  EXPECT_LT(rtt10, rtt20);
  EXPECT_LT(rtt20, rtt30);  // 30 instructions recirculate
  // Each ten instructions engage another pipeline: +0.5 us per step
  // (Fig. 8b), plus a few ns of serialization for the longer programs.
  EXPECT_NEAR(static_cast<double>(rtt20 - rtt10), 500.0, 25.0);
  EXPECT_NEAR(static_cast<double>(rtt30 - rtt20), 500.0, 25.0);
}

TEST(E2E, MalformedRequestDeniedNotCrashed) {
  Testbed bed;
  // Crafted request: access position beyond the program length.
  packet::ActivePacket pkt;
  pkt.initial.type = packet::ActiveType::kAllocRequest;
  pkt.initial.seq = 9;
  pkt.arguments = packet::ArgumentHeader{{3 /*len*/, 0, 1, 0}};
  packet::AllocRequestHeader req;
  req.slots[0] = {200, 1, 0x01};  // position 200 >> length 3
  pkt.request = req;
  pkt.ethernet.src = kClientMacBase;
  pkt.ethernet.dst = kSwitchMac;

  bool denied = false;
  bed.clients_[0]->on_unclaimed = [&](packet::ActivePacket& response) {
    if (response.initial.type == packet::ActiveType::kAllocResponse &&
        (response.initial.flags & packet::kFlagAllocFailed) != 0) {
      denied = true;
    }
  };
  bed.net_.transmit(*bed.clients_[0], 0, pkt.serialize());
  bed.run_for(1 * kSecond);
  EXPECT_TRUE(denied);

  // The control plane still works afterwards.
  auto cache = std::make_shared<CacheService>("cache", kServerMac);
  bed.clients_[0]->register_service(cache);
  cache->request_allocation();
  bed.run_for(2 * kSecond);
  EXPECT_TRUE(cache->operational());
}

TEST(E2E, PrivilegeEnforcementAtTheSwitch) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  SwitchNode::Config cfg;
  cfg.enforce_privilege = true;
  auto sw = std::make_shared<SwitchNode>("switch", cfg);
  auto client = std::make_shared<ClientNode>("c", 0x100, kSwitchMac);
  net.attach(sw);
  net.attach(client);
  net.connect(*sw, 1, *client, 0);
  sw->bind(0x100, 1);

  active::Program program;
  program.push({active::Opcode::kDrop});
  auto pkt = packet::ActivePacket::make_program(
      0, packet::ArgumentHeader{}, program);
  pkt.ethernet.src = 0x100;
  pkt.ethernet.dst = kSwitchMac;
  net.transmit(*client, 0, pkt.serialize());
  sim.run();
  EXPECT_EQ(sw->runtime().stats().drops_privilege, 1u);
}

TEST(E2E, DefaultRecircBudgetAppliesToAdmittedFids) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  SwitchNode::Config cfg;
  cfg.default_recirc_budget = {1e-9, 1.0};  // one extra pass, ever
  auto sw = std::make_shared<SwitchNode>("switch", cfg);
  auto client = std::make_shared<ClientNode>("c", 0x100, kSwitchMac);
  net.attach(sw);
  net.attach(client);
  net.connect(*sw, 1, *client, 0);
  sw->bind(0x100, 1);

  auto monitor = std::make_shared<FrequentItemService>("m", 0xbb);
  client->register_service(monitor);
  monitor->request_allocation();
  sim.run_until(2 * kSecond);
  ASSERT_TRUE(monitor->operational());

  // Heavy observations recirculate (the store pass); after the budget's
  // single extra pass, further recirculating capsules drop.
  monitor->observe(0x1);
  monitor->observe(0x2);
  monitor->observe(0x3);
  sim.run_until(sim.now() + kSecond);
  EXPECT_GE(sw->runtime().stats().drops_recirc_budget, 1u);
}

TEST(E2E, SwitchStatsTrackTraffic) {
  Testbed bed;
  auto cache = std::make_shared<CacheService>("cache", kServerMac);
  bed.clients_[0]->register_service(cache);
  cache->request_allocation();
  bed.run_for(2 * kSecond);
  cache->populate({{1, 2}});
  bed.run_for(1 * kSecond);
  EXPECT_GT(bed.switch_->node_stats().returned, 0u);  // populate acks RTS'd
  EXPECT_GT(bed.switch_->runtime().stats().packets, 0u);
}

}  // namespace
}  // namespace artmt
