// The online memory allocator (Section 4.2): admits one application at a
// time, searching the application's mutant space for the placement that a
// configured scheme scores best (worst-fit over fungible memory by
// default), then computes final assignments for every (re)allocated
// instance. Existing applications are never moved across stages.
//
// Two search paths produce byte-identical placements:
//   - kIndexed (default): per-stage feasibility and scores are O(1) reads
//     of the incremental StageState accounting and the StageScoreIndex;
//     per-mutant demands collapse into epoch-stamped scratch arrays (no
//     allocation per candidate), hopeless requests are rejected against
//     the index's global bound before enumerating a single mutant, and
//     disturbed apps are collected from per-stage rebalance change lists.
//   - kRescan (legacy): the original full-rescan implementation -- a map
//     of demands per mutant, linear stage scans, and whole-allocator
//     region snapshots diffed before/after. Kept as the reference the
//     parity tests and the allocator bench gate compare against.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "alloc/mutant.hpp"
#include "alloc/request.hpp"
#include "alloc/stage_index.hpp"
#include "alloc/stage_state.hpp"
#include "common/types.hpp"

namespace artmt::telemetry {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace artmt::telemetry

namespace artmt::alloc {

// Allocation schemes compared in Section 6.4 / Figure 11.
enum class Scheme {
  kWorstFit,  // stages with the most fungible memory (default)
  kBestFit,   // stages with the least fungible memory that still fit
  kFirstFit,  // first feasible mutant in enumeration order
  kRealloc,   // minimize the number of disturbed resident applications
};

const char* scheme_name(Scheme scheme);

// Which admission-search implementation runs (see the header comment).
// Placements are identical either way; kIndexed is O(changed) per
// operation where kRescan is O(residents).
enum class SearchMode {
  kIndexed,  // incremental indexes (default)
  kRescan,   // legacy full-rescan reference path
};

const char* search_mode_name(SearchMode mode);

// How AllocationOutcome::search_ms / assign_ms are produced. The default
// measures real host time (the paper's Figs. 5/12 methodology), which
// makes downstream virtual timelines host-load dependent: the switch
// schedules provisioning after compute_ms of virtual time. Experiments
// that need reproducible timelines (the sharded engine's determinism
// guarantee, CI comparisons) switch to the modeled form, where both
// durations derive from deterministic work counts instead.
struct ComputeModel {
  bool modeled = false;
  double search_us_per_mutant = 0.2;  // feasibility check cost per mutant
  double assign_us_per_block = 0.5;   // assignment cost per block moved

  static ComputeModel wall_clock() { return {}; }
  static ComputeModel deterministic() {
    ComputeModel m;
    m.modeled = true;
    return m;
  }
};

struct AppRecord {
  AppId id = 0;
  bool elastic = false;
  bool demoted = false;               // squeezed to minimum shares (cap=min)
  Mutant chosen;                      // global logical stage per access
  std::map<u32, u32> stage_demand;    // physical-logical stage -> blocks
  AllocationRequest request;
};

struct AllocationOutcome {
  bool success = false;
  AppId app = 0;
  Mutant chosen;
  std::map<u32, Interval> regions;  // the new app's block regions per stage
  std::vector<AppId> reallocated;   // resident apps whose regions changed
  u64 mutants_considered = 0;
  double search_ms = 0.0;  // feasibility search (fast; dominates failures)
  double assign_ms = 0.0;  // final assignment for all (re)allocated apps
};

// Result of the migration engine's re-slide primitive (reallocate_app).
struct MoveOutcome {
  bool success = false;  // false only for a non-resident id
  bool moved = false;    // any of the app's regions actually changed
  AppId app = 0;
  Mutant chosen;  // placement after the re-slide (== before when !moved)
  std::map<u32, Interval> old_regions;
  std::map<u32, Interval> new_regions;
  // Other residents whose regions NET-changed (apps shuffled during the
  // remove/re-add but restored to their original regions do not appear).
  std::vector<AppId> reallocated;
  u64 mutants_considered = 0;
  double search_ms = 0.0;
  double assign_ms = 0.0;
};

class Allocator {
 public:
  Allocator(const StageGeometry& geometry, u32 blocks_per_stage,
            Scheme scheme = Scheme::kWorstFit,
            MutantPolicy policy = MutantPolicy::most_constrained());

  // Admits an application (or fails, leaving state untouched).
  AllocationOutcome allocate(const AllocationRequest& request);

  // Releases an application; returns the apps rebalanced as a result.
  // A non-resident id is a graceful no-op (empty result, counted under
  // `alloc.dealloc_unknown`): release retries and departure races are
  // expected under churn and must not wedge the control plane.
  std::vector<AppId> deallocate(AppId id);

  // --- background migration primitives (ROADMAP item 2) ---
  // Demotion: squeezes a resident elastic app to its minimum share in
  // every stage it occupies (cap := min) so the freed share flows to hot
  // members; promotion restores the request's cap. Both return every
  // resident whose regions changed, INCLUDING the target itself when its
  // share moved. Unknown, inelastic, or already-(un)demoted ids are
  // graceful no-ops (empty result).
  std::vector<AppId> demote_elastic(AppId id);
  std::vector<AppId> promote_elastic(AppId id);
  [[nodiscard]] bool demoted(AppId id) const;

  // Re-slide: re-runs the admission search for a resident app as if it
  // arrived now (same id, same request), freeing its regions first -- the
  // defragmentation engine's compaction primitive. The vacated placement
  // keeps the search feasible, so a resident id always succeeds; when the
  // best placement is unchanged the op reports !moved with no disturbance.
  MoveOutcome reallocate_app(AppId id);

  // --- queries (drive the evaluation figures) ---
  [[nodiscard]] double utilization() const;  // allocated / total blocks
  [[nodiscard]] u32 resident_count() const {
    return static_cast<u32>(apps_.size());
  }
  [[nodiscard]] const std::unordered_map<AppId, AppRecord>& apps() const {
    return apps_;
  }
  [[nodiscard]] bool resident(AppId id) const { return apps_.contains(id); }
  // The app's current block regions, stage -> interval.
  [[nodiscard]] std::map<u32, Interval> regions_of(AppId id) const;
  // Total blocks currently held by each elastic app (fairness input).
  [[nodiscard]] std::vector<double> elastic_totals() const;
  [[nodiscard]] const StageState& stage(u32 index) const;
  [[nodiscard]] const StageScoreIndex& stage_index() const { return index_; }
  [[nodiscard]] const StageGeometry& geometry() const { return geometry_; }
  [[nodiscard]] u32 blocks_per_stage() const { return blocks_per_stage_; }
  [[nodiscard]] Scheme scheme() const { return scheme_; }
  [[nodiscard]] const MutantPolicy& policy() const { return policy_; }

  // Mirrors admissions/failures, block movement, the resident-app gauge,
  // and search/assign durations into `metrics` under component "alloc"
  // (nullptr detaches). Outcomes also emit trace events while a
  // telemetry::TraceSink is installed.
  void set_metrics(telemetry::MetricsRegistry* metrics);

  // Selects wall-clock vs modeled compute timing for future allocate()
  // calls (see ComputeModel).
  void set_compute_model(const ComputeModel& model) { compute_model_ = model; }
  [[nodiscard]] const ComputeModel& compute_model() const {
    return compute_model_;
  }

  // Selects the admission-search implementation (see SearchMode). Safe to
  // flip between operations: both paths share the same stage state.
  void set_search_mode(SearchMode mode) { search_mode_ = mode; }
  [[nodiscard]] SearchMode search_mode() const { return search_mode_; }

  // Hotness-directed placement: a per-stage tie-break bias for the
  // placement search. When two candidate mutants score identically under
  // the scheme, the one whose touched stages carry the smaller bias total
  // wins; scheme scores always dominate. Empty (the default) keeps the
  // legacy first-in-enumeration-order tie-break, and kFirstFit never
  // compares scores at all. Must be empty or logical_stages long.
  void set_stage_bias(std::vector<u64> bias);
  [[nodiscard]] const std::vector<u64>& stage_bias() const {
    return stage_bias_;
  }

 private:
  // Per-stage demand of a request under a mutant (accesses in the same
  // physical stage collapse to their maximum demand: one object per stage).
  [[nodiscard]] std::map<u32, u32> stage_demands(
      const AllocationRequest& request, const Mutant& mutant) const;

  [[nodiscard]] bool feasible(const AllocationRequest& request,
                              const std::map<u32, u32>& demands) const;

  // Lower is better; used by worst/best/realloc schemes.
  [[nodiscard]] double score(const AllocationRequest& request,
                             const std::map<u32, u32>& demands) const;

  // One scheme term for `stage` under `demand`; shared by both paths so
  // their scores are bit-identical (integer-valued double addends).
  [[nodiscard]] double score_term(const AllocationRequest& request, u32 stage,
                                  u32 demand) const;

  // Indexed search body: collapses the candidate's demands into the
  // epoch-stamped scratch arrays and evaluates feasibility + score with
  // O(1) per-stage reads. Returns false when infeasible.
  [[nodiscard]] bool evaluate_indexed(const AllocationRequest& request,
                                      const Mutant& candidate, double& score);

  // Phase-1 search shared by allocate() and reallocate_app(): global
  // hopeless-prune (indexed only; reported via `pruned` with
  // considered == 0), then the mutant walk. In indexed mode with a
  // least-constrained policy (extra_passes > 0) the walk runs through the
  // per-(access, stage) StageFilter so the blown-up enumeration space is
  // pruned by subtree instead of leaf-by-leaf; the default
  // most-constrained policy keeps the exact legacy visit counts.
  bool search_placement(const AllocationRequest& request, Mutant& best,
                        u64& considered, bool& pruned);

  // Snapshot of every app's regions (kRescan reallocation diffing).
  [[nodiscard]] std::map<AppId, std::map<u32, Interval>> snapshot() const;
  [[nodiscard]] std::vector<AppId> diff_against(
      const std::map<AppId, std::map<u32, Interval>>& before,
      AppId exclude) const;

  // kIndexed disturbance report: union of the touched stages' rebalance
  // change lists, sorted and deduplicated, excluding `exclude`.
  [[nodiscard]] std::vector<AppId> collect_changed(
      const std::map<u32, u32>& touched, AppId exclude) const;

  StageGeometry geometry_;
  u32 blocks_per_stage_;
  Scheme scheme_;
  MutantPolicy policy_;
  std::vector<StageState> stages_;
  StageScoreIndex index_;
  ComputeModel compute_model_;
  SearchMode search_mode_ = SearchMode::kIndexed;
  std::vector<u64> stage_bias_;
  std::unordered_map<AppId, AppRecord> apps_;
  AppId next_id_ = 1;

  // Scratch for the indexed per-mutant demand collapse (no allocation per
  // candidate: stamped entries expire by epoch, not by clearing).
  std::vector<u32> scratch_demand_;
  std::vector<u64> scratch_stamp_;
  std::vector<u32> scratch_stages_;
  u64 scratch_epoch_ = 0;
  // Scratch for the least-constrained pruned walk: feasibility of access i
  // on stage s, precomputed once per search (accesses * stages bytes).
  std::vector<u8> scratch_feasible_;

  telemetry::Counter* m_allocations_ = nullptr;
  telemetry::Counter* m_failures_ = nullptr;
  telemetry::Counter* m_deallocations_ = nullptr;
  telemetry::Counter* m_dealloc_unknown_ = nullptr;
  telemetry::Counter* m_search_pruned_ = nullptr;
  telemetry::Counter* m_app_moves_ = nullptr;
  telemetry::Counter* m_demotions_ = nullptr;
  telemetry::Counter* m_promotions_ = nullptr;
  telemetry::Counter* m_blocks_allocated_ = nullptr;
  telemetry::Counter* m_blocks_freed_ = nullptr;
  telemetry::Gauge* m_resident_ = nullptr;
  telemetry::Histogram* m_search_us_ = nullptr;
  telemetry::Histogram* m_assign_us_ = nullptr;
};

}  // namespace artmt::alloc
