// Microbenchmarks (google-benchmark) for the core data-plane and
// control-plane primitives: capsule parse/serialize, instruction
// execution, hashing, mutant enumeration, and single allocations.
#include <benchmark/benchmark.h>

#include "active/assembler.hpp"
#include "alloc/allocator.hpp"
#include "apps/programs.hpp"
#include "packet/active_packet.hpp"
#include "rmt/hash.hpp"
#include "runtime/runtime.hpp"

namespace artmt {
namespace {

void BM_PacketSerializeParse(benchmark::State& state) {
  const auto program = apps::cache_query_program();
  const auto pkt = packet::ActivePacket::make_program(
      1, packet::ArgumentHeader{{1, 2, 3, 4}}, program);
  for (auto _ : state) {
    auto frame = pkt.serialize();
    benchmark::DoNotOptimize(packet::ActivePacket::parse(frame));
  }
}
BENCHMARK(BM_PacketSerializeParse);

void BM_RuntimeCacheQuery(benchmark::State& state) {
  rmt::PipelineConfig cfg;
  rmt::Pipeline pipeline(cfg);
  runtime::ActiveRuntime runtime(pipeline);
  for (u32 s = 0; s < 20; ++s) pipeline.stage(s).install(1, 0, 4096, 0);
  const auto program = apps::cache_query_program();
  for (auto _ : state) {
    auto pkt = packet::ActivePacket::make_program(
        1, packet::ArgumentHeader{{10, 2, 3, 0}}, program);
    benchmark::DoNotOptimize(runtime.execute(pkt));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeCacheQuery);

void BM_RuntimeMonitorProgram(benchmark::State& state) {
  rmt::PipelineConfig cfg;
  rmt::Pipeline pipeline(cfg);
  runtime::ActiveRuntime runtime(pipeline);
  for (u32 s = 0; s < 20; ++s) pipeline.stage(s).install(1, 0, 4096, 0);
  const auto program = apps::hh_monitor_program();
  u32 key = 0;
  for (auto _ : state) {
    auto pkt = packet::ActivePacket::make_program(
        1, packet::ArgumentHeader{{++key, key * 3, 0, 0}}, program);
    benchmark::DoNotOptimize(runtime.execute(pkt));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeMonitorProgram);

void BM_HashWords(benchmark::State& state) {
  const std::array<Word, 4> words{1, 2, 3, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rmt::hash_words(words, 1));
  }
}
BENCHMARK(BM_HashWords);

void BM_EnumerateCacheMutants(benchmark::State& state) {
  const auto request = apps::cache_request();
  const alloc::StageGeometry geom{20, 10};
  const auto policy = state.range(0) == 0
                          ? alloc::MutantPolicy::most_constrained()
                          : alloc::MutantPolicy::least_constrained(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alloc::enumerate_mutants(request, geom, policy));
  }
}
BENCHMARK(BM_EnumerateCacheMutants)->Arg(0)->Arg(1);

void BM_AllocateCacheInstance(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    alloc::Allocator allocator({20, 10}, 368);
    for (int i = 0; i < state.range(0); ++i) {
      allocator.allocate(apps::cache_request());
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(allocator.allocate(apps::cache_request()));
  }
}
BENCHMARK(BM_AllocateCacheInstance)->Arg(0)->Arg(20)->Arg(100);

void BM_AssembleListing1(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::cache_query_program());
  }
}
BENCHMARK(BM_AssembleListing1);

}  // namespace
}  // namespace artmt

BENCHMARK_MAIN();
