#include "runtime/runtime.hpp"

#include <algorithm>

#include "rmt/hash.hpp"
#include "telemetry/metrics.hpp"

namespace artmt::runtime {

// Pre-registered handles so the per-packet path never touches the
// registry mutex: per-FID families memoize, the rest are direct pointers.
struct RuntimeMetrics {
  explicit RuntimeMetrics(telemetry::MetricsRegistry& r)
      : packets(r, "runtime", "packets"),
        recirculations(r, "runtime", "recirculations"),
        instructions(&r.counter("runtime", "instructions")),
        drops_protection(&r.counter("runtime", "drops_protection")),
        drops_no_allocation(&r.counter("runtime", "drops_no_allocation")),
        drops_recirc_limit(&r.counter("runtime", "drops_recirc_limit")),
        drops_recirc_budget(&r.counter("runtime", "drops_recirc_budget")),
        drops_privilege(&r.counter("runtime", "drops_privilege")),
        drops_explicit(&r.counter("runtime", "drops_explicit")),
        rts_packets(&r.counter("runtime", "rts_packets")),
        forwarded_unprocessed(
            &r.counter("runtime", "forwarded_unprocessed")) {}

  telemetry::CounterFamily packets;
  telemetry::CounterFamily recirculations;
  telemetry::Counter* instructions;
  telemetry::Counter* drops_protection;
  telemetry::Counter* drops_no_allocation;
  telemetry::Counter* drops_recirc_limit;
  telemetry::Counter* drops_recirc_budget;
  telemetry::Counter* drops_privilege;
  telemetry::Counter* drops_explicit;
  telemetry::Counter* rts_packets;
  telemetry::Counter* forwarded_unprocessed;
};

ActiveRuntime::ActiveRuntime(rmt::Pipeline& pipeline) : pipeline_(&pipeline) {}

ActiveRuntime::~ActiveRuntime() = default;

void ActiveRuntime::set_metrics(telemetry::MetricsRegistry* metrics) {
  metrics_ =
      metrics == nullptr ? nullptr : std::make_unique<RuntimeMetrics>(*metrics);
}

using active::CompiledInsn;
using active::CompiledProgram;
using active::ExecCursor;
using active::Instruction;
using active::kNoIndex;
using active::Opcode;
using packet::ActivePacket;

namespace {

// Removes instructions whose `done` flag is set (the parser-side shrink
// optimization of Section 3.1). Compat path only: the switch's hot path
// never materializes a mutable Program and synthesizes the shrunk reply
// from the cursor instead (proto::encode_executed).
void shrink(active::Program& program) {
  auto& code = program.code();
  code.erase(std::remove_if(code.begin(), code.end(),
                            [](const Instruction& i) { return i.done; }),
             code.end());
}

}  // namespace

bool ActiveRuntime::execute_instruction(ExecContext& ctx, Phv& phv,
                                        const CompiledInsn& insn,
                                        u32 logical_stage,
                                        const PacketMeta& meta) {
  auto& args = *ctx.args;
  const Fid fid = ctx.fid;
  rmt::Stage& stage = pipeline_->stage(logical_stage);

  // Memory instructions: protection check first (range match on MAR).
  const rmt::FidEntry* entry = nullptr;
  if (insn.memory_access) {
    entry = stage.lookup(fid);
    if (entry == nullptr) {
      fault_ = Fault::kNoAllocation;
      phv.drop = true;
      return false;
    }
    if (!entry->covers(phv.mar)) {
      fault_ = Fault::kProtectionViolation;
      phv.drop = true;
      return false;
    }
  }

  switch (insn.op) {
    case Opcode::kNop:
      break;
    // --- data copying ---
    case Opcode::kMbrLoad:
      phv.mbr = args[insn.operand];
      break;
    case Opcode::kMbrStore:
      args[insn.operand] = phv.mbr;
      break;
    case Opcode::kMbr2Load:
      phv.mbr2 = args[insn.operand];
      break;
    case Opcode::kMarLoad:
      phv.mar = args[insn.operand];
      break;
    case Opcode::kCopyMbr2Mbr:
      phv.mbr2 = phv.mbr;
      break;
    case Opcode::kCopyMbrMbr2:
      phv.mbr = phv.mbr2;
      break;
    case Opcode::kCopyMbrMar:
      phv.mbr = phv.mar;
      break;
    case Opcode::kCopyMarMbr:
      phv.mar = phv.mbr;
      break;
    case Opcode::kCopyHashdataMbr:
      phv.hashdata[insn.operand % active::kHashdataWords] = phv.mbr;
      break;
    case Opcode::kCopyHashdataMbr2:
      phv.hashdata[insn.operand % active::kHashdataWords] = phv.mbr2;
      break;
    case Opcode::kCopyHashdata5Tuple:
      phv.hashdata = meta.five_tuple;
      break;
    // --- data manipulation ---
    case Opcode::kMbrAddMbr2:
      phv.mbr += phv.mbr2;
      break;
    case Opcode::kMarAddMbr:
      phv.mar += phv.mbr;
      break;
    case Opcode::kMarAddMbr2:
      phv.mar += phv.mbr2;
      break;
    case Opcode::kMarMbrAddMbr2:
      phv.mar = phv.mbr + phv.mbr2;
      break;
    case Opcode::kMbrSubtractMbr2:
      phv.mbr -= phv.mbr2;
      break;
    case Opcode::kBitAndMarMbr:
      phv.mar &= phv.mbr;
      break;
    case Opcode::kBitOrMbrMbr2:
      phv.mbr |= phv.mbr2;
      break;
    case Opcode::kMbrEqualsMbr2:
      phv.mbr ^= phv.mbr2;
      break;
    case Opcode::kMbrEqualsData:
      phv.mbr ^= args[insn.operand];
      break;
    case Opcode::kMax:
      phv.mbr = std::max(phv.mbr, phv.mbr2);
      break;
    case Opcode::kMin:
      phv.mbr = std::min(phv.mbr, phv.mbr2);
      break;
    case Opcode::kRevMin:
      phv.mbr2 = std::min(phv.mbr, phv.mbr2);
      break;
    case Opcode::kSwapMbrMbr2:
      std::swap(phv.mbr, phv.mbr2);
      break;
    case Opcode::kMbrNot:
      phv.mbr = ~phv.mbr;
      break;
    // --- control flow ---
    case Opcode::kReturn:
      phv.complete = true;
      break;
    case Opcode::kCret:
      if (phv.mbr != 0) phv.complete = true;
      break;
    case Opcode::kCreti:
      if (phv.mbr == 0) phv.complete = true;
      break;
    case Opcode::kCjump:
      if (phv.mbr != 0) {
        phv.disabled = true;
        phv.pending_label = insn.label;
      }
      break;
    case Opcode::kCjumpi:
      if (phv.mbr == 0) {
        phv.disabled = true;
        phv.pending_label = insn.label;
      }
      break;
    case Opcode::kUjump:
      phv.disabled = true;
      phv.pending_label = insn.label;
      break;
    // --- memory access (entry checked above) ---
    case Opcode::kMemWrite:
      stage.memory().write(phv.mar, phv.mbr);
      phv.mar = static_cast<Word>(static_cast<i64>(phv.mar) + entry->advance);
      break;
    case Opcode::kMemRead:
      phv.mbr = stage.memory().read(phv.mar);
      phv.mar = static_cast<Word>(static_cast<i64>(phv.mar) + entry->advance);
      break;
    case Opcode::kMemIncrement:
      phv.mbr = stage.memory().increment(phv.mar, phv.inc);
      phv.mar = static_cast<Word>(static_cast<i64>(phv.mar) + entry->advance);
      break;
    case Opcode::kMemMinread:
      phv.mbr = stage.memory().min_read(phv.mar, phv.mbr);
      phv.mar = static_cast<Word>(static_cast<i64>(phv.mar) + entry->advance);
      break;
    case Opcode::kMemMinreadinc: {
      const Word count = stage.memory().increment(phv.mar, phv.inc);
      phv.mbr = count;
      phv.mbr2 = std::min(count, phv.mbr2);
      phv.mar = static_cast<Word>(static_cast<i64>(phv.mar) + entry->advance);
      break;
    }
    // ADDR_MASK / ADDR_OFFSET are resolved in execute(), which applies the
    // compiled next-access table.
    case Opcode::kAddrMask:
    case Opcode::kAddrOffset:
      break;
    case Opcode::kHash:
      phv.mar = rmt::hash_words(phv.hashdata, insn.operand);
      break;
    // --- packet forwarding ---
    // FORK, SET_DST, and DROP can affect other tenants' traffic; under
    // privilege enforcement (Section 7.2) they require a trusted shim's
    // flag.
    case Opcode::kDrop:
      if (enforce_privilege_ &&
          (ctx.flags & packet::kFlagPrivileged) == 0) {
        fault_ = Fault::kPrivilege;
        phv.drop = true;
        return false;
      }
      fault_ = Fault::kExplicitDrop;
      phv.drop = true;
      return false;
    case Opcode::kFork:
      if (enforce_privilege_ &&
          (ctx.flags & packet::kFlagPrivileged) == 0) {
        fault_ = Fault::kPrivilege;
        phv.drop = true;
        return false;
      }
      phv.fork = true;
      break;
    case Opcode::kSetDst:
      if (enforce_privilege_ &&
          (ctx.flags & packet::kFlagPrivileged) == 0) {
        fault_ = Fault::kPrivilege;
        phv.drop = true;
        return false;
      }
      phv.dst_overridden = true;
      phv.dst_value = phv.mbr;
      break;
    case Opcode::kRts:
      phv.rts = true;
      phv.rts_stage = logical_stage;
      break;
    case Opcode::kCrts:
      if (phv.mbr != 0) {
        phv.rts = true;
        phv.rts_stage = logical_stage;
      }
      break;
    case Opcode::kEof:
      break;
    default:
      break;
  }
  return true;
}

void ActiveRuntime::set_recirc_budget(Fid fid, const RecircBudget& budget) {
  BucketState state;
  state.budget = budget;
  state.tokens = budget.burst;
  recirc_buckets_[fid] = state;
}

void ActiveRuntime::clear_recirc_budget(Fid fid) {
  recirc_buckets_.erase(fid);
}

bool ActiveRuntime::charge_recirculation(Fid fid, u32 extra_passes,
                                         SimTime now) {
  const auto it = recirc_buckets_.find(fid);
  if (it == recirc_buckets_.end() ||
      it->second.budget.tokens_per_second <= 0.0) {
    return true;  // unlimited
  }
  BucketState& state = it->second;
  // `>=` so a zero-elapsed call still runs the refill bookkeeping (it adds
  // zero tokens but keeps last_refill current); a clock that somehow reads
  // earlier than last_refill charges without refilling rather than
  // stalling the bucket.
  if (now >= state.last_refill) {
    const double elapsed_s =
        static_cast<double>(now - state.last_refill) / kSecond;
    state.tokens = std::min(state.budget.burst,
                            state.tokens +
                                elapsed_s * state.budget.tokens_per_second);
    state.last_refill = now;
  }
  if (state.tokens < static_cast<double>(extra_passes)) return false;
  state.tokens -= static_cast<double>(extra_passes);
  return true;
}

ExecutionResult ActiveRuntime::execute(const CompiledProgram& program,
                                       ExecContext& ctx, ExecCursor& cursor,
                                       const PacketMeta& meta, SimTime now) {
  const auto& cfg = pipeline_->config();
  ExecutionResult res;
  ++stats_.packets;
  if (metrics_) metrics_->packets.at(ctx.fid).inc();
  res.latency = cfg.pass_latency;

  cursor.reset(program.size());
  cursor.shrink = (ctx.flags & packet::kFlagNoShrink) == 0;

  if (is_deactivated(ctx.fid) &&
      (ctx.flags & packet::kFlagManagement) == 0) {
    res.fault = Fault::kDeactivated;
    ++stats_.forwarded_unprocessed;
    if (metrics_) metrics_->forwarded_unprocessed->inc();
    return res;
  }

  Phv phv;
  if (program.preload_mar()) phv.mar = (*ctx.args)[0];
  if (program.preload_mbr()) phv.mbr = (*ctx.args)[1];

  const auto& code = program.code();
  fault_ = Fault::kNone;
  res.executed = true;

  const u32 stages = cfg.logical_stages;
  const auto emit_trace = [&](u32 index, active::Opcode op, bool skipped,
                              const Phv& state) {
    if (!trace_) return;
    TraceEvent event;
    event.index = index;
    event.logical_stage = index % stages;
    event.pass = index / stages;
    event.op = op;
    event.skipped = skipped;
    event.phv = state;
    trace_(event);
  };
  // pass / stage indices carried incrementally: a divide per instruction
  // is measurable at line rate.
  u32 pc = 0;
  u32 pass_index = 0;
  u32 logical_stage = 0;
  const auto advance_stage = [&] {
    if (++logical_stage == stages) {
      logical_stage = 0;
      ++pass_index;
    }
  };
  for (; pc < code.size(); ++pc, advance_stage()) {
    if (phv.complete) break;
    if (pass_index >= cfg.max_recirculations + 1) {
      fault_ = Fault::kRecircLimit;
      phv.drop = true;
      break;
    }
    const CompiledInsn& insn = code[pc];

    if (phv.disabled) {
      // Skipped instructions still consume their stage; execution resumes
      // at the branch's precompiled target index.
      if (pc == cursor.resume_index) {
        phv.disabled = false;
        phv.pending_label = 0;
        cursor.resume_index = kNoIndex;
      } else {
        cursor.mark_done(pc);
        ++res.stages_consumed;
        emit_trace(pc, insn.op, /*skipped=*/true, phv);
        continue;
      }
    }

    // Resolve ADDR_MASK / ADDR_OFFSET via the compiled next-access table:
    // they translate MAR for the stage of the NEXT memory access.
    if (insn.op == Opcode::kAddrMask || insn.op == Opcode::kAddrOffset) {
      const rmt::FidEntry* target =
          insn.next_access == kNoIndex
              ? nullptr
              : pipeline_->stage(insn.next_access % stages)
                    .lookup(ctx.fid);
      if (target == nullptr) {
        fault_ = Fault::kNoAllocation;
        phv.drop = true;
        cursor.mark_done(pc);
        break;
      }
      if (insn.op == Opcode::kAddrMask) {
        phv.mar &= target->mask;
      } else {
        phv.mar += target->offset;
      }
      cursor.mark_done(pc);
      ++res.stages_consumed;
      ++res.instructions_executed;
      emit_trace(pc, insn.op, /*skipped=*/false, phv);
      continue;
    }

    const bool ok = execute_instruction(ctx, phv, insn, logical_stage, meta);
    if (phv.disabled) {
      // This instruction took a branch: arm its precompiled resume point
      // (kNoIndex for a missing target disables to the end, as before).
      cursor.resume_index = insn.branch_target;
    }
    cursor.mark_done(pc);
    ++res.stages_consumed;
    ++res.instructions_executed;
    emit_trace(pc, insn.op, /*skipped=*/false, phv);
    if (!ok) break;
  }

  const u32 consumed = std::max<u32>(1, static_cast<u32>(pc));
  res.passes = (consumed - 1) / stages + 1;

  // RTS from an egress stage cannot change ports on this pass; it costs one
  // extra recirculation (Section 3.1). FORK likewise recirculates.
  if (phv.rts && !pipeline_->is_ingress(phv.rts_stage)) ++res.passes;
  if (phv.fork) ++res.passes;

  // Latency: ~pass_latency per 10-stage pipeline engaged (Fig. 8b measures
  // +0.5 us from 10 to 20 to 30 instructions); a port-change or FORK
  // recirculation loops through both pipelines once more.
  const u32 pipelines_engaged =
      std::max<u32>(1, (consumed + cfg.ingress_stages - 1) /
                           cfg.ingress_stages);
  u32 penalty_pipelines = 0;
  if (phv.rts && !pipeline_->is_ingress(phv.rts_stage)) penalty_pipelines += 2;
  if (phv.fork) penalty_pipelines += 2;
  res.latency = static_cast<SimTime>(pipelines_engaged + penalty_pipelines) *
                cfg.pass_latency;

  // Recirculation-bandwidth governor: packets whose extra passes exceed
  // the FID's remaining budget are dropped (side effects of completed
  // stages persist, as on hardware).
  if (res.passes > 1 && fault_ == Fault::kNone &&
      !charge_recirculation(ctx.fid, res.passes - 1, now)) {
    fault_ = Fault::kRecircBudget;
    phv.drop = true;
  }
  stats_.instructions += res.instructions_executed;
  stats_.recirculations += res.passes - 1;
  if (metrics_) {
    metrics_->instructions->inc(res.instructions_executed);
    if (res.passes > 1) {
      metrics_->recirculations.at(ctx.fid).inc(res.passes - 1);
    }
  }

  res.phv = phv;
  res.fault = fault_;
  res.forked = phv.fork;

  if (phv.drop) {
    res.verdict = Verdict::kDrop;
    telemetry::Counter* drop_counter = nullptr;
    switch (fault_) {
      case Fault::kExplicitDrop:
        ++stats_.drops_explicit;
        if (metrics_) drop_counter = metrics_->drops_explicit;
        break;
      case Fault::kProtectionViolation:
        ++stats_.drops_protection;
        if (metrics_) drop_counter = metrics_->drops_protection;
        break;
      case Fault::kNoAllocation:
        ++stats_.drops_no_allocation;
        if (metrics_) drop_counter = metrics_->drops_no_allocation;
        break;
      case Fault::kRecircLimit:
        ++stats_.drops_recirc_limit;
        if (metrics_) drop_counter = metrics_->drops_recirc_limit;
        break;
      case Fault::kRecircBudget:
        ++stats_.drops_recirc_budget;
        if (metrics_) drop_counter = metrics_->drops_recirc_budget;
        break;
      case Fault::kPrivilege:
        ++stats_.drops_privilege;
        if (metrics_) drop_counter = metrics_->drops_privilege;
        break;
      default:
        break;
    }
    if (drop_counter != nullptr) drop_counter->inc();
    return res;
  }

  if (phv.rts) {
    res.verdict = Verdict::kReturnToSender;
    if (ctx.eth_src != nullptr && ctx.eth_dst != nullptr) {
      std::swap(*ctx.eth_src, *ctx.eth_dst);
    }
    ++stats_.rts_packets;
    if (metrics_) metrics_->rts_packets->inc();
  }
  return res;
}

ExecutionResult ActiveRuntime::execute(const CompiledProgram& program,
                                       ActivePacket& pkt, ExecCursor& cursor,
                                       const PacketMeta& meta, SimTime now) {
  if (!pkt.arguments) {
    // Malformed capsule: forward untouched.
    ExecutionResult res;
    ++stats_.packets;
    if (metrics_) metrics_->packets.at(telemetry::kNoFid).inc();
    res.latency = pipeline_->config().pass_latency;
    return res;
  }
  ExecContext ctx;
  ctx.args = &pkt.arguments->args;
  ctx.fid = pkt.initial.fid;
  ctx.flags = pkt.initial.flags;
  ctx.eth_src = &pkt.ethernet.src;
  ctx.eth_dst = &pkt.ethernet.dst;
  return execute(program, ctx, cursor, meta, now);
}

ExecutionResult ActiveRuntime::execute(packet::ProgramView& view,
                                       ExecCursor& cursor,
                                       const PacketMeta& meta, SimTime now) {
  ExecContext ctx;
  ctx.args = &view.arguments.args;
  ctx.fid = view.initial.fid;
  ctx.flags = view.initial.flags;
  ctx.eth_src = &view.ethernet.src;
  ctx.eth_dst = &view.ethernet.dst;
  return execute(*view.compiled, ctx, cursor, meta, now);
}

ExecutionResult ActiveRuntime::execute(ActivePacket& pkt,
                                       const PacketMeta& meta, SimTime now) {
  if (pkt.initial.type != packet::ActiveType::kProgram ||
      (!pkt.program && !pkt.compiled) || !pkt.arguments) {
    // Control packets and passive traffic just forward.
    ExecutionResult res;
    ++stats_.packets;
    if (metrics_) metrics_->packets.at(telemetry::kNoFid).inc();
    res.latency = pipeline_->config().pass_latency;
    return res;
  }

  active::ExecCursor cursor;
  ExecutionResult res;
  if (pkt.compiled && !pkt.program) {
    res = execute(*pkt.compiled, pkt, cursor, meta, now);
  } else {
    const CompiledProgram compiled = CompiledProgram::compile(*pkt.program);
    res = execute(compiled, pkt, cursor, meta, now);
  }

  // Mirror the cursor back into the mutable wire form, preserving the
  // historic in-place semantics for packets that carry a decoded Program.
  if (res.executed && pkt.program) {
    auto& code = pkt.program->code();
    for (u32 i = 0; i < code.size(); ++i) {
      if (cursor.done(i)) code[i].done = true;
    }
    if (res.verdict != Verdict::kDrop && cursor.shrink) {
      shrink(*pkt.program);
    }
  }
  return res;
}

}  // namespace artmt::runtime
