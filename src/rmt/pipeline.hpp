// The logical pipeline: an ordered set of stages over one configuration.
// The runtime walks this structure one instruction per stage; the
// controller installs/removes per-FID table entries and takes memory
// snapshots through it.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "rmt/config.hpp"
#include "rmt/stage.hpp"

namespace artmt::rmt {

class Pipeline {
 public:
  explicit Pipeline(const PipelineConfig& config);

  [[nodiscard]] const PipelineConfig& config() const { return config_; }
  [[nodiscard]] u32 stage_count() const {
    return static_cast<u32>(stages_.size());
  }

  [[nodiscard]] Stage& stage(u32 index);
  [[nodiscard]] const Stage& stage(u32 index) const;

  // True when `stage_index` lies in the ingress half of a pass.
  [[nodiscard]] bool is_ingress(u32 stage_index) const {
    return stage_index % config_.logical_stages < config_.ingress_stages;
  }

  // Total register words across all stages.
  [[nodiscard]] u64 total_words() const;

  // TCAM entries in use across all stages (resource accounting).
  [[nodiscard]] u32 total_tcam_used() const;

 private:
  PipelineConfig config_;
  std::vector<Stage> stages_;
};

}  // namespace artmt::rmt
