#include "active/isa.hpp"

#include <array>

#include "common/error.hpp"

namespace artmt::active {

namespace {

constexpr std::array<OpcodeInfo, 46> kOpcodeTable = {{
    // special
    {Opcode::kEof, "EOF"},
    {Opcode::kNop, "NOP"},
    {Opcode::kAddrMask, "ADDR_MASK"},
    {Opcode::kAddrOffset, "ADDR_OFFSET"},
    // HASH's operand selects among the per-pipeline hash engines (distinct
    // CRC configurations), giving CMS-style programs independent rows.
    {Opcode::kHash, "HASH", OperandKind::kArgIndex},
    // data copying
    {Opcode::kMbrLoad, "MBR_LOAD", OperandKind::kArgIndex},
    {Opcode::kMbrStore, "MBR_STORE", OperandKind::kArgIndex},
    {Opcode::kMbr2Load, "MBR2_LOAD", OperandKind::kArgIndex},
    {Opcode::kMarLoad, "MAR_LOAD", OperandKind::kArgIndex},
    {Opcode::kCopyMbr2Mbr, "COPY_MBR2_MBR"},
    {Opcode::kCopyMbrMbr2, "COPY_MBR_MBR2"},
    {Opcode::kCopyMbrMar, "COPY_MBR_MAR"},
    {Opcode::kCopyMarMbr, "COPY_MAR_MBR"},
    {Opcode::kCopyHashdataMbr, "COPY_HASHDATA_MBR", OperandKind::kArgIndex},
    {Opcode::kCopyHashdataMbr2, "COPY_HASHDATA_MBR2", OperandKind::kArgIndex},
    {Opcode::kCopyHashdata5Tuple, "COPY_HASHDATA_5TUPLE"},
    // data manipulation
    {Opcode::kMbrAddMbr2, "MBR_ADD_MBR2"},
    {Opcode::kMarAddMbr, "MAR_ADD_MBR"},
    {Opcode::kMarAddMbr2, "MAR_ADD_MBR2"},
    {Opcode::kMarMbrAddMbr2, "MAR_MBR_ADD_MBR2"},
    {Opcode::kMbrSubtractMbr2, "MBR_SUBTRACT_MBR2"},
    {Opcode::kBitAndMarMbr, "BIT_AND_MAR_MBR"},
    {Opcode::kBitOrMbrMbr2, "BIT_OR_MBR_MBR2"},
    {Opcode::kMbrEqualsMbr2, "MBR_EQUALS_MBR2"},
    {Opcode::kMax, "MAX"},
    {Opcode::kMin, "MIN"},
    {Opcode::kRevMin, "REVMIN"},
    {Opcode::kSwapMbrMbr2, "SWAP_MBR_MBR2"},
    {Opcode::kMbrNot, "MBR_NOT"},
    {Opcode::kMbrEqualsData, "MBR_EQUALS_DATA", OperandKind::kArgIndex},
    // control flow
    {Opcode::kReturn, "RETURN", OperandKind::kNone, false, false, true},
    {Opcode::kCret, "CRET", OperandKind::kNone, false, false, true},
    {Opcode::kCreti, "CRETI", OperandKind::kNone, false, false, true},
    {Opcode::kCjump, "CJUMP", OperandKind::kLabel, false, true},
    {Opcode::kCjumpi, "CJUMPI", OperandKind::kLabel, false, true},
    {Opcode::kUjump, "UJUMP", OperandKind::kLabel, false, true},
    // memory access
    {Opcode::kMemWrite, "MEM_WRITE", OperandKind::kNone, true},
    {Opcode::kMemRead, "MEM_READ", OperandKind::kNone, true},
    {Opcode::kMemIncrement, "MEM_INCREMENT", OperandKind::kNone, true},
    {Opcode::kMemMinread, "MEM_MINREAD", OperandKind::kNone, true},
    {Opcode::kMemMinreadinc, "MEM_MINREADINC", OperandKind::kNone, true},
    // packet forwarding
    {Opcode::kDrop, "DROP", OperandKind::kNone, false, false, false, true},
    {Opcode::kFork, "FORK", OperandKind::kNone, false, false, false, true},
    {Opcode::kSetDst, "SET_DST", OperandKind::kNone, false, false, false,
     true},
    {Opcode::kRts, "RTS", OperandKind::kNone, false, false, false, true},
    {Opcode::kCrts, "CRTS", OperandKind::kNone, false, false, false, true},
}};

}  // namespace

const OpcodeInfo* opcode_info(Opcode op) {
  return opcode_info(static_cast<u8>(op));
}

const OpcodeInfo* opcode_info(u8 raw) {
  // Direct-index table: this sits on the per-instruction parse/compile
  // path, where a linear scan of kOpcodeTable would dominate.
  static const std::array<const OpcodeInfo*, 256> lut = [] {
    std::array<const OpcodeInfo*, 256> table{};
    for (const auto& info : kOpcodeTable) {
      table[static_cast<u8>(info.op)] = &info;
    }
    return table;
  }();
  return lut[raw];
}

std::optional<Opcode> opcode_from_mnemonic(std::string_view name) {
  for (const auto& info : kOpcodeTable) {
    if (info.mnemonic == name) return info.op;
  }
  return std::nullopt;
}

std::string_view mnemonic(Opcode op) {
  const OpcodeInfo* info = opcode_info(op);
  if (info == nullptr) throw UsageError("mnemonic: unknown opcode");
  return info->mnemonic;
}

}  // namespace artmt::active
