#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace artmt {

namespace {

u64 splitmix64(u64& x) {
  x += 0x9e3779b97f4a7c15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(u64 seed) {
  u64 s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

u64 Rng::next_u64() {
  const u64 result = rotl(state_[1] * 5, 7) * 9;
  const u64 t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

u64 Rng::uniform(u64 bound) {
  if (bound == 0) throw UsageError("Rng::uniform: bound must be positive");
  // Rejection sampling over the largest multiple of bound.
  const u64 threshold = (0 - bound) % bound;
  for (;;) {
    const u64 r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

i64 Rng::uniform_range(i64 lo, i64 hi) {
  if (lo > hi) throw UsageError("Rng::uniform_range: lo > hi");
  const u64 span = static_cast<u64>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  const u64 draw = span == 0 ? next_u64() : uniform(span);
  return lo + static_cast<i64>(draw);
}

double Rng::uniform_double() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

u32 Rng::poisson(double mean) {
  if (mean < 0) throw UsageError("Rng::poisson: mean must be non-negative");
  const double limit = std::exp(-mean);
  double product = uniform_double();
  u32 count = 0;
  while (product > limit) {
    ++count;
    product *= uniform_double();
  }
  return count;
}

double Rng::exponential(double rate) {
  if (rate <= 0) throw UsageError("Rng::exponential: rate must be positive");
  double u = uniform_double();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

Rng Rng::split() { return Rng(next_u64()); }

Rng Rng::substream(u64 seed, u64 tag) {
  // Scramble the tag through splitmix64 before folding it into the seed;
  // adjacent tags (0, 1, 2, ...) must not yield correlated streams.
  u64 t = tag;
  return Rng(seed ^ splitmix64(t));
}

}  // namespace artmt
