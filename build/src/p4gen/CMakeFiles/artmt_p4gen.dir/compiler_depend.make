# Empty compiler generated dependencies file for artmt_p4gen.
# This may be replaced when dependencies are built.
