// artmt_chaos -- the fault-injection soak: runs the end-to-end scenario
// (in-network cache + heavy-hitter monitor + Cheetah load balancer on one
// switch) twice per shard count -- once fault-free, once under a chaos
// plan (uniform loss, two scripted link flaps, a switch brownout that
// wipes register state) -- and asserts that the reliability layer
// converges both to the SAME application-state digest, deterministically
// at shard counts 1, 2 and 4.
//
// What the digest covers -- and what it deliberately does not. The digest
// is the reliability-protected converged state: the cache's bucket words
// after the final (tracker-acknowledged) re-population, the load
// balancer's pool-size and pool words, the number of opened flows, and
// the completion of heavy-hitter extraction. It excludes state that loss
// legitimately perturbs: CMS counters and key tables (observe capsules
// are fire-and-forget by design; the sketch is approximate even without
// faults), the LB's round-robin counter, and flow cookie values (they
// encode which server the round-robin landed on). Those are statistical;
// the digest checks exactly the state the paper's idempotent capsule
// protocols promise to deliver.
//
// Timeline: a clean setup window (admissions and the first populate see
// no faults -- allocation requests carry no retransmission), then a fault
// window overlapping the data-plane workload (uniform loss from its start
// onward, flaps and the brownout bounded inside it), then a recovery
// phase that re-populates, re-configures, re-opens flows and extracts --
// still under the uniform loss, which is the point: the
// ReliabilityTracker schedules must converge through it.
//
// Usage:
//   artmt_chaos [--topology single|leaf-spine] [--requests N] [--seed S]
//               [--loss P] [--hot H] [--shards a,b,c] [--trace FILE]
//               [--snapshot FILE] [--flight-dir DIR]
//     --topology T    single (default): everything on one switch.
//                     leaf-spine: the same services placed by the fabric's
//                     global controller across a 2-leaf/1-spine fabric;
//                     the flaps and the brownout move to the client's leaf
//                     and backend links, and the digest reads each
//                     service's registers from whichever leaf owns it.
//     --requests N    data-plane requests per service (default 2000)
//     --seed S        fault-plan seed (default 1); workload seed is fixed
//     --loss P        uniform loss probability (default 0.01)
//     --hot H         cache hot-set size (default 50)
//     --shards a,b,c  shard counts to gate (default 1,2,4; 0 = serial)
//     --trace FILE    also run the serial engine with a trace sink and
//                     write every injected-fault/telemetry event there
//     --snapshot FILE write the last faulty run's merged metrics snapshot
//                     (faults.* and reliability.* included) as JSON
//     --flight-dir DIR arm the fault flight recorder: every run records
//                     span events into per-shard rings; the brownout
//                     up-edge dumps the wiped switch's final events to
//                     DIR, and a digest mismatch or gate failure dumps
//                     the offending run's merged rings
//
// stdout: one JSON summary object (digests, injected counts, retransmit /
// recovered / give-up totals, verdict). Exit 0 iff every faulty digest
// equals the fault-free digest and they agree across shard counts.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/cache_service.hpp"
#include "apps/hh_service.hpp"
#include "apps/lb_service.hpp"
#include "apps/server_node.hpp"
#include "client/client_node.hpp"
#include "controller/switch_node.hpp"
#include "fabric/topology.hpp"
#include "faults/injector.hpp"
#include "netsim/sharded.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace.hpp"
#include "workload/zipf.hpp"

using namespace artmt;

namespace {

constexpr packet::MacAddr kSwitchMac = 0x0000aa;
constexpr packet::MacAddr kServerMac = 0x0000bb;
constexpr packet::MacAddr kBackend1Mac = 0xdd01;
constexpr packet::MacAddr kBackend2Mac = 0xdd02;
constexpr packet::MacAddr kClientMac = 0x000100;
constexpr u32 kFlows = 8;

// FNV-1a over 64-bit words (order-sensitive).
struct Digest {
  u64 h = 1469598103934665603ull;
  void mix(u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

struct ChaosConfig {
  u32 requests = 2000;
  u32 hot = 50;
  u64 fault_seed = 1;
  double loss = 0.01;
  bool leaf_spine = false;  // --topology leaf-spine
};

struct RunResult {
  bool converged = false;  // every completion flag reached
  u64 digest = 0;
  SimTime end_time = 0;
  std::array<u64, faults::kFaultKindCount> injected{};
  u64 injected_total = 0;
  u64 retransmits = 0;
  u64 recovered = 0;
  u64 give_ups = 0;
  std::string snapshot;  // merged metrics JSON
};

// The chaos plan the acceptance scenario prescribes: uniform loss from
// the fault window's start onward, two link flaps, one switch brownout.
faults::FaultPlan chaos_plan(const ChaosConfig& config, SimTime window_start,
                             SimTime window) {
  faults::FaultPlan plan;
  plan.seed = config.fault_seed;

  faults::LinkFaults loss;
  loss.drop = config.loss;
  loss.from = window_start;  // setup (no-retry control plane) stays clean
  plan.link_faults.push_back(loss);

  // In leaf-spine mode the same three scripted faults land on fabric node
  // names: the client hangs off leaf0 (which also takes the brownout),
  // and the dual-homed backend1 loses every link at once (wildcard peer)
  // so the flap bites no matter which leaf the LB was placed on.
  faults::LinkFlap flap1;
  flap1.node_a = "client";
  flap1.node_b = config.leaf_spine ? "leaf0" : "switch";
  flap1.down_at = window_start + window / 5;
  flap1.up_at = flap1.down_at + window / 20;
  plan.flaps.push_back(flap1);

  faults::LinkFlap flap2;
  flap2.node_a = "backend1";
  flap2.node_b = config.leaf_spine ? "" : "switch";
  flap2.down_at = window_start + window / 2;
  flap2.up_at = flap2.down_at + window / 20;
  plan.flaps.push_back(flap2);

  faults::Brownout brownout;
  brownout.node = config.leaf_spine ? "leaf0" : "switch";
  brownout.at = window_start + (window * 7) / 10;
  brownout.duration = window / 16;
  plan.brownouts.push_back(brownout);
  return plan;
}

// Runs the scenario once. `shards` == 0 selects the serial engine (used
// for --trace); otherwise the sharded engine with that worker count.
// `plan` == nullptr runs fault-free.
RunResult run_scenario(u32 shards, const faults::FaultPlan* plan,
                       const ChaosConfig& config,
                       telemetry::TraceSink* sink) {
  std::unique_ptr<netsim::Simulator> sim;
  std::unique_ptr<netsim::ShardedSimulator> ssim;
  std::unique_ptr<netsim::Network> net_holder;
  telemetry::MetricsRegistry serial_registry;
  if (shards > 0) {
    ssim = std::make_unique<netsim::ShardedSimulator>(shards);
    net_holder = std::make_unique<netsim::Network>(*ssim);
  } else {
    sim = std::make_unique<netsim::Simulator>();
    net_holder = std::make_unique<netsim::Network>(*sim);
    sim->set_metrics(&serial_registry);
    net_holder->set_metrics(&serial_registry);
  }
  netsim::Network& net = *net_holder;
  if (sink != nullptr) {
    sink->set_clock([&net] { return net.simulator().now(); });
    telemetry::set_trace_sink(sink);
  }

  // Timeline (see header): setup, then a workload window the fault plan
  // overlaps, then recovery.
  const SimTime workload_start = 300 * kMillisecond;
  const SimTime window = SimTime{config.requests} * 100 * kMicrosecond;
  const SimTime recovery_at = workload_start + window + 100 * kMillisecond;

  controller::SwitchNode::Config cfg;
  cfg.costs.table_entry_update = 100 * kMicrosecond;
  cfg.costs.snapshot_per_block = 1 * kMicrosecond;
  cfg.costs.clear_per_block = 1 * kMicrosecond;
  cfg.compute_model = alloc::ComputeModel::deterministic();

  std::shared_ptr<controller::SwitchNode> sw;          // single mode
  std::unique_ptr<fabric::Topology> topo;              // leaf-spine mode
  packet::MacAddr control_target = kSwitchMac;
  if (config.leaf_spine) {
    fabric::TopologyConfig tcfg;
    tcfg.leaves = 2;
    tcfg.spines = 1;
    tcfg.switch_config = cfg;  // per-switch registries: leaves span shards
    tcfg.controller.epoch = 2 * kMillisecond;
    // The leaf0 brownout silences its health acks for its whole duration.
    // This soak gates digest convergence, not re-placement (bench_fabric
    // owns that), so the death threshold must outlast the brownout.
    tcfg.controller.miss_threshold =
        static_cast<u32>((window / 16) / tcfg.controller.epoch) + 4;
    topo = std::make_unique<fabric::Topology>(net, tcfg);
    control_target = topo->controller_mac();
  } else {
    cfg.metrics = ssim ? &ssim->shard_metrics(0) : &serial_registry;
    sw = std::make_shared<controller::SwitchNode>("switch", cfg);
    net.attach(sw);
  }
  auto server = std::make_shared<apps::ServerNode>("server", kServerMac);
  auto backend1 = std::make_shared<apps::ServerNode>("backend1", kBackend1Mac);
  auto backend2 = std::make_shared<apps::ServerNode>("backend2", kBackend2Mac);
  auto client = std::make_shared<client::ClientNode>("client", kClientMac,
                                                     control_target);
  net.attach(server);
  net.attach(backend1);
  net.attach(backend2);
  net.attach(client);
  if (topo) {
    // Client on leaf0, server on leaf1 (service traffic crosses the
    // spine). The backends are dual-homed at matching port numbers --
    // host ports 2 and 3 on BOTH leaves -- so the LB's VIP pool of
    // egress ports is valid on whichever leaf the controller places it.
    topo->attach_host(*client, 0, 0, kClientMac);      // leaf0 port 1
    topo->attach_host(*backend1, 0, 0, kBackend1Mac);  // leaf0 port 2
    topo->attach_host(*backend2, 0, 0, kBackend2Mac);  // leaf0 port 3
    topo->attach_host(*server, 0, 1, kServerMac);      // leaf1 port 1
    topo->attach_host(*backend1, 1, 1, kBackend1Mac);  // leaf1 port 2
    topo->attach_host(*backend2, 1, 1, kBackend2Mac);  // leaf1 port 3
    if (ssim) topo->pin(*ssim);
  } else {
    net.connect(*sw, 0, *server, 0);
    net.connect(*sw, 8, *backend1, 0);
    net.connect(*sw, 9, *backend2, 0);
    net.connect(*sw, 1, *client, 0);
    sw->bind(kServerMac, 0);
    sw->bind(kBackend1Mac, 8);
    sw->bind(kBackend2Mac, 9);
    sw->bind(kClientMac, 1);
    if (ssim) ssim->pin(*sw, 0);
  }

  std::unique_ptr<faults::FaultInjector> injector;
  if (plan != nullptr) {
    injector = std::make_unique<faults::FaultInjector>(
        *plan, std::max<u32>(shards, 1));
    net.set_transmit_hook(injector.get());
    // The up-edge of a brownout is a power cycle: SRAM is gone. Table and
    // allocator state live on the controller and persist.
    controller::SwitchNode* wiped = topo ? &topo->leaf(0) : sw.get();
    for (const faults::Brownout& brownout : plan->brownouts) {
      if (ssim) {
        ssim->schedule_on(*wiped, brownout.up_at(),
                          [wiped] { wiped->wipe_registers(); });
      } else {
        sim->schedule_at(brownout.up_at(), [wiped] { wiped->wipe_registers(); });
      }
    }
  }

  workload::ZipfGenerator zipf(5'000, 1.2);
  Rng rng(42);
  auto key_of = [](u32 rank) {
    return workload::ZipfGenerator::key_for_rank(rank);
  };
  for (u32 rank = 0; rank < zipf.universe(); ++rank) {
    server->put(key_of(rank), rank + 1);
  }

  auto cache = std::make_shared<apps::CacheService>("cache", kServerMac);
  auto monitor =
      std::make_shared<apps::FrequentItemService>("monitor", kServerMac);
  auto lb = std::make_shared<apps::CheetahLbService>("lb");
  client->register_service(cache);
  client->register_service(monitor);
  client->register_service(lb);
  client->on_passive = [&](netsim::Frame& frame) {
    const auto msg = apps::KvMessage::parse(std::span<const u8>(frame).subspan(
        packet::EthernetHeader::kWireSize));
    if (!msg) return;
    cache->handle_server_reply(*msg);
    lb->handle_cookie_reply(*msg);
  };

  // Hot set with pairwise-distinct buckets: the digest compares the
  // last-written value per bucket, and retransmission legally reorders
  // writes to different requests -- distinct buckets make the converged
  // contents order-independent.
  std::vector<std::pair<u64, u32>> hot;
  bool lb_configured = false;
  bool cache_populated = false;
  bool extraction_done = false;
  std::size_t extracted_items = 0;

  cache->on_ready = [&] {
    std::map<u32, bool> used;
    for (u32 rank = 0; hot.size() < config.hot && rank < zipf.universe();
         ++rank) {
      const u32 bucket = cache->bucket_for(key_of(rank));
      if (used[bucket]) continue;
      used[bucket] = true;
      hot.emplace_back(key_of(rank), rank + 1);
    }
    cache->populate(hot);
  };
  // VIP pool: the backends' switch egress ports ({2, 3} on either leaf in
  // fabric mode thanks to the dual-homing above).
  const std::vector<u32> lb_pool =
      topo ? std::vector<u32>{2, 3} : std::vector<u32>{8, 9};
  lb->on_ready = [&] { lb->configure(lb_pool); };

  std::function<void(u32)> get_next = [&](u32 remaining) {
    if (remaining == 0) return;
    cache->get(key_of(zipf.next_rank(rng)));
    net.simulator().schedule_after(
        100 * kMicrosecond, [&get_next, remaining] { get_next(remaining - 1); });
  };
  std::function<void(u32)> observe_next = [&](u32 remaining) {
    if (remaining == 0) return;
    monitor->observe(key_of(zipf.next_rank(rng)));
    net.simulator().schedule_after(
        50 * kMicrosecond,
        [&observe_next, remaining] { observe_next(remaining - 1); });
  };

  // Recovery: client-driven restoration of every piece of protected
  // state, all of it riding on the reliability trackers (or, for flows,
  // an idempotent re-open loop), all of it under the residual loss.
  u32 flow_rounds = 0;
  bool flows_reopened = false;
  std::function<void()> ensure_flows = [&] {
    if (++flow_rounds >= 200) return;  // chaos budget exhausted; digest gates
    if (!lb->configured()) {           // pool writes still in flight
      net.simulator().schedule_after(50 * kMillisecond, ensure_flows);
      return;
    }
    const bool first = !flows_reopened;
    flows_reopened = true;
    if (!first && lb->cookies().size() >= kFlows) return;
    for (u32 flow = 1; flow <= kFlows; ++flow) {
      if (first || !lb->cookies().contains(flow)) lb->open_flow(flow);
    }
    net.simulator().schedule_after(50 * kMillisecond, ensure_flows);
  };
  auto recover = [&] {
    cache->populate(hot, [&] { cache_populated = true; });
    lb->configure(lb_pool, [&] { lb_configured = true; });
    ensure_flows();
    monitor->extract(
        [&](std::vector<std::pair<u64, u32>> items) {
          extraction_done = true;
          extracted_items = items.size();
        },
        /*min_count=*/10);
  };

  auto kickoff = [&] {
    get_next(config.requests);
    observe_next(config.requests);
    // Flows opened across the workload window sit in the fault path; the
    // recovery pass re-opens every one of them.
    for (u32 flow = 1; flow <= kFlows; ++flow) {
      net.simulator().schedule_after(flow * (window / (kFlows + 1)), [&lb,
                                                                      flow] {
        if (lb->configured()) lb->open_flow(flow);
      });
    }
    // A mid-window write-back refresh: these tracked capsules straddle
    // the flaps and the brownout, which is where retransmission earns
    // its keep.
    net.simulator().schedule_after((window * 13) / 20, [&] {
      if (cache->operational()) cache->populate(hot);
    });
  };

  cache->request_allocation();
  // Fabric mode: run the controller's health epochs across the fault
  // window and the recovery tail, then let the event queue drain.
  if (topo) {
    const SimTime probe_until = recovery_at + 500 * kMillisecond;
    if (ssim) {
      topo->start(*ssim, 1 * kMillisecond, probe_until);
    } else {
      topo->start(*sim, 1 * kMillisecond, probe_until);
    }
  }
  auto start_all = [&] {
    if (ssim) {
      ssim->schedule_on(*client, 50 * kMillisecond,
                        [&] { monitor->request_allocation(); });
      ssim->schedule_on(*client, 100 * kMillisecond,
                        [&] { lb->request_allocation(); });
      ssim->schedule_on(*client, workload_start, kickoff);
      ssim->schedule_on(*client, recovery_at, recover);
      ssim->run();
    } else {
      sim->schedule_at(50 * kMillisecond, [&] { monitor->request_allocation(); });
      sim->schedule_at(100 * kMillisecond, [&] { lb->request_allocation(); });
      sim->schedule_at(workload_start, kickoff);
      sim->schedule_at(recovery_at, recover);
      sim->run();
    }
  };
  start_all();

  // --- digest the converged, reliability-protected state ---
  RunResult out;
  out.end_time = ssim ? ssim->now() : sim->now();
  out.converged = cache_populated && lb_configured && extraction_done &&
                  lb->cookies().size() >= kFlows &&
                  cache->populate_reliability().outstanding() == 0;

  // In fabric mode each service's registers live on whichever leaf the
  // global controller placed it; in single mode everything is on `sw`.
  auto pipeline_of = [&](Fid fid) -> rmt::Pipeline& {
    if (!topo) return sw->pipeline();
    const packet::MacAddr owner = topo->controller().owner_of(fid);
    for (u32 i = 0; i < topo->leaves(); ++i) {
      if (topo->leaf_mac(i) == owner) return topo->leaf(i).pipeline();
    }
    return topo->leaf(0).pipeline();  // unplaced: `converged` gates anyway
  };
  auto word_at = [&](Fid fid, u32 stage, u32 address) {
    rmt::Pipeline& pipe = pipeline_of(fid);
    const u32 logical = pipe.config().logical_stages;
    return pipe.stage(stage % logical).memory().read(address);
  };
  Digest digest;
  // Cache buckets: key halves + value, one word per access per bucket.
  for (const auto& [key, value] : hot) {
    const u32 bucket = cache->bucket_for(key);
    digest.mix(key);
    digest.mix(value);
    for (u32 access = 0; access < 3; ++access) {
      digest.mix(word_at(cache->fid(), (*cache->mutant())[access],
                         cache->synthesized()->access_base[access] + bucket));
    }
  }
  // LB pool-size word and pool words (accesses 0 and 2; the round-robin
  // counter at access 1 is runtime state, not configured state).
  digest.mix(word_at(lb->fid(), (*lb->mutant())[0],
                     lb->synthesized()->access_base[0]));
  for (u32 i = 0; i < 2; ++i) {
    digest.mix(word_at(lb->fid(), (*lb->mutant())[2],
                       lb->synthesized()->access_base[2] + i));
  }
  digest.mix(lb->cookies().size());
  digest.mix(extraction_done ? 1 : 0);
  digest.mix(out.converged ? 1 : 0);
  out.digest = digest.h;

  // --- merge telemetry: engine + faults.* + reliability.* ---
  telemetry::MetricsRegistry merged;
  if (ssim) {
    ssim->merge_metrics_into(merged);
    ssim->export_shard_stats(merged);
  }
  if (injector) {
    injector->export_metrics(ssim ? merged : serial_registry);
    out.injected_total = injector->injected_total();
    for (u32 k = 0; k < faults::kFaultKindCount; ++k) {
      out.injected[k] = injector->injected(static_cast<faults::FaultKind>(k));
    }
  }
  telemetry::MetricsRegistry& registry = ssim ? merged : serial_registry;
  const std::pair<const client::ReliabilityTracker*, i32> trackers[] = {
      {&cache->populate_reliability(), static_cast<i32>(cache->fid())},
      {&monitor->extract_reliability(), static_cast<i32>(monitor->fid())},
      {&lb->configure_reliability(), static_cast<i32>(lb->fid())},
      {&cache->handshake_reliability(), static_cast<i32>(cache->fid())},
      {&monitor->handshake_reliability(), static_cast<i32>(monitor->fid())},
      {&lb->handshake_reliability(), static_cast<i32>(lb->fid())}};
  for (const auto& [tracker, fid] : trackers) {
    tracker->export_metrics(registry, fid);
    out.retransmits += tracker->stats().retransmits;
    out.recovered += tracker->stats().recovered;
    out.give_ups += tracker->stats().give_ups;
  }
  std::ostringstream os;
  registry.snapshot_json(os);
  out.snapshot = os.str();

  if (sink != nullptr) telemetry::set_trace_sink(nullptr);
  return out;
}

void print_injected(std::ostream& os, const RunResult& run) {
  os << "{";
  bool first = true;
  for (u32 k = 0; k < faults::kFaultKindCount; ++k) {
    if (run.injected[k] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "\"" << faults::fault_kind_name(static_cast<faults::FaultKind>(k))
       << "\": " << run.injected[k];
  }
  os << "}";
}

}  // namespace

int main(int argc, char** argv) {
  ChaosConfig config;
  std::vector<u32> shard_counts = {1, 2, 4};
  const char* trace_path = nullptr;
  const char* snapshot_path = nullptr;
  const char* flight_dir = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--topology") == 0 && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value == "single") {
        config.leaf_spine = false;
      } else if (value == "leaf-spine") {
        config.leaf_spine = true;
      } else {
        std::fprintf(stderr,
                     "artmt_chaos: --topology must be single or leaf-spine\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      config.requests = static_cast<u32>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      config.fault_seed = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--loss") == 0 && i + 1 < argc) {
      config.loss = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--hot") == 0 && i + 1 < argc) {
      config.hot = static_cast<u32>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_counts.clear();
      std::stringstream list(argv[++i]);
      std::string item;
      while (std::getline(list, item, ',')) {
        shard_counts.push_back(static_cast<u32>(std::stoul(item)));
      }
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshot") == 0 && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--flight-dir") == 0 && i + 1 < argc) {
      flight_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: artmt_chaos [--topology single|leaf-spine] "
                   "[--requests N] [--seed S] [--loss P] "
                   "[--hot H] [--shards a,b,c] [--trace FILE] "
                   "[--snapshot FILE] [--flight-dir DIR]\n");
      return 2;
    }
  }
  if (config.requests < 100) {
    std::fprintf(stderr, "artmt_chaos: --requests must be >= 100\n");
    return 2;
  }

  const SimTime workload_start = 300 * kMillisecond;
  const SimTime window = SimTime{config.requests} * 100 * kMicrosecond;
  const faults::FaultPlan plan =
      chaos_plan(config, workload_start + window / 10, window);

  // Flight recorder: one ring per worker lane, shared across every run in
  // the gate (cleared between runs). The brownout up-edge dumps from
  // inside wipe_registers; mismatches and gate failures dump from here.
  std::unique_ptr<telemetry::FlightRecorder> recorder;
  if (flight_dir != nullptr) {
    u32 lanes = 1;
    for (const u32 shards : shard_counts) {
      lanes = std::max(lanes, std::max<u32>(shards, 1));
    }
    recorder = std::make_unique<telemetry::FlightRecorder>(4096, lanes);
    recorder->set_dump_dir(flight_dir);
    telemetry::set_flight_recorder(recorder.get());
  }

  // Fault-free reference (first shard count in the gate list).
  const u32 reference_shards = shard_counts.empty() ? 1 : shard_counts[0];
  const RunResult clean =
      run_scenario(reference_shards, nullptr, config, nullptr);
  std::fprintf(stderr,
               "clean run (shards=%u): digest 0x%016llx, done at t=%.3fs%s\n",
               reference_shards,
               static_cast<unsigned long long>(clean.digest),
               clean.end_time / 1e9, clean.converged ? "" : " [NOT CONVERGED]");

  bool ok = clean.converged;
  std::vector<std::pair<u32, RunResult>> runs;
  for (const u32 shards : shard_counts) {
    if (recorder) recorder->clear();
    RunResult run = run_scenario(shards, &plan, config, nullptr);
    const bool match = run.converged && run.digest == clean.digest;
    if (!match && recorder) {
      const std::string dump = recorder->dump_all("digest_mismatch");
      if (!dump.empty()) {
        std::fprintf(stderr, "flight recorder dump: %s\n", dump.c_str());
      }
    }
    ok = ok && match;
    std::fprintf(
        stderr,
        "chaos run (shards=%u, seed=%llu, loss=%.3f): digest 0x%016llx "
        "[%s], %llu faults injected, %llu retransmits, %llu recovered, "
        "%llu give-ups, done at t=%.3fs\n",
        shards, static_cast<unsigned long long>(config.fault_seed),
        config.loss, static_cast<unsigned long long>(run.digest),
        match ? "match" : "MISMATCH",
        static_cast<unsigned long long>(run.injected_total),
        static_cast<unsigned long long>(run.retransmits),
        static_cast<unsigned long long>(run.recovered),
        static_cast<unsigned long long>(run.give_ups), run.end_time / 1e9);
    runs.emplace_back(shards, std::move(run));
  }
  // Cross-shard-count determinism: identical digests AND identical
  // injected-fault counts.
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].second.digest != runs[0].second.digest ||
        runs[i].second.injected != runs[0].second.injected) {
      std::fprintf(stderr,
                   "determinism violation: shards=%u and shards=%u disagree\n",
                   runs[0].first, runs[i].first);
      ok = false;
    }
  }

  if (trace_path != nullptr) {
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      std::fprintf(stderr, "artmt_chaos: cannot open %s\n", trace_path);
      return 1;
    }
    telemetry::TraceSink sink(trace_file);
    if (recorder) recorder->clear();
    const RunResult serial = run_scenario(0, &plan, config, &sink);
    std::fprintf(stderr,
                 "serial trace run: digest 0x%016llx [%s], %llu events -> "
                 "%s\n",
                 static_cast<unsigned long long>(serial.digest),
                 serial.digest == clean.digest ? "match" : "MISMATCH",
                 static_cast<unsigned long long>(sink.emitted()), trace_path);
    ok = ok && serial.digest == clean.digest;
  }

  if (snapshot_path != nullptr && !runs.empty()) {
    std::ofstream snapshot_file(snapshot_path);
    if (!snapshot_file) {
      std::fprintf(stderr, "artmt_chaos: cannot open %s\n", snapshot_path);
      return 1;
    }
    snapshot_file << runs.back().second.snapshot;
  }

  // Machine-readable summary.
  std::cout << "{\n  \"topology\": \""
            << (config.leaf_spine ? "leaf-spine" : "single")
            << "\",\n  \"seed\": " << config.fault_seed
            << ",\n  \"loss\": " << config.loss
            << ",\n  \"requests\": " << config.requests
            << ",\n  \"clean_digest\": \"0x" << std::hex << clean.digest
            << std::dec << "\",\n  \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& [shards, run] = runs[i];
    std::cout << (i == 0 ? "" : ",") << "\n    {\"shards\": " << shards
              << ", \"digest\": \"0x" << std::hex << run.digest << std::dec
              << "\", \"converged\": " << (run.converged ? "true" : "false")
              << ", \"injected_total\": " << run.injected_total
              << ", \"injected\": ";
    print_injected(std::cout, run);
    std::cout << ", \"retransmits\": " << run.retransmits
              << ", \"recovered\": " << run.recovered
              << ", \"give_ups\": " << run.give_ups << "}";
  }
  std::cout << "\n  ],\n  \"match\": " << (ok ? "true" : "false") << "\n}\n";
  if (recorder) {
    if (!ok) {
      const std::string dump = recorder->dump_all("gate_failure");
      if (!dump.empty()) {
        std::fprintf(stderr, "flight recorder dump: %s\n", dump.c_str());
      }
    }
    std::fprintf(stderr, "flight recorder: %llu dump(s) in %s\n",
                 static_cast<unsigned long long>(recorder->dumps_written()),
                 flight_dir);
    telemetry::set_flight_recorder(nullptr);
  }
  return ok ? 0 : 1;
}
