// Discrete-event simulation core: a virtual nanosecond clock and an ordered
// event queue. All testbed experiments (Figs. 8b, 9, 10) run on this engine
// so results are deterministic and independent of host load.
#pragma once

#include <functional>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace artmt::netsim {

class Simulator {
 public:
  using Action = std::function<void()>;

  // Schedules `action` to run at absolute virtual time `at` (>= now).
  // Events at equal times run in scheduling order (FIFO).
  void schedule_at(SimTime at, Action action);

  // Schedules `action` `delay` nanoseconds from now.
  void schedule_after(SimTime delay, Action action);

  // Runs events until the queue drains or the clock would pass `until`.
  // Events scheduled exactly at `until` are executed.
  void run_until(SimTime until);

  // Runs until the queue is empty.
  void run();

  // Executes at most one event; returns false if the queue was empty.
  bool step();

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime at;
    u64 seq;  // tie-break for FIFO ordering at equal times
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  u64 next_seq_ = 0;
  // Min-heap managed with std::push_heap/pop_heap (Later makes the earliest
  // event the front element) so step() can move the Event — and its
  // std::function — out of the container instead of copying it.
  std::vector<Event> queue_;
};

}  // namespace artmt::netsim
