#include "apps/lb_service.hpp"

#include "apps/programs.hpp"
#include "client/client_node.hpp"
#include "common/logging.hpp"

namespace artmt::apps {

namespace {
bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

client::ReliabilityTracker::Options write_retry_options() {
  client::ReliabilityTracker::Options opts;
  opts.rto = 10 * kMillisecond;  // the former fixed sweep interval
  return opts;
}
}  // namespace

CheetahLbService::CheetahLbService(std::string name, u32 pool_blocks)
    : client::Service(std::move(name), lb_service_spec(pool_blocks)),
      write_retry_(
          "lb_pool", [this]() -> netsim::Simulator& { return node().sim(); },
          write_retry_options()) {
  write_retry_.paused = [this] { return !operational(); };
  write_retry_.on_give_up = [this](u32 request_id) {
    write_resolved(request_id);
  };
}

client::MemRef CheetahLbService::ref_for_access(u32 access, u32 index) const {
  const auto* synth = synthesized();
  if (synth == nullptr) throw UsageError("CheetahLbService: no allocation");
  client::MemRef ref;
  ref.stage = (*mutant())[access] % node().logical_stages();
  ref.address = synth->access_base[access] + index;
  return ref;
}

void CheetahLbService::send_write(u32 request_id) {
  const auto& [ref, value] = outstanding_writes_.at(request_id);
  KvMessage tag;
  tag.type = KvMessage::Type::kMemSync;
  tag.request_id = request_id;
  send_program(client::make_write_program(ref),
               client::write_args(ref, value), tag.serialize());
}

void CheetahLbService::configure(std::vector<u32> server_ports,
                                 std::function<void()> done) {
  if (!operational()) throw UsageError("CheetahLbService: not operational");
  if (!is_power_of_two(server_ports.size())) {
    throw UsageError("CheetahLbService: pool size must be a power of two");
  }
  const auto* synth = synthesized();
  if (server_ports.size() > synth->access_words[kAccessPool]) {
    throw UsageError("CheetahLbService: pool larger than allocation");
  }
  configure_done_ = std::move(done);

  // Pool-size mask (size - 1), then the pool entries. args[2] of the SYN
  // program carries the pool base, so the counter region needs no init
  // (fresh allocations are zeroed).
  auto queue_write = [this](const client::MemRef& ref, Word value) {
    const u32 request_id = next_request_++;
    outstanding_writes_[request_id] = {ref, value};
    send_write(request_id);
    write_retry_.track(request_id, [this](u32 id, u32) {
      if (outstanding_writes_.contains(id)) send_write(id);
    });
  };
  queue_write(ref_for_access(kAccessPoolSize, 0),
              static_cast<Word>(server_ports.size() - 1));
  for (u32 i = 0; i < server_ports.size(); ++i) {
    queue_write(ref_for_access(kAccessPool, i), server_ports[i]);
  }
  configured_ = true;
}

void CheetahLbService::write_resolved(u32 request_id) {
  outstanding_writes_.erase(request_id);
  if (outstanding_writes_.empty() && configure_done_) {
    auto done = std::move(configure_done_);
    configure_done_ = nullptr;
    done();
  }
}

void CheetahLbService::open_flow(u32 flow_id) {
  if (!configured()) throw UsageError("CheetahLbService: pool not ready");
  const auto* synth = synthesized();
  packet::ArgumentHeader args;
  args.args[0] = synth->access_base[kAccessPoolSize];
  args.args[1] = synth->access_base[kAccessCounter];
  args.args[2] = synth->access_base[kAccessPool];
  KvMessage msg;
  msg.type = KvMessage::Type::kLbSyn;
  msg.request_id = flow_id;
  // SYN capsules are routed by SET_DST at the switch; the L2 destination
  // is a placeholder the program overrides.
  send_program(*synth, args, msg.serialize(), false,
               node().switch_mac());
}

void CheetahLbService::send_data(u32 flow_id) {
  const auto it = cookies_.find(flow_id);
  if (it == cookies_.end()) {
    throw UsageError("CheetahLbService: flow has no cookie yet");
  }
  packet::ArgumentHeader args;
  args.args[0] = it->second;
  KvMessage msg;
  msg.type = KvMessage::Type::kLbData;
  msg.request_id = flow_id;
  send_program(lb_route_program(), args, msg.serialize(), false,
               node().switch_mac());
}

void CheetahLbService::handle_cookie_reply(const KvMessage& reply) {
  if (reply.type != KvMessage::Type::kLbCookie) return;
  cookies_[reply.request_id] = reply.value;
  if (on_flow_opened) on_flow_opened(reply.request_id, reply.value);
}

void CheetahLbService::on_returned(packet::ActivePacket& pkt) {
  const auto msg = KvMessage::parse(pkt.payload);
  if (!msg) return;
  if (msg->type == KvMessage::Type::kMemSync) {
    if (!outstanding_writes_.contains(msg->request_id)) return;
    write_retry_.ack(msg->request_id);
    write_resolved(msg->request_id);
  }
}

}  // namespace artmt::apps
