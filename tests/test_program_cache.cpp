// Tests for the digest-keyed program interner and the zero-mutation
// execution path it feeds: collision safety, the LRU bound, cache-hit
// execution equivalence with cold decoding, and kFlagNoShrink flowing
// through the cursor into the synthesized wire reply.
#include <gtest/gtest.h>

#include "active/assembler.hpp"
#include "active/program_cache.hpp"
#include "packet/active_packet.hpp"
#include "proto/wire.hpp"
#include "runtime/runtime.hpp"

namespace artmt::active {
namespace {

using packet::ActivePacket;
using packet::ArgumentHeader;

Program assemble_text(const std::string& text) { return assemble(text); }

std::vector<u8> wire_of(const Program& program) {
  return CompiledProgram::compile(program).wire_code();
}

// ---------- interning basics ----------

TEST(ProgramCache, RepeatInternHitsAndShares) {
  ProgramCache cache;
  const auto program = assemble_text("MBR_LOAD $0\nMBR_STORE $1\nRETURN");
  const auto first = cache.intern(program);
  const auto second = cache.intern(program);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ProgramCache, PreloadFlagsArePartOfTheKey) {
  ProgramCache cache;
  auto program = assemble_text("MEM_READ\nRETURN");
  const auto plain = cache.intern(program);
  program.preload_mar = true;
  const auto preloaded = cache.intern(program);
  EXPECT_NE(plain.get(), preloaded.get());
  EXPECT_TRUE(preloaded->preload_mar());
  EXPECT_EQ(cache.size(), 2u);
}

// ---------- digest collision safety ----------

u64 colliding_hash(std::span<const u8>, bool, bool) { return 42; }

TEST(ProgramCache, CollidingDigestsNeverExecuteTheWrongProgram) {
  ProgramCache cache(16, &colliding_hash);
  const auto prog_a = assemble_text("MBR_LOAD $0\nRETURN");
  const auto prog_b = assemble_text("MBR_LOAD $1\nRETURN");
  const auto wire_a = wire_of(prog_a);
  const auto wire_b = wire_of(prog_b);

  const auto a = cache.intern(wire_a, false, false);
  const auto b = cache.intern(wire_b, false, false);
  // Same digest, different bytes: the cache detected the mismatch and
  // compiled B rather than serving A.
  EXPECT_EQ(cache.stats().collisions, 1u);
  EXPECT_EQ(b->wire_code(), wire_b);
  // A's artifact is still usable by holders even though B took the slot.
  EXPECT_EQ(a->wire_code(), wire_a);

  // Re-interning A collides again and again yields the right program.
  const auto a2 = cache.intern(wire_a, false, false);
  EXPECT_EQ(cache.stats().collisions, 2u);
  EXPECT_EQ(a2->wire_code(), wire_a);
  EXPECT_EQ(cache.stats().hits, 0u);
}

// ---------- eviction bound ----------

TEST(ProgramCache, CapacityBoundsEntriesWithLruEviction) {
  ProgramCache cache(2);
  const auto p0 = assemble_text("MBR_LOAD $0\nRETURN");
  const auto p1 = assemble_text("MBR_LOAD $1\nRETURN");
  const auto p2 = assemble_text("MBR_LOAD $2\nRETURN");
  const auto held = cache.intern(p0);  // oldest; evicted below
  cache.intern(p1);
  cache.intern(p2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The evicted artifact survives for as long as someone holds it.
  EXPECT_EQ(held->wire_code(), wire_of(p0));
  // Re-interning the evicted program is a miss, not a hit.
  cache.intern(p0);
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ProgramCache, TouchOnHitProtectsHotEntries) {
  ProgramCache cache(2);
  const auto hot = assemble_text("MBR_LOAD $0\nRETURN");
  const auto cold = assemble_text("MBR_LOAD $1\nRETURN");
  const auto next = assemble_text("MBR_LOAD $2\nRETURN");
  cache.intern(hot);
  cache.intern(cold);
  cache.intern(hot);   // refresh: cold is now LRU
  cache.intern(next);  // evicts cold
  EXPECT_EQ(cache.intern(hot)->wire_code(), wire_of(hot));
  EXPECT_EQ(cache.stats().hits, 2u);
}

// ---------- cache-hit execution equivalence ----------

class CacheExecution : public ::testing::Test {
 protected:
  static rmt::PipelineConfig config() {
    rmt::PipelineConfig cfg;
    cfg.words_per_stage = 1024;
    cfg.block_words = 64;
    return cfg;
  }

  CacheExecution()
      : cold_pipeline_(config()),
        hot_pipeline_(config()),
        cold_runtime_(cold_pipeline_),
        hot_runtime_(hot_pipeline_) {
    for (u32 s = 0; s < cold_pipeline_.stage_count(); ++s) {
      cold_pipeline_.stage(s).install(1, 100, 200, 0);
      hot_pipeline_.stage(s).install(1, 100, 200, 0);
    }
  }

  // Runs the same capsule through the cold mutating path and through the
  // interned zero-mutation path and checks verdict/PHV/args/wire parity.
  void expect_parity(const std::string& text, const ArgumentHeader& args,
                     u8 extra_flags = 0) {
    const auto program = assemble_text(text);

    auto cold_pkt = ActivePacket::make_program(1, args, program);
    cold_pkt.initial.flags |= extra_flags;
    const auto cold_frame_in = cold_pkt.serialize();
    const auto cold = cold_runtime_.execute(cold_pkt);
    const auto cold_frame_out = cold_pkt.serialize();

    // Parse through the cache twice so execution runs on a cache hit.
    auto warm = ActivePacket::parse(cold_frame_in, cache_);
    auto hot_pkt = ActivePacket::parse(cold_frame_in, cache_);
    ASSERT_TRUE(hot_pkt.compiled);
    EXPECT_EQ(warm.compiled.get(), hot_pkt.compiled.get());
    EXPECT_GE(cache_.stats().hits, 1u);
    ExecCursor cursor;
    const auto hot =
        hot_runtime_.execute(*hot_pkt.compiled, hot_pkt, cursor);

    EXPECT_EQ(hot.verdict, cold.verdict);
    EXPECT_EQ(hot.fault, cold.fault);
    EXPECT_EQ(hot.passes, cold.passes);
    EXPECT_EQ(hot.instructions_executed, cold.instructions_executed);
    EXPECT_EQ(hot.phv.mar, cold.phv.mar);
    EXPECT_EQ(hot.phv.mbr, cold.phv.mbr);
    EXPECT_EQ(hot.phv.mbr2, cold.phv.mbr2);
    ASSERT_TRUE(hot_pkt.arguments && cold_pkt.arguments);
    for (std::size_t i = 0; i < cold_pkt.arguments->args.size(); ++i) {
      EXPECT_EQ(hot_pkt.arguments->args[i], cold_pkt.arguments->args[i]);
    }
    if (cold.verdict != runtime::Verdict::kDrop) {
      EXPECT_EQ(proto::encode_executed(hot_pkt, cursor), cold_frame_out);
    }

    const auto& cs = cold_runtime_.stats();
    const auto& hs = hot_runtime_.stats();
    EXPECT_EQ(hs.packets, cs.packets);
    EXPECT_EQ(hs.instructions, cs.instructions);
    EXPECT_EQ(hs.recirculations, cs.recirculations);
    EXPECT_EQ(hs.drops_protection, cs.drops_protection);
    EXPECT_EQ(hs.drops_explicit, cs.drops_explicit);
    EXPECT_EQ(hs.rts_packets, cs.rts_packets);
  }

  rmt::Pipeline cold_pipeline_;
  rmt::Pipeline hot_pipeline_;
  runtime::ActiveRuntime cold_runtime_;
  runtime::ActiveRuntime hot_runtime_;
  ProgramCache cache_;
};

TEST_F(CacheExecution, StraightLineParity) {
  expect_parity("MBR_LOAD $2\nMBR_STORE $3\nRETURN",
                ArgumentHeader{{0, 0, 77, 0}});
}

TEST_F(CacheExecution, MemoryAccessParity) {
  expect_parity("MAR_LOAD $0\nMEM_INCREMENT\nMBR_STORE $1\nRETURN",
                ArgumentHeader{{150, 0, 0, 0}});
}

TEST_F(CacheExecution, BranchParity) {
  expect_parity(R"(
      MBR_LOAD $0
      MBR2_LOAD $1
      CJUMP L1
      MBR_STORE $2
      L1: RETURN
  )",
                ArgumentHeader{{5, 5, 0, 0}});
}

TEST_F(CacheExecution, RecirculationParity) {
  std::string text;
  for (int i = 0; i < 25; ++i) text += "NOP\n";
  text += "MBR_LOAD $0\nMBR_STORE $1\nRETURN";
  expect_parity(text, ArgumentHeader{{9, 0, 0, 0}});
}

TEST_F(CacheExecution, ProtectionFaultParity) {
  // args[0] outside FID 1's [100, 200) region: both paths drop.
  expect_parity("MAR_LOAD $0\nMEM_READ\nRETURN",
                ArgumentHeader{{500, 0, 0, 0}});
}

TEST_F(CacheExecution, RtsParity) {
  expect_parity("MBR_LOAD $0\nRTS\nRETURN", ArgumentHeader{{1, 0, 0, 0}});
}

// ---------- kFlagNoShrink through the cursor ----------

TEST_F(CacheExecution, NoShrinkParity) {
  expect_parity("MBR_LOAD $2\nMBR_STORE $3\nRETURN",
                ArgumentHeader{{0, 0, 7, 0}}, packet::kFlagNoShrink);
}

TEST_F(CacheExecution, NoShrinkKeepsInstructionsOnTheWire) {
  const auto program = assemble_text("MBR_LOAD $0\nMBR_STORE $1\nRETURN");
  auto pkt = ActivePacket::make_program(1, ArgumentHeader{{3, 0, 0, 0}},
                                        program);
  pkt.initial.flags |= packet::kFlagNoShrink;
  const auto frame = pkt.serialize();
  auto hot = ActivePacket::parse(frame, cache_);
  ASSERT_TRUE(hot.compiled);
  ExecCursor cursor;
  const auto res = hot_runtime_.execute(*hot.compiled, hot, cursor);
  EXPECT_EQ(res.verdict, runtime::Verdict::kForward);
  EXPECT_FALSE(cursor.shrink);
  for (u32 i = 0; i < hot.compiled->code().size(); ++i) {
    EXPECT_TRUE(cursor.done(i)) << i;
  }
  // The reply still carries all three instructions, done-flagged, and the
  // shared artifact itself is untouched.
  const auto reply = proto::encode_executed(hot, cursor);
  auto parsed = ActivePacket::parse(reply);
  ASSERT_TRUE(parsed.program);
  ASSERT_EQ(parsed.program->size(), 3u);
  for (const auto& insn : parsed.program->code()) {
    EXPECT_TRUE(insn.done);
  }
  for (const auto& insn : hot.compiled->code()) {
    EXPECT_FALSE(insn.wire_done);
  }
}

TEST_F(CacheExecution, ShrinkRemovesExecutedInstructionsFromTheWire) {
  const auto program = assemble_text("MBR_LOAD $0\nMBR_STORE $1\nRETURN");
  auto pkt = ActivePacket::make_program(1, ArgumentHeader{{3, 0, 0, 0}},
                                        program);
  const auto frame = pkt.serialize();
  auto hot = ActivePacket::parse(frame, cache_);
  ASSERT_TRUE(hot.compiled);
  ExecCursor cursor;
  hot_runtime_.execute(*hot.compiled, hot, cursor);
  EXPECT_TRUE(cursor.shrink);
  const auto reply = proto::encode_executed(hot, cursor);
  auto parsed = ActivePacket::parse(reply);
  ASSERT_TRUE(parsed.program);
  EXPECT_EQ(parsed.program->size(), 0u);
}

}  // namespace
}  // namespace artmt::active
