# Empty compiler generated dependencies file for test_extra_services.
# This may be replaced when dependencies are built.
