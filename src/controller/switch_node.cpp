#include "controller/switch_node.hpp"

#include "common/logging.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace.hpp"

namespace artmt::controller {

using packet::ActivePacket;
using packet::ActiveType;

// The node's own counters ("switch" component); the embedded runtime,
// controller, allocator, and program cache register theirs under their own
// component names in the same registry.
struct SwitchMetrics {
  explicit SwitchMetrics(telemetry::MetricsRegistry& r)
      : packets(r, "switch", "packets"),
        malformed(&r.counter("switch", "malformed")),
        control_rejects(&r.counter("switch", "control_rejects")),
        unknown_destination(&r.counter("switch", "unknown_destination")),
        forwarded(&r.counter("switch", "forwarded")),
        returned(&r.counter("switch", "returned")),
        dropped(&r.counter("switch", "dropped")),
        zero_copy_frames(&r.counter("switch", "zero_copy_frames")),
        legacy_frames(&r.counter("switch", "legacy_frames")),
        register_wipes(&r.counter("switch", "register_wipes")),
        exec_batches(&r.counter("switch", "exec_batches")),
        migration_ticks(&r.counter("switch", "migration_ticks")),
        migration_deferred(&r.counter("switch", "migration_deferred")),
        transit_frames(&r.counter("switch", "transit_frames")),
        health_acks(&r.counter("switch", "health_acks")),
        admission_deferred(&r.counter("alloc", "admission_deferred")),
        exec_latency_ns(&r.histogram("switch", "exec_latency_ns")),
        batch_size(&r.histogram("switch", "batch_size")) {}

  telemetry::CounterFamily packets;
  telemetry::Counter* malformed;
  telemetry::Counter* control_rejects;
  telemetry::Counter* unknown_destination;
  telemetry::Counter* forwarded;
  telemetry::Counter* returned;
  telemetry::Counter* dropped;
  telemetry::Counter* zero_copy_frames;
  telemetry::Counter* legacy_frames;
  telemetry::Counter* register_wipes;
  telemetry::Counter* exec_batches;
  telemetry::Counter* migration_ticks;
  telemetry::Counter* migration_deferred;
  telemetry::Counter* transit_frames;   // fabric: forwarded through, unexecuted
  telemetry::Counter* health_acks;      // fabric: probes answered
  telemetry::Counter* admission_deferred;  // parked for a pending re-slide
  telemetry::Histogram* exec_latency_ns;
  telemetry::Histogram* batch_size;
};

namespace {

// Folds the Config convenience flag into the cost model handed to the
// controller (either switch turns batching on).
CostModel effective_costs(const SwitchNode::Config& config) {
  CostModel costs = config.costs;
  costs.batched_updates |= config.batched_table_updates;
  return costs;
}

}  // namespace

SwitchNode::SwitchNode(std::string name, const Config& config)
    : netsim::Node(std::move(name)),
      pipeline_(config.pipeline),
      runtime_(pipeline_),
      controller_(pipeline_, runtime_, config.scheme, config.policy,
                  effective_costs(config)),
      program_cache_(config.program_cache_entries),
      mac_(config.mac),
      l2_learning_(config.l2_learning),
      default_recirc_budget_(config.default_recirc_budget),
      zero_copy_(config.zero_copy),
      batching_(config.batching),
      batch_(runtime_),
      heatmap_(pipeline_.stage_count()),
      migration_enabled_(config.migration.enabled),
      migration_interval_(config.migration.interval),
      hotness_(config.migration.hotness),
      remap_queue_(config.migration.queue_depth),
      planner_(config.migration.policy) {
  if (migration_enabled_ && migration_interval_ <= 0) {
    throw UsageError("SwitchNode: migration interval must be positive");
  }
  mig_quiesce_ticks_ = config.migration.hotness.cold_ticks +
                       config.migration.policy.cooldown_cycles + 1;
  runtime_.set_enforce_privilege(config.enforce_privilege);
  controller_.set_compute_model(config.compute_model);
  if (config.fid_base != 0) controller_.set_fid_base(config.fid_base);
  if (config.metrics != nullptr) {
    metrics_registry_ = config.metrics;
  } else {
    own_registry_ = std::make_unique<telemetry::MetricsRegistry>();
    metrics_registry_ = own_registry_.get();
  }
  metrics_ = std::make_unique<SwitchMetrics>(*metrics_registry_);
  runtime_.set_metrics(metrics_registry_);
  runtime_.set_heatmap(&heatmap_);
  controller_.set_metrics(metrics_registry_);
  program_cache_.set_metrics(metrics_registry_);
}

SwitchNode::~SwitchNode() = default;

SwitchNode::NodeStats SwitchNode::node_stats() const {
  NodeStats s;
  s.malformed = metrics_->malformed->value();
  s.control_rejects = metrics_->control_rejects->value();
  s.unknown_destination = metrics_->unknown_destination->value();
  s.forwarded = metrics_->forwarded->value();
  s.returned = metrics_->returned->value();
  s.dropped = metrics_->dropped->value();
  s.zero_copy_frames = metrics_->zero_copy_frames->value();
  s.legacy_frames = metrics_->legacy_frames->value();
  return s;
}

namespace {

// The flow metadata the parser would extract (5-tuple surrogate: MAC pair
// plus the head of the passive payload). Shared by both program paths so
// hash-based programs see identical inputs either way.
runtime::PacketMeta derive_meta(const packet::EthernetHeader& eth,
                                std::span<const u8> payload) {
  runtime::PacketMeta meta;
  meta.five_tuple[0] = static_cast<Word>(eth.src >> 16);
  meta.five_tuple[1] = static_cast<Word>(eth.src) << 16 |
                       static_cast<Word>(eth.dst >> 32);
  meta.five_tuple[2] = static_cast<Word>(eth.dst);
  if (payload.size() >= 5) {
    // Skip the payload's leading message-type byte so a flow's SYN and
    // data packets share one flow identity (Cheetah's cookie scheme
    // depends on hash(5-tuple) being stable across a flow).
    meta.five_tuple[3] = static_cast<Word>(payload[1]) << 24 |
                         static_cast<Word>(payload[2]) << 16 |
                         static_cast<Word>(payload[3]) << 8 |
                         static_cast<Word>(payload[4]);
  }
  return meta;
}

// Span emission helper; call sites gate on telemetry::spans_active().
void emit_span(telemetry::SpanPhase phase, SimTime ts, u64 span, u64 parent,
               i32 fid, u32 node, u64 a = 0, u64 b = 0) {
  telemetry::span_emit_with([&](telemetry::SpanEvent& event) {
    event.ts = ts;
    event.span = span;
    event.parent = parent;
    event.fid = fid;
    event.phase = phase;
    event.node = static_cast<u16>(node);
    event.a = a;
    event.b = b;
  });
}

}  // namespace

void SwitchNode::bind(packet::MacAddr mac, u32 port) {
  l2_table_[mac] = port;
}

void SwitchNode::bind_pinned(packet::MacAddr mac, u32 port) {
  l2_table_[mac] = port;
  l2_pinned_.insert(mac);
}

u64 SwitchNode::wipe_registers() {
  assert_confined();
  // Staged packets were delivered before the wipe; they must see the
  // pre-wipe registers, exactly as the per-packet engine ordered it.
  flush_batch();
  u64 wiped = 0;
  for (u32 s = 0; s < pipeline_.stage_count(); ++s) {
    rmt::RegisterArray& memory = pipeline_.stage(s).memory();
    memory.fill(0, memory.size(), 0);
    wiped += memory.size();
  }
  metrics_->register_wipes->inc();
  if (auto* sink = telemetry::trace_sink()) {
    sink->emit("switch", "registers_wiped", telemetry::kNoFid,
               {{"node", name()}, {"words", wiped}});
  }
  if (telemetry::spans_active()) {
    // Record the wipe itself, then dump: the forensic tail should contain
    // the brownout marker as its last event.
    emit_span(telemetry::SpanPhase::kWipe, network().simulator().now(),
              /*span=*/0, /*parent=*/0, telemetry::kNoFid, attach_index(),
              /*a=*/wiped);
    if (auto* recorder = telemetry::flight_recorder()) {
      recorder->dump(telemetry::span_lane(), "brownout");
    }
  }
  return wiped;
}

void SwitchNode::send_to_mac(packet::MacAddr dst, ActivePacket pkt,
                             SimTime delay) {
  pkt.ethernet.dst = dst;
  // Fabric mode stamps the switch's identity on control replies: clients
  // learn per-FID steering from the src of their AllocResponse, and the
  // global controller attributes health acks to the right switch. The
  // legacy single-switch wire format (src 0) is preserved when mac_ == 0.
  if (mac_ != 0) pkt.ethernet.src = mac_;
  send_frame_to_mac(dst, pkt.serialize(), delay);
}

void SwitchNode::send_frame_to_mac(packet::MacAddr dst, netsim::Frame frame,
                                   SimTime delay) {
  const auto it = l2_table_.find(dst);
  if (it == l2_table_.end()) {
    metrics_->unknown_destination->inc();
    return;
  }
  const u32 port = it->second;
  if (delay == 0) {
    network().transmit(*this, port, std::move(frame));
    return;
  }
  network().simulator().schedule_after(
      delay, [this, port, span = telemetry::current_span(),
              f = std::move(frame)]() mutable {
        flush_batch();  // keep transmit order identical to per-packet mode
        // The reply leaves under the inbound capsule's span, so the
        // client-bound send is causally chained to the request.
        telemetry::SpanScope scope(span);
        network().transmit(*this, port, std::move(f));
      });
}

void SwitchNode::on_frame(netsim::Frame frame, u32 port) {
  // Sharded engine tripwire: the pipeline's state (runtime, allocator,
  // control queue, program cache) is only ever touched by its owning
  // shard's worker.
  assert_confined();
  if (l2_learning_ && mac_ != 0 &&
      frame.size() >= packet::EthernetHeader::kWireSize) {
    ByteReader in(frame);
    const auto eth = packet::EthernetHeader::parse(in);
    if (eth.src != 0 && eth.src != mac_ && !l2_pinned_.contains(eth.src)) {
      l2_table_[eth.src] = port;
    }
  }
  (void)port;
  if (migration_enabled_ && !migration_armed_) {
    // Armed lazily from the first frame, not the constructor: by now the
    // node is attached and its scheduled closures resolve to the owning
    // shard, so the tick train is deterministic across shard counts.
    // Also how the engine re-arms after quiescing on an idle switch.
    migration_armed_ = true;
    mig_idle_streak_ = 0;
    network().simulator().schedule_after(migration_interval_,
                                         [this] { migration_tick(); });
  }
  if (migration_enabled_) ++mig_frames_since_tick_;
  if (mac_ != 0 && packet::ProgramView::is_program_frame(frame)) {
    // Fabric transit: a program capsule whose FID is not resident here is
    // someone else's traffic -- forward it by destination untouched. The
    // peek is two fixed-offset header reads; the frame is never decoded
    // or interned, so transit at a spine costs no program-cache churn.
    ByteReader in(frame);
    const auto eth = packet::EthernetHeader::parse(in);
    const Fid fid = in.get_u16();
    if (!controller_.resident(fid)) {
      flush_batch();  // a transit ends the burst: send order stays causal
      metrics_->transit_frames->inc();
      send_frame_to_mac(eth.dst, std::move(frame), 0);
      return;
    }
  }
  if (zero_copy_ && packet::ProgramView::is_program_frame(frame)) {
    // Fast path: parse the capsule in place -- no ActivePacket, no byte
    // copies. An unparseable program-typed frame falls through to the
    // same passive/malformed handling as the legacy path.
    std::optional<packet::ProgramView> view;
    try {
      view = packet::ProgramView::parse(frame, program_cache_);
    } catch (const ParseError&) {
      view.reset();
    }
    if (view) {
      // No kParse span on this path: the in-place parse is part of the
      // execution step, and the capsule's kSend (arrival) + kExec events
      // already bound it. The materialized handle_program path -- where
      // parsing is a real decode -- emits the explicit kParse marker.
      if (batching_) {
        stage_program_view(*std::move(view), std::move(frame));
      } else {
        handle_program_view(*std::move(view), std::move(frame));
      }
      return;
    }
  }
  // Anything that is not a batchable program capsule ends the burst:
  // staged packets execute first, preserving arrival order.
  flush_batch();
  ActivePacket pkt;
  try {
    pkt = proto::parse_capsule(frame, program_cache_);
  } catch (const ParseError&) {
    // Passive traffic: plain L2 forwarding by destination MAC.
    if (frame.size() >= packet::EthernetHeader::kWireSize) {
      ByteReader in(frame);
      const auto eth = packet::EthernetHeader::parse(in);
      const auto it = l2_table_.find(eth.dst);
      if (it != l2_table_.end()) {
        metrics_->forwarded->inc();
        network().transmit(*this, it->second, std::move(frame));
        return;
      }
    }
    metrics_->malformed->inc();
    return;
  }

  if (mac_ != 0 && pkt.ethernet.dst != 0 && pkt.ethernet.dst != mac_) {
    // Control traffic addressed to another node (a sibling switch, the
    // global controller, or a client): plain L2 transit.
    metrics_->transit_frames->inc();
    send_frame_to_mac(pkt.ethernet.dst, std::move(frame), 0);
    return;
  }
  if (mac_ != 0 && pkt.initial.type == ActiveType::kHealthProbe) {
    // Health epoch: answer from the data plane immediately -- liveness
    // must not queue behind control ops -- with the allocator scoreboard
    // riding in the payload.
    ActivePacket ack =
        ActivePacket::make_control(0, ActiveType::kHealthAck);
    ack.initial.seq = pkt.initial.seq;
    if (scoreboard_provider_) ack.payload = scoreboard_provider_();
    metrics_->health_acks->inc();
    send_to_mac(pkt.ethernet.src, std::move(ack));
    return;
  }

  switch (pkt.initial.type) {
    case ActiveType::kProgram:
      handle_program(std::move(pkt));
      return;
    case ActiveType::kAllocRequest:
    case ActiveType::kDealloc:
      enqueue_control(std::move(pkt));
      return;
    case ActiveType::kExtractComplete:
      // Handshake packets must not queue behind other control ops.
      if (txn_ && !txn_->applying &&
          controller_.extraction_complete(pkt.initial.fid)) {
        ready_to_apply();
      }
      return;
    default:
      return;  // responses/acks arriving at the switch are ignored
  }
}

void SwitchNode::handle_program(ActivePacket pkt) {
  const runtime::PacketMeta meta = derive_meta(pkt.ethernet, pkt.payload);

  // Steady-state execution: the interned, immutable program plus a
  // stack-local cursor. The decoded-Program fallback only runs for
  // packets injected without going through the caching parser.
  active::ExecCursor cursor;
  const SimTime now = network().simulator().now();
  if (telemetry::spans_active()) {
    emit_span(telemetry::SpanPhase::kParse, now, telemetry::current_span(),
              /*parent=*/0, pkt.initial.fid, attach_index());
  }
  const runtime::ExecutionResult result =
      pkt.compiled && !pkt.program
          ? runtime_.execute(*pkt.compiled, pkt, cursor, meta, now)
          : runtime_.execute(pkt, meta, now);
  if (telemetry::spans_active()) {
    const u64 span = telemetry::current_span();
    emit_span(telemetry::SpanPhase::kExec, now, span, /*parent=*/0,
              pkt.initial.fid, attach_index(), result.passes,
              static_cast<u64>(result.latency));
    for (u32 pass = 1; pass < result.passes; ++pass) {
      emit_span(telemetry::SpanPhase::kRecirc, now,
                telemetry::recirc_span_id(span, pass), span, pkt.initial.fid,
                attach_index(), pass);
    }
  }
  metrics_->packets.at(pkt.initial.fid).inc();
  metrics_->legacy_frames->inc();
  metrics_->exec_latency_ns->record(static_cast<u64>(result.latency));
  switch (result.verdict) {
    case runtime::Verdict::kDrop:
      metrics_->dropped->inc();
      return;
    case runtime::Verdict::kReturnToSender:
      metrics_->returned->inc();
      break;
    case runtime::Verdict::kForward:
      metrics_->forwarded->inc();
      break;
  }
  // One outbound frame synthesis: the shrink reply comes from the cursor,
  // never from mutated code.
  auto frame = proto::encode_executed(pkt, cursor);
  if (result.forked) {
    // The clone continues to the original destination as well.
    send_frame_to_mac(pkt.ethernet.dst, frame, result.latency);
  }
  if (result.phv.dst_overridden &&
      result.verdict == runtime::Verdict::kForward) {
    // SET_DST: the program chose an egress port directly (the Cheetah
    // select program stores server ports in the VIP pool).
    const u32 port = result.phv.dst_value;
    network().simulator().schedule_after(
        result.latency, [this, port, span = telemetry::current_span(),
                         f = std::move(frame)]() mutable {
          flush_batch();
          telemetry::SpanScope scope(span);
          network().transmit(*this, port, std::move(f));
        });
    return;
  }
  send_frame_to_mac(pkt.ethernet.dst, std::move(frame), result.latency);
}

void SwitchNode::handle_program_view(packet::ProgramView view,
                                     netsim::Frame frame) {
  const runtime::PacketMeta meta =
      derive_meta(view.ethernet, view.payload(frame));

  active::ExecCursor cursor;
  const SimTime now = network().simulator().now();
  const runtime::ExecutionResult result =
      runtime_.execute(view, cursor, meta, now);
  emit_program_result(view, std::move(frame), cursor, result);
}

void SwitchNode::emit_program_result(packet::ProgramView& view,
                                     netsim::Frame frame,
                                     active::ExecCursor& cursor,
                                     const runtime::ExecutionResult& result) {
  if (telemetry::spans_active()) {
    // Before the verdict switch, so dropped capsules keep their execution
    // record (the phase breakdown needs exec cost even for drops).
    const SimTime now = network().simulator().now();
    const u64 span = telemetry::current_span();
    emit_span(telemetry::SpanPhase::kExec, now, span, /*parent=*/0,
              view.initial.fid, attach_index(), result.passes,
              static_cast<u64>(result.latency));
    for (u32 pass = 1; pass < result.passes; ++pass) {
      emit_span(telemetry::SpanPhase::kRecirc, now,
                telemetry::recirc_span_id(span, pass), span, view.initial.fid,
                attach_index(), pass);
    }
  }
  metrics_->packets.at(view.initial.fid).inc();
  metrics_->exec_latency_ns->record(static_cast<u64>(result.latency));
  switch (result.verdict) {
    case runtime::Verdict::kDrop:
      metrics_->dropped->inc();
      return;
    case runtime::Verdict::kReturnToSender:
      metrics_->returned->inc();
      break;
    case runtime::Verdict::kForward:
      metrics_->forwarded->inc();
      break;
  }
  metrics_->zero_copy_frames->inc();
  // The reply is rewritten into the inbound buffer (the window slides
  // forward over the shrunk bytes): wire-in to wire-out without a copy.
  netsim::Frame out =
      proto::encode_executed(view, cursor, std::move(frame), network().pool());
  if (result.forked) {
    // The clone continues to the original destination as well (a shallow
    // buffer share; frames in flight are never mutated).
    send_frame_to_mac(view.ethernet.dst, out, result.latency);
  }
  if (result.phv.dst_overridden &&
      result.verdict == runtime::Verdict::kForward) {
    // SET_DST: the program chose an egress port directly.
    const u32 port = result.phv.dst_value;
    network().simulator().schedule_after(
        result.latency, [this, port, span = telemetry::current_span(),
                         f = std::move(out)]() mutable {
          flush_batch();
          telemetry::SpanScope scope(span);
          network().transmit(*this, port, std::move(f));
        });
    return;
  }
  send_frame_to_mac(view.ethernet.dst, std::move(out), result.latency);
}

void SwitchNode::stage_program_view(packet::ProgramView view,
                                    netsim::Frame frame) {
  pending_.push_back(PendingExec{std::move(view), std::move(frame),
                                 telemetry::current_span()});
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  // A plain event at `now` sorts after every delivery arriving at `now`
  // (deliveries carry their earlier send time as the tie key), so by the
  // time this fires the whole same-instant burst has been staged. Any
  // earlier-keyed closure at this instant flushes eagerly instead.
  network().simulator().schedule_after(0, [this] {
    flush_scheduled_ = false;
    flush_batch();
  });
}

void SwitchNode::flush_batch() {
  if (pending_.empty()) return;
  const SimTime now = network().simulator().now();
  const std::size_t n = pending_.size();
  // Lane state captures pointers into these; size them only once the
  // burst is complete so nothing reallocates under a live lane.
  batch_ctx_.resize(n);
  batch_cursors_.resize(n);
  batch_meta_.resize(n);
  batch_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    PendingExec& p = pending_[i];
    batch_meta_[i] = derive_meta(p.view.ethernet, p.view.payload(p.frame));
    runtime::ExecContext& ctx = batch_ctx_[i];
    ctx.args = &p.view.arguments.args;
    ctx.fid = p.view.initial.fid;
    ctx.flags = p.view.initial.flags;
    ctx.eth_src = &p.view.ethernet.src;
    ctx.eth_dst = &p.view.ethernet.dst;
    batch_.add(*p.view.compiled, ctx, batch_cursors_[i], batch_meta_[i], now);
  }
  batch_.execute();
  metrics_->exec_batches->inc();
  metrics_->batch_size->record(static_cast<u64>(n));
  for (std::size_t i = 0; i < n; ++i) {
    // Each reply runs under its capsule's delivery span (the flush event
    // itself has no span context), matching the per-packet engine.
    telemetry::SpanScope scope(pending_[i].span);
    emit_program_result(pending_[i].view, std::move(pending_[i].frame),
                        batch_cursors_[i], batch_.result(i));
  }
  pending_.clear();
}

void SwitchNode::enqueue_control(ActivePacket pkt) {
  ControlOp op;
  op.requester = pkt.ethernet.src;
  op.pkt = std::move(pkt);
  control_queue_.push_back(std::move(op));
  if (!control_busy_) process_next_control();
}

void SwitchNode::process_next_control() {
  // Control continuations are scheduled closures; confinement here (and
  // in ready_to_apply) catches one landing on the wrong shard's queue.
  assert_confined();
  if (control_queue_.empty()) {
    control_busy_ = false;
    return;
  }
  control_busy_ = true;
  ControlOp op = std::move(control_queue_.front());
  control_queue_.pop_front();
  // Digest delivery to the switch CPU.
  network().simulator().schedule_after(
      controller_.costs().digest_latency, [this, op = std::move(op)]() {
        flush_batch();  // staged packets predate this control op
        if (op.pkt.initial.type == ActiveType::kAllocRequest) {
          run_admission(op);
        } else {
          run_release(op);
        }
      });
}

void SwitchNode::run_admission(const ControlOp& op) {
  alloc::AllocationRequest request;
  try {
    request = proto::decode_request(op.pkt);
  } catch (const ParseError&) {
    metrics_->control_rejects->inc();
    finish_control();
    return;
  }

  AdmissionResult result;
  try {
    result = controller_.admit(request);
  } catch (const UsageError&) {
    // Structurally invalid request (e.g. crafted positions beyond the
    // program length): deny rather than wedge the control plane.
    metrics_->control_rejects->inc();
    send_to_mac(op.requester, proto::encode_denial(op.pkt.initial.seq));
    finish_control();
    return;
  }
  const auto compute_delay =
      static_cast<SimTime>(result.compute_ms * kMillisecond);

  if (!result.admitted) {
    if (migration_enabled_ && !op.deferred && reslide_may_unblock(request)) {
      // Migration-pressure feedback: a queued re-slide is about to compact
      // the very contiguity this admission is missing. Park the op for one
      // migration interval instead of denying outright; the retry runs
      // the search again (front of the queue, so no newer op overtakes it)
      // and a second failure denies for real.
      metrics_->admission_deferred->inc();
      ControlOp retry = op;
      retry.deferred = true;
      network().simulator().schedule_after(compute_delay, [this] {
        flush_batch();
        finish_control();  // free the control plane so the re-slide can run
      });
      network().simulator().schedule_after(
          compute_delay + migration_interval_,
          [this, retry = std::move(retry)]() mutable {
            flush_batch();
            control_queue_.push_front(std::move(retry));
            if (!control_busy_) process_next_control();
          });
      return;
    }
    send_to_mac(op.requester, proto::encode_denial(op.pkt.initial.seq),
                compute_delay);
    network().simulator().schedule_after(compute_delay, [this] {
      flush_batch();
      finish_control();
    });
    return;
  }

  client_of_[result.fid] = op.requester;
  if (default_recirc_budget_.tokens_per_second > 0.0) {
    runtime_.set_recirc_budget(result.fid, default_recirc_budget_);
  }

  PendingTxn txn;
  txn.id = ++txn_counter_;
  txn.new_fid = result.fid;
  txn.seq = op.pkt.initial.seq;
  txn.requester = op.requester;
  txn.disturbed = result.disturbed;
  txn.apply_cost = result.table_update_cost + result.clear_cost;
  txn_ = txn;

  if (!result.pending) {
    // Nothing to extract; the layout is already applied. Answer after the
    // modeled compute + install costs.
    txn_->applying = true;
    network().simulator().schedule_after(
        compute_delay + txn_->apply_cost, [this] {
          flush_batch();
          send_to_mac(txn_->requester,
                      proto::encode_response(
                          txn_->new_fid,
                          controller_.response_for(txn_->new_fid),
                          *controller_.mutant_of(txn_->new_fid), txn_->seq));
          txn_.reset();
          finish_control();
        });
    return;
  }

  // Handshake: notify the disturbed apps, arm the extraction timeout.
  const u64 txn_id = txn.id;
  network().simulator().schedule_after(compute_delay, [this, txn_id] {
    flush_batch();
    if (!txn_ || txn_->id != txn_id) return;
    for (const Fid fid : txn_->disturbed) {
      const auto it = client_of_.find(fid);
      if (it == client_of_.end()) continue;
      send_to_mac(it->second,
                  ActivePacket::make_control(fid, ActiveType::kReallocNotice));
    }
  });
  network().simulator().schedule_after(
      compute_delay + controller_.costs().extraction_timeout,
      [this, txn_id] {
        flush_batch();
        if (!txn_ || txn_->id != txn_id || txn_->applying) return;
        controller_.timeout_pending();
        ready_to_apply();
      });
}

void SwitchNode::migration_tick() {
  assert_confined();
  flush_batch();  // the tick observes everything delivered before it
  ++mig_ticks_;
  metrics_->migration_ticks->inc();
  // Absorb the heatmap delta and decay every tick, busy or not: hotness
  // time advances with virtual time, not with control-plane luck.
  hotness_.tick(heatmap_);
  bool acted = false;
  if (control_busy_ || txn_ || controller_.has_pending()) {
    // Admissions/releases own the control plane; migration yields.
    ++mig_deferred_;
    metrics_->migration_deferred->inc();
    acted = true;  // a busy control plane is not an idle switch
  } else {
    acted = planner_.plan(controller_, hotness_, remap_queue_) > 0;
    while (auto request = remap_queue_.pop()) {
      if (!controller_.resident(request->fid)) {
        ++mig_departed_;
        continue;
      }
      // At most one live handshake per tick: the interval is the engine's
      // rate limit, and the planner re-proposes anything still worth doing.
      if (start_migration(*request)) {
        acted = true;
        break;
      }
    }
  }
  // De-arm once the switch has been fully idle long enough that no plan
  // can ever materialize (every cold streak matured, every cooldown
  // expired); otherwise run()-style drains would never terminate. The
  // next frame re-arms the train.
  if (mig_frames_since_tick_ == 0 && !acted && remap_queue_.empty()) {
    if (++mig_idle_streak_ >= mig_quiesce_ticks_) {
      migration_armed_ = false;
      return;
    }
  } else {
    mig_idle_streak_ = 0;
  }
  mig_frames_since_tick_ = 0;
  network().simulator().schedule_after(migration_interval_,
                                       [this] { migration_tick(); });
}

bool SwitchNode::reslide_may_unblock(
    const alloc::AllocationRequest& request) const {
  if (request.elastic) return false;  // capacity problem, not contiguity
  u32 need = 0;
  for (const auto& access : request.accesses) {
    need = std::max(need, access.demand_blocks);
  }
  if (need == 0) return false;
  for (const RemapRequest& queued : remap_queue_.pending()) {
    if (queued.kind != RemapKind::kReslide) continue;
    const alloc::StageState& st = controller_.allocator().stage(queued.stage);
    // Enough free blocks in total, just not contiguous: compaction could
    // merge them into a run the bottleneck access fits.
    if (st.free_blocks() >= need && st.largest_free_run() < need) return true;
  }
  return false;
}

bool SwitchNode::start_migration(const RemapRequest& request) {
  // Hotness-directed placement: a re-slide's target search prefers calmer
  // stages when scheme scores tie, so compaction steers load away from
  // the hottest memory. The bias lives only for the synchronous allocator
  // op inside migrate().
  if (request.kind == RemapKind::kReslide) {
    controller_.set_stage_bias(hotness_.stage_totals(pipeline_.stage_count()));
  }
  const MigrationResult result = controller_.migrate(request);
  controller_.set_stage_bias({});
  if (!result.pending) {
    ++mig_noops_;
    return false;
  }
  ++mig_executed_;
  // The handshake occupies the control plane exactly like an admission:
  // arriving control ops queue behind it, kExtractComplete jumps the queue.
  control_busy_ = true;
  PendingTxn txn;
  txn.id = ++txn_counter_;
  txn.new_fid = 0;
  txn.requester = 0;
  txn.disturbed = result.disturbed;
  txn.apply_cost = result.apply_time();
  txn.migration = true;
  txn_ = txn;

  const auto compute_delay =
      static_cast<SimTime>(result.compute_ms * kMillisecond);
  const u64 txn_id = txn.id;
  network().simulator().schedule_after(compute_delay, [this, txn_id] {
    flush_batch();
    if (!txn_ || txn_->id != txn_id) return;
    for (const Fid fid : txn_->disturbed) {
      const auto it = client_of_.find(fid);
      if (it == client_of_.end()) continue;
      send_to_mac(it->second,
                  ActivePacket::make_control(fid, ActiveType::kReallocNotice));
    }
  });
  network().simulator().schedule_after(
      compute_delay + controller_.costs().extraction_timeout,
      [this, txn_id] {
        flush_batch();
        if (!txn_ || txn_->id != txn_id || txn_->applying) return;
        controller_.timeout_pending();
        ready_to_apply();
      });
  return true;
}

SwitchNode::MigrationEngineStats SwitchNode::migration_stats() const {
  MigrationEngineStats stats;
  stats.ticks = mig_ticks_;
  stats.deferred = mig_deferred_;
  stats.executed = mig_executed_;
  stats.noops = mig_noops_;
  stats.departed = mig_departed_;
  stats.planner = planner_.stats();
  stats.queue = remap_queue_.stats();
  return stats;
}

void SwitchNode::ready_to_apply() {
  assert_confined();
  if (!txn_ || txn_->applying) return;
  txn_->applying = true;
  network().simulator().schedule_after(txn_->apply_cost, [this] {
    flush_batch();  // packets staged before the apply see the old layout
    controller_.apply_pending();
    // New allocations for the requester and every moved app. A migration
    // has no requester (and FID 0 has no mutant); only the disturbed
    // responses go out.
    if (!txn_->migration) {
      send_to_mac(txn_->requester,
                  proto::encode_response(
                      txn_->new_fid, controller_.response_for(txn_->new_fid),
                      *controller_.mutant_of(txn_->new_fid), txn_->seq));
    }
    for (const Fid fid : txn_->disturbed) {
      const auto it = client_of_.find(fid);
      if (it == client_of_.end()) continue;
      send_to_mac(it->second,
                  proto::encode_response(fid, controller_.response_for(fid),
                                         *controller_.mutant_of(fid), 0));
    }
    txn_.reset();
    finish_control();
  });
}

void SwitchNode::run_release(const ControlOp& op) {
  const Fid fid = op.pkt.initial.fid;
  if (!controller_.resident(fid)) {
    finish_control();
    return;
  }
  const ReleaseResult result = controller_.release(fid);
  const SimTime delay = result.table_update_cost + result.snapshot_cost;
  client_of_.erase(fid);
  runtime_.clear_recirc_budget(fid);
  if (migration_enabled_) {
    // The FID is gone: purge any queued remap and its hotness history so
    // a recycled FID starts cold instead of inheriting scores.
    remap_queue_.drop_fid(fid);
    hotness_.forget(static_cast<i32>(fid));
  }

  // Capture only what the continuation needs (requester MAC + fid), not
  // the whole ControlOp: copying the embedded ActivePacket would drag its
  // headers, payload, and program vectors into the closure for nothing.
  network().simulator().schedule_after(
      delay, [this, requester = op.requester, fid, result] {
    flush_batch();
    send_to_mac(requester,
                ActivePacket::make_control(fid, ActiveType::kDeallocAck));
    // Departure-triggered moves: tell the affected apps their new layout.
    for (const Fid moved : result.disturbed) {
      const auto it = client_of_.find(moved);
      if (it == client_of_.end()) continue;
      send_to_mac(it->second,
                  proto::encode_response(moved, controller_.response_for(moved),
                                         *controller_.mutant_of(moved), 0));
    }
    finish_control();
  });
}

void SwitchNode::finish_control() { process_next_control(); }

}  // namespace artmt::controller
