#include "client/reliability.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace artmt::client {

namespace {

// FNV-1a, so two trackers on one node with different names draw from
// different jitter streams (std::hash is not cross-platform stable).
u64 fnv1a(const std::string& s) {
  u64 h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

ReliabilityTracker::ReliabilityTracker(std::string name,
                                       std::function<netsim::Simulator&()> sim)
    : ReliabilityTracker(std::move(name), std::move(sim), Options()) {}

ReliabilityTracker::ReliabilityTracker(
    std::string name, std::function<netsim::Simulator&()> sim, Options opts)
    : name_(std::move(name)),
      sim_(std::move(sim)),
      opts_(opts),
      rng_(Rng::substream(opts.seed, fnv1a(name_))) {
  if (sim_ == nullptr) {
    throw UsageError("ReliabilityTracker: null simulator resolver");
  }
  if (opts_.backoff < 1.0) {
    throw UsageError("ReliabilityTracker: backoff multiplier must be >= 1");
  }
}

void ReliabilityTracker::set_options(Options opts) {
  if (opts.backoff < 1.0) {
    throw UsageError("ReliabilityTracker: backoff multiplier must be >= 1");
  }
  opts_ = opts;
  rng_ = Rng::substream(opts.seed, fnv1a(name_));
}

SimTime ReliabilityTracker::jittered(SimTime rto) {
  if (opts_.jitter <= 0.0) return std::max<SimTime>(rto, 1);
  const double factor =
      1.0 + opts_.jitter * (2.0 * rng_.uniform_double() - 1.0);
  return std::max<SimTime>(
      static_cast<SimTime>(static_cast<double>(rto) * factor), 1);
}

void ReliabilityTracker::track(u32 id, ResendFn resend) {
  Entry entry;
  entry.rto = opts_.rto;
  entry.deadline = sim_().now() + jittered(opts_.rto);
  // The repo's idiom is send-then-track within one event handler, so the
  // thread's latest transmit span is the capsule this entry guards;
  // retransmits chain off it. (0 when spans are off or nothing was sent.)
  entry.span = telemetry::spans_active() ? telemetry::last_tx_span() : 0;
  entry.resend = std::move(resend);
  entries_[id] = std::move(entry);
  ++stats_.tracked;
  arm();
}

bool ReliabilityTracker::ack(u32 id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  ++stats_.acked;
  if (it->second.attempts > 0) ++stats_.recovered;
  entries_.erase(it);
  return true;
}

void ReliabilityTracker::cancel(u32 id) { entries_.erase(id); }

void ReliabilityTracker::cancel_all() { entries_.clear(); }

void ReliabilityTracker::arm() {
  if (entries_.empty()) return;
  SimTime earliest = entries_.begin()->second.deadline;
  for (const auto& [id, entry] : entries_) {
    earliest = std::min(earliest, entry.deadline);
  }
  if (timer_armed_ && timer_at_ <= earliest) return;
  timer_armed_ = true;
  timer_at_ = earliest;
  const u64 generation = ++timer_generation_;
  sim_().schedule_at(earliest,
                     [this, generation] { on_timer(generation); });
}

void ReliabilityTracker::on_timer(u64 generation) {
  if (generation != timer_generation_) return;  // superseded by re-arm
  timer_armed_ = false;
  const SimTime now = sim_().now();
  const bool gate = paused != nullptr && paused();

  // Expired ids snapshotted first: resend/give-up callbacks may track,
  // ack, or cancel entries, so each id is re-looked-up before use.
  std::vector<u32> expired;
  for (const auto& [id, entry] : entries_) {
    if (entry.deadline <= now) expired.push_back(id);
  }
  for (const u32 id : expired) {
    const auto it = entries_.find(id);
    if (it == entries_.end()) continue;
    Entry& entry = it->second;
    if (gate) {
      // Transmissions are paused; hold the capsule without charging the
      // retry budget.
      entry.deadline = now + jittered(entry.rto);
      continue;
    }
    if (entry.attempts >= opts_.retry_budget) {
      ++stats_.give_ups;
      const u64 span = entry.span;
      const u32 attempts = entry.attempts;
      entries_.erase(it);
      if (span != 0 && telemetry::spans_active()) {
        telemetry::SpanEvent event;
        event.ts = now;
        event.span = span;
        event.phase = telemetry::SpanPhase::kGiveUp;
        event.a = attempts;
        telemetry::span_emit(event);
      }
      if (on_give_up) on_give_up(id);
      continue;
    }
    ++entry.attempts;
    ++stats_.retransmits;
    backoff_samples_.push_back(static_cast<u64>(entry.rto));
    const SimTime expired_rto = entry.rto;
    const u64 prev_span = entry.span;
    entry.rto = std::min<SimTime>(
        opts_.max_rto,
        static_cast<SimTime>(static_cast<double>(entry.rto) * opts_.backoff));
    entry.deadline = now + jittered(entry.rto);
    const u32 attempt = entry.attempts;
    ResendFn resend = entry.resend;  // copy: the callback may erase `id`
    {
      // The retransmit's send is causally a child of the lost attempt.
      telemetry::SpanScope scope(prev_span);
      resend(id, attempt);
    }
    if (prev_span != 0 && telemetry::spans_active()) {
      const u64 new_span = telemetry::last_tx_span();
      if (new_span != prev_span) {
        telemetry::SpanEvent event;
        event.ts = now;
        event.span = new_span;
        event.parent = prev_span;
        event.phase = telemetry::SpanPhase::kRetry;
        event.a = attempt;
        event.b = static_cast<u64>(expired_rto);
        telemetry::span_emit(event);
        // The entry (if the callback kept it) now guards the new attempt.
        const auto again = entries_.find(id);
        if (again != entries_.end()) again->second.span = new_span;
      }
    }
  }
  arm();
}

void ReliabilityTracker::export_metrics(telemetry::MetricsRegistry& metrics,
                                        i32 fid) const {
  if (stats_.tracked == 0) return;
  metrics.counter("reliability", name_ + "_tracked", fid)
      .merge_add(stats_.tracked);
  metrics.counter("reliability", name_ + "_acked", fid)
      .merge_add(stats_.acked);
  metrics.counter("reliability", name_ + "_retransmits", fid)
      .merge_add(stats_.retransmits);
  metrics.counter("reliability", name_ + "_recovered", fid)
      .merge_add(stats_.recovered);
  metrics.counter("reliability", name_ + "_give_ups", fid)
      .merge_add(stats_.give_ups);
  if (!backoff_samples_.empty()) {
    auto& histogram = metrics.histogram("reliability", "backoff_ns", fid);
    for (const u64 sample : backoff_samples_) histogram.record(sample);
  }
}

}  // namespace artmt::client
