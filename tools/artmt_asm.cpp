// artmt_asm -- assemble, inspect, and size ActiveRMT programs.
//
// Usage:
//   artmt_asm [options] [file]        (reads stdin when no file given)
//     --hex          print the wire encoding (two bytes per instruction)
//     --mutants      derive allocation constraints and count mutants
//     --extra N      recirculation budget for --mutants (default 0 = mc)
//     --stages N     logical stages (default 20)
//     --ingress N    ingress stages (default 10)
//
// Example:
//   ./build/tools/artmt_asm --mutants < my_service.asm
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "active/assembler.hpp"
#include "alloc/mutant.hpp"
#include "client/compiler.hpp"
#include "common/bytes.hpp"

using namespace artmt;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: artmt_asm [--hex] [--mutants] [--extra N] "
               "[--stages N] [--ingress N] [file]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool want_hex = false;
  bool want_mutants = false;
  u32 extra = 0;
  alloc::StageGeometry geometry{20, 10};
  const char* path = nullptr;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hex") == 0) {
      want_hex = true;
    } else if (std::strcmp(argv[i], "--mutants") == 0) {
      want_mutants = true;
    } else if (std::strcmp(argv[i], "--extra") == 0 && i + 1 < argc) {
      extra = static_cast<u32>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--stages") == 0 && i + 1 < argc) {
      geometry.logical_stages = static_cast<u32>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--ingress") == 0 && i + 1 < argc) {
      geometry.ingress_stages = static_cast<u32>(std::atoi(argv[++i]));
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      path = argv[i];
    }
  }

  std::string text;
  if (path != nullptr) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "artmt_asm: cannot open %s\n", path);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  }

  active::Program program;
  try {
    program = active::assemble(text);
  } catch (const CompileError& error) {
    std::fprintf(stderr, "artmt_asm: %s\n", error.what());
    return 1;
  }

  const auto analysis = active::analyze(program);
  std::printf("instructions: %u (wire: %zu bytes incl. EOF)\n",
              analysis.length, program.wire_size());
  std::printf("memory accesses:");
  for (const u32 pos : analysis.access_positions) std::printf(" @%u", pos);
  if (analysis.access_positions.empty()) std::printf(" none (stateless)");
  std::printf("\n");
  if (!analysis.rts_positions.empty()) {
    std::printf("RTS at %u (must map to an ingress stage to avoid a "
                "recirculation)\n",
                analysis.rts_positions.front());
  }
  const u32 passes =
      (analysis.length + geometry.logical_stages - 1) /
      geometry.logical_stages;
  std::printf("pipeline passes (compact form): %u\n", passes);

  std::printf("\ndisassembly:\n%s", program.to_text().c_str());

  if (want_hex) {
    ByteWriter wire;
    program.serialize(wire);
    std::printf("\nwire encoding:");
    for (std::size_t i = 0; i < wire.bytes().size(); ++i) {
      if (i % 16 == 0) std::printf("\n  ");
      std::printf("%02x ", wire.bytes()[i]);
    }
    std::printf("\n");
  }

  if (want_mutants && !analysis.access_positions.empty()) {
    client::ServiceSpec spec;
    spec.program = program;
    spec.demands.assign(analysis.access_positions.size(), 1);
    const auto request = client::build_request(spec);
    const alloc::MutantPolicy policy{extra, extra == 0};
    const auto constraints =
        alloc::derive_constraints(request, geometry, policy);
    std::printf("\nallocation constraints (extra passes = %u):\n", extra);
    std::printf("  LB:");
    for (const u32 v : constraints.lower_bounds) std::printf(" %u", v);
    std::printf("\n  UB:");
    for (const u32 v : constraints.upper_bounds) std::printf(" %u", v);
    std::printf("\n  gaps:");
    for (const u32 v : constraints.min_gaps) std::printf(" %u", v);
    const auto mutants =
        alloc::enumerate_mutants(request, geometry, policy);
    std::printf("\n  mutants: %zu\n", mutants.size());
    if (!mutants.empty()) {
      std::printf("  first:");
      for (const u32 v : mutants.front()) std::printf(" %u", v);
      std::printf("\n  last: ");
      for (const u32 v : mutants.back()) std::printf(" %u", v);
      std::printf("\n");
    }
  }
  return 0;
}
