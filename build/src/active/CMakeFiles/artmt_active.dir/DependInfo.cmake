
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/active/assembler.cpp" "src/active/CMakeFiles/artmt_active.dir/assembler.cpp.o" "gcc" "src/active/CMakeFiles/artmt_active.dir/assembler.cpp.o.d"
  "/root/repo/src/active/isa.cpp" "src/active/CMakeFiles/artmt_active.dir/isa.cpp.o" "gcc" "src/active/CMakeFiles/artmt_active.dir/isa.cpp.o.d"
  "/root/repo/src/active/program.cpp" "src/active/CMakeFiles/artmt_active.dir/program.cpp.o" "gcc" "src/active/CMakeFiles/artmt_active.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/artmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
