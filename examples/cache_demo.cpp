// In-network cache demo over the event-driven testbed (the Section 3.4 /
// 6.3 scenario): a client negotiates a cache allocation, populates hot
// objects, and issues Zipf-distributed GETs -- hot keys come back from
// the switch, cold ones from the server.
//
// Build & run:  ./build/examples/cache_demo
#include <cstdio>

#include "apps/cache_service.hpp"
#include "apps/server_node.hpp"
#include "client/client_node.hpp"
#include "common/logging.hpp"
#include "controller/switch_node.hpp"
#include "workload/zipf.hpp"

using namespace artmt;

int main() {
  set_log_level(LogLevel::kInfo);

  netsim::Simulator sim;
  netsim::Network net(sim);

  auto sw = std::make_shared<controller::SwitchNode>(
      "switch", controller::SwitchNode::Config{});
  auto server = std::make_shared<apps::ServerNode>("server", 0xbb);
  auto client = std::make_shared<client::ClientNode>("client", 0x100, 0xaa);
  net.attach(sw);
  net.attach(server);
  net.attach(client);
  net.connect(*sw, 0, *server, 0);
  net.connect(*sw, 1, *client, 0);
  sw->bind(0xbb, 0);
  sw->bind(0x100, 1);

  // Workload: 10k keys, Zipf(1.1); the server is authoritative.
  workload::ZipfGenerator zipf(10'000, 1.1);
  Rng rng(7);
  auto key_of = [](u32 rank) {
    return workload::ZipfGenerator::key_for_rank(rank);
  };
  for (u32 rank = 0; rank < zipf.universe(); ++rank) {
    server->put(key_of(rank), rank + 1);
  }

  auto cache = std::make_shared<apps::CacheService>("cache", 0xbb);
  client->register_service(cache);
  client->on_passive = [&cache](netsim::Frame& frame) {
    const auto msg = apps::KvMessage::parse(std::span<const u8>(frame).subspan(
        packet::EthernetHeader::kWireSize));
    if (msg) cache->handle_server_reply(*msg);
  };

  u64 hits = 0;
  u64 misses = 0;
  cache->on_result = [&](u32, u64, u32, bool hit) {
    (hit ? hits : misses)++;
  };

  // Once operational: populate the 500 hottest keys, then fire requests.
  cache->on_ready = [&] {
    std::vector<std::pair<u64, u32>> hot;
    for (u32 rank = 500; rank-- > 0;) hot.emplace_back(key_of(rank), rank + 1);
    const std::size_t count = hot.size();
    cache->populate(std::move(hot), [&sim, &cache, count] {
      std::printf("[t=%.3fs] cache populated with %zu objects (%u buckets)\n",
                  sim.now() / 1e9, count, cache->bucket_count());
    });
  };
  cache->request_allocation();

  // 20k requests at 10k/s after a 2 s warmup for allocation + population.
  // (The driver lives at main scope: scheduled continuations reference it.)
  std::function<void(u32)> fire = [&](u32 remaining) {
    if (remaining == 0) return;
    cache->get(key_of(zipf.next_rank(rng)));
    sim.schedule_after(100 * 1000,
                       [&fire, remaining] { fire(remaining - 1); });
  };
  sim.schedule_at(2 * kSecond, [&fire] { fire(20'000); });

  sim.run();
  std::printf("\nresults: %llu hits, %llu misses (hit rate %.1f%%)\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses),
              100.0 * hits / std::max<u64>(1, hits + misses));
  std::printf("ideal (top-500 popularity mass): %.1f%%\n",
              100.0 * zipf.top_mass(500));
  std::printf("switch processed %llu capsules, returned %llu from cache\n",
              static_cast<unsigned long long>(sw->runtime().stats().packets),
              static_cast<unsigned long long>(sw->node_stats().returned));
  return 0;
}
