#include "apps/hh_service.hpp"

#include <algorithm>

#include "apps/programs.hpp"
#include "client/client_node.hpp"
#include "common/logging.hpp"

namespace artmt::apps {

namespace {
// Access indices within the monitor program's access list.
constexpr u32 kAccessThreshold = 2;
constexpr u32 kAccessKey0 = 3;
constexpr u32 kAccessKey1 = 4;

client::ReliabilityTracker::Options extract_retry_options() {
  client::ReliabilityTracker::Options opts;
  opts.rto = 5 * kMillisecond;  // the former fixed sweep interval
  return opts;
}
}  // namespace

FrequentItemService::FrequentItemService(std::string name,
                                         packet::MacAddr server_mac,
                                         u32 cms_blocks, u32 table_blocks)
    : client::Service(std::move(name),
                      hh_service_spec(cms_blocks, table_blocks)),
      server_mac_(server_mac),
      extract_retry_(
          "extract", [this]() -> netsim::Simulator& { return node().sim(); },
          extract_retry_options()) {
  extract_retry_.on_give_up = [this](u32 id) { read_given_up(id); };
}

u32 FrequentItemService::table_words() const {
  const auto* synth = synthesized();
  if (synth == nullptr) return 0;
  return std::min({synth->access_words[kAccessThreshold],
                   synth->access_words[kAccessKey0],
                   synth->access_words[kAccessKey1]});
}

void FrequentItemService::observe(u64 key) {
  if (!operational()) return;  // transmissions paused while negotiating
  const auto* synth = synthesized();
  packet::ArgumentHeader args;
  args.args[0] = key_half0(key);
  args.args[1] = key_half1(key);
  KvMessage msg;
  msg.type = KvMessage::Type::kGet;
  msg.request_id = next_request_++;
  msg.key = key;
  send_program(*synth, args, msg.serialize(), false, server_mac_);
}

client::MemRef FrequentItemService::ref_for_access(u32 access,
                                                   u32 index) const {
  const auto* synth = synthesized();
  const u32 stages = node().logical_stages();
  client::MemRef ref;
  ref.stage = (*mutant())[access] % stages;
  ref.address = synth->access_base[access] + index;
  return ref;
}

void FrequentItemService::send_key_read(u32 index) {
  const client::MemRef ref0 = ref_for_access(kAccessKey0, index);
  const client::MemRef ref1 = ref_for_access(kAccessKey1, index);
  KvMessage tag;
  tag.type = KvMessage::Type::kMemSync;
  tag.request_id = index;
  tag.key = kTagKeys;
  if (ref0.stage < ref1.stage) {
    tag.value = 2;  // pair read: both halves in one capsule
    send_program(client::make_read_pair_program(ref0, ref1),
                 client::read_pair_args(ref0, ref1), tag.serialize(),
                 extraction_->management);
  } else {
    // Mutant wrapped the stages out of order: two single reads, key0
    // first (tag distinguishes them by array).
    KvMessage tag0 = tag;
    tag0.key = kTagKeys;
    tag0.value = 0;
    send_program(client::make_read_program(ref0), client::read_args(ref0),
                 tag0.serialize(), extraction_->management);
    KvMessage tag1 = tag;
    tag1.key = kTagKeys;
    tag1.value = 1;
    send_program(client::make_read_program(ref1), client::read_args(ref1),
                 tag1.serialize(), extraction_->management);
  }
}

void FrequentItemService::send_threshold_read(u32 index) {
  const client::MemRef ref = ref_for_access(kAccessThreshold, index);
  KvMessage tag;
  tag.type = KvMessage::Type::kMemSync;
  tag.request_id = index;
  tag.key = kTagThreshold;
  send_program(client::make_read_program(ref), client::read_args(ref),
               tag.serialize(), extraction_->management);
}

void FrequentItemService::extract(ItemsFn done, u32 min_count,
                                  bool management) {
  if (synthesized() == nullptr) {
    throw UsageError("FrequentItemService: no allocation to extract");
  }
  const u32 words = table_words();
  Extraction ex;
  ex.done = std::move(done);
  ex.min_count = min_count;
  ex.management = management;
  ex.thresholds.assign(words, 0);
  ex.key0.assign(words, 0);
  ex.key1.assign(words, 0);
  ex.have_keys.assign(words, false);
  ex.have_threshold.assign(words, false);
  ex.remaining = 2 * words;
  extraction_ = std::move(ex);

  for (u32 i = 0; i < words; ++i) {
    send_key_read(i);
    extract_retry_.track(key_read_id(i), [this](u32 id, u32) {
      if (extraction_) send_key_read(id / 2);
    });
    send_threshold_read(i);
    extract_retry_.track(threshold_read_id(i), [this](u32 id, u32) {
      if (extraction_) send_threshold_read(id / 2);
    });
  }
}

void FrequentItemService::read_given_up(u32 id) {
  // A read that exhausted its budget reports as an empty bucket so the
  // extraction still terminates (give-ups are visible in the tracker's
  // stats and the exported reliability metrics).
  if (!extraction_) return;
  auto& ex = *extraction_;
  const u32 index = id / 2;
  if (index >= ex.have_keys.size()) return;
  if (id == key_read_id(index) && !ex.have_keys[index]) {
    ex.have_keys[index] = true;
    --ex.remaining;
  } else if (id == threshold_read_id(index) && !ex.have_threshold[index]) {
    ex.have_threshold[index] = true;
    --ex.remaining;
  }
  maybe_finish();
}

void FrequentItemService::on_returned(packet::ActivePacket& pkt) {
  const auto msg = KvMessage::parse(pkt.payload);
  if (!msg || !pkt.arguments || !extraction_) return;
  if (msg->type != KvMessage::Type::kMemSync) return;
  const u32 index = msg->request_id;
  auto& ex = *extraction_;
  if (index >= ex.have_keys.size()) return;
  if (msg->key == kTagKeys) {
    if (ex.have_keys[index]) return;
    // The tag's value says how the halves travelled: 2 = pair capsule
    // (values in args[1]/args[3]), 0/1 = split single reads.
    if (msg->value == 2) {
      ex.key0[index] = pkt.arguments->args[1];
      ex.key1[index] = pkt.arguments->args[3];
      ex.have_keys[index] = true;
    } else if (msg->value == 0) {
      ex.key0[index] = pkt.arguments->args[1];
    } else {
      ex.key1[index] = pkt.arguments->args[1];
      ex.have_keys[index] = true;  // simplification: halves arrive in order
    }
    if (ex.have_keys[index]) {
      --ex.remaining;
      extract_retry_.ack(key_read_id(index));
    }
  } else if (msg->key == kTagThreshold) {
    if (ex.have_threshold[index]) return;
    ex.thresholds[index] = pkt.arguments->args[1];
    ex.have_threshold[index] = true;
    --ex.remaining;
    extract_retry_.ack(threshold_read_id(index));
  }
  maybe_finish();
}

void FrequentItemService::maybe_finish() {
  if (!extraction_ || extraction_->remaining != 0) return;
  auto& ex = *extraction_;
  std::vector<std::pair<u64, u32>> items;
  for (u32 i = 0; i < ex.thresholds.size(); ++i) {
    if (ex.thresholds[i] >= ex.min_count &&
        (ex.key0[i] != 0 || ex.key1[i] != 0)) {
      items.emplace_back(join_key(ex.key0[i], ex.key1[i]), ex.thresholds[i]);
    }
  }
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  auto done = std::move(ex.done);
  extraction_.reset();
  extract_retry_.cancel_all();
  if (done) done(std::move(items));
}

}  // namespace artmt::apps
