#include "proto/wire.hpp"

#include "common/error.hpp"

namespace artmt::proto {

using packet::ActivePacket;
using packet::ActiveType;

packet::ActivePacket encode_request(const alloc::AllocationRequest& request,
                                    u32 seq) {
  if (request.accesses.size() > packet::kMaxAccessSlots) {
    throw UsageError("encode_request: more than 8 memory accesses");
  }
  ActivePacket pkt;
  pkt.initial.type = ActiveType::kAllocRequest;
  pkt.initial.seq = seq;
  packet::ArgumentHeader args;
  args.args[0] = request.program_length;
  args.args[1] = request.rts_position ? *request.rts_position + 1 : 0;
  args.args[2] = request.elastic ? 1 : 0;
  args.args[3] = request.elastic_cap_blocks;
  pkt.arguments = args;
  packet::AllocRequestHeader header;
  for (std::size_t i = 0; i < request.accesses.size(); ++i) {
    auto& slot = header.slots[i];
    // Positions are 1-based on the wire so 0 can mean "unused".
    slot.position = static_cast<u8>(request.accesses[i].position + 1);
    slot.demand_blocks =
        static_cast<u8>(request.accesses[i].demand_blocks);
    slot.flags = request.elastic ? 0x01 : 0x00;
    // Same-stage alias in bits 4..6 (value = alias index + 1; 0 = none).
    if (request.accesses[i].alias >= 0) {
      slot.flags |=
          static_cast<u8>((request.accesses[i].alias + 1) << 4);
    }
  }
  pkt.request = header;
  return pkt;
}

alloc::AllocationRequest decode_request(const packet::ActivePacket& pkt) {
  if (pkt.initial.type != ActiveType::kAllocRequest || !pkt.request ||
      !pkt.arguments) {
    throw ParseError("decode_request: not an allocation request");
  }
  alloc::AllocationRequest request;
  request.program_length = pkt.arguments->args[0];
  if (pkt.arguments->args[1] != 0) {
    request.rts_position = pkt.arguments->args[1] - 1;
  }
  request.elastic = (pkt.arguments->args[2] & 1) != 0;
  request.elastic_cap_blocks = pkt.arguments->args[3];
  for (const auto& slot : pkt.request->slots) {
    if (!slot.valid()) continue;
    alloc::AccessDemand demand;
    demand.position = static_cast<u32>(slot.position - 1);
    demand.demand_blocks = slot.demand_blocks;
    demand.alias = static_cast<i32>((slot.flags >> 4) & 0x07) - 1;
    request.accesses.push_back(demand);
  }
  return request;
}

packet::ActivePacket encode_response(Fid fid,
                                     const packet::AllocResponseHeader& regions,
                                     const alloc::Mutant& mutant, u32 seq) {
  ActivePacket pkt;
  pkt.initial.fid = fid;
  pkt.initial.type = ActiveType::kAllocResponse;
  pkt.initial.seq = seq;
  pkt.response = regions;
  ByteWriter payload;
  payload.put_u8(static_cast<u8>(mutant.size()));
  for (u32 stage : mutant) payload.put_u16(static_cast<u16>(stage));
  pkt.payload = payload.take();
  return pkt;
}

packet::ActivePacket encode_denial(u32 seq) {
  ActivePacket pkt;
  pkt.initial.type = ActiveType::kAllocResponse;
  pkt.initial.flags |= packet::kFlagAllocFailed;
  pkt.initial.seq = seq;
  pkt.response = packet::AllocResponseHeader{};
  return pkt;
}

alloc::Mutant decode_mutant(const packet::ActivePacket& response) {
  ByteReader in(response.payload);
  const u8 count = in.get_u8();
  alloc::Mutant mutant;
  mutant.reserve(count);
  for (u8 i = 0; i < count; ++i) mutant.push_back(in.get_u16());
  return mutant;
}

}  // namespace artmt::proto
