// Unit tests for the common utilities: byte cursors, RNG, EWMA, fairness,
// and the interval set beneath per-stage block accounting.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/ewma.hpp"
#include "common/fairness.hpp"
#include "common/interval.hpp"
#include "common/rng.hpp"

namespace artmt {
namespace {

// ---------- bytes ----------

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_TRUE(r.empty());
}

TEST(Bytes, NetworkByteOrder) {
  ByteWriter w;
  w.put_u32(0x01020304);
  const auto& b = w.bytes();
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[3], 0x04);
}

TEST(Bytes, TruncationThrows) {
  ByteWriter w;
  w.put_u16(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0);
  EXPECT_THROW((void)r.get_u32(), ParseError);
}

TEST(Bytes, GetBytesAdvances) {
  ByteWriter w;
  w.put_u32(1);
  w.put_u32(2);
  ByteReader r(w.bytes());
  const auto head = r.get_bytes(4);
  EXPECT_EQ(head.size(), 4u);
  EXPECT_EQ(r.get_u32(), 2u);
}

TEST(Bytes, SkipBeyondEndThrows) {
  ByteReader r(std::span<const u8>{});
  EXPECT_THROW(r.skip(1), ParseError);
}

TEST(Bytes, PutBytesAppends) {
  ByteWriter w;
  const std::vector<u8> payload{1, 2, 3};
  w.put_bytes(payload);
  EXPECT_EQ(w.size(), 3u);
}

// ---------- rng ----------

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformWithinBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform(13), 13u);
}

TEST(Rng, UniformZeroBoundThrows) {
  Rng rng(7);
  EXPECT_THROW((void)rng.uniform(0), UsageError);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const i64 v = rng.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, PoissonMeanApproximate) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(11);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ExponentialMeanApproximate) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, SplitIndependent) {
  Rng a(5);
  Rng b = a.split();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

// ---------- ewma ----------

TEST(Ewma, FirstSampleSeeds) {
  Ewma e(0.1);
  EXPECT_EQ(e.update(10.0), 10.0);
}

TEST(Ewma, Smooths) {
  Ewma e(0.5);
  e.update(0.0);
  EXPECT_DOUBLE_EQ(e.update(10.0), 5.0);
  EXPECT_DOUBLE_EQ(e.update(10.0), 7.5);
}

TEST(Ewma, BadAlphaThrows) {
  EXPECT_THROW(Ewma(0.0), UsageError);
  EXPECT_THROW(Ewma(1.5), UsageError);
}

TEST(Ewma, ValueBeforeSamplesThrows) {
  Ewma e(0.3);
  EXPECT_THROW((void)e.value(), UsageError);
}

// ---------- fairness ----------

TEST(Fairness, EqualSharesPerfect) {
  const std::vector<double> shares{4, 4, 4, 4};
  EXPECT_DOUBLE_EQ(jain_fairness(shares), 1.0);
}

TEST(Fairness, SingleUserPerfect) {
  const std::vector<double> shares{7};
  EXPECT_DOUBLE_EQ(jain_fairness(shares), 1.0);
}

TEST(Fairness, WorstCaseIsOneOverN) {
  const std::vector<double> shares{10, 0, 0, 0};
  EXPECT_DOUBLE_EQ(jain_fairness(shares), 0.25);
}

TEST(Fairness, EmptyAndZeroAreVacuouslyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  const std::vector<double> zeros{0, 0};
  EXPECT_DOUBLE_EQ(jain_fairness(zeros), 1.0);
}

// ---------- interval set ----------

TEST(Interval, BasicPredicates) {
  const Interval iv{2, 5};
  EXPECT_EQ(iv.size(), 3u);
  EXPECT_TRUE(iv.contains(2));
  EXPECT_FALSE(iv.contains(5));
  EXPECT_TRUE(iv.overlaps({4, 6}));
  EXPECT_FALSE(iv.overlaps({5, 6}));
}

TEST(IntervalSet, StartsFull) {
  IntervalSet s(10);
  EXPECT_EQ(s.total(), 10u);
  EXPECT_TRUE(s.contains({0, 10}));
}

TEST(IntervalSet, RemoveSplits) {
  IntervalSet s(10);
  s.remove({3, 6});
  EXPECT_EQ(s.total(), 7u);
  EXPECT_TRUE(s.contains({0, 3}));
  EXPECT_TRUE(s.contains({6, 10}));
  EXPECT_FALSE(s.contains({2, 4}));
}

TEST(IntervalSet, InsertCoalesces) {
  IntervalSet s(10);
  s.remove({0, 10});
  s.insert({0, 3});
  s.insert({5, 8});
  s.insert({3, 5});  // bridges the gap
  EXPECT_EQ(s.intervals().size(), 1u);
  EXPECT_TRUE(s.contains({0, 8}));
}

TEST(IntervalSet, DoubleInsertThrows) {
  IntervalSet s(10);
  EXPECT_THROW(s.insert({2, 4}), UsageError);
}

TEST(IntervalSet, RemoveUncontainedThrows) {
  IntervalSet s(10);
  s.remove({0, 5});
  EXPECT_THROW(s.remove({4, 6}), UsageError);
}

TEST(IntervalSet, FirstFitLowestAddress) {
  IntervalSet s(20);
  s.remove({0, 2});
  s.remove({5, 6});  // free: [2,5), [6,20)
  const auto fit = s.find_first_fit(2);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->begin, 2u);
}

TEST(IntervalSet, BestFitSmallest) {
  IntervalSet s(20);
  s.remove({3, 10});  // free: [0,3), [10,20)
  const auto fit = s.find_best_fit(2);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->begin, 0u);
  EXPECT_EQ(fit->size(), 3u);
}

TEST(IntervalSet, MaxSizeTracksEdits) {
  IntervalSet s(20);
  EXPECT_EQ(s.max_size(), 20u);
  s.remove({3, 10});  // free: [0,3), [10,20)
  EXPECT_EQ(s.max_size(), 10u);
  s.remove({10, 20});
  EXPECT_EQ(s.max_size(), 3u);
  s.remove({0, 3});
  EXPECT_EQ(s.max_size(), 0u);
  s.insert({4, 9});
  EXPECT_EQ(s.max_size(), 5u);
  s.insert({3, 4});  // coalesces with [4,9) into [3,9)
  EXPECT_EQ(s.max_size(), 6u);
}

TEST(IntervalSet, MaxSizeSurvivesSplitOfLargestRun) {
  IntervalSet s(100);
  s.remove({40, 45});  // free: [0,40), [45,100): max is the upper run
  EXPECT_EQ(s.max_size(), 55u);
  s.remove({60, 95});  // splits the largest: [45,60), [95,100)
  EXPECT_EQ(s.max_size(), 40u);
  EXPECT_EQ(s.total(), 100u - 5u - 35u);
}

TEST(IntervalSet, FindLargest) {
  IntervalSet s(20);
  s.remove({3, 10});
  const auto largest = s.find_largest();
  ASSERT_TRUE(largest.has_value());
  EXPECT_EQ(largest->begin, 10u);
}

TEST(IntervalSet, NoFitReturnsNullopt) {
  IntervalSet s(4);
  s.remove({0, 3});
  EXPECT_FALSE(s.find_first_fit(2).has_value());
}

// Property: a random sequence of remove/insert pairs preserves totals and
// never corrupts ordering.
TEST(IntervalSet, PropertyRandomOpsPreserveInvariant) {
  Rng rng(99);
  IntervalSet s(1000);
  std::vector<Interval> held;
  for (int step = 0; step < 500; ++step) {
    if (!held.empty() && rng.uniform(2) == 0) {
      const std::size_t pick = rng.uniform(held.size());
      s.insert(held[pick]);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const u32 want = static_cast<u32>(rng.uniform(16)) + 1;
      if (const auto fit = s.find_first_fit(want)) {
        const Interval take{fit->begin, fit->begin + want};
        s.remove(take);
        held.push_back(take);
      }
    }
    // Invariant: held + free == 1000, free intervals sorted and disjoint.
    u32 held_total = 0;
    for (const auto& iv : held) held_total += iv.size();
    ASSERT_EQ(held_total + s.total(), 1000u);
    const auto& ivs = s.intervals();
    for (std::size_t i = 1; i < ivs.size(); ++i) {
      ASSERT_GT(ivs[i].begin, ivs[i - 1].end);  // disjoint AND uncoalesced
    }
  }
}

}  // namespace
}  // namespace artmt
