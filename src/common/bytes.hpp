// Big-endian (network order) byte cursors used to serialize and parse the
// active-packet header formats of Section 3.3. Readers throw ParseError on
// truncation so malformed capsules are rejected at the switch parser, never
// silently misread.
//
// The per-byte accessors are inline: they sit on the per-packet parse and
// serialize paths, where an out-of-line call per byte dominates the cost of
// the load/store itself. Only the truncation throw is out of line.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace artmt {

// Appends integral values in network byte order to a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u16(u16 v) {
    buf_.push_back(static_cast<u8>(v >> 8));
    buf_.push_back(static_cast<u8>(v));
  }
  void put_u32(u32 v) {
    buf_.push_back(static_cast<u8>(v >> 24));
    buf_.push_back(static_cast<u8>(v >> 16));
    buf_.push_back(static_cast<u8>(v >> 8));
    buf_.push_back(static_cast<u8>(v));
  }
  void put_bytes(std::span<const u8> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<u8>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<u8> take() { return std::move(buf_); }

 private:
  std::vector<u8> buf_;
};

// Writes integral values in network byte order into a caller-provided
// fixed window (e.g. a pooled frame buffer): the zero-allocation
// counterpart of ByteWriter. Overrunning the window is a UsageError --
// callers size the destination exactly, so an overrun is a logic bug, not
// input-dependent.
class SpanWriter {
 public:
  explicit SpanWriter(std::span<u8> dest) : dest_(dest) {}

  void put_u8(u8 v) {
    require(1);
    dest_[pos_++] = v;
  }
  void put_u16(u16 v) {
    require(2);
    dest_[pos_++] = static_cast<u8>(v >> 8);
    dest_[pos_++] = static_cast<u8>(v);
  }
  void put_u32(u32 v) {
    require(4);
    dest_[pos_++] = static_cast<u8>(v >> 24);
    dest_[pos_++] = static_cast<u8>(v >> 16);
    dest_[pos_++] = static_cast<u8>(v >> 8);
    dest_[pos_++] = static_cast<u8>(v);
  }
  void put_bytes(std::span<const u8> bytes) {
    require(bytes.size());
    if (!bytes.empty()) std::memcpy(dest_.data() + pos_, bytes.data(), bytes.size());
    pos_ += bytes.size();
  }

  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return dest_.size() - pos_; }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) fail(n);
  }
  [[noreturn]] void fail(std::size_t n) const;  // cold: throws UsageError

  std::span<u8> dest_;
  std::size_t pos_ = 0;
};

// Sequentially consumes network-order values from a fixed view.
class ByteReader {
 public:
  explicit ByteReader(std::span<const u8> data) : data_(data) {}

  [[nodiscard]] u8 get_u8() {
    require(1);
    return data_[pos_++];
  }
  [[nodiscard]] u16 get_u16() {
    require(2);
    const u16 v = static_cast<u16>(static_cast<u16>(data_[pos_]) << 8 |
                                   static_cast<u16>(data_[pos_ + 1]));
    pos_ += 2;
    return v;
  }
  [[nodiscard]] u32 get_u32() {
    require(4);
    const u32 v = static_cast<u32>(data_[pos_]) << 24 |
                  static_cast<u32>(data_[pos_ + 1]) << 16 |
                  static_cast<u32>(data_[pos_ + 2]) << 8 |
                  static_cast<u32>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  // Returns a view of the next n bytes and advances past them.
  [[nodiscard]] std::span<const u8> get_bytes(std::size_t n) {
    require(n);
    auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }
  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) fail(n);
  }
  [[noreturn]] void fail(std::size_t n) const;  // cold: throws ParseError

  std::span<const u8> data_;
  std::size_t pos_ = 0;
};

}  // namespace artmt
