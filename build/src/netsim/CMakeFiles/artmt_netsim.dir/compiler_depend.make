# Empty compiler generated dependencies file for artmt_netsim.
# This may be replaced when dependencies are built.
