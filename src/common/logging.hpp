// Minimal leveled logger. Off by default so benches and tests stay quiet;
// examples turn it on to narrate scenarios.
#pragma once

#include <sstream>
#include <string>

namespace artmt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

// Emits one line to stderr with a level tag if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  append_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(level, os.str());
}

}  // namespace artmt
