// Batched stage-sweep execution engine. ExecBatch collects a set of
// execution lanes (packets deliverable at the same virtual instant) and
// runs them one STAGE SWEEP at a time: for each logical stage s, it steps
// every live lane once, so the whole batch touches stage s's protection
// entry and register array together -- one memoized FID lookup and one
// register working set serve every packet, instead of re-deriving both
// per instruction per packet.
//
// Equivalence to the per-packet reference engine (ActiveRuntime::execute)
// is by construction, not by reimplementation: both engines drive the
// exact same lane_begin / lane_step / lane_finish methods; only the step
// ORDER differs. For single-pass programs (size <= logical_stages) the
// sweep order is observationally identical to the per-packet order: a
// lane's stage-s instruction can only read state written by stage-s
// instructions, and those execute in lane order under both schedules.
// Lanes that could recirculate (size > logical_stages) would revisit a
// stage and break that argument, so they -- and every lane when a trace
// observer is installed, to preserve trace order -- run per-packet at
// their position between sweep segments, keeping the global per-stage
// effect order equal to add order throughout.
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/exec_core.hpp"

namespace artmt::runtime {

class ExecBatch {
 public:
  explicit ExecBatch(ActiveRuntime& runtime) : runtime_(&runtime) {}

  // Drops all lanes, keeping their storage for reuse (the steady-state
  // ingress path re-runs batches with zero heap traffic once warm).
  void clear() { lanes_.clear(); }

  [[nodiscard]] std::size_t size() const { return lanes_.size(); }
  [[nodiscard]] bool empty() const { return lanes_.empty(); }

  // Adds one lane and runs its prologue (packet accounting, cursor reset,
  // deactivation early-out, PHV preload) -- in add order, exactly as the
  // per-packet engine would. The referenced program, context, cursor, and
  // metadata are captured by pointer and must stay valid until result().
  void add(const active::CompiledProgram& program, ExecContext& ctx,
           active::ExecCursor& cursor, const PacketMeta& meta, SimTime now);

  // Runs every lane added since clear() to completion: contiguous runs of
  // sweepable lanes as stage sweeps, the rest per-packet in between.
  void execute();

  // Epilogue (passes, latency, recirculation charge, verdict) and result
  // for lane `i`. Call once per lane, in add order, after execute() --
  // that reproduces the per-packet engine's epilogue order, which matters
  // for the recirculation token buckets.
  ExecutionResult result(std::size_t i);

 private:
  void run_sweep(std::size_t begin, std::size_t end);

  ActiveRuntime* runtime_;
  std::vector<LaneState> lanes_;
};

}  // namespace artmt::runtime
