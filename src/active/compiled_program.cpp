#include "active/compiled_program.hpp"

#include "common/error.hpp"

namespace artmt::active {

namespace {

// FNV-1a, 64-bit.
constexpr u64 kFnvOffset = 0xcbf29ce484222325ull;
constexpr u64 kFnvPrime = 0x100000001b3ull;

u64 fnv1a(u64 hash, u8 byte) { return (hash ^ byte) * kFnvPrime; }

}  // namespace

FlatKind flat_kind(Opcode op) {
  switch (op) {
    case Opcode::kEof: return FlatKind::kEof;
    case Opcode::kNop: return FlatKind::kNop;
    case Opcode::kAddrMask: return FlatKind::kAddrMask;
    case Opcode::kAddrOffset: return FlatKind::kAddrOffset;
    case Opcode::kHash: return FlatKind::kHash;
    case Opcode::kMbrLoad: return FlatKind::kMbrLoad;
    case Opcode::kMbrStore: return FlatKind::kMbrStore;
    case Opcode::kMbr2Load: return FlatKind::kMbr2Load;
    case Opcode::kMarLoad: return FlatKind::kMarLoad;
    case Opcode::kCopyMbr2Mbr: return FlatKind::kCopyMbr2Mbr;
    case Opcode::kCopyMbrMbr2: return FlatKind::kCopyMbrMbr2;
    case Opcode::kCopyMbrMar: return FlatKind::kCopyMbrMar;
    case Opcode::kCopyMarMbr: return FlatKind::kCopyMarMbr;
    case Opcode::kCopyHashdataMbr: return FlatKind::kCopyHashdataMbr;
    case Opcode::kCopyHashdataMbr2: return FlatKind::kCopyHashdataMbr2;
    case Opcode::kCopyHashdata5Tuple: return FlatKind::kCopyHashdata5Tuple;
    case Opcode::kMbrAddMbr2: return FlatKind::kMbrAddMbr2;
    case Opcode::kMarAddMbr: return FlatKind::kMarAddMbr;
    case Opcode::kMarAddMbr2: return FlatKind::kMarAddMbr2;
    case Opcode::kMarMbrAddMbr2: return FlatKind::kMarMbrAddMbr2;
    case Opcode::kMbrSubtractMbr2: return FlatKind::kMbrSubtractMbr2;
    case Opcode::kBitAndMarMbr: return FlatKind::kBitAndMarMbr;
    case Opcode::kBitOrMbrMbr2: return FlatKind::kBitOrMbrMbr2;
    case Opcode::kMbrEqualsMbr2: return FlatKind::kMbrEqualsMbr2;
    case Opcode::kMax: return FlatKind::kMax;
    case Opcode::kMin: return FlatKind::kMin;
    case Opcode::kRevMin: return FlatKind::kRevMin;
    case Opcode::kSwapMbrMbr2: return FlatKind::kSwapMbrMbr2;
    case Opcode::kMbrNot: return FlatKind::kMbrNot;
    case Opcode::kMbrEqualsData: return FlatKind::kMbrEqualsData;
    case Opcode::kReturn: return FlatKind::kReturn;
    case Opcode::kCret: return FlatKind::kCret;
    case Opcode::kCreti: return FlatKind::kCreti;
    case Opcode::kCjump: return FlatKind::kCjump;
    case Opcode::kCjumpi: return FlatKind::kCjumpi;
    case Opcode::kUjump: return FlatKind::kUjump;
    case Opcode::kMemWrite: return FlatKind::kMemWrite;
    case Opcode::kMemRead: return FlatKind::kMemRead;
    case Opcode::kMemIncrement: return FlatKind::kMemIncrement;
    case Opcode::kMemMinread: return FlatKind::kMemMinread;
    case Opcode::kMemMinreadinc: return FlatKind::kMemMinreadinc;
    case Opcode::kDrop: return FlatKind::kDrop;
    case Opcode::kFork: return FlatKind::kFork;
    case Opcode::kSetDst: return FlatKind::kSetDst;
    case Opcode::kRts: return FlatKind::kRts;
    case Opcode::kCrts: return FlatKind::kCrts;
  }
  return FlatKind::kNop;  // unreachable: compile() rejects unknown bytes
}

u64 CompiledProgram::compute_digest(std::span<const u8> wire_code,
                                    bool preload_mar, bool preload_mbr) {
  u64 hash = kFnvOffset;
  hash = fnv1a(hash, static_cast<u8>((preload_mar ? 1 : 0) |
                                     (preload_mbr ? 2 : 0)));
  for (const u8 byte : wire_code) hash = fnv1a(hash, byte);
  return hash;
}

CompiledProgram CompiledProgram::compile(const Program& source) {
  CompiledProgram out;
  out.preload_mar_ = source.preload_mar;
  out.preload_mbr_ = source.preload_mbr;
  out.code_.reserve(source.size());
  out.wire_.reserve(source.size() * 2);
  for (const Instruction& insn : source.code()) {
    const OpcodeInfo* info = opcode_info(insn.op);
    if (info == nullptr) {
      throw ParseError("CompiledProgram: unknown opcode in program");
    }
    CompiledInsn compiled;
    compiled.op = insn.op;
    compiled.operand = insn.operand;
    compiled.label = insn.label;
    compiled.wire_done = insn.done;
    compiled.memory_access = info->memory_access;
    out.code_.push_back(compiled);
    out.wire_.push_back(static_cast<u8>(insn.op));
    out.wire_.push_back(insn.flag_byte());
  }
  out.link();
  return out;
}

CompiledProgram CompiledProgram::compile(std::span<const u8> wire_code,
                                         bool preload_mar, bool preload_mbr) {
  if (wire_code.size() % 2 != 0) {
    throw ParseError("CompiledProgram: odd-length instruction stream");
  }
  CompiledProgram out;
  out.preload_mar_ = preload_mar;
  out.preload_mbr_ = preload_mbr;
  out.code_.reserve(wire_code.size() / 2);
  out.wire_.assign(wire_code.begin(), wire_code.end());
  for (std::size_t i = 0; i < wire_code.size(); i += 2) {
    const u8 op = wire_code[i];
    const OpcodeInfo* info = opcode_info(op);
    if (info == nullptr || static_cast<Opcode>(op) == Opcode::kEof) {
      throw ParseError("CompiledProgram: bad opcode byte " +
                       std::to_string(op));
    }
    const Instruction insn = Instruction::from_bytes(op, wire_code[i + 1]);
    CompiledInsn compiled;
    compiled.op = insn.op;
    compiled.operand = insn.operand;
    compiled.label = insn.label;
    compiled.wire_done = insn.done;
    compiled.memory_access = info->memory_access;
    out.code_.push_back(compiled);
  }
  out.link();
  return out;
}

void CompiledProgram::link() {
  // next_access: one backward sweep.
  u32 upcoming = kNoIndex;
  for (u32 i = static_cast<u32>(code_.size()); i-- > 0;) {
    code_[i].next_access = upcoming;
    if (code_[i].memory_access) upcoming = i;
  }
  // branch_target: first instruction after the branch carrying its label
  // (label 0 means "no target": the branch disables to the end).
  for (u32 i = 0; i < code_.size(); ++i) {
    code_[i].branch_target = kNoIndex;
    const OpcodeInfo* info = opcode_info(code_[i].op);
    if (!info->branch || code_[i].label == 0) continue;
    for (u32 j = i + 1; j < code_.size(); ++j) {
      if (code_[j].label == code_[i].label) {
        code_[i].branch_target = j;
        break;
      }
    }
  }
  // Lower into the flat-dispatch array the runtime loop consumes: dense
  // opcode index plus the fields resolved above, index-parallel with
  // code_ so wire-facing passes (replies, tracing) keep using code_.
  flat_.resize(code_.size());
  for (u32 i = 0; i < code_.size(); ++i) {
    const CompiledInsn& insn = code_[i];
    FlatOp& op = flat_[i];
    op.kind = flat_kind(insn.op);
    op.operand = insn.operand;
    op.label = insn.label;
    op.memory_access = insn.memory_access;
    op.next_access = insn.next_access;
    op.branch_target = insn.branch_target;
  }
  digest_ = compute_digest(wire_, preload_mar_, preload_mbr_);
}

Program CompiledProgram::to_program() const {
  Program out;
  for (const CompiledInsn& insn : code_) {
    Instruction decoded;
    decoded.op = insn.op;
    decoded.operand = insn.operand;
    decoded.label = insn.label;
    decoded.done = insn.wire_done;
    out.push(decoded);
  }
  out.preload_mar = preload_mar_;
  out.preload_mbr = preload_mbr_;
  return out;
}

}  // namespace artmt::active
