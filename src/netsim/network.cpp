#include "netsim/network.hpp"

#include <utility>

namespace artmt::netsim {

void Network::attach(std::shared_ptr<Node> node) {
  if (node == nullptr) throw UsageError("Network::attach: null node");
  if (node->network_ != nullptr) {
    throw UsageError("Network::attach: node already attached");
  }
  node->network_ = this;
  nodes_.push_back(std::move(node));
  nodes_.back()->on_attach();
}

void Network::connect(Node& node_a, u32 port_a, Node& node_b, u32 port_b,
                      const LinkSpec& spec) {
  if (find_link(node_a, port_a) != nullptr ||
      find_link(node_b, port_b) != nullptr) {
    throw UsageError("Network::connect: port already connected");
  }
  links_.push_back(Link{{&node_a, port_a}, {&node_b, port_b}, spec});
}

const Network::Link* Network::find_link(const Node& node, u32 port) const {
  for (const auto& link : links_) {
    if ((link.a.node == &node && link.a.port == port) ||
        (link.b.node == &node && link.b.port == port)) {
      return &link;
    }
  }
  return nullptr;
}

void Network::transmit(Node& from, u32 port, Frame frame) {
  const Link* link = find_link(from, port);
  if (link == nullptr) return;  // unplugged port: frame is lost
  const Endpoint dest =
      (link->a.node == &from && link->a.port == port) ? link->b : link->a;

  // Serialization delay: bytes * 8 / rate. At 40 Gbps a 256-byte frame
  // serializes in ~51 ns.
  const double bits = static_cast<double>(frame.size()) * 8.0;
  const auto serialize =
      static_cast<SimTime>(bits / link->spec.gbps);  // Gbps -> bits/ns
  const SimTime arrival = sim_->now() + serialize + link->spec.latency;

  sim_->schedule_at(arrival, [this, dest, f = std::move(frame)]() mutable {
    ++frames_delivered_;
    bytes_delivered_ += f.size();
    dest.node->on_frame(std::move(f), dest.port);
  });
}

}  // namespace artmt::netsim
