// The switch control plane (Section 4.3): serializes admissions, runs the
// memory allocator, installs/removes per-FID match-table entries, provides
// consistent snapshots to reallocated applications, and models the
// provisioning costs a Tofino controller would incur (table updates,
// snapshotting, register clears).
//
// Admissions that disturb resident applications follow the paper's
// handshake: the disturbed FIDs are deactivated (program packets forwarded
// unprocessed), a snapshot of their old regions is taken, and the new
// layout is applied only after every disturbed client reports extraction
// complete (or times out). `admit` finalizes immediately when nothing is
// disturbed; otherwise the caller drives `extraction_complete` /
// `force_finalize`.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "alloc/allocator.hpp"
#include "common/error.hpp"
#include "controller/cost_model.hpp"
#include "controller/migration.hpp"
#include "packet/active_packet.hpp"
#include "rmt/pipeline.hpp"
#include "runtime/runtime.hpp"

namespace artmt::controller {

struct ControllerMetrics;  // telemetry handle bundle (controller.cpp)

struct AdmissionResult {
  bool admitted = false;
  Fid fid = 0;
  alloc::AllocationOutcome outcome;
  std::vector<Fid> disturbed;  // FIDs that must extract before finalize
  bool pending = false;        // true while the handshake is outstanding

  // Cost breakdown (Fig. 8a): allocator compute is measured wall-clock;
  // the rest is modeled from the cost model.
  double compute_ms = 0.0;
  SimTime table_update_cost = 0;
  SimTime snapshot_cost = 0;
  SimTime clear_cost = 0;
  // Coalesced driver batches behind table_update_cost: one for the new
  // app plus one per disturbed app (see CostModel::batched_updates).
  u64 table_update_batches = 0;

  [[nodiscard]] SimTime provisioning_time() const {
    return static_cast<SimTime>(compute_ms * kMillisecond) +
           table_update_cost + snapshot_cost + clear_cost;
  }
};

struct ReleaseResult {
  std::vector<Fid> disturbed;  // apps rebalanced by the departure
  SimTime table_update_cost = 0;
  SimTime snapshot_cost = 0;
  u64 table_update_batches = 0;  // see AdmissionResult::table_update_batches
};

// Aggregate control-plane counters.
struct ControllerStats {
  u64 admissions = 0;
  u64 rejections = 0;
  u64 releases = 0;
  u64 reallocations = 0;     // app-events: one app disturbed once
  u64 table_entry_updates = 0;
  u64 table_update_batches = 0;  // coalesced driver batches (admit+release)
  u64 blocks_snapshotted = 0;
  u64 extraction_timeouts = 0;
  u64 tcam_rejections = 0;  // admissions denied for range-entry headroom
  // --- background migration (ROADMAP item 2) ---
  u64 migrations = 0;            // migrate() calls that changed a layout
  u64 migration_noops = 0;       // plans that resolved to no layout change
  u64 migration_demotions = 0;   // by kind, among `migrations`
  u64 migration_promotions = 0;
  u64 migration_reslides = 0;
  u64 migration_tcam_skips = 0;  // re-slides skipped by the TCAM guard
  u64 blocks_migrated = 0;       // blocks handed to new regions by migration
};

// Outcome of one background-migration step (Controller::migrate).
struct MigrationResult {
  bool applied = false;  // the allocator operation took effect
  bool pending = false;  // extraction handshake outstanding (finalize later)
  Fid fid = 0;
  RemapKind kind = RemapKind::kReslide;
  bool moved = false;          // re-slide changed the target's regions
  std::vector<Fid> disturbed;  // every FID whose layout changed (target incl.)
  double compute_ms = 0.0;     // allocator search + assign (re-slides)
  SimTime table_update_cost = 0;
  SimTime snapshot_cost = 0;
  SimTime clear_cost = 0;
  u64 table_update_batches = 0;
  u64 blocks_moved = 0;

  [[nodiscard]] SimTime apply_time() const {
    return table_update_cost + clear_cost;
  }
};

class Controller {
 public:
  Controller(rmt::Pipeline& pipeline, runtime::ActiveRuntime& runtime,
             alloc::Scheme scheme = alloc::Scheme::kWorstFit,
             alloc::MutantPolicy policy = alloc::MutantPolicy::most_constrained(),
             CostModel costs = {});
  ~Controller();

  // --- admission / release ---
  AdmissionResult admit(const alloc::AllocationRequest& request);
  // Marks one disturbed FID as done extracting. Returns true when every
  // disturbed app has reported in (the admission is ready to apply).
  bool extraction_complete(Fid fid);
  // Timeout path: stop waiting for the remaining extractions (counted in
  // stats); the admission becomes ready to apply.
  void timeout_pending();
  // Installs the pending admission's new layout (table updates + clears)
  // and reactivates the disturbed apps. Call once ready; synchronous
  // callers use it right after the handshake, event-driven callers after
  // the modeled table-update delay has elapsed.
  void apply_pending();
  // Deadline path in one step: gives up on the remaining extractions and
  // applies the layout immediately (timeout_pending + apply_pending).
  // SwitchNode spreads the same sequence over the modeled apply delay
  // when the extraction timeout fires on simulated time.
  void force_finalize();
  [[nodiscard]] bool has_pending() const { return pending_.has_value(); }
  [[nodiscard]] bool pending_ready() const {
    return pending_.has_value() && pending_->awaiting.empty();
  }

  ReleaseResult release(Fid fid);

  // --- background migration (ROADMAP item 2) ---
  // Executes one remap request as a live state migration: the allocator
  // op runs immediately, every FID whose layout changed is deactivated
  // and snapshotted, and the new layout is applied through the same
  // extraction handshake admissions use (extraction_complete /
  // force_finalize), with PendingAdmission::new_fid == 0 as the
  // no-admission sentinel. A request whose FID departed, or whose plan
  // resolves to no layout change, is a graceful no-op (!pending). Throws
  // while an admission or another migration is pending (the engine
  // serializes). Re-slides are skipped (counted, !applied) unless every
  // stage has TCAM headroom for one entry -- the target may enter stages
  // it did not previously occupy.
  MigrationResult migrate(const RemapRequest& request);

  // --- snapshot access (control-plane state extraction, Section 4.3) ---
  // Available for disturbed FIDs between deactivation and their client's
  // re-population; stage -> words of the app's old region.
  [[nodiscard]] const std::map<u32, std::vector<Word>>* snapshot_of(
      Fid fid) const;

  // Selects wall-clock vs modeled allocator compute timing (see
  // alloc::ComputeModel); modeled timing makes admission timelines
  // host-load independent.
  void set_compute_model(const alloc::ComputeModel& model) {
    alloc_.set_compute_model(model);
  }

  // Fabric support: start FID assignment at `base` so every switch in a
  // multi-switch topology mints from a disjoint range (a capsule's FID
  // then names its owning switch unambiguously). Call before the first
  // admission.
  void set_fid_base(Fid base) {
    if (base == 0) throw UsageError("Controller::set_fid_base: zero base");
    next_fid_ = base;
  }

  // Hotness-directed placement: forwards a per-stage tie-break bias to
  // the allocator (lower = preferred; empty disables). Scheme scores
  // always dominate; the bias only orders ties.
  void set_stage_bias(std::vector<u64> bias) {
    alloc_.set_stage_bias(std::move(bias));
  }

  // --- queries ---
  [[nodiscard]] const alloc::Allocator& allocator() const { return alloc_; }
  [[nodiscard]] const ControllerStats& stats() const { return stats_; }
  [[nodiscard]] bool resident(Fid fid) const { return fid_to_app_.contains(fid); }
  // Resident FIDs, ascending (deterministic planner scans).
  [[nodiscard]] std::vector<Fid> resident_fids() const;
  // FID <-> allocator AppId translation; throws on unknown ids.
  [[nodiscard]] alloc::AppId app_of(Fid fid) const;
  [[nodiscard]] Fid fid_of(alloc::AppId app) const;
  [[nodiscard]] std::map<u32, Interval> regions_of(Fid fid) const;
  // Word-level response header for the app's current regions.
  [[nodiscard]] packet::AllocResponseHeader response_for(Fid fid) const;
  // Chosen mutant (global logical stage per access) from admission.
  [[nodiscard]] const alloc::Mutant* mutant_of(Fid fid) const;
  [[nodiscard]] const CostModel& costs() const { return costs_; }

  // Mirrors ControllerStats into `metrics` under component "controller"
  // (blocks_allocated also per-FID) and cascades to the owned allocator;
  // nullptr detaches. Admissions, rejections, releases, timeouts, and
  // layout applications also emit trace events while a
  // telemetry::TraceSink is installed.
  void set_metrics(telemetry::MetricsRegistry* metrics);

 private:
  struct PendingAdmission {
    Fid new_fid = 0;
    std::set<Fid> awaiting;  // disturbed FIDs not yet done extracting
  };

  // Reinstalls table entries for `fid` from the allocator's current state
  // and returns the number of entry operations performed.
  u32 sync_entries(Fid fid);
  u32 remove_entries(Fid fid);
  void take_snapshot(Fid fid);
  void finalize();

  // MAR auto-advance per access chain (Section 3.4): the entry installed at
  // each of the app's memory stages re-targets MAR at the next one.
  void install_with_advance(Fid fid);

  rmt::Pipeline* pipeline_;
  runtime::ActiveRuntime* runtime_;
  alloc::Allocator alloc_;
  CostModel costs_;
  ControllerStats stats_;
  std::unique_ptr<ControllerMetrics> metrics_;

  std::unordered_map<Fid, alloc::AppId> fid_to_app_;
  std::unordered_map<alloc::AppId, Fid> app_to_fid_;
  std::unordered_map<Fid, alloc::Mutant> mutants_;
  std::unordered_map<Fid, std::map<u32, std::vector<Word>>> snapshots_;
  std::optional<PendingAdmission> pending_;
  Fid next_fid_ = 1;
};

}  // namespace artmt::controller
