// Tests for workload generation: Zipf popularity and Poisson churn.
#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "workload/arrivals.hpp"
#include "workload/churn.hpp"
#include "workload/zipf.hpp"

namespace artmt::workload {
namespace {

TEST(Zipf, RankZeroMostPopular) {
  ZipfGenerator zipf(1000, 1.0);
  Rng rng(1);
  std::map<u32, int> counts;
  for (int i = 0; i < 50000; ++i) counts[zipf.next_rank(rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[100]);
}

TEST(Zipf, RanksWithinUniverse) {
  ZipfGenerator zipf(50, 0.9);
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.next_rank(rng), 50u);
}

TEST(Zipf, TopMassMonotone) {
  ZipfGenerator zipf(1000, 1.0);
  EXPECT_LT(zipf.top_mass(10), zipf.top_mass(100));
  EXPECT_NEAR(zipf.top_mass(1000), 1.0, 1e-12);
  EXPECT_EQ(zipf.top_mass(0), 0.0);
}

TEST(Zipf, TopMassMatchesEmpirical) {
  ZipfGenerator zipf(1000, 1.0);
  Rng rng(3);
  const int n = 100000;
  int in_top100 = 0;
  for (int i = 0; i < n; ++i) {
    if (zipf.next_rank(rng) < 100) ++in_top100;
  }
  EXPECT_NEAR(static_cast<double>(in_top100) / n, zipf.top_mass(100), 0.01);
}

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfGenerator zipf(10, 0.0);
  EXPECT_NEAR(zipf.top_mass(5), 0.5, 1e-12);
}

TEST(Zipf, KeysAreStableAndDistinct) {
  EXPECT_EQ(ZipfGenerator::key_for_rank(7), ZipfGenerator::key_for_rank(7));
  EXPECT_NE(ZipfGenerator::key_for_rank(7), ZipfGenerator::key_for_rank(8));
}

TEST(Zipf, EmptyUniverseThrows) {
  EXPECT_THROW(ZipfGenerator(0, 1.0), UsageError);
}

TEST(Arrivals, MeansApproximatelyRight) {
  ArrivalProcess proc(2.0, 1.0, 42);
  double arrivals = 0, departures = 0;
  const int epochs = 5000;
  for (int i = 0; i < epochs; ++i) {
    const auto plan = proc.next_epoch();
    arrivals += plan.arrivals.size();
    departures += plan.departures;
  }
  EXPECT_NEAR(arrivals / epochs, 2.0, 0.1);
  EXPECT_NEAR(departures / epochs, 1.0, 0.1);
}

TEST(Arrivals, UniformKindMix) {
  ArrivalProcess proc(2.0, 1.0, 7);
  std::map<AppKind, int> counts;
  for (int i = 0; i < 3000; ++i) {
    for (const AppKind kind : proc.next_epoch().arrivals) counts[kind]++;
  }
  const int total =
      counts[AppKind::kCache] + counts[AppKind::kHeavyHitter] +
      counts[AppKind::kLoadBalancer];
  for (const auto& [kind, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / total, 1.0 / 3.0, 0.05);
  }
}

TEST(Arrivals, FixedKindForcesPureWorkload) {
  ArrivalProcess proc(2.0, 1.0, 7);
  proc.fix_kind(AppKind::kLoadBalancer);
  for (int i = 0; i < 100; ++i) {
    for (const AppKind kind : proc.next_epoch().arrivals) {
      EXPECT_EQ(kind, AppKind::kLoadBalancer);
    }
  }
}

TEST(Arrivals, Reproducible) {
  ArrivalProcess a(2.0, 1.0, 5);
  ArrivalProcess b(2.0, 1.0, 5);
  for (int i = 0; i < 50; ++i) {
    const auto pa = a.next_epoch();
    const auto pb = b.next_epoch();
    EXPECT_EQ(pa.arrivals, pb.arrivals);
    EXPECT_EQ(pa.departures, pb.departures);
  }
}

TEST(Arrivals, KindNames) {
  EXPECT_STREQ(app_kind_name(AppKind::kCache), "cache");
  EXPECT_STREQ(app_kind_name(AppKind::kHeavyHitter), "heavy-hitter");
  EXPECT_STREQ(app_kind_name(AppKind::kLoadBalancer), "load-balancer");
}

TEST(Churn, DeterministicForSameSeed) {
  ChurnConfig config;
  config.seed = 9;
  const auto a = PoissonChurn::generate(config, 500);
  const auto b = PoissonChurn::generate(config, 500);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].service, b[i].service);
    EXPECT_EQ(a[i].kind, b[i].kind);
  }
  ChurnConfig other = config;
  other.seed = 10;
  const auto c = PoissonChurn::generate(other, 500);
  bool differs = false;
  for (std::size_t i = 0; i < c.size() && !differs; ++i) {
    differs = c[i].time != a[i].time || c[i].service != a[i].service;
  }
  EXPECT_TRUE(differs);
}

TEST(Churn, EventsTimeOrderedAndPaired) {
  ChurnConfig config;
  config.arrival_rate = 5.0;
  config.mean_lifetime = 2.0;
  config.seed = 3;
  PoissonChurn gen(config);
  double last = 0.0;
  std::map<u64, int> state;  // service -> 1 after arrival, 0 after departure
  for (int i = 0; i < 2000; ++i) {
    const auto event = gen.next();
    ASSERT_GE(event.time, last);
    last = event.time;
    if (event.type == ChurnEvent::Type::kArrival) {
      ASSERT_EQ(state.count(event.service), 0u) << "service re-arrived";
      state[event.service] = 1;
    } else {
      ASSERT_EQ(state.at(event.service), 1) << "departure without arrival";
      state[event.service] = 0;
    }
  }
  u64 live = 0;
  for (const auto& [svc, s] : state) live += static_cast<u64>(s);
  EXPECT_EQ(live, gen.resident());
}

TEST(Churn, SteadyStateFollowsLittlesLaw) {
  // L = lambda * W: at arrival rate 20/s and mean lifetime 5s the resident
  // population should hover around 100 once warmed up.
  ChurnConfig config;
  config.arrival_rate = 20.0;
  config.mean_lifetime = 5.0;
  config.seed = 17;
  PoissonChurn gen(config);
  for (int i = 0; i < 4000; ++i) (void)gen.next();  // warm past ~10 lifetimes
  double sum = 0;
  const int samples = 8000;
  for (int i = 0; i < samples; ++i) {
    (void)gen.next();
    sum += static_cast<double>(gen.resident());
  }
  EXPECT_NEAR(sum / samples, 100.0, 15.0);
}

TEST(Churn, KindWeightsShapeTheMix) {
  ChurnConfig config;
  config.kind_weights = {0.0, 1.0, 3.0};  // no caches, 1:3 hh:lb
  config.seed = 29;
  std::map<AppKind, int> counts;
  for (const auto& event : PoissonChurn::generate(config, 6000)) {
    if (event.type == ChurnEvent::Type::kArrival) counts[event.kind]++;
  }
  const int total = counts[AppKind::kHeavyHitter] + counts[AppKind::kLoadBalancer];
  EXPECT_EQ(counts[AppKind::kCache], 0);
  EXPECT_NEAR(static_cast<double>(counts[AppKind::kLoadBalancer]) / total,
              0.75, 0.05);
}

TEST(Churn, InvalidRatesRejected) {
  ChurnConfig config;
  config.arrival_rate = 0.0;
  EXPECT_THROW(PoissonChurn{config}, UsageError);
  config.arrival_rate = 1.0;
  config.mean_lifetime = -1.0;
  EXPECT_THROW(PoissonChurn{config}, UsageError);
}

}  // namespace
}  // namespace artmt::workload
