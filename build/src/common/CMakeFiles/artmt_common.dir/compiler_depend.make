# Empty compiler generated dependencies file for artmt_common.
# This may be replaced when dependencies are built.
