// Packet header vector state carried by an active packet through the
// pipeline (Section 3.1): the three 32-bit variables MAR/MBR/MBR2, hash
// metadata, the INC operand, and the control flags that drive sequential
// execution, branching, and termination.
#pragma once

#include <array>

#include "active/isa.hpp"
#include "common/types.hpp"

namespace artmt::runtime {

struct Phv {
  Word mar = 0;
  Word mbr = 0;
  Word mbr2 = 0;
  Word inc = 1;  // MEM_INCREMENT / MEM_MINREADINC step
  std::array<Word, active::kHashdataWords> hashdata{};

  // Control flags (Section 3.1).
  bool complete = false;  // RETURN/CRET executed; skip remaining stages
  bool disabled = false;  // branch taken; skip until pending_label matches
  u8 pending_label = 0;

  // Forwarding intent accumulated during execution.
  bool rts = false;           // return-to-sender requested
  u32 rts_stage = 0;          // logical stage where RTS executed
  bool drop = false;          // DROP executed or fault
  bool fork = false;          // FORK executed (clone + recirculate)
  bool dst_overridden = false;
  Word dst_value = 0;  // SET_DST operand (port/address encoding)
};

}  // namespace artmt::runtime
