// Tests for per-stage block accounting: inelastic pinning, holes, the
// elastic frontier, and progressive-filling shares.
#include <gtest/gtest.h>

#include "alloc/stage_state.hpp"
#include "common/error.hpp"

namespace artmt::alloc {
namespace {

TEST(StageState, InelasticPinsToBottom) {
  StageState s(100);
  s.add_inelastic(1, 10);
  s.add_inelastic(2, 5);
  EXPECT_EQ(s.regions().at(1), (Interval{0, 10}));
  EXPECT_EQ(s.regions().at(2), (Interval{10, 15}));
  EXPECT_EQ(s.allocated_blocks(), 15u);
  EXPECT_EQ(s.free_blocks(), 85u);
}

TEST(StageState, DepartureLeavesHoleReusedFirstFit) {
  StageState s(100);
  s.add_inelastic(1, 10);
  s.add_inelastic(2, 5);
  s.add_inelastic(3, 7);
  s.remove_inelastic(2);
  EXPECT_FALSE(s.inelastic_needs_frontier(5));
  s.add_inelastic(4, 4);  // fits the hole at [10, 15)
  EXPECT_EQ(s.regions().at(4), (Interval{10, 14}));
}

TEST(StageState, FrontierRetreatsWhenEdgeFrees) {
  StageState s(100);
  s.add_inelastic(1, 10);
  s.add_inelastic(2, 5);
  s.remove_inelastic(2);
  s.remove_inelastic(1);
  // Everything freed: frontier back at zero, whole pool elastic-capable.
  EXPECT_TRUE(s.elastic_fits(100));
}

TEST(StageState, ElasticSharesSplitEqually) {
  StageState s(100);
  s.add_elastic(1, 1);
  EXPECT_EQ(s.regions().at(1).size(), 100u);
  s.add_elastic(2, 1);
  EXPECT_EQ(s.regions().at(1).size(), 50u);
  EXPECT_EQ(s.regions().at(2).size(), 50u);
  s.add_elastic(3, 1);
  // 100 = 34 + 33 + 33 under progressive filling.
  u32 total = 0;
  for (const auto& [id, region] : s.regions()) {
    EXPECT_GE(region.size(), 33u);
    EXPECT_LE(region.size(), 34u);
    total += region.size();
  }
  EXPECT_EQ(total, 100u);
}

TEST(StageState, ElasticRegionsContiguousAndDisjoint) {
  StageState s(100);
  s.add_inelastic(9, 10);
  s.add_elastic(1, 1);
  s.add_elastic(2, 1);
  const auto& r1 = s.regions().at(1);
  const auto& r2 = s.regions().at(2);
  EXPECT_EQ(r1.begin, 10u);  // elastic pool starts at the frontier
  EXPECT_EQ(r2.begin, r1.end);
  EXPECT_EQ(r2.end, 100u);
}

TEST(StageState, ElasticCapsRespected) {
  StageState s(100);
  s.add_elastic(1, 1, /*cap=*/10);
  s.add_elastic(2, 1);
  EXPECT_EQ(s.regions().at(1).size(), 10u);
  EXPECT_EQ(s.regions().at(2).size(), 90u);
}

TEST(StageState, AllCappedLeavesFreeBlocks) {
  StageState s(100);
  s.add_elastic(1, 1, 5);
  s.add_elastic(2, 1, 5);
  EXPECT_EQ(s.allocated_blocks(), 10u);
  EXPECT_EQ(s.free_blocks(), 90u);
}

TEST(StageState, InelasticSqueezesElastic) {
  StageState s(100);
  s.add_elastic(1, 1);
  EXPECT_EQ(s.regions().at(1).size(), 100u);
  s.add_inelastic(2, 40);
  EXPECT_EQ(s.regions().at(2), (Interval{0, 40}));
  EXPECT_EQ(s.regions().at(1).size(), 60u);
}

TEST(StageState, InelasticFitRespectsElasticMinima) {
  StageState s(100);
  s.add_elastic(1, 30);
  s.add_elastic(2, 30);
  EXPECT_TRUE(s.inelastic_fits(40));
  EXPECT_FALSE(s.inelastic_fits(41));  // would violate the minima
  EXPECT_THROW(s.add_inelastic(3, 41), UsageError);
}

TEST(StageState, ElasticFitRespectsMinima) {
  StageState s(10);
  s.add_elastic(1, 4);
  s.add_elastic(2, 4);
  EXPECT_TRUE(s.elastic_fits(2));
  EXPECT_FALSE(s.elastic_fits(3));
}

TEST(StageState, FungibleCountsFreePlusSqueezable) {
  StageState s(100);
  s.add_inelastic(1, 20);  // fungible: 80 free
  EXPECT_EQ(s.fungible_blocks(), 80u);
  s.add_elastic(2, 5);  // takes all 80, squeezable to 5
  EXPECT_EQ(s.fungible_blocks(), 75u);
  s.remove_inelastic(1);
  // Pool back to 100, all held by app 2 above its 5-block minimum.
  EXPECT_EQ(s.fungible_blocks(), 95u);
}

TEST(StageState, DuplicateAppRejected) {
  StageState s(10);
  s.add_elastic(1, 1);
  EXPECT_THROW(s.add_elastic(1, 1), UsageError);
  EXPECT_THROW(s.add_inelastic(1, 1), UsageError);
}

TEST(StageState, UnknownRemovalRejected) {
  StageState s(10);
  EXPECT_THROW(s.remove_elastic(9), UsageError);
  EXPECT_THROW(s.remove_inelastic(9), UsageError);
}

TEST(StageState, ZeroDemandsRejected) {
  StageState s(10);
  EXPECT_THROW((void)s.inelastic_fits(0), UsageError);
  EXPECT_THROW((void)s.elastic_fits(0), UsageError);
}

TEST(StageState, RemoveElasticRedistributes) {
  StageState s(90);
  s.add_elastic(1, 1);
  s.add_elastic(2, 1);
  s.add_elastic(3, 1);
  s.remove_elastic(2);
  EXPECT_EQ(s.regions().at(1).size(), 45u);
  EXPECT_EQ(s.regions().at(3).size(), 45u);
}

TEST(StageState, MinimaHonoredUnderContention) {
  StageState s(10);
  s.add_elastic(1, 3);
  s.add_elastic(2, 3);
  s.add_elastic(3, 3);
  for (const auto& [id, region] : s.regions()) {
    EXPECT_GE(region.size(), 3u);
  }
  EXPECT_EQ(s.allocated_blocks(), 10u);
}

TEST(StageState, LastChangedReportsMovedMembersOnly) {
  StageState s(100);
  s.add_elastic(1, 1);
  s.add_elastic(2, 1);
  // Adding app 2 split app 1's region: both moved.
  EXPECT_EQ(s.last_changed(), (std::vector<AppId>{1, 2}));
  // Squeezing the elastic pool moves 1 and 2; the pinned newcomer itself is
  // not an elastic member and is never reported.
  s.add_inelastic(3, 10);
  EXPECT_EQ(s.last_changed(), (std::vector<AppId>{1, 2}));
  s.remove_inelastic(3);
  EXPECT_EQ(s.last_changed(), (std::vector<AppId>{1, 2}));
}

TEST(StageState, LastChangedEmptyWhenLayoutUndisturbed) {
  StageState s(100);
  s.add_inelastic(1, 10);
  s.add_inelastic(2, 5);
  // Pinned regions never move; removing a non-edge member disturbs nobody.
  s.remove_inelastic(2);
  EXPECT_TRUE(s.last_changed().empty());
}

TEST(StageState, LargestFreeRunTracksHoles) {
  StageState s(100);
  EXPECT_EQ(s.largest_free_run(), 100u);
  s.add_inelastic(1, 10);
  s.add_inelastic(2, 5);
  s.add_inelastic(3, 7);
  EXPECT_EQ(s.largest_free_run(), 78u);  // [22, 100)
  s.remove_inelastic(2);
  EXPECT_EQ(s.largest_free_run(), 78u);  // hole [10, 15) is smaller
  s.remove_inelastic(3);
  EXPECT_EQ(s.largest_free_run(), 90u);  // coalesced [10, 100)
}

TEST(StageState, MaxInelasticFitAccountsForElasticSqueeze) {
  StageState s(100);
  EXPECT_EQ(s.max_inelastic_fit(), 100u);
  s.add_elastic(1, 30);  // takes the whole pool, squeezable back to 30
  EXPECT_EQ(s.max_inelastic_fit(), 70u);
  s.add_inelastic(2, 20);
  EXPECT_EQ(s.max_inelastic_fit(), 50u);
  s.remove_inelastic(2);
  EXPECT_EQ(s.max_inelastic_fit(), 70u);
}

TEST(StageState, IncrementalAccountingMatchesRegionSum) {
  // allocated_blocks()/fungible_blocks() are maintained incrementally;
  // they must always agree with a from-scratch sum over regions().
  StageState s(368);
  s.add_inelastic(1, 40);
  s.add_elastic(2, 10, 60);
  s.add_elastic(3, 5);
  s.remove_inelastic(1);
  s.add_inelastic(4, 25);
  s.remove_elastic(2);
  u32 sum = 0;
  for (const auto& [id, region] : s.regions()) sum += region.size();
  EXPECT_EQ(s.allocated_blocks(), sum);
  EXPECT_EQ(s.free_blocks(), 368u - sum);
  // fungible = free + elastic squeeze (app 3 holds everything above min 5).
  EXPECT_EQ(s.fungible_blocks(), s.free_blocks() + s.regions().at(3).size() - 5);
}

// Property: random churn keeps regions disjoint and within capacity.
TEST(StageState, PropertyChurnKeepsInvariants) {
  StageState s(368);
  u32 next_id = 1;
  std::vector<std::pair<u32, bool>> resident;  // (id, elastic)
  u64 seed = 12345;
  auto rand = [&seed] {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<u32>(seed >> 33);
  };
  for (int step = 0; step < 300; ++step) {
    if (resident.size() > 4 && rand() % 3 == 0) {
      const auto pick = rand() % resident.size();
      const auto [id, elastic] = resident[pick];
      if (elastic) {
        s.remove_elastic(id);
      } else {
        s.remove_inelastic(id);
      }
      resident.erase(resident.begin() + pick);
    } else {
      const bool elastic = rand() % 2 == 0;
      const u32 demand = rand() % 8 + 1;
      const u32 id = next_id++;
      if (elastic ? s.elastic_fits(demand) : s.inelastic_fits(demand)) {
        if (elastic) {
          s.add_elastic(id, demand);
        } else {
          s.add_inelastic(id, demand);
        }
        resident.push_back({id, elastic});
      }
    }
    // Invariants: disjoint regions, all within capacity.
    std::vector<Interval> regions;
    for (const auto& [id, region] : s.regions()) regions.push_back(region);
    for (std::size_t i = 0; i < regions.size(); ++i) {
      ASSERT_LE(regions[i].end, 368u);
      for (std::size_t j = i + 1; j < regions.size(); ++j) {
        ASSERT_FALSE(regions[i].overlaps(regions[j]));
      }
    }
    ASSERT_EQ(s.regions().size(), resident.size());
  }
}

}  // namespace
}  // namespace artmt::alloc
