// Tests for workload generation: Zipf popularity and Poisson churn.
#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "workload/arrivals.hpp"
#include "workload/zipf.hpp"

namespace artmt::workload {
namespace {

TEST(Zipf, RankZeroMostPopular) {
  ZipfGenerator zipf(1000, 1.0);
  Rng rng(1);
  std::map<u32, int> counts;
  for (int i = 0; i < 50000; ++i) counts[zipf.next_rank(rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[100]);
}

TEST(Zipf, RanksWithinUniverse) {
  ZipfGenerator zipf(50, 0.9);
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.next_rank(rng), 50u);
}

TEST(Zipf, TopMassMonotone) {
  ZipfGenerator zipf(1000, 1.0);
  EXPECT_LT(zipf.top_mass(10), zipf.top_mass(100));
  EXPECT_NEAR(zipf.top_mass(1000), 1.0, 1e-12);
  EXPECT_EQ(zipf.top_mass(0), 0.0);
}

TEST(Zipf, TopMassMatchesEmpirical) {
  ZipfGenerator zipf(1000, 1.0);
  Rng rng(3);
  const int n = 100000;
  int in_top100 = 0;
  for (int i = 0; i < n; ++i) {
    if (zipf.next_rank(rng) < 100) ++in_top100;
  }
  EXPECT_NEAR(static_cast<double>(in_top100) / n, zipf.top_mass(100), 0.01);
}

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfGenerator zipf(10, 0.0);
  EXPECT_NEAR(zipf.top_mass(5), 0.5, 1e-12);
}

TEST(Zipf, KeysAreStableAndDistinct) {
  EXPECT_EQ(ZipfGenerator::key_for_rank(7), ZipfGenerator::key_for_rank(7));
  EXPECT_NE(ZipfGenerator::key_for_rank(7), ZipfGenerator::key_for_rank(8));
}

TEST(Zipf, EmptyUniverseThrows) {
  EXPECT_THROW(ZipfGenerator(0, 1.0), UsageError);
}

TEST(Arrivals, MeansApproximatelyRight) {
  ArrivalProcess proc(2.0, 1.0, 42);
  double arrivals = 0, departures = 0;
  const int epochs = 5000;
  for (int i = 0; i < epochs; ++i) {
    const auto plan = proc.next_epoch();
    arrivals += plan.arrivals.size();
    departures += plan.departures;
  }
  EXPECT_NEAR(arrivals / epochs, 2.0, 0.1);
  EXPECT_NEAR(departures / epochs, 1.0, 0.1);
}

TEST(Arrivals, UniformKindMix) {
  ArrivalProcess proc(2.0, 1.0, 7);
  std::map<AppKind, int> counts;
  for (int i = 0; i < 3000; ++i) {
    for (const AppKind kind : proc.next_epoch().arrivals) counts[kind]++;
  }
  const int total =
      counts[AppKind::kCache] + counts[AppKind::kHeavyHitter] +
      counts[AppKind::kLoadBalancer];
  for (const auto& [kind, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / total, 1.0 / 3.0, 0.05);
  }
}

TEST(Arrivals, FixedKindForcesPureWorkload) {
  ArrivalProcess proc(2.0, 1.0, 7);
  proc.fix_kind(AppKind::kLoadBalancer);
  for (int i = 0; i < 100; ++i) {
    for (const AppKind kind : proc.next_epoch().arrivals) {
      EXPECT_EQ(kind, AppKind::kLoadBalancer);
    }
  }
}

TEST(Arrivals, Reproducible) {
  ArrivalProcess a(2.0, 1.0, 5);
  ArrivalProcess b(2.0, 1.0, 5);
  for (int i = 0; i < 50; ++i) {
    const auto pa = a.next_epoch();
    const auto pb = b.next_epoch();
    EXPECT_EQ(pa.arrivals, pb.arrivals);
    EXPECT_EQ(pa.departures, pb.departures);
  }
}

TEST(Arrivals, KindNames) {
  EXPECT_STREQ(app_kind_name(AppKind::kCache), "cache");
  EXPECT_STREQ(app_kind_name(AppKind::kHeavyHitter), "heavy-hitter");
  EXPECT_STREQ(app_kind_name(AppKind::kLoadBalancer), "load-balancer");
}

}  // namespace
}  // namespace artmt::workload
