// Additional in-network services expressed in the ActiveRMT instruction
// set, addressing the paper's Section 7.1 question of how general the
// ISA is. Each comes with a compact program, a service spec for the
// allocator, and client-side helpers; semantics are verified in
// tests/test_extra_services.cpp.
//
//   * Sequencer -- a per-group packet sequencer (NOPaxos-style): every
//     capsule atomically takes the next sequence number of its group.
//   * Bloom filter -- set membership over two hash engines (e.g. a
//     SYN-dedup or scanner-detection assist): one program inserts, one
//     tests-and-returns.
//   * Flow counter -- per-flow packet counting with RTS readback
//     (INT-lite telemetry).
#pragma once

#include "active/program.hpp"
#include "client/compiler.hpp"

namespace artmt::apps {

// ---- sequencer ----
// Arguments: $0 = group slot address (client-translated), $1 = sequence
// number (out). One access; inelastic.
active::Program sequencer_program();
client::ServiceSpec sequencer_spec(u32 groups_blocks = 1);

// ---- Bloom filter (2 hash functions, 1 array per function) ----
// Insert: sets both buckets for the key in $0/$1. Test: RTSes with
// args[3] == 0 iff both buckets were set (membership); forwards
// otherwise. Elastic (bigger filter = lower false-positive rate).
active::Program bloom_insert_program();
active::Program bloom_test_program();
client::ServiceSpec bloom_spec(u32 min_blocks = 1);

// ---- per-flow packet counter ----
// Counts packets per flow (hash of the 5-tuple); a probe variant reads
// the counter back to the sender. Elastic.
active::Program flow_count_program();
active::Program flow_probe_program();
client::ServiceSpec flow_counter_spec(u32 min_blocks = 1);

}  // namespace artmt::apps
