// Microbenchmarks (google-benchmark) for the core data-plane and
// control-plane primitives: capsule parse/serialize, instruction
// execution, hashing, mutant enumeration, and single allocations.
//
// Before the google-benchmark cases run, a steady-state harness measures
// the switch packet path on a repeated-program workload two ways:
//   legacy  -- decode a fresh Program per packet, execute the mutating
//              compatibility path, serialize the mutated packet;
//   cached  -- intern through the ProgramCache, execute the immutable
//              CompiledProgram with a stack ExecCursor, synthesize the
//              shrink reply from the cursor.
// The harness asserts (exit 1) that the cache-hit execute performs zero
// heap allocations, and prints a JSON summary: packets/sec and
// allocations/packet for both paths, runtime drop/fault counters, and
// program-cache hit/miss statistics.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>

#include "active/assembler.hpp"
#include "active/program_cache.hpp"
#include "alloc/allocator.hpp"
#include "apps/cache_service.hpp"
#include "apps/programs.hpp"
#include "apps/server_node.hpp"
#include "client/client_node.hpp"
#include "controller/switch_node.hpp"
#include "faults/injector.hpp"
#include "netsim/network.hpp"
#include "netsim/sharded.hpp"
#include "packet/active_packet.hpp"
#include "proto/wire.hpp"
#include "rmt/hash.hpp"
#include "runtime/exec_batch.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

// --- global allocation counter -------------------------------------------
// Counts every heap allocation made by this binary; the steady-state
// harness reads deltas around the packet loop and around the cache-hit
// execute call specifically.
namespace {
unsigned long long g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_alloc_count;
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace artmt {
namespace {

// CI perf-smoke mode (scripts/ci.sh): ARTMT_BENCH_QUICK=1 shrinks every
// packet count so the whole harness finishes in seconds. Allocation
// assertions still run at full strength -- they are count-independent --
// but performance-ratio gates are skipped (the reduced rounds are too
// noisy to judge) and BENCH_datapath.json is NOT rewritten, so a smoke
// run never clobbers committed full-run numbers.
bool quick_mode() {
  static const bool quick = std::getenv("ARTMT_BENCH_QUICK") != nullptr;
  return quick;
}

// --- steady-state packet-path harness ------------------------------------

struct PathResult {
  double packets_per_sec = 0.0;
  double allocs_per_packet = 0.0;
};

struct SteadyStateRig {
  rmt::PipelineConfig cfg;
  rmt::Pipeline pipeline{cfg};
  runtime::ActiveRuntime runtime{pipeline};
  std::vector<u8> frame;  // the repeated cache-query capsule

  SteadyStateRig() {
    for (u32 s = 0; s < cfg.logical_stages; ++s) {
      pipeline.stage(s).install(1, 0, 4096, 0);
    }
    const auto pkt = packet::ActivePacket::make_program(
        1, packet::ArgumentHeader{{10, 2, 3, 0}},
        apps::cache_query_program());
    frame = pkt.serialize();
  }
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

u64 legacy_round(SteadyStateRig& rig, u64 packets) {
  const auto allocs_before = g_alloc_count;
  for (u64 i = 0; i < packets; ++i) {
    auto pkt = packet::ActivePacket::parse(rig.frame);
    rig.runtime.execute(pkt);
    benchmark::DoNotOptimize(pkt.serialize());
  }
  return g_alloc_count - allocs_before;
}

u64 cached_round(SteadyStateRig& rig, active::ProgramCache& cache,
                 active::ExecCursor& cursor, u64 packets,
                 u64* execute_allocs) {
  const auto allocs_before = g_alloc_count;
  for (u64 i = 0; i < packets; ++i) {
    auto pkt = packet::ActivePacket::parse(rig.frame, cache);
    const auto exec_before = g_alloc_count;
    rig.runtime.execute(*pkt.compiled, pkt, cursor);
    *execute_allocs += g_alloc_count - exec_before;
    benchmark::DoNotOptimize(proto::encode_executed(pkt, cursor));
  }
  return g_alloc_count - allocs_before;
}

// Rounds of the two paths are interleaved and each path reports its best
// round, so ambient load on a shared host skews both measurements alike
// instead of whichever path happened to run during a busy slice.
void measure_paths(SteadyStateRig& legacy_rig, SteadyStateRig& cached_rig,
                   active::ProgramCache& cache, u64 rounds, u64 per_round,
                   PathResult* legacy_out, PathResult* cached_out,
                   u64* execute_allocs_out) {
  active::ExecCursor cursor;
  // Warm up both paths (and populate the cache).
  legacy_round(legacy_rig, 1000);
  u64 execute_allocs = 0;
  cached_round(cached_rig, cache, cursor, 1000, &execute_allocs);
  execute_allocs = 0;

  double legacy_best_rate = 0.0;
  double cached_best_rate = 0.0;
  u64 legacy_allocs = 0;
  u64 cached_allocs = 0;
  for (u64 r = 0; r < rounds; ++r) {
    auto start = std::chrono::steady_clock::now();
    legacy_allocs += legacy_round(legacy_rig, per_round);
    legacy_best_rate =
        std::max(legacy_best_rate,
                 static_cast<double>(per_round) / seconds_since(start));
    start = std::chrono::steady_clock::now();
    cached_allocs +=
        cached_round(cached_rig, cache, cursor, per_round, &execute_allocs);
    cached_best_rate =
        std::max(cached_best_rate,
                 static_cast<double>(per_round) / seconds_since(start));
  }
  const double total = static_cast<double>(rounds * per_round);
  legacy_out->packets_per_sec = legacy_best_rate;
  legacy_out->allocs_per_packet = static_cast<double>(legacy_allocs) / total;
  cached_out->packets_per_sec = cached_best_rate;
  cached_out->allocs_per_packet = static_cast<double>(cached_allocs) / total;
  *execute_allocs_out = execute_allocs;
}

// Returns 0 on success, 1 when the zero-allocation assertion fails.
int run_steady_state() {
  const u64 kRounds = quick_mode() ? 3 : 10;
  const u64 kPerRound = quick_mode() ? 2'000 : 20'000;
  const u64 kIterations = kRounds * kPerRound;
  SteadyStateRig legacy_rig;
  SteadyStateRig cached_rig;
  active::ProgramCache cache;

  PathResult legacy;
  PathResult cached;
  u64 execute_allocs = 0;
  measure_paths(legacy_rig, cached_rig, cache, kRounds, kPerRound, &legacy,
                &cached, &execute_allocs);

  const runtime::RuntimeStats& stats = cached_rig.runtime.stats();
  const active::ProgramCache::Stats& cstats = cache.stats();
  std::printf(
      "{\n"
      "  \"workload\": {\"program\": \"cache_query\", \"packets\": %llu},\n"
      "  \"steady_state\": {\n"
      "    \"legacy\": {\"packets_per_sec\": %.0f, \"allocs_per_packet\": "
      "%.2f},\n"
      "    \"cached\": {\"packets_per_sec\": %.0f, \"allocs_per_packet\": "
      "%.2f, \"execute_allocs_per_packet\": %.6f},\n"
      "    \"speedup\": %.2f\n"
      "  },\n"
      "  \"runtime_counters\": {\n"
      "    \"packets\": %llu, \"instructions\": %llu, \"recirculations\": "
      "%llu,\n"
      "    \"drops_protection\": %llu, \"drops_no_allocation\": %llu,\n"
      "    \"drops_recirc_limit\": %llu, \"drops_recirc_budget\": %llu,\n"
      "    \"drops_privilege\": %llu, \"drops_explicit\": %llu,\n"
      "    \"rts_packets\": %llu, \"forwarded_unprocessed\": %llu\n"
      "  },\n"
      "  \"program_cache\": {\"hits\": %llu, \"misses\": %llu, "
      "\"evictions\": %llu, \"collisions\": %llu}\n"
      "}\n",
      static_cast<unsigned long long>(kIterations), legacy.packets_per_sec,
      legacy.allocs_per_packet, cached.packets_per_sec,
      cached.allocs_per_packet,
      static_cast<double>(execute_allocs) /
          static_cast<double>(kIterations),
      cached.packets_per_sec / legacy.packets_per_sec,
      static_cast<unsigned long long>(stats.packets),
      static_cast<unsigned long long>(stats.instructions),
      static_cast<unsigned long long>(stats.recirculations),
      static_cast<unsigned long long>(stats.drops_protection),
      static_cast<unsigned long long>(stats.drops_no_allocation),
      static_cast<unsigned long long>(stats.drops_recirc_limit),
      static_cast<unsigned long long>(stats.drops_recirc_budget),
      static_cast<unsigned long long>(stats.drops_privilege),
      static_cast<unsigned long long>(stats.drops_explicit),
      static_cast<unsigned long long>(stats.rts_packets),
      static_cast<unsigned long long>(stats.forwarded_unprocessed),
      static_cast<unsigned long long>(cstats.hits),
      static_cast<unsigned long long>(cstats.misses),
      static_cast<unsigned long long>(cstats.evictions),
      static_cast<unsigned long long>(cstats.collisions));
  std::fflush(stdout);

  if (execute_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: cache-hit ActiveRuntime::execute allocated %llu "
                 "times over %llu packets (expected 0)\n",
                 static_cast<unsigned long long>(execute_allocs),
                 static_cast<unsigned long long>(kIterations));
    return 1;
  }
  return 0;
}

// --- e2e netsim datapath harness -----------------------------------------
// The full wire-in/wire-out loop over the discrete-event network: a client
// node transmits pre-serialized program capsules to a SwitchNode, which
// executes them and forwards the shrunk reply to a server sink. Runs twice
// -- materialized (Config::zero_copy off, the pre-refactor path) and
// zero-copy (ProgramView + pooled in-place reply) -- and writes
// BENCH_datapath.json. Asserts (exit 1) that the zero-copy path performs
// zero heap allocations per forwarded frame once the pool is warm.
//
// A third rig runs the zero-copy path with telemetry recording enabled
// (per-FID counters + latency histogram on every frame, netsim counters
// on every delivery) against the first two measured with recording
// gated off. Asserts (exit 1) that the instrumented path still performs
// zero steady-state allocations and stays within 5% of the zero-copy
// packets/sec baseline -- the CI `telemetry-overhead` gate.
//
// A fourth rig measures the always-on tracing configuration: span
// emission live with the FlightRecorder ring armed (the production
// forensic setup -- the full-capture SpanSink is an offline dump mode,
// attached like a trace sink only when wanted), with metric/heatmap
// recording gated off (the third rig already prices those). Gates: zero
// steady-state allocations with the recorder armed (the ring is
// preallocated) and within 5% of the zero-copy baseline with spans live.

class SinkNode : public netsim::Node {
 public:
  explicit SinkNode(std::string name) : netsim::Node(std::move(name)) {}
  void on_frame(netsim::Frame frame, u32 port) override {
    (void)port;
    ++received;
    bytes += frame.size();
    // `frame` dies here: the slab goes straight back to the pool.
  }
  u64 received = 0;
  u64 bytes = 0;
};

constexpr packet::MacAddr kBenchClientMac = 0x0c;
constexpr packet::MacAddr kBenchServerMac = 0x0b;
constexpr std::size_t kBenchPayloadBytes = 1400;  // MTU-ish data capsule

struct E2eRig {
  netsim::Simulator sim;
  netsim::Network net{sim};
  std::shared_ptr<controller::SwitchNode> sw;
  std::shared_ptr<SinkNode> client;
  std::shared_ptr<SinkNode> server;
  std::vector<u8> wire;  // the repeated capsule, serialized once
  bool pooled_ingress;

  explicit E2eRig(bool zero_copy, bool telemetry = false)
      : pooled_ingress(zero_copy) {
    controller::SwitchNode::Config cfg;
    cfg.zero_copy = zero_copy;
    // These rigs measure the per-packet reference engine (frames are
    // pumped one at a time anyway, so batching would only add a flush
    // event per frame); the batched ingress is measured by BurstRig.
    cfg.batching = false;
    sw = std::make_shared<controller::SwitchNode>("switch", cfg);
    if (telemetry) {
      // Mirror the full artmt_stats wiring: netsim counters join the
      // switch's (private) registry, so the instrumented measurement pays
      // for every recording site the real deployment would.
      sim.set_metrics(&sw->metrics());
      net.set_metrics(&sw->metrics());
    }
    client = std::make_shared<SinkNode>("client");
    server = std::make_shared<SinkNode>("server");
    net.attach(sw);
    net.attach(client);
    net.attach(server);
    net.connect(*sw, 0, *client, 0);
    net.connect(*sw, 1, *server, 0);
    sw->bind(kBenchClientMac, 0);
    sw->bind(kBenchServerMac, 1);
    // Grant FID 1 the whole pipeline so the query never faults.
    for (u32 s = 0; s < sw->pipeline().stage_count(); ++s) {
      sw->pipeline().stage(s).install(1, 0, 4096, 0);
    }
    auto pkt = packet::ActivePacket::make_program(
        1, packet::ArgumentHeader{{10, 2, 3, 0}},
        apps::cache_query_program());
    pkt.ethernet.src = kBenchClientMac;
    pkt.ethernet.dst = kBenchServerMac;
    pkt.payload.assign(kBenchPayloadBytes, 0x5a);
    wire = pkt.serialize();
  }

  // One frame at a time through the whole path (ingress copy, switch
  // execution, egress delivery), draining the simulator between frames
  // like a line-rate switch between arrivals. The zero-copy rig ingests
  // through the recycling pool; the materialized rig ingests the way the
  // pre-refactor vector datapath did -- a fresh standalone buffer per
  // frame.
  void pump(u64 packets) {
    for (u64 i = 0; i < packets; ++i) {
      if (pooled_ingress) {
        net.transmit(*client, 0, net.pool().copy(wire));
      } else {
        net.transmit(*client, 0, wire);
      }
      sim.run();
    }
  }
};

struct E2eMeasurement {
  double packets_per_sec = 0.0;
  u64 allocs = 0;  // total over the measured rounds
};

void measure_e2e(E2eRig& rig, u64 rounds, u64 per_round, E2eMeasurement* out) {
  for (u64 r = 0; r < rounds; ++r) {
    const auto allocs_before = g_alloc_count;
    const auto start = std::chrono::steady_clock::now();
    rig.pump(per_round);
    out->packets_per_sec =
        std::max(out->packets_per_sec,
                 static_cast<double>(per_round) / seconds_since(start));
    out->allocs += g_alloc_count - allocs_before;
  }
}

// --- sharded engine e2e ---------------------------------------------------
// Scaling harness for the sharded multi-worker engine: K independent
// client -> switch -> sink rings, ring i pinned to shard i, open-loop
// injection (one capsule per ring every kInjectPeriod of virtual time).
// All traffic stays on its ring's shard, so the workload is embarrassingly
// parallel -- the measured speedup isolates the engine's epoch/barrier
// overhead from cross-shard cloning. Three engines run the identical
// scenario: the serial Simulator (reference), ShardedSimulator(1) (the
// epoch loop inline, no threads -- must stay within 5% of serial), and
// ShardedSimulator(kRingCount) (one worker per ring -- must reach 2x on
// hosts with >= 4 cores). Results land in BENCH_datapath.json under
// "sharding"; the gates are enforced (exit 1) only when the host has at
// least 4 cores, since wall-clock scaling is meaningless below that.

constexpr u32 kRingCount = 4;
constexpr u64 kFramesPerRing = 10'000;
constexpr u64 kWarmupFramesPerRing = 1'000;
constexpr SimTime kInjectPeriod = 250;  // ns of virtual time between frames
constexpr u32 kShardedRounds = 5;       // interleaved, best-of

struct RingInjector {
  netsim::Network* net;
  netsim::Node* client;
  const std::vector<u8>* wire;
  u64 remaining;
  void operator()() {
    net->transmit(*client, 0, net->pool().copy(*wire));
    if (--remaining > 0) {
      net->simulator().schedule_after(kInjectPeriod, *this);
    }
  }
};

struct ShardedRings {
  std::unique_ptr<netsim::Simulator> serial_sim;
  std::unique_ptr<netsim::ShardedSimulator> ssim;
  std::unique_ptr<netsim::Network> net;
  std::vector<std::shared_ptr<controller::SwitchNode>> switches;
  std::vector<std::shared_ptr<SinkNode>> clients;
  std::vector<std::shared_ptr<SinkNode>> sinks;
  std::vector<u8> wire;

  // shards == 0 builds the serial-Simulator reference rig.
  explicit ShardedRings(u32 shards) {
    if (shards == 0) {
      serial_sim = std::make_unique<netsim::Simulator>();
      net = std::make_unique<netsim::Network>(*serial_sim);
    } else {
      ssim = std::make_unique<netsim::ShardedSimulator>(shards);
      net = std::make_unique<netsim::Network>(*ssim);
    }
    auto pkt = packet::ActivePacket::make_program(
        1, packet::ArgumentHeader{{10, 2, 3, 0}},
        apps::cache_query_program());
    pkt.ethernet.src = kBenchClientMac;
    pkt.ethernet.dst = kBenchServerMac;
    pkt.payload.assign(kBenchPayloadBytes, 0x5a);
    wire = pkt.serialize();

    // 100us links against a 250ns injection period keep epochs coarse:
    // each barrier round covers ~400 frames per shard.
    netsim::LinkSpec link;
    link.latency = 100 * kMicrosecond;
    for (u32 i = 0; i < kRingCount; ++i) {
      const std::string tag = std::to_string(i);
      auto sw = std::make_shared<controller::SwitchNode>(
          "sw" + tag, controller::SwitchNode::Config{});
      auto client = std::make_shared<SinkNode>("client" + tag);
      auto sink = std::make_shared<SinkNode>("sink" + tag);
      net->attach(sw);
      net->attach(client);
      net->attach(sink);
      net->connect(*sw, 0, *client, 0, link);
      net->connect(*sw, 1, *sink, 0, link);
      sw->bind(kBenchClientMac, 0);
      sw->bind(kBenchServerMac, 1);
      for (u32 s = 0; s < sw->pipeline().stage_count(); ++s) {
        sw->pipeline().stage(s).install(1, 0, 4096, 0);
      }
      if (ssim) {
        const u32 shard = i % shards;
        ssim->pin(*sw, shard);
        ssim->pin(*client, shard);
        ssim->pin(*sink, shard);
      }
      switches.push_back(std::move(sw));
      clients.push_back(std::move(client));
      sinks.push_back(std::move(sink));
    }
  }

  // Injects `frames` per ring and runs to quiescence; returns wall seconds.
  double drive(u64 frames) {
    for (u32 i = 0; i < kRingCount; ++i) {
      RingInjector inj{net.get(), clients[i].get(), &wire, frames};
      if (ssim) {
        ssim->schedule_on(*clients[i], ssim->now(), inj);
      } else {
        serial_sim->schedule_at(serial_sim->now(), inj);
      }
    }
    const auto start = std::chrono::steady_clock::now();
    if (ssim) {
      ssim->run();
    } else {
      serial_sim->run();
    }
    return seconds_since(start);
  }

  [[nodiscard]] u64 received() const {
    u64 total = 0;
    for (const auto& s : sinks) total += s->received;
    return total;
  }
};

// Fills `json` with the "sharding" member of BENCH_datapath.json.
// Returns 0 on success, 1 when a scaling gate fails on a capable host.
int run_sharded_e2e(char* json, std::size_t cap) {
  const unsigned cores = std::thread::hardware_concurrency();
  const u64 frames_per_ring = quick_mode() ? 1'000 : kFramesPerRing;
  const u64 warmup_per_ring = quick_mode() ? 200 : kWarmupFramesPerRing;
  const u32 rounds = quick_mode() ? 2 : kShardedRounds;
  ShardedRings serial(0);
  ShardedRings one(1);
  ShardedRings wide(kRingCount);
  telemetry::set_enabled(false);
  serial.drive(warmup_per_ring);
  one.drive(warmup_per_ring);
  wide.drive(warmup_per_ring);

  double serial_pps = 0.0;
  double one_pps = 0.0;
  double wide_pps = 0.0;
  const double kFrames =
      static_cast<double>(frames_per_ring) * kRingCount;
  for (u32 r = 0; r < rounds; ++r) {
    serial_pps = std::max(serial_pps, kFrames / serial.drive(frames_per_ring));
    one_pps = std::max(one_pps, kFrames / one.drive(frames_per_ring));
    wide_pps = std::max(wide_pps, kFrames / wide.drive(frames_per_ring));
  }
  telemetry::set_enabled(true);

  const u64 expected =
      kRingCount * (warmup_per_ring + rounds * frames_per_ring);
  for (const ShardedRings* rig : {&serial, &one, &wide}) {
    if (rig->received() != expected) {
      std::fprintf(stderr,
                   "FAIL: sharded e2e rig delivered %llu frames, expected "
                   "%llu\n",
                   static_cast<unsigned long long>(rig->received()),
                   static_cast<unsigned long long>(expected));
      return 1;
    }
  }

  const double speedup = wide_pps / serial_pps;
  const bool one_within_5pct = one_pps >= 0.95 * serial_pps;
  const bool enforce = cores >= 4 && !quick_mode();
  u64 events = 0;
  u64 cross = 0;
  u64 barrier_ns = 0;
  for (u32 i = 0; i < kRingCount; ++i) {
    const auto& st = wide.ssim->shard_stats(i);
    events += st.events_dispatched;
    cross += st.frames_in;
    barrier_ns += st.barrier_wait_ns;
  }
  std::snprintf(
      json, cap,
      "  \"sharding\": {\n"
      "    \"rings\": %u, \"frames_per_ring\": %llu, \"cores\": %u,\n"
      "    \"serial\": {\"packets_per_sec\": %.0f},\n"
      "    \"shards1\": {\"packets_per_sec\": %.0f, \"within_5pct\": %s},\n"
      "    \"shards%u\": {\"packets_per_sec\": %.0f, \"speedup\": %.2f},\n"
      "    \"epochs\": %llu, \"events_dispatched\": %llu,\n"
      "    \"cross_shard_frames\": %llu, \"barrier_wait_ns\": %llu,\n"
      "    \"gates_enforced\": %s\n"
      "  }\n",
      kRingCount, static_cast<unsigned long long>(frames_per_ring), cores,
      serial_pps, one_pps, one_within_5pct ? "true" : "false", kRingCount,
      wide_pps, speedup, static_cast<unsigned long long>(wide.ssim->epochs()),
      static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(cross),
      static_cast<unsigned long long>(barrier_ns),
      enforce ? "true" : "false");

  if (enforce && !one_within_5pct) {
    std::fprintf(stderr,
                 "FAIL: shards=1 ran at %.0f pps vs %.0f pps serial "
                 "(budget: within 5%%)\n",
                 one_pps, serial_pps);
    return 1;
  }
  if (enforce && speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: %u shards reached %.2fx over serial on %u cores "
                 "(gate: >= 2x)\n",
                 kRingCount, speedup, cores);
    return 1;
  }
  return 0;
}

// --- batched ingress burst harness ----------------------------------------
// Measures the SwitchNode batch ingress: kBurst capsules transmitted
// back-to-back arrive at the switch at the same virtual instant, so the
// flush event drains the whole burst into one runtime::ExecBatch stage
// sweep (one memoized protection lookup and one register working set per
// stage for all lanes). A second rig runs the identical burst workload
// with Config::batching off -- the per-packet reference engine -- so the
// engine speedup is isolated from the workload. The capsule carries a
// small payload (active capsules are probe-sized; the 1400-byte payload
// of the per-frame rigs would make the harness's injection memcpy the
// bottleneck of what is an execution measurement). Gate (exit 1, full
// runs only): the batched path must clear 2x this run's zero-copy
// per-packet baseline.

constexpr u32 kBurst = 64;
constexpr std::size_t kBurstPayloadBytes = 64;

struct BurstRig {
  netsim::Simulator sim;
  netsim::Network net{sim};
  std::shared_ptr<controller::SwitchNode> sw;
  std::shared_ptr<SinkNode> client;
  std::shared_ptr<SinkNode> server;
  std::vector<u8> wire;

  explicit BurstRig(bool batching) {
    controller::SwitchNode::Config cfg;
    cfg.batching = batching;
    sw = std::make_shared<controller::SwitchNode>("switch", cfg);
    client = std::make_shared<SinkNode>("client");
    server = std::make_shared<SinkNode>("server");
    net.attach(sw);
    net.attach(client);
    net.attach(server);
    net.connect(*sw, 0, *client, 0);
    net.connect(*sw, 1, *server, 0);
    sw->bind(kBenchClientMac, 0);
    sw->bind(kBenchServerMac, 1);
    for (u32 s = 0; s < sw->pipeline().stage_count(); ++s) {
      sw->pipeline().stage(s).install(1, 0, 4096, 0);
    }
    auto pkt = packet::ActivePacket::make_program(
        1, packet::ArgumentHeader{{10, 2, 3, 0}},
        apps::cache_query_program());
    pkt.ethernet.src = kBenchClientMac;
    pkt.ethernet.dst = kBenchServerMac;
    pkt.payload.assign(kBurstPayloadBytes, 0x5a);
    wire = pkt.serialize();
  }

  // All frames of a burst are transmitted at the same virtual instant
  // before the simulator drains, so they share one arrival timestamp.
  void pump(u64 bursts) {
    for (u64 i = 0; i < bursts; ++i) {
      for (u32 b = 0; b < kBurst; ++b) {
        net.transmit(*client, 0, net.pool().copy(wire));
      }
      sim.run();
    }
  }
};

// Engine-level lanes: kBurst pre-parsed execution contexts against one
// pipeline, run per-packet (execute) or batched (ExecBatch). This
// isolates the execution engines from parse/encode/netsim costs -- the
// number the flat-dispatch/stage-sweep refactor actually moves.
struct EngineLanes {
  rmt::PipelineConfig cfg;
  rmt::Pipeline pipeline{cfg};
  runtime::ActiveRuntime runtime{pipeline};
  active::CompiledProgram compiled;
  std::vector<std::array<Word, active::kArgFields>> args;
  std::vector<runtime::ExecContext> ctxs;
  std::vector<active::ExecCursor> cursors;
  runtime::PacketMeta meta;
  runtime::ExecBatch batch{runtime};

  // `resident_fids` populates every stage's protection table: 1 mirrors
  // the committed zero-copy baseline conditions; a populated table makes
  // the per-access lookup cost what a multi-tenant switch pays.
  EngineLanes(const active::Program& program, u32 resident_fids)
      : compiled(active::CompiledProgram::compile(program)) {
    for (u32 s = 0; s < cfg.logical_stages; ++s) {
      for (u32 f = 1; f <= resident_fids; ++f) {
        pipeline.stage(s).install(f, 0, 4096, 0);
      }
    }
    args.resize(kBurst);
    ctxs.resize(kBurst);
    cursors.resize(kBurst);
    for (u32 i = 0; i < kBurst; ++i) {
      args[i] = {10, 2, 3, 0};
      ctxs[i].args = &args[i];
      ctxs[i].fid = 1;
    }
  }

  void run_per_packet(u64 reps) {
    for (u64 r = 0; r < reps; ++r) {
      for (u32 i = 0; i < kBurst; ++i) {
        benchmark::DoNotOptimize(
            runtime.execute(compiled, ctxs[i], cursors[i], meta, 0));
      }
    }
  }

  void run_batched(u64 reps) {
    for (u64 r = 0; r < reps; ++r) {
      batch.clear();
      for (u32 i = 0; i < kBurst; ++i) {
        batch.add(compiled, ctxs[i], cursors[i], meta, 0);
      }
      batch.execute();
      for (u32 i = 0; i < kBurst; ++i) {
        benchmark::DoNotOptimize(batch.result(i));
      }
    }
  }
};

struct EnginePair {
  double per_packet_pps = 0.0;
  double batched_pps = 0.0;
};

EnginePair measure_engine(EngineLanes& rig, u64 rounds, u64 reps) {
  EnginePair out;
  rig.run_per_packet(reps / 4 + 1);  // warm
  rig.run_batched(reps / 4 + 1);
  const double frames = static_cast<double>(reps) * kBurst;
  for (u64 r = 0; r < rounds; ++r) {
    auto start = std::chrono::steady_clock::now();
    rig.run_per_packet(reps);
    out.per_packet_pps =
        std::max(out.per_packet_pps, frames / seconds_since(start));
    start = std::chrono::steady_clock::now();
    rig.run_batched(reps);
    out.batched_pps = std::max(out.batched_pps, frames / seconds_since(start));
  }
  return out;
}

// A telemetry-counter program: one address load, then a counter bump in
// every remaining ingress+egress stage. Nearly every instruction is a
// protected memory access, so per-packet execution pays a protection
// lookup per stage per packet while the sweep pays one per stage per
// BATCH -- the access pattern the stage-sweep engine is built for.
active::Program counter_sweep_program() {
  return active::assemble(R"(
      MAR_LOAD $0
      MEM_INCREMENT
      MEM_INCREMENT
      MEM_INCREMENT
      MEM_INCREMENT
      MEM_INCREMENT
      MEM_INCREMENT
      MEM_INCREMENT
      MEM_INCREMENT
      MEM_INCREMENT
      MEM_INCREMENT
      MEM_INCREMENT
      MEM_INCREMENT
      MEM_INCREMENT
      MEM_INCREMENT
      MEM_INCREMENT
      MEM_INCREMENT
      MEM_INCREMENT
      RETURN
  )");
}

// Fills `json` with the "batched" member of BENCH_datapath.json (trailing
// comma included). Returns 0 on success, 1 when the 2x gate fails.
int run_batched_block(char* json, std::size_t cap, double zc_baseline_pps) {
  const u64 rounds = quick_mode() ? 3 : 10;
  const u64 bursts_per_round = quick_mode() ? 20 : 500;
  const u64 frames_per_round = bursts_per_round * kBurst;
  BurstRig per_packet(/*batching=*/false);
  BurstRig batched(/*batching=*/true);
  telemetry::set_enabled(false);
  per_packet.pump(quick_mode() ? 5 : 50);
  batched.pump(quick_mode() ? 5 : 50);

  double pp_pps = 0.0;
  double bat_pps = 0.0;
  u64 bat_allocs = 0;
  for (u64 r = 0; r < rounds; ++r) {
    auto start = std::chrono::steady_clock::now();
    per_packet.pump(bursts_per_round);
    pp_pps = std::max(pp_pps, static_cast<double>(frames_per_round) /
                                  seconds_since(start));
    const auto allocs_before = g_alloc_count;
    start = std::chrono::steady_clock::now();
    batched.pump(bursts_per_round);
    bat_pps = std::max(bat_pps, static_cast<double>(frames_per_round) /
                                    seconds_since(start));
    bat_allocs += g_alloc_count - allocs_before;
  }
  // One instrumented burst (recording was gated off during measurement):
  // proves the burst actually coalesced into a single ExecBatch.
  telemetry::set_enabled(true);
  batched.pump(1);
  const u64 batches =
      batched.sw->metrics().counter("switch", "exec_batches").value();
  const u64 coalesced =
      batched.sw->metrics().counter("switch", "zero_copy_frames").value();
  if (batches == 0 || coalesced / std::max<u64>(batches, 1) < kBurst / 2) {
    std::fprintf(stderr,
                 "FAIL: burst of %u frames did not coalesce (batches=%llu)\n",
                 kBurst, static_cast<unsigned long long>(batches));
    return 1;
  }

  // Engine-level comparison, two workloads: the cache query under the
  // committed baseline's table conditions (the gate anchor), and the
  // counter sweep against a populated protection table (where the
  // memoized per-stage lookup is the dominant saving).
  const u64 engine_rounds = quick_mode() ? 3 : 10;
  const u64 engine_reps = quick_mode() ? 200 : 2'000;
  EngineLanes query_rig(apps::cache_query_program(), /*resident_fids=*/1);
  EngineLanes sweep_rig(counter_sweep_program(), /*resident_fids=*/64);
  telemetry::set_enabled(false);
  const EnginePair query = measure_engine(query_rig, engine_rounds,
                                          engine_reps);
  const EnginePair sweep = measure_engine(sweep_rig, engine_rounds,
                                          engine_reps);
  telemetry::set_enabled(true);

  const double vs_zero_copy = query.batched_pps / zc_baseline_pps;
  const bool gate_met = query.batched_pps >= 2.0 * zc_baseline_pps;
  std::snprintf(
      json, cap,
      "  \"batched\": {\n"
      "    \"packets_per_sec\": %.0f,\n"
      "    \"speedup_vs_zero_copy\": %.2f, \"gate_2x_zero_copy\": %s,\n"
      "    \"engine_cache_query\": {\"resident_fids\": 1,\n"
      "      \"per_packet_packets_per_sec\": %.0f, "
      "\"batched_packets_per_sec\": %.0f, \"speedup\": %.2f},\n"
      "    \"engine_counter_sweep\": {\"resident_fids\": 64,\n"
      "      \"per_packet_packets_per_sec\": %.0f, "
      "\"batched_packets_per_sec\": %.0f, \"speedup\": %.2f},\n"
      "    \"e2e_burst\": {\"program\": \"cache_query\", \"burst\": %u, "
      "\"payload_bytes\": %zu,\n"
      "      \"per_packet_packets_per_sec\": %.0f, "
      "\"batched_packets_per_sec\": %.0f,\n"
      "      \"allocs_per_frame_steady\": %.6f, \"exec_batches\": %llu}\n"
      "  },\n",
      query.batched_pps, vs_zero_copy, gate_met ? "true" : "false",
      query.per_packet_pps, query.batched_pps,
      query.batched_pps / query.per_packet_pps, sweep.per_packet_pps,
      sweep.batched_pps, sweep.batched_pps / sweep.per_packet_pps, kBurst,
      kBurstPayloadBytes, pp_pps, bat_pps,
      static_cast<double>(bat_allocs) /
          static_cast<double>(rounds * frames_per_round),
      static_cast<unsigned long long>(batches));

  if (bat_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: batched ingress allocated %llu times over %llu "
                 "frames (expected 0 in steady state)\n",
                 static_cast<unsigned long long>(bat_allocs),
                 static_cast<unsigned long long>(rounds * frames_per_round));
    return 1;
  }
  if (!quick_mode() && !gate_met) {
    std::fprintf(stderr,
                 "FAIL: batched engine ran at %.0f pps, %.2fx the zero-copy "
                 "datapath baseline of %.0f pps (gate: >= 2x)\n",
                 query.batched_pps, vs_zero_copy, zc_baseline_pps);
    return 1;
  }
  return 0;
}

// --- chaos: injector hook overhead + lossy reliability soak ---------------
// Two results ride in the "chaos" block of BENCH_datapath.json: a
// FaultInjector with an empty plan on the zero-copy datapath must stay
// within 5% of the hookless packets/sec baseline (the cost of having the
// subsystem compiled in and attached but idle), and a cache-populate soak
// through 5% uniform loss must converge, recording the injected /
// retransmitted / recovered capsule counts.

struct ChaosSoak {
  u64 injected_drops = 0;
  u64 retransmits = 0;
  u64 recovered = 0;
  u64 give_ups = 0;
  u64 cache_hits = 0;
  u64 cache_misses = 0;
  bool converged = false;
};

ChaosSoak run_chaos_soak() {
  netsim::Simulator sim;
  netsim::Network net(sim);
  controller::SwitchNode::Config cfg;
  cfg.costs.table_entry_update = 100 * kMicrosecond;
  cfg.costs.snapshot_per_block = 1 * kMicrosecond;
  cfg.costs.clear_per_block = 1 * kMicrosecond;
  auto sw = std::make_shared<controller::SwitchNode>("switch", cfg);
  auto server = std::make_shared<apps::ServerNode>("server", 0xbb);
  auto client = std::make_shared<client::ClientNode>("client", 0x100, 0xaa);
  net.attach(sw);
  net.attach(server);
  net.attach(client);
  net.connect(*sw, 0, *server, 0);
  net.connect(*sw, 1, *client, 0);
  sw->bind(0xbb, 0);
  sw->bind(0x100, 1);

  // The loss window opens after admission settles: allocation-control
  // capsules carry no retransmission by design, so the soak measures the
  // reliability layer, not handshake luck.
  faults::FaultPlan plan = faults::FaultPlan::uniform_loss(3, 0.05);
  plan.link_faults[0].from = 50 * kMillisecond;
  faults::FaultInjector injector(plan);
  net.set_transmit_hook(&injector);

  auto cache = std::make_shared<apps::CacheService>("cache", 0xbb);
  client->register_service(cache);
  client->on_passive = [&cache](netsim::Frame& frame) {
    const auto msg = apps::KvMessage::parse(std::span<const u8>(frame).subspan(
        packet::EthernetHeader::kWireSize));
    if (msg) cache->handle_server_reply(*msg);
  };
  ChaosSoak soak;
  cache->on_result = [&](u32, u64, u32, bool hit) {
    (hit ? soak.cache_hits : soak.cache_misses)++;
  };
  for (u64 key = 0; key < 2048; ++key) server->put(key, 1);

  bool populated = false;
  std::function<void(u32)> get_next = [&](u32 remaining) {
    if (remaining == 0) return;
    cache->get(remaining % 256);
    sim.schedule_after(100 * kMicrosecond,
                       [&get_next, remaining] { get_next(remaining - 1); });
  };
  cache->on_ready = [&] {
    std::vector<std::pair<u64, u32>> hot;
    for (u32 key = 0; key < 128; ++key) hot.emplace_back(key, key + 1);
    sim.schedule_at(60 * kMillisecond, [&cache, hot = std::move(hot), &populated,
                                        &get_next] {
      cache->populate(hot, [&populated] { populated = true; });
      get_next(1000);
    });
  };
  cache->request_allocation();
  sim.run();

  soak.injected_drops = injector.injected(faults::FaultKind::kDrop);
  const auto& stats = cache->populate_reliability().stats();
  soak.retransmits = stats.retransmits;
  soak.recovered = stats.recovered;
  soak.give_ups = stats.give_ups;
  soak.converged =
      populated && cache->populate_reliability().outstanding() == 0;
  return soak;
}

// Fills `json` with the "chaos" member of BENCH_datapath.json (trailing
// comma included). Returns 0 on success, 1 when a gate fails.
int run_chaos_block(char* json, std::size_t cap) {
  E2eRig base_rig(/*zero_copy=*/true);
  E2eRig hook_rig(/*zero_copy=*/true);
  faults::FaultInjector idle{faults::FaultPlan{}};
  hook_rig.net.set_transmit_hook(&idle);
  telemetry::set_enabled(false);
  base_rig.pump(1000);
  hook_rig.pump(1000);
  E2eMeasurement base;
  E2eMeasurement hook;
  const u64 kChaosRounds = quick_mode() ? 3 : 10;
  const u64 kChaosPerRound = quick_mode() ? 1'000 : 5'000;
  for (u64 r = 0; r < kChaosRounds; ++r) {
    measure_e2e(base_rig, 1, kChaosPerRound, &base);
    measure_e2e(hook_rig, 1, kChaosPerRound, &hook);
  }
  telemetry::set_enabled(true);
  const double overhead_pct =
      100.0 * (1.0 - hook.packets_per_sec / base.packets_per_sec);
  const bool within_5pct = hook.packets_per_sec >= 0.95 * base.packets_per_sec;

  const ChaosSoak soak = run_chaos_soak();
  std::snprintf(
      json, cap,
      "  \"chaos\": {\n"
      "    \"idle_injector\": {\"packets_per_sec\": %.0f, "
      "\"baseline_packets_per_sec\": %.0f,\n"
      "                      \"overhead_pct\": %.2f, \"within_5pct\": %s},\n"
      "    \"lossy_soak\": {\"loss\": 0.05, \"injected_drops\": %llu, "
      "\"retransmits\": %llu,\n"
      "                   \"recovered\": %llu, \"give_ups\": %llu, "
      "\"cache_hits\": %llu,\n"
      "                   \"cache_misses\": %llu, \"converged\": %s}\n"
      "  },\n",
      hook.packets_per_sec, base.packets_per_sec, overhead_pct,
      within_5pct ? "true" : "false",
      static_cast<unsigned long long>(soak.injected_drops),
      static_cast<unsigned long long>(soak.retransmits),
      static_cast<unsigned long long>(soak.recovered),
      static_cast<unsigned long long>(soak.give_ups),
      static_cast<unsigned long long>(soak.cache_hits),
      static_cast<unsigned long long>(soak.cache_misses),
      soak.converged ? "true" : "false");

  if (!quick_mode() && !within_5pct) {
    std::fprintf(stderr,
                 "FAIL: idle fault injector ran at %.0f pps vs %.0f pps "
                 "baseline (%.2f%% overhead, budget 5%%)\n",
                 hook.packets_per_sec, base.packets_per_sec, overhead_pct);
    return 1;
  }
  if (!soak.converged) {
    std::fprintf(stderr,
                 "FAIL: lossy soak did not converge (populate done=%d, "
                 "outstanding writes give-ups=%llu)\n",
                 soak.converged,
                 static_cast<unsigned long long>(soak.give_ups));
    return 1;
  }
  return 0;
}

// Returns 0 on success, 1 when the zero-allocation assertion fails.
int run_e2e_datapath() {
  const u64 kRounds = quick_mode() ? 3 : 12;
  const u64 kPerRound = quick_mode() ? 1'000 : 5'000;
  const u64 kPackets = kRounds * kPerRound;
  E2eRig legacy_rig(/*zero_copy=*/false);
  E2eRig zc_rig(/*zero_copy=*/true);
  E2eRig tel_rig(/*zero_copy=*/true, /*telemetry=*/true);
  E2eRig spans_rig(/*zero_copy=*/true);
  // The production always-on tracing configuration: every span event is
  // emitted into the armed flight-recorder ring (preallocated, no dump
  // dir -- recording only). The full-capture SpanSink is the offline
  // forensic mode -- attached only when a dump is wanted, like a trace
  // sink -- so it stays detached here; counters/heatmap stay gated off
  // too (the third rig already prices those). The "spans" block thus
  // prices exactly what a deployment pays to keep the recorder armed.
  telemetry::FlightRecorder flight(telemetry::FlightRecorder::kDefaultCapacity,
                                   1);
  auto arm_spans = [&] { telemetry::set_flight_recorder(&flight); };
  auto disarm_spans = [&] { telemetry::set_flight_recorder(nullptr); };
  // Warm-up: populates the program caches, the frame pools, the event
  // queue capacity, and (for the instrumented rigs) the per-FID counter
  // memos, so the measured rounds see the steady state.
  telemetry::set_enabled(true);
  legacy_rig.pump(1000);
  zc_rig.pump(1000);
  tel_rig.pump(1000);
  arm_spans();
  spans_rig.pump(1000);
  disarm_spans();
  const u64 warmup_span_events = flight.recorded();

  E2eMeasurement legacy;
  E2eMeasurement zc;
  E2eMeasurement tel_base;
  E2eMeasurement tel;
  E2eMeasurement spans_base;
  E2eMeasurement spans;
  // Interleaved rounds, best-of: ambient load skews all paths alike. The
  // two overhead gates (telemetry recording, span tracing) are same-rig
  // paired A/Bs, like the chaos block's idle-injector gate: within each
  // round the rig alternates recording-off / recording-on in
  // sub-millisecond blocks so frequency ramps and scheduler quanta hit
  // both sides, each adjacent off/on pair yields one overhead ratio, and
  // the gate takes the MEDIAN over the pairs of the whole run. A
  // cross-rig comparison (or an independent best-of per side) lets one
  // lucky or stolen window on either side swing the measured cost by
  // tens of percent on a noisy host; the median of paired ratios is
  // robust in both directions.
  struct AbPair {
    double base_pps;  // the pair's recording-off throughput
    double on_pps;    // the pair's recording-on throughput
    double ratio;     // 1 - on/off for that pair
  };
  const u64 kAbBlocks = 5;
  // One paired A/B round: appends one overhead ratio per adjacent
  // off/on block pair and folds the block bests / alloc counts into the
  // global accumulators -- individual pairs are noisy, but a scheduler
  // steal poisons only the pairs it lands on, and the median shrugs
  // those off.
  const auto paired_round = [&](E2eRig& rig, auto&& off, auto&& on,
                                E2eMeasurement* base_out,
                                E2eMeasurement* on_out,
                                std::vector<AbPair>* overheads) {
    for (u64 k = 0; k < kAbBlocks; ++k) {
      E2eMeasurement base_b;
      E2eMeasurement on_b;
      // ABBA order alternation: the second slot of a pair sits closer to
      // the next scheduler quantum, so a fixed order would bias one side.
      if (k % 2 == 0) {
        off();
        measure_e2e(rig, 1, kPerRound / kAbBlocks, &base_b);
        on();
        measure_e2e(rig, 1, kPerRound / kAbBlocks, &on_b);
      } else {
        on();
        measure_e2e(rig, 1, kPerRound / kAbBlocks, &on_b);
        off();
        measure_e2e(rig, 1, kPerRound / kAbBlocks, &base_b);
      }
      base_out->packets_per_sec =
          std::max(base_out->packets_per_sec, base_b.packets_per_sec);
      base_out->allocs += base_b.allocs;
      on_out->packets_per_sec =
          std::max(on_out->packets_per_sec, on_b.packets_per_sec);
      on_out->allocs += on_b.allocs;
      overheads->push_back(
          {base_b.packets_per_sec, on_b.packets_per_sec,
           1.0 - on_b.packets_per_sec / base_b.packets_per_sec});
    }
    off();
  };
  std::vector<AbPair> tel_overheads;
  std::vector<AbPair> spans_overheads;
  tel_overheads.reserve(kRounds * kAbBlocks);
  spans_overheads.reserve(kRounds * kAbBlocks);
  for (u64 r = 0; r < kRounds; ++r) {
    telemetry::set_enabled(false);
    measure_e2e(legacy_rig, 1, kPerRound, &legacy);
    measure_e2e(zc_rig, 1, kPerRound, &zc);
    paired_round(tel_rig, [] { telemetry::set_enabled(false); },
                 [] { telemetry::set_enabled(true); }, &tel_base, &tel,
                 &tel_overheads);
    paired_round(spans_rig, disarm_spans, arm_spans, &spans_base, &spans,
                 &spans_overheads);
  }
  const u64 span_events = flight.recorded() - warmup_span_events;
  telemetry::set_enabled(true);  // the blocks below manage their own state
  // Median overhead over the clean-window pairs. A pair either of whose
  // blocks ran far below the run's best for that side was hit by host
  // throttling or a scheduler steal; such a pair's ratio is an outlier in
  // whichever direction the steal landed. The filter must test BOTH
  // sides: dropping only low-off-side pairs would remove the
  // negative-ratio outliers (steal on the off block) while keeping the
  // positive ones (steal on the on block), biasing the median upward.
  // VM throttling is measurement noise, not system-under-test cost.
  const auto median_overhead = [](const std::vector<AbPair>& pairs) {
    double best_off = 0.0;
    double best_on = 0.0;
    for (const AbPair& p : pairs) {
      best_off = std::max(best_off, p.base_pps);
      best_on = std::max(best_on, p.on_pps);
    }
    std::vector<double> v;
    v.reserve(pairs.size());
    for (const AbPair& p : pairs) {
      if (p.base_pps >= 0.6 * best_off && p.on_pps >= 0.6 * best_on) {
        v.push_back(p.ratio);
      }
    }
    if (v.size() < pairs.size() / 2) {
      // Degenerate throttle profile: fall back to every pair rather than
      // gate on a handful of samples.
      v.clear();
      for (const AbPair& p : pairs) v.push_back(p.ratio);
    }
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    if (n == 0) return 0.0;
    return n % 2 != 0 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  };

  const double legacy_allocs_per_frame =
      static_cast<double>(legacy.allocs) / static_cast<double>(kPackets);
  const double zc_allocs_per_frame =
      static_cast<double>(zc.allocs) / static_cast<double>(kPackets);
  const double speedup = zc.packets_per_sec / legacy.packets_per_sec;
  const double tel_allocs_per_frame =
      static_cast<double>(tel.allocs) / static_cast<double>(kPackets);
  const double tel_overhead = median_overhead(tel_overheads);
  const double tel_overhead_pct = 100.0 * tel_overhead;
  const bool tel_within_5pct = tel_overhead <= 0.05;
  const double spans_allocs_per_frame =
      static_cast<double>(spans.allocs) / static_cast<double>(kPackets);
  const double spans_overhead = median_overhead(spans_overheads);
  const double spans_overhead_pct = 100.0 * spans_overhead;
  const bool spans_within_5pct = spans_overhead <= 0.05;

  const auto& ss = zc_rig.sw->node_stats();
  const auto& cs = zc_rig.sw->program_cache().stats();
  const auto& ps = zc_rig.net.pool().stats();
  const u64 lookups = cs.hits + cs.misses;
  const double hit_rate =
      lookups ? static_cast<double>(cs.hits) / static_cast<double>(lookups)
              : 0.0;

  char sharding_json[1024];
  const int sharded_rc = run_sharded_e2e(sharding_json, sizeof(sharding_json));
  char batched_json[1024];
  const int batched_rc =
      run_batched_block(batched_json, sizeof(batched_json),
                        zc.packets_per_sec);
  char chaos_json[1024];
  const int chaos_rc = run_chaos_block(chaos_json, sizeof(chaos_json));

  char json[8192];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"benchmark\": \"e2e_netsim_datapath\",\n"
      "  \"cores\": %u,\n"
      "  \"quick\": %s,\n"
      "  \"workload\": {\"program\": \"cache_query\", \"payload_bytes\": "
      "%zu,\n"
      "               \"frame_bytes\": %zu, \"packets_per_path\": %llu},\n"
      "  \"materialized\": {\"packets_per_sec\": %.0f, "
      "\"allocs_per_frame\": %.2f},\n"
      "  \"zero_copy\": {\"packets_per_sec\": %.0f, "
      "\"allocs_per_frame_steady\": %.6f},\n"
      "  \"speedup\": %.2f,\n"
      "  \"telemetry\": {\"packets_per_sec\": %.0f, "
      "\"baseline_packets_per_sec\": %.0f,\n"
      "               \"allocs_per_frame_steady\": %.6f,\n"
      "               \"overhead_pct\": %.2f, \"within_5pct\": %s},\n"
      "  \"spans\": {\"packets_per_sec\": %.0f, "
      "\"baseline_packets_per_sec\": %.0f,\n"
      "           \"allocs_per_frame_steady\": %.6f,\n"
      "           \"overhead_pct\": %.2f, \"within_5pct\": %s, "
      "\"span_events\": %llu},\n"
      "  \"switch\": {\"forwarded\": %llu, \"returned\": %llu, \"dropped\": "
      "%llu,\n"
      "             \"malformed\": %llu, \"unknown_destination\": %llu,\n"
      "             \"zero_copy_frames\": %llu},\n"
      "  \"program_cache\": {\"hits\": %llu, \"misses\": %llu, "
      "\"hit_rate\": %.6f},\n"
      "  \"frame_pool\": {\"acquired\": %llu, \"slabs_created\": %llu, "
      "\"recycled\": %llu, \"oversize\": %llu},\n"
      "  \"network\": {\"frames_delivered\": %llu, \"frames_dropped\": "
      "%llu},\n"
      "  \"simulator\": {\"actions_spilled\": %llu},\n"
      "%s"
      "%s"
      "%s"
      "}\n",
      std::thread::hardware_concurrency(),
      quick_mode() ? "true" : "false", kBenchPayloadBytes, zc_rig.wire.size(),
      static_cast<unsigned long long>(kPackets), legacy.packets_per_sec,
      legacy_allocs_per_frame, zc.packets_per_sec, zc_allocs_per_frame,
      speedup, tel.packets_per_sec, tel_base.packets_per_sec,
      tel_allocs_per_frame, tel_overhead_pct,
      tel_within_5pct ? "true" : "false", spans.packets_per_sec,
      spans_base.packets_per_sec, spans_allocs_per_frame, spans_overhead_pct,
      spans_within_5pct ? "true" : "false",
      static_cast<unsigned long long>(span_events),
      static_cast<unsigned long long>(ss.forwarded),
      static_cast<unsigned long long>(ss.returned),
      static_cast<unsigned long long>(ss.dropped),
      static_cast<unsigned long long>(ss.malformed),
      static_cast<unsigned long long>(ss.unknown_destination),
      static_cast<unsigned long long>(ss.zero_copy_frames),
      static_cast<unsigned long long>(cs.hits),
      static_cast<unsigned long long>(cs.misses), hit_rate,
      static_cast<unsigned long long>(ps.acquired),
      static_cast<unsigned long long>(ps.slabs_created),
      static_cast<unsigned long long>(ps.recycled),
      static_cast<unsigned long long>(ps.oversize),
      static_cast<unsigned long long>(zc_rig.net.frames_delivered()),
      static_cast<unsigned long long>(zc_rig.net.frames_dropped()),
      static_cast<unsigned long long>(zc_rig.sim.actions_spilled()),
      batched_json, chaos_json, sharding_json);
  std::fputs(json, stdout);
  std::fflush(stdout);
  if (!quick_mode()) {
    if (std::FILE* f = std::fopen("BENCH_datapath.json", "w")) {
      std::fputs(json, f);
      std::fclose(f);
    }
  }

  if (zc.allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: zero-copy datapath allocated %llu times over %llu "
                 "frames (expected 0 in steady state)\n",
                 static_cast<unsigned long long>(zc.allocs),
                 static_cast<unsigned long long>(kPackets));
    return 1;
  }
  if (tel.allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: telemetry-enabled datapath allocated %llu times over "
                 "%llu frames (expected 0 in steady state)\n",
                 static_cast<unsigned long long>(tel.allocs),
                 static_cast<unsigned long long>(kPackets));
    return 1;
  }
  if (spans.allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: span-tracing datapath allocated %llu times over "
                 "%llu frames (expected 0 in steady state with the flight "
                 "recorder armed)\n",
                 static_cast<unsigned long long>(spans.allocs),
                 static_cast<unsigned long long>(kPackets));
    return 1;
  }
  if (!quick_mode() && !tel_within_5pct) {
    std::fprintf(stderr,
                 "FAIL: telemetry-enabled datapath ran at %.0f pps vs %.0f "
                 "pps disarmed baseline (%.2f%% overhead, budget 5%%)\n",
                 tel.packets_per_sec, tel_base.packets_per_sec,
                 tel_overhead_pct);
    return 1;
  }
  if (!quick_mode() && !spans_within_5pct) {
    std::fprintf(stderr,
                 "FAIL: span-tracing datapath ran at %.0f pps vs %.0f pps "
                 "disarmed baseline (%.2f%% overhead, budget 5%%)\n",
                 spans.packets_per_sec, spans_base.packets_per_sec,
                 spans_overhead_pct);
    return 1;
  }
  if (sharded_rc != 0) return sharded_rc;
  return batched_rc != 0 ? batched_rc : chaos_rc;
}

// --- google-benchmark cases ----------------------------------------------

void BM_PacketSerializeParse(benchmark::State& state) {
  const auto program = apps::cache_query_program();
  const auto pkt = packet::ActivePacket::make_program(
      1, packet::ArgumentHeader{{1, 2, 3, 4}}, program);
  for (auto _ : state) {
    auto frame = pkt.serialize();
    benchmark::DoNotOptimize(packet::ActivePacket::parse(frame));
  }
}
BENCHMARK(BM_PacketSerializeParse);

void BM_RuntimeCacheQuery(benchmark::State& state) {
  rmt::PipelineConfig cfg;
  rmt::Pipeline pipeline(cfg);
  runtime::ActiveRuntime runtime(pipeline);
  for (u32 s = 0; s < 20; ++s) pipeline.stage(s).install(1, 0, 4096, 0);
  const auto program = apps::cache_query_program();
  for (auto _ : state) {
    auto pkt = packet::ActivePacket::make_program(
        1, packet::ArgumentHeader{{10, 2, 3, 0}}, program);
    benchmark::DoNotOptimize(runtime.execute(pkt));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeCacheQuery);

void BM_RuntimeCacheQueryCompiled(benchmark::State& state) {
  // The zero-mutation hot path: shared CompiledProgram + stack cursor.
  rmt::PipelineConfig cfg;
  rmt::Pipeline pipeline(cfg);
  runtime::ActiveRuntime runtime(pipeline);
  for (u32 s = 0; s < 20; ++s) pipeline.stage(s).install(1, 0, 4096, 0);
  const auto compiled =
      active::CompiledProgram::compile(apps::cache_query_program());
  auto pkt = packet::ActivePacket::make_program(
      1, packet::ArgumentHeader{{10, 2, 3, 0}}, active::Program{});
  active::ExecCursor cursor;
  for (auto _ : state) {
    pkt.arguments->args[0] = 10;
    benchmark::DoNotOptimize(runtime.execute(compiled, pkt, cursor));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeCacheQueryCompiled);

void BM_RuntimeMonitorProgram(benchmark::State& state) {
  rmt::PipelineConfig cfg;
  rmt::Pipeline pipeline(cfg);
  runtime::ActiveRuntime runtime(pipeline);
  for (u32 s = 0; s < 20; ++s) pipeline.stage(s).install(1, 0, 4096, 0);
  const auto program = apps::hh_monitor_program();
  u32 key = 0;
  for (auto _ : state) {
    auto pkt = packet::ActivePacket::make_program(
        1, packet::ArgumentHeader{{++key, key * 3, 0, 0}}, program);
    benchmark::DoNotOptimize(runtime.execute(pkt));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeMonitorProgram);

void BM_ProgramCacheIntern(benchmark::State& state) {
  active::ProgramCache cache;
  const auto program = apps::cache_query_program();
  cache.intern(program);  // warm: every iteration below is a hit
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.intern(program));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProgramCacheIntern);

void BM_HashWords(benchmark::State& state) {
  const std::array<Word, 4> words{1, 2, 3, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rmt::hash_words(words, 1));
  }
}
BENCHMARK(BM_HashWords);

void BM_EnumerateCacheMutants(benchmark::State& state) {
  const auto request = apps::cache_request();
  const alloc::StageGeometry geom{20, 10};
  const auto policy = state.range(0) == 0
                          ? alloc::MutantPolicy::most_constrained()
                          : alloc::MutantPolicy::least_constrained(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alloc::enumerate_mutants(request, geom, policy));
  }
}
BENCHMARK(BM_EnumerateCacheMutants)->Arg(0)->Arg(1);

void BM_AllocateCacheInstance(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    alloc::Allocator allocator({20, 10}, 368);
    for (int i = 0; i < state.range(0); ++i) {
      allocator.allocate(apps::cache_request());
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(allocator.allocate(apps::cache_request()));
  }
}
BENCHMARK(BM_AllocateCacheInstance)->Arg(0)->Arg(20)->Arg(100);

void BM_AssembleListing1(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::cache_query_program());
  }
}
BENCHMARK(BM_AssembleListing1);

}  // namespace
}  // namespace artmt

int main(int argc, char** argv) {
  const int steady_state_rc = artmt::run_steady_state();
  const int e2e_rc = artmt::run_e2e_datapath();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return steady_state_rc != 0 ? steady_state_rc : e2e_rc;
}
