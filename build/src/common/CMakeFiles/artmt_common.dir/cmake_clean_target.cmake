file(REMOVE_RECURSE
  "libartmt_common.a"
)
