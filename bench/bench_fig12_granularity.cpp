// Figure 12: allocation time vs block granularity. 100 arrivals under
// the most-constrained policy for four workloads (pure cache, pure heavy
// hitter, pure load balancer, uniform mix) at granularities from 512 B to
// 8 KB. Finer granularity means more blocks per stage and more
// progressive-filling work per allocation.
#include <cstdio>

#include "harness.hpp"

namespace artmt::bench {
namespace {

// Words per stage stays fixed (94208); granularity determines the block
// count. 1 KB = 256 words.
struct Granularity {
  const char* label;
  u32 blocks_per_stage;
};

constexpr Granularity kGranularities[] = {
    {"512B", 736},
    {"1KB", 368},
    {"2KB", 184},
    {"4KB", 92},
    {"8KB", 46},
};

// Block demands scale with granularity so the byte demand stays fixed
// (the harness requests are expressed in 1-KB blocks).
alloc::AllocationRequest scale_request(const alloc::AllocationRequest& base,
                                       u32 blocks_per_stage) {
  alloc::AllocationRequest out = base;
  for (auto& access : out.accesses) {
    // demand_bytes = demand_blocks(1KB units) * 1KB; rescale to the new
    // block size, rounding up.
    const u64 bytes = static_cast<u64>(access.demand_blocks) * 1024;
    const u64 block_bytes = (368ull * 1024) / blocks_per_stage;
    access.demand_blocks =
        static_cast<u32>((bytes + block_bytes - 1) / block_bytes);
  }
  return out;
}

double run_workload(const char* name, u32 blocks_per_stage, u64 seed) {
  alloc::Allocator allocator(kGeometry, blocks_per_stage,
                             alloc::Scheme::kWorstFit,
                             alloc::MutantPolicy::most_constrained());
  workload::ArrivalProcess process(1.0, 0.0, seed);
  const std::string label(name);
  if (label != "mix") {
    if (label == "cache") process.fix_kind(workload::AppKind::kCache);
    if (label == "hh") process.fix_kind(workload::AppKind::kHeavyHitter);
    if (label == "lb") process.fix_kind(workload::AppKind::kLoadBalancer);
  }
  double total_ms = 0.0;
  u32 arrivals = 0;
  u32 admitted = 0;
  while (arrivals < 100) {
    const auto plan = process.next_epoch();
    for (const auto kind : plan.arrivals) {
      if (arrivals >= 100) break;
      ++arrivals;
      const auto scaled =
          scale_request(request_for(kind), blocks_per_stage);
      const auto outcome = allocator.allocate(scaled);
      total_ms += outcome.search_ms + outcome.assign_ms;
      if (outcome.success) ++admitted;
    }
  }
  std::printf("  %-6s blocks/stage=%-4u total=%8.2f ms admitted=%u/100\n",
              name, blocks_per_stage, total_ms, admitted);
  return total_ms;
}

}  // namespace
}  // namespace artmt::bench

int main() {
  using namespace artmt::bench;
  std::printf(
      "=== Figure 12: allocation time vs granularity (100 arrivals, "
      "most-constrained) ===\n");
  for (const auto& granularity : kGranularities) {
    std::printf("\n## granularity %s\n", granularity.label);
    for (const char* workload : {"cache", "hh", "lb", "mix"}) {
      run_workload(workload, granularity.blocks_per_stage, 11);
    }
  }
  return 0;
}
