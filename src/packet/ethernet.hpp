// Minimal layer-2 framing. Active packets are identified by a dedicated
// EtherType immediately after the standard Ethernet header (the paper uses a
// special VLAN tag; a reserved EtherType is the same mechanism one header
// shorter and keeps interaction with ordinary traffic trivial).
#pragma once

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace artmt::packet {

// 48-bit MAC addresses held in the low bits of a u64.
using MacAddr = u64;

inline constexpr u16 kEtherTypeActive = 0x83b2;  // ActiveRMT capsules
inline constexpr u16 kEtherTypeIpv4 = 0x0800;    // passive traffic

struct EthernetHeader {
  MacAddr dst = 0;
  MacAddr src = 0;
  u16 ethertype = kEtherTypeIpv4;

  static constexpr std::size_t kWireSize = 14;

  void serialize(ByteWriter& out) const;
  // Zero-allocation variant: writes into a caller-sized window.
  void serialize(SpanWriter& out) const;
  static EthernetHeader parse(ByteReader& in);

  friend bool operator==(const EthernetHeader&, const EthernetHeader&) =
      default;
};

}  // namespace artmt::packet
