// Per-stage block accounting (Section 4.1/4.2). Inelastic applications are
// pinned to the beginning of the stage's pool (low block indices) and hold
// fixed contiguous regions; elastic applications share the remaining pool
// [frontier, capacity) with max-min fair contiguous shares computed by
// literal progressive filling. Departing inelastic apps leave holes that
// only new inelastic apps reuse (the fragmentation the paper accepts);
// holes touching the frontier are returned to the elastic pool.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/interval.hpp"
#include "common/types.hpp"

namespace artmt::alloc {

using AppId = u32;

class StageState {
 public:
  explicit StageState(u32 capacity_blocks);

  // --- inelastic applications ---
  // Whether a `demand`-block inelastic region fits (a low hole, or room at
  // the frontier once elastic apps are squeezed to their minimum shares).
  [[nodiscard]] bool inelastic_fits(u32 demand) const;
  void add_inelastic(AppId id, u32 demand);
  void remove_inelastic(AppId id);

  // --- elastic applications ---
  // Whether one more elastic member with the given minimum share fits.
  [[nodiscard]] bool elastic_fits(u32 min_blocks) const;
  void add_elastic(AppId id, u32 min_blocks, u32 cap_blocks = 0);
  void remove_elastic(AppId id);

  // Recomputes elastic shares (progressive filling) and the elastic layout.
  // Must be called after any membership or frontier change; add/remove do
  // it automatically.
  void rebalance();

  // --- queries ---
  [[nodiscard]] const std::map<AppId, Interval>& regions() const {
    return regions_;
  }
  [[nodiscard]] bool has_app(AppId id) const { return regions_.contains(id); }
  [[nodiscard]] u32 capacity() const { return capacity_; }
  [[nodiscard]] u32 allocated_blocks() const;
  [[nodiscard]] u32 free_blocks() const { return capacity_ - allocated_blocks(); }
  // Free blocks plus elastic memory beyond minimum shares -- the paper's
  // "fungible" metric driving worst/best-fit costs.
  [[nodiscard]] u32 fungible_blocks() const;
  [[nodiscard]] u32 elastic_member_count() const {
    return static_cast<u32>(elastic_.size());
  }
  [[nodiscard]] u32 inelastic_member_count() const {
    return static_cast<u32>(inelastic_.size());
  }
  // True when admitting an inelastic `demand` would move the frontier
  // (i.e. disturb elastic members) rather than fill an existing hole.
  [[nodiscard]] bool inelastic_needs_frontier(u32 demand) const;

 private:
  struct ElasticMember {
    AppId id;
    u32 min_blocks;
    u32 cap_blocks;  // 0 = uncapped
  };

  [[nodiscard]] u32 elastic_min_total() const;

  u32 capacity_;
  u32 frontier_ = 0;  // elastic pool is [frontier_, capacity_)
  IntervalSet holes_;  // free blocks below the frontier
  std::map<AppId, Interval> inelastic_;
  std::vector<ElasticMember> elastic_;     // arrival order = layout order
  std::map<AppId, Interval> regions_;      // all apps (derived)
};

}  // namespace artmt::alloc
