// Cheetah load-balancer demo (Appendix B.2): the client installs a VIP
// pool on the switch over the data plane, opens flows with SYN capsules
// (round-robin server selection + cookie stamping), and routes data
// packets statelessly by cookie.
//
// Build & run:  ./build/examples/load_balancer
#include <cstdio>

#include "apps/lb_service.hpp"
#include "apps/server_node.hpp"
#include "client/client_node.hpp"
#include "common/logging.hpp"
#include "controller/switch_node.hpp"

using namespace artmt;

int main() {
  set_log_level(LogLevel::kInfo);

  netsim::Simulator sim;
  netsim::Network net(sim);
  auto sw = std::make_shared<controller::SwitchNode>(
      "switch", controller::SwitchNode::Config{});
  auto client = std::make_shared<client::ClientNode>("client", 0x100, 0xaa);
  net.attach(sw);
  net.attach(client);
  net.connect(*sw, 1, *client, 0);
  sw->bind(0x100, 1);

  // Four backends on switch ports 4..7.
  std::vector<std::shared_ptr<apps::ServerNode>> backends;
  for (u32 i = 0; i < 4; ++i) {
    auto backend = std::make_shared<apps::ServerNode>(
        "backend" + std::to_string(i), 0xdd00 + i);
    net.attach(backend);
    net.connect(*sw, 4 + i, *backend, 0);
    sw->bind(0xdd00 + i, 4 + i);
    backends.push_back(std::move(backend));
  }

  auto lb = std::make_shared<apps::CheetahLbService>("cheetah");
  client->register_service(lb);
  client->on_passive = [&lb](netsim::Frame& frame) {
    const auto msg = apps::KvMessage::parse(std::span<const u8>(frame).subspan(
        packet::EthernetHeader::kWireSize));
    if (msg) lb->handle_cookie_reply(*msg);
  };

  constexpr u32 kFlows = 32;
  u32 opened = 0;
  lb->on_flow_opened = [&](u32 flow, u32 cookie) {
    ++opened;
    if (flow <= 4) {
      std::printf("flow %u opened, cookie=0x%08x\n", flow, cookie);
    }
    // Each flow then sends 10 data packets routed by its cookie.
    for (int i = 0; i < 10; ++i) lb->send_data(flow);
  };
  lb->on_ready = [&] {
    lb->configure({4, 5, 6, 7}, [&] {
      std::printf("[t=%.3fs] VIP pool installed (4 servers)\n",
                  sim.now() / 1e9);
      for (u32 flow = 1; flow <= kFlows; ++flow) lb->open_flow(flow);
    });
  };
  lb->request_allocation();

  sim.run();

  std::printf("\nflows opened: %u/%u\n", opened, kFlows);
  u64 total_data = 0;
  for (u32 i = 0; i < 4; ++i) {
    std::printf("backend %u: %llu SYNs, %llu data packets\n", i,
                static_cast<unsigned long long>(backends[i]->stats().syns_answered),
                static_cast<unsigned long long>(backends[i]->stats().data_packets));
    total_data += backends[i]->stats().data_packets;
  }
  std::printf("data packets delivered: %llu (each flow pinned to the server "
              "its SYN selected)\n",
              static_cast<unsigned long long>(total_data));
  return 0;
}
