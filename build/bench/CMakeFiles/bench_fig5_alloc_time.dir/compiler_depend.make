# Empty compiler generated dependencies file for bench_fig5_alloc_time.
# This may be replaced when dependencies are built.
