// Frame-level network model: nodes with numbered ports joined by
// point-to-point links with latency and line rate. Frames are pooled,
// ref-counted FrameBuf buffers (see common/frame_buf.hpp); the packet
// library defines their contents.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/frame_buf.hpp"
#include "common/types.hpp"
#include "netsim/simulator.hpp"

namespace artmt::netsim {

using Frame = FrameBuf;

class Network;
class ShardedSimulator;

// A device attached to the network. Subclasses implement frame handling;
// the switch, clients, and servers are all Nodes.
class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // Invoked by the network when a frame arrives on `port`. The node owns
  // the buffer; dropping it recycles the slab into the network's pool.
  virtual void on_frame(Frame frame, u32 port) = 0;

  // Called once when the node is attached, before any frames flow.
  virtual void on_attach() {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Network& network() const {
    if (network_ == nullptr) throw UsageError("Node is not attached");
    return *network_;
  }

  // Shard owning this node under a ShardedSimulator (0 in serial mode).
  [[nodiscard]] u32 shard() const { return shard_; }

  // Attach order (stable across runs); with the per-node transmit
  // sequence it identifies every frame the node has ever sent, which is
  // what fault injection keys its deterministic decisions on.
  [[nodiscard]] u32 attach_index() const { return attach_index_; }

  // Shard-confinement check: under a ShardedSimulator, a node's state may
  // only be touched by its owning shard's worker (or by the main thread
  // while the engine is quiescent). Throws UsageError when called from a
  // different shard's worker -- a deterministic tripwire for closures
  // that were scheduled onto the wrong shard's event queue. No-op in
  // serial mode.
  void assert_confined() const;

 private:
  friend class Network;
  friend class ShardedSimulator;
  std::string name_;
  Network* network_ = nullptr;
  u32 shard_ = 0;
  u32 attach_index_ = 0;  // attach order; deterministic drain tie-break
  u64 tx_seq_ = 0;        // per-node transmit sequence (drain tie-break)
  bool shard_assigned_ = false;
};

// Characteristics of one direction of a link.
struct LinkSpec {
  SimTime latency = 1 * kMicrosecond;  // propagation delay
  double gbps = 40.0;                  // line rate (paper testbed: 40 Gbps)
};

// Consulted on every transmit after egress resolution (see
// Network::set_transmit_hook). The hook may drop the frame, mutate its
// bytes in place, duplicate it, or delay it -- the fault-injection layer
// (src/faults) implements this. Contract: the verdict must be a pure
// function of the arguments plus the hook's immutable configuration,
// because under the sharded engine the hook is called concurrently from
// every shard's worker; per-shard mutable state (counters) must be
// indexed by the sending node's shard.
class TransmitHook {
 public:
  virtual ~TransmitHook() = default;

  struct Verdict {
    bool drop = false;        // lose the frame (not counted in
                              // Network::frames_dropped(); the hook keeps
                              // its own books)
    u32 copies = 1;           // > 1 duplicates the frame
    SimTime extra_delay = 0;  // added to the first copy's arrival
    SimTime dup_delay = 0;    // added to every extra copy's arrival
  };

  // `tx_seq` is `from`'s per-node transmit sequence for this frame; with
  // from.attach_index() it uniquely identifies the transmission. `frame`
  // may be mutated (corruption); use `pool` to take a deep copy first if
  // the buffer is shared.
  virtual Verdict on_transmit(const Node& from, const Node& to, SimTime now,
                              u64 tx_seq, Frame& frame, FramePool& pool) = 0;
};

// Owns nodes and links; routes frames between node ports over the virtual
// clock, modelling serialization + propagation delay per frame.
//
// Two drive modes: a serial Simulator (every delivery is scheduled
// directly on the one event queue) or a ShardedSimulator (transmit
// enqueues into per-shard mailboxes drained at the epoch barrier;
// simulator() and pool() resolve to the calling worker's shard so node
// code is mode-agnostic).
class Network {
 public:
  explicit Network(Simulator& sim) : sim_(&sim) {}

  // Sharded mode: per-shard FramePools and delivery counters; transmit
  // routes through the engine's mailboxes. One Network per engine.
  explicit Network(ShardedSimulator& sharded);

  // Attaches a node; the network keeps a non-owning pointer (caller keeps
  // the node alive for the network's lifetime, enforced by shared_ptr).
  void attach(std::shared_ptr<Node> node);

  // Connects node_a's port_a to node_b's port_b bidirectionally.
  void connect(Node& node_a, u32 port_a, Node& node_b, u32 port_b,
               const LinkSpec& spec = {});

  // Transmits a frame out of (node, port); it arrives at the peer after
  // serialization + propagation delay. Silently drops if the port is not
  // connected (an unplugged cable, not an error) — counted in
  // frames_dropped().
  void transmit(Node& from, u32 port, Frame frame);

  // Serial mode: the one Simulator. Sharded mode: the calling worker's
  // shard Simulator (thread-local), or shard 0's while quiescent -- all
  // shard clocks agree between runs, so quiescent now() reads and
  // scheduling against shard 0 are well-defined.
  [[nodiscard]] Simulator& simulator() const {
    if (sharded_ == nullptr) return *sim_;
    return shard_simulator();
  }
  // Buffer arena for the datapath; nodes acquire reply/ingress buffers
  // here so slabs recirculate instead of hitting the heap. Sharded mode:
  // the calling worker's shard pool (slabs never cross threads).
  [[nodiscard]] FramePool& pool() {
    if (sharded_ == nullptr) return pool_;
    return shard_pool();
  }
  // Quiescent-only reads in sharded mode (sum over per-shard blocks).
  [[nodiscard]] u64 frames_delivered() const;
  [[nodiscard]] u64 bytes_delivered() const;
  [[nodiscard]] u64 frames_dropped() const;

  // Mirrors delivery/drop counts into `metrics` under component "netsim"
  // (nullptr detaches). Drops also emit a "frame_dropped" trace event
  // while a telemetry::TraceSink is installed. Sharded mode wires each
  // shard's counters into that shard's registry automatically; calling
  // this there throws UsageError (merge shard registries instead).
  void set_metrics(telemetry::MetricsRegistry* metrics);

  // Installs (or with nullptr removes) the transmit hook. Install while
  // quiescent, before frames flow; the pointer is read on every transmit
  // without synchronization.
  void set_transmit_hook(TransmitHook* hook) { hook_ = hook; }
  [[nodiscard]] TransmitHook* transmit_hook() const { return hook_; }

 private:
  friend class Node;  // assert_confined reads sharded_
  friend class ShardedSimulator;

  struct Endpoint {
    Node* node = nullptr;
    u32 port = 0;
  };
  // One direction of a link: where frames leaving (node, port) arrive.
  struct Egress {
    Endpoint peer;
    LinkSpec spec;
  };
  struct PortKey {
    const Node* node = nullptr;
    u32 port = 0;
    friend bool operator==(const PortKey&, const PortKey&) = default;
  };
  struct PortKeyHash {
    std::size_t operator()(const PortKey& key) const {
      // Splitmix-style scramble of the pointer, folded with the port.
      u64 x = reinterpret_cast<std::uintptr_t>(key.node) + key.port +
              0x9e3779b97f4a7c15ull;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };

  // Per-shard delivery counters, one cache line each so neighbouring
  // shards' workers never share a line. Telemetry handles point into the
  // owning shard's registry (single writer preserved).
  struct alignas(64) ShardCounters {
    u64 delivered = 0;
    u64 bytes = 0;
    u64 dropped = 0;
    telemetry::Counter* m_delivered = nullptr;
    telemetry::Counter* m_bytes = nullptr;
    telemetry::Counter* m_dropped = nullptr;
  };

  // Out-of-line thread-local resolution (netsim/sharded.cpp owns the TLS).
  [[nodiscard]] Simulator& shard_simulator() const;
  [[nodiscard]] FramePool& shard_pool();
  // Runs a delivery on the destination shard's worker: counts it against
  // `shard` and hands the frame to the node. Called by ShardedSimulator.
  void deliver(Node& dest, u32 port, Frame frame, u32 shard);
  // Schedules one copy of a frame for delivery (per-mode: serial event or
  // sharded mailbox message).
  void dispatch(const Endpoint& dest, Node& from, u64 tx_seq, SimTime send,
                SimTime arrival, Frame frame);
  void count_drop(const Node& from, u32 port, std::size_t bytes);

  Simulator* sim_ = nullptr;
  ShardedSimulator* sharded_ = nullptr;
  TransmitHook* hook_ = nullptr;
  FramePool pool_;
  std::vector<std::shared_ptr<Node>> nodes_;
  // (node, port) -> egress direction; built in connect() so transmit()
  // resolves the peer in O(1) instead of scanning every link.
  std::unordered_map<PortKey, Egress, PortKeyHash> egress_;
  u64 frames_delivered_ = 0;
  u64 bytes_delivered_ = 0;
  u64 frames_dropped_ = 0;
  std::vector<ShardCounters> shard_counters_;  // sharded mode only
  telemetry::Counter* m_delivered_ = nullptr;
  telemetry::Counter* m_bytes_ = nullptr;
  telemetry::Counter* m_dropped_ = nullptr;
};

}  // namespace artmt::netsim
