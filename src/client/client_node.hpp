// The client endpoint: a netsim node that owns services, encapsulates
// their capsules onto the wire (the paper's VirtIO shim), and dispatches
// arriving active frames to the right service by FID or negotiation
// sequence number.
//
// Fabric extensions (src/fabric): a per-FID steering table learned from
// allocation responses routes switch-addressed program capsules to the
// owning switch, and a dual-homed client can health-probe its current
// leaf, failing over to the backup uplink after consecutive missed acks
// (the fabric re-learns its location from the first frame out).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "client/service.hpp"
#include "netsim/network.hpp"
#include "packet/active_packet.hpp"

namespace artmt::client {

class ClientNode : public netsim::Node {
 public:
  // `logical_stages` is the switch pipeline depth the compiler synthesizes
  // against (learned out of band; the paper's clients know their switch).
  ClientNode(std::string name, packet::MacAddr mac,
             packet::MacAddr switch_mac, u32 logical_stages = 20);

  void register_service(std::shared_ptr<Service> service);

  // Sends an active packet to the switch (fills Ethernet addressing).
  // Program capsules with a steering entry go to their owning switch
  // instead (identical when no entry exists -- the single-switch case).
  void send_active(packet::ActivePacket pkt);
  // Sends an active packet to an arbitrary destination (e.g. a server).
  void send_active_to(packet::MacAddr dst, packet::ActivePacket pkt);

  void on_frame(netsim::Frame frame, u32 port) override;

  [[nodiscard]] packet::MacAddr mac() const { return mac_; }
  [[nodiscard]] packet::MacAddr switch_mac() const { return switch_mac_; }
  [[nodiscard]] u32 logical_stages() const { return logical_stages_; }
  [[nodiscard]] netsim::Simulator& sim() { return network().simulator(); }

  // --- fabric steering / failover ---
  // Owning-switch MAC learned for `fid` (0 = none; capsules fall back to
  // switch_mac_).
  [[nodiscard]] packet::MacAddr steering_of(Fid fid) const;

  // Dual-homed uplink failover: the client health-probes its current leaf
  // every `interval`; after `miss_threshold` consecutive unanswered
  // probes it toggles to the other uplink (port 0 <-> port 1) and keeps
  // probing the new leaf. `until` bounds the probe train in virtual time
  // so deterministic runs drain. enable_uplink_probe() only installs the
  // config; schedule the first probe_tick() on this node's shard.
  struct UplinkProbeConfig {
    packet::MacAddr primary_mac = 0;  // leaf reachable on uplink port 0
    packet::MacAddr backup_mac = 0;   // leaf reachable on uplink port 1
    SimTime interval = 5 * kMillisecond;
    u32 miss_threshold = 2;
    SimTime until = 0;  // probing stops at this virtual time
  };
  void enable_uplink_probe(const UplinkProbeConfig& config);
  void probe_tick();

  [[nodiscard]] u32 active_uplink() const { return active_uplink_; }
  [[nodiscard]] u64 failovers() const { return failovers_; }

  // Frames no service claimed (e.g. app-level server responses).
  std::function<void(packet::ActivePacket&)> on_unclaimed;
  // Non-active frames.
  std::function<void(netsim::Frame&)> on_passive;

 private:
  packet::MacAddr mac_;
  packet::MacAddr switch_mac_;
  u32 logical_stages_;
  u32 next_seq_ = 1;
  std::vector<std::shared_ptr<Service>> services_;

  // Fabric state (inert in single-switch runs: responses carry src 0, so
  // the steering table stays empty, and nothing arms the probe train).
  std::map<Fid, packet::MacAddr> steering_;
  u32 active_uplink_ = 0;
  UplinkProbeConfig probe_;
  bool probing_ = false;
  bool probe_outstanding_ = false;
  u32 probe_misses_ = 0;
  u32 probe_seq_ = 0;
  u64 failovers_ = 0;
};

}  // namespace artmt::client
