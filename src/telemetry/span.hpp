// Causal span tracing: one span per transmission, threaded through a
// capsule's full lifecycle (client send -> link transit -> parse ->
// execution -> recirculation hops -> reply -> client receive), with
// parent/child links across recirculations and retransmits.
//
// Determinism contract: a span id is derived from the sending node's
// (attach_index, tx_seq) pair -- the same simulation-state-only key the
// fault injector uses -- so ids are byte-identical across the serial and
// sharded engines and across shard counts. Every emitted SpanEvent is a
// pure function of simulation state; the canonical dump sorts the merged
// per-lane buffers over all fields, so the dump bytes are engine- and
// shard-count-invariant too.
//
// Recording is multi-lane single-writer, mirroring the per-shard metric
// registries: each sharded worker appends to its own lane (index set by
// ShardedSimulator::worker_loop through set_span_lane), the serial engine
// and quiescent tool code use lane 0. No locks, no read-modify-write.
#pragma once

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "telemetry/metrics.hpp"

namespace artmt::telemetry {

// Lifecycle phases. The payload fields `a`/`b` are phase-specific:
//   kSend    a = scheduled arrival time, b = frame bytes
//   kDrop    b = frame bytes (transmit-hook loss; the send never dispatched)
//   kParse   (none; materialized-decode path only -- the zero-copy fast
//             path's in-place parse is bounded by kSend arrival + kExec)
//   kExec    a = pipeline passes, b = modeled switch latency (ns)
//   kRecirc  a = 1-based extra pass index
//   kRecv    (none; a client service claimed the delivered frame)
//   kRetry   a = attempt number, b = the rto (ns) that expired
//   kGiveUp  a = attempts consumed
//   kWipe    a = register words wiped (brownout up-edge)
enum class SpanPhase : u16 {
  kSend = 0,
  kDrop = 1,
  kParse = 2,
  kExec = 3,
  kRecirc = 4,
  kRecv = 5,
  kRetry = 6,
  kGiveUp = 7,
  kWipe = 8,
};

[[nodiscard]] const char* span_phase_name(SpanPhase phase);
// Inverse of span_phase_name; false when `name` is unknown.
[[nodiscard]] bool span_phase_from_name(std::string_view name,
                                        SpanPhase* out);

// One lifecycle event. Plain data; every field is simulation-determined.
// Laid out wide-fields-first so the struct packs to exactly 48 bytes --
// the ring and sink stores on the hot path copy whole events, so the
// layout is part of the overhead budget.
struct SpanEvent {
  SimTime ts = 0;      // virtual time the event happened
  u64 span = 0;        // the span this event belongs to
  u64 parent = 0;      // causal parent span (0 = root / none)
  u64 a = 0;           // phase-specific payload (see SpanPhase)
  u64 b = 0;
  i32 fid = kNoFid;    // flow id when known (netsim sends don't parse)
  SpanPhase phase = SpanPhase::kSend;
  u16 node = 0;        // attach index of the node (0 for node-less owners;
                       // u16 -- simulations attach far fewer than 64k nodes)

  friend bool operator==(const SpanEvent&, const SpanEvent&) = default;
};
static_assert(sizeof(SpanEvent) == 48);

// Total order over all fields: the event multiset of a run is
// simulation-determined, so sorting with this yields the same sequence --
// hence the same dump bytes -- no matter how events were spread over lanes.
[[nodiscard]] bool span_event_before(const SpanEvent& a, const SpanEvent& b);

// A transmission's span id: attach order (biased by 1 so the id can never
// be 0, the "no span" sentinel) in the high bits, the sender's per-node
// transmit sequence in the low 40 (enough for ~10^12 frames).
[[nodiscard]] constexpr u64 span_id(u32 attach_index, u64 tx_seq) {
  return ((static_cast<u64>(attach_index) + 1) << 40) |
         (tx_seq & ((1ull << 40) - 1));
}

// Derived child id for recirculation pass `pass` of `parent` (top bit set
// so derived ids never collide with transmission ids).
[[nodiscard]] constexpr u64 recirc_span_id(u64 parent, u32 pass) {
  return 0x8000'0000'0000'0000ull |
         ((parent * 0x100000001b3ull + pass) & ~0x8000'0000'0000'0000ull);
}

// Collects SpanEvents into per-lane single-writer buffers and produces
// the canonical sorted dump. Install via set_span_sink while quiescent.
class SpanSink {
 public:
  explicit SpanSink(u32 lanes = 1);

  // Pre-sizes every lane so steady-state recording never allocates (the
  // bench's 0-allocs/frame gate records through a reserved sink).
  void reserve(std::size_t events_per_lane);

  void record(u32 lane, const SpanEvent& event) {
    lanes_[lane < lanes_.size() ? lane : 0].events.push_back(event);
  }

  void clear();
  [[nodiscard]] u32 lanes() const { return static_cast<u32>(lanes_.size()); }
  [[nodiscard]] u64 recorded() const;

  // Quiescent-only: all lanes merged and canonically sorted.
  [[nodiscard]] std::vector<SpanEvent> sorted_events() const;
  // Canonical JSON-lines dump (one TraceSink-schema line per event).
  void dump(std::ostream& out) const;

 private:
  struct alignas(64) Lane {
    std::vector<SpanEvent> events;
  };
  std::vector<Lane> lanes_;
};

// Serializes events through the existing TraceSink schema: component
// "span", event = phase name, the span/parent/node/a/b payload as fields.
// Shared by SpanSink::dump and the flight recorder's JSON dumps.
void write_span_events(std::ostream& out,
                       const std::vector<SpanEvent>& events);

class FlightRecorder;  // flight_recorder.hpp

// --- process-global emission state ---------------------------------------
// Like the trace sink, span capture is process-global: set_span_sink /
// set_flight_recorder attach consumers while quiescent; spans_active() is
// the one-relaxed-load gate every emission site checks first, so with
// neither attached the hot paths pay a load and a branch.
//
// The globals and per-thread context live in detail:: so the emission
// path (span_emit and the TLS accessors below) inlines into every call
// site -- at ~3 span events per packet, an out-of-line call per access
// is measurable against the 5% overhead gate. Relaxed loads are enough:
// consumers attach while the engines are quiescent, and worker threads
// are started (or released from a barrier) afterwards, which publishes
// the pointed-to state.

namespace detail {
extern std::atomic<bool> g_spans_on;
extern std::atomic<SpanSink*> g_span_sink;
extern std::atomic<FlightRecorder*> g_flight;
extern thread_local u32 tls_span_lane;
extern thread_local u64 tls_current_span;
extern thread_local u64 tls_last_tx_span;
}  // namespace detail

[[nodiscard]] inline bool spans_active() {
  return detail::g_spans_on.load(std::memory_order_relaxed);
}

void set_span_sink(SpanSink* sink);
[[nodiscard]] inline SpanSink* span_sink() {
  return detail::g_span_sink.load(std::memory_order_relaxed);
}
void set_flight_recorder(FlightRecorder* recorder);
[[nodiscard]] inline FlightRecorder* flight_recorder() {
  return detail::g_flight.load(std::memory_order_relaxed);
}

// Routes one event to the attached sink and/or flight recorder, into the
// calling thread's lane. Call only after a spans_active() check. Defined
// inline in flight_recorder.hpp (it needs FlightRecorder::record); every
// emitting translation unit includes that header. Hot-path sites use the
// span_emit_with template there instead, which builds the event in place
// in the ring slot when the recorder is the only consumer.
void span_emit(const SpanEvent& event);

// --- per-thread causal context --------------------------------------------
// The recording lane (shard index under the sharded engine, 0 otherwise).
inline void set_span_lane(u32 lane) { detail::tls_span_lane = lane; }
[[nodiscard]] inline u32 span_lane() { return detail::tls_span_lane; }

// The span whose causal context the current code runs under: set around
// every frame delivery (both engines) and restored by SpanScope in
// deferred-send closures, so a transmit's parent is the delivery (or
// retransmit) that caused it.
[[nodiscard]] inline u64 current_span() { return detail::tls_current_span; }
inline void set_current_span(u64 span) { detail::tls_current_span = span; }

// The span id of the calling thread's most recent transmit (recorded by
// Network::transmit while spans are active). Only meaningful within the
// same event handler as the send: ReliabilityTracker::track reads it right
// after the caller's initial send -- the repo's send-then-track idiom --
// to link retransmit chains without touching any service code.
[[nodiscard]] inline u64 last_tx_span() { return detail::tls_last_tx_span; }
inline void note_tx_span(u64 span) { detail::tls_last_tx_span = span; }

// RAII current-span context (restores the previous span on exit).
class SpanScope {
 public:
  explicit SpanScope(u64 span) : prev_(current_span()) {
    set_current_span(span);
  }
  ~SpanScope() { set_current_span(prev_); }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  u64 prev_;
};

}  // namespace artmt::telemetry
