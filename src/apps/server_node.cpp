#include "apps/server_node.hpp"

#include "common/logging.hpp"

namespace artmt::apps {

ServerNode::ServerNode(std::string name, packet::MacAddr mac)
    : netsim::Node(std::move(name)), mac_(mac) {}

std::optional<u32> ServerNode::get(u64 key) const {
  const auto it = store_.find(key);
  return it == store_.end() ? std::nullopt : std::optional<u32>(it->second);
}

void ServerNode::reply(packet::MacAddr dst, const KvMessage& msg) {
  // Replies are passive frames; the switch forwards them by L2 address.
  // Serialized straight into a pool buffer: the reply path allocates
  // nothing once the pool is warm.
  netsim::Frame frame = network().pool().acquire(
      packet::EthernetHeader::kWireSize + KvMessage::kWireSize);
  SpanWriter out(frame.span());
  packet::EthernetHeader eth;
  eth.src = mac_;
  eth.dst = dst;
  eth.ethertype = packet::kEtherTypeIpv4;
  eth.serialize(out);
  msg.serialize_into(out);
  network().transmit(*this, 0, std::move(frame));
}

void ServerNode::on_frame(netsim::Frame frame, u32 port) {
  (void)port;
  packet::ActivePacket pkt;
  std::span<const u8> payload;
  std::optional<packet::ActivePacket> parsed;
  try {
    parsed = packet::ActivePacket::parse(frame);
    payload = parsed->payload;
  } catch (const ParseError&) {
    // Passive request: payload follows the Ethernet header directly.
    if (frame.size() <= packet::EthernetHeader::kWireSize) {
      ++stats_.ignored;
      return;
    }
    payload = std::span<const u8>(frame).subspan(
        packet::EthernetHeader::kWireSize);
  }
  const packet::MacAddr requester =
      parsed ? parsed->ethernet.src : [&frame] {
        ByteReader in(frame);
        return packet::EthernetHeader::parse(in).src;
      }();

  const auto msg = KvMessage::parse(payload);
  if (!msg) {
    ++stats_.ignored;
    return;
  }
  switch (msg->type) {
    case KvMessage::Type::kGet: {
      ++stats_.gets_served;
      KvMessage response = *msg;
      response.type = KvMessage::Type::kReply;
      if (const auto value = get(msg->key)) response.value = *value;
      reply(requester, response);
      return;
    }
    case KvMessage::Type::kLbSyn: {
      ++stats_.syns_answered;
      KvMessage response = *msg;
      response.type = KvMessage::Type::kLbCookie;
      // The cookie was stamped into args[3] by the select program.
      if (parsed && parsed->arguments) {
        response.value = parsed->arguments->args[3];
      }
      reply(requester, response);
      return;
    }
    case KvMessage::Type::kLbData:
      ++stats_.data_packets;
      return;
    default:
      ++stats_.ignored;
      return;
  }
}

}  // namespace artmt::apps
