file(REMOVE_RECURSE
  "CMakeFiles/test_stage_state.dir/test_stage_state.cpp.o"
  "CMakeFiles/test_stage_state.dir/test_stage_state.cpp.o.d"
  "test_stage_state"
  "test_stage_state.pdb"
  "test_stage_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stage_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
