// Per-stage block accounting (Section 4.1/4.2). Inelastic applications are
// pinned to the beginning of the stage's pool (low block indices) and hold
// fixed contiguous regions; elastic applications share the remaining pool
// [frontier, capacity) with max-min fair contiguous shares computed by
// literal progressive filling. Departing inelastic apps leave holes that
// only new inelastic apps reuse (the fragmentation the paper accepts);
// holes touching the frontier are returned to the elastic pool.
//
// All aggregate queries the allocator's admission search issues per
// candidate stage -- fungible blocks, fit checks, allocated totals -- are
// O(1) reads of incrementally maintained accounting (the hole set keeps a
// size index, and the elastic minima/share totals update on membership
// change), so scoring a mutant never rescans stage membership. Rebalances
// additionally record which members' regions moved (`last_changed`), which
// lets the allocator report disturbed apps without diffing a full
// snapshot of every resident application.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/interval.hpp"
#include "common/types.hpp"

namespace artmt::alloc {

using AppId = u32;

class StageState {
 public:
  explicit StageState(u32 capacity_blocks);

  // --- inelastic applications ---
  // Whether a `demand`-block inelastic region fits (a low hole, or room at
  // the frontier once elastic apps are squeezed to their minimum shares).
  [[nodiscard]] bool inelastic_fits(u32 demand) const;
  void add_inelastic(AppId id, u32 demand);
  void remove_inelastic(AppId id);

  // --- elastic applications ---
  // Whether one more elastic member with the given minimum share fits.
  [[nodiscard]] bool elastic_fits(u32 min_blocks) const;
  void add_elastic(AppId id, u32 min_blocks, u32 cap_blocks = 0);
  void remove_elastic(AppId id);
  // Overrides the member's share cap (0 = uncapped) and rebalances. The
  // migration engine's demotion path squeezes cold members to cap ==
  // min_blocks; promotion restores the request's cap. Throws on an
  // unknown member or a nonzero cap below the member's minimum.
  void set_elastic_cap(AppId id, u32 cap_blocks);

  // Recomputes elastic shares (progressive filling) and the elastic layout.
  // Must be called after any membership or frontier change; add/remove do
  // it automatically.
  void rebalance();

  // --- queries ---
  [[nodiscard]] const std::map<AppId, Interval>& regions() const {
    return regions_;
  }
  [[nodiscard]] bool has_app(AppId id) const { return regions_.contains(id); }
  [[nodiscard]] u32 capacity() const { return capacity_; }
  // O(1): inelastic totals and elastic share totals update incrementally.
  [[nodiscard]] u32 allocated_blocks() const {
    return inelastic_total_ + elastic_share_total_;
  }
  [[nodiscard]] u32 free_blocks() const { return capacity_ - allocated_blocks(); }
  // Free blocks plus elastic memory beyond minimum shares -- the paper's
  // "fungible" metric driving worst/best-fit costs. O(1): algebraically
  // capacity - inelastic_total - elastic_min_total, independent of the
  // current share split.
  [[nodiscard]] u32 fungible_blocks() const {
    return capacity_ - inelastic_total_ - elastic_min_total_;
  }
  // Elastic pool room beyond the resident minima: one more elastic member
  // with min m fits iff m <= elastic_headroom(). O(1).
  [[nodiscard]] u32 elastic_headroom() const {
    return capacity_ - frontier_ - elastic_min_total_;
  }
  // Largest inelastic demand this stage could admit right now (biggest
  // hole, or frontier room once elastic members squeeze to minima). O(1).
  [[nodiscard]] u32 max_inelastic_fit() const;
  // Largest contiguous run of unallocated blocks (fragmentation metric:
  // largest free run / free_blocks). O(1).
  [[nodiscard]] u32 largest_free_run() const;
  [[nodiscard]] u32 elastic_member_count() const {
    return static_cast<u32>(elastic_.size());
  }
  [[nodiscard]] u32 inelastic_member_count() const {
    return static_cast<u32>(inelastic_.size());
  }
  // True when admitting an inelastic `demand` would move the frontier
  // (i.e. disturb elastic members) rather than fill an existing hole.
  [[nodiscard]] bool inelastic_needs_frontier(u32 demand) const;

  // Members whose regions changed in the most recent rebalance (sorted by
  // AppId, no duplicates). Newly added members count as changed; removed
  // members never appear. The allocator unions these across the stages an
  // operation touched to report disturbed apps incrementally.
  [[nodiscard]] const std::vector<AppId>& last_changed() const {
    return changed_;
  }

 private:
  struct ElasticMember {
    AppId id;
    u32 min_blocks;
    u32 cap_blocks;  // 0 = uncapped
  };

  [[nodiscard]] u32 elastic_min_total() const { return elastic_min_total_; }

  u32 capacity_;
  u32 frontier_ = 0;  // elastic pool is [frontier_, capacity_)
  IntervalSet holes_;  // free blocks below the frontier
  std::map<AppId, Interval> inelastic_;
  std::vector<ElasticMember> elastic_;     // arrival order = layout order
  std::map<AppId, Interval> regions_;      // all apps (derived)

  // Incremental accounting (kept in lockstep by add/remove/rebalance).
  u32 inelastic_total_ = 0;      // sum of inelastic region sizes
  u32 elastic_min_total_ = 0;    // sum of elastic minima
  u32 elastic_share_total_ = 0;  // sum of current elastic shares
  u32 layout_end_ = 0;           // end of the last elastic region
  std::vector<AppId> changed_;   // members moved by the last rebalance
};

}  // namespace artmt::alloc
