#include "rmt/register_array.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace artmt::rmt {

RegisterArray::RegisterArray(u32 size) : cells_(size, 0) {}

void RegisterArray::check(u32 index) const {
  if (index >= cells_.size()) {
    throw UsageError("RegisterArray: index " + std::to_string(index) +
                     " out of range (size " + std::to_string(cells_.size()) +
                     ")");
  }
}

Word RegisterArray::read(u32 index) const {
  check(index);
  return cells_[index];
}

void RegisterArray::write(u32 index, Word value) {
  check(index);
  cells_[index] = value;
}

Word RegisterArray::increment(u32 index, Word inc) {
  check(index);
  cells_[index] += inc;  // u32 wrap-around, as on hardware
  return cells_[index];
}

Word RegisterArray::min_read(u32 index, Word operand) const {
  check(index);
  return std::min(cells_[index], operand);
}

std::vector<Word> RegisterArray::dump(u32 start, u32 count) const {
  if (start > cells_.size() || count > cells_.size() - start) {
    throw UsageError("RegisterArray::dump: range out of bounds");
  }
  return {cells_.begin() + start, cells_.begin() + start + count};
}

void RegisterArray::load(u32 start, std::span<const Word> values) {
  if (start > cells_.size() || values.size() > cells_.size() - start) {
    throw UsageError("RegisterArray::load: range out of bounds");
  }
  std::copy(values.begin(), values.end(), cells_.begin() + start);
}

void RegisterArray::fill(u32 start, u32 count, Word value) {
  if (start > cells_.size() || count > cells_.size() - start) {
    throw UsageError("RegisterArray::fill: range out of bounds");
  }
  std::fill(cells_.begin() + start, cells_.begin() + start + count, value);
}

}  // namespace artmt::rmt
