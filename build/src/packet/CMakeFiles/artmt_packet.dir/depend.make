# Empty dependencies file for artmt_packet.
# This may be replaced when dependencies are built.
