// The client endpoint: a netsim node that owns services, encapsulates
// their capsules onto the wire (the paper's VirtIO shim), and dispatches
// arriving active frames to the right service by FID or negotiation
// sequence number.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "client/service.hpp"
#include "netsim/network.hpp"
#include "packet/active_packet.hpp"

namespace artmt::client {

class ClientNode : public netsim::Node {
 public:
  // `logical_stages` is the switch pipeline depth the compiler synthesizes
  // against (learned out of band; the paper's clients know their switch).
  ClientNode(std::string name, packet::MacAddr mac,
             packet::MacAddr switch_mac, u32 logical_stages = 20);

  void register_service(std::shared_ptr<Service> service);

  // Sends an active packet to the switch (fills Ethernet addressing).
  void send_active(packet::ActivePacket pkt);
  // Sends an active packet to an arbitrary destination (e.g. a server).
  void send_active_to(packet::MacAddr dst, packet::ActivePacket pkt);

  void on_frame(netsim::Frame frame, u32 port) override;

  [[nodiscard]] packet::MacAddr mac() const { return mac_; }
  [[nodiscard]] packet::MacAddr switch_mac() const { return switch_mac_; }
  [[nodiscard]] u32 logical_stages() const { return logical_stages_; }
  [[nodiscard]] netsim::Simulator& sim() { return network().simulator(); }

  // Frames no service claimed (e.g. app-level server responses).
  std::function<void(packet::ActivePacket&)> on_unclaimed;
  // Non-active frames.
  std::function<void(netsim::Frame&)> on_passive;

 private:
  packet::MacAddr mac_;
  packet::MacAddr switch_mac_;
  u32 logical_stages_;
  u32 next_seq_ = 1;
  std::vector<std::shared_ptr<Service>> services_;
};

}  // namespace artmt::client
