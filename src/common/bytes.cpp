#include "common/bytes.hpp"

#include <string>

namespace artmt {

void SpanWriter::fail(std::size_t n) const {
  throw UsageError("SpanWriter overrun: need " + std::to_string(n) +
                   " bytes, have " + std::to_string(remaining()));
}

void ByteReader::fail(std::size_t n) const {
  throw ParseError("truncated buffer: need " + std::to_string(n) +
                   " bytes, have " + std::to_string(remaining()));
}

}  // namespace artmt
