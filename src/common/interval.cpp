#include "common/interval.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace artmt {

IntervalSet::IntervalSet(u32 size) {
  if (size > 0) intervals_.push_back(Interval{0, size});
}

void IntervalSet::insert(const Interval& iv) {
  if (iv.empty()) return;
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv,
      [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  // Overlap checks against the neighbors.
  if (it != intervals_.end() && iv.overlaps(*it)) {
    throw UsageError("IntervalSet::insert: overlapping interval");
  }
  if (it != intervals_.begin() && iv.overlaps(*std::prev(it))) {
    throw UsageError("IntervalSet::insert: overlapping interval");
  }
  it = intervals_.insert(it, iv);
  // Coalesce with successor, then predecessor.
  if (auto next = std::next(it);
      next != intervals_.end() && it->end == next->begin) {
    it->end = next->end;
    intervals_.erase(next);
  }
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->end == it->begin) {
      prev->end = it->end;
      intervals_.erase(it);
    }
  }
}

void IntervalSet::remove(const Interval& iv) {
  if (iv.empty()) return;
  for (auto it = intervals_.begin(); it != intervals_.end(); ++it) {
    if (it->begin <= iv.begin && iv.end <= it->end) {
      const Interval left{it->begin, iv.begin};
      const Interval right{iv.end, it->end};
      intervals_.erase(it);
      if (!right.empty()) insert(right);
      if (!left.empty()) insert(left);
      return;
    }
  }
  throw UsageError("IntervalSet::remove: interval not contained");
}

std::optional<Interval> IntervalSet::find_first_fit(u32 size) const {
  for (const auto& iv : intervals_) {
    if (iv.size() >= size) return iv;
  }
  return std::nullopt;
}

std::optional<Interval> IntervalSet::find_best_fit(u32 size) const {
  std::optional<Interval> best;
  for (const auto& iv : intervals_) {
    if (iv.size() >= size && (!best || iv.size() < best->size())) best = iv;
  }
  return best;
}

std::optional<Interval> IntervalSet::find_largest() const {
  std::optional<Interval> best;
  for (const auto& iv : intervals_) {
    if (!best || iv.size() > best->size()) best = iv;
  }
  return best;
}

u32 IntervalSet::total() const {
  u32 sum = 0;
  for (const auto& iv : intervals_) sum += iv.size();
  return sum;
}

bool IntervalSet::contains(const Interval& iv) const {
  if (iv.empty()) return true;
  return std::any_of(intervals_.begin(), intervals_.end(),
                     [&](const Interval& held) {
                       return held.begin <= iv.begin && iv.end <= held.end;
                     });
}

}  // namespace artmt
