// Tests for the RMT substrate: register arrays, stages (match entries,
// TCAM accounting, translation masks), the pipeline, and hash engines.
#include <gtest/gtest.h>

#include "rmt/hash.hpp"
#include "rmt/pipeline.hpp"

namespace artmt::rmt {
namespace {

// ---------- register array ----------

TEST(RegisterArray, ReadWrite) {
  RegisterArray arr(8);
  arr.write(3, 42);
  EXPECT_EQ(arr.read(3), 42u);
  EXPECT_EQ(arr.read(0), 0u);
}

TEST(RegisterArray, OutOfRangeThrows) {
  RegisterArray arr(4);
  EXPECT_THROW((void)arr.read(4), UsageError);
  EXPECT_THROW(arr.write(5, 1), UsageError);
}

TEST(RegisterArray, IncrementReturnsNewValue) {
  RegisterArray arr(2);
  EXPECT_EQ(arr.increment(0, 3), 3u);
  EXPECT_EQ(arr.increment(0, 3), 6u);
}

TEST(RegisterArray, IncrementWrapsLikeHardware) {
  RegisterArray arr(1);
  arr.write(0, 0xffffffff);
  EXPECT_EQ(arr.increment(0, 2), 1u);
}

TEST(RegisterArray, MinRead) {
  RegisterArray arr(1);
  arr.write(0, 10);
  EXPECT_EQ(arr.min_read(0, 7), 7u);
  EXPECT_EQ(arr.min_read(0, 12), 10u);
  EXPECT_EQ(arr.read(0), 10u);  // non-mutating
}

TEST(RegisterArray, DumpLoadFill) {
  RegisterArray arr(10);
  arr.fill(2, 3, 9);
  const auto words = arr.dump(1, 5);
  EXPECT_EQ(words, (std::vector<Word>{0, 9, 9, 9, 0}));
  arr.load(5, std::vector<Word>{1, 2});
  EXPECT_EQ(arr.read(6), 2u);
  EXPECT_THROW((void)arr.dump(8, 5), UsageError);
  EXPECT_THROW(arr.fill(9, 2, 0), UsageError);
}

// ---------- translation mask ----------

TEST(TranslationMask, PowerOfTwoRegion) {
  EXPECT_EQ(translation_mask(0, 256), 255u);
  EXPECT_EQ(translation_mask(100, 356), 255u);
}

TEST(TranslationMask, NonPowerRoundsDown) {
  EXPECT_EQ(translation_mask(0, 300), 255u);
  EXPECT_EQ(translation_mask(0, 255), 127u);
}

TEST(TranslationMask, DegenerateRegions) {
  EXPECT_EQ(translation_mask(5, 5), 0u);
  EXPECT_EQ(translation_mask(5, 6), 0u);
  EXPECT_EQ(translation_mask(5, 7), 1u);
}

// Property: offset + mask always lands inside the region.
TEST(TranslationMask, PropertyStaysInRegion) {
  for (u32 size = 1; size < 1000; size += 7) {
    const Word mask = translation_mask(40, 40 + size);
    EXPECT_LT(40u + mask, 40u + size);
  }
}

// ---------- stage ----------

TEST(Stage, InstallAndLookup) {
  Stage stage(1024, 4);
  ASSERT_TRUE(stage.install(7, 256, 512, 100));
  const FidEntry* entry = stage.lookup(7);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->start_word, 256u);
  EXPECT_EQ(entry->limit_word, 512u);
  EXPECT_EQ(entry->offset, 256u);
  EXPECT_EQ(entry->mask, 255u);
  EXPECT_EQ(entry->advance, 100);
  EXPECT_TRUE(entry->covers(256));
  EXPECT_TRUE(entry->covers(511));
  EXPECT_FALSE(entry->covers(512));
}

TEST(Stage, TcamCapacityEnforced) {
  Stage stage(1024, 2);
  EXPECT_TRUE(stage.install(1, 0, 10));
  EXPECT_TRUE(stage.install(2, 10, 20));
  EXPECT_FALSE(stage.install(3, 20, 30));  // full
  EXPECT_EQ(stage.tcam_used(), 2u);
  // Replacing an existing entry does not consume a new slot.
  EXPECT_TRUE(stage.install(1, 0, 16));
  stage.remove(2);
  EXPECT_TRUE(stage.install(3, 20, 30));
}

TEST(Stage, RemoveIsIdempotent) {
  Stage stage(64, 4);
  stage.install(1, 0, 8);
  stage.remove(1);
  stage.remove(1);
  EXPECT_EQ(stage.lookup(1), nullptr);
}

TEST(Stage, OutOfBoundsRegionThrows) {
  Stage stage(64, 4);
  EXPECT_THROW((void)stage.install(1, 0, 65), UsageError);
  EXPECT_THROW((void)stage.install(1, 10, 5), UsageError);
}

// ---------- pipeline ----------

TEST(Pipeline, DefaultGeometryMatchesPaper) {
  PipelineConfig cfg;
  Pipeline pipe(cfg);
  EXPECT_EQ(pipe.stage_count(), 20u);
  EXPECT_EQ(cfg.blocks_per_stage(), 368u);  // 94208 words / 256-word blocks
  EXPECT_EQ(pipe.total_words(), 94'208ull * 20);
}

TEST(Pipeline, IngressEgressSplit) {
  Pipeline pipe(PipelineConfig{});
  EXPECT_TRUE(pipe.is_ingress(0));
  EXPECT_TRUE(pipe.is_ingress(9));
  EXPECT_FALSE(pipe.is_ingress(10));
  EXPECT_FALSE(pipe.is_ingress(19));
  // Recirculated global stages wrap.
  EXPECT_TRUE(pipe.is_ingress(20));
  EXPECT_FALSE(pipe.is_ingress(35));
}

TEST(Pipeline, BadConfigThrows) {
  PipelineConfig cfg;
  cfg.ingress_stages = 25;
  EXPECT_THROW(Pipeline{cfg}, UsageError);
  cfg = PipelineConfig{};
  cfg.block_words = 0;
  EXPECT_THROW(Pipeline{cfg}, UsageError);
}

TEST(Pipeline, TcamAccounting) {
  PipelineConfig cfg;
  Pipeline pipe(cfg);
  pipe.stage(0).install(1, 0, 10);
  pipe.stage(5).install(1, 0, 10);
  pipe.stage(5).install(2, 10, 20);
  EXPECT_EQ(pipe.total_tcam_used(), 3u);
}

TEST(Pipeline, StageIndexChecked) {
  Pipeline pipe(PipelineConfig{});
  EXPECT_THROW((void)pipe.stage(20), UsageError);
}

// ---------- hash ----------

TEST(Hash, Crc32cKnownVector) {
  // CRC32C("123456789") = 0xE3069283
  const std::string s = "123456789";
  const std::vector<u8> bytes(s.begin(), s.end());
  EXPECT_EQ(crc32c(bytes), 0xe3069283u);
}

TEST(Hash, Deterministic) {
  const std::vector<Word> words{1, 2, 3};
  EXPECT_EQ(hash_words(words), hash_words(words));
}

TEST(Hash, EnginesIndependent) {
  const std::vector<Word> words{42, 43};
  EXPECT_NE(hash_words(words, 0), hash_words(words, 1));
  EXPECT_NE(hash_words(words, 1), hash_words(words, 2));
}

TEST(Hash, SensitiveToInput) {
  EXPECT_NE(hash_words(std::vector<Word>{1, 2}),
            hash_words(std::vector<Word>{2, 1}));
}

TEST(Hash, ReasonablyUniform) {
  // Bucket 10k hashes into 16 bins; no bin should be wildly off 625.
  std::array<int, 16> bins{};
  for (Word i = 0; i < 10000; ++i) {
    const std::vector<Word> words{i, i * 31};
    bins[hash_words(words) % 16]++;
  }
  for (int count : bins) {
    EXPECT_GT(count, 400);
    EXPECT_LT(count, 900);
  }
}

}  // namespace
}  // namespace artmt::rmt
