# Empty compiler generated dependencies file for test_mutant.
# This may be replaced when dependencies are built.
