// Federated control plane for a multi-switch fabric. The GlobalController
// is a netsim::Node that fronts every switch's local controller:
//
//  * Admission proxy -- clients address their control capsules
//    (kAllocRequest / kDealloc / kExtractComplete) to the global
//    controller's MAC. Allocation requests are re-sequenced into a
//    private range and forwarded to the best switch by scoreboard
//    (free blocks, contiguity, hotness pressure); a denial falls through
//    to the next-best candidate before the client ever sees it. The
//    winning switch's response is forwarded back with the client's own
//    sequence number restored and the switch's source MAC preserved, so
//    the client learns data-plane steering (ClientNode::steering_)
//    without any extra protocol.
//
//  * Health epochs -- every `epoch` of virtual time the controller
//    probes each placement switch (kHealthProbe); the ack carries a
//    fabric::Scoreboard. `miss_threshold` consecutive silent epochs
//    declare the switch dead.
//
//  * Failure-driven re-placement -- a death evacuates every service the
//    dead switch owned, in ascending-FID order, by replaying the
//    recorded allocation request onto the best surviving sibling. The
//    re-placement response reaches the client as an ordinary allocation
//    response matched by the service's original sequence number; the
//    client's service accepts the new (different-FID) grant, re-steers,
//    and re-populates its memory -- content recovery is client-driven,
//    exactly like the paper's reallocation handshake. Services with no
//    feasible sibling are parked (counted as state loss) and retried
//    every epoch. An ack from a dead switch revives it; stale residents
//    the fabric no longer places there are reconciled away with
//    deallocations.
//
// Everything is deterministic: switch scan order is registration order,
// evacuations run in FID order, probes ride the simulated clock.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "alloc/request.hpp"
#include "fabric/scoreboard.hpp"
#include "netsim/network.hpp"
#include "packet/active_packet.hpp"

namespace artmt::telemetry {
class MetricsRegistry;
}  // namespace artmt::telemetry

namespace artmt::fabric {

struct FabricMetrics;  // telemetry handle bundle (global_controller.cpp)

// Aggregate fabric outcome for tools and benches (built per call).
struct FabricReport {
  u64 placements = 0;        // successful admissions (incl. re-placements)
  u64 evacuations = 0;       // services whose owner died
  u64 replaced = 0;          // evacuations re-placed on a sibling
  u64 unplaced = 0;          // currently parked (no feasible sibling)
  u64 state_loss_services = 0;  // evacuations that ever sat parked
  u64 switch_deaths = 0;
  u64 revivals = 0;
  std::vector<SimTime> downtimes;  // per re-placed service: death -> grant
};

class GlobalController : public netsim::Node {
 public:
  struct Config {
    packet::MacAddr mac = 0xCC00;
    SimTime epoch = 2 * kMillisecond;   // health-probe period
    u32 miss_threshold = 3;             // silent epochs before "dead"
    // Re-send a re-placement grant for this many epochs after the
    // evacuation: the client may itself be mid-failover when the first
    // copy goes out. Accepting a duplicate grant is idempotent.
    u32 resend_epochs = 1;
    // Evacuation admissions that draw no response within this many
    // epochs (the target died too) are retried on the next candidate.
    u32 evac_timeout_epochs = 2;
    telemetry::MetricsRegistry* metrics = nullptr;
  };

  GlobalController(std::string name, const Config& config);
  ~GlobalController() override;

  // Registers a placement-capable switch (transit-only spines are not
  // registered). Order defines the deterministic scan order. `port` is
  // this node's egress port toward the fabric (one uplink: always 0).
  void add_switch(packet::MacAddr mac, std::string name, u32 port = 0);

  // Seeds a switch's scoreboard before any ack has arrived, so the very
  // first admissions already rank by real capacity instead of piling
  // onto the first registered switch. fabric::Topology seeds every
  // switch it builds at construction time.
  void seed_scoreboard(packet::MacAddr sw, Scoreboard board);

  // Starts the health-epoch train; probes stop once the virtual clock
  // passes `until` (so bounded runs drain). Must run on this node's
  // shard: schedule via ShardedSimulator::schedule_on (or call directly
  // in serial mode before run()).
  void start(SimTime until);

  void on_frame(netsim::Frame frame, u32 port) override;

  // --- queries (quiescent) ---
  [[nodiscard]] packet::MacAddr mac() const { return mac_; }
  [[nodiscard]] u32 switch_count() const {
    return static_cast<u32>(switches_.size());
  }
  [[nodiscard]] bool alive(packet::MacAddr sw) const;
  [[nodiscard]] const Scoreboard* scoreboard_of(packet::MacAddr sw) const;
  // Owning switch of a placed FID (0 = unknown/parked).
  [[nodiscard]] packet::MacAddr owner_of(Fid fid) const;
  [[nodiscard]] u32 placed_count() const {
    return static_cast<u32>(placements_.size());
  }
  [[nodiscard]] u32 unplaced_count() const {
    return static_cast<u32>(unplaced_.size());
  }
  [[nodiscard]] FabricReport report() const;

 private:
  struct SwitchState {
    packet::MacAddr mac = 0;
    std::string name;
    u32 port = 0;
    bool alive = true;
    bool seen = false;  // acked at least once
    bool acked_this_epoch = false;
    u32 misses = 0;
    SimTime last_ack = 0;
    Scoreboard board;
  };

  // One admission in flight toward a switch, keyed by the controller's
  // private sequence number.
  struct PendingAdmit {
    packet::MacAddr client = 0;
    u32 client_seq = 0;
    alloc::AllocationRequest request;
    std::vector<packet::MacAddr> tried;  // switches already asked
    bool evacuation = false;
    SimTime death_time = 0;  // evacuations: owner's declared-dead instant
    bool counted_loss = false;  // this service's park already counted
    u64 issued_epoch = 0;       // evacuation re-try deadline bookkeeping
  };

  // A live service placement.
  struct Placement {
    packet::MacAddr sw = 0;
    packet::MacAddr client = 0;
    u32 client_seq = 0;
    alloc::AllocationRequest request;
  };

  // A service waiting for a feasible sibling (its request is replayed
  // every epoch until one admits it).
  struct Parked {
    packet::MacAddr client = 0;
    u32 client_seq = 0;
    alloc::AllocationRequest request;
    SimTime death_time = 0;
  };

  // A re-placement grant re-sent for a few epochs (client failover race).
  struct Resend {
    packet::ActivePacket pkt;
    u32 epochs_left = 0;
  };

  SwitchState* find_switch(packet::MacAddr mac);
  [[nodiscard]] const SwitchState* find_switch(packet::MacAddr mac) const;
  // Best alive, untried switch for `request` (nullptr = none). Ranking:
  // scoreboard-feasible first, then most free blocks, then least hotness
  // pressure, then registration order.
  SwitchState* pick_switch(const alloc::AllocationRequest& request,
                           const std::vector<packet::MacAddr>& tried);
  void forward_admission(u32 fseq);
  void handle_admission(packet::ActivePacket pkt);
  void handle_response(packet::ActivePacket pkt);
  void handle_health_ack(const packet::ActivePacket& pkt);
  void epoch_tick();
  void declare_dead(SwitchState& sw);
  void evacuate(SwitchState& dead);
  // Queues one evacuation admission for (client, seq, request).
  void replay(packet::MacAddr client, u32 client_seq,
              alloc::AllocationRequest request, SimTime death_time,
              bool counted_loss = false);
  void reconcile(SwitchState& sw);
  void park(PendingAdmit&& admit);
  void send_control(packet::MacAddr dst, packet::ActivePacket pkt);
  // Forwards a packet verbatim except for addressing (src preserved when
  // nonzero, so steering survives the hop).
  void forward(packet::MacAddr dst, packet::ActivePacket pkt);

  packet::MacAddr mac_;
  Config config_;
  u32 port_ = 0;  // fabric uplink
  SimTime until_ = 0;
  bool started_ = false;
  u64 epoch_count_ = 0;
  u32 probe_seq_ = 0;
  u32 next_fseq_;  // private admission sequence range

  std::vector<SwitchState> switches_;
  std::map<u32, PendingAdmit> pending_;   // fseq -> in-flight admission
  std::map<Fid, Placement> placements_;   // fid -> owner
  std::deque<Parked> unplaced_;
  std::vector<Resend> resends_;
  std::vector<SimTime> downtimes_;
  u64 evacuated_total_ = 0;
  u64 replaced_total_ = 0;
  u64 state_loss_total_ = 0;
  u64 deaths_total_ = 0;
  u64 revivals_total_ = 0;
  u64 placements_total_ = 0;

  std::unique_ptr<telemetry::MetricsRegistry> own_registry_;
  std::unique_ptr<FabricMetrics> metrics_;
};

}  // namespace artmt::fabric
