// Mutant enumeration (Section 4.1/4.2). A mutant assigns each memory access
// a global logical-stage index x_i (counting across recirculation passes);
// NOP insertion realizes the assignment. The constraint system is the
// paper's: LB <= x <= UB and A x >= B (consecutive accesses keep at least
// their original instruction distance), plus the ingress restriction on RTS
// when the policy demands it.
#pragma once

#include <functional>
#include <vector>

#include "alloc/request.hpp"
#include "common/types.hpp"

namespace artmt::alloc {

// Stage geometry the enumerator needs.
struct StageGeometry {
  u32 logical_stages = 20;
  u32 ingress_stages = 10;
};

// One candidate placement: x[i] = global logical stage of access i
// (0-based; values >= logical_stages imply recirculation).
using Mutant = std::vector<u32>;

// Derived constraint vectors, exposed for tests and diagnostics; mirrors
// the paper's formulation (LB, UB, minimum distances B).
struct MutantConstraints {
  std::vector<u32> lower_bounds;  // LB
  std::vector<u32> upper_bounds;  // UB
  std::vector<u32> min_gaps;      // B (gap[0] = LB[0])
  u32 total_stage_budget = 0;     // passes * logical_stages
};

MutantConstraints derive_constraints(const AllocationRequest& request,
                                     const StageGeometry& geometry,
                                     const MutantPolicy& policy);

// Enumerates all mutants in lexicographic order (the "systematic
// enumeration sequence" first-fit walks). Throws UsageError on a request
// with unsorted accesses; returns empty when infeasible.
std::vector<Mutant> enumerate_mutants(const AllocationRequest& request,
                                      const StageGeometry& geometry,
                                      const MutantPolicy& policy);

// Visits mutants lazily; stops early when `visit` returns false. Returns
// the number of mutants visited. Used by the allocator's search loop.
u64 for_each_mutant(const AllocationRequest& request,
                    const StageGeometry& geometry, const MutantPolicy& policy,
                    const std::function<bool(const Mutant&)>& visit);

// Per-(access, physical-stage) feasibility oracle for the pruned
// enumeration below: false means access `index` cannot be placed in stage
// `stage` even on its own. Pruning on it is sound because same-stage
// demands collapse to their maximum, so a stage that cannot fit one
// access's demand cannot fit any collapsed demand including it.
using StageFilter = std::function<bool(u32 index, u32 stage)>;

// Pruned enumeration: skips every subtree whose next assignment the
// filter rejects, so mutant counts shrink with stage pressure while the
// surviving mutants appear in the exact lexicographic order of the
// unpruned walk (placement parity with the full enumeration). An empty
// filter degenerates to the plain overload.
u64 for_each_mutant(const AllocationRequest& request,
                    const StageGeometry& geometry, const MutantPolicy& policy,
                    const StageFilter& filter,
                    const std::function<bool(const Mutant&)>& visit);

// Whether a mutant keeps the request's RTS instruction in an ingress
// half-pass (the mutated RTS index inherits the shift of its segment).
bool rts_at_ingress(const AllocationRequest& request,
                    const StageGeometry& geometry, const Mutant& mutant);

// Length of the mutated program (compact length plus inserted NOPs).
u32 mutated_length(const AllocationRequest& request, const Mutant& mutant);

}  // namespace artmt::alloc
