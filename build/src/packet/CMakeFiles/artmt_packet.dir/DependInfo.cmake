
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packet/active_packet.cpp" "src/packet/CMakeFiles/artmt_packet.dir/active_packet.cpp.o" "gcc" "src/packet/CMakeFiles/artmt_packet.dir/active_packet.cpp.o.d"
  "/root/repo/src/packet/ethernet.cpp" "src/packet/CMakeFiles/artmt_packet.dir/ethernet.cpp.o" "gcc" "src/packet/CMakeFiles/artmt_packet.dir/ethernet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/artmt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/active/CMakeFiles/artmt_active.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
