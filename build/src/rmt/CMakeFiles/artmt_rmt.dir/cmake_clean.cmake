file(REMOVE_RECURSE
  "CMakeFiles/artmt_rmt.dir/hash.cpp.o"
  "CMakeFiles/artmt_rmt.dir/hash.cpp.o.d"
  "CMakeFiles/artmt_rmt.dir/pipeline.cpp.o"
  "CMakeFiles/artmt_rmt.dir/pipeline.cpp.o.d"
  "CMakeFiles/artmt_rmt.dir/register_array.cpp.o"
  "CMakeFiles/artmt_rmt.dir/register_array.cpp.o.d"
  "CMakeFiles/artmt_rmt.dir/stage.cpp.o"
  "CMakeFiles/artmt_rmt.dir/stage.cpp.o.d"
  "libartmt_rmt.a"
  "libartmt_rmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmt_rmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
