// Tests for the client compiler (request derivation, mutant synthesis,
// preloading) and the memory-sync capsule builders, including executing
// memsync programs against a real runtime + controller.
#include <gtest/gtest.h>

#include "active/assembler.hpp"
#include "apps/programs.hpp"
#include "client/compiler.hpp"
#include "client/memsync.hpp"
#include "controller/controller.hpp"

namespace artmt::client {
namespace {

using active::Opcode;

// ---------- compiler ----------

TEST(Compiler, BuildRequestDerivesEverything) {
  const auto request = build_request(apps::cache_service_spec());
  EXPECT_EQ(request.program_length, 11u);
  EXPECT_TRUE(request.elastic);
  ASSERT_EQ(request.accesses.size(), 3u);
  EXPECT_EQ(request.accesses[0].position, 1u);
  EXPECT_EQ(request.accesses[0].demand_blocks, 1u);
  EXPECT_EQ(*request.rts_position, 7u);
}

TEST(Compiler, BuildRequestValidates) {
  ServiceSpec spec = apps::cache_service_spec();
  spec.demands = {1, 1};  // wrong arity
  EXPECT_THROW((void)build_request(spec), CompileError);

  ServiceSpec no_access;
  no_access.program = active::assemble("NOP\nRETURN");
  EXPECT_THROW((void)build_request(no_access), CompileError);

  ServiceSpec bad_alias = apps::cache_service_spec();
  bad_alias.aliases = {-1, -1};  // wrong arity
  EXPECT_THROW((void)build_request(bad_alias), CompileError);
}

TEST(Compiler, SynthesizeMutatesAndResolvesBases) {
  const auto spec = apps::cache_service_spec();
  packet::AllocResponseHeader regions;
  regions.regions[2] = {1000, 2000};
  regions.regions[6] = {3000, 4000};
  regions.regions[12] = {500, 600};
  const auto synth = synthesize(spec, {2, 6, 12}, regions, 20);
  const auto analysis = active::analyze(synth.program);
  EXPECT_EQ(analysis.access_positions, (std::vector<u32>{2, 6, 12}));
  EXPECT_EQ(synth.access_base, (std::vector<u32>{1000, 3000, 500}));
  EXPECT_EQ(synth.access_words, (std::vector<u32>{1000, 1000, 100}));
  EXPECT_EQ(synth.bucket_count(), 100u);  // min across coupled stages
}

TEST(Compiler, SynthesizeWrapsRecirculatedStages) {
  const auto spec = apps::cache_service_spec();
  packet::AllocResponseHeader regions;
  regions.regions[1] = {0, 10};
  regions.regions[4] = {0, 10};
  regions.regions[3] = {0, 10};  // global stage 23 -> physical 3
  const auto synth = synthesize(spec, {1, 4, 23}, regions, 20);
  EXPECT_EQ(synth.access_base.size(), 3u);
}

TEST(Compiler, SynthesizeRejectsMissingRegion) {
  const auto spec = apps::cache_service_spec();
  packet::AllocResponseHeader regions;  // nothing allocated
  EXPECT_THROW((void)synthesize(spec, {1, 4, 8}, regions, 20), CompileError);
}

TEST(Compiler, SynthesizeRejectsWrongMutantArity) {
  const auto spec = apps::cache_service_spec();
  packet::AllocResponseHeader regions;
  EXPECT_THROW((void)synthesize(spec, {1, 4}, regions, 20), CompileError);
}

TEST(Compiler, ApplyPreloadStripsLeadingLoads) {
  active::Program p = active::assemble(R"(
      MAR_LOAD $0
      MBR_LOAD $1
      MEM_WRITE
      RETURN
  )");
  apply_preload(p);
  EXPECT_TRUE(p.preload_mar);
  EXPECT_TRUE(p.preload_mbr);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.code()[0].op, Opcode::kMemWrite);
}

TEST(Compiler, ApplyPreloadOnlyMatchesConvention) {
  // MAR_LOAD $2 does not match the $0 convention: untouched.
  active::Program p = active::assemble("MAR_LOAD $2\nMEM_READ\nRETURN");
  apply_preload(p);
  EXPECT_FALSE(p.preload_mar);
  EXPECT_EQ(p.size(), 3u);
}

// ---------- composition ----------

TEST(Compose, CacheQueryDominatesPopulate) {
  // The query's accesses (1,4,8) bind; the preloaded populate program's
  // (0,2,4) are slack. Composite == the query-derived request.
  ServiceSpec populate_spec;
  populate_spec.program = apps::cache_populate_program();
  populate_spec.demands = {1, 1, 1};
  populate_spec.elastic = true;
  const ServiceSpec members[] = {apps::cache_service_spec(), populate_spec};
  const auto composite = compose_request(members);
  const auto query_only = build_request(apps::cache_service_spec());
  ASSERT_EQ(composite.accesses.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(composite.accesses[i].position,
              query_only.accesses[i].position);
  }
  EXPECT_EQ(composite.program_length, query_only.program_length);
  EXPECT_EQ(*composite.rts_position, *query_only.rts_position);
}

TEST(Compose, WiderGapBinds) {
  // Program A: accesses at 1, 3 (gap 2); program B: accesses at 1, 6
  // (gap 5). The composite must honor the larger gap.
  ServiceSpec a;
  a.program = active::assemble("MAR_LOAD $0\nMEM_READ\nNOP\nMEM_READ\nRETURN");
  a.demands = {1, 1};
  ServiceSpec b;
  b.program = active::assemble(
      "MAR_LOAD $0\nMEM_READ\nNOP\nNOP\nNOP\nNOP\nMEM_READ\nRETURN");
  b.demands = {2, 1};
  const ServiceSpec members[] = {a, b};
  const auto composite = compose_request(members);
  EXPECT_EQ(composite.accesses[0].position, 1u);
  EXPECT_EQ(composite.accesses[1].position, 6u);
  EXPECT_EQ(composite.accesses[0].demand_blocks, 2u);  // max of members
}

TEST(Compose, MismatchedMembersRejected) {
  ServiceSpec a = apps::cache_service_spec();
  ServiceSpec b;
  b.program = active::assemble("MAR_LOAD $0\nMEM_READ\nRETURN");
  b.demands = {1};
  const ServiceSpec members[] = {a, b};
  EXPECT_THROW((void)compose_request(members), CompileError);

  ServiceSpec inelastic = apps::cache_service_spec();
  inelastic.elastic = false;
  const ServiceSpec mixed[] = {apps::cache_service_spec(), inelastic};
  EXPECT_THROW((void)compose_request(mixed), CompileError);

  EXPECT_THROW((void)compose_request({}), CompileError);
}

TEST(Compose, SingleMemberIsIdentity) {
  const ServiceSpec members[] = {apps::cache_service_spec()};
  const auto composite = compose_request(members);
  const auto direct = build_request(apps::cache_service_spec());
  EXPECT_EQ(composite.program_length, direct.program_length);
  for (std::size_t i = 0; i < composite.accesses.size(); ++i) {
    EXPECT_EQ(composite.accesses[i].position, direct.accesses[i].position);
  }
}

TEST(Compose, EveryMemberSynthesizableFromCompositePlacements) {
  // Property: any mutant admissible for the composite must be a valid
  // mutation target for each member program.
  ServiceSpec populate_spec;
  populate_spec.program = apps::cache_populate_program();
  populate_spec.demands = {1, 1, 1};
  populate_spec.elastic = true;
  const ServiceSpec members[] = {apps::cache_service_spec(), populate_spec};
  const auto composite = compose_request(members);
  const auto mutants = alloc::enumerate_mutants(
      composite, alloc::StageGeometry{20, 10},
      alloc::MutantPolicy::most_constrained());
  ASSERT_FALSE(mutants.empty());
  for (const auto& mutant : mutants) {
    for (const auto& member : members) {
      EXPECT_NO_THROW((void)active::mutate(member.program, mutant));
    }
  }
}

// ---------- memsync builders ----------

TEST(Memsync, ReadProgramAlignsToStage) {
  for (const u32 stage : {0u, 1u, 5u, 17u}) {
    const auto p = make_read_program({stage, 1234});
    const auto analysis = active::analyze(p);
    ASSERT_EQ(analysis.access_positions.size(), 1u);
    const u32 index = analysis.access_positions[0];
    const u32 effective = index + (p.preload_mar ? 1u : 0u);
    (void)effective;
    // With preload the indices already equal stages.
    EXPECT_EQ(index, stage == 0 ? 0u : stage);
  }
}

TEST(Memsync, WriteProgramAlignsToStage) {
  for (const u32 stage : {0u, 1u, 2u, 9u}) {
    const auto p = make_write_program({stage, 50});
    const auto analysis = active::analyze(p);
    ASSERT_EQ(analysis.access_positions.size(), 1u);
    EXPECT_EQ(analysis.access_positions[0], stage);
    EXPECT_EQ(p.code()[analysis.access_positions[0]].op, Opcode::kMemWrite);
  }
}

TEST(Memsync, PairProgramsHitBothStages) {
  const auto rd = make_read_pair_program({2, 10}, {7, 20});
  const auto a = active::analyze(rd);
  EXPECT_EQ(a.access_positions, (std::vector<u32>{2, 7}));

  const auto wr = make_write_pair_program({3, 10}, {9, 20});
  const auto b = active::analyze(wr);
  EXPECT_EQ(b.access_positions, (std::vector<u32>{3, 9}));
}

TEST(Memsync, PairRejectsBadStageOrder) {
  EXPECT_THROW((void)make_read_pair_program({7, 0}, {7, 0}), UsageError);
  EXPECT_THROW((void)make_read_pair_program({9, 0}, {4, 0}), UsageError);
  // Second stage too close to fit the re-load instructions.
  EXPECT_THROW((void)make_write_pair_program({5, 0}, {6, 0}), UsageError);
}

// ---------- memsync against a live switch ----------

class MemsyncLive : public ::testing::Test {
 protected:
  MemsyncLive()
      : pipeline_(rmt::PipelineConfig{}), runtime_(pipeline_),
        controller_(pipeline_, runtime_) {
    const auto result = controller_.admit(apps::cache_request());
    fid_ = result.fid;
    mutant_ = *controller_.mutant_of(fid_);
    response_ = controller_.response_for(fid_);
  }

  MemRef ref(u32 access, u32 index) const {
    const u32 stage = mutant_[access] % 20;
    return {stage, response_.regions[stage].start_word + index};
  }

  runtime::ExecutionResult run(const active::Program& program,
                               const packet::ArgumentHeader& args,
                               packet::ActivePacket& out) {
    out = packet::ActivePacket::make_program(fid_, args, program);
    // Wire trip to exercise flag encoding.
    out = packet::ActivePacket::parse(out.serialize());
    return runtime_.execute(out);
  }

  rmt::Pipeline pipeline_;
  runtime::ActiveRuntime runtime_;
  controller::Controller controller_;
  Fid fid_ = 0;
  alloc::Mutant mutant_;
  packet::AllocResponseHeader response_;
};

TEST_F(MemsyncLive, WriteThenReadRoundTrips) {
  const MemRef target = ref(0, 17);
  packet::ActivePacket pkt;
  auto res = run(make_write_program(target), write_args(target, 0xabcd), pkt);
  EXPECT_EQ(res.verdict, runtime::Verdict::kReturnToSender);

  res = run(make_read_program(target), read_args(target), pkt);
  EXPECT_EQ(res.verdict, runtime::Verdict::kReturnToSender);
  EXPECT_EQ(pkt.arguments->args[1], 0xabcdu);
}

TEST_F(MemsyncLive, PairWriteReadsBackInOneCapsule) {
  const MemRef first = ref(0, 3);
  const MemRef second = ref(2, 3);
  ASSERT_LT(first.stage, second.stage);
  packet::ActivePacket pkt;
  auto res = run(make_write_pair_program(first, second),
                 write_pair_args(first, 111, second, 222), pkt);
  EXPECT_EQ(res.verdict, runtime::Verdict::kReturnToSender);

  res = run(make_read_pair_program(first, second),
            read_pair_args(first, second), pkt);
  EXPECT_EQ(res.verdict, runtime::Verdict::kReturnToSender);
  EXPECT_EQ(pkt.arguments->args[1], 111u);
  EXPECT_EQ(pkt.arguments->args[3], 222u);
}

TEST_F(MemsyncLive, OutOfRegionWriteDropsNoAck) {
  // One word past the region: protection drops the capsule (the paper's
  // clients detect this as a missing response and retransmit).
  const u32 stage = mutant_[0] % 20;
  const MemRef bad{stage, response_.regions[stage].limit_word};
  packet::ActivePacket pkt;
  const auto res = run(make_write_program(bad), write_args(bad, 1), pkt);
  EXPECT_EQ(res.verdict, runtime::Verdict::kDrop);
}

TEST_F(MemsyncLive, IdempotentRetransmitSafe) {
  const MemRef target = ref(1, 9);
  packet::ActivePacket pkt;
  run(make_write_program(target), write_args(target, 5), pkt);
  run(make_write_program(target), write_args(target, 5), pkt);  // retransmit
  auto res = run(make_read_program(target), read_args(target), pkt);
  EXPECT_EQ(res.verdict, runtime::Verdict::kReturnToSender);
  EXPECT_EQ(pkt.arguments->args[1], 5u);
}

}  // namespace
}  // namespace artmt::client
