#include "active/program.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace artmt::active {

u8 Instruction::flag_byte() const {
  u8 flags = static_cast<u8>(operand & 0x07);
  flags |= static_cast<u8>((label & 0x0f) << 3);
  if (done) flags |= 0x80;
  return flags;
}

Instruction Instruction::from_bytes(u8 opcode_byte, u8 flag_byte) {
  Instruction insn;
  insn.op = static_cast<Opcode>(opcode_byte);
  insn.operand = flag_byte & 0x07;
  insn.label = (flag_byte >> 3) & 0x0f;
  insn.done = (flag_byte & 0x80) != 0;
  return insn;
}

void Program::serialize(ByteWriter& out) const {
  for (const auto& insn : code_) {
    out.put_u8(static_cast<u8>(insn.op));
    out.put_u8(insn.flag_byte());
  }
  out.put_u8(static_cast<u8>(Opcode::kEof));
  out.put_u8(0);
}

Program Program::parse(ByteReader& in) {
  Program program;
  for (;;) {
    const u8 op = in.get_u8();
    const u8 flags = in.get_u8();
    if (opcode_info(op) == nullptr) {
      throw ParseError("Program::parse: unknown opcode byte " +
                       std::to_string(op));
    }
    if (static_cast<Opcode>(op) == Opcode::kEof) return program;
    program.push(Instruction::from_bytes(op, flags));
  }
}

std::string Program::to_text() const {
  std::ostringstream os;
  for (const auto& insn : code_) {
    if (insn.label != 0 && opcode_info(insn.op)->operand != OperandKind::kLabel) {
      os << "L" << static_cast<int>(insn.label) << ": ";
    }
    os << mnemonic(insn.op);
    const OpcodeInfo* info = opcode_info(insn.op);
    if (info->operand == OperandKind::kArgIndex) {
      os << " $" << static_cast<int>(insn.operand);
    } else if (info->operand == OperandKind::kLabel) {
      os << " L" << static_cast<int>(insn.label);
    }
    os << "\n";
  }
  return os.str();
}

ProgramAnalysis analyze(const Program& program) {
  ProgramAnalysis out;
  out.length = static_cast<u32>(program.size());
  for (u32 i = 0; i < program.size(); ++i) {
    const Instruction& insn = program.code()[i];
    const OpcodeInfo* info = opcode_info(insn.op);
    if (info == nullptr) throw UsageError("analyze: unknown opcode in program");
    if (info->memory_access) out.access_positions.push_back(i);
    if (insn.op == Opcode::kRts || insn.op == Opcode::kCrts) {
      out.rts_positions.push_back(i);
    }
    if (insn.op == Opcode::kFork) out.fork_positions.push_back(i);
    if (info->branch) {
      // The target must exist strictly after this instruction.
      const u8 target = insn.label;
      const bool found = std::any_of(
          program.code().begin() + i + 1, program.code().end(),
          [target](const Instruction& t) { return t.label == target; });
      if (target == 0 || !found) out.branches_forward = false;
    }
  }
  return out;
}

Program mutate(const Program& program, std::span<const u32> stage_of_access) {
  const ProgramAnalysis analysis = analyze(program);
  if (stage_of_access.size() != analysis.access_positions.size()) {
    throw UsageError("mutate: stage vector size != number of memory accesses");
  }
  Program out;
  out.preload_mar = program.preload_mar;
  out.preload_mbr = program.preload_mbr;
  std::size_t next_access = 0;
  u32 emitted = 0;
  for (u32 i = 0; i < program.size(); ++i) {
    const Instruction& insn = program.code()[i];
    if (next_access < stage_of_access.size() &&
        i == analysis.access_positions[next_access]) {
      const u32 target = stage_of_access[next_access];
      if (target < emitted) {
        throw UsageError(
            "mutate: target stage precedes instructions already emitted");
      }
      while (emitted < target) {
        out.push(Instruction{Opcode::kNop});
        ++emitted;
      }
      ++next_access;
    }
    out.push(insn);
    ++emitted;
  }
  return out;
}

}  // namespace artmt::active
