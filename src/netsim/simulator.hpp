// Discrete-event simulation core: a virtual nanosecond clock and an ordered
// event queue. All testbed experiments (Figs. 8b, 9, 10) run on this engine
// so results are deterministic and independent of host load.
//
// Events store their captures inline (small-buffer optimization) instead of
// through std::function, whose ~2-word inline budget heap-allocates every
// frame-delivery closure (this + endpoint + FrameBuf). The steady-state
// datapath schedules and runs events with zero heap traffic.
#pragma once

#include <cstddef>
#include <limits>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace artmt::telemetry {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace artmt::telemetry

namespace artmt::netsim {

// Move-only type-erased callable with a large inline capture buffer.
// Callables bigger than kInlineBytes fall back to the heap (counted by the
// simulator for the bench's allocation accounting).
class InlineAction {
 public:
  // Generous: a frame delivery captures Network* + Endpoint + FrameBuf
  // (~40 bytes); control-plane closures carry a few words more.
  static constexpr std::size_t kInlineBytes = 96;

  InlineAction() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::remove_cvref_t<F>, InlineAction>>>
  InlineAction(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "InlineAction requires a void() callable");
    if constexpr (fits_inline<Fn>()) {
      ::new (storage_) Fn(std::forward<F>(fn));
      vt_ = &vtable_inline<Fn>;
    } else {
      ::new (storage_) Fn*(new Fn(std::forward<F>(fn)));
      vt_ = &vtable_heap<Fn>;
    }
  }

  InlineAction(InlineAction&& other) noexcept { move_from(other); }
  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }
  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;
  ~InlineAction() { destroy(); }

  void operator()() { vt_->invoke(storage_); }
  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }
  [[nodiscard]] bool heap_allocated() const {
    return vt_ != nullptr && vt_->heap;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
    bool heap;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr VTable vtable_inline{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
      false,
  };

  template <typename Fn>
  static constexpr VTable vtable_heap{
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* p) { delete *static_cast<Fn**>(p); },
      true,
  };

  void destroy() {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }
  void move_from(InlineAction& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(storage_, other.storage_);
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

class Simulator {
 public:
  using Action = InlineAction;

  // Returned by next_event_time() when the queue is empty.
  static constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();

  // Schedules `action` to run at absolute virtual time `at` (>= now).
  // Events at equal times run in scheduling order (FIFO).
  void schedule_at(SimTime at, Action action);

  // Schedules `action` `delay` nanoseconds from now.
  void schedule_after(SimTime delay, Action action);

  // Schedules a frame-delivery event carrying its canonical ordering key:
  // ties at equal `at` resolve by (send time, sender attach index, sender
  // tx sequence) -- all derived from simulation state, never from when
  // the event object was materialized. Every engine (serial, sharded
  // mailbox drain, same-shard direct) schedules deliveries through this,
  // so the dispatch order of same-timestamp deliveries is identical no
  // matter which path created them. Deliveries sort ahead of plain events
  // whose tie (scheduling time) equals their send time.
  void schedule_delivery(SimTime at, SimTime send, u32 src_index, u64 tx_seq,
                         Action action);

  // Runs events until the queue drains or the clock would pass `until`.
  // Events scheduled exactly at `until` are executed.
  void run_until(SimTime until);

  // Runs until the queue is empty.
  void run();

  // Runs events with `at < end` (kNoEvent drains the queue) WITHOUT
  // advancing the clock to `end` -- the clock stays at the last
  // dispatched event. The sharded engine's epoch loop uses this so a
  // shard's clock never outruns its own events.
  void run_window(SimTime end);

  // Executes at most one event; returns false if the queue was empty.
  // Flushes the attached metrics registry (dispatch count, queue depth)
  // so single-stepping callers never read stale values.
  bool step();

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] u64 events_dispatched() const { return events_dispatched_; }
  // Timestamp of the earliest pending event, kNoEvent when idle. The
  // sharded engine uses this to pick the next epoch window.
  [[nodiscard]] SimTime next_event_time() const {
    return queue_.empty() ? kNoEvent : queue_.front().at;
  }
  // Scheduled actions whose captures exceeded the inline buffer (each one
  // cost a heap allocation); the frame fast path should keep this at zero.
  [[nodiscard]] u64 actions_spilled() const { return actions_spilled_; }

  // Mirrors dispatch/spill counts and the queue-depth gauge into
  // `metrics` under component "netsim" (nullptr detaches). Dispatch count
  // and queue depth are flushed at run()/run_until()/step() boundaries
  // rather than per event inside the run loops, keeping the per-event
  // cost off the frame hot path.
  void set_metrics(telemetry::MetricsRegistry* metrics);

 private:
  // Sentinel src_index for non-delivery events: sorts them after any
  // delivery sharing (at, tie), so a closure scheduled at time t never
  // runs before a frame that was already in flight toward t.
  static constexpr u32 kNoSrc = 0xffff'ffffu;

  struct Event {
    SimTime at;
    // Canonical tie-break chain below `at`. Plain events carry tie = the
    // clock when they were scheduled (non-decreasing with seq, so FIFO
    // order among them is unchanged); deliveries carry tie = send time
    // plus the (src_index, tx_seq) transmission identity.
    SimTime tie;
    u32 src_index;
    u64 tx_seq;
    u64 seq;  // final tie-break: FIFO in scheduling order
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.tie != b.tie) return a.tie > b.tie;
      if (a.src_index != b.src_index) return a.src_index > b.src_index;
      if (a.tx_seq != b.tx_seq) return a.tx_seq > b.tx_seq;
      return a.seq > b.seq;
    }
  };

  void push_event(SimTime at, SimTime tie, u32 src_index, u64 tx_seq,
                  Action action);
  bool dispatch_one();
  void flush_metrics();

  SimTime now_ = 0;
  u64 next_seq_ = 0;
  u64 actions_spilled_ = 0;
  u64 events_dispatched_ = 0;
  u64 dispatched_flushed_ = 0;
  telemetry::Counter* m_dispatched_ = nullptr;
  telemetry::Counter* m_spilled_ = nullptr;
  telemetry::Gauge* m_queue_depth_ = nullptr;
  // Min-heap managed with std::push_heap/pop_heap (Later makes the earliest
  // event the front element) so step() can move the Event — and its inline
  // action — out of the container instead of copying it.
  std::vector<Event> queue_;
};

}  // namespace artmt::netsim
