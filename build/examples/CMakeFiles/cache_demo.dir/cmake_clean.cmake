file(REMOVE_RECURSE
  "CMakeFiles/cache_demo.dir/cache_demo.cpp.o"
  "CMakeFiles/cache_demo.dir/cache_demo.cpp.o.d"
  "cache_demo"
  "cache_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
