#include "telemetry/heatmap.hpp"

#include <algorithm>
#include <ostream>
#include <string>

namespace artmt::telemetry {

std::vector<StageHeatmap::Cell>* StageHeatmap::row_slow(i32 fid) {
  auto it = rows_.find(fid);
  if (it == rows_.end()) {
    it = rows_.emplace(fid, std::vector<Cell>(stages_)).first;
  }
  memo_fid_ = fid;
  memo_row_ = &it->second;
  return memo_row_;
}

std::vector<i32> StageHeatmap::fids() const {
  std::vector<i32> out;
  out.reserve(rows_.size());
  for (const auto& [fid, row] : rows_) out.push_back(fid);
  return out;
}

const StageHeatmap::Cell* StageHeatmap::find(u32 stage, i32 fid) const {
  const auto it = rows_.find(fid);
  if (it == rows_.end() || stage >= stages_) return nullptr;
  return &it->second[stage];
}

u64 StageHeatmap::total_accesses(i32 fid) const {
  const auto it = rows_.find(fid);
  if (it == rows_.end()) return 0;
  u64 total = 0;
  for (const Cell& cell : it->second) {
    total += cell.reads + cell.writes + cell.collisions;
  }
  return total;
}

void StageHeatmap::merge_from(const StageHeatmap& other) {
  for (const auto& [fid, row] : other.rows_) {
    auto it = rows_.find(fid);
    if (it == rows_.end()) {
      it = rows_.emplace(fid, std::vector<Cell>(stages_)).first;
    }
    const u32 limit =
        static_cast<u32>(std::min(it->second.size(), row.size()));
    for (u32 s = 0; s < limit; ++s) {
      it->second[s].reads += row[s].reads;
      it->second[s].writes += row[s].writes;
      it->second[s].collisions += row[s].collisions;
    }
  }
  memo_fid_ = std::numeric_limits<i32>::min();
  memo_row_ = nullptr;
}

void StageHeatmap::clear() {
  rows_.clear();
  memo_fid_ = std::numeric_limits<i32>::min();
  memo_row_ = nullptr;
}

void StageHeatmap::export_metrics(MetricsRegistry& out) const {
  for (const auto& [fid, row] : rows_) {
    for (u32 s = 0; s < row.size(); ++s) {
      const Cell& cell = row[s];
      const std::string stage = "s" + std::to_string(s);
      if (cell.reads != 0) {
        out.counter("heatmap", stage + "_reads", fid).merge_add(cell.reads);
      }
      if (cell.writes != 0) {
        out.counter("heatmap", stage + "_writes", fid).merge_add(cell.writes);
      }
      if (cell.collisions != 0) {
        out.counter("heatmap", stage + "_collisions", fid)
            .merge_add(cell.collisions);
      }
    }
  }
}

void StageHeatmap::snapshot_json(std::ostream& out) const {
  // {"<fid>":{"<stage>":{"r":..,"w":..,"c":..},...},...} with ascending
  // keys and zero-activity cells elided -- deterministic bytes for a given
  // cell multiset, which is all the engine-equivalence tests compare.
  out << '{';
  bool first_fid = true;
  for (const auto& [fid, row] : rows_) {
    bool any = false;
    for (const Cell& cell : row) {
      if (cell != Cell{}) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    if (!first_fid) out << ',';
    first_fid = false;
    out << '"' << fid << "\":{";
    bool first_stage = true;
    for (u32 s = 0; s < row.size(); ++s) {
      const Cell& cell = row[s];
      if (cell == Cell{}) continue;
      if (!first_stage) out << ',';
      first_stage = false;
      out << '"' << s << "\":{\"r\":" << cell.reads
          << ",\"w\":" << cell.writes << ",\"c\":" << cell.collisions << '}';
    }
    out << '}';
  }
  out << "}\n";
}

void HotnessTable::observe(const StageHeatmap& heatmap) {
  for (const i32 fid : heatmap.fids()) {
    const u64 total = heatmap.total_accesses(fid);
    State& state = states_[fid];
    const u64 delta = total >= state.last_total ? total - state.last_total
                                                : total;  // heatmap cleared
    state.score += delta;
    state.last_total = total;
  }
}

void HotnessTable::decay() {
  for (auto& [fid, state] : states_) state.score >>= shift_;
}

u64 HotnessTable::score(i32 fid) const {
  const auto it = states_.find(fid);
  return it == states_.end() ? 0 : it->second.score;
}

std::vector<std::pair<i32, u64>> HotnessTable::ranked() const {
  std::vector<std::pair<i32, u64>> out;
  out.reserve(states_.size());
  for (const auto& [fid, state] : states_) out.emplace_back(fid, state.score);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace artmt::telemetry
