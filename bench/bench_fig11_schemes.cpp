// Figure 11: allocation-scheme comparison (worst fit, first fit, best
// fit, realloc) over the simulated arrival/departure workload: 100
// epochs, Poisson(2)/Poisson(1), uniform app mix, 10 trials. Reports the
// distribution (box statistics) of utilization, percentage of elastic
// apps reallocated, fairness, and allocation failure rate across all
// epochs and trials.
#include <cstdio>

#include "harness.hpp"
#include "stats/summary.hpp"

namespace artmt::bench {
namespace {

void run_scheme(alloc::Scheme scheme) {
  std::vector<double> utilization;
  std::vector<double> realloc_pct;
  std::vector<double> fairness;
  std::vector<double> failure_rate;
  for (u32 trial = 0; trial < 10; ++trial) {
    ChurnConfig config;
    config.epochs = 100;
    config.seed = 300 + trial;
    const auto metrics =
        run_churn(config, scheme, alloc::MutantPolicy::most_constrained());
    for (const auto& m : metrics) {
      utilization.push_back(m.utilization);
      if (m.elastic_residents > 0) {
        realloc_pct.push_back(100.0 * m.reallocated / m.elastic_residents);
      }
      fairness.push_back(m.fairness);
      if (m.arrivals > 0) {
        failure_rate.push_back(static_cast<double>(m.failures) / m.arrivals);
      }
    }
  }
  std::printf("\n### scheme: %s\n", alloc::scheme_name(scheme));
  std::printf("utilization:   %s\n", stats::summarize(utilization).to_string().c_str());
  std::printf("realloc %%:     %s\n", stats::summarize(realloc_pct).to_string().c_str());
  std::printf("fairness:      %s\n", stats::summarize(fairness).to_string().c_str());
  std::printf("failure rate:  %s\n", stats::summarize(failure_rate).to_string().c_str());
}

}  // namespace
}  // namespace artmt::bench

int main() {
  std::printf(
      "=== Figure 11: allocation schemes (100 epochs x 10 trials, "
      "most-constrained) ===\n");
  for (const auto scheme :
       {artmt::alloc::Scheme::kWorstFit, artmt::alloc::Scheme::kFirstFit,
        artmt::alloc::Scheme::kBestFit, artmt::alloc::Scheme::kRealloc}) {
    artmt::bench::run_scheme(scheme);
  }
  return 0;
}
