
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/allocator.cpp" "src/alloc/CMakeFiles/artmt_alloc.dir/allocator.cpp.o" "gcc" "src/alloc/CMakeFiles/artmt_alloc.dir/allocator.cpp.o.d"
  "/root/repo/src/alloc/mutant.cpp" "src/alloc/CMakeFiles/artmt_alloc.dir/mutant.cpp.o" "gcc" "src/alloc/CMakeFiles/artmt_alloc.dir/mutant.cpp.o.d"
  "/root/repo/src/alloc/stage_state.cpp" "src/alloc/CMakeFiles/artmt_alloc.dir/stage_state.cpp.o" "gcc" "src/alloc/CMakeFiles/artmt_alloc.dir/stage_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/artmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
