#include "client/service.hpp"

#include "client/client_node.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "proto/wire.hpp"

namespace artmt::client {

namespace {

// The ExtractComplete resend schedule: a handful of quick retries inside
// the switch's extraction timeout window (CostModel::extraction_timeout,
// 1 s by default; testbeds shrink it), then the switch's own deadline
// takes over via force_finalize.
ReliabilityTracker::Options handshake_options() {
  ReliabilityTracker::Options opts;
  opts.rto = 20 * kMillisecond;
  opts.max_rto = 160 * kMillisecond;
  opts.retry_budget = 8;
  return opts;
}

}  // namespace

Service::Service(std::string name, ServiceSpec spec)
    : name_(std::move(name)),
      spec_(std::move(spec)),
      handshake_retry_(
          "handshake", [this]() -> netsim::Simulator& { return node().sim(); },
          handshake_options()) {}

ClientNode& Service::node() const {
  if (node_ == nullptr) throw UsageError("Service not attached to a client");
  return *node_;
}

void Service::request_allocation() {
  if (state_ != State::kIdle && state_ != State::kDenied) {
    throw UsageError("Service::request_allocation: not idle");
  }
  state_ = State::kNegotiating;
  node().send_active(proto::encode_request(allocation_request(), seq_));
  log(LogLevel::kInfo, "service ", name_, ": allocation requested");
}

void Service::release() {
  if (state_ != State::kOperational && state_ != State::kMemoryManagement) {
    throw UsageError("Service::release: not operational");
  }
  node().send_active(
      packet::ActivePacket::make_control(fid_, packet::ActiveType::kDealloc));
  log(LogLevel::kInfo, "service ", name_, ": release requested");
}

void Service::send_program(const active::Program& program,
                          const packet::ArgumentHeader& args,
                          std::vector<u8> payload, bool management,
                          packet::MacAddr dst) {
  if (fid_ == 0) throw UsageError("Service::send_program: no allocation");
  packet::ActivePacket pkt =
      packet::ActivePacket::make_program(fid_, args, program);
  if (management) pkt.initial.flags |= packet::kFlagManagement;
  pkt.payload = std::move(payload);
  if (dst == 0) {
    node().send_active(std::move(pkt));
  } else {
    node().send_active_to(dst, std::move(pkt));
  }
}

void Service::send_program(const SynthesizedProgram& synth,
                          const packet::ArgumentHeader& args,
                          std::vector<u8> payload, bool management,
                          packet::MacAddr dst) {
  if (!synth.compiled) {
    send_program(synth.program, args, std::move(payload), management, dst);
    return;
  }
  if (fid_ == 0) throw UsageError("Service::send_program: no allocation");
  packet::ActivePacket pkt =
      packet::ActivePacket::make_program(fid_, args, synth.compiled);
  if (management) pkt.initial.flags |= packet::kFlagManagement;
  pkt.payload = std::move(payload);
  if (dst == 0) {
    node().send_active(std::move(pkt));
  } else {
    node().send_active_to(dst, std::move(pkt));
  }
}

void Service::extraction_done() {
  if (state_ != State::kMemoryManagement) {
    throw UsageError("Service::extraction_done: not in memory management");
  }
  node().send_active(packet::ActivePacket::make_control(
      fid_, packet::ActiveType::kExtractComplete));
  // The implicit ack is the switch's new AllocResponse; until it arrives
  // (still kMemoryManagement) the control packet is resent -- it is
  // idempotent on the switch, so a lost ExtractComplete no longer stalls
  // the admission until the extraction timeout.
  handshake_retry_.track(kHandshakeId, [this](u32, u32) {
    if (state_ != State::kMemoryManagement) return;
    node().send_active(packet::ActivePacket::make_control(
        fid_, packet::ActiveType::kExtractComplete));
  });
}

void Service::accept_allocation(const packet::ActivePacket& pkt) {
  fid_ = pkt.initial.fid;
  mutant_ = proto::decode_mutant(pkt);
  regions_ = *pkt.response;
  synthesized_ =
      synthesize(spec_, *mutant_, *regions_, node().logical_stages());
  state_ = State::kOperational;
}

void Service::handle_active(packet::ActivePacket& pkt) {
  switch (pkt.initial.type) {
    case packet::ActiveType::kAllocResponse: {
      handshake_retry_.ack(kHandshakeId);  // no-op outside the handshake
      if ((pkt.initial.flags & packet::kFlagAllocFailed) != 0) {
        state_ = State::kDenied;
        log(LogLevel::kWarn, "service ", name_, ": allocation denied");
        on_denied();
        return;
      }
      const bool first = state_ == State::kNegotiating;
      accept_allocation(pkt);
      if (first) {
        log(LogLevel::kInfo, "service ", name_, ": operational, fid=", fid_);
        on_operational();
      } else {
        log(LogLevel::kInfo, "service ", name_, ": allocation moved");
        on_moved();
      }
      return;
    }
    case packet::ActiveType::kReallocNotice:
      state_ = State::kMemoryManagement;
      handshake_retry_.cancel(kHandshakeId);  // fresh handshake
      log(LogLevel::kInfo, "service ", name_, ": realloc notice");
      on_realloc_notice();
      return;
    case packet::ActiveType::kDeallocAck:
      handshake_retry_.cancel(kHandshakeId);
      state_ = State::kReleased;
      log(LogLevel::kInfo, "service ", name_, ": released");
      on_released();
      return;
    case packet::ActiveType::kProgram:
      on_returned(pkt);
      return;
    default:
      return;
  }
}

}  // namespace artmt::client
