#include "fabric/topology.hpp"

#include "netsim/sharded.hpp"

namespace artmt::fabric {

packet::MacAddr Topology::leaf_mac(u32 i) const {
  return kLeafMacBase + i;
}

packet::MacAddr Topology::spine_mac(u32 j) const {
  return kSpineMacBase + j;
}

Topology::Topology(netsim::Network& net, const TopologyConfig& config)
    : net_(&net), config_(config) {
  if (config.leaves < 2) throw UsageError("Topology: need >= 2 leaves");
  if (config.spines < 1) throw UsageError("Topology: need >= 1 spine");
  if (config.leaves + config.spines > 200)
    throw UsageError("Topology: too many switches for the FID ranges");

  const u32 leaves = config.leaves;
  const u32 spines = config.spines;

  auto make_switch = [&](const std::string& name, packet::MacAddr mac,
                         Fid fid_base) {
    controller::SwitchNode::Config cfg = config.switch_config;
    cfg.mac = mac;
    cfg.l2_learning = true;
    cfg.fid_base = fid_base;
    auto node = std::make_shared<controller::SwitchNode>(name, cfg);
    net.attach(node);
    return node;
  };

  for (u32 i = 0; i < leaves; ++i) {
    leaves_.push_back(make_switch("leaf" + std::to_string(i), leaf_mac(i),
                                  static_cast<Fid>((i + 1) * kFidRange)));
  }
  for (u32 j = 0; j < spines; ++j) {
    spines_.push_back(
        make_switch("spine" + std::to_string(j), spine_mac(j),
                    static_cast<Fid>((leaves + j + 1) * kFidRange)));
  }
  next_host_port_.assign(leaves, spines);  // host ports start above uplinks

  // Physical links: leaf i port j <-> spine j port i.
  for (u32 i = 0; i < leaves; ++i) {
    for (u32 j = 0; j < spines; ++j) {
      net.connect(*leaves_[i], j, *spines_[j], i, config.fabric_link);
    }
  }

  // Static inter-switch routes, spine0-primary. Pinned: the controller
  // forwards steering-bearing grants with the owning switch's source MAC,
  // and a learned entry from such a frame would re-point the fabric's
  // route to that switch at the controller's port. Switch positions never
  // change, so authority beats learning here. (Host routes, installed by
  // attach_host, stay learnable for dual-homed failover.)
  for (u32 i = 0; i < leaves; ++i) {
    for (u32 k = 0; k < leaves; ++k) {
      if (k != i) leaves_[i]->bind_pinned(leaf_mac(k), 0);  // via spine 0
    }
    for (u32 j = 0; j < spines; ++j)
      leaves_[i]->bind_pinned(spine_mac(j), j);
  }
  for (u32 j = 0; j < spines; ++j) {
    for (u32 i = 0; i < leaves; ++i)
      spines_[j]->bind_pinned(leaf_mac(i), i);
    for (u32 k = 0; k < spines; ++k) {
      if (k != j) spines_[j]->bind_pinned(spine_mac(k), 0);  // via leaf 0
    }
  }

  // The global controller hangs off spine 0.
  controller_ =
      std::make_shared<GlobalController>("fabric-gc", config.controller);
  net.attach(controller_);
  net.connect(*controller_, 0, *spines_[0], leaves, config.fabric_link);
  spines_[0]->bind_pinned(controller_->mac(), leaves);
  for (u32 j = 1; j < spines; ++j)
    spines_[j]->bind_pinned(controller_->mac(), 0);  // via leaf 0 -> spine 0
  for (u32 i = 0; i < leaves; ++i)
    leaves_[i]->bind_pinned(controller_->mac(), 0);  // via spine 0

  // Placement targets: the leaves, in index order. Scoreboards are wired
  // (health acks) and seeded (cold-start balance).
  for (u32 i = 0; i < leaves; ++i) {
    controller::SwitchNode* sw = leaves_[i].get();
    sw->set_scoreboard_provider(
        [sw] { return build_scoreboard(*sw).encode(); });
    controller_->add_switch(leaf_mac(i), sw->name());
    controller_->seed_scoreboard(leaf_mac(i), build_scoreboard(*sw));
  }
  // Spines answer probes too (if anyone asks) but take no placements.
  for (u32 j = 0; j < spines; ++j) {
    controller::SwitchNode* sw = spines_[j].get();
    sw->set_scoreboard_provider(
        [sw] { return build_scoreboard(*sw).encode(); });
  }
}

void Topology::attach_host(netsim::Node& host, u32 host_port, u32 leaf,
                           packet::MacAddr mac) {
  if (leaf >= leaves_.size()) throw UsageError("attach_host: bad leaf");
  if (mac == 0) throw UsageError("attach_host: zero host MAC");
  const u32 port = next_host_port_[leaf]++;
  net_->connect(host, host_port, *leaves_[leaf], port, config_.host_link);
  leaves_[leaf]->bind(mac, port);
  for (u32 i = 0; i < leaves_.size(); ++i) {
    if (i != leaf) leaves_[i]->bind(mac, 0);  // via spine 0
  }
  for (u32 j = 0; j < spines_.size(); ++j) {
    spines_[j]->bind(mac, leaf);
  }
}

void Topology::pin(netsim::ShardedSimulator& sharded) {
  const u32 shards = sharded.shards();
  for (u32 i = 0; i < leaves_.size(); ++i) {
    sharded.pin(*leaves_[i], i % shards);
  }
  for (u32 j = 0; j < spines_.size(); ++j) {
    sharded.pin(*spines_[j],
                (static_cast<u32>(leaves_.size()) + j) % shards);
  }
  sharded.pin(*controller_, static_cast<u32>(leaves_.size()) % shards);
}

void Topology::start(netsim::Simulator& sim, SimTime at, SimTime until) {
  sim.schedule_at(at, [this, until] { controller_->start(until); });
}

void Topology::start(netsim::ShardedSimulator& sharded, SimTime at,
                     SimTime until) {
  sharded.schedule_on(*controller_, at,
                      [this, until] { controller_->start(until); });
}

}  // namespace artmt::fabric
