// Application server: the authoritative key-value store object requests
// fall through to on a cache miss, and the backend pool member of the
// load-balancer experiments (echoes Cheetah cookies so clients can route
// subsequent packets statelessly).
#pragma once

#include <unordered_map>

#include "apps/kv.hpp"
#include "netsim/network.hpp"
#include "packet/active_packet.hpp"

namespace artmt::apps {

class ServerNode : public netsim::Node {
 public:
  ServerNode(std::string name, packet::MacAddr mac);

  // Authoritative store management.
  void put(u64 key, u32 value) { store_[key] = value; }
  [[nodiscard]] std::optional<u32> get(u64 key) const;

  void on_frame(netsim::Frame frame, u32 port) override;

  struct Stats {
    u64 gets_served = 0;
    u64 syns_answered = 0;
    u64 data_packets = 0;
    u64 ignored = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] packet::MacAddr mac() const { return mac_; }

 private:
  void reply(packet::MacAddr dst, const KvMessage& msg);

  packet::MacAddr mac_;
  std::unordered_map<u64, u32> store_;
  Stats stats_;
};

}  // namespace artmt::apps
