// The client-side active compiler (Section 5): turns a service's compact
// program into (a) the allocation request describing its memory access
// pattern and ingress constraints, and (b) -- once the switch answers with
// a placement -- the synthesized mutant with client-side address
// translation information ("linking").
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "active/compiled_program.hpp"
#include "active/program.hpp"
#include "alloc/mutant.hpp"
#include "alloc/request.hpp"
#include "packet/active_packet.hpp"

namespace artmt::client {

// Everything the compiler needs to know about one service program.
struct ServiceSpec {
  active::Program program;      // most-compact form
  std::vector<u32> demands;     // blocks per memory access (ordered)
  // Per-access same-stage alias (-1 = none); empty means no aliases.
  std::vector<i32> aliases;
  bool elastic = false;
  u32 elastic_cap_blocks = 0;
  // When set, the program's RTS is best-effort: the request omits the
  // ingress constraint and an egress RTS simply pays the port-change
  // recirculation (services whose replies are not latency-critical).
  bool ignore_rts_constraint = false;
};

// Derives the allocation request (access positions, demands, program
// length, RTS ingress constraint). Throws CompileError when demands don't
// match the program's access count or the program has no accesses.
alloc::AllocationRequest build_request(const ServiceSpec& spec);

// Composes one allocation request covering several programs of the same
// service that share its memory regions access-for-access (e.g. the
// cache's query and populate programs both walk key0/key1/value). The
// combined constraints are the per-access maxima -- any placement
// admitting the composite admits every member program -- and demands are
// per-access maxima. All specs must have the same access count,
// elasticity, and aliases. Throws CompileError otherwise.
alloc::AllocationRequest compose_request(std::span<const ServiceSpec> specs);

// The compiled output for one admitted placement.
struct SynthesizedProgram {
  active::Program program;  // NOP-mutated to the chosen stages
  // Same program, compiled once at synthesis time. Services sending the
  // same mutant on every packet share this read-only artifact (and the
  // switch's cache interns the identical bytes), so the per-packet path
  // copies a shared_ptr instead of a Program.
  std::shared_ptr<const active::CompiledProgram> compiled;
  // Physical word range of each access's region (for client-side address
  // translation of direct-addressed programs).
  std::vector<u32> access_base;   // region start word, per access
  std::vector<u32> access_words;  // region size in words, per access
  // Usable object count for bucket-style layouts: the minimum region size
  // across all accesses (bucket i lives at base + i in every stage).
  [[nodiscard]] u32 bucket_count() const;
};

// Mutates the program to the chosen stages and resolves per-access
// physical bases from the allocation response. `logical_stages` maps
// global stage indices onto physical ones (recirculation wraps).
SynthesizedProgram synthesize(const ServiceSpec& spec,
                              const alloc::Mutant& mutant,
                              const packet::AllocResponseHeader& regions,
                              u32 logical_stages);

// Appendix C's preloading optimization: removes a leading MAR_LOAD $0
// (and a then-leading MBR_LOAD $1), setting the program's preload flags
// instead, so first-stage memory becomes addressable.
void apply_preload(active::Program& program);

}  // namespace artmt::client
