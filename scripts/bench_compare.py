#!/usr/bin/env python3
"""Throughput regression gate over BENCH_datapath.json.

Collects every ``packets_per_sec`` leaf in the working-tree
BENCH_datapath.json and compares it against the committed baseline
(``git show HEAD:BENCH_datapath.json`` by default). Exits nonzero when
any section regresses by more than the threshold (10% unless
--threshold says otherwise). Sections present on only one side are
reported but never fail the gate: new benchmarks have no baseline, and
retired ones have no current value.

Stdlib only; runs anywhere git and python3 exist.

Usage: scripts/bench_compare.py [--threshold 0.10] [--file BENCH_datapath.json]
                                [--baseline-ref HEAD]
"""

import argparse
import json
import subprocess
import sys


def pps_leaves(obj, path=""):
    """Yields (section-path, value) for every packets_per_sec leaf."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            child = f"{path}.{key}" if path else key
            if key == "packets_per_sec" and isinstance(value, (int, float)):
                yield path or key, float(value)
            else:
                yield from pps_leaves(value, child)
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            yield from pps_leaves(value, f"{path}[{i}]")


def load_baseline(ref, path):
    try:
        text = subprocess.run(
            ["git", "show", f"{ref}:{path}"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (subprocess.CalledProcessError, OSError):
        return None
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional pps drop (default 0.10)")
    parser.add_argument("--file", default="BENCH_datapath.json")
    parser.add_argument("--baseline-ref", default="HEAD")
    args = parser.parse_args()

    try:
        with open(args.file, encoding="utf-8") as f:
            current_json = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_compare: cannot read {args.file}: {err}",
              file=sys.stderr)
        return 2
    current = dict(pps_leaves(current_json))

    # Sharded speedup numbers are contention-distorted on hosts without
    # enough cores to actually run the workers in parallel; bench_micro
    # records the host core count and whether it enforced the speedup
    # gates. Skip those sections here with an unmissable notice instead
    # of letting a cramped runner quietly pass (or fail) the comparison.
    cores = current_json.get("cores")
    enforced = current_json.get("sharding", {}).get("gates_enforced", True)
    skip_sharding = (cores is not None and cores < 4) or not enforced
    if skip_sharding:
        print("=" * 68, file=sys.stderr)
        print(f"bench_compare: NOTICE: host has {cores} core(s) and "
              f"gates_enforced={str(enforced).lower()} -- sharded speedup "
              "sections SKIPPED,\nnot compared. Rerun on a >=4-core host "
              "to exercise the sharding gates.", file=sys.stderr)
        print("=" * 68, file=sys.stderr)

    baseline_json = load_baseline(args.baseline_ref, args.file)
    if baseline_json is None:
        print(f"bench_compare: no baseline {args.file} at "
              f"{args.baseline_ref}; nothing to compare")
        return 0
    baseline = dict(pps_leaves(baseline_json))

    regressions = []
    skipped = []
    for section in sorted(current.keys() | baseline.keys()):
        if skip_sharding and section.startswith("sharding."):
            skipped.append(section)
            continue
        cur = current.get(section)
        base = baseline.get(section)
        if cur is None:
            print(f"  {section}: retired (baseline {base:.0f} pps)")
            continue
        if base is None:
            print(f"  {section}: new ({cur:.0f} pps, no baseline)")
            continue
        if base <= 0:
            continue
        delta = cur / base - 1.0
        mark = ""
        if delta < -args.threshold:
            regressions.append((section, base, cur, delta))
            mark = "  << REGRESSION"
        print(f"  {section}: {base:.0f} -> {cur:.0f} pps "
              f"({delta:+.1%}){mark}")

    for section in skipped:
        print(f"  {section}: SKIPPED (single-core/unenforced run)")
    if regressions:
        print(f"bench_compare: {len(regressions)} section(s) regressed "
              f"more than {args.threshold:.0%} vs {args.baseline_ref}",
              file=sys.stderr)
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
