#include "client/service.hpp"

#include "client/client_node.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "proto/wire.hpp"

namespace artmt::client {

Service::Service(std::string name, ServiceSpec spec)
    : name_(std::move(name)), spec_(std::move(spec)) {}

ClientNode& Service::node() const {
  if (node_ == nullptr) throw UsageError("Service not attached to a client");
  return *node_;
}

void Service::request_allocation() {
  if (state_ != State::kIdle && state_ != State::kDenied) {
    throw UsageError("Service::request_allocation: not idle");
  }
  state_ = State::kNegotiating;
  node().send_active(proto::encode_request(allocation_request(), seq_));
  log(LogLevel::kInfo, "service ", name_, ": allocation requested");
}

void Service::release() {
  if (state_ != State::kOperational && state_ != State::kMemoryManagement) {
    throw UsageError("Service::release: not operational");
  }
  node().send_active(
      packet::ActivePacket::make_control(fid_, packet::ActiveType::kDealloc));
  log(LogLevel::kInfo, "service ", name_, ": release requested");
}

void Service::send_program(const active::Program& program,
                          const packet::ArgumentHeader& args,
                          std::vector<u8> payload, bool management,
                          packet::MacAddr dst) {
  if (fid_ == 0) throw UsageError("Service::send_program: no allocation");
  packet::ActivePacket pkt =
      packet::ActivePacket::make_program(fid_, args, program);
  if (management) pkt.initial.flags |= packet::kFlagManagement;
  pkt.payload = std::move(payload);
  if (dst == 0) {
    node().send_active(std::move(pkt));
  } else {
    node().send_active_to(dst, std::move(pkt));
  }
}

void Service::send_program(const SynthesizedProgram& synth,
                          const packet::ArgumentHeader& args,
                          std::vector<u8> payload, bool management,
                          packet::MacAddr dst) {
  if (!synth.compiled) {
    send_program(synth.program, args, std::move(payload), management, dst);
    return;
  }
  if (fid_ == 0) throw UsageError("Service::send_program: no allocation");
  packet::ActivePacket pkt =
      packet::ActivePacket::make_program(fid_, args, synth.compiled);
  if (management) pkt.initial.flags |= packet::kFlagManagement;
  pkt.payload = std::move(payload);
  if (dst == 0) {
    node().send_active(std::move(pkt));
  } else {
    node().send_active_to(dst, std::move(pkt));
  }
}

void Service::extraction_done() {
  if (state_ != State::kMemoryManagement) {
    throw UsageError("Service::extraction_done: not in memory management");
  }
  node().send_active(packet::ActivePacket::make_control(
      fid_, packet::ActiveType::kExtractComplete));
}

void Service::accept_allocation(const packet::ActivePacket& pkt) {
  fid_ = pkt.initial.fid;
  mutant_ = proto::decode_mutant(pkt);
  regions_ = *pkt.response;
  synthesized_ =
      synthesize(spec_, *mutant_, *regions_, node().logical_stages());
  state_ = State::kOperational;
}

void Service::handle_active(packet::ActivePacket& pkt) {
  switch (pkt.initial.type) {
    case packet::ActiveType::kAllocResponse: {
      if ((pkt.initial.flags & packet::kFlagAllocFailed) != 0) {
        state_ = State::kDenied;
        log(LogLevel::kWarn, "service ", name_, ": allocation denied");
        on_denied();
        return;
      }
      const bool first = state_ == State::kNegotiating;
      accept_allocation(pkt);
      if (first) {
        log(LogLevel::kInfo, "service ", name_, ": operational, fid=", fid_);
        on_operational();
      } else {
        log(LogLevel::kInfo, "service ", name_, ": allocation moved");
        on_moved();
      }
      return;
    }
    case packet::ActiveType::kReallocNotice:
      state_ = State::kMemoryManagement;
      log(LogLevel::kInfo, "service ", name_, ": realloc notice");
      on_realloc_notice();
      return;
    case packet::ActiveType::kDeallocAck:
      state_ = State::kReleased;
      log(LogLevel::kInfo, "service ", name_, ": released");
      on_released();
      return;
    case packet::ActiveType::kProgram:
      on_returned(pkt);
      return;
    default:
      return;
  }
}

}  // namespace artmt::client
