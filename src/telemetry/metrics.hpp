// Always-on, low-overhead observability for the modeled switch (the
// paper's evaluation quantities -- occupancy, admission/rejection rates,
// recirculations, cache hit ratios, reallocation pauses -- as first-class
// metrics instead of ad-hoc printf probes).
//
// A MetricsRegistry owns named Counters, Gauges, and log-bucketed
// Histograms keyed by (component, name, fid). Registration takes a mutex
// and allocates; the handles it returns are stable for the registry's
// lifetime. Hot-path updates (inc/set/record) are relaxed load+store
// pairs on atomics: single-writer, like the event loop that drives every
// instrumented component, so a concurrent snapshot reader never sees a
// torn value but the per-packet path pays no lock-prefixed RMW (the
// bench's telemetry-overhead gate holds the whole layer to <=5% and zero
// steady-state allocations). A process-wide default registry exists for
// tools and benches; components can equally be wired to a private
// instance (the tests do, so per-node counts stay exact).
//
// Recording is globally gated by set_enabled(): when disabled, handles
// drop updates after one relaxed load, which is what the overhead bench
// measures the instrumented datapath against.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/types.hpp"

namespace artmt::telemetry {

// Label value for metrics not attached to a flow.
inline constexpr i32 kNoFid = -1;

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

// Process-wide recording gate (default on). Handles keep their values
// while disabled; they just stop accumulating.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

// Monotonic event count. Single-writer: inc() is a relaxed load+store,
// not an RMW, so concurrent inc() from two threads can lose updates --
// concurrent readers are always safe.
class Counter {
 public:
  void inc(u64 n = 1) {
    if (enabled()) {
      value_.store(value_.load(std::memory_order_relaxed) + n,
                   std::memory_order_relaxed);
    }
  }
  [[nodiscard]] u64 value() const {
    return value_.load(std::memory_order_relaxed);
  }

  // Snapshot-time accumulation from another registry's counter. Not gated
  // by enabled(): the source already applied the gate when it recorded.
  void merge_add(u64 n) {
    value_.store(value_.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
  }

 private:
  std::atomic<u64> value_{0};
};

// Instantaneous level (queue depth, resident services). Single-writer,
// like Counter.
class Gauge {
 public:
  void set(i64 v) {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  void add(i64 d) {
    if (enabled()) {
      value_.store(value_.load(std::memory_order_relaxed) + d,
                   std::memory_order_relaxed);
    }
  }
  [[nodiscard]] i64 value() const {
    return value_.load(std::memory_order_relaxed);
  }

  // Snapshot-time accumulation (see Counter::merge_add).
  void merge_add(i64 d) {
    value_.store(value_.load(std::memory_order_relaxed) + d,
                 std::memory_order_relaxed);
  }

 private:
  std::atomic<i64> value_{0};
};

// Log-bucketed value distribution: bucket 0 holds the value 0, bucket b
// (1..64) holds values with bit_width b, i.e. [2^(b-1), 2^b). Percentiles
// report the upper bound of the bucket containing the rank, clamped to the
// exact observed maximum -- deterministic for a given input multiset.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  static std::size_t bucket_index(u64 v) {
    return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
  }
  static u64 bucket_upper_bound(std::size_t bucket) {
    if (bucket == 0) return 0;
    if (bucket >= 64) return ~0ull;
    return (1ull << bucket) - 1;
  }

  void record(u64 v) {
    if (!enabled()) return;
    // Single-writer load+store updates, like Counter.
    std::atomic<u64>& bucket = buckets_[bucket_index(v)];
    bucket.store(bucket.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    count_.store(count_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    sum_.store(sum_.load(std::memory_order_relaxed) + v,
               std::memory_order_relaxed);
    if (v > max_.load(std::memory_order_relaxed)) {
      max_.store(v, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] u64 count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] u64 max() const { return max_.load(std::memory_order_relaxed); }
  [[nodiscard]] u64 bucket_count(std::size_t bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  // p in [0, 1]; 0 observations -> 0.
  [[nodiscard]] u64 percentile(double p) const;

  // Adds `other`'s buckets/count/sum into this histogram and raises max.
  // Exact: log-bucketed histograms merge losslessly, so percentiles over
  // the merge equal percentiles over the combined input multiset.
  void merge_from(const Histogram& other);

 private:
  std::atomic<u64> buckets_[kBuckets]{};
  std::atomic<u64> count_{0};
  std::atomic<u64> sum_{0};
  std::atomic<u64> max_{0};
};

class MetricsRegistry;

// Per-FID counter lookup for per-packet paths: a one-entry memo (steady
// traffic repeats a fid) backed by a local pointer cache, so the registry
// mutex is only taken the first time a fid is seen. Single-writer, like
// the simulation loop that drives it.
class CounterFamily {
 public:
  CounterFamily(MetricsRegistry& registry, std::string component,
                std::string name);

  Counter& at(i32 fid) {
    if (fid == last_fid_) return *last_;
    return lookup(fid);
  }

 private:
  Counter& lookup(i32 fid);

  MetricsRegistry* registry_;
  std::string component_;
  std::string name_;
  std::unordered_map<i32, Counter*> cache_;
  i32 last_fid_ = INT32_MIN;
  Counter* last_ = nullptr;
};

// Owns every metric; snapshot-safe while recording continues (handles are
// atomic). Keys sort by (component, name, fid) so snapshots are
// deterministic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create. Re-registration with the same key returns the same
  // handle (a "collision" is a shared metric, never a silent second one).
  Counter& counter(std::string_view component, std::string_view name,
                   i32 fid = kNoFid);
  Gauge& gauge(std::string_view component, std::string_view name,
               i32 fid = kNoFid);
  Histogram& histogram(std::string_view component, std::string_view name,
                       i32 fid = kNoFid);

  // Lookups for views and tests; value-returning forms yield 0 for
  // metrics that were never registered.
  [[nodiscard]] u64 counter_value(std::string_view component,
                                  std::string_view name,
                                  i32 fid = kNoFid) const;
  [[nodiscard]] i64 gauge_value(std::string_view component,
                                std::string_view name,
                                i32 fid = kNoFid) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view component,
                                                std::string_view name,
                                                i32 fid = kNoFid) const;
  // Sum of a counter over every fid label (including kNoFid).
  [[nodiscard]] u64 sum_counters(std::string_view component,
                                 std::string_view name) const;

  [[nodiscard]] std::size_t size() const;

  // Deterministic JSON export: sorted keys rendered as
  // "component.name" / "component.name{fid=N}".
  void snapshot_json(std::ostream& out) const;

  // Adds every metric in `other` into this registry (get-or-create by
  // key, then sum counters/gauges and merge histograms). The sharded
  // engine keeps a registry per shard so hot-path recording stays
  // single-writer, then folds them into one view at snapshot time.
  // Call while `other`'s writers are quiescent.
  void merge_from(const MetricsRegistry& other);

 private:
  struct Key {
    std::string component;
    std::string name;
    i32 fid;
    friend bool operator<(const Key& a, const Key& b) {
      if (a.component != b.component) return a.component < b.component;
      if (a.name != b.name) return a.name < b.name;
      return a.fid < b.fid;
    }
  };

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

// The process-wide default registry (tools, benches, examples).
MetricsRegistry& registry();

// Dumps the default registry (the `artmt_stats` exporter).
void snapshot_json(std::ostream& out);

}  // namespace artmt::telemetry
