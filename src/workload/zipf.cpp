#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace artmt::workload {

ZipfGenerator::ZipfGenerator(u32 universe, double alpha) {
  if (universe == 0) throw UsageError("ZipfGenerator: empty universe");
  cdf_.resize(universe);
  double sum = 0.0;
  for (u32 rank = 0; rank < universe; ++rank) {
    sum += 1.0 / std::pow(static_cast<double>(rank + 1), alpha);
    cdf_[rank] = sum;
  }
  for (double& value : cdf_) value /= sum;
}

u32 ZipfGenerator::next_rank(Rng& rng) const {
  const double u = rng.uniform_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<u32>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

u64 ZipfGenerator::key_for_rank(u32 rank) {
  // splitmix64-style bijective scramble keeps keys stable and spread out.
  u64 x = static_cast<u64>(rank) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double ZipfGenerator::top_mass(u32 k) const {
  if (cdf_.empty()) return 0.0;
  if (k == 0) return 0.0;
  const u32 index = std::min<u32>(k, static_cast<u32>(cdf_.size())) - 1;
  return cdf_[index];
}

}  // namespace artmt::workload
