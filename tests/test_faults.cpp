// Deterministic fault injection (src/faults) and the unified client
// reliability layer (client::ReliabilityTracker): probabilistic
// drop/corrupt/duplicate/reorder/jitter semantics, scripted link flaps
// and switch brownouts, determinism across repeated runs and shard
// counts, the fault-free byte-identity regression, retransmit/backoff
// schedules, and end-to-end recovery of the cache and heavy-hitter
// services under loss (including the extraction-timeout force-finalize
// path when a disturbed client is cut off entirely).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "apps/cache_service.hpp"
#include "apps/hh_service.hpp"
#include "apps/programs.hpp"
#include "apps/server_node.hpp"
#include "client/client_node.hpp"
#include "client/reliability.hpp"
#include "controller/switch_node.hpp"
#include "faults/injector.hpp"
#include "netsim/sharded.hpp"
#include "telemetry/metrics.hpp"

namespace artmt {
namespace {

using client::ReliabilityTracker;
using faults::Brownout;
using faults::FaultInjector;
using faults::FaultKind;
using faults::FaultPlan;
using faults::LinkFaults;
using faults::LinkFlap;
using netsim::Network;
using netsim::ShardedSimulator;
using netsim::Simulator;

// --- Rng substreams (satellite: isolated fault randomness) ----------------

TEST(RngSubstream, SameSeedAndTagReproduce) {
  Rng a = Rng::substream(5, 17);
  Rng b = Rng::substream(5, 17);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngSubstream, DistinctTagsAndSeedsDiverge) {
  Rng a = Rng::substream(5, 1);
  Rng b = Rng::substream(5, 2);
  Rng c = Rng::substream(6, 1);
  bool ab_differ = false;
  bool ac_differ = false;
  for (int i = 0; i < 16; ++i) {
    const u64 va = a.next_u64();
    ab_differ |= va != b.next_u64();
    ac_differ |= va != c.next_u64();
  }
  EXPECT_TRUE(ab_differ);
  EXPECT_TRUE(ac_differ);
}

// --- fixtures -------------------------------------------------------------

// Records every arrival (time, port, payload bytes).
class SinkNode : public netsim::Node {
 public:
  using Node::Node;

  void on_frame(netsim::Frame frame, u32 port) override {
    arrivals.push_back({network().simulator().now(), port,
                        std::vector<u8>(frame.data(),
                                        frame.data() + frame.size())});
  }

  struct Arrival {
    SimTime at = 0;
    u32 port = 0;
    std::vector<u8> bytes;
  };
  std::vector<Arrival> arrivals;
};

// Two sinks on one serial link; frames are injected at scripted times.
struct PairNet {
  PairNet() : net(sim) {
    a = std::make_shared<SinkNode>("a");
    b = std::make_shared<SinkNode>("b");
    net.attach(a);
    net.attach(b);
    net.connect(*a, 0, *b, 0);
  }

  void send_at(SimTime at, netsim::Node& from, std::vector<u8> bytes) {
    sim.schedule_at(at, [this, &from, bytes = std::move(bytes)] {
      netsim::Frame f = net.pool().acquire(bytes.size());
      std::copy(bytes.begin(), bytes.end(), f.data());
      net.transmit(from, 0, std::move(f));
    });
  }

  Simulator sim;
  Network net;
  std::shared_ptr<SinkNode> a, b;
};

// FNV-1a over 64-bit words (order-sensitive).
struct Digest {
  u64 h = 1469598103934665603ull;
  void mix(u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

u64 arrivals_digest(const SinkNode& node) {
  Digest d;
  d.mix(node.arrivals.size());
  for (const auto& arrival : node.arrivals) {
    d.mix(static_cast<u64>(arrival.at));
    d.mix(arrival.port);
    for (const u8 byte : arrival.bytes) d.mix(byte);
  }
  return d.h;
}

std::vector<u8> payload_for(u32 index, std::size_t size = 64) {
  std::vector<u8> bytes(size);
  for (std::size_t i = 0; i < size; ++i) {
    bytes[i] = static_cast<u8>((index * 131 + i) & 0xff);
  }
  return bytes;
}

// --- probabilistic rule semantics (serial engine) -------------------------

TEST(Injector, FullLossDropsEverything) {
  PairNet pair;
  FaultInjector injector(FaultPlan::uniform_loss(3, 1.0));
  pair.net.set_transmit_hook(&injector);
  for (u32 i = 0; i < 20; ++i) {
    pair.send_at(i * 10 * kMicrosecond, *pair.a, payload_for(i));
  }
  pair.sim.run();
  EXPECT_TRUE(pair.b->arrivals.empty());
  EXPECT_EQ(pair.net.frames_delivered(), 0u);
  EXPECT_EQ(injector.injected(FaultKind::kDrop), 20u);
  EXPECT_EQ(injector.injected_total(), 20u);
  // Injected losses are the injector's books, not the network's.
  EXPECT_EQ(pair.net.frames_dropped(), 0u);
}

TEST(Injector, PartialLossIsDeterministicAcrossRuns) {
  auto run = [](u64 seed) {
    PairNet pair;
    FaultInjector injector(FaultPlan::uniform_loss(seed, 0.3));
    pair.net.set_transmit_hook(&injector);
    for (u32 i = 0; i < 200; ++i) {
      pair.send_at(i * 10 * kMicrosecond, *pair.a, payload_for(i));
    }
    pair.sim.run();
    return std::tuple(arrivals_digest(*pair.b), pair.b->arrivals.size(),
                      injector.injected(FaultKind::kDrop));
  };
  const auto first = run(7);
  const auto second = run(7);
  EXPECT_EQ(first, second);
  // A 30% rule really fires (and really spares) with 200 samples.
  EXPECT_GT(std::get<2>(first), 0u);
  EXPECT_LT(std::get<2>(first), 200u);
  EXPECT_EQ(std::get<1>(first) + std::get<2>(first), 200u);

  const auto other_seed = run(8);
  EXPECT_NE(std::get<0>(first), std::get<0>(other_seed));
}

TEST(Injector, CorruptFlipsExactlyOneBit) {
  PairNet pair;
  FaultPlan plan;
  plan.seed = 11;
  LinkFaults rule;
  rule.corrupt = 1.0;
  plan.link_faults.push_back(rule);
  FaultInjector injector(plan);
  pair.net.set_transmit_hook(&injector);

  const std::vector<u8> sent = payload_for(1);
  pair.send_at(0, *pair.a, sent);
  pair.sim.run();

  ASSERT_EQ(pair.b->arrivals.size(), 1u);
  const auto& got = pair.b->arrivals[0].bytes;
  ASSERT_EQ(got.size(), sent.size());
  u32 differing_bytes = 0;
  u32 flipped_bits = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    if (got[i] == sent[i]) continue;
    ++differing_bytes;
    flipped_bits += std::popcount(static_cast<u32>(got[i] ^ sent[i]));
  }
  EXPECT_EQ(differing_bytes, 1u);
  EXPECT_EQ(flipped_bits, 1u);
  EXPECT_EQ(injector.injected(FaultKind::kCorrupt), 1u);
}

TEST(Injector, DuplicateDeliversBothCopies) {
  PairNet pair;
  FaultPlan plan;
  plan.seed = 13;
  LinkFaults rule;
  rule.duplicate = 1.0;
  plan.link_faults.push_back(rule);
  FaultInjector injector(plan);
  pair.net.set_transmit_hook(&injector);

  const std::vector<u8> sent = payload_for(2);
  pair.send_at(0, *pair.a, sent);
  pair.sim.run();

  ASSERT_EQ(pair.b->arrivals.size(), 2u);
  EXPECT_EQ(pair.b->arrivals[0].bytes, sent);
  EXPECT_EQ(pair.b->arrivals[1].bytes, sent);
  EXPECT_EQ(pair.b->arrivals[1].at - pair.b->arrivals[0].at, rule.dup_delay);
  EXPECT_EQ(injector.injected(FaultKind::kDuplicate), 1u);
  EXPECT_EQ(pair.net.frames_delivered(), 2u);
}

TEST(Injector, ReorderLetsLaterFrameOvertake) {
  PairNet pair;
  FaultPlan plan;
  plan.seed = 17;
  LinkFaults rule;
  rule.reorder = 1.0;
  rule.until = 5 * kMicrosecond;  // only the first frame is held
  plan.link_faults.push_back(rule);
  FaultInjector injector(plan);
  pair.net.set_transmit_hook(&injector);

  pair.send_at(0, *pair.a, payload_for(1));
  pair.send_at(10 * kMicrosecond, *pair.a, payload_for(2));
  pair.sim.run();

  ASSERT_EQ(pair.b->arrivals.size(), 2u);
  EXPECT_EQ(pair.b->arrivals[0].bytes, payload_for(2));  // overtook
  EXPECT_EQ(pair.b->arrivals[1].bytes, payload_for(1));  // held back
  EXPECT_GE(pair.b->arrivals[1].at, rule.reorder_hold);
  EXPECT_EQ(injector.injected(FaultKind::kReorder), 1u);
}

TEST(Injector, JitterDelaysWithinBound) {
  // Reference arrival without faults.
  PairNet clean;
  clean.send_at(0, *clean.a, payload_for(1));
  clean.sim.run();
  ASSERT_EQ(clean.b->arrivals.size(), 1u);
  const SimTime nominal = clean.b->arrivals[0].at;

  PairNet pair;
  FaultPlan plan;
  plan.seed = 19;
  LinkFaults rule;
  rule.jitter = 1.0;
  plan.link_faults.push_back(rule);
  FaultInjector injector(plan);
  pair.net.set_transmit_hook(&injector);
  pair.send_at(0, *pair.a, payload_for(1));
  pair.sim.run();

  ASSERT_EQ(pair.b->arrivals.size(), 1u);
  EXPECT_GE(pair.b->arrivals[0].at, nominal);
  EXPECT_LT(pair.b->arrivals[0].at, nominal + rule.jitter_max);
  EXPECT_EQ(injector.injected(FaultKind::kJitter), 1u);
  EXPECT_EQ(pair.b->arrivals[0].bytes, payload_for(1));
}

TEST(Injector, RuleTimeWindowIsRespected) {
  PairNet pair;
  FaultPlan plan;
  plan.seed = 23;
  LinkFaults rule;
  rule.drop = 1.0;
  rule.from = 10 * kMicrosecond;
  rule.until = 20 * kMicrosecond;
  plan.link_faults.push_back(rule);
  FaultInjector injector(plan);
  pair.net.set_transmit_hook(&injector);

  pair.send_at(0, *pair.a, payload_for(0));                  // before
  pair.send_at(15 * kMicrosecond, *pair.a, payload_for(1));  // inside
  pair.send_at(30 * kMicrosecond, *pair.a, payload_for(2));  // after
  pair.sim.run();

  ASSERT_EQ(pair.b->arrivals.size(), 2u);
  EXPECT_EQ(pair.b->arrivals[0].bytes, payload_for(0));
  EXPECT_EQ(pair.b->arrivals[1].bytes, payload_for(2));
  EXPECT_EQ(injector.injected(FaultKind::kDrop), 1u);
}

// --- scripted flaps and brownouts -----------------------------------------

TEST(Injector, LinkFlapCutsBothDirectionsDuringWindow) {
  PairNet pair;
  FaultPlan plan;
  plan.flaps.push_back(LinkFlap{.node_a = "a",
                                .node_b = "b",
                                .down_at = 10 * kMicrosecond,
                                .up_at = 30 * kMicrosecond});
  FaultInjector injector(plan);
  pair.net.set_transmit_hook(&injector);

  pair.send_at(0, *pair.a, payload_for(0));                  // up
  pair.send_at(15 * kMicrosecond, *pair.a, payload_for(1));  // down, a->b
  pair.send_at(20 * kMicrosecond, *pair.b, payload_for(2));  // down, b->a
  pair.send_at(30 * kMicrosecond, *pair.a, payload_for(3));  // up again
  pair.sim.run();

  ASSERT_EQ(pair.b->arrivals.size(), 2u);
  EXPECT_TRUE(pair.a->arrivals.empty());
  EXPECT_EQ(injector.injected(FaultKind::kLinkCut), 2u);
  const auto by_link = injector.injected_by_link();
  ASSERT_TRUE(by_link.contains("a->b"));
  ASSERT_TRUE(by_link.contains("b->a"));
  EXPECT_EQ(by_link.at("a->b")[static_cast<u32>(FaultKind::kLinkCut)], 1u);
  EXPECT_EQ(by_link.at("b->a")[static_cast<u32>(FaultKind::kLinkCut)], 1u);
}

TEST(Injector, FlapMatchesNamedLinkOnly) {
  Simulator sim;
  Network net(sim);
  auto a = std::make_shared<SinkNode>("a");
  auto b = std::make_shared<SinkNode>("b");
  auto c = std::make_shared<SinkNode>("c");
  net.attach(a);
  net.attach(b);
  net.attach(c);
  net.connect(*a, 0, *b, 0);
  net.connect(*a, 1, *c, 0);

  FaultPlan plan;
  plan.flaps.push_back(
      LinkFlap{.node_a = "a", .node_b = "b", .down_at = 0, .up_at = kSecond});
  FaultInjector injector(plan);
  net.set_transmit_hook(&injector);

  sim.schedule_at(0, [&] {
    netsim::Frame f = net.pool().acquire(32);
    std::fill(f.data(), f.data() + 32, u8{1});
    net.transmit(*a, 0, std::move(f));  // a->b: cut
    netsim::Frame g = net.pool().acquire(32);
    std::fill(g.data(), g.data() + 32, u8{2});
    net.transmit(*a, 1, std::move(g));  // a->c: unaffected
  });
  sim.run();

  EXPECT_TRUE(b->arrivals.empty());
  ASSERT_EQ(c->arrivals.size(), 1u);
  EXPECT_EQ(injector.injected(FaultKind::kLinkCut), 1u);
}

TEST(Injector, BrownoutCutsAllTrafficOfTheNode) {
  PairNet pair;
  FaultPlan plan;
  plan.brownouts.push_back(
      Brownout{.node = "b", .at = 5 * kMicrosecond,
               .duration = 10 * kMicrosecond});
  FaultInjector injector(plan);
  pair.net.set_transmit_hook(&injector);

  pair.send_at(0, *pair.a, payload_for(0));                  // before
  pair.send_at(8 * kMicrosecond, *pair.a, payload_for(1));   // to browned-out
  pair.send_at(10 * kMicrosecond, *pair.b, payload_for(2));  // from it
  pair.send_at(15 * kMicrosecond, *pair.a, payload_for(3));  // up-edge: alive
  pair.sim.run();

  ASSERT_EQ(pair.b->arrivals.size(), 2u);
  EXPECT_TRUE(pair.a->arrivals.empty());
  EXPECT_EQ(injector.injected(FaultKind::kOutage), 2u);
  EXPECT_EQ(plan.brownouts[0].up_at(), 15 * kMicrosecond);
}

TEST(Injector, ExportMetricsPublishesPerKindAndPerLinkCounters) {
  PairNet pair;
  FaultPlan plan = FaultPlan::uniform_loss(29, 1.0);
  FaultInjector injector(plan);
  pair.net.set_transmit_hook(&injector);
  for (u32 i = 0; i < 5; ++i) {
    pair.send_at(i * kMicrosecond, *pair.a, payload_for(i));
  }
  pair.sim.run();

  telemetry::MetricsRegistry metrics;
  injector.export_metrics(metrics);
  EXPECT_EQ(metrics.counter_value("faults", "injected_drop"), 5u);
  EXPECT_EQ(metrics.counter_value("faults", "injected_drop:a->b"), 5u);
}

// --- determinism: byte identity and shard invariance ----------------------

// Relay ring reused from the sharded-engine tests: forwards while byte 0
// (a hop countdown) is positive, so one injection fans into a long
// deterministic frame cascade.
class RelayNode : public netsim::Node {
 public:
  using Node::Node;

  void on_frame(netsim::Frame frame, u32 port) override {
    log.emplace_back(network().simulator().now(), port,
                     frame.empty() ? 0 : frame[0]);
    if (!frame.empty() && frame[0] > 0) {
      frame[0] -= 1;
      network().transmit(*this, 0, std::move(frame));
    }
  }

  std::vector<std::tuple<SimTime, u32, u8>> log;
};

struct RingRun {
  u64 digest = 0;
  SimTime completed_at = 0;
  u64 delivered = 0;
  std::string snapshot;  // merged telemetry (sharded runs only)
  u64 injected_total = 0;
  std::array<u64, faults::kFaultKindCount> injected{};
};

template <typename Engine>
RingRun run_ring(Engine& engine, Network& net, FaultInjector* injector) {
  std::vector<std::shared_ptr<RelayNode>> nodes;
  for (u32 i = 0; i < 6; ++i) {
    nodes.push_back(std::make_shared<RelayNode>("n" + std::to_string(i)));
    net.attach(nodes.back());
  }
  for (u32 i = 0; i < 6; ++i) {
    net.connect(*nodes[i], 0, *nodes[(i + 1) % 6], 1);
  }
  if (injector != nullptr) net.set_transmit_hook(injector);

  auto inject = [&](u32 from, u8 hops, std::size_t size) {
    netsim::Frame f = net.pool().acquire(size);
    for (std::size_t i = 0; i < size; ++i) f[i] = 0;
    f[0] = hops;
    net.transmit(*nodes[from], 0, std::move(f));
  };
  inject(0, 40, 256);
  inject(2, 35, 512);
  inject(4, 30, 128);
  engine.run();

  RingRun out;
  Digest d;
  for (const auto& node : nodes) {
    d.mix(node->log.size());
    for (const auto& [at, port, hops] : node->log) {
      d.mix(static_cast<u64>(at));
      d.mix(port);
      d.mix(hops);
    }
  }
  out.digest = d.h;
  out.completed_at = engine.now();
  out.delivered = net.frames_delivered();
  if (injector != nullptr) {
    out.injected_total = injector->injected_total();
    for (u32 k = 0; k < faults::kFaultKindCount; ++k) {
      out.injected[k] = injector->injected(static_cast<FaultKind>(k));
    }
  }
  return out;
}

// Satellite regression: attaching an injector whose plan injects nothing
// leaves the run byte-identical -- same event times, same delivery
// counts, same merged telemetry snapshot.
TEST(FaultDeterminism, FaultFreeInjectorIsByteIdentical) {
  auto run = [](FaultInjector* injector) {
    ShardedSimulator ssim(2);
    Network net(ssim);
    RingRun out = run_ring(ssim, net, injector);
    telemetry::MetricsRegistry merged;
    ssim.merge_metrics_into(merged);
    std::ostringstream os;
    merged.snapshot_json(os);
    out.snapshot = os.str();
    return out;
  };

  const RingRun bare = run(nullptr);

  FaultInjector empty_plan{FaultPlan{}, 2};
  const RingRun with_hook = run(&empty_plan);

  // A rule that matches every frame but fires nothing must also be inert.
  FaultPlan zero_prob;
  zero_prob.link_faults.push_back(LinkFaults{});
  FaultInjector zero_rule(zero_prob, 2);
  const RingRun with_rule = run(&zero_rule);

  for (const RingRun* run_result : {&with_hook, &with_rule}) {
    EXPECT_EQ(run_result->digest, bare.digest);
    EXPECT_EQ(run_result->completed_at, bare.completed_at);
    EXPECT_EQ(run_result->delivered, bare.delivered);
    EXPECT_EQ(run_result->snapshot, bare.snapshot);
    EXPECT_EQ(run_result->injected_total, 0u);
  }
}

// The tentpole invariant: identical seeds produce identical fault
// sequences under the serial engine and at shard counts 1, 2, 4.
TEST(FaultDeterminism, InjectionIdenticalAcrossEnginesAndShardCounts) {
  const FaultPlan plan = FaultPlan::uniform_loss(9, 0.2);

  Simulator serial;
  Network serial_net(serial);
  FaultInjector serial_injector(plan);
  const RingRun reference = run_ring(serial, serial_net, &serial_injector);
  ASSERT_GT(reference.injected_total, 0u);
  ASSERT_GT(reference.delivered, 0u);

  for (u32 shards : {1u, 2u, 4u, 4u}) {  // 4 twice: repeated-run check
    ShardedSimulator ssim(shards);
    Network net(ssim);
    FaultInjector injector(plan, shards);
    const RingRun run = run_ring(ssim, net, &injector);
    EXPECT_EQ(run.digest, reference.digest) << shards << " shards";
    EXPECT_EQ(run.completed_at, reference.completed_at) << shards << " shards";
    EXPECT_EQ(run.delivered, reference.delivered) << shards << " shards";
    EXPECT_EQ(run.injected, reference.injected) << shards << " shards";
  }
}

// --- ReliabilityTracker ---------------------------------------------------

ReliabilityTracker::Options tight_schedule() {
  ReliabilityTracker::Options opts;
  opts.rto = 1 * kMillisecond;
  opts.backoff = 2.0;
  opts.max_rto = 8 * kMillisecond;
  opts.retry_budget = 4;
  opts.jitter = 0.0;
  return opts;
}

TEST(Reliability, ResendsThenGivesUp) {
  Simulator sim;
  ReliabilityTracker tracker(
      "t", [&sim]() -> Simulator& { return sim; }, tight_schedule());
  std::vector<u32> attempts;
  std::vector<u32> gave_up;
  tracker.on_give_up = [&](u32 id) { gave_up.push_back(id); };
  tracker.track(7, [&](u32 id, u32 attempt) {
    EXPECT_EQ(id, 7u);
    attempts.push_back(attempt);
  });
  sim.run();

  EXPECT_EQ(attempts, (std::vector<u32>{1, 2, 3, 4}));
  EXPECT_EQ(gave_up, (std::vector<u32>{7}));
  EXPECT_FALSE(tracker.tracking(7));
  EXPECT_EQ(tracker.stats().tracked, 1u);
  EXPECT_EQ(tracker.stats().retransmits, 4u);
  EXPECT_EQ(tracker.stats().give_ups, 1u);
  EXPECT_EQ(tracker.stats().acked, 0u);
}

TEST(Reliability, BackoffScheduleIsExponentialAndCapped) {
  Simulator sim;
  ReliabilityTracker tracker(
      "t", [&sim]() -> Simulator& { return sim; }, tight_schedule());
  std::vector<SimTime> at;
  tracker.track(1, [&](u32, u32) { at.push_back(sim.now()); });
  sim.run();

  // rto=1ms doubling toward max_rto=8ms: resends at 1, 3, 7, 15 ms.
  ASSERT_EQ(at.size(), 4u);
  EXPECT_EQ(at[0], 1 * kMillisecond);
  EXPECT_EQ(at[1], 3 * kMillisecond);
  EXPECT_EQ(at[2], 7 * kMillisecond);
  EXPECT_EQ(at[3], 15 * kMillisecond);
  // Budget exhausted after one more capped wait: give-up at 23 ms.
  EXPECT_EQ(sim.now(), 23 * kMillisecond);
}

TEST(Reliability, AckStopsResendAndCountsRecovery) {
  Simulator sim;
  ReliabilityTracker tracker(
      "t", [&sim]() -> Simulator& { return sim; }, tight_schedule());
  u32 resends = 0;
  tracker.track(1, [&](u32, u32) { ++resends; });
  tracker.track(2, [&](u32, u32) { ADD_FAILURE() << "2 acked immediately"; });
  EXPECT_EQ(tracker.outstanding(), 2u);

  EXPECT_TRUE(tracker.ack(2));             // before any timeout: not recovered
  EXPECT_FALSE(tracker.ack(2));            // double-ack is a no-op
  sim.schedule_at(1500 * kMicrosecond, [&] {
    EXPECT_EQ(resends, 1u);
    EXPECT_TRUE(tracker.ack(1));           // after one resend: recovered
  });
  sim.run();

  EXPECT_EQ(resends, 1u);
  EXPECT_EQ(tracker.stats().acked, 2u);
  EXPECT_EQ(tracker.stats().recovered, 1u);
  EXPECT_EQ(tracker.stats().give_ups, 0u);
  EXPECT_EQ(tracker.outstanding(), 0u);
}

TEST(Reliability, CancelAllStopsEverything) {
  Simulator sim;
  ReliabilityTracker tracker(
      "t", [&sim]() -> Simulator& { return sim; }, tight_schedule());
  tracker.track(1, [&](u32, u32) { ADD_FAILURE() << "cancelled"; });
  tracker.track(2, [&](u32, u32) { ADD_FAILURE() << "cancelled"; });
  tracker.cancel(1);
  tracker.cancel_all();
  sim.run();
  EXPECT_EQ(tracker.outstanding(), 0u);
  EXPECT_EQ(tracker.stats().retransmits, 0u);
  EXPECT_EQ(tracker.stats().acked, 0u);
}

TEST(Reliability, PausedGateHoldsWithoutChargingBudget) {
  Simulator sim;
  auto opts = tight_schedule();
  opts.retry_budget = 2;
  ReliabilityTracker tracker(
      "t", [&sim]() -> Simulator& { return sim; }, opts);
  bool paused = true;
  tracker.paused = [&paused] { return paused; };
  std::vector<SimTime> at;
  tracker.track(1, [&](u32, u32) { at.push_back(sim.now()); });
  // Many rto periods elapse paused; no retransmit, no budget charge.
  sim.schedule_at(10 * kMillisecond, [&] {
    EXPECT_TRUE(at.empty());
    EXPECT_TRUE(tracker.tracking(1));
    EXPECT_EQ(tracker.stats().retransmits, 0u);
    paused = false;
  });
  sim.run();

  // Once released the full budget is still available: 2 resends + give-up.
  EXPECT_EQ(at.size(), 2u);
  EXPECT_GE(at[0], 10 * kMillisecond);
  EXPECT_EQ(tracker.stats().retransmits, 2u);
  EXPECT_EQ(tracker.stats().give_ups, 1u);
}

TEST(Reliability, JitteredSchedulesAreSeedDeterministic) {
  auto resend_times = [](const std::string& name, u64 seed) {
    Simulator sim;
    ReliabilityTracker::Options opts;
    opts.rto = 1 * kMillisecond;
    opts.retry_budget = 6;
    opts.jitter = 0.3;
    opts.seed = seed;
    ReliabilityTracker tracker(
        name, [&sim]() -> Simulator& { return sim; }, opts);
    std::vector<SimTime> at;
    tracker.track(1, [&](u32, u32) { at.push_back(sim.now()); });
    sim.run();
    return at;
  };

  const auto a = resend_times("x", 1);
  EXPECT_EQ(a, resend_times("x", 1));          // reproducible
  EXPECT_NE(a, resend_times("x", 2));          // seed moves the schedule
  EXPECT_NE(a, resend_times("y", 1));          // name isolates the stream
}

TEST(Reliability, BadBackoffThrows) {
  Simulator sim;
  auto opts = tight_schedule();
  opts.backoff = 0.5;
  EXPECT_THROW(ReliabilityTracker(
                   "t", [&sim]() -> Simulator& { return sim; }, opts),
               UsageError);
  ReliabilityTracker tracker("t", [&sim]() -> Simulator& { return sim; });
  EXPECT_THROW(tracker.set_options(opts), UsageError);
}

TEST(Reliability, ExportMetricsPublishesStatsAndBackoffHistogram) {
  Simulator sim;
  ReliabilityTracker tracker(
      "writes", [&sim]() -> Simulator& { return sim; }, tight_schedule());
  tracker.track(1, [](u32, u32) {});
  sim.run_until(1500 * kMicrosecond);  // one retransmit
  tracker.ack(1);

  telemetry::MetricsRegistry metrics;
  tracker.export_metrics(metrics, 3);
  EXPECT_EQ(metrics.counter_value("reliability", "writes_tracked", 3), 1u);
  EXPECT_EQ(metrics.counter_value("reliability", "writes_acked", 3), 1u);
  EXPECT_EQ(metrics.counter_value("reliability", "writes_retransmits", 3), 1u);
  EXPECT_EQ(metrics.counter_value("reliability", "writes_recovered", 3), 1u);
  sim.run();
}

// --- switch brownout state loss -------------------------------------------

TEST(SwitchWipe, WipeRegistersZeroesEveryStage) {
  controller::SwitchNode::Config cfg;
  controller::SwitchNode sw("switch", cfg);
  auto& pipeline = sw.pipeline();
  u64 total_words = 0;
  for (u32 s = 0; s < pipeline.stage_count(); ++s) {
    pipeline.stage(s).memory().write(3, 0xfeedface);
    total_words += pipeline.stage(s).memory().size();
  }
  EXPECT_EQ(sw.wipe_registers(), total_words);
  for (u32 s = 0; s < pipeline.stage_count(); ++s) {
    EXPECT_EQ(pipeline.stage(s).memory().read(3), 0u);
  }
}

// --- end-to-end recovery (apps + reliability + faults) --------------------

constexpr packet::MacAddr kSwitchMac = 0x0000aa;
constexpr packet::MacAddr kServerMac = 0x0000bb;
constexpr packet::MacAddr kClientMacBase = 0x000100;

// The test_e2e Testbed plus a pluggable fault plan.
class ChaosBed {
 public:
  explicit ChaosBed(u32 clients = 1,
                    alloc::Scheme scheme = alloc::Scheme::kWorstFit)
      : net_(sim_) {
    controller::SwitchNode::Config cfg;
    cfg.scheme = scheme;
    cfg.costs.table_entry_update = 100 * kMicrosecond;
    cfg.costs.snapshot_per_block = 1 * kMicrosecond;
    cfg.costs.clear_per_block = 1 * kMicrosecond;
    cfg.costs.extraction_timeout = 200 * kMillisecond;
    switch_ = std::make_shared<controller::SwitchNode>("switch", cfg);
    net_.attach(switch_);

    server_ = std::make_shared<apps::ServerNode>("server", kServerMac);
    net_.attach(server_);
    net_.connect(*switch_, 0, *server_, 0);
    switch_->bind(kServerMac, 0);

    for (u32 i = 0; i < clients; ++i) {
      auto client = std::make_shared<client::ClientNode>(
          "client" + std::to_string(i), kClientMacBase + i, kSwitchMac);
      net_.attach(client);
      net_.connect(*switch_, i + 1, *client, 0);
      switch_->bind(kClientMacBase + i, i + 1);
      clients_.push_back(std::move(client));
    }
  }

  // Quiescent-only (between run_for calls).
  void inject(FaultPlan plan) {
    injector_ = std::make_unique<FaultInjector>(std::move(plan));
    net_.set_transmit_hook(injector_.get());
  }

  void run_for(SimTime duration) { sim_.run_until(sim_.now() + duration); }

  Simulator sim_;
  Network net_;
  std::unique_ptr<FaultInjector> injector_;
  std::shared_ptr<controller::SwitchNode> switch_;
  std::shared_ptr<apps::ServerNode> server_;
  std::vector<std::shared_ptr<client::ClientNode>> clients_;
};

void wire_cache_replies(client::ClientNode& client, apps::CacheService& cache) {
  client.on_passive = [&cache](netsim::Frame& frame) {
    const auto msg = apps::KvMessage::parse(
        std::span<const u8>(frame).subspan(packet::EthernetHeader::kWireSize));
    if (msg) cache.handle_server_reply(*msg);
  };
}

TEST(Recovery, CachePopulateRetransmitsThroughLoss) {
  ChaosBed bed;
  auto cache = std::make_shared<apps::CacheService>("cache", kServerMac);
  bed.clients_[0]->register_service(cache);
  cache->request_allocation();
  bed.run_for(2 * kSecond);
  ASSERT_TRUE(cache->operational());

  // 25% loss on the client<->switch link: write capsules and their acks
  // both take hits; every populate must still resolve.
  FaultPlan plan;
  plan.seed = 41;
  LinkFaults rule;
  rule.node_a = "client0";
  rule.node_b = "switch";
  rule.drop = 0.25;
  plan.link_faults.push_back(rule);
  bed.inject(plan);

  std::vector<std::pair<u64, u32>> items;
  for (u32 i = 0; i < 32; ++i) items.emplace_back(0x9000 + i, i + 1);
  bool done = false;
  cache->populate(items, [&] { done = true; });
  bed.run_for(10 * kSecond);

  EXPECT_TRUE(done);
  const auto& stats = cache->populate_reliability().stats();
  EXPECT_EQ(stats.tracked, 32u);
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_GT(stats.recovered, 0u);
  EXPECT_GT(bed.injector_->injected(FaultKind::kDrop), 0u);
  // Every item either acked or (rarely, under the retry budget) gave up.
  EXPECT_EQ(stats.acked + stats.give_ups, 32u);
  EXPECT_EQ(cache->populate_reliability().outstanding(), 0u);
}

TEST(Recovery, HeavyHitterExtractionRetransmitsThroughLoss) {
  ChaosBed bed;
  auto monitor =
      std::make_shared<apps::FrequentItemService>("monitor", kServerMac);
  bed.clients_[0]->register_service(monitor);
  monitor->request_allocation();
  bed.run_for(2 * kSecond);
  ASSERT_TRUE(monitor->operational());

  for (u32 i = 0; i < 40; ++i) monitor->observe(0xbeef);
  bed.run_for(kSecond);

  FaultPlan plan;
  plan.seed = 43;
  LinkFaults rule;
  rule.node_a = "client0";
  rule.node_b = "switch";
  rule.drop = 0.3;
  plan.link_faults.push_back(rule);
  bed.inject(plan);

  bool done = false;
  std::vector<std::pair<u64, u32>> items;
  monitor->extract(
      [&](std::vector<std::pair<u64, u32>> got) {
        done = true;
        items = std::move(got);
      },
      /*min_count=*/10);
  bed.run_for(20 * kSecond);

  EXPECT_TRUE(done);
  const auto& stats = monitor->extract_reliability().stats();
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_GT(stats.recovered, 0u);
  EXPECT_GT(bed.injector_->injected(FaultKind::kDrop), 0u);
  ASSERT_FALSE(items.empty());
  EXPECT_EQ(items[0].first, 0xbeefu);
}

// Satellite: the disturbed client is cut off entirely; the switch's
// extraction deadline force-finalizes the admission so the new tenant
// still comes up.
TEST(Recovery, DisturbedClientTotalLossForcesFinalize) {
  ChaosBed bed(2, alloc::Scheme::kFirstFit);  // first-fit forces sharing
  auto first = std::make_shared<apps::CacheService>("first", kServerMac);
  bed.clients_[0]->register_service(first);
  first->request_allocation();
  bed.run_for(2 * kSecond);
  ASSERT_TRUE(first->operational());

  // From now on client0 is unreachable in both directions.
  FaultPlan plan;
  LinkFaults cut;
  cut.node_a = "client0";
  cut.node_b = "switch";
  cut.from = bed.sim_.now();
  cut.drop = 1.0;
  plan.link_faults.push_back(cut);
  bed.inject(plan);

  auto second = std::make_shared<apps::CacheService>("second", kServerMac);
  bed.clients_[1]->register_service(second);
  second->request_allocation();
  bed.run_for(2 * kSecond);

  EXPECT_TRUE(second->operational());
  EXPECT_GE(bed.switch_->controller().stats().extraction_timeouts, 1u);
  EXPECT_FALSE(bed.switch_->controller().has_pending());
  EXPECT_GT(bed.injector_->injected(FaultKind::kDrop), 0u);
}

// Drops only client0 -> switch: the ReallocNotice arrives, the client's
// kExtractComplete never does. The handshake tracker must keep
// retransmitting until the deadline force-finalizes, after which the
// switch's fresh AllocResponse (the reverse direction is clean) lands
// and recovers the disturbed service.
class OneWayDrop final : public netsim::TransmitHook {
 public:
  OneWayDrop(std::string from, std::string to, SimTime start)
      : from_(std::move(from)), to_(std::move(to)), start_(start) {}

  Verdict on_transmit(const netsim::Node& from, const netsim::Node& to,
                      SimTime now, u64, netsim::Frame&, FramePool&) override {
    Verdict verdict;
    if (now >= start_ && from.name() == from_ && to.name() == to_) {
      verdict.drop = true;
      ++dropped;
    }
    return verdict;
  }

  u64 dropped = 0;

 private:
  std::string from_, to_;
  SimTime start_;
};

TEST(Recovery, ExtractCompleteRetransmitsUntilDeadlineThenRecovers) {
  ChaosBed bed(2, alloc::Scheme::kFirstFit);
  auto first = std::make_shared<apps::CacheService>("first", kServerMac);
  bed.clients_[0]->register_service(first);
  first->request_allocation();
  bed.run_for(2 * kSecond);
  ASSERT_TRUE(first->operational());

  OneWayDrop cut("client0", "switch", bed.sim_.now());
  bed.net_.set_transmit_hook(&cut);

  auto second = std::make_shared<apps::CacheService>("second", kServerMac);
  bed.clients_[1]->register_service(second);
  second->request_allocation();
  bed.run_for(2 * kSecond);

  EXPECT_TRUE(second->operational());
  EXPECT_GE(bed.switch_->controller().stats().extraction_timeouts, 1u);
  // The disturbed client heard the notice and kept resending its
  // ExtractComplete into the void.
  EXPECT_GT(first->handshake_reliability().stats().retransmits, 0u);
  EXPECT_GT(cut.dropped, 0u);
  // The switch's post-timeout AllocResponse recovered it.
  EXPECT_TRUE(first->operational());
}

// Brownout end-to-end: the switch loses power (frames lost, registers
// wiped at the up-edge), and the client re-populates through the normal
// data plane -- the paper's client-driven content migration.
TEST(Recovery, BrownoutWipesRegistersAndClientRepopulates) {
  ChaosBed bed;
  auto cache = std::make_shared<apps::CacheService>("cache", kServerMac);
  bed.clients_[0]->register_service(cache);
  wire_cache_replies(*bed.clients_[0], *cache);
  bed.server_->put(0x77, 1234);
  cache->request_allocation();
  bed.run_for(2 * kSecond);
  ASSERT_TRUE(cache->operational());

  bool populated = false;
  cache->populate({{0x77, 1234}}, [&] { populated = true; });
  bed.run_for(kSecond);
  ASSERT_TRUE(populated);

  std::vector<bool> hits;
  cache->on_result = [&](u32, u64, u32, bool hit) { hits.push_back(hit); };
  cache->get(0x77);
  bed.run_for(kSecond);
  ASSERT_EQ(hits, std::vector<bool>{true});
  hits.clear();

  // Power-cycle the switch for 50 ms; SRAM does not survive.
  const SimTime down = bed.sim_.now() + kMillisecond;
  FaultPlan plan;
  plan.brownouts.push_back(
      Brownout{.node = "switch", .at = down, .duration = 50 * kMillisecond});
  bed.inject(plan);
  bed.sim_.schedule_at(plan.brownouts[0].up_at(),
                       [&] { bed.switch_->wipe_registers(); });
  // A request issued mid-outage is simply lost (no cache-level retry for
  // reads): it must neither hit nor miss.
  bed.sim_.schedule_at(down + 10 * kMillisecond, [&] { cache->get(0x77); });
  bed.run_for(kSecond);
  EXPECT_GT(bed.injector_->injected(FaultKind::kOutage), 0u);
  EXPECT_TRUE(hits.empty());

  // The cached entry is gone: same key now misses (served by the server).
  hits.clear();
  cache->get(0x77);
  bed.run_for(kSecond);
  ASSERT_EQ(hits, std::vector<bool>{false});

  // Client-driven re-population restores the hit path.
  populated = false;
  cache->populate({{0x77, 1234}}, [&] { populated = true; });
  bed.run_for(kSecond);
  ASSERT_TRUE(populated);
  hits.clear();
  cache->get(0x77);
  bed.run_for(kSecond);
  EXPECT_EQ(hits, std::vector<bool>{true});
}

// --- controller force-finalize (satellite API) ----------------------------

TEST(ForceFinalize, FinalizesPendingAdmissionAndCountsTimeout) {
  rmt::PipelineConfig config;
  rmt::Pipeline pipeline(config);
  runtime::ActiveRuntime runtime(pipeline);
  controller::Controller ctrl(pipeline, runtime, alloc::Scheme::kFirstFit);
  const auto first = ctrl.admit(apps::cache_request());
  ASSERT_TRUE(first.admitted);
  const auto second = ctrl.admit(apps::cache_request());
  ASSERT_TRUE(second.pending);

  ctrl.force_finalize();
  EXPECT_FALSE(ctrl.has_pending());
  EXPECT_EQ(ctrl.stats().extraction_timeouts, 1u);
  EXPECT_FALSE(runtime.is_deactivated(first.fid));
  bool installed = false;
  for (u32 s = 0; s < pipeline.stage_count(); ++s) {
    installed |= pipeline.stage(s).lookup(second.fid) != nullptr;
  }
  EXPECT_TRUE(installed);
}

TEST(ForceFinalize, ThrowsWithoutPendingAdmission) {
  rmt::PipelineConfig config;
  rmt::Pipeline pipeline(config);
  runtime::ActiveRuntime runtime(pipeline);
  controller::Controller ctrl(pipeline, runtime);
  EXPECT_THROW(ctrl.force_finalize(), UsageError);
}

}  // namespace
}  // namespace artmt
