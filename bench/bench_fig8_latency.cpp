// Figure 8: latency overheads.
//   (a) total provisioning time per admission under Poisson churn --
//       allocator compute (measured) + table updates + snapshotting
//       (modeled) -- levelling off at ~1 s, vs the 28.79 s P4-compile
//       baseline the paper measured for a 22-instance monolithic image.
//   (b) client-to-switch RTT vs active program length (10/20/30
//       instructions + echo baseline) over the event-driven testbed;
//       every extra pipeline pass adds ~0.5 us.
#include <cstdio>

#include "common/ewma.hpp"
#include "controller/switch_node.hpp"
#include "harness.hpp"
#include "netsim/network.hpp"
#include "workload/arrivals.hpp"

namespace artmt::bench {
namespace {

// Mean cost composition of one Fig. 8a run (seconds), for the per-entry
// vs batched-updates comparison below.
struct ProvisioningBreakdown {
  double compute = 0.0;
  double tables = 0.0;
  double snapshot = 0.0;
  double steady = 0.0;  // mean total of the last 50 admissions
};

ProvisioningBreakdown provisioning_time(bool batched_updates) {
  std::printf("\n## Fig 8a: provisioning time per admission (s)%s\n",
              batched_updates ? " -- batched+coalesced table updates" : "");
  rmt::PipelineConfig pipe_cfg;
  rmt::Pipeline pipeline(pipe_cfg);
  runtime::ActiveRuntime runtime(pipeline);
  controller::CostModel costs;
  costs.batched_updates = batched_updates;
  controller::Controller ctrl(pipeline, runtime, alloc::Scheme::kWorstFit,
                              alloc::MutantPolicy::most_constrained(), costs);

  workload::ArrivalProcess process(2.0, 1.0, 7);
  Rng departure_rng(99);
  std::vector<Fid> resident;

  stats::Series total("total_s");
  stats::Series compute("compute_s");
  stats::Series tables("table_update_s");
  stats::Series snapshot("snapshot_s");
  u32 sample = 0;
  for (u32 epoch = 0; epoch < 200; ++epoch) {
    const auto plan = process.next_epoch();
    for (u32 d = 0; d < plan.departures && !resident.empty(); ++d) {
      const std::size_t pick = departure_rng.uniform(resident.size());
      ctrl.release(resident[pick]);
      resident.erase(resident.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    for (const auto kind : plan.arrivals) {
      const auto result = ctrl.admit(request_for(kind));
      if (ctrl.has_pending()) {
        ctrl.timeout_pending();
        ctrl.apply_pending();
      }
      if (!result.admitted) continue;
      resident.push_back(result.fid);
      const double second = static_cast<double>(kSecond);
      total.add(sample, result.provisioning_time() / second);
      compute.add(sample, result.compute_ms / 1e3);
      tables.add(sample, result.table_update_cost / second);
      snapshot.add(sample, result.snapshot_cost / second);
      ++sample;
    }
  }
  // The paper plots the trend; smooth the per-admission spikes.
  Ewma smoothed(0.1);
  stats::Series trend("total_ewma_s");
  for (const auto& point : total.points()) {
    trend.add(point.x, smoothed.update(point.y));
  }
  print_series("admission,total_provisioning_ewma_s", trend, 10);
  std::printf("breakdown (mean): compute=%.4fs tables=%.4fs snapshot=%.4fs\n",
              compute.mean_y(), tables.mean_y(), snapshot.mean_y());
  // Steady state: mean of the last 50 admissions.
  double steady = 0.0;
  u32 tail = 0;
  const auto& points = total.points();
  for (auto it = points.rbegin(); it != points.rend() && tail < 50;
       ++it, ++tail) {
    steady += it->y;
  }
  steady = tail ? steady / tail : 0.0;
  std::printf("steady-state provisioning (mean of last 50): %.3f s\n",
              steady);
  const double p4_compile =
      static_cast<double>(ctrl.costs().p4_compile_baseline) / kSecond;
  std::printf(
      "P4 recompilation baseline (paper, 22-instance image): %.2f s -> "
      "ActiveRMT is %.0fx faster at steady state\n",
      p4_compile, p4_compile / steady);
  return ProvisioningBreakdown{compute.mean_y(), tables.mean_y(),
                               snapshot.mean_y(), steady};
}

// The paper's Fig. 8a composition is dominated by per-entry table
// updates; batching+coalescing (CostModel::batched_updates) shifts it
// toward allocator compute + snapshotting. Print the shift so
// EXPERIMENTS.md can record both compositions side by side.
void provisioning_composition_shift(const ProvisioningBreakdown& per_entry,
                                    const ProvisioningBreakdown& batched) {
  std::printf("\n## Fig 8a composition shift: per-entry vs batched updates\n");
  const auto share = [](const ProvisioningBreakdown& b, double part) {
    const double total = b.compute + b.tables + b.snapshot;
    return total > 0.0 ? 100.0 * part / total : 0.0;
  };
  std::printf(
      "per-entry: compute %.1f%% / tables %.1f%% / snapshot %.1f%% "
      "(steady %.3f s)\n",
      share(per_entry, per_entry.compute), share(per_entry, per_entry.tables),
      share(per_entry, per_entry.snapshot), per_entry.steady);
  std::printf(
      "batched:   compute %.1f%% / tables %.1f%% / snapshot %.1f%% "
      "(steady %.3f s)\n",
      share(batched, batched.compute), share(batched, batched.tables),
      share(batched, batched.snapshot), batched.steady);
  std::printf(
      "steady-state provisioning: %.3f s -> %.3f s (%.1fx) with batched "
      "table updates\n",
      per_entry.steady, batched.steady,
      batched.steady > 0.0 ? per_entry.steady / batched.steady : 0.0);
}

void rtt_vs_program_length() {
  std::printf("\n## Fig 8b: RTT vs program length (us)\n");
  netsim::Simulator sim;
  netsim::Network net(sim);
  controller::SwitchNode::Config cfg;
  auto sw = std::make_shared<controller::SwitchNode>("switch", cfg);
  net.attach(sw);

  // One measurement client, 1 us links at 40 Gbps like the testbed.
  class Probe : public netsim::Node {
   public:
    Probe() : netsim::Node("probe") {}
    void on_frame(netsim::Frame, u32) override {
      received_at = network().simulator().now();
    }
    SimTime received_at = -1;
  };
  auto probe = std::make_shared<Probe>();
  net.attach(probe);
  net.connect(*sw, 1, *probe, 0);
  sw->bind(0x100, 1);

  auto measure = [&](u32 instructions, bool active) {
    packet::ActivePacket pkt;
    if (active) {
      active::Program program;
      program.push({active::Opcode::kRts});
      for (u32 i = 1; i + 1 < instructions; ++i) {
        program.push({active::Opcode::kNop});
      }
      program.push({active::Opcode::kReturn});
      pkt = packet::ActivePacket::make_program(0, packet::ArgumentHeader{},
                                               program);
    } else {
      // Baseline: a one-instruction RTS "echo" with no further work.
      active::Program program;
      program.push({active::Opcode::kRts});
      program.push({active::Opcode::kReturn});
      pkt = packet::ActivePacket::make_program(0, packet::ArgumentHeader{},
                                               program);
    }
    pkt.ethernet.src = 0x100;
    pkt.ethernet.dst = 0x0aa;
    // Pad to 256-byte frames like the paper's measurement.
    auto frame = pkt.serialize();
    frame.resize(std::max<std::size_t>(frame.size(), 256), 0);
    probe->received_at = -1;
    const SimTime sent = sim.now();
    net.transmit(*probe, 0, std::move(frame));
    sim.run_until(sim.now() + 10 * kMillisecond);
    return (probe->received_at - sent) / 1000.0;  // us
  };

  const double echo = measure(2, false);
  std::printf("baseline echo RTT: %.3f us\n", echo);
  for (const u32 n : {10u, 20u, 30u}) {
    const double rtt = measure(n, true);
    std::printf("%u instructions: RTT=%.3f us (+%.3f us over echo)\n", n,
                rtt, rtt - echo);
  }
  std::printf("per-pass latency model: %.1f us\n",
              static_cast<double>(rmt::PipelineConfig{}.pass_latency) /
                  1000.0);
}

}  // namespace
}  // namespace artmt::bench

int main() {
  std::printf("=== Figure 8: latency overhead ===\n");
  const auto per_entry = artmt::bench::provisioning_time(false);
  const auto batched = artmt::bench::provisioning_time(true);
  artmt::bench::provisioning_composition_shift(per_entry, batched);
  artmt::bench::rtt_vs_program_length();
  return 0;
}
