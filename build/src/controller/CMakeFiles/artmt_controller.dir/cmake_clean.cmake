file(REMOVE_RECURSE
  "CMakeFiles/artmt_controller.dir/controller.cpp.o"
  "CMakeFiles/artmt_controller.dir/controller.cpp.o.d"
  "CMakeFiles/artmt_controller.dir/switch_node.cpp.o"
  "CMakeFiles/artmt_controller.dir/switch_node.cpp.o.d"
  "libartmt_controller.a"
  "libartmt_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmt_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
