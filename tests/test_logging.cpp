// Tests for the leveled logger and the stopwatch.
#include <gtest/gtest.h>

#include <thread>

#include "common/logging.hpp"
#include "common/stopwatch.hpp"

namespace artmt {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  LoggingTest() : previous_(log_level()) {}
  ~LoggingTest() override { set_log_level(previous_); }
  LogLevel previous_;
};

TEST_F(LoggingTest, ThresholdFilters) {
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  testing::internal::CaptureStderr();
  log(LogLevel::kDebug, "hidden");
  log(LogLevel::kInfo, "hidden too");
  log(LogLevel::kWarn, "visible ", 42);
  log(LogLevel::kError, "also visible");
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("hidden"), std::string::npos);
  EXPECT_NE(captured.find("visible 42"), std::string::npos);
  EXPECT_NE(captured.find("[WARN ]"), std::string::npos);
  EXPECT_NE(captured.find("[ERROR]"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  log(LogLevel::kError, "nope");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST_F(LoggingTest, ConcatenatesMixedTypes) {
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  log(LogLevel::kInfo, "x=", 1, " y=", 2.5, " z=", "s");
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("x=1 y=2.5 z=s"), std::string::npos);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double ms = watch.elapsed_ms();
  EXPECT_GE(ms, 9.0);
  EXPECT_LT(ms, 500.0);
  EXPECT_NEAR(watch.elapsed_us(), watch.elapsed_ms() * 1000.0,
              watch.elapsed_ms() * 100.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  watch.reset();
  EXPECT_LT(watch.elapsed_ms(), 5.0);
}

}  // namespace
}  // namespace artmt
