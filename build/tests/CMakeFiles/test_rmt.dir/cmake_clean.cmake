file(REMOVE_RECURSE
  "CMakeFiles/test_rmt.dir/test_rmt.cpp.o"
  "CMakeFiles/test_rmt.dir/test_rmt.cpp.o.d"
  "test_rmt"
  "test_rmt.pdb"
  "test_rmt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
