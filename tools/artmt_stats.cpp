// artmt_stats -- run the end-to-end testbed scenario (an in-network cache
// plus a heavy-hitter monitor sharing one switch) with every component
// wired into the process-wide telemetry registry, then dump the metrics
// snapshot as JSON: per-FID packet counters, admission/rejection totals,
// cache hit ratios, latency histograms -- the paper's evaluation
// quantities without recompiling a single printf.
//
// Usage:
//   artmt_stats [--requests N] [--trace FILE] [--shards N]
//               [--loss P] [--fault-seed S] [--alloc]
//     --requests N   data-plane requests per service (default 2000)
//     --trace FILE   also write TraceSink JSON-lines (simulated
//                    timestamps) for every control-plane/netsim event
//     --shards N     run on the sharded multi-worker engine with N
//                    shards (switch pinned to shard 0, fleets spread
//                    over the rest). Uses the modeled allocator compute
//                    cost, so the snapshot is byte-identical for any N
//                    and across repeated runs. Incompatible with
//                    --trace: the trace sink is process-global and
//                    worker threads would interleave its lines.
//     --loss P       attach a FaultInjector with uniform loss P on every
//                    link; faults.* counters land in the snapshot and
//                    the reliability.* retransmit schedules absorb the
//                    loss (artmt_chaos runs the full scripted matrix)
//     --fault-seed S seed for the loss plan's substreams (default 1)
//     --alloc        instead of the metrics snapshot, dump the switch
//                    allocator's state after the scenario: scheme, search
//                    mode, resident count, and per-stage utilization +
//                    fragmentation (largest free run / total free blocks)
//     --heatmap      instead of the snapshot, print the per-(stage, FID)
//                    memory-access heatmap the runtime recorded (reads /
//                    writes / collisions per cell) plus the decaying
//                    hotness ranking the migration engine consumes
//     --migration    run with the background migration & defragmentation
//                    engine enabled and dump its report instead of the
//                    snapshot: tick/plan/execute counters, remap-queue
//                    stats, the controller's per-kind migration totals,
//                    and the live hotness table with cold streaks
//     --spans FILE   no scenario: load a span dump (artmt_spans format /
//                    --span-dump output) and print the per-FID
//                    p50/p90/p99 phase latency breakdown
//     --span-dump F  record causal spans during the scenario and write
//                    the canonical sorted dump to F (byte-identical for
//                    any engine and shard count)
//     --fabric       no single-switch scenario: run the multi-switch
//                    fabric story instead -- four cache tenants placed by
//                    the federated global controller across a 4-leaf /
//                    2-spine fabric, leaf0 killed mid-run so the
//                    failure-driven re-placement path executes -- and
//                    dump the controller's FabricReport (placements,
//                    evacuations, downtime percentiles, state loss) plus
//                    the fabric.* metrics snapshot as JSON. Honors
//                    --shards (default 1); the outcome is byte-identical
//                    for any shard count.
//
// The snapshot goes to stdout; a human summary goes to stderr.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/cache_service.hpp"
#include "apps/hh_service.hpp"
#include "apps/server_node.hpp"
#include "client/client_node.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "controller/switch_node.hpp"
#include "fabric/topology.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "netsim/sharded.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "telemetry/span_analysis.hpp"
#include "telemetry/trace.hpp"
#include "workload/zipf.hpp"

using namespace artmt;

namespace {

// --alloc: the allocator's live state as JSON. Fragmentation per stage is
// largest free run / total free blocks (1.0 = perfectly contiguous free
// space; approaches 0 as holes shred it).
void print_alloc_report(const alloc::Allocator& a) {
  std::printf("{\n");
  std::printf("  \"scheme\": \"%s\",\n", alloc::scheme_name(a.scheme()));
  std::printf("  \"search_mode\": \"%s\",\n",
              alloc::search_mode_name(a.search_mode()));
  std::printf("  \"resident_apps\": %u,\n", a.resident_count());
  std::printf("  \"utilization\": %.4f,\n", a.utilization());
  std::printf("  \"stages\": [\n");
  const u32 stages = a.geometry().logical_stages;
  for (u32 s = 0; s < stages; ++s) {
    const alloc::StageState& st = a.stage(s);
    const u32 free = st.free_blocks();
    const double frag =
        free == 0 ? 1.0
                  : static_cast<double>(st.largest_free_run()) /
                        static_cast<double>(free);
    std::printf(
        "    {\"stage\": %u, \"capacity\": %u, \"allocated\": %u, "
        "\"free\": %u, \"fungible\": %u, \"largest_free_run\": %u, "
        "\"fragmentation\": %.4f, \"elastic_members\": %u, "
        "\"inelastic_members\": %u}%s\n",
        s, st.capacity(), st.allocated_blocks(), free, st.fungible_blocks(),
        st.largest_free_run(), frag, st.elastic_member_count(),
        st.inelastic_member_count(), s + 1 == stages ? "" : ",");
  }
  std::printf("  ]\n}\n");
}

// --heatmap: the per-(stage, FID) access table plus the hotness ranking.
void print_heatmap_report(const telemetry::StageHeatmap& heatmap) {
  std::printf("%-6s", "fid");
  for (u32 s = 0; s < heatmap.stages(); ++s) std::printf("  s%-2u r/w/c       ", s);
  std::printf("  total\n");
  telemetry::HotnessTable hotness;
  hotness.observe(heatmap);
  for (const i32 fid : heatmap.fids()) {
    std::printf("%-6d", fid);
    for (u32 s = 0; s < heatmap.stages(); ++s) {
      const auto* cell = heatmap.find(s, fid);
      if (cell == nullptr || (cell->reads | cell->writes | cell->collisions) == 0) {
        std::printf("  %-15s", "-");
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu/%llu/%llu",
                      static_cast<unsigned long long>(cell->reads),
                      static_cast<unsigned long long>(cell->writes),
                      static_cast<unsigned long long>(cell->collisions));
        std::printf("  %-15s", buf);
      }
    }
    std::printf("  %llu\n",
                static_cast<unsigned long long>(heatmap.total_accesses(fid)));
  }
  std::printf("\nhotness (decaying access score, hottest first):\n");
  for (const auto& [fid, score] : hotness.ranked()) {
    std::printf("  fid %-5d score %llu\n", fid,
                static_cast<unsigned long long>(score));
  }
}

// --migration: the background engine's full observability surface.
void print_migration_report(controller::SwitchNode& sw) {
  const auto engine = sw.migration_stats();
  const controller::ControllerStats& ctrl = sw.controller().stats();
  std::printf("{\n");
  std::printf(
      "  \"engine\": {\"ticks\": %llu, \"deferred\": %llu, "
      "\"executed\": %llu, \"noops\": %llu, \"departed\": %llu},\n",
      static_cast<unsigned long long>(engine.ticks),
      static_cast<unsigned long long>(engine.deferred),
      static_cast<unsigned long long>(engine.executed),
      static_cast<unsigned long long>(engine.noops),
      static_cast<unsigned long long>(engine.departed));
  std::printf(
      "  \"planner\": {\"cycles\": %llu, \"demotions_planned\": %llu, "
      "\"promotions_planned\": %llu, \"reslides_planned\": %llu, "
      "\"cooldown_skips\": %llu},\n",
      static_cast<unsigned long long>(engine.planner.cycles),
      static_cast<unsigned long long>(engine.planner.demotions_planned),
      static_cast<unsigned long long>(engine.planner.promotions_planned),
      static_cast<unsigned long long>(engine.planner.reslides_planned),
      static_cast<unsigned long long>(engine.planner.cooldown_skips));
  std::printf(
      "  \"queue\": {\"enqueued\": %llu, \"popped\": %llu, "
      "\"congestion_drops\": %llu, \"duplicates\": %llu, \"purged\": %llu, "
      "\"high_water\": %u},\n",
      static_cast<unsigned long long>(engine.queue.enqueued),
      static_cast<unsigned long long>(engine.queue.popped),
      static_cast<unsigned long long>(engine.queue.congestion_drops),
      static_cast<unsigned long long>(engine.queue.duplicates),
      static_cast<unsigned long long>(engine.queue.purged),
      engine.queue.high_water);
  std::printf(
      "  \"controller\": {\"migrations\": %llu, \"demotions\": %llu, "
      "\"promotions\": %llu, \"reslides\": %llu, \"noops\": %llu, "
      "\"tcam_skips\": %llu, \"blocks_migrated\": %llu},\n",
      static_cast<unsigned long long>(ctrl.migrations),
      static_cast<unsigned long long>(ctrl.migration_demotions),
      static_cast<unsigned long long>(ctrl.migration_promotions),
      static_cast<unsigned long long>(ctrl.migration_reslides),
      static_cast<unsigned long long>(ctrl.migration_noops),
      static_cast<unsigned long long>(ctrl.migration_tcam_skips),
      static_cast<unsigned long long>(ctrl.blocks_migrated));
  std::printf("  \"hotness\": [\n");
  const alloc::HotnessTable& hotness = sw.hotness();
  const auto ranked = hotness.ranked();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const auto [fid, score] = ranked[i];
    std::printf(
        "    {\"fid\": %d, \"score\": %llu, \"cold_streak\": %llu, "
        "\"cold\": %s}%s\n",
        fid, static_cast<unsigned long long>(score),
        static_cast<unsigned long long>(hotness.cold_streak(fid)),
        hotness.is_cold(fid) ? "true" : "false",
        i + 1 == ranked.size() ? "" : ",");
  }
  std::printf("  ]\n}\n");
}

double downtime_percentile_ms(std::vector<SimTime> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return static_cast<double>(samples[idx]) / static_cast<double>(kMillisecond);
}

// --fabric: the multi-switch observability surface. Four cache tenants on
// a 4-leaf / 2-spine fabric, placed by the federated global controller;
// leaf0 loses every link at 500ms and is never restored, so the health
// epochs declare it dead and the evacuation/re-placement machinery runs
// inside the dump window. Deterministic for any shard count.
int run_fabric_report(u32 shards) {
  const u32 workers = std::max<u32>(shards, 1);
  netsim::ShardedSimulator ssim(workers);
  netsim::Network net(ssim);

  faults::FaultPlan plan;
  plan.flaps.push_back({"leaf0", "", 500 * kMillisecond, 10 * kSecond});
  faults::FaultInjector injector(plan, workers);
  net.set_transmit_hook(&injector);

  telemetry::MetricsRegistry fabric_registry;
  fabric::TopologyConfig tcfg;
  tcfg.leaves = 4;
  tcfg.spines = 2;
  tcfg.switch_config.costs.table_entry_update = 100 * kMicrosecond;
  tcfg.switch_config.costs.snapshot_per_block = 1 * kMicrosecond;
  tcfg.switch_config.costs.clear_per_block = 1 * kMicrosecond;
  tcfg.switch_config.costs.extraction_timeout = 50 * kMillisecond;
  tcfg.switch_config.compute_model = alloc::ComputeModel::deterministic();
  tcfg.controller.epoch = 2 * kMillisecond;
  tcfg.controller.metrics = &fabric_registry;
  fabric::Topology topo(net, tcfg);
  topo.pin(ssim);

  constexpr packet::MacAddr kFabServerMac = 0x5E00;
  constexpr packet::MacAddr kFabClientBase = 0xC100;
  auto server = std::make_shared<apps::ServerNode>("server", kFabServerMac);
  net.attach(server);
  topo.attach_host(*server, 0, 2, kFabServerMac);
  ssim.pin(*server, 2 % workers);

  // Tenant 0 lands on the doomed leaf0 (round-robin admission places
  // service i on leaf i), so its service is the evacuation victim.
  const std::vector<u32> client_leaf = {1, 2, 3, 1};
  const u32 n = static_cast<u32>(client_leaf.size());
  struct Tenant {
    std::shared_ptr<client::ClientNode> client;
    std::shared_ptr<apps::CacheService> cache;
    workload::ZipfGenerator zipf{512, 1.2};
    Rng rng{0};
    u64 hits = 0;
    u64 misses = 0;
    SimTime stop_time = 0;
    std::function<void()> drive;
  };
  std::vector<std::unique_ptr<Tenant>> tenants;
  const auto key_of = [](u32 tenant, u32 rank) {
    return (static_cast<u64>(tenant + 1) << 40) ^
           workload::ZipfGenerator::key_for_rank(rank);
  };
  constexpr SimTime kStop = 1'200 * kMillisecond;
  const SimTime drive_stop = kStop - 300 * kMillisecond;
  for (u32 i = 0; i < n; ++i) {
    auto t = std::make_unique<Tenant>();
    t->rng = Rng(1000 + i);
    t->client = std::make_shared<client::ClientNode>(
        "tenant" + std::to_string(i), kFabClientBase + i,
        topo.controller_mac());
    net.attach(t->client);
    topo.attach_host(*t->client, 0, client_leaf[i], kFabClientBase + i);
    ssim.pin(*t->client, client_leaf[i] % workers);
    t->cache = std::make_shared<apps::CacheService>(
        "cache" + std::to_string(i), kFabServerMac);
    t->client->register_service(t->cache);
    tenants.push_back(std::move(t));
    for (u32 rank = 0; rank < tenants.back()->zipf.universe(); ++rank) {
      server->put(key_of(i, rank), rank + 1);
    }
  }
  for (u32 i = 0; i < n; ++i) {
    Tenant& t = *tenants[i];
    t.client->on_passive = [&t](netsim::Frame& frame) {
      const auto msg = apps::KvMessage::parse(
          std::span<const u8>(frame).subspan(
              packet::EthernetHeader::kWireSize));
      if (msg) t.cache->handle_server_reply(*msg);
    };
    t.cache->on_result = [&t](u32, u64, u32, bool hit) {
      (hit ? t.hits : t.misses)++;
    };
    const auto hot_set = [&t, i, key_of] {
      const u32 k = std::min(t.cache->bucket_count(), t.zipf.universe());
      std::vector<std::pair<u64, u32>> out;
      out.reserve(k);
      for (u32 rank = k; rank-- > 0;)
        out.emplace_back(key_of(i, rank), rank + 1);
      return out;
    };
    t.cache->on_relocated = [&t, hot_set] { t.cache->populate(hot_set()); };
    t.drive = [&t, &net, i, key_of] {
      if (net.simulator().now() >= t.stop_time) return;
      t.cache->get(key_of(i, t.zipf.next_rank(t.rng)));
      net.simulator().schedule_after(500 * kMicrosecond, [&t] { t.drive(); });
    };
    t.cache->on_ready = [&t, hot_set, drive_stop] {
      t.cache->populate(hot_set());
      t.stop_time = drive_stop;
      t.drive();
    };
    ssim.schedule_on(*t.client, (i + 1) * 100 * kMillisecond,
                     [&t] { t.cache->request_allocation(); });
  }

  topo.start(ssim, 1 * kMillisecond, kStop);
  ssim.run_until(kStop + 500 * kMillisecond);

  const fabric::FabricReport report = topo.controller().report();
  const auto leaf_of = [&](packet::MacAddr mac) -> std::string {
    for (u32 i = 0; i < topo.leaves(); ++i) {
      if (topo.leaf_mac(i) == mac) return "leaf" + std::to_string(i);
    }
    return mac == 0 ? "unplaced" : "?";
  };
  // Queries carry the origin server as their L2 destination so a miss
  // continues there unassisted; a cache therefore intercepts them only
  // when its leaf is on the client->server path (client leaf or server
  // leaf). Off-path placements still serve every request -- management
  // capsules are steered to the owner, misses fall through to the origin.
  const auto on_path = [&](u32 tenant) {
    const packet::MacAddr owner =
        topo.controller().owner_of(tenants[tenant]->cache->fid());
    return owner == topo.leaf_mac(client_leaf[tenant]) ||
           owner == topo.leaf_mac(2);  // server leaf
  };
  std::fprintf(stderr,
               "fabric scenario done at t=%.3fs (%u leaves, %u spines, "
               "%u tenants, leaf0 killed at 0.5s)\n",
               ssim.now() / 1e9, topo.leaves(), topo.spines(), n);
  for (u32 i = 0; i < n; ++i) {
    const Tenant& t = *tenants[i];
    std::fprintf(stderr,
                 "  tenant%u: fid %u on %s (%s), %llu hits / %llu misses%s\n",
                 i, t.cache->fid(),
                 leaf_of(topo.controller().owner_of(t.cache->fid())).c_str(),
                 on_path(i) ? "on-path" : "off-path: origin serves queries",
                 static_cast<unsigned long long>(t.hits),
                 static_cast<unsigned long long>(t.misses),
                 t.cache->operational() ? "" : " [NOT OPERATIONAL]");
  }

  std::printf("{\n");
  std::printf(
      "  \"topology\": {\"leaves\": %u, \"spines\": %u, \"tenants\": %u, "
      "\"leaf_kill_at_ms\": 500},\n",
      topo.leaves(), topo.spines(), n);
  std::printf(
      "  \"report\": {\"placements\": %llu, \"evacuations\": %llu, "
      "\"replaced\": %llu, \"unplaced\": %llu, \"state_loss_services\": "
      "%llu, \"switch_deaths\": %llu, \"revivals\": %llu, "
      "\"downtime_p50_ms\": %.3f, \"downtime_p99_ms\": %.3f, "
      "\"downtime_max_ms\": %.3f},\n",
      static_cast<unsigned long long>(report.placements),
      static_cast<unsigned long long>(report.evacuations),
      static_cast<unsigned long long>(report.replaced),
      static_cast<unsigned long long>(report.unplaced),
      static_cast<unsigned long long>(report.state_loss_services),
      static_cast<unsigned long long>(report.switch_deaths),
      static_cast<unsigned long long>(report.revivals),
      downtime_percentile_ms(report.downtimes, 0.50),
      downtime_percentile_ms(report.downtimes, 0.99),
      downtime_percentile_ms(report.downtimes, 1.0));
  std::printf("  \"owners\": [");
  for (u32 i = 0; i < n; ++i) {
    const Fid fid = tenants[i]->cache->fid();
    std::printf("%s{\"tenant\": %u, \"fid\": %u, \"owner\": \"%s\"}",
                i == 0 ? "" : ", ", i, fid,
                leaf_of(topo.controller().owner_of(fid)).c_str());
  }
  std::printf("],\n");
  std::ostringstream metrics;
  fabric_registry.snapshot_json(metrics);
  std::printf("  \"metrics\": %s}\n", metrics.str().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  u32 requests = 2000;
  u32 shards = 0;  // 0 = the serial reference engine
  bool alloc_report = false;
  bool heatmap_report = false;
  bool migration_report = false;
  bool fabric_report = false;
  double loss = 0.0;
  u64 fault_seed = 1;
  const char* trace_path = nullptr;
  const char* spans_path = nullptr;
  const char* span_dump_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<u32>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<u32>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--loss") == 0 && i + 1 < argc) {
      loss = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      fault_seed = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--alloc") == 0) {
      alloc_report = true;
    } else if (std::strcmp(argv[i], "--heatmap") == 0) {
      heatmap_report = true;
    } else if (std::strcmp(argv[i], "--migration") == 0) {
      migration_report = true;
    } else if (std::strcmp(argv[i], "--fabric") == 0) {
      fabric_report = true;
    } else if (std::strcmp(argv[i], "--spans") == 0 && i + 1 < argc) {
      spans_path = argv[++i];
    } else if (std::strcmp(argv[i], "--span-dump") == 0 && i + 1 < argc) {
      span_dump_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: artmt_stats [--requests N] [--trace FILE] "
                   "[--shards N] [--loss P] [--fault-seed S] [--alloc] "
                   "[--heatmap] [--migration] [--fabric] [--spans FILE] "
                   "[--span-dump FILE]\n");
      return 2;
    }
  }

  if (spans_path != nullptr) {
    // Pure analysis mode: no scenario, just the phase breakdown.
    std::ifstream in(spans_path);
    if (!in) {
      std::fprintf(stderr, "artmt_stats: cannot open %s\n", spans_path);
      return 1;
    }
    std::vector<telemetry::SpanEvent> events;
    std::string error;
    if (!telemetry::load_span_events(in, &events, &error)) {
      std::fprintf(stderr, "artmt_stats: %s: %s\n", spans_path, error.c_str());
      return 1;
    }
    telemetry::print_span_breakdown(
        std::cout, telemetry::reconstruct_requests(events));
    return 0;
  }
  if (fabric_report) return run_fabric_report(shards);
  if (shards > 0 && trace_path != nullptr) {
    std::fprintf(stderr,
                 "artmt_stats: --trace requires the serial engine (the "
                 "trace sink is process-global; drop --shards)\n");
    return 2;
  }

  std::unique_ptr<netsim::Simulator> sim;
  std::unique_ptr<netsim::ShardedSimulator> ssim;
  std::unique_ptr<netsim::Network> net_holder;
  if (shards > 0) {
    ssim = std::make_unique<netsim::ShardedSimulator>(shards);
    net_holder = std::make_unique<netsim::Network>(*ssim);
  } else {
    sim = std::make_unique<netsim::Simulator>();
    net_holder = std::make_unique<netsim::Network>(*sim);
  }
  netsim::Network& net = *net_holder;

  // Serial mode: everything records into the process-wide registry and
  // the snapshot at the end is the union of every component's counters.
  // Sharded mode: each shard owns a registry (wired up by the engine);
  // they are merged -- plus the per-shard engine stats -- after the run.
  telemetry::MetricsRegistry& registry = telemetry::registry();
  if (sim) {
    sim->set_metrics(&registry);
    net.set_metrics(&registry);
  }

  // Span capture: one lane per shard worker (lane 0 for the serial
  // engine); the canonical sorted dump is engine- and shard-invariant.
  std::unique_ptr<telemetry::SpanSink> span_sink;
  if (span_dump_path != nullptr) {
    span_sink =
        std::make_unique<telemetry::SpanSink>(shards > 0 ? shards : 1);
    telemetry::set_span_sink(span_sink.get());
  }

  std::ofstream trace_file;
  std::unique_ptr<telemetry::TraceSink> sink;
  if (trace_path != nullptr) {
    trace_file.open(trace_path);
    if (!trace_file) {
      std::fprintf(stderr, "artmt_stats: cannot open %s\n", trace_path);
      return 1;
    }
    sink = std::make_unique<telemetry::TraceSink>(trace_file);
    sink->set_clock([&sim] { return sim->now(); });
    telemetry::set_trace_sink(sink.get());
  }

  controller::SwitchNode::Config cfg;
  if (migration_report) cfg.migration.enabled = true;
  if (ssim) {
    // The switch lives on shard 0; its components record there. Modeled
    // compute makes the timeline -- and therefore the snapshot --
    // reproducible for any shard count.
    cfg.metrics = &ssim->shard_metrics(0);
    cfg.compute_model = alloc::ComputeModel::deterministic();
  } else {
    cfg.metrics = &registry;
  }
  auto sw = std::make_shared<controller::SwitchNode>("switch", cfg);
  auto server = std::make_shared<apps::ServerNode>("server", 0xbb);
  auto client = std::make_shared<client::ClientNode>("client", 0x100, 0xaa);
  net.attach(sw);
  net.attach(server);
  net.attach(client);
  net.connect(*sw, 0, *server, 0);
  net.connect(*sw, 1, *client, 0);
  sw->bind(0xbb, 0);
  sw->bind(0x100, 1);
  if (ssim) ssim->pin(*sw, 0);  // fleets round-robin over shards 1..N-1

  // Optional uniform loss: the reliability trackers ride through it and
  // the injected-fault counters join the snapshot.
  std::unique_ptr<faults::FaultInjector> injector;
  if (loss > 0.0) {
    injector = std::make_unique<faults::FaultInjector>(
        faults::FaultPlan::uniform_loss(fault_seed, loss),
        shards > 0 ? shards : 1);
    net.set_transmit_hook(injector.get());
  }

  workload::ZipfGenerator zipf(5'000, 1.2);
  Rng rng(42);
  auto key_of = [](u32 rank) {
    return workload::ZipfGenerator::key_for_rank(rank);
  };
  for (u32 rank = 0; rank < zipf.universe(); ++rank) {
    server->put(key_of(rank), rank + 1);
  }

  // Service 1: the in-network cache (GET traffic, RTS hits).
  auto cache = std::make_shared<apps::CacheService>("cache", 0xbb);
  client->register_service(cache);
  client->on_passive = [&cache](netsim::Frame& frame) {
    const auto msg = apps::KvMessage::parse(std::span<const u8>(frame).subspan(
        packet::EthernetHeader::kWireSize));
    if (msg) cache->handle_server_reply(*msg);
  };
  u64 hits = 0;
  u64 misses = 0;
  cache->on_result = [&](u32, u64, u32, bool hit) { (hit ? hits : misses)++; };

  // Service 2: the heavy-hitter monitor (observe traffic, extraction,
  // then release -- exercising the controller's departure path too).
  auto monitor = std::make_shared<apps::FrequentItemService>("monitor", 0xbb);
  client->register_service(monitor);
  std::size_t heavy_hitters = 0;

  // The recursive drivers schedule through net.simulator(), which
  // resolves to the serial engine or -- on a worker thread -- to the
  // client's shard, so both engines run the identical scenario.
  std::function<void(u32)> get_next = [&](u32 remaining) {
    if (remaining == 0) return;
    cache->get(key_of(zipf.next_rank(rng)));
    net.simulator().schedule_after(
        100 * 1000, [&get_next, remaining] { get_next(remaining - 1); });
  };
  std::function<void(u32)> observe_next = [&](u32 remaining) {
    if (remaining == 0) {
      monitor->extract(
          [&](std::vector<std::pair<u64, u32>> items) {
            heavy_hitters = items.size();
            monitor->release();
          },
          /*min_count=*/20);
      return;
    }
    monitor->observe(key_of(zipf.next_rank(rng)));
    net.simulator().schedule_after(
        50 * 1000, [&observe_next, remaining] { observe_next(remaining - 1); });
  };

  cache->on_ready = [&] {
    std::vector<std::pair<u64, u32>> hot;
    for (u32 rank = 200; rank-- > 0;) hot.emplace_back(key_of(rank), rank + 1);
    cache->populate(std::move(hot), [&] { get_next(requests); });
  };
  monitor->on_ready = [&] { observe_next(requests); };

  cache->request_allocation();
  // The monitor's kick-off touches the client node, so in sharded mode
  // it must run on the client's shard.
  if (ssim) {
    ssim->schedule_on(*client, kSecond, [&] { monitor->request_allocation(); });
    ssim->run();
  } else {
    sim->schedule_at(kSecond, [&] { monitor->request_allocation(); });
    sim->run();
  }
  const SimTime end_time = ssim ? ssim->now() : sim->now();

  std::fprintf(stderr,
               "scenario done at t=%.3fs: cache %llu hits / %llu misses, "
               "%zu heavy hitters, %llu capsules through the switch\n",
               end_time / 1e9, static_cast<unsigned long long>(hits),
               static_cast<unsigned long long>(misses), heavy_hitters,
               static_cast<unsigned long long>(sw->runtime().stats().packets));
  if (ssim) {
    std::fprintf(stderr, "sharded engine: %u shards, %llu epochs\n", shards,
                 static_cast<unsigned long long>(ssim->epochs()));
    for (u32 s = 0; s < ssim->shards(); ++s) {
      const netsim::ShardStats& st = ssim->shard_stats(s);
      std::fprintf(
          stderr,
          "  shard %u: %llu events, %llu frames in / %llu out, "
          "barrier wait %.3f ms\n",
          s, static_cast<unsigned long long>(st.events_dispatched),
          static_cast<unsigned long long>(st.frames_in),
          static_cast<unsigned long long>(st.frames_out),
          static_cast<double>(st.barrier_wait_ns) / 1e6);
    }
    // Scheduler shape: adaptive epoch-window widths (virtual ns) and the
    // count of unbounded windows (no cross-shard constraint applied).
    telemetry::MetricsRegistry shape;
    ssim->export_shard_stats(shape);
    const telemetry::Histogram& widths =
        shape.histogram("sharding", "epoch_width_ns");
    std::fprintf(
        stderr,
        "  epoch widths: %llu bounded (p50 %llu ns, p99 %llu ns, "
        "max %llu ns), %llu unbounded\n",
        static_cast<unsigned long long>(widths.count()),
        static_cast<unsigned long long>(widths.percentile(0.50)),
        static_cast<unsigned long long>(widths.percentile(0.99)),
        static_cast<unsigned long long>(widths.max()),
        static_cast<unsigned long long>(
            shape.counter_value("sharding", "unbounded_epochs")));
  }

  // Fault and reliability metrics live outside the engine registries:
  // mirror them into whichever snapshot we emit.
  if (span_sink != nullptr) {
    telemetry::set_span_sink(nullptr);
    std::ofstream out(span_dump_path);
    if (!out) {
      std::fprintf(stderr, "artmt_stats: cannot open %s\n", span_dump_path);
      return 1;
    }
    span_sink->dump(out);
    std::fprintf(stderr, "wrote %llu span events to %s\n",
                 static_cast<unsigned long long>(span_sink->recorded()),
                 span_dump_path);
  }

  auto export_extras = [&](telemetry::MetricsRegistry& reg) {
    if (injector) injector->export_metrics(reg);
    sw->heatmap().export_metrics(reg);
    const auto cache_fid = static_cast<i32>(cache->fid());
    const auto monitor_fid = static_cast<i32>(monitor->fid());
    cache->populate_reliability().export_metrics(reg, cache_fid);
    cache->handshake_reliability().export_metrics(reg, cache_fid);
    monitor->extract_reliability().export_metrics(reg, monitor_fid);
    monitor->handshake_reliability().export_metrics(reg, monitor_fid);
  };
  if (alloc_report) {
    print_alloc_report(sw->controller().allocator());
  } else if (migration_report) {
    print_migration_report(*sw);
  } else if (heatmap_report) {
    print_heatmap_report(sw->heatmap());
  } else if (ssim) {
    telemetry::MetricsRegistry merged;
    ssim->merge_metrics_into(merged);
    ssim->export_shard_stats(merged);
    export_extras(merged);
    merged.snapshot_json(std::cout);
  } else {
    export_extras(registry);
    telemetry::snapshot_json(std::cout);
  }

  if (sink != nullptr) {
    telemetry::set_trace_sink(nullptr);
    std::fprintf(stderr, "wrote %llu trace events to %s\n",
                 static_cast<unsigned long long>(sink->emitted()), trace_path);
  }
  return 0;
}
