file(REMOVE_RECURSE
  "CMakeFiles/artmt_netsim.dir/network.cpp.o"
  "CMakeFiles/artmt_netsim.dir/network.cpp.o.d"
  "CMakeFiles/artmt_netsim.dir/simulator.cpp.o"
  "CMakeFiles/artmt_netsim.dir/simulator.cpp.o.d"
  "libartmt_netsim.a"
  "libartmt_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmt_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
