file(REMOVE_RECURSE
  "libartmt_netsim.a"
)
