file(REMOVE_RECURSE
  "libartmt_proto.a"
)
