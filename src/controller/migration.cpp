#include "controller/migration.hpp"

#include <algorithm>
#include <cmath>

#include "alloc/hotness.hpp"
#include "common/error.hpp"
#include "controller/controller.hpp"

namespace artmt::controller {

const char* remap_kind_name(RemapKind kind) {
  switch (kind) {
    case RemapKind::kDemote:
      return "demote";
    case RemapKind::kPromote:
      return "promote";
    case RemapKind::kReslide:
      return "reslide";
  }
  return "unknown";
}

RemapQueue::RemapQueue(u32 max_depth) : max_depth_(max_depth) {
  if (max_depth == 0) throw UsageError("RemapQueue: zero depth");
}

bool RemapQueue::push(const RemapRequest& request) {
  if (queued_.contains(request.fid)) {
    ++stats_.duplicates;
    return false;
  }
  if (queue_.size() >= max_depth_) {
    ++stats_.congestion_drops;
    return false;
  }
  queue_.push_back(request);
  queued_.insert(request.fid);
  ++stats_.enqueued;
  stats_.high_water =
      std::max(stats_.high_water, static_cast<u32>(queue_.size()));
  return true;
}

std::optional<RemapRequest> RemapQueue::pop() {
  if (queue_.empty()) return std::nullopt;
  RemapRequest request = queue_.front();
  queue_.pop_front();
  queued_.erase(request.fid);
  ++stats_.popped;
  return request;
}

void RemapQueue::drop_fid(Fid fid) {
  if (!queued_.erase(fid)) return;
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->fid == fid) {
      queue_.erase(it);
      ++stats_.purged;
      return;
    }
  }
}

MigrationPlanner::MigrationPlanner(MigrationPolicy policy) : policy_(policy) {
  if (policy_.max_plans_per_cycle == 0) {
    throw UsageError("MigrationPlanner: zero plans per cycle");
  }
}

bool MigrationPlanner::cooled_down(Fid fid) const {
  const auto it = last_planned_.find(fid);
  return it == last_planned_.end() ||
         cycle_ - it->second >= policy_.cooldown_cycles;
}

u32 MigrationPlanner::plan(const Controller& controller,
                           const alloc::HotnessTable& hotness,
                           RemapQueue& queue) {
  ++cycle_;
  ++stats_.cycles;
  u32 planned = 0;
  const alloc::Allocator& alloc = controller.allocator();
  const auto& records = alloc.apps();

  auto submit = [&](const RemapRequest& request, u64& stat) {
    if (!queue.push(request)) return;
    last_planned_[request.fid] = cycle_;
    ++stat;
    ++planned;
  };

  // 1) Share flips, hotness-directed: promotions first (returning
  // capacity to a recovered service beats squeezing another cold one)
  // ordered hottest-recovery-first, then demotions coldest-first -- the
  // budget goes to the flips with the most headroom to win. Ties keep the
  // legacy ascending-FID scan order (stable sort over the FID-ordered
  // candidate list), so tied scores plan byte-identically to the
  // first-fit era.
  struct Flip {
    Fid fid = 0;
    u64 score = 0;
    bool promote = false;
  };
  std::vector<Flip> flips;
  for (const Fid fid : controller.resident_fids()) {
    const auto it = records.find(controller.app_of(fid));
    if (it == records.end() || !it->second.elastic) continue;
    const i32 hfid = static_cast<i32>(fid);
    if (it->second.demoted) {
      if (hotness.score(hfid) < policy_.promote_score) continue;
      flips.push_back({fid, hotness.score(hfid), true});
    } else if (hotness.is_cold(hfid)) {
      flips.push_back({fid, hotness.score(hfid), false});
    }
  }
  std::stable_sort(flips.begin(), flips.end(),
                   [](const Flip& a, const Flip& b) {
                     if (a.promote != b.promote) return a.promote;
                     return a.promote ? a.score > b.score : a.score < b.score;
                   });
  for (const Flip& flip : flips) {
    if (planned >= policy_.max_plans_per_cycle) break;
    if (!cooled_down(flip.fid)) {
      ++stats_.cooldown_skips;
      continue;
    }
    submit({flip.fid, flip.promote ? RemapKind::kPromote : RemapKind::kDemote,
            0, flip.score},
           flip.promote ? stats_.promotions_planned
                        : stats_.demotions_planned);
  }

  // 2) Compaction by fragmentation: in every fragmented stage, re-slide
  // the topmost inelastic region (highest begin). First-fit hole reuse
  // slides it into the lowest hole that fits -- or a better-scored stage
  // entirely -- merging free runs so the frontier can recede and the
  // elastic pool grow.
  const u32 stages = alloc.geometry().logical_stages;
  for (u32 s = 0; s < stages; ++s) {
    if (planned >= policy_.max_plans_per_cycle) break;
    const alloc::StageState& st = alloc.stage(s);
    const u32 free = st.free_blocks();
    if (free < policy_.min_frag_blocks) continue;
    if (static_cast<double>(st.largest_free_run()) >=
        policy_.frag_threshold * static_cast<double>(free)) {
      continue;
    }
    alloc::AppId candidate = 0;
    u32 top_begin = 0;
    for (const auto& [app, region] : st.regions()) {
      const auto rit = records.find(app);
      if (rit == records.end() || rit->second.elastic) continue;
      if (candidate == 0 || region.begin > top_begin) {
        candidate = app;
        top_begin = region.begin;
      }
    }
    if (candidate == 0) continue;
    const Fid fid = controller.fid_of(candidate);
    if (!cooled_down(fid)) {
      ++stats_.cooldown_skips;
      continue;
    }
    submit({fid, RemapKind::kReslide, s, hotness.score(static_cast<i32>(fid))},
           stats_.reslides_planned);
  }
  return planned;
}

DisruptionReport analyze_disruption(const std::vector<double>& series,
                                    const std::vector<std::size_t>& events,
                                    double tolerance) {
  DisruptionReport report;
  std::vector<double> dips;
  std::vector<u64> recoveries;
  for (const std::size_t w : events) {
    if (w >= series.size() || w == 0) continue;  // no pre-event baseline
    double baseline = 0.0;
    u32 count = 0;
    for (std::size_t j = w; j > 0 && count < 3; --j) {
      baseline += series[j - 1];
      ++count;
    }
    baseline /= count;
    ++report.events;

    double dip = 0.0;
    u64 recovery = series.size() - w;  // censored at the series end
    for (std::size_t j = w; j < series.size(); ++j) {
      if (series[j] >= baseline - tolerance) {
        recovery = j - w;
        break;
      }
      dip = std::max(dip, baseline - series[j]);
    }
    dips.push_back(dip);
    recoveries.push_back(recovery);
  }
  if (report.events == 0) return report;

  std::sort(dips.begin(), dips.end());
  std::sort(recoveries.begin(), recoveries.end());
  const auto rank = [](std::size_t n) {
    // Nearest-rank p99 (1-based rank ceil(0.99 n), clamped).
    const auto r = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(n)));
    return std::min(n - 1, r == 0 ? 0 : r - 1);
  };
  report.max_dip = dips.back();
  report.p99_dip = dips[rank(dips.size())];
  report.max_recovery_windows = recoveries.back();
  report.p99_recovery_windows = recoveries[rank(recoveries.size())];
  return report;
}

}  // namespace artmt::controller
