file(REMOVE_RECURSE
  "CMakeFiles/artmt_packet.dir/active_packet.cpp.o"
  "CMakeFiles/artmt_packet.dir/active_packet.cpp.o.d"
  "CMakeFiles/artmt_packet.dir/ethernet.cpp.o"
  "CMakeFiles/artmt_packet.dir/ethernet.cpp.o.d"
  "libartmt_packet.a"
  "libartmt_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmt_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
