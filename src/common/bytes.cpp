#include "common/bytes.hpp"

#include <string>

namespace artmt {

void ByteReader::fail(std::size_t n) const {
  throw ParseError("truncated buffer: need " + std::to_string(n) +
                   " bytes, have " + std::to_string(remaining()));
}

}  // namespace artmt
