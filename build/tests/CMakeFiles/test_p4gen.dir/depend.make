# Empty dependencies file for test_p4gen.
# This may be replaced when dependencies are built.
