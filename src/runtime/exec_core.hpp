// Shared execution core: the per-lane state and the flat-dispatch opcode
// semantics used by BOTH the per-packet interpreter (ActiveRuntime::
// execute) and the batched stage-sweep engine (runtime::ExecBatch). The
// two engines differ only in the order they call ActiveRuntime's
// lane_begin / lane_step / lane_finish -- the state they thread through
// and the op semantics they dispatch live here, once, which is what makes
// batched execution byte-identical to the per-packet reference by
// construction.
#pragma once

#include <algorithm>
#include <array>
#include <utility>

#include "active/compiled_program.hpp"
#include "rmt/hash.hpp"
#include "rmt/stage.hpp"
#include "runtime/runtime.hpp"

namespace artmt::runtime {

// All mutable state of one in-flight packet execution ("lane"). The
// per-packet path keeps one on its stack and steps it to completion; the
// batch engine keeps a vector of them and interleaves steps stage by
// stage. Pointers reference caller-owned storage that must outlive the
// lane (cursor, context, metadata).
struct LaneState {
  const active::CompiledProgram* program = nullptr;
  ExecContext* ctx = nullptr;
  active::ExecCursor* cursor = nullptr;
  const PacketMeta* meta = nullptr;
  SimTime now = 0;

  ExecutionResult res;
  Phv phv;
  Fault fault = Fault::kNone;
  u32 pc = 0;             // instruction index == stages consumed so far
  u32 pass_index = 0;     // pc / logical_stages, carried incrementally
  u32 logical_stage = 0;  // pc % logical_stages, carried incrementally
  bool halted = false;    // no further lane_step will change state
  bool bypassed = false;  // deactivated FID: res finalized in lane_begin
};

// Single-slot per-(stage, fid) protection-table memo. A stage sweep
// resets it once per stage and every lane of the same FID then reuses the
// looked-up entry, amortizing the per-instruction hash lookup that
// dominates memory-heavy programs. Correct for mixed-FID batches too --
// a mismatch just falls back to the lookup.
struct StageMemo {
  Fid fid = 0;
  const rmt::FidEntry* entry = nullptr;
  bool valid = false;

  void reset() { valid = false; }
};

namespace core {

// Executes one non-address-translation op against the lane's PHV.
// `entry` is the FID's protection entry for `stage`, already checked to
// cover phv.mar when `op.memory_access` is set. Returns false when the
// packet faulted (`fault` recorded, phv.drop set).
inline bool dispatch_op(const active::FlatOp& op, Phv& phv,
                        std::array<Word, active::kArgFields>& args,
                        const PacketMeta& meta, rmt::Stage& stage,
                        const rmt::FidEntry* entry, u8 flags,
                        bool enforce_privilege, u32 logical_stage,
                        Fault& fault) {
  using active::FlatKind;
  switch (op.kind) {
    case FlatKind::kNop:
      break;
    // --- data copying ---
    case FlatKind::kMbrLoad:
      phv.mbr = args[op.operand];
      break;
    case FlatKind::kMbrStore:
      args[op.operand] = phv.mbr;
      break;
    case FlatKind::kMbr2Load:
      phv.mbr2 = args[op.operand];
      break;
    case FlatKind::kMarLoad:
      phv.mar = args[op.operand];
      break;
    case FlatKind::kCopyMbr2Mbr:
      phv.mbr2 = phv.mbr;
      break;
    case FlatKind::kCopyMbrMbr2:
      phv.mbr = phv.mbr2;
      break;
    case FlatKind::kCopyMbrMar:
      phv.mbr = phv.mar;
      break;
    case FlatKind::kCopyMarMbr:
      phv.mar = phv.mbr;
      break;
    case FlatKind::kCopyHashdataMbr:
      phv.hashdata[op.operand % active::kHashdataWords] = phv.mbr;
      break;
    case FlatKind::kCopyHashdataMbr2:
      phv.hashdata[op.operand % active::kHashdataWords] = phv.mbr2;
      break;
    case FlatKind::kCopyHashdata5Tuple:
      phv.hashdata = meta.five_tuple;
      break;
    // --- data manipulation ---
    case FlatKind::kMbrAddMbr2:
      phv.mbr += phv.mbr2;
      break;
    case FlatKind::kMarAddMbr:
      phv.mar += phv.mbr;
      break;
    case FlatKind::kMarAddMbr2:
      phv.mar += phv.mbr2;
      break;
    case FlatKind::kMarMbrAddMbr2:
      phv.mar = phv.mbr + phv.mbr2;
      break;
    case FlatKind::kMbrSubtractMbr2:
      phv.mbr -= phv.mbr2;
      break;
    case FlatKind::kBitAndMarMbr:
      phv.mar &= phv.mbr;
      break;
    case FlatKind::kBitOrMbrMbr2:
      phv.mbr |= phv.mbr2;
      break;
    case FlatKind::kMbrEqualsMbr2:
      phv.mbr ^= phv.mbr2;
      break;
    case FlatKind::kMbrEqualsData:
      phv.mbr ^= args[op.operand];
      break;
    case FlatKind::kMax:
      phv.mbr = std::max(phv.mbr, phv.mbr2);
      break;
    case FlatKind::kMin:
      phv.mbr = std::min(phv.mbr, phv.mbr2);
      break;
    case FlatKind::kRevMin:
      phv.mbr2 = std::min(phv.mbr, phv.mbr2);
      break;
    case FlatKind::kSwapMbrMbr2:
      std::swap(phv.mbr, phv.mbr2);
      break;
    case FlatKind::kMbrNot:
      phv.mbr = ~phv.mbr;
      break;
    // --- control flow ---
    case FlatKind::kReturn:
      phv.complete = true;
      break;
    case FlatKind::kCret:
      if (phv.mbr != 0) phv.complete = true;
      break;
    case FlatKind::kCreti:
      if (phv.mbr == 0) phv.complete = true;
      break;
    case FlatKind::kCjump:
      if (phv.mbr != 0) {
        phv.disabled = true;
        phv.pending_label = op.label;
      }
      break;
    case FlatKind::kCjumpi:
      if (phv.mbr == 0) {
        phv.disabled = true;
        phv.pending_label = op.label;
      }
      break;
    case FlatKind::kUjump:
      phv.disabled = true;
      phv.pending_label = op.label;
      break;
    // --- memory access (entry checked by the caller) ---
    case FlatKind::kMemWrite:
      stage.memory().write(phv.mar, phv.mbr);
      phv.mar = static_cast<Word>(static_cast<i64>(phv.mar) + entry->advance);
      break;
    case FlatKind::kMemRead:
      phv.mbr = stage.memory().read(phv.mar);
      phv.mar = static_cast<Word>(static_cast<i64>(phv.mar) + entry->advance);
      break;
    case FlatKind::kMemIncrement:
      phv.mbr = stage.memory().increment(phv.mar, phv.inc);
      phv.mar = static_cast<Word>(static_cast<i64>(phv.mar) + entry->advance);
      break;
    case FlatKind::kMemMinread:
      phv.mbr = stage.memory().min_read(phv.mar, phv.mbr);
      phv.mar = static_cast<Word>(static_cast<i64>(phv.mar) + entry->advance);
      break;
    case FlatKind::kMemMinreadinc: {
      const Word count = stage.memory().increment(phv.mar, phv.inc);
      phv.mbr = count;
      phv.mbr2 = std::min(count, phv.mbr2);
      phv.mar = static_cast<Word>(static_cast<i64>(phv.mar) + entry->advance);
      break;
    }
    // ADDR_MASK / ADDR_OFFSET are resolved in lane_step, which applies
    // the compiled next-access table.
    case FlatKind::kAddrMask:
    case FlatKind::kAddrOffset:
      break;
    case FlatKind::kHash:
      phv.mar = rmt::hash_words(phv.hashdata, op.operand);
      break;
    // --- packet forwarding ---
    // FORK, SET_DST, and DROP can affect other tenants' traffic; under
    // privilege enforcement (Section 7.2) they require a trusted shim's
    // flag.
    case FlatKind::kDrop:
      if (enforce_privilege && (flags & packet::kFlagPrivileged) == 0) {
        fault = Fault::kPrivilege;
        phv.drop = true;
        return false;
      }
      fault = Fault::kExplicitDrop;
      phv.drop = true;
      return false;
    case FlatKind::kFork:
      if (enforce_privilege && (flags & packet::kFlagPrivileged) == 0) {
        fault = Fault::kPrivilege;
        phv.drop = true;
        return false;
      }
      phv.fork = true;
      break;
    case FlatKind::kSetDst:
      if (enforce_privilege && (flags & packet::kFlagPrivileged) == 0) {
        fault = Fault::kPrivilege;
        phv.drop = true;
        return false;
      }
      phv.dst_overridden = true;
      phv.dst_value = phv.mbr;
      break;
    case FlatKind::kRts:
      phv.rts = true;
      phv.rts_stage = logical_stage;
      break;
    case FlatKind::kCrts:
      if (phv.mbr != 0) {
        phv.rts = true;
        phv.rts_stage = logical_stage;
      }
      break;
    case FlatKind::kEof:
      break;
  }
  return true;
}

}  // namespace core

}  // namespace artmt::runtime
