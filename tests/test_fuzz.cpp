// Randomized property tests: arbitrary byte-valid programs must never
// crash the runtime, violate memory protection, or corrupt another
// tenant's state; random request shapes must never corrupt the
// allocator; random frames must never crash the parser.
#include <gtest/gtest.h>

#include "active/isa.hpp"
#include "alloc/allocator.hpp"
#include "common/rng.hpp"
#include "packet/active_packet.hpp"
#include "runtime/runtime.hpp"

namespace artmt {
namespace {

using active::Instruction;
using active::Opcode;
using packet::ActivePacket;
using packet::ArgumentHeader;

// All defined opcodes (excluding EOF, which is a wire terminator).
std::vector<Opcode> defined_opcodes() {
  std::vector<Opcode> out;
  for (u32 raw = 0; raw < 256; ++raw) {
    const auto* info = active::opcode_info(static_cast<u8>(raw));
    if (info != nullptr && info->op != Opcode::kEof) out.push_back(info->op);
  }
  return out;
}

active::Program random_program(Rng& rng, u32 max_length) {
  static const std::vector<Opcode> opcodes = defined_opcodes();
  active::Program program;
  const u32 length = static_cast<u32>(rng.uniform(max_length)) + 1;
  for (u32 i = 0; i < length; ++i) {
    Instruction insn;
    insn.op = opcodes[rng.uniform(opcodes.size())];
    insn.operand = static_cast<u8>(rng.uniform(active::kArgFields));
    insn.label = static_cast<u8>(rng.uniform(4));  // labels 0..3
    program.push(insn);
  }
  return program;
}

class FuzzRuntime : public ::testing::Test {
 protected:
  FuzzRuntime() : pipeline_(config()), runtime_(pipeline_) {
    // FID 1 owns [64, 128) everywhere; FID 2 owns [128, 192).
    for (u32 s = 0; s < pipeline_.stage_count(); ++s) {
      pipeline_.stage(s).install(1, 64, 128, 0);
      pipeline_.stage(s).install(2, 128, 192, 0);
    }
  }

  static rmt::PipelineConfig config() {
    rmt::PipelineConfig cfg;
    cfg.words_per_stage = 256;  // small enough to checksum
    cfg.block_words = 16;
    return cfg;
  }

  // Snapshot of every word OUTSIDE fid 1's regions.
  std::vector<Word> outside_fid1() const {
    std::vector<Word> out;
    for (u32 s = 0; s < pipeline_.stage_count(); ++s) {
      for (u32 w = 0; w < 64; ++w) {
        out.push_back(pipeline_.stage(s).memory().read(w));
      }
      for (u32 w = 128; w < 256; ++w) {
        out.push_back(pipeline_.stage(s).memory().read(w));
      }
    }
    return out;
  }

  rmt::Pipeline pipeline_;
  runtime::ActiveRuntime runtime_;
};

TEST_F(FuzzRuntime, RandomProgramsNeverEscapeProtection) {
  Rng rng(2024);
  // Scatter sentinels outside fid 1's region.
  for (u32 s = 0; s < pipeline_.stage_count(); ++s) {
    pipeline_.stage(s).memory().write(10, 0x5a5a5a5a);
    pipeline_.stage(s).memory().write(200, 0xa5a5a5a5);
  }
  const auto before = outside_fid1();
  for (int trial = 0; trial < 2000; ++trial) {
    ArgumentHeader args;
    for (auto& a : args.args) a = static_cast<Word>(rng.next_u64());
    auto pkt =
        ActivePacket::make_program(1, args, random_program(rng, 48));
    ASSERT_NO_THROW((void)runtime_.execute(pkt)) << "trial " << trial;
  }
  // Whatever those 2000 programs did, fid 1 never wrote outside [64,128).
  EXPECT_EQ(outside_fid1(), before);
}

TEST_F(FuzzRuntime, ResultsAreInternallyConsistent) {
  Rng rng(777);
  for (int trial = 0; trial < 2000; ++trial) {
    ArgumentHeader args;
    args.args[0] = 64 + static_cast<Word>(rng.uniform(64));
    auto program = random_program(rng, 48);
    const u32 length = static_cast<u32>(program.size());
    auto pkt = ActivePacket::make_program(1, args, std::move(program));
    const auto res = runtime_.execute(pkt);
    EXPECT_LE(res.instructions_executed, length);
    EXPECT_LE(res.stages_consumed, length);
    EXPECT_GE(res.passes, 1u);
    if (res.verdict == runtime::Verdict::kDrop) {
      EXPECT_NE(res.fault, runtime::Fault::kNone);
    }
    if (res.verdict == runtime::Verdict::kReturnToSender) {
      EXPECT_TRUE(res.phv.rts);
    }
  }
}

TEST_F(FuzzRuntime, WireRoundTripAfterExecution) {
  Rng rng(31337);
  for (int trial = 0; trial < 500; ++trial) {
    ArgumentHeader args;
    auto pkt =
        ActivePacket::make_program(1, args, random_program(rng, 30));
    const auto res = runtime_.execute(pkt);
    if (res.verdict == runtime::Verdict::kDrop) continue;
    // Post-execution packets must still serialize and re-parse cleanly.
    std::vector<u8> frame;
    ASSERT_NO_THROW(frame = pkt.serialize());
    ASSERT_NO_THROW((void)ActivePacket::parse(frame));
  }
}

TEST(FuzzParser, RandomFramesNeverCrash) {
  Rng rng(99);
  u32 parsed = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    const std::size_t size = rng.uniform(128);
    std::vector<u8> frame(size);
    for (auto& byte : frame) byte = static_cast<u8>(rng.next_u64());
    // Half the trials get a valid Ethernet prefix to reach deeper paths.
    if (trial % 2 == 0 && frame.size() >= 14) {
      frame[12] = 0x83;
      frame[13] = 0xb2;
    }
    try {
      (void)ActivePacket::parse(frame);
      ++parsed;
    } catch (const ParseError&) {
      // expected for garbage
    }
  }
  // A few all-random frames can be structurally valid; most are not.
  EXPECT_LT(parsed, 2500u);
}

TEST(FuzzParser, TruncationSweepNeverCrashes) {
  active::Program program;
  for (int i = 0; i < 10; ++i) {
    program.push({Opcode::kMbrLoad, static_cast<u8>(i % 4)});
  }
  ArgumentHeader args;
  const auto pkt = ActivePacket::make_program(7, args, program);
  const auto frame = pkt.serialize();
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    std::vector<u8> truncated(frame.begin(),
                              frame.begin() + static_cast<long>(cut));
    try {
      (void)ActivePacket::parse(truncated);
    } catch (const ParseError&) {
      // fine
    }
  }
  SUCCEED();
}

TEST(FuzzAllocator, RandomRequestsPreserveInvariants) {
  Rng rng(4242);
  alloc::Allocator allocator({20, 10}, 64);
  std::vector<alloc::AppId> resident;
  for (int step = 0; step < 400; ++step) {
    if (!resident.empty() && rng.uniform(3) == 0) {
      const std::size_t pick = rng.uniform(resident.size());
      allocator.deallocate(resident[pick]);
      resident.erase(resident.begin() + static_cast<std::ptrdiff_t>(pick));
      continue;
    }
    // Random but well-formed request: 1..4 increasing accesses.
    alloc::AllocationRequest request;
    const u32 accesses = static_cast<u32>(rng.uniform(4)) + 1;
    u32 position = static_cast<u32>(rng.uniform(3));
    for (u32 i = 0; i < accesses; ++i) {
      alloc::AccessDemand demand;
      demand.position = position;
      demand.demand_blocks = static_cast<u32>(rng.uniform(4)) + 1;
      request.accesses.push_back(demand);
      position += static_cast<u32>(rng.uniform(5)) + 1;
    }
    request.program_length = position + static_cast<u32>(rng.uniform(4)) + 1;
    request.elastic = rng.uniform(2) == 0;
    if (rng.uniform(4) == 0) {
      request.rts_position = request.program_length - 1;
    }
    const auto outcome = allocator.allocate(request);
    if (outcome.success) resident.push_back(outcome.app);

    // Invariants after every step.
    ASSERT_EQ(allocator.resident_count(), resident.size());
    for (u32 s = 0; s < 20; ++s) {
      std::vector<Interval> regions;
      for (const auto& [id, region] : allocator.stage(s).regions()) {
        ASSERT_LE(region.end, 64u);
        for (const auto& other : regions) {
          ASSERT_FALSE(region.overlaps(other));
        }
        regions.push_back(region);
      }
    }
    ASSERT_GE(allocator.utilization(), 0.0);
    ASSERT_LE(allocator.utilization(), 1.0);
  }
}

}  // namespace
}  // namespace artmt
