#include "netsim/network.hpp"

#include <utility>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace artmt::netsim {

void Network::set_metrics(telemetry::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_delivered_ = nullptr;
    m_bytes_ = nullptr;
    m_dropped_ = nullptr;
    return;
  }
  m_delivered_ = &metrics->counter("netsim", "frames_delivered");
  m_bytes_ = &metrics->counter("netsim", "bytes_delivered");
  m_dropped_ = &metrics->counter("netsim", "frames_dropped");
}

void Network::attach(std::shared_ptr<Node> node) {
  if (node == nullptr) throw UsageError("Network::attach: null node");
  if (node->network_ != nullptr) {
    throw UsageError("Network::attach: node already attached");
  }
  node->network_ = this;
  nodes_.push_back(std::move(node));
  nodes_.back()->on_attach();
}

void Network::connect(Node& node_a, u32 port_a, Node& node_b, u32 port_b,
                      const LinkSpec& spec) {
  if (egress_.contains({&node_a, port_a}) ||
      egress_.contains({&node_b, port_b})) {
    throw UsageError("Network::connect: port already connected");
  }
  egress_.emplace(PortKey{&node_a, port_a}, Egress{{&node_b, port_b}, spec});
  egress_.emplace(PortKey{&node_b, port_b}, Egress{{&node_a, port_a}, spec});
}

void Network::transmit(Node& from, u32 port, Frame frame) {
  const auto it = egress_.find({&from, port});
  if (it == egress_.end()) {
    ++frames_dropped_;  // unplugged port: frame is lost
    if (m_dropped_ != nullptr) m_dropped_->inc();
    if (auto* sink = telemetry::trace_sink()) {
      sink->emit("netsim", "frame_dropped", telemetry::kNoFid,
                 {{"node", from.name()},
                  {"port", port},
                  {"bytes", frame.size()}});
    }
    return;
  }
  const Egress& out = it->second;
  const Endpoint dest = out.peer;

  // Serialization delay: bytes * 8 / rate. At 40 Gbps a 256-byte frame
  // serializes in ~51 ns.
  const double bits = static_cast<double>(frame.size()) * 8.0;
  const auto serialize =
      static_cast<SimTime>(bits / out.spec.gbps);  // Gbps -> bits/ns
  const SimTime arrival = sim_->now() + serialize + out.spec.latency;

  sim_->schedule_at(arrival, [this, dest, f = std::move(frame)]() mutable {
    ++frames_delivered_;
    bytes_delivered_ += f.size();
    if (m_delivered_ != nullptr) {
      m_delivered_->inc();
      m_bytes_->inc(f.size());
    }
    dest.node->on_frame(std::move(f), dest.port);
  });
}

}  // namespace artmt::netsim
