file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_online.dir/bench_fig7_online.cpp.o"
  "CMakeFiles/bench_fig7_online.dir/bench_fig7_online.cpp.o.d"
  "bench_fig7_online"
  "bench_fig7_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
