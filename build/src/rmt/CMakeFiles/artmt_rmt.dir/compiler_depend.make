# Empty compiler generated dependencies file for artmt_rmt.
# This may be replaced when dependencies are built.
