#!/usr/bin/env bash
# CI entry point: release build + full test suite, a bench smoke job, a
# telemetry-overhead gate, a throughput-regression gate, an ASan+UBSan
# job, then a ThreadSanitizer job (the sharded engine's worker threads).
#
# Usage: scripts/ci.sh
#   [release|bench|telemetry-overhead|bench-regression|sanitize|tsan|all]
# (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

job="${1:-all}"

run_release() {
  echo "== release build + tests =="
  cmake --preset default
  cmake --build --preset default
  ctest --preset default
}

run_bench() {
  echo "== bench smoke: steady-state + e2e datapath =="
  cmake --preset default
  cmake --build --preset default
  # bench_micro exits nonzero when the cache-hit execute or the zero-copy
  # frame datapath allocates in steady state (allocs_per_frame_steady > 0);
  # it also writes BENCH_datapath.json for the record.
  ./build/bench/bench_micro --benchmark_filter=NONE
}

run_telemetry_overhead() {
  echo "== telemetry overhead gate: <=5% pps, zero steady-state allocs =="
  cmake --preset default
  cmake --build --preset default
  # bench_micro measures the zero-copy datapath with telemetry recording
  # gated off vs fully live and exits nonzero when the instrumented path
  # allocates in steady state or loses more than 5% packets/sec; the gate
  # double-checks the verdict recorded in BENCH_datapath.json.
  ./build/bench/bench_micro --benchmark_filter=NONE
  if ! grep -q '"within_5pct": true' BENCH_datapath.json; then
    echo "telemetry-overhead: BENCH_datapath.json reports >5% regression" >&2
    exit 1
  fi
}

run_bench_regression() {
  echo "== bench regression gate: packets/sec vs committed baseline =="
  cmake --preset default
  cmake --build --preset default
  # Refresh BENCH_datapath.json from this checkout, then compare every
  # packets_per_sec section against the committed baseline; more than a
  # 10% drop in any section fails the job.
  ./build/bench/bench_micro --benchmark_filter=NONE
  python3 scripts/bench_compare.py
}

run_sanitize() {
  echo "== ASan+UBSan build + tests =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan
  ctest --preset asan-ubsan
}

run_tsan() {
  echo "== ThreadSanitizer build + tests =="
  cmake --preset tsan
  cmake --build --preset tsan
  ctest --preset tsan
}

case "$job" in
  release) run_release ;;
  bench) run_bench ;;
  telemetry-overhead) run_telemetry_overhead ;;
  bench-regression) run_bench_regression ;;
  sanitize) run_sanitize ;;
  tsan) run_tsan ;;
  all)
    run_release
    run_bench
    run_telemetry_overhead
    run_bench_regression
    run_sanitize
    run_tsan
    ;;
  *)
    echo "unknown job '$job' (expected release|bench|telemetry-overhead|bench-regression|sanitize|tsan|all)" >&2
    exit 2
    ;;
esac
echo "ci.sh: $job OK"
