file(REMOVE_RECURSE
  "libartmt_baseline.a"
)
