// The frequent-item (heavy-hitter) monitor service (Section 6.3, Appendix
// B.1): object requests are activated with the CMS + threshold program;
// the client later extracts the per-bucket (key, threshold) tables with
// memory-sync capsules to learn the popular items.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "apps/kv.hpp"
#include "client/memsync.hpp"
#include "client/service.hpp"

namespace artmt::apps {

class FrequentItemService : public client::Service {
 public:
  FrequentItemService(std::string name, packet::MacAddr server_mac,
                      u32 cms_blocks = 16, u32 table_blocks = 2);

  // Activates an object request with the monitor program (the GET itself
  // is served by the server; the switch only observes).
  void observe(u64 key);

  // Reads back the key/threshold tables over the data plane and reports
  // every bucket whose threshold exceeds `min_count`. Lost capsules back
  // off and retransmit per read (client::ReliabilityTracker); a read that
  // exhausts its retry budget reports as empty so extraction always
  // terminates.
  using ItemsFn =
      std::function<void(std::vector<std::pair<u64, u32>> items)>;
  void extract(ItemsFn done, u32 min_count = 1, bool management = false);

  std::function<void()> on_ready;

  [[nodiscard]] u32 table_words() const;

  // The extraction read retransmit loop (stats, schedule tuning).
  [[nodiscard]] client::ReliabilityTracker& extract_reliability() {
    return extract_retry_;
  }

 protected:
  void on_operational() override {
    if (on_ready) on_ready();
  }
  void on_returned(packet::ActivePacket& pkt) override;

 private:
  struct Extraction {
    ItemsFn done;
    u32 min_count = 1;
    bool management = false;
    std::vector<Word> thresholds;
    std::vector<Word> key0;
    std::vector<Word> key1;
    std::vector<bool> have_keys;
    std::vector<bool> have_threshold;
    u32 remaining = 0;
  };

  // Array tags inside memsync correlation payloads.
  static constexpr u32 kTagKeys = 1;
  static constexpr u32 kTagThreshold = 2;

  // Tracker ids: one per table word per array (keys, threshold).
  static constexpr u32 key_read_id(u32 index) { return 2 * index; }
  static constexpr u32 threshold_read_id(u32 index) { return 2 * index + 1; }

  void send_key_read(u32 index);
  void send_threshold_read(u32 index);
  void read_given_up(u32 id);
  void maybe_finish();
  [[nodiscard]] client::MemRef ref_for_access(u32 access, u32 index) const;

  packet::MacAddr server_mac_;
  u32 next_request_ = 1;
  client::ReliabilityTracker extract_retry_;
  std::optional<Extraction> extraction_;
};

}  // namespace artmt::apps
