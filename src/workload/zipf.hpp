// Zipf-distributed key popularity, matching the cache experiments' use of
// realistic KV workloads (Section 6.3 draws 8-byte keys from a Zipf
// distribution).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace artmt::workload {

class ZipfGenerator {
 public:
  // Ranks 1..universe with P(rank) proportional to rank^-alpha.
  ZipfGenerator(u32 universe, double alpha);

  // Draws a rank in [0, universe); rank 0 is the most popular.
  u32 next_rank(Rng& rng) const;

  // Maps a rank to a stable 64-bit key (so keys are not sequential).
  static u64 key_for_rank(u32 rank);

  [[nodiscard]] u32 universe() const {
    return static_cast<u32>(cdf_.size());
  }
  // Probability mass of the top `k` ranks (ideal hit rate of a k-entry
  // cache holding exactly the most popular items).
  [[nodiscard]] double top_mass(u32 k) const;

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1
};

}  // namespace artmt::workload
