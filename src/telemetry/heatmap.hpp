// Per-(stage, FID) memory-access heatmaps for the runtime's dispatch hot
// path, plus the decaying-counter hotness table the migration engine
// (ROADMAP item 2) will consume.
//
// Recording is single-writer plain-u64: the owning runtime increments
// cells from its shard's worker only, gated behind telemetry::enabled()
// like every other hot-path recording site, and a one-slot FID memo makes
// the steady state (one flow per sweep) a pointer compare plus an
// increment. Merging follows the shard-registry idiom: commutative
// merge_from while quiescent.
#pragma once

#include <iosfwd>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "telemetry/metrics.hpp"

namespace artmt::telemetry {

class StageHeatmap {
 public:
  struct Cell {
    u64 reads = 0;
    u64 writes = 0;
    u64 collisions = 0;  // protection faults on memory ops (kNoAllocation /
                         // kProtectionViolation)
    friend bool operator==(const Cell&, const Cell&) = default;
  };

  explicit StageHeatmap(u32 stages) : stages_(stages == 0 ? 1 : stages) {}

  void record_read(u32 stage, i32 fid) { ++cell(stage, fid).reads; }
  void record_write(u32 stage, i32 fid) { ++cell(stage, fid).writes; }
  // Fused read-modify-write accounting (one cell lookup for both counts).
  void record_read_write(u32 stage, i32 fid) {
    Cell& c = cell(stage, fid);
    ++c.reads;
    ++c.writes;
  }
  void record_collision(u32 stage, i32 fid) { ++cell(stage, fid).collisions; }

  [[nodiscard]] u32 stages() const { return stages_; }
  // The FIDs with recorded activity, ascending.
  [[nodiscard]] std::vector<i32> fids() const;
  // nullptr when the (stage, fid) cell has no recorded activity.
  [[nodiscard]] const Cell* find(u32 stage, i32 fid) const;
  // Sum of reads + writes + collisions over every cell of `fid`.
  [[nodiscard]] u64 total_accesses(i32 fid) const;

  // Commutative quiescent merge (shard-registry idiom).
  void merge_from(const StageHeatmap& other);
  void clear();

  // Exports every cell as heatmap.* counters:
  //   heatmap.s<stage>_reads{fid=N} / _writes / _collisions
  void export_metrics(MetricsRegistry& out) const;
  // Deterministic JSON object {"fid":{"stage":{r,w,c},...},...} with keys
  // ascending -- byte-comparable across engines and shard counts.
  void snapshot_json(std::ostream& out) const;

 private:
  Cell& cell(u32 stage, i32 fid) {
    std::vector<Cell>* row = fid == memo_fid_ ? memo_row_ : row_slow(fid);
    return (*row)[stage < stages_ ? stage : stages_ - 1];
  }
  std::vector<Cell>* row_slow(i32 fid);

  u32 stages_;
  std::map<i32, std::vector<Cell>> rows_;  // fid -> per-stage cells
  i32 memo_fid_ = std::numeric_limits<i32>::min();
  std::vector<Cell>* memo_row_ = nullptr;
};

// Decaying per-FID access counters: observe() absorbs the delta of each
// FID's total accesses since the previous observation, decay() halves
// every score (a classic aging counter). ranked() yields hottest-first --
// the input the elastic-memory migration engine needs to pick promotion /
// demotion candidates.
class HotnessTable {
 public:
  explicit HotnessTable(u32 decay_shift = 1) : shift_(decay_shift) {}

  void observe(const StageHeatmap& heatmap);
  void decay();

  [[nodiscard]] u64 score(i32 fid) const;
  // (fid, score) hottest first; equal scores order by ascending fid.
  [[nodiscard]] std::vector<std::pair<i32, u64>> ranked() const;

 private:
  struct State {
    u64 score = 0;
    u64 last_total = 0;
  };
  u32 shift_;
  std::map<i32, State> states_;
};

}  // namespace artmt::telemetry
