// Active packet headers (Section 3.3). Three kinds of active packets share
// a 10-byte initial header: allocation requests, allocation responses, and
// active programs. Program packets carry a 16-byte argument header (four
// 32-bit data fields) followed by 2-byte instruction headers; request
// packets carry a 24-byte constraint header (eight 3-byte access slots);
// response packets carry a 160-byte header (twenty 8-byte per-stage memory
// regions). The reproduction adds a few pure-control types (deallocation,
// reallocation notice, extraction-complete) that the paper describes as
// "special packets containing only the global active header".
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "active/program.hpp"
#include "active/program_cache.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"
#include "packet/ethernet.hpp"

namespace artmt::packet {

enum class ActiveType : u8 {
  kProgram = 0,
  kAllocRequest = 1,
  kAllocResponse = 2,
  kDealloc = 3,          // client releases its allocation
  kDeallocAck = 4,       // switch confirms release
  kReallocNotice = 5,    // switch -> client: yield memory, snapshot ready
  kExtractComplete = 6,  // client -> switch: done extracting state
  kReactivated = 7,      // switch -> client: new allocation applied
  // Fabric health epochs (src/fabric): a probe is echoed as an ack whose
  // payload carries the switch's allocator scoreboard. Both are
  // control-only frames (initial header + opaque payload).
  kHealthProbe = 8,  // controller/client -> switch: are you alive?
  kHealthAck = 9,    // switch -> prober: alive; payload = scoreboard
};

// Control-flag bits in the initial header.
inline constexpr u8 kFlagPreloadMar = 0x01;   // seed MAR from args[0]
inline constexpr u8 kFlagPreloadMbr = 0x02;   // seed MBR from args[1]
inline constexpr u8 kFlagNoShrink = 0x04;     // disable packet shrinking
inline constexpr u8 kFlagAllocFailed = 0x08;  // response: admission denied
// Management capsules (memory sync during reallocation) execute even while
// the FID's ordinary program packets are deactivated (Section 4.3).
inline constexpr u8 kFlagManagement = 0x10;
// Privileged capsules (set by a trusted host-based shim, Section 7.2) may
// use forwarding-affecting opcodes when the runtime enforces privilege.
inline constexpr u8 kFlagPrivileged = 0x20;

// 10-byte initial header: fid(2) type(1) flags(1) seq(4) reserved(2).
struct InitialHeader {
  Fid fid = 0;
  ActiveType type = ActiveType::kProgram;
  u8 flags = 0;
  u32 seq = 0;  // client-chosen sequence number, echoed in replies

  static constexpr std::size_t kWireSize = 10;

  void serialize(ByteWriter& out) const;
  static InitialHeader parse(ByteReader& in);

  friend bool operator==(const InitialHeader&, const InitialHeader&) = default;
};

// 16-byte argument header: four 32-bit data fields.
struct ArgumentHeader {
  std::array<Word, active::kArgFields> args{};

  static constexpr std::size_t kWireSize = 16;

  void serialize(ByteWriter& out) const;
  static ArgumentHeader parse(ByteReader& in);

  friend bool operator==(const ArgumentHeader&, const ArgumentHeader&) =
      default;
};

// One of the eight 3-byte access slots in an allocation request: the
// position of the memory access within the (most compact) program, the
// per-stage block demand, and flags.
struct AccessSlot {
  u8 position = 0;  // 1-based instruction index of the access; 0 = unused
  u8 demand_blocks = 0;
  u8 flags = 0;  // bit0: elastic demand in this slot

  [[nodiscard]] bool valid() const { return position != 0; }
  [[nodiscard]] bool elastic() const { return (flags & 0x01) != 0; }

  friend bool operator==(const AccessSlot&, const AccessSlot&) = default;
};

inline constexpr std::size_t kMaxAccessSlots = 8;

// 24-byte allocation request header (+ program shape carried alongside in
// an argument header: length, ingress-limit position, recirculation budget).
struct AllocRequestHeader {
  std::array<AccessSlot, kMaxAccessSlots> slots{};

  static constexpr std::size_t kWireSize = 24;

  [[nodiscard]] u32 access_count() const;

  void serialize(ByteWriter& out) const;
  static AllocRequestHeader parse(ByteReader& in);

  friend bool operator==(const AllocRequestHeader&, const AllocRequestHeader&) =
      default;
};

// Per-stage memory region granted to an application: word-addressed
// half-open range [start, limit). Unallocated stages have start == limit.
struct StageRegion {
  u32 start_word = 0;
  u32 limit_word = 0;

  [[nodiscard]] bool allocated() const { return limit_word > start_word; }
  [[nodiscard]] u32 words() const { return limit_word - start_word; }

  friend bool operator==(const StageRegion&, const StageRegion&) = default;
};

inline constexpr u32 kResponseStages = 20;

// 160-byte allocation response: twenty 8-byte per-stage regions.
struct AllocResponseHeader {
  std::array<StageRegion, kResponseStages> regions{};

  static constexpr std::size_t kWireSize = 160;

  void serialize(ByteWriter& out) const;
  static AllocResponseHeader parse(ByteReader& in);

  friend bool operator==(const AllocResponseHeader&,
                         const AllocResponseHeader&) = default;
};

// A fully parsed active packet. Exactly one of the optional sections is
// present according to `initial.type` (program packets have arguments AND
// code); `payload` is the opaque passive remainder (e.g. the TCP/IP bytes
// the program does not inspect).
//
// Program packets carry their code in one of two forms: a decoded,
// mutable `program` (the legacy path) or a shared, immutable `compiled`
// artifact interned through a ProgramCache (the switch's steady-state
// path, which skips the per-packet decode entirely). When both are set,
// `program` wins for serialization.
struct ActivePacket {
  EthernetHeader ethernet;
  InitialHeader initial;
  std::optional<ArgumentHeader> arguments;
  std::optional<active::Program> program;
  std::shared_ptr<const active::CompiledProgram> compiled;
  std::optional<AllocRequestHeader> request;
  std::optional<AllocResponseHeader> response;
  std::vector<u8> payload;

  // Serializes the whole frame (Ethernet + active headers + payload).
  // Program packets serialize `program` when present, else the pristine
  // `compiled` wire form (use proto::encode_executed for the post-
  // execution shrink reply).
  [[nodiscard]] std::vector<u8> serialize() const;

  // Parses a frame; requires ethertype == kEtherTypeActive.
  static ActivePacket parse(std::span<const u8> frame);

  // Parses a frame, interning program code through `cache`: on a cache
  // hit the instruction stream is never decoded and `compiled` points at
  // the shared artifact (`program` stays empty).
  static ActivePacket parse(std::span<const u8> frame,
                            active::ProgramCache& cache);

  // Convenience constructors.
  static ActivePacket make_program(Fid fid, const ArgumentHeader& args,
                                   const active::Program& program);
  static ActivePacket make_program(
      Fid fid, const ArgumentHeader& args,
      std::shared_ptr<const active::CompiledProgram> compiled);
  static ActivePacket make_control(Fid fid, ActiveType type);
};

}  // namespace artmt::packet
