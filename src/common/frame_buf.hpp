// Pooled, ref-counted byte buffers for the frame datapath. A FrameBuf is a
// [offset, offset+len) window into a fixed-capacity slab; copies share the
// slab (shallow, ref-counted), and when the last reference drops the slab
// returns to its FramePool's freelist instead of the heap. Slabs carry
// headroom in front of the frame bytes so a reply can be synthesized in
// place ahead of an untouched payload (the packet-shrink fast path) by
// sliding the window forward.
//
// Ownership rules:
//  - A FrameBuf may outlive its FramePool: slabs hold a weak reference to
//    the pool state, so releases after pool destruction free the slab
//    instead of recycling it (simulator event queues routinely drain after
//    the network -- and its pool -- are gone).
//  - Mutation requires unique(); shared views alias the same bytes.
//  - Not thread-safe: refcounts and freelists are plain (non-atomic).
//    Each simulation shard owns one pool, and every FrameBuf minted from
//    it is confined to that shard's worker thread. Frames crossing a
//    shard boundary are deep-copied into the destination pool via
//    FramePool::clone at the epoch barrier (see netsim/sharded.hpp);
//    a slab never changes threads.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace artmt {

class FramePool;

namespace detail {

struct FramePoolState;

// Header placed in front of the byte storage; allocated as one block.
struct FrameSlab {
  std::weak_ptr<FramePoolState> pool;  // empty: standalone, freed on release
  u32 refs = 1;
  u32 capacity = 0;

  [[nodiscard]] u8* bytes() { return reinterpret_cast<u8*>(this + 1); }
  [[nodiscard]] const u8* bytes() const {
    return reinterpret_cast<const u8*>(this + 1);
  }
};

FrameSlab* new_slab(std::size_t capacity);
void free_slab(FrameSlab* slab);
void release_slab(FrameSlab* slab);  // decref; recycle or free at zero

}  // namespace detail

class FrameBuf {
 public:
  // Headroom reserved by FramePool::acquire so in-place replies can only
  // ever need to slide the window forward, never backward.
  static constexpr std::size_t kDefaultHeadroom = 64;

  FrameBuf() = default;

  // Standalone (non-pooled) buffers; the slab is freed on last release.
  explicit FrameBuf(std::size_t size, u8 fill = 0);
  FrameBuf(std::vector<u8> bytes);  // NOLINT(google-explicit-constructor)
  explicit FrameBuf(std::span<const u8> bytes);

  FrameBuf(const FrameBuf& other) noexcept;
  FrameBuf& operator=(const FrameBuf& other) noexcept;
  FrameBuf(FrameBuf&& other) noexcept;
  FrameBuf& operator=(FrameBuf&& other) noexcept;
  ~FrameBuf() { reset(); }

  void reset() noexcept;

  [[nodiscard]] u8* data() { return slab_ ? slab_->bytes() + off_ : nullptr; }
  [[nodiscard]] const u8* data() const {
    return slab_ ? slab_->bytes() + off_ : nullptr;
  }
  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] bool empty() const { return len_ == 0; }
  [[nodiscard]] u8& operator[](std::size_t i) { return data()[i]; }
  [[nodiscard]] const u8& operator[](std::size_t i) const {
    return data()[i];
  }
  [[nodiscard]] u8* begin() { return data(); }
  [[nodiscard]] u8* end() { return data() + len_; }
  [[nodiscard]] const u8* begin() const { return data(); }
  [[nodiscard]] const u8* end() const { return data() + len_; }

  [[nodiscard]] std::span<u8> span() { return {data(), len_}; }
  [[nodiscard]] std::span<const u8> cspan() const { return {data(), len_}; }
  operator std::span<const u8>() const {  // NOLINT: mirrors vector->span
    return cspan();
  }

  // True when this is the only reference to the slab (in-place mutation
  // and window adjustments are safe).
  [[nodiscard]] bool unique() const { return slab_ != nullptr && slab_->refs == 1; }
  [[nodiscard]] bool pooled() const {
    return slab_ != nullptr && !slab_->pool.expired();
  }

  // Bytes available in front of / behind the current window.
  [[nodiscard]] std::size_t headroom() const { return off_; }
  [[nodiscard]] std::size_t tailroom() const {
    return slab_ ? slab_->capacity - off_ - len_ : 0;
  }
  [[nodiscard]] std::size_t capacity() const {
    return slab_ ? slab_->capacity : 0;
  }

  // Window adjustments (require unique(); throw UsageError otherwise).
  void drop_front(std::size_t n);  // shrink from the front; headroom grows
  void grow_front(std::size_t n);  // extend into headroom
  void resize(std::size_t n);      // adjust tail within capacity

  [[nodiscard]] std::vector<u8> to_vector() const {
    return {begin(), end()};
  }

  friend bool operator==(const FrameBuf& a, const FrameBuf& b) {
    return a.len_ == b.len_ &&
           (a.len_ == 0 || std::memcmp(a.data(), b.data(), a.len_) == 0);
  }

 private:
  friend class FramePool;
  FrameBuf(detail::FrameSlab* slab, u32 off, u32 len)
      : slab_(slab), off_(off), len_(len) {}

  void require_unique(const char* op) const;

  detail::FrameSlab* slab_ = nullptr;
  u32 off_ = 0;
  u32 len_ = 0;
};

// Recycling arena for FrameBufs. acquire() pops a slab off the freelist
// (allocating only when empty), and the last FrameBuf release pushes it
// back, so a warm pool serves the steady-state datapath with zero heap
// traffic. Requests larger than the slab size get an exact-size standalone
// slab that is freed, not recycled (counted in stats().oversize).
class FramePool {
 public:
  static constexpr std::size_t kDefaultSlabBytes = 2048;

  explicit FramePool(std::size_t slab_bytes = kDefaultSlabBytes);

  // An uninitialized buffer of `size` bytes with at least `headroom`
  // bytes of front slack. The caller fills it.
  FrameBuf acquire(std::size_t size,
                   std::size_t headroom = FrameBuf::kDefaultHeadroom);

  // Copies `bytes` into a pooled buffer (the common ingress case).
  FrameBuf copy(std::span<const u8> bytes,
                std::size_t headroom = FrameBuf::kDefaultHeadroom);

  // Deep-copies `src` into this pool, preserving its headroom so in-place
  // reply synthesis still works on the clone. This is the cross-shard
  // handoff primitive: slabs (non-atomic refcounts, per-shard freelists)
  // must never migrate between shards, so a frame crossing a shard
  // boundary is cloned into the destination shard's pool at the epoch
  // barrier and the original is released by its owner.
  FrameBuf clone(const FrameBuf& src);

  struct Stats {
    u64 acquired = 0;       // total acquire()/copy() calls
    u64 slabs_created = 0;  // freelist misses (heap allocations)
    u64 recycled = 0;       // slabs returned to the freelist
    u64 oversize = 0;       // requests that exceeded the slab size
  };

  [[nodiscard]] const Stats& stats() const;
  [[nodiscard]] std::size_t free_slabs() const;
  [[nodiscard]] std::size_t slab_bytes() const;

  // Pre-populates the freelist so the first packets are allocation-free.
  void reserve(std::size_t slabs);

 private:
  std::shared_ptr<detail::FramePoolState> state_;
};

}  // namespace artmt
