#include "controller/controller.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace artmt::controller {

// Pre-registered handles; blocks_allocated is labeled per FID so occupancy
// per service is visible in snapshots (the paper's Fig. 9 quantity).
struct ControllerMetrics {
  explicit ControllerMetrics(telemetry::MetricsRegistry& r)
      : blocks_allocated(r, "controller", "blocks_allocated"),
        admissions(&r.counter("controller", "admissions")),
        rejections(&r.counter("controller", "rejections")),
        tcam_rejections(&r.counter("controller", "tcam_rejections")),
        releases(&r.counter("controller", "releases")),
        reallocations(&r.counter("controller", "reallocations")),
        table_entry_updates(&r.counter("controller", "table_entry_updates")),
        table_update_batches(&r.counter("controller", "table_update_batches")),
        blocks_snapshotted(&r.counter("controller", "blocks_snapshotted")),
        extraction_timeouts(&r.counter("controller", "extraction_timeouts")),
        migrations(&r.counter("controller", "migrations")),
        migration_noops(&r.counter("controller", "migration_noops")),
        blocks_migrated(&r.counter("controller", "blocks_migrated")),
        compute_us(&r.histogram("controller", "admit_compute_us")),
        provisioning_ns(&r.histogram("controller", "provisioning_ns")) {}

  telemetry::CounterFamily blocks_allocated;
  telemetry::Counter* admissions;
  telemetry::Counter* rejections;
  telemetry::Counter* tcam_rejections;
  telemetry::Counter* releases;
  telemetry::Counter* reallocations;
  telemetry::Counter* table_entry_updates;
  telemetry::Counter* table_update_batches;
  telemetry::Counter* blocks_snapshotted;
  telemetry::Counter* extraction_timeouts;
  telemetry::Counter* migrations;
  telemetry::Counter* migration_noops;
  telemetry::Counter* blocks_migrated;
  telemetry::Histogram* compute_us;
  telemetry::Histogram* provisioning_ns;
};

Controller::Controller(rmt::Pipeline& pipeline,
                       runtime::ActiveRuntime& runtime, alloc::Scheme scheme,
                       alloc::MutantPolicy policy, CostModel costs)
    : pipeline_(&pipeline),
      runtime_(&runtime),
      alloc_(alloc::StageGeometry{pipeline.config().logical_stages,
                                  pipeline.config().ingress_stages},
             pipeline.config().blocks_per_stage(), scheme, policy),
      costs_(costs) {}

Controller::~Controller() = default;

void Controller::set_metrics(telemetry::MetricsRegistry* metrics) {
  alloc_.set_metrics(metrics);
  metrics_ = metrics == nullptr ? nullptr
                                : std::make_unique<ControllerMetrics>(*metrics);
}

std::map<u32, Interval> Controller::regions_of(Fid fid) const {
  const auto it = fid_to_app_.find(fid);
  if (it == fid_to_app_.end()) throw UsageError("Controller: unknown FID");
  return alloc_.regions_of(it->second);
}

packet::AllocResponseHeader Controller::response_for(Fid fid) const {
  packet::AllocResponseHeader header;
  const u32 block_words = pipeline_->config().block_words;
  for (const auto& [stage, region] : regions_of(fid)) {
    if (stage >= packet::kResponseStages) continue;
    header.regions[stage].start_word = region.begin * block_words;
    header.regions[stage].limit_word = region.end * block_words;
  }
  return header;
}

std::vector<Fid> Controller::resident_fids() const {
  std::vector<Fid> fids;
  fids.reserve(fid_to_app_.size());
  for (const auto& [fid, app] : fid_to_app_) fids.push_back(fid);
  std::sort(fids.begin(), fids.end());
  return fids;
}

alloc::AppId Controller::app_of(Fid fid) const {
  const auto it = fid_to_app_.find(fid);
  if (it == fid_to_app_.end()) throw UsageError("Controller: unknown FID");
  return it->second;
}

Fid Controller::fid_of(alloc::AppId app) const {
  const auto it = app_to_fid_.find(app);
  if (it == app_to_fid_.end()) throw UsageError("Controller: unknown app");
  return it->second;
}

const alloc::Mutant* Controller::mutant_of(Fid fid) const {
  const auto it = mutants_.find(fid);
  return it == mutants_.end() ? nullptr : &it->second;
}

const std::map<u32, std::vector<Word>>* Controller::snapshot_of(
    Fid fid) const {
  const auto it = snapshots_.find(fid);
  return it == snapshots_.end() ? nullptr : &it->second;
}

void Controller::take_snapshot(Fid fid) {
  // Old regions are what the pipeline tables still hold (the allocator's
  // bookkeeping already reflects the new layout).
  std::map<u32, std::vector<Word>> snapshot;
  for (u32 s = 0; s < pipeline_->stage_count(); ++s) {
    const rmt::FidEntry* entry = pipeline_->stage(s).lookup(fid);
    if (entry == nullptr || entry->words() == 0) continue;
    snapshot[s] =
        pipeline_->stage(s).memory().dump(entry->start_word, entry->words());
    const u64 blocks = entry->words() / pipeline_->config().block_words;
    stats_.blocks_snapshotted += blocks;
    if (metrics_) metrics_->blocks_snapshotted->inc(blocks);
  }
  snapshots_[fid] = std::move(snapshot);
}

void Controller::install_with_advance(Fid fid) {
  const auto it = fid_to_app_.find(fid);
  if (it == fid_to_app_.end()) throw UsageError("Controller: unknown FID");
  const auto regions = alloc_.regions_of(it->second);
  const u32 block_words = pipeline_->config().block_words;
  const u32 n = pipeline_->config().logical_stages;

  // Word-level start per stage.
  std::map<u32, u32> start_of;
  for (const auto& [stage, region] : regions) {
    start_of[stage] = region.begin * block_words;
  }

  // Advance chain: for access i at stage s_i, MAR advances to the region
  // start delta of access i+1's stage (Section 3.4's bucket walk).
  std::map<u32, i32> advance_of;
  const auto* mutant = mutant_of(fid);
  if (mutant != nullptr) {
    for (std::size_t i = 0; i + 1 < mutant->size(); ++i) {
      const u32 s = (*mutant)[i] % n;
      const u32 next = (*mutant)[i + 1] % n;
      if (!advance_of.contains(s) && s != next) {
        advance_of[s] = static_cast<i32>(start_of.at(next)) -
                        static_cast<i32>(start_of.at(s));
      }
    }
  }

  for (const auto& [stage, region] : regions) {
    const u32 start = region.begin * block_words;
    const u32 limit = region.end * block_words;
    const i32 advance =
        advance_of.contains(stage) ? advance_of.at(stage) : 0;
    if (!pipeline_->stage(stage).install(fid, start, limit, advance)) {
      throw UsageError("Controller: TCAM capacity exceeded at install");
    }
    ++stats_.table_entry_updates;
    if (metrics_) metrics_->table_entry_updates->inc();
  }
}

u32 Controller::remove_entries(Fid fid) {
  u32 ops = 0;
  for (u32 s = 0; s < pipeline_->stage_count(); ++s) {
    if (pipeline_->stage(s).lookup(fid) != nullptr) {
      pipeline_->stage(s).remove(fid);
      ++ops;
      ++stats_.table_entry_updates;
      if (metrics_) metrics_->table_entry_updates->inc();
    }
  }
  return ops;
}

u32 Controller::sync_entries(Fid fid) {
  const u32 removed = remove_entries(fid);
  install_with_advance(fid);
  const auto it = fid_to_app_.find(fid);
  const u32 installed =
      static_cast<u32>(alloc_.regions_of(it->second).size());
  return removed + installed;
}

AdmissionResult Controller::admit(const alloc::AllocationRequest& request) {
  if (pending_) {
    throw UsageError("Controller: admission already pending (serialized)");
  }
  AdmissionResult result;
  result.outcome = alloc_.allocate(request);
  result.compute_ms = result.outcome.search_ms + result.outcome.assign_ms;
  if (!result.outcome.success) {
    ++stats_.rejections;
    if (metrics_) metrics_->rejections->inc();
    if (auto* sink = telemetry::trace_sink()) {
      sink->emit("controller", "rejection", telemetry::kNoFid,
                 {{"cause", "no_feasible_placement"},
                  {"mutants_considered", result.outcome.mutants_considered}});
    }
    return result;
  }

  // TCAM admission control: protection costs one range entry per occupied
  // stage, and the paper identifies these entries as the bottleneck for
  // the number of distinct address ranges. Reject (and roll back) when a
  // chosen stage has no headroom -- reallocated apps replace entries, so
  // only the new app consumes slots.
  for (const auto& [stage, region] : result.outcome.regions) {
    const rmt::Stage& s = pipeline_->stage(stage);
    if (s.tcam_used() >= s.tcam_capacity()) {
      alloc_.deallocate(result.outcome.app);
      result.outcome.success = false;
      ++stats_.rejections;
      ++stats_.tcam_rejections;
      if (metrics_) {
        metrics_->rejections->inc();
        metrics_->tcam_rejections->inc();
      }
      if (auto* sink = telemetry::trace_sink()) {
        sink->emit("controller", "rejection", telemetry::kNoFid,
                   {{"cause", "tcam_headroom"}, {"stage", stage}});
      }
      return result;
    }
  }
  ++stats_.admissions;

  const Fid fid = next_fid_++;
  result.admitted = true;
  result.fid = fid;
  fid_to_app_[fid] = result.outcome.app;
  app_to_fid_[result.outcome.app] = fid;
  mutants_[fid] = result.outcome.chosen;

  for (const alloc::AppId app : result.outcome.reallocated) {
    result.disturbed.push_back(app_to_fid_.at(app));
  }
  stats_.reallocations += result.disturbed.size();

  // Cost accounting (performed work happens at finalize, but the totals
  // are deterministic now).
  const u32 block_words = pipeline_->config().block_words;
  u64 entry_ops = alloc_.regions_of(result.outcome.app).size();
  u64 blocks_cleared = 0;
  u64 blocks_snapshotted = 0;
  for (const auto& [stage, region] :
       alloc_.regions_of(result.outcome.app)) {
    blocks_cleared += region.size();
  }
  for (const Fid disturbed : result.disturbed) {
    const alloc::AppId app = fid_to_app_.at(disturbed);
    for (u32 s = 0; s < pipeline_->stage_count(); ++s) {
      const rmt::FidEntry* entry = pipeline_->stage(s).lookup(disturbed);
      if (entry != nullptr) {
        ++entry_ops;  // removal
        blocks_snapshotted += entry->words() / block_words;
      }
    }
    for (const auto& [stage, region] : alloc_.regions_of(app)) {
      ++entry_ops;  // install
      blocks_cleared += region.size();
    }
  }
  // One coalesced driver batch per application whose entries change: the
  // new app's contiguous installs plus each disturbed app's replace.
  result.table_update_batches = 1 + result.disturbed.size();
  result.table_update_cost =
      costs_.table_update_time(entry_ops, result.table_update_batches);
  stats_.table_update_batches += result.table_update_batches;
  result.snapshot_cost =
      static_cast<SimTime>(blocks_snapshotted) * costs_.snapshot_per_block;
  result.clear_cost =
      static_cast<SimTime>(blocks_cleared) * costs_.clear_per_block;

  if (metrics_) {
    metrics_->admissions->inc();
    metrics_->reallocations->inc(result.disturbed.size());
    metrics_->table_update_batches->inc(result.table_update_batches);
    u64 fid_blocks = 0;
    for (const auto& [stage, region] :
         alloc_.regions_of(result.outcome.app)) {
      fid_blocks += region.size();
    }
    metrics_->blocks_allocated.at(fid).inc(fid_blocks);
    metrics_->compute_us->record(
        static_cast<u64>(result.compute_ms * 1000.0));
    metrics_->provisioning_ns->record(
        static_cast<u64>(result.provisioning_time()));
  }
  if (auto* sink = telemetry::trace_sink()) {
    sink->emit("controller", "admission", fid,
               {{"disturbed", result.disturbed.size()},
                {"pending", !result.disturbed.empty()},
                {"provisioning_ns", result.provisioning_time()}});
  }

  if (result.disturbed.empty()) {
    pending_ = PendingAdmission{fid, {}};
    finalize();
    return result;
  }

  // Handshake: quiesce and snapshot the disturbed apps, then wait.
  PendingAdmission pending;
  pending.new_fid = fid;
  for (const Fid disturbed : result.disturbed) {
    runtime_->deactivate(disturbed);
    take_snapshot(disturbed);
    pending.awaiting.insert(disturbed);
  }
  pending_ = pending;
  result.pending = true;
  return result;
}

bool Controller::extraction_complete(Fid fid) {
  if (!pending_) return true;
  pending_->awaiting.erase(fid);
  return pending_->awaiting.empty();
}

void Controller::timeout_pending() {
  if (!pending_) return;
  stats_.extraction_timeouts += pending_->awaiting.size();
  if (metrics_) metrics_->extraction_timeouts->inc(pending_->awaiting.size());
  if (auto* sink = telemetry::trace_sink()) {
    sink->emit("controller", "extraction_timeout", pending_->new_fid,
               {{"abandoned", pending_->awaiting.size()}});
  }
  pending_->awaiting.clear();
}

void Controller::force_finalize() {
  if (!pending_) throw UsageError("Controller: no pending admission");
  timeout_pending();
  apply_pending();
}

void Controller::apply_pending() {
  if (!pending_) throw UsageError("Controller: no pending admission");
  if (!pending_->awaiting.empty()) {
    throw UsageError("Controller: pending admission not ready to apply");
  }
  finalize();
}

void Controller::finalize() {
  if (!pending_) throw UsageError("Controller: nothing to finalize");
  // new_fid == 0 is the background-migration sentinel: no admission rides
  // this transaction, only the disturbed apps re-sync.
  const Fid new_fid = pending_->new_fid;

  // Re-sync entries for every app whose layout changed, then the new app.
  std::vector<Fid> disturbed;
  for (const auto& [fid, app] : fid_to_app_) {
    if (fid == new_fid) continue;
    if (runtime_->is_deactivated(fid)) disturbed.push_back(fid);
  }
  for (const Fid fid : disturbed) sync_entries(fid);
  if (new_fid != 0) install_with_advance(new_fid);

  // Zero the regions that changed hands: the new app's and the disturbed
  // apps' new regions (content migration is the clients' job, from the
  // snapshots taken at deactivation).
  const u32 block_words = pipeline_->config().block_words;
  auto clear_regions = [&](Fid fid) {
    for (const auto& [stage, region] :
         alloc_.regions_of(fid_to_app_.at(fid))) {
      pipeline_->stage(stage).memory().fill(region.begin * block_words,
                                            region.size() * block_words, 0);
    }
  };
  if (new_fid != 0) clear_regions(new_fid);
  for (const Fid fid : disturbed) clear_regions(fid);

  for (const Fid fid : disturbed) runtime_->reactivate(fid);
  if (auto* sink = telemetry::trace_sink()) {
    sink->emit("controller", "apply", new_fid,
               {{"reactivated", disturbed.size()}});
  }
  pending_.reset();
}

MigrationResult Controller::migrate(const RemapRequest& request) {
  if (pending_) {
    throw UsageError("Controller: migration while a transaction is pending");
  }
  MigrationResult result;
  result.fid = request.fid;
  result.kind = request.kind;
  const auto fit = fid_to_app_.find(request.fid);
  if (fit == fid_to_app_.end()) return result;  // departed: graceful no-op
  const alloc::AppId app = fit->second;

  std::vector<alloc::AppId> changed;
  switch (request.kind) {
    case RemapKind::kDemote: {
      const bool was = alloc_.demoted(app);
      changed = alloc_.demote_elastic(app);
      result.applied = !was && alloc_.demoted(app);
      break;
    }
    case RemapKind::kPromote: {
      const bool was = alloc_.demoted(app);
      changed = alloc_.promote_elastic(app);
      result.applied = was && !alloc_.demoted(app);
      break;
    }
    case RemapKind::kReslide: {
      // TCAM guard: the re-slid app may enter stages it did not occupy
      // before, each costing one range entry while the old one is still
      // installed elsewhere. Requiring one slot of headroom everywhere is
      // conservative but placement-independent -- the search has not run
      // yet -- and a skipped re-slide is merely re-proposed later.
      for (u32 s = 0; s < pipeline_->stage_count(); ++s) {
        const rmt::Stage& stage = pipeline_->stage(s);
        if (stage.tcam_used() >= stage.tcam_capacity()) {
          ++stats_.migration_tcam_skips;
          if (auto* sink = telemetry::trace_sink()) {
            sink->emit("controller", "migration_tcam_skip", request.fid,
                       {{"stage", s}});
          }
          return result;
        }
      }
      const alloc::MoveOutcome move = alloc_.reallocate_app(app);
      result.applied = move.success;
      result.moved = move.moved;
      result.compute_ms = move.search_ms + move.assign_ms;
      changed = move.reallocated;
      if (move.moved) {
        changed.push_back(app);  // the target's own layout changed
        mutants_[request.fid] = move.chosen;
      }
      break;
    }
  }
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());

  if (changed.empty()) {
    ++stats_.migration_noops;
    if (metrics_) metrics_->migration_noops->inc();
    if (auto* sink = telemetry::trace_sink()) {
      sink->emit("controller", "migration_noop", request.fid,
                 {{"kind", remap_kind_name(request.kind)},
                  {"applied", result.applied}});
    }
    return result;
  }

  ++stats_.migrations;
  switch (request.kind) {
    case RemapKind::kDemote:
      ++stats_.migration_demotions;
      break;
    case RemapKind::kPromote:
      ++stats_.migration_promotions;
      break;
    case RemapKind::kReslide:
      ++stats_.migration_reslides;
      break;
  }
  for (const alloc::AppId a : changed) {
    result.disturbed.push_back(app_to_fid_.at(a));
  }
  stats_.reallocations += result.disturbed.size();
  if (metrics_) {
    metrics_->migrations->inc();
    metrics_->reallocations->inc(result.disturbed.size());
  }

  // Cost accounting (mirrors admit, minus a new app): removals are what
  // the tables still hold, installs and clears follow the new layout.
  const u32 block_words = pipeline_->config().block_words;
  u64 entry_ops = 0;
  u64 blocks_cleared = 0;
  u64 blocks_snapshotted = 0;
  for (const Fid dfid : result.disturbed) {
    for (u32 s = 0; s < pipeline_->stage_count(); ++s) {
      const rmt::FidEntry* entry = pipeline_->stage(s).lookup(dfid);
      if (entry != nullptr) {
        ++entry_ops;  // removal
        blocks_snapshotted += entry->words() / block_words;
      }
    }
    for (const auto& [stage, region] :
         alloc_.regions_of(fid_to_app_.at(dfid))) {
      ++entry_ops;  // install
      blocks_cleared += region.size();
    }
  }
  result.table_update_batches = result.disturbed.size();
  result.table_update_cost =
      costs_.table_update_time(entry_ops, result.table_update_batches);
  stats_.table_update_batches += result.table_update_batches;
  result.snapshot_cost =
      static_cast<SimTime>(blocks_snapshotted) * costs_.snapshot_per_block;
  result.clear_cost =
      static_cast<SimTime>(blocks_cleared) * costs_.clear_per_block;
  result.blocks_moved = blocks_cleared;
  stats_.blocks_migrated += blocks_cleared;
  if (metrics_) {
    metrics_->table_update_batches->inc(result.table_update_batches);
    metrics_->blocks_migrated->inc(blocks_cleared);
  }

  // Handshake: quiesce and snapshot every disturbed app, then wait for
  // extraction like any admission; new_fid = 0 marks the migration.
  PendingAdmission pending;
  pending.new_fid = 0;
  for (const Fid dfid : result.disturbed) {
    runtime_->deactivate(dfid);
    take_snapshot(dfid);
    pending.awaiting.insert(dfid);
  }
  pending_ = pending;
  result.pending = true;
  if (auto* sink = telemetry::trace_sink()) {
    sink->emit("controller", "migration", request.fid,
               {{"kind", remap_kind_name(request.kind)},
                {"disturbed", result.disturbed.size()},
                {"blocks", blocks_cleared}});
  }
  return result;
}

ReleaseResult Controller::release(Fid fid) {
  if (pending_) {
    throw UsageError("Controller: cannot release while admission pending");
  }
  const auto it = fid_to_app_.find(fid);
  if (it == fid_to_app_.end()) throw UsageError("Controller: unknown FID");
  ++stats_.releases;
  if (metrics_) metrics_->releases->inc();

  ReleaseResult result;
  const alloc::AppId app = it->second;

  u64 entry_ops = remove_entries(fid);
  const auto disturbed_apps = alloc_.deallocate(app);
  stats_.reallocations += disturbed_apps.size();
  if (metrics_) metrics_->reallocations->inc(disturbed_apps.size());

  const u32 block_words = pipeline_->config().block_words;
  u64 blocks_snapshotted = 0;
  // Snapshot every disturbed app before any region is rewritten, so no
  // snapshot observes another app's freshly cleared blocks.
  for (const alloc::AppId disturbed : disturbed_apps) {
    const Fid dfid = app_to_fid_.at(disturbed);
    result.disturbed.push_back(dfid);
    take_snapshot(dfid);
    for (const auto& [stage, snap] : snapshots_[dfid]) {
      blocks_snapshotted += snap.size() / block_words;
    }
  }
  for (const Fid dfid : result.disturbed) {
    entry_ops += sync_entries(dfid);
    // Departure-triggered moves also hand apps fresh (zeroed) regions.
    for (const auto& [stage, region] :
         alloc_.regions_of(fid_to_app_.at(dfid))) {
      pipeline_->stage(stage).memory().fill(region.begin * block_words,
                                            region.size() * block_words, 0);
    }
  }

  // Coalesced batches: the departing app's removals plus one ranged
  // replace per disturbed app.
  result.table_update_batches = 1 + result.disturbed.size();
  result.table_update_cost =
      costs_.table_update_time(entry_ops, result.table_update_batches);
  stats_.table_update_batches += result.table_update_batches;
  if (metrics_) {
    metrics_->table_update_batches->inc(result.table_update_batches);
  }
  result.snapshot_cost =
      static_cast<SimTime>(blocks_snapshotted) * costs_.snapshot_per_block;

  fid_to_app_.erase(fid);
  app_to_fid_.erase(app);
  mutants_.erase(fid);
  snapshots_.erase(fid);
  runtime_->reactivate(fid);  // forget any stale deactivation
  if (auto* sink = telemetry::trace_sink()) {
    sink->emit("controller", "release", fid,
               {{"disturbed", result.disturbed.size()}});
  }
  return result;
}

}  // namespace artmt::controller
