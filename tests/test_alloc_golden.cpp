// Golden placement tests for the allocator refactor: a fixed request
// sequence must keep producing exactly these placements (chosen mutants,
// mutants_considered, disturbance counts) under every scheme, and the
// indexed search path must match the legacy full-rescan reference
// placement-for-placement under churn. Any drift here means the
// incremental indexes changed an allocation decision, which invalidates
// every calibrated figure downstream.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "alloc/allocator.hpp"
#include "apps/programs.hpp"
#include "common/rng.hpp"
#include "telemetry/metrics.hpp"
#include "workload/churn.hpp"

namespace artmt::alloc {
namespace {

const StageGeometry kGeom{20, 10};
constexpr u32 kBlocks = 368;

// The fixed sequence: cache, hh, cache, lb, hh, cache.
std::vector<AllocationRequest> golden_sequence() {
  return {apps::cache_request(), apps::hh_request(), apps::cache_request(),
          apps::lb_request(),    apps::hh_request(), apps::cache_request()};
}

struct GoldenStep {
  bool success;
  Mutant chosen;
  u64 mutants_considered;
  std::size_t reallocated;
};

void expect_golden(Scheme scheme, const std::vector<GoldenStep>& golden) {
  Allocator alloc(kGeom, kBlocks, scheme);
  const auto seq = golden_sequence();
  ASSERT_EQ(seq.size(), golden.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const auto out = alloc.allocate(seq[i]);
    SCOPED_TRACE(testing::Message() << scheme_name(scheme) << " step " << i);
    EXPECT_EQ(out.success, golden[i].success);
    EXPECT_EQ(out.chosen, golden[i].chosen);
    EXPECT_EQ(out.mutants_considered, golden[i].mutants_considered);
    EXPECT_EQ(out.reallocated.size(), golden[i].reallocated);
  }
}

TEST(AllocGolden, WorstFitPlacements) {
  expect_golden(Scheme::kWorstFit, {{true, {1, 4, 8}, 52, 0},
                                    {true, {7, 12, 16, 24, 29, 36}, 1, 1},
                                    {true, {2, 5, 10}, 52, 0},
                                    {true, {2, 5, 12}, 1, 1},
                                    {true, {7, 12, 16, 24, 29, 36}, 1, 1},
                                    {true, {3, 6, 11}, 52, 0}});
}

TEST(AllocGolden, BestFitPlacements) {
  expect_golden(Scheme::kBestFit, {{true, {1, 4, 8}, 52, 0},
                                   {true, {7, 12, 16, 24, 29, 36}, 1, 1},
                                   {true, {1, 4, 12}, 52, 1},
                                   {true, {2, 5, 12}, 1, 1},
                                   {true, {7, 12, 16, 24, 29, 36}, 1, 2},
                                   {true, {1, 4, 12}, 52, 2}});
}

TEST(AllocGolden, FirstFitPlacements) {
  expect_golden(Scheme::kFirstFit, {{true, {1, 4, 8}, 1, 0},
                                    {true, {7, 12, 16, 24, 29, 36}, 1, 1},
                                    {true, {1, 4, 8}, 1, 1},
                                    {true, {2, 5, 12}, 1, 0},
                                    {true, {7, 12, 16, 24, 29, 36}, 1, 2},
                                    {true, {1, 4, 8}, 1, 2}});
}

TEST(AllocGolden, ReallocPlacements) {
  expect_golden(Scheme::kRealloc, {{true, {1, 4, 8}, 52, 0},
                                   {true, {7, 12, 16, 24, 29, 36}, 1, 1},
                                   {true, {2, 5, 9}, 52, 0},
                                   {true, {2, 5, 12}, 1, 1},
                                   {true, {7, 12, 16, 24, 29, 36}, 1, 2},
                                   {true, {3, 6, 10}, 52, 0}});
}

// --- indexed vs legacy-rescan parity under churn ---------------------------

using Layout = std::vector<std::map<AppId, Interval>>;

Layout layout_of(const Allocator& a) {
  Layout out;
  for (u32 s = 0; s < kGeom.logical_stages; ++s) {
    out.push_back(a.stage(s).regions());
  }
  return out;
}

const AllocationRequest& request_for(workload::AppKind kind) {
  static const AllocationRequest cache = apps::cache_request();
  static const AllocationRequest hh = apps::hh_request();
  static const AllocationRequest lb = apps::lb_request();
  switch (kind) {
    case workload::AppKind::kHeavyHitter:
      return hh;
    case workload::AppKind::kLoadBalancer:
      return lb;
    default:
      return cache;
  }
}

// Replays one Poisson churn stream through an indexed and a rescan
// allocator, asserting identical outcomes after every operation: same
// placements, same disturbed apps, same final layout. Under the
// most-constrained policy mutants_considered must match exactly (the
// indexed path may report 0 only on a failure it pruned); under
// least-constrained the indexed walk prunes filtered passes, so it may
// visit fewer mutants -- never more -- while landing on the same choice.
void expect_parity(Scheme scheme,
                   MutantPolicy policy = MutantPolicy::most_constrained()) {
  const bool exact_counts = policy.extra_passes == 0;
  Allocator indexed(kGeom, kBlocks, scheme, policy);
  Allocator rescan(kGeom, kBlocks, scheme, policy);
  rescan.set_search_mode(SearchMode::kRescan);
  ASSERT_EQ(indexed.search_mode(), SearchMode::kIndexed);

  workload::ChurnConfig churn;
  churn.arrival_rate = 3.0;
  churn.mean_lifetime = 20.0;  // steady state ~60 apps: saturates 368 blocks
  churn.seed = 7;
  workload::PoissonChurn gen(churn);

  std::map<u64, AppId> ids;  // both allocators assign identical AppIds
  for (int i = 0; i < 600; ++i) {
    const auto event = gen.next();
    SCOPED_TRACE(testing::Message()
                 << scheme_name(scheme) << " event " << i << " service "
                 << event.service);
    if (event.type == workload::ChurnEvent::Type::kArrival) {
      const auto a = indexed.allocate(request_for(event.kind));
      const auto b = rescan.allocate(request_for(event.kind));
      ASSERT_EQ(a.success, b.success);
      ASSERT_EQ(a.chosen, b.chosen);
      ASSERT_EQ(a.regions, b.regions);
      ASSERT_EQ(a.reallocated, b.reallocated);
      if (a.success) {
        ASSERT_EQ(a.app, b.app);
        if (exact_counts) {
          ASSERT_EQ(a.mutants_considered, b.mutants_considered);
        } else {
          ASSERT_LE(a.mutants_considered, b.mutants_considered);
        }
        ids[event.service] = a.app;
      } else if (a.mutants_considered != 0) {
        // Prune divergence is allowed only as indexed == 0 on failure
        // (or a cheaper filtered walk under least-constrained).
        if (exact_counts) {
          ASSERT_EQ(a.mutants_considered, b.mutants_considered);
        } else {
          ASSERT_LE(a.mutants_considered, b.mutants_considered);
        }
      }
    } else {
      const auto it = ids.find(event.service);
      if (it == ids.end()) continue;  // was rejected on arrival
      ASSERT_EQ(indexed.deallocate(it->second), rescan.deallocate(it->second));
      ids.erase(it);
    }
  }
  ASSERT_EQ(indexed.resident_count(), rescan.resident_count());
  ASSERT_EQ(layout_of(indexed), layout_of(rescan));
  ASSERT_NEAR(indexed.utilization(), rescan.utilization(), 0.0);
}

TEST(AllocParity, WorstFit) { expect_parity(Scheme::kWorstFit); }
TEST(AllocParity, BestFit) { expect_parity(Scheme::kBestFit); }
TEST(AllocParity, FirstFit) { expect_parity(Scheme::kFirstFit); }
TEST(AllocParity, Realloc) { expect_parity(Scheme::kRealloc); }
TEST(AllocParity, WorstFitLeastConstrained) {
  expect_parity(Scheme::kWorstFit, MutantPolicy::least_constrained());
}
TEST(AllocParity, BestFitLeastConstrained) {
  expect_parity(Scheme::kBestFit, MutantPolicy::least_constrained());
}
TEST(AllocParity, ReallocLeastConstrainedTwoPasses) {
  expect_parity(Scheme::kRealloc, MutantPolicy::least_constrained(2));
}

// --- the global feasibility prune ------------------------------------------

TEST(AllocPrune, HopelessRequestFailsWithoutEnumeration) {
  telemetry::MetricsRegistry metrics;
  Allocator indexed(kGeom, kBlocks);
  indexed.set_metrics(&metrics);
  Allocator rescan(kGeom, kBlocks);
  rescan.set_search_mode(SearchMode::kRescan);

  AllocationRequest hopeless;
  hopeless.accesses = {AccessDemand{4, kBlocks + 1, -1}};  // > any stage
  hopeless.program_length = 12;

  const auto a = indexed.allocate(hopeless);
  const auto b = rescan.allocate(hopeless);
  EXPECT_FALSE(a.success);
  EXPECT_FALSE(b.success);
  EXPECT_EQ(a.mutants_considered, 0u);  // rejected against the index bound
  EXPECT_GT(b.mutants_considered, 0u);  // legacy enumerates the space
  EXPECT_EQ(metrics.counter("alloc", "search_pruned").value(), 1u);
  EXPECT_EQ(indexed.resident_count(), 0u);

  // A feasible request still succeeds afterwards: the prune is stateless.
  EXPECT_TRUE(indexed.allocate(apps::cache_request()).success);
}

TEST(AllocPrune, IndexTracksOccupancyThroughChurn) {
  // The prune bound is only sound if the index aggregates stay equal to a
  // fresh rescan of the stage states after arbitrary alloc/dealloc churn.
  Allocator alloc(kGeom, kBlocks);
  workload::ChurnConfig churn;
  churn.arrival_rate = 4.0;
  churn.mean_lifetime = 15.0;
  churn.seed = 21;
  workload::PoissonChurn gen(churn);
  std::map<u64, AppId> ids;
  for (int i = 0; i < 400; ++i) {
    const auto event = gen.next();
    if (event.type == workload::ChurnEvent::Type::kArrival) {
      const auto out = alloc.allocate(request_for(event.kind));
      if (out.success) ids[event.service] = out.app;
    } else if (const auto it = ids.find(event.service); it != ids.end()) {
      alloc.deallocate(it->second);
      ids.erase(it);
    }

    u32 max_fung = 0;
    u32 min_fung = kBlocks;
    u32 max_headroom = 0;
    u32 max_fit = 0;
    for (u32 s = 0; s < kGeom.logical_stages; ++s) {
      const auto& stage = alloc.stage(s);
      max_fung = std::max(max_fung, stage.fungible_blocks());
      min_fung = std::min(min_fung, stage.fungible_blocks());
      max_headroom = std::max(max_headroom, stage.elastic_headroom());
      max_fit = std::max(max_fit, stage.max_inelastic_fit());
    }
    ASSERT_EQ(alloc.stage_index().max_fungible(), max_fung) << "event " << i;
    ASSERT_EQ(alloc.stage_index().min_fungible(), min_fung) << "event " << i;
    ASSERT_EQ(alloc.stage_index().max_elastic_headroom(), max_headroom)
        << "event " << i;
    ASSERT_EQ(alloc.stage_index().max_inelastic_fit(), max_fit)
        << "event " << i;
  }
  EXPECT_GT(alloc.resident_count(), 0u);
}

}  // namespace
}  // namespace artmt::alloc
