// Service churn generation for the online experiments (Section 6.1):
// per-epoch Poisson arrivals and departures (arrival rate twice the
// departure rate by default), with application kinds drawn uniformly.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace artmt::workload {

enum class AppKind : u8 { kCache = 0, kHeavyHitter = 1, kLoadBalancer = 2 };

inline constexpr u32 kAppKinds = 3;

const char* app_kind_name(AppKind kind);

struct EpochPlan {
  std::vector<AppKind> arrivals;  // kinds of the apps arriving this epoch
  u32 departures = 0;             // resident apps leaving (chosen by caller)
};

class ArrivalProcess {
 public:
  // Poisson(arrival_mean) arrivals and Poisson(departure_mean) departures
  // per epoch (paper defaults: means 2 and 1).
  ArrivalProcess(double arrival_mean, double departure_mean, u64 seed);

  // Uniform-kind arrivals; set `fixed` to force a pure workload.
  EpochPlan next_epoch();
  void fix_kind(AppKind kind) {
    fixed_kind_ = kind;
    has_fixed_ = true;
  }

  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  double arrival_mean_;
  double departure_mean_;
  Rng rng_;
  AppKind fixed_kind_ = AppKind::kCache;
  bool has_fixed_ = false;
};

}  // namespace artmt::workload
