// Background migration & defragmentation (ROADMAP item 2). The planner
// turns the runtime's heatmap-fed hotness scores plus the allocator's
// fragmentation accounting into asynchronous remap requests; the queue
// decouples planning from execution with bounded depth (congestion
// tracking) and per-FID dedup; the engine (SwitchNode) drains at most one
// live migration at a time through the existing extraction handshake.
//
// Three remap kinds, mirroring the MIND-style split of policy from
// mechanism:
//   kDemote  -- a cold elastic app's share cap drops to its minimum, so
//               progressive filling hands the freed blocks to hot members.
//   kPromote -- a demoted app whose traffic recovered gets its cap back.
//   kReslide -- a fragmented stage's topmost inelastic region is re-run
//               through the admission search (mutant re-slide); first-fit
//               hole reuse slides it down and merges free runs, letting
//               the frontier recede and the elastic pool grow.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/types.hpp"

namespace artmt::alloc {
class HotnessTable;
}  // namespace artmt::alloc

namespace artmt::controller {

class Controller;

enum class RemapKind : u8 { kDemote, kPromote, kReslide };

const char* remap_kind_name(RemapKind kind);

struct RemapRequest {
  Fid fid = 0;
  RemapKind kind = RemapKind::kReslide;
  u32 stage = 0;  // the fragmented stage that motivated a re-slide
  u64 score = 0;  // hotness at planning time (diagnostics)
};

struct RemapQueueStats {
  u64 enqueued = 0;
  u64 popped = 0;
  u64 congestion_drops = 0;  // queue at max depth
  u64 duplicates = 0;        // FID already queued
  u64 purged = 0;            // FID departed while queued
  u32 high_water = 0;
};

// Bounded FIFO of remap requests with per-FID dedup. Congestion (a full
// queue) drops the request and counts it -- planning re-proposes next
// cycle, so drops cost freshness, never correctness.
class RemapQueue {
 public:
  explicit RemapQueue(u32 max_depth = 64);

  bool push(const RemapRequest& request);  // false = dropped (full or dup)
  std::optional<RemapRequest> pop();
  // The FID departed; purge any queued request for it.
  void drop_fid(Fid fid);

  [[nodiscard]] bool contains(Fid fid) const { return queued_.contains(fid); }
  // Queued requests in FIFO order (admission control peeks for re-slides
  // that are about to free contiguous blocks).
  [[nodiscard]] const std::deque<RemapRequest>& pending() const {
    return queue_;
  }
  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] u32 max_depth() const { return max_depth_; }
  [[nodiscard]] const RemapQueueStats& stats() const { return stats_; }

 private:
  u32 max_depth_;
  std::deque<RemapRequest> queue_;
  std::set<Fid> queued_;
  RemapQueueStats stats_;
};

// Planner knobs; defaults favor stability over aggressiveness.
struct MigrationPolicy {
  // A demoted FID is promoted once its decayed score recovers to this.
  u64 promote_score = 64;
  // A stage is fragmented when its largest free run covers less than this
  // fraction of its free blocks (and at least min_frag_blocks are free).
  double frag_threshold = 0.5;
  u32 min_frag_blocks = 4;
  // At most this many remap requests enqueued per planning cycle.
  u32 max_plans_per_cycle = 4;
  // A FID is not re-planned for this many cycles after being planned
  // (anti-thrash hysteresis on top of the hotness cold streak).
  u32 cooldown_cycles = 4;
};

struct PlannerStats {
  u64 cycles = 0;
  u64 demotions_planned = 0;
  u64 promotions_planned = 0;
  u64 reslides_planned = 0;
  u64 cooldown_skips = 0;
};

class MigrationPlanner {
 public:
  explicit MigrationPlanner(MigrationPolicy policy = {});

  // One planning cycle: coldness-driven promotions/demotions first (cheap
  // share flips, ordered by hotness: hottest recoveries promote first,
  // coldest services demote first), then fragmentation-driven re-slides,
  // at most policy.max_plans_per_cycle requests pushed into `queue`.
  // Returns the number enqueued. Deterministic: candidates collect by
  // ascending FID and tied scores keep that order, stages ascend.
  u32 plan(const Controller& controller, const alloc::HotnessTable& hotness,
           RemapQueue& queue);

  [[nodiscard]] const MigrationPolicy& policy() const { return policy_; }
  [[nodiscard]] const PlannerStats& stats() const { return stats_; }

 private:
  [[nodiscard]] bool cooled_down(Fid fid) const;

  MigrationPolicy policy_;
  u64 cycle_ = 0;
  std::map<Fid, u64> last_planned_;
  PlannerStats stats_;
};

// --- per-service disruption analysis (first-class migration metric) ----
//
// `series` is a service's hit rate per fixed-size query window; `events`
// are window indices where a migration applied to it. For each event the
// baseline is the mean of up to the three preceding windows; the dip is
// the deepest drop below baseline before recovery, and recovery is the
// first window at or above baseline - tolerance (censored at the series
// end). p99 uses the nearest-rank method over events.
struct DisruptionReport {
  u64 events = 0;
  double max_dip = 0.0;  // fractional hit-rate drop (0 = no dip)
  double p99_dip = 0.0;
  u64 max_recovery_windows = 0;
  u64 p99_recovery_windows = 0;
};

DisruptionReport analyze_disruption(const std::vector<double>& series,
                                    const std::vector<std::size_t>& events,
                                    double tolerance = 0.05);

}  // namespace artmt::controller
