// The ActiveRMT instruction set (paper Appendix A): opcodes grouped into
// data copying, data manipulation, control flow, memory access, packet
// forwarding, and special instructions. Naming follows the paper's
// destination-first convention: COPY_A_B performs A <- B.
#pragma once

#include <optional>
#include <string_view>

#include "common/types.hpp"

namespace artmt::active {

enum class Opcode : u8 {
  // --- A.6 special ---
  kEof = 0x00,   // end of active program (wire terminator)
  kNop = 0x01,   // skip a stage
  kAddrMask = 0x02,    // MAR <- MAR & mask(fid, next access stage)
  kAddrOffset = 0x03,  // MAR <- MAR + offset(fid, next access stage)
  kHash = 0x04,        // MAR <- hash(hashdata)

  // --- A.1 data copying ---
  kMbrLoad = 0x10,   // MBR <- args[operand]
  kMbrStore = 0x11,  // args[operand] <- MBR
  kMbr2Load = 0x12,  // MBR2 <- args[operand]
  kMarLoad = 0x13,   // MAR <- args[operand]
  kCopyMbr2Mbr = 0x14,      // MBR2 <- MBR
  kCopyMbrMbr2 = 0x15,      // MBR <- MBR2
  kCopyMbrMar = 0x16,       // MBR <- MAR
  kCopyMarMbr = 0x17,       // MAR <- MBR
  kCopyHashdataMbr = 0x18,  // hashdata[operand] <- MBR
  kCopyHashdataMbr2 = 0x19, // hashdata[operand] <- MBR2
  kCopyHashdata5Tuple = 0x1a,  // hashdata <- packet 5-tuple metadata

  // --- A.2 data manipulation ---
  kMbrAddMbr2 = 0x20,      // MBR <- MBR + MBR2
  kMarAddMbr = 0x21,       // MAR <- MAR + MBR
  kMarAddMbr2 = 0x22,      // MAR <- MAR + MBR2
  kMarMbrAddMbr2 = 0x23,   // MAR <- MBR + MBR2
  kMbrSubtractMbr2 = 0x24, // MBR <- MBR - MBR2
  kBitAndMarMbr = 0x25,    // MAR <- MAR & MBR
  kBitOrMbrMbr2 = 0x26,    // MBR <- MBR | MBR2
  kMbrEqualsMbr2 = 0x27,   // MBR <- MBR ^ MBR2 (0 iff equal)
  kMax = 0x28,             // MBR <- max(MBR, MBR2)
  kMin = 0x29,             // MBR <- min(MBR, MBR2)
  kRevMin = 0x2a,          // MBR2 <- min(MBR, MBR2)
  kSwapMbrMbr2 = 0x2b,     // MBR <-> MBR2
  kMbrNot = 0x2c,          // MBR <- ~MBR
  kMbrEqualsData = 0x2d,   // MBR <- MBR ^ args[operand] (Listing 1's
                           // MBR_EQUALS_DATA_k, written MBR_EQUALS_DATA $k)

  // --- A.3 control flow ---
  kReturn = 0x30,  // mark complete; forward to resolved destination
  kCret = 0x31,    // return if MBR != 0
  kCreti = 0x32,   // return if MBR == 0
  kCjump = 0x33,   // jump to label if MBR != 0
  kCjumpi = 0x34,  // jump to label if MBR == 0
  kUjump = 0x35,   // unconditional jump to label

  // --- A.4 memory access (register ALU) ---
  kMemWrite = 0x40,       // mem[MAR] <- MBR
  kMemRead = 0x41,        // MBR <- mem[MAR]
  kMemIncrement = 0x42,   // mem[MAR] += INC; MBR <- new value
  kMemMinread = 0x43,     // MBR <- min(mem[MAR], MBR)
  kMemMinreadinc = 0x44,  // mem[MAR] += INC; MBR <- new; MBR2 <- min(MBR,MBR2)

  // --- A.5 packet forwarding ---
  kDrop = 0x50,    // drop the packet
  kFork = 0x51,    // clone packet, both continue (requires recirculation)
  kSetDst = 0x52,  // destination port <- MBR
  kRts = 0x53,     // return to sender (ingress-effective)
  kCrts = 0x54,    // RTS if MBR != 0
};

// Which kind of per-instruction operand the flag byte's operand bits carry.
enum class OperandKind : u8 {
  kNone,
  kArgIndex,  // index into the packet's four 32-bit argument fields
  kLabel,     // branch target label (carried in the label bits; see below)
};

// Static properties of an opcode, driving the assembler, the client
// compiler's constraint analysis, and the runtime's decode tables.
struct OpcodeInfo {
  Opcode op;
  std::string_view mnemonic;
  OperandKind operand = OperandKind::kNone;
  bool memory_access = false;  // touches the stage register array
  bool branch = false;         // consumes a label
  bool returns = false;        // may set the `complete` flag
  bool forwarding = false;     // alters packet forwarding
};

// Info for a given opcode; nullptr for an unknown byte (the runtime drops
// such capsules as malformed).
const OpcodeInfo* opcode_info(Opcode op);
const OpcodeInfo* opcode_info(u8 raw);

// Mnemonic lookup for the assembler; nullopt if unknown.
std::optional<Opcode> opcode_from_mnemonic(std::string_view mnemonic);

// Human-readable name ("<bad:0xNN>" never returned; throws on unknown).
std::string_view mnemonic(Opcode op);

// Number of 32-bit argument fields in an active packet (Section 3.3: the
// argument header is 16 bytes, four fields).
inline constexpr u32 kArgFields = 4;

// Hash metadata width in words (enough for a TCP 5-tuple plus salt).
inline constexpr u32 kHashdataWords = 4;

// Labels are encoded in 4 bits of the instruction flag byte; 0 = unlabeled.
inline constexpr u8 kMaxLabel = 15;

}  // namespace artmt::active
