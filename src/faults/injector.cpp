#include "faults/injector.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "netsim/sharded.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace artmt::faults {

namespace {

const char* const kKindNames[kFaultKindCount] = {
    "drop", "corrupt", "duplicate", "reorder", "jitter", "link_cut", "outage"};

bool name_matches(const std::string& pattern, const netsim::Node& node) {
  return pattern.empty() || pattern == node.name();
}

// A rule names an unordered link; frames match in either direction.
bool link_matches(const std::string& a, const std::string& b,
                  const netsim::Node& from, const netsim::Node& to) {
  return (name_matches(a, from) && name_matches(b, to)) ||
         (name_matches(a, to) && name_matches(b, from));
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  return kKindNames[static_cast<u32>(kind)];
}

FaultInjector::FaultInjector(FaultPlan plan, u32 shards)
    : plan_(std::move(plan)), counts_(std::max<u32>(shards, 1)) {}

void FaultInjector::count(const netsim::Node& from, const netsim::Node& to,
                          FaultKind kind, SimTime now) {
  const u32 shard = from.shard();
  if (shard >= counts_.size()) {
    throw UsageError(
        "FaultInjector: sender shard exceeds the injector's shard count "
        "(construct with the engine's shard count)");
  }
  ShardCounts& c = counts_[shard];
  ++c.by_kind[static_cast<u32>(kind)];
  ++c.by_link[from.name() + "->" + to.name()][static_cast<u32>(kind)];
  // Worker threads skip the process-global trace sink (same rule as the
  // netsim drop path); the serial engine records every injected fault.
  if (netsim::detail::tls_shard == nullptr) {
    if (auto* sink = telemetry::trace_sink()) {
      sink->emit("faults", "injected", telemetry::kNoFid,
                 {{"kind", fault_kind_name(kind)},
                  {"src", from.name()},
                  {"dst", to.name()},
                  {"at_ns", static_cast<u64>(now)}});
    }
  }
}

netsim::TransmitHook::Verdict FaultInjector::on_transmit(
    const netsim::Node& from, const netsim::Node& to, SimTime now, u64 tx_seq,
    netsim::Frame& frame, FramePool& pool) {
  Verdict verdict;

  // Scripted windows first: a downed link or browned-out switch loses the
  // frame regardless of the probabilistic rules.
  for (const Brownout& b : plan_.brownouts) {
    if (now < b.at || now >= b.up_at()) continue;
    if (b.node != from.name() && b.node != to.name()) continue;
    count(from, to, FaultKind::kOutage, now);
    verdict.drop = true;
    return verdict;
  }
  for (const LinkFlap& flap : plan_.flaps) {
    if (now < flap.down_at || now >= flap.up_at) continue;
    if (!link_matches(flap.node_a, flap.node_b, from, to)) continue;
    count(from, to, FaultKind::kLinkCut, now);
    verdict.drop = true;
    return verdict;
  }

  if (plan_.link_faults.empty()) return verdict;

  // One isolated substream per transmission: the decision depends only on
  // (seed, sender, tx_seq), never on which other frames were inspected
  // before this one or which thread is asking.
  const u64 frame_tag =
      (static_cast<u64>(from.attach_index()) << 40) | tx_seq;
  Rng rng = Rng::substream(plan_.seed, frame_tag);

  for (const LinkFaults& rule : plan_.link_faults) {
    if (now < rule.from || now >= rule.until) continue;
    if (!link_matches(rule.node_a, rule.node_b, from, to)) continue;

    if (rule.drop > 0.0 && rng.uniform_double() < rule.drop) {
      count(from, to, FaultKind::kDrop, now);
      verdict.drop = true;
      return verdict;
    }
    if (rule.corrupt > 0.0 && rng.uniform_double() < rule.corrupt &&
        frame.size() > 0) {
      if (!frame.unique()) frame = pool.clone(frame);
      const auto offset = static_cast<std::size_t>(rng.uniform(frame.size()));
      frame.data()[offset] ^= static_cast<u8>(1u << rng.uniform(8));
      count(from, to, FaultKind::kCorrupt, now);
    }
    if (rule.duplicate > 0.0 && rng.uniform_double() < rule.duplicate) {
      ++verdict.copies;
      verdict.dup_delay = std::max(verdict.dup_delay, rule.dup_delay);
      count(from, to, FaultKind::kDuplicate, now);
    }
    if (rule.reorder > 0.0 && rng.uniform_double() < rule.reorder) {
      verdict.extra_delay += rule.reorder_hold;
      count(from, to, FaultKind::kReorder, now);
    }
    if (rule.jitter > 0.0 && rng.uniform_double() < rule.jitter &&
        rule.jitter_max > 0) {
      verdict.extra_delay +=
          static_cast<SimTime>(rng.uniform(static_cast<u64>(rule.jitter_max)));
      count(from, to, FaultKind::kJitter, now);
    }
  }
  return verdict;
}

u64 FaultInjector::injected(FaultKind kind) const {
  u64 total = 0;
  for (const auto& c : counts_) total += c.by_kind[static_cast<u32>(kind)];
  return total;
}

u64 FaultInjector::injected_total() const {
  u64 total = 0;
  for (u32 k = 0; k < kFaultKindCount; ++k) {
    total += injected(static_cast<FaultKind>(k));
  }
  return total;
}

std::map<std::string, std::array<u64, kFaultKindCount>>
FaultInjector::injected_by_link() const {
  std::map<std::string, std::array<u64, kFaultKindCount>> merged;
  for (const auto& c : counts_) {
    for (const auto& [link, kinds] : c.by_link) {
      auto& into = merged[link];
      for (u32 k = 0; k < kFaultKindCount; ++k) into[k] += kinds[k];
    }
  }
  return merged;
}

void FaultInjector::export_metrics(telemetry::MetricsRegistry& metrics) const {
  for (u32 k = 0; k < kFaultKindCount; ++k) {
    const u64 total = injected(static_cast<FaultKind>(k));
    if (total == 0) continue;
    metrics
        .counter("faults",
                 std::string("injected_") + kKindNames[k])
        .merge_add(total);
  }
  for (const auto& [link, kinds] : injected_by_link()) {
    for (u32 k = 0; k < kFaultKindCount; ++k) {
      if (kinds[k] == 0) continue;
      metrics
          .counter("faults",
                   std::string("injected_") + kKindNames[k] + ":" + link)
          .merge_add(kinds[k]);
    }
  }
}

}  // namespace artmt::faults
