// Time-series recording and CSV emission for the benchmark harness: each
// figure bench prints the series the paper plots.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace artmt::stats {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

class Series {
 public:
  explicit Series(std::string name) : name_(std::move(name)) {}

  void add(double x, double y) { points_.push_back({x, y}); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  [[nodiscard]] double mean_y() const;
  [[nodiscard]] double last_y() const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

// Writes aligned series as CSV: header "x,<name1>,<name2>,...", one row per
// x of the first series (series must share x values; shorter ones padded
// with empty cells).
void write_csv(std::ostream& out, const std::vector<Series>& series,
               const std::string& x_label = "x");

// Downsamples a series for terminal-friendly output (every k-th point plus
// the last).
Series thin(const Series& series, std::size_t stride);

}  // namespace artmt::stats
