#include "common/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>
#include <utility>

namespace artmt {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};

// Guards both the sink pointer and the emission itself, so a line is
// formatted and delivered atomically even with concurrent emitters.
std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

LogSinkFn& sink_slot() {
  static LogSinkFn sink;
  return sink;
}

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_sink(LogSinkFn sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  sink_slot() = std::move(sink);
}

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::string line;
  line.reserve(message.size() + 9);
  line += '[';
  line += tag(level);
  line += "] ";
  line += message;
  if (const LogSinkFn& sink = sink_slot()) {
    sink(level, line);
    return;
  }
  std::cerr << line << "\n";
}

}  // namespace artmt
