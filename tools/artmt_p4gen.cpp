// artmt_p4gen -- emit the generated P4 runtime to stdout.
//
// Usage: artmt_p4gen [--stages N] [--ingress N] [--words N]
#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "p4gen/generator.hpp"

int main(int argc, char** argv) {
  artmt::p4gen::GeneratorOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stages") == 0 && i + 1 < argc) {
      options.pipeline.logical_stages =
          static_cast<artmt::u32>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--ingress") == 0 && i + 1 < argc) {
      options.pipeline.ingress_stages =
          static_cast<artmt::u32>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--words") == 0 && i + 1 < argc) {
      options.pipeline.words_per_stage =
          static_cast<artmt::u32>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: artmt_p4gen [--stages N] [--ingress N] "
                   "[--words N]\n");
      return 2;
    }
  }
  std::fputs(artmt::p4gen::generate_runtime(options).c_str(), stdout);
  return 0;
}
