// Sharded, multi-worker discrete-event engine: conservative parallel DES
// in the Chandy-Misra lookahead style. Attached Nodes are partitioned
// into shards (the switch pipeline pinned to shard 0 by convention;
// unpinned client/server fleets round-robined across the remaining
// shards), each shard owning its own event queue (a plain serial
// Simulator), clock, FramePool, and telemetry registry. All shards
// advance in lock-step *epochs*, but each shard gets its own adaptive
// window bound derived from per-shard-pair link latencies rather than a
// single global minimum: shard i may run events up to
//   bound_i = min over event-holding shards j of (next_j + reach[j][i])
// where reach[j][i] is the cheapest cross-shard path from j to i (the
// diagonal is the cheapest round trip, bounding a shard against replies
// to its own traffic). Within its window every worker runs its shard's
// events concurrently with zero locking on the hot path, because no
// frame can arrive below its bound. Same-shard frames never constrain
// the window; they are scheduled directly onto the sender's own queue at
// transmit time, so a shard unreachable over cross-shard links drains
// everything in one unbounded window. The one-shard engine skips the
// barrier/worker machinery entirely and runs inline on the calling
// thread. When a barrier finds every mailbox empty, window selection
// happens right there and the drain phase (plus its second barrier) is
// skipped -- halving rendezvous traffic on cross-shard-quiet epochs.
//
// Determinism (same seed => byte-identical telemetry snapshots and reply
// streams, for ANY shard count):
//  - Every delivery -- serial, same-shard direct, or mailbox-drained --
//    is scheduled with its canonical key (arrival, send time, sender
//    attach index, per-sender tx sequence), and the Simulator orders
//    same-timestamp events by exactly that chain (Simulator::
//    schedule_delivery). A message's dispatch position is therefore a
//    function of simulation state alone, never of which engine, epoch,
//    or barrier materialized the event. This is what makes the epoch
//    partition -- which DOES vary with the shard count now that W is
//    derived from cross-shard links -- unobservable to the simulation.
//  - Cross-shard messages are additionally sorted by that key at the
//    drain, so per-shard seq assignment is canonical too.
//  - Nodes interact only via frames (enforced by Node::assert_confined
//    tripwires), and telemetry merges are commutative sums.
//
// Memory model: a FrameBuf's refcount and its pool's freelist are plain
// (non-atomic), so slabs are confined to their shard. A frame crossing a
// shard boundary is deep-copied into the destination shard's pool at the
// drain (FramePool::clone); the source shard releases the original when
// it clears its outboxes at the start of its next epoch. Mailbox vectors
// are handed between workers only across the barrier, whose mutex gives
// the happens-before edge (the engine runs clean under TSan).
#pragma once

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "common/frame_buf.hpp"
#include "common/types.hpp"
#include "netsim/network.hpp"
#include "netsim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace artmt::netsim {

namespace detail {

// Identifies the shard a worker thread is driving; Network::simulator()
// and Network::pool() resolve through this so node/app code is identical
// under the serial and sharded engines.
struct ShardContext {
  ShardedSimulator* owner = nullptr;
  u32 index = 0;
  Simulator* sim = nullptr;
  FramePool* pool = nullptr;
};

extern thread_local const ShardContext* tls_shard;

}  // namespace detail

// Per-shard engine statistics (satellite: shard-level reporting). The
// first four are simulation-determined; barrier_wait_ns is wall clock
// and therefore excluded from determinism-compared snapshots.
struct ShardStats {
  u64 events_dispatched = 0;  // events run by this shard's Simulator
  u64 epochs = 0;             // lock-step epochs participated in
  u64 frames_in = 0;          // cross-shard frames drained into this shard
  u64 frames_out = 0;         // cross-shard frames sent by this shard
  u64 barrier_wait_ns = 0;    // wall-clock time blocked at epoch barriers
};

class ShardedSimulator {
 public:
  static constexpr SimTime kNoEvent = Simulator::kNoEvent;

  // `shards` >= 1. shards == 1 runs the same epoch loop inline on the
  // calling thread (the parity/reference configuration); shards > 1
  // spawn one worker thread per shard for each run()/run_until() call.
  explicit ShardedSimulator(u32 shards);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] u32 shards() const { return static_cast<u32>(shards_.size()); }

  // Pins `node` to `shard`. Call after Network::attach and before the
  // first run; unpinned nodes are round-robined over shards 1..N-1 at
  // that point (everything lands on shard 0 when N == 1). By convention
  // the switch is pinned to shard 0.
  void pin(Node& node, u32 shard);

  // Quiescent (main-thread, between runs) API mirroring Simulator.
  // schedule_at/after land on shard 0; use schedule_on to start work on
  // the shard that owns a specific node (closures touching a node MUST
  // run on its owning shard -- assert_confined trips otherwise). Worker
  // code never calls these; it schedules via network().simulator().
  void schedule_at(SimTime at, Simulator::Action action);
  void schedule_after(SimTime delay, Simulator::Action action);
  void schedule_on(const Node& node, SimTime at, Simulator::Action action);

  // Runs epochs until every shard's queue drains / the clock would pass
  // `until` (events exactly at `until` run, matching Simulator).
  void run();
  void run_until(SimTime until);

  [[nodiscard]] SimTime now() const { return global_now_; }
  // Lookahead window W (minimum cross-shard link latency); kNoEvent
  // before the first run or when no link crosses a shard boundary (one
  // unbounded epoch runs everything).
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }
  [[nodiscard]] u64 epochs() const { return epochs_; }

  [[nodiscard]] const ShardStats& shard_stats(u32 shard) const;
  // The registry shard `shard`'s components record into (the switch's
  // Config::metrics should point at its shard's registry).
  [[nodiscard]] telemetry::MetricsRegistry& shard_metrics(u32 shard);

  // Folds every per-shard registry into `out` (commutative sums /
  // histogram merges; deterministic for a given simulation). Quiescent
  // only. Does NOT include ShardStats -- see export_shard_stats.
  void merge_metrics_into(telemetry::MetricsRegistry& out) const;

  // Publishes per-shard ShardStats into `out` under component "sharding"
  // with fid = shard index. Kept separate from merge_metrics_into because
  // barrier_wait_ns is wall clock and per-shard splits vary with the
  // shard count -- including them would break cross-shard-count snapshot
  // equality that the determinism tests assert.
  void export_shard_stats(telemetry::MetricsRegistry& out) const;

 private:
  friend class Network;

  // One queued delivery; lives in its source shard's outbox until the
  // epoch barrier.
  struct MailMsg {
    Network* net = nullptr;
    Node* dest = nullptr;
    u32 port = 0;
    u32 src_shard = 0;  // sending shard (move vs clone at the drain)
    u32 src_index = 0;  // sender's attach index
    u64 tx_seq = 0;     // sender's transmit sequence
    SimTime send = 0;
    SimTime arrival = 0;
    Frame frame;
  };

  struct Shard {
    Simulator sim;
    FramePool pool;
    std::unique_ptr<telemetry::MetricsRegistry> metrics;
    // outbox[d]: messages this shard sent toward shard d this epoch.
    // Written only by this shard's worker; read by d's worker in the
    // drain phase; cleared by this worker at its next epoch start (so
    // slabs are released into the pool that owns them).
    std::vector<std::vector<MailMsg>> outbox;
    std::vector<MailMsg*> drain_scratch;  // reused sort buffer
    ShardStats stats;
  };

  class Barrier;

  // Called by Network::transmit: append to the current shard's outbox
  // (or, when quiescent, clone into the destination pool and hold in the
  // external mailbox until the next run).
  void enqueue(MailMsg msg);

  void bind_network(Network& net);
  [[nodiscard]] Simulator& shard_sim(u32 shard) { return shards_[shard]->sim; }
  [[nodiscard]] FramePool& shard_pool(u32 shard) { return shards_[shard]->pool; }

  // Pre-run (quiescent): assign unpinned nodes, recompute the lookahead,
  // size outboxes, inject the external mailbox.
  void prepare();
  void assign_unowned_nodes();
  void compute_lookahead();
  void drain_external();
  void run_epochs(SimTime limit);
  void run_single_shard(SimTime limit);
  void worker_loop(u32 shard, SimTime limit);
  void drain_inboxes(u32 shard);
  void store_error(std::exception_ptr err);
  // Opens the epoch window starting at `start` (records its width).
  void open_window(SimTime start);
  // Barrier serial section: picks the next window from the globally
  // earliest pending event, or raises done_.
  void select_next_window(SimTime limit);
  // Turns a drained message into a delivery event on `sim`.
  static void schedule_delivery(Simulator& sim, MailMsg& msg, Frame frame,
                                u32 shard);
  // Deterministic drain order: simulation state only, never shard packing.
  static bool mail_before(const MailMsg* a, const MailMsg* b);
  static bool mail_before_val(const MailMsg& a, const MailMsg& b);

  std::vector<std::unique_ptr<Shard>> shards_;
  Network* net_ = nullptr;
  std::vector<MailMsg> external_mail_;  // quiescent injections
  u32 next_rr_ = 0;                     // round-robin assignment cursor
  SimTime global_now_ = 0;
  SimTime lookahead_ = kNoEvent;
  u64 epochs_ = 0;
  // Width (virtual ns) of every bounded epoch window opened, plus a count
  // of unbounded (no cross-shard constraint) epochs. Exported via
  // export_shard_stats only: like barrier_wait_ns, the epoch partition
  // varies with the shard count, so merged determinism snapshots must not
  // include it.
  telemetry::Histogram epoch_width_;
  u64 unbounded_epochs_ = 0;

  // reach_[j*n + i]: minimum virtual time a frame originating on shard j
  // needs to reach shard i over the cross-shard link graph (same-shard
  // relays count as free, keeping it a lower bound); kNoEvent when no
  // path exists. The diagonal holds the shortest round trip through
  // another shard -- the bound a shard needs against replies to its own
  // traffic. Rebuilt by compute_lookahead() each prepare().
  std::vector<SimTime> reach_;

  // Epoch state: written in the barrier's serial section, read by
  // workers after the barrier (mutex-ordered). shard_bound_[i] is shard
  // i's exclusive window end this epoch: min over event-holding shards j
  // of next_j + reach_[j][i] (kNoEvent = unbounded, drain everything).
  std::vector<SimTime> shard_bound_;
  bool done_ = false;
  // Raised by the first barrier's serial section when every outbox is
  // empty: the drain phase (and its second barrier) is skipped, the next
  // window having been selected in the same rendezvous.
  bool skip_drain_ = false;
  std::unique_ptr<Barrier> barrier_;

  // A worker that throws records the error, raises abort_, and keeps
  // arriving at barriers so nobody deadlocks; the serial section turns
  // abort_ into done_ and run() rethrows after the join.
  std::atomic<bool> abort_{false};
  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

}  // namespace artmt::netsim
