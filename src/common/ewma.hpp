// Exponentially weighted moving average, as used by the paper to smooth
// per-epoch allocation times (Fig. 5b, alpha = 0.1) and reallocation
// fractions (Fig. 7c, alpha = 0.6).
#pragma once

#include "common/error.hpp"

namespace artmt {

class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {
    if (alpha <= 0.0 || alpha > 1.0) {
      throw UsageError("Ewma: alpha must be in (0, 1]");
    }
  }

  // Feeds one sample; returns the updated average.
  double update(double sample) {
    if (!seeded_) {
      value_ = sample;
      seeded_ = true;
    } else {
      value_ = alpha_ * sample + (1.0 - alpha_) * value_;
    }
    return value_;
  }

  [[nodiscard]] bool seeded() const { return seeded_; }
  [[nodiscard]] double value() const {
    if (!seeded_) throw UsageError("Ewma::value: no samples yet");
    return value_;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

}  // namespace artmt
