#include "fabric/global_controller.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "proto/wire.hpp"
#include "telemetry/metrics.hpp"

namespace artmt::fabric {

namespace {

// Private admission-sequence range: far above any client's negotiation
// sequence numbers, so a forwarded response is unambiguous.
constexpr u32 kFseqBase = 0x40000000;

// Scoreboard-level feasibility heuristic (ranking only; the switch's
// allocator has the final word).
bool board_feasible(const Scoreboard& board,
                    const alloc::AllocationRequest& request) {
  if (board.stages == 0) return false;  // never seen, never seeded
  u32 max_demand = 0;
  u32 total_demand = 0;
  for (const auto& access : request.accesses) {
    max_demand = std::max(max_demand, access.demand_blocks);
    total_demand += access.demand_blocks;
  }
  if (board.free_blocks < total_demand) return false;
  if (!request.elastic && board.largest_free_run < max_demand) return false;
  return true;
}

}  // namespace

struct FabricMetrics {
  telemetry::Counter* admissions;
  telemetry::Counter* placements;
  telemetry::Counter* denials_retried;
  telemetry::Counter* denials_final;
  telemetry::Counter* evacuations;
  telemetry::Counter* replaced;
  telemetry::Counter* state_loss;
  telemetry::Counter* parked_retries;
  telemetry::Counter* probes;
  telemetry::Counter* acks;
  telemetry::Counter* deaths;
  telemetry::Counter* revivals;
  telemetry::Counter* reconcile_deallocs;
  telemetry::Counter* forwarded;
  telemetry::Counter* resends;
  telemetry::Counter* stale_grants;
  telemetry::Counter* dropped;
  telemetry::Histogram* downtime_ns;
  telemetry::CounterFamily placements_on;    // fid = switch index
  telemetry::CounterFamily evacuations_from; // fid = switch index

  explicit FabricMetrics(telemetry::MetricsRegistry& reg)
      : admissions(&reg.counter("fabric", "admissions")),
        placements(&reg.counter("fabric", "placements")),
        denials_retried(&reg.counter("fabric", "denials_retried")),
        denials_final(&reg.counter("fabric", "denials_final")),
        evacuations(&reg.counter("fabric", "evacuations")),
        replaced(&reg.counter("fabric", "replaced")),
        state_loss(&reg.counter("fabric", "state_loss_services")),
        parked_retries(&reg.counter("fabric", "parked_retries")),
        probes(&reg.counter("fabric", "probes")),
        acks(&reg.counter("fabric", "acks")),
        deaths(&reg.counter("fabric", "switch_deaths")),
        revivals(&reg.counter("fabric", "revivals")),
        reconcile_deallocs(&reg.counter("fabric", "reconcile_deallocs")),
        forwarded(&reg.counter("fabric", "forwarded")),
        resends(&reg.counter("fabric", "grant_resends")),
        stale_grants(&reg.counter("fabric", "stale_grants")),
        dropped(&reg.counter("fabric", "dropped")),
        downtime_ns(&reg.histogram("fabric", "downtime_ns")),
        placements_on(reg, "fabric", "placements_on"),
        evacuations_from(reg, "fabric", "evacuations_from") {}
};

GlobalController::GlobalController(std::string name, const Config& config)
    : netsim::Node(std::move(name)),
      mac_(config.mac),
      config_(config),
      next_fseq_(kFseqBase) {
  if (mac_ == 0) throw UsageError("GlobalController: zero MAC");
  if (config_.epoch == 0) throw UsageError("GlobalController: zero epoch");
  if (config_.miss_threshold == 0)
    throw UsageError("GlobalController: zero miss_threshold");
  telemetry::MetricsRegistry* reg = config.metrics;
  if (reg == nullptr) {
    own_registry_ = std::make_unique<telemetry::MetricsRegistry>();
    reg = own_registry_.get();
  }
  metrics_ = std::make_unique<FabricMetrics>(*reg);
}

GlobalController::~GlobalController() = default;

void GlobalController::add_switch(packet::MacAddr mac, std::string name,
                                  u32 port) {
  if (mac == 0 || mac == mac_)
    throw UsageError("add_switch: bad switch MAC");
  if (find_switch(mac) != nullptr)
    throw UsageError("add_switch: duplicate switch MAC");
  SwitchState sw;
  sw.mac = mac;
  sw.name = std::move(name);
  sw.port = port;
  switches_.push_back(std::move(sw));
}

void GlobalController::seed_scoreboard(packet::MacAddr sw, Scoreboard board) {
  SwitchState* state = find_switch(sw);
  if (state == nullptr) throw UsageError("seed_scoreboard: unknown switch");
  state->board = std::move(board);
}

void GlobalController::start(SimTime until) {
  if (switches_.empty()) throw UsageError("GlobalController: no switches");
  if (started_) throw UsageError("GlobalController: already started");
  started_ = true;
  until_ = until;
  epoch_tick();
}

GlobalController::SwitchState* GlobalController::find_switch(
    packet::MacAddr mac) {
  for (auto& sw : switches_)
    if (sw.mac == mac) return &sw;
  return nullptr;
}

const GlobalController::SwitchState* GlobalController::find_switch(
    packet::MacAddr mac) const {
  for (const auto& sw : switches_)
    if (sw.mac == mac) return &sw;
  return nullptr;
}

bool GlobalController::alive(packet::MacAddr sw) const {
  const SwitchState* state = find_switch(sw);
  return state != nullptr && state->alive;
}

const Scoreboard* GlobalController::scoreboard_of(packet::MacAddr sw) const {
  const SwitchState* state = find_switch(sw);
  return state == nullptr ? nullptr : &state->board;
}

packet::MacAddr GlobalController::owner_of(Fid fid) const {
  const auto it = placements_.find(fid);
  return it == placements_.end() ? 0 : it->second.sw;
}

FabricReport GlobalController::report() const {
  FabricReport rep;
  rep.placements = placements_total_;
  rep.evacuations = evacuated_total_;
  rep.replaced = replaced_total_;
  rep.unplaced = unplaced_.size();
  rep.state_loss_services = state_loss_total_;
  rep.switch_deaths = deaths_total_;
  rep.revivals = revivals_total_;
  rep.downtimes = downtimes_;
  return rep;
}

GlobalController::SwitchState* GlobalController::pick_switch(
    const alloc::AllocationRequest& request,
    const std::vector<packet::MacAddr>& tried) {
  // Owned-placement counts skew the ranking between scoreboard refreshes
  // so a same-epoch admission burst still spreads across equal switches.
  std::map<packet::MacAddr, u32> owned;
  for (const auto& [fid, placement] : placements_) ++owned[placement.sw];

  SwitchState* best = nullptr;
  bool best_feasible = false;
  u32 best_owned = 0;
  u32 best_free = 0;
  u64 best_hot = 0;
  for (auto& sw : switches_) {
    if (!sw.alive) continue;
    if (std::find(tried.begin(), tried.end(), sw.mac) != tried.end())
      continue;
    const bool feasible = board_feasible(sw.board, request);
    const u32 owned_here = owned.contains(sw.mac) ? owned[sw.mac] : 0;
    const u32 free = sw.board.free_blocks;
    const u64 hot = sw.board.hotness_total;
    const bool wins =
        best == nullptr ||
        std::tuple(!feasible, owned_here, ~free, hot) <
            std::tuple(!best_feasible, best_owned, ~best_free, best_hot);
    if (wins) {
      best = &sw;
      best_feasible = feasible;
      best_owned = owned_here;
      best_free = free;
      best_hot = hot;
    }
  }
  return best;
}

void GlobalController::forward_admission(u32 fseq) {
  auto it = pending_.find(fseq);
  if (it == pending_.end()) return;
  PendingAdmit& admit = it->second;
  SwitchState* target = pick_switch(admit.request, admit.tried);
  if (target == nullptr) {
    if (admit.evacuation) {
      park(std::move(admit));
    } else {
      metrics_->denials_final->inc();
      packet::ActivePacket denial = proto::encode_denial(admit.client_seq);
      send_control(admit.client, std::move(denial));
    }
    pending_.erase(it);
    return;
  }
  admit.tried.push_back(target->mac);
  admit.issued_epoch = epoch_count_;
  packet::ActivePacket pkt = proto::encode_request(admit.request, fseq);
  send_control(target->mac, std::move(pkt));
}

void GlobalController::handle_admission(packet::ActivePacket pkt) {
  alloc::AllocationRequest request;
  try {
    request = proto::decode_request(pkt);
  } catch (const ParseError&) {
    metrics_->dropped->inc();
    return;
  }
  metrics_->admissions->inc();
  const u32 fseq = next_fseq_++;
  PendingAdmit admit;
  admit.client = pkt.ethernet.src;
  admit.client_seq = pkt.initial.seq;
  admit.request = std::move(request);
  pending_.emplace(fseq, std::move(admit));
  forward_admission(fseq);
}

void GlobalController::handle_response(packet::ActivePacket pkt) {
  const u32 fseq = pkt.initial.seq;
  auto it = pending_.find(fseq);
  if (it == pending_.end()) {
    // A target we had given up on answered after all: release the grant
    // so its allocation does not leak.
    if ((pkt.initial.flags & packet::kFlagAllocFailed) == 0 &&
        pkt.initial.fid != 0) {
      metrics_->stale_grants->inc();
      send_control(pkt.ethernet.src,
                   packet::ActivePacket::make_control(
                       pkt.initial.fid, packet::ActiveType::kDealloc));
    }
    return;
  }
  PendingAdmit& admit = it->second;
  if ((pkt.initial.flags & packet::kFlagAllocFailed) != 0) {
    metrics_->denials_retried->inc();
    forward_admission(fseq);  // falls through to the next candidate
    return;
  }

  const Fid fid = pkt.initial.fid;
  Placement placement;
  // Trust the frame's source over our own bookkeeping: a re-issued
  // evacuation can be answered by the *previous* target if it was merely
  // slow rather than dead.
  placement.sw = pkt.ethernet.src != 0
                     ? pkt.ethernet.src
                     : (admit.tried.empty() ? 0 : admit.tried.back());
  placement.client = admit.client;
  placement.client_seq = admit.client_seq;
  placement.request = admit.request;
  placements_[fid] = std::move(placement);
  ++placements_total_;
  metrics_->placements->inc();
  for (u32 i = 0; i < switches_.size(); ++i) {
    if (switches_[i].mac == placements_[fid].sw) {
      metrics_->placements_on.at(static_cast<i32>(i)).inc();
      break;
    }
  }

  pkt.initial.seq = admit.client_seq;
  if (admit.evacuation) {
    const SimTime downtime =
        network().simulator().now() - admit.death_time;
    downtimes_.push_back(downtime);
    metrics_->downtime_ns->record(static_cast<u64>(downtime));
    ++replaced_total_;
    metrics_->replaced->inc();
    if (config_.resend_epochs > 0) {
      Resend resend;
      resend.pkt = pkt;
      resend.pkt.ethernet.dst = admit.client;
      resend.epochs_left = config_.resend_epochs;
      resends_.push_back(std::move(resend));
    }
  }
  forward(admit.client, std::move(pkt));  // src stays the owning switch
  pending_.erase(it);
}

void GlobalController::handle_health_ack(const packet::ActivePacket& pkt) {
  SwitchState* sw = find_switch(pkt.ethernet.src);
  if (sw == nullptr) return;
  metrics_->acks->inc();
  sw->acked_this_epoch = true;
  sw->seen = true;
  sw->misses = 0;
  sw->last_ack = network().simulator().now();
  if (!pkt.payload.empty()) {
    try {
      sw->board = Scoreboard::decode(pkt.payload);
    } catch (const ParseError&) {
      // keep the previous board
    }
  }
  if (!sw->alive) {
    sw->alive = true;
    ++revivals_total_;
    metrics_->revivals->inc();
    reconcile(*sw);
  }
}

void GlobalController::epoch_tick() {
  const SimTime now = network().simulator().now();
  if (now > until_) return;
  ++epoch_count_;

  // Detection: a switch that answered nothing since the previous round of
  // probes accrues a miss. Skipped on the first tick (no probes are out).
  if (epoch_count_ > 1) {
    for (auto& sw : switches_) {
      if (!sw.acked_this_epoch && sw.alive &&
          ++sw.misses >= config_.miss_threshold) {
        declare_dead(sw);
      }
      sw.acked_this_epoch = false;
    }
  }

  // Evacuation admissions whose target also died never get a response;
  // re-issue them toward the next candidate after the timeout.
  std::vector<u32> stale;
  for (const auto& [fseq, admit] : pending_) {
    if (admit.evacuation &&
        epoch_count_ - admit.issued_epoch >=
            static_cast<u64>(config_.evac_timeout_epochs)) {
      stale.push_back(fseq);
    }
  }
  for (const u32 fseq : stale) forward_admission(fseq);

  // Parked services retry every epoch (capacity may have revived).
  const std::size_t parked = unplaced_.size();
  for (std::size_t i = 0; i < parked; ++i) {
    Parked entry = std::move(unplaced_.front());
    unplaced_.pop_front();
    metrics_->parked_retries->inc();
    replay(entry.client, entry.client_seq, std::move(entry.request),
           entry.death_time, /*counted_loss=*/true);
  }

  // Re-send recent re-placement grants (the client may have been mid-
  // failover when the first copy went out; duplicates are idempotent).
  for (auto& resend : resends_) {
    metrics_->resends->inc();
    network().transmit(*this, port_,
                       network().pool().copy(resend.pkt.serialize()));
    --resend.epochs_left;
  }
  std::erase_if(resends_, [](const Resend& r) { return r.epochs_left == 0; });

  // Probe everyone, dead switches included (revival detection).
  for (const auto& sw : switches_) {
    packet::ActivePacket probe = packet::ActivePacket::make_control(
        0, packet::ActiveType::kHealthProbe);
    probe.initial.seq = ++probe_seq_;
    metrics_->probes->inc();
    send_control(sw.mac, std::move(probe));
  }

  if (now + config_.epoch <= until_) {
    network().simulator().schedule_after(config_.epoch,
                                         [this] { epoch_tick(); });
  }
}

void GlobalController::declare_dead(SwitchState& sw) {
  sw.alive = false;
  ++deaths_total_;
  metrics_->deaths->inc();
  log(LogLevel::kInfo, name(), ": switch ", sw.name, " declared dead");
  evacuate(sw);
}

void GlobalController::evacuate(SwitchState& dead) {
  const SimTime death_time = network().simulator().now();
  std::vector<Fid> victims;
  for (const auto& [fid, placement] : placements_) {
    if (placement.sw == dead.mac) victims.push_back(fid);
  }
  for (u32 i = 0; i < switches_.size(); ++i) {
    if (switches_[i].mac == dead.mac) {
      metrics_->evacuations_from.at(static_cast<i32>(i))
          .inc(victims.size());
      break;
    }
  }
  for (const Fid fid : victims) {  // ascending: map order
    Placement placement = std::move(placements_[fid]);
    placements_.erase(fid);
    ++evacuated_total_;
    metrics_->evacuations->inc();
    replay(placement.client, placement.client_seq,
           std::move(placement.request), death_time);
  }
}

void GlobalController::replay(packet::MacAddr client, u32 client_seq,
                              alloc::AllocationRequest request,
                              SimTime death_time, bool counted_loss) {
  const u32 fseq = next_fseq_++;
  PendingAdmit admit;
  admit.client = client;
  admit.client_seq = client_seq;
  admit.request = std::move(request);
  admit.evacuation = true;
  admit.death_time = death_time;
  admit.counted_loss = counted_loss;
  admit.issued_epoch = epoch_count_;
  pending_.emplace(fseq, std::move(admit));
  forward_admission(fseq);
}

void GlobalController::reconcile(SwitchState& sw) {
  // The revived switch's allocator still carries every pre-death FID; the
  // ones the fabric re-placed elsewhere (or parked) are stale now.
  for (const Fid fid : sw.board.residents) {
    const auto it = placements_.find(fid);
    if (it != placements_.end() && it->second.sw == sw.mac) continue;
    metrics_->reconcile_deallocs->inc();
    send_control(sw.mac, packet::ActivePacket::make_control(
                             fid, packet::ActiveType::kDealloc));
  }
}

void GlobalController::park(PendingAdmit&& admit) {
  // State loss is counted once per service: the first park counts it,
  // and the flag rides every retry of the same evacuation afterwards.
  if (!admit.counted_loss) {
    ++state_loss_total_;
    metrics_->state_loss->inc();
  }
  Parked parked;
  parked.client = admit.client;
  parked.client_seq = admit.client_seq;
  parked.request = std::move(admit.request);
  parked.death_time = admit.death_time;
  unplaced_.push_back(std::move(parked));
  log(LogLevel::kInfo, name(), ": service parked (no feasible sibling)");
}

void GlobalController::send_control(packet::MacAddr dst,
                                    packet::ActivePacket pkt) {
  pkt.ethernet.src = mac_;
  pkt.ethernet.dst = dst;
  network().transmit(*this, port_, network().pool().copy(pkt.serialize()));
}

void GlobalController::forward(packet::MacAddr dst, packet::ActivePacket pkt) {
  if (pkt.ethernet.src == 0) pkt.ethernet.src = mac_;
  pkt.ethernet.dst = dst;
  metrics_->forwarded->inc();
  network().transmit(*this, port_, network().pool().copy(pkt.serialize()));
}

void GlobalController::on_frame(netsim::Frame frame, u32 port) {
  (void)port;
  packet::ActivePacket pkt;
  try {
    pkt = packet::ActivePacket::parse(frame);
  } catch (const ParseError&) {
    metrics_->dropped->inc();
    return;
  }

  switch (pkt.initial.type) {
    case packet::ActiveType::kHealthAck:
      if (pkt.initial.fid == 0) handle_health_ack(pkt);
      return;
    case packet::ActiveType::kAllocRequest:
      handle_admission(std::move(pkt));
      return;
    case packet::ActiveType::kAllocResponse: {
      if (pending_.contains(pkt.initial.seq) ||
          pkt.initial.seq >= kFseqBase) {
        handle_response(std::move(pkt));
        return;
      }
      // A seq-0 disturbed-layout response from an owning switch: relay it
      // to the service's client (matched there by FID).
      const auto it = placements_.find(pkt.initial.fid);
      if (it != placements_.end()) {
        forward(it->second.client, std::move(pkt));
      } else {
        metrics_->dropped->inc();
      }
      return;
    }
    case packet::ActiveType::kReallocNotice:
    case packet::ActiveType::kReactivated: {
      const auto it = placements_.find(pkt.initial.fid);
      if (it != placements_.end()) {
        forward(it->second.client, std::move(pkt));
      } else {
        metrics_->dropped->inc();
      }
      return;
    }
    case packet::ActiveType::kDealloc: {
      const auto it = placements_.find(pkt.initial.fid);
      if (it != placements_.end()) {
        // Keep the client's source MAC: the switch acks straight back.
        const packet::MacAddr sw = it->second.sw;
        placements_.erase(it);
        forward(sw, std::move(pkt));
      } else {
        // Parked or already-gone service: confirm the release ourselves.
        packet::ActivePacket ack = packet::ActivePacket::make_control(
            pkt.initial.fid, packet::ActiveType::kDeallocAck);
        send_control(pkt.ethernet.src, std::move(ack));
      }
      return;
    }
    case packet::ActiveType::kExtractComplete: {
      const auto it = placements_.find(pkt.initial.fid);
      if (it != placements_.end()) {
        forward(it->second.sw, std::move(pkt));
      } else {
        metrics_->dropped->inc();
      }
      return;
    }
    case packet::ActiveType::kDeallocAck:
      // Acks for our own reconcile/stale-grant deallocations; nothing to
      // update (the placement was never recorded or is already gone).
      return;
    case packet::ActiveType::kProgram: {
      // Safety net -- steered data-plane traffic normally bypasses us.
      const auto it = placements_.find(pkt.initial.fid);
      if (it != placements_.end()) {
        forward(it->second.sw, std::move(pkt));
      } else {
        metrics_->dropped->inc();
      }
      return;
    }
    default:
      metrics_->dropped->inc();
      return;
  }
}

}  // namespace artmt::fabric
