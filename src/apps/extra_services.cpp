#include "apps/extra_services.hpp"

#include "active/assembler.hpp"

namespace artmt::apps {

using client::ServiceSpec;

active::Program sequencer_program() {
  // Every capsule atomically takes the next sequence number of the group
  // slot named in args[0] and carries it onward in args[1].
  return active::assemble(R"(
      MAR_LOAD $0      // group slot
      MEM_INCREMENT    // seq = ++slot
      MBR_STORE $1     // stamp into the packet
      RETURN
  )");
}

ServiceSpec sequencer_spec(u32 groups_blocks) {
  ServiceSpec spec;
  spec.program = sequencer_program();
  spec.demands = {groups_blocks};
  spec.elastic = false;  // the group count is fixed by the application
  return spec;
}

active::Program bloom_insert_program() {
  // Sets the key's bucket in both filter arrays (args[2] carries the
  // constant 1). Forwards when done; membership is confirmed by testing.
  return active::assemble(R"(
      MBR_LOAD $0
      MBR2_LOAD $1
      COPY_HASHDATA_MBR $0
      COPY_HASHDATA_MBR2 $1
      HASH $0              // row 1 index
      ADDR_MASK
      ADDR_OFFSET
      MBR_LOAD $2          // the constant 1
      MEM_WRITE            // row 1
      HASH $1              // row 2 index
      ADDR_MASK
      ADDR_OFFSET
      MEM_WRITE            // row 2 (MBR still 1)
      RETURN
  )");
}

active::Program bloom_test_program() {
  // Reads both buckets and ANDs them (min over {0,1}); a member RTSes
  // back with args[3] = 1, a non-member forwards to its destination.
  // The reply RTS sits past the ingress pipeline, so the service declares
  // it best-effort (one extra recirculation on hits).
  return active::assemble(R"(
      MBR_LOAD $0
      MBR2_LOAD $1
      COPY_HASHDATA_MBR $0
      COPY_HASHDATA_MBR2 $1
      HASH $0
      ADDR_MASK
      ADDR_OFFSET
      MEM_READ             // row 1 bit
      COPY_MBR2_MBR        // stash it
      HASH $1
      ADDR_MASK
      ADDR_OFFSET
      MEM_MINREAD          // MBR = row1 AND row2
      MBR_STORE $3         // membership verdict into the packet
      CRTS                 // member -> reply to sender
      RETURN               // non-member -> forward
  )");
}

ServiceSpec bloom_spec(u32 min_blocks) {
  ServiceSpec spec;
  spec.program = bloom_test_program();
  spec.demands = {min_blocks, min_blocks};
  spec.elastic = true;  // more memory -> lower false-positive rate
  spec.ignore_rts_constraint = true;
  return spec;
}

active::Program flow_count_program() {
  // Per-flow packet counting keyed by the parser-derived flow identity.
  return active::assemble(R"(
      COPY_HASHDATA_5TUPLE
      HASH $0
      ADDR_MASK
      ADDR_OFFSET
      MEM_INCREMENT
      RETURN
  )");
}

active::Program flow_probe_program() {
  // Rides the same flow (same 5-tuple -> same counter) and returns the
  // current count to the sender.
  return active::assemble(R"(
      COPY_HASHDATA_5TUPLE
      HASH $0
      ADDR_MASK
      ADDR_OFFSET
      MEM_READ
      MBR_STORE $1
      RTS
      RETURN
  )");
}

ServiceSpec flow_counter_spec(u32 min_blocks) {
  ServiceSpec spec;
  spec.program = flow_count_program();
  spec.demands = {min_blocks};
  spec.elastic = true;  // more memory -> fewer hash collisions
  return spec;
}

}  // namespace artmt::apps
