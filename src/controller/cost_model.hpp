// Control-plane cost model. The paper's provisioning time (Fig. 8a) is
// dominated by switch table updates (BFRT operations, milliseconds each),
// with snapshotting a smaller, bounded component; total provisioning levels
// off at slightly over one second. Defaults are calibrated to reproduce
// that composition and are documented in EXPERIMENTS.md.
#pragma once

#include "common/types.hpp"

namespace artmt::controller {

struct CostModel {
  // One match-table entry install or remove via the driver.
  SimTime table_entry_update = 15 * kMillisecond;
  // --- batched + coalesced table updates ---
  // With batching on, all entry operations belonging to one application
  // (the contiguous per-stage installs of a new or rebalanced app)
  // coalesce into a single ranged driver call: one batch_setup round-trip
  // plus a small marginal cost per entry, instead of a full driver
  // operation each. Off by default so the Fig. 8a composition (and every
  // calibrated provisioning figure) is reproduced bit-for-bit; turning it
  // on makes provisioning sub-linear in the number of disturbed apps.
  bool batched_updates = false;
  SimTime batch_setup = 20 * kMillisecond;         // per-batch driver call
  SimTime batched_entry_update = 1 * kMillisecond;  // marginal entry cost

  // Total driver time for `entries` entry operations spread over
  // `batches` coalesced application updates.
  [[nodiscard]] SimTime table_update_time(u64 entries, u64 batches) const {
    if (!batched_updates) {
      return static_cast<SimTime>(entries) * table_entry_update;
    }
    if (entries == 0) return 0;
    return static_cast<SimTime>(batches) * batch_setup +
           static_cast<SimTime>(entries) * batched_entry_update;
  }
  // Snapshotting one block of register memory to the CPU.
  SimTime snapshot_per_block = 50 * kMicrosecond;
  // Zeroing one block of register memory at (re)install.
  SimTime clear_per_block = 20 * kMicrosecond;
  // Digest delivery + client poll interval (Section 5: ~100 us polling).
  SimTime digest_latency = 100 * kMicrosecond;
  // Reallocation handshake timeout for unresponsive applications.
  SimTime extraction_timeout = 1 * kSecond;

  // Reference point reported in Section 6.2: compiling a monolithic P4
  // program with 22 cache instances takes 28.79 s on the paper's hardware.
  // Used by the provisioning-time comparison bench.
  SimTime p4_compile_baseline = static_cast<SimTime>(28.79 * kSecond);
};

}  // namespace artmt::controller
