#include "telemetry/span.hpp"

#include <algorithm>
#include <ostream>
#include <tuple>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/trace.hpp"

namespace artmt::telemetry {

namespace {

constexpr const char* kPhaseNames[] = {
    "send", "drop", "parse", "exec", "recirc",
    "recv", "retry", "give_up", "wipe",
};
constexpr u16 kPhaseCount = sizeof(kPhaseNames) / sizeof(kPhaseNames[0]);

void refresh_spans_on() {
  detail::g_spans_on.store(
      detail::g_span_sink.load(std::memory_order_relaxed) != nullptr ||
          detail::g_flight.load(std::memory_order_relaxed) != nullptr,
      std::memory_order_relaxed);
}

}  // namespace

namespace detail {
std::atomic<bool> g_spans_on{false};
std::atomic<SpanSink*> g_span_sink{nullptr};
std::atomic<FlightRecorder*> g_flight{nullptr};
thread_local u32 tls_span_lane = 0;
thread_local u64 tls_current_span = 0;
thread_local u64 tls_last_tx_span = 0;
}  // namespace detail

const char* span_phase_name(SpanPhase phase) {
  const auto i = static_cast<u16>(phase);
  return i < kPhaseCount ? kPhaseNames[i] : "unknown";
}

bool span_phase_from_name(std::string_view name, SpanPhase* out) {
  for (u16 i = 0; i < kPhaseCount; ++i) {
    if (name == kPhaseNames[i]) {
      *out = static_cast<SpanPhase>(i);
      return true;
    }
  }
  return false;
}

bool span_event_before(const SpanEvent& a, const SpanEvent& b) {
  return std::tie(a.ts, a.span, a.parent, a.fid, a.phase, a.node, a.a, a.b) <
         std::tie(b.ts, b.span, b.parent, b.fid, b.phase, b.node, b.a, b.b);
}

SpanSink::SpanSink(u32 lanes) : lanes_(lanes == 0 ? 1 : lanes) {}

void SpanSink::reserve(std::size_t events_per_lane) {
  for (Lane& lane : lanes_) lane.events.reserve(events_per_lane);
}

void SpanSink::clear() {
  for (Lane& lane : lanes_) lane.events.clear();
}

u64 SpanSink::recorded() const {
  u64 total = 0;
  for (const Lane& lane : lanes_) total += lane.events.size();
  return total;
}

std::vector<SpanEvent> SpanSink::sorted_events() const {
  std::vector<SpanEvent> merged;
  merged.reserve(static_cast<std::size_t>(recorded()));
  for (const Lane& lane : lanes_) {
    merged.insert(merged.end(), lane.events.begin(), lane.events.end());
  }
  std::sort(merged.begin(), merged.end(), span_event_before);
  return merged;
}

void SpanSink::dump(std::ostream& out) const {
  write_span_events(out, sorted_events());
}

void write_span_events(std::ostream& out,
                       const std::vector<SpanEvent>& events) {
  // Each line rides the TraceSink envelope, so span dumps and live traces
  // share one schema (and one schema version).
  TraceSink sink(out);
  SimTime ts = 0;
  sink.set_clock([&ts] { return ts; });
  for (const SpanEvent& e : events) {
    ts = e.ts;
    sink.emit("span", span_phase_name(e.phase), e.fid,
              {{"span", e.span},
               {"parent", e.parent},
               {"node", e.node},
               {"a", e.a},
               {"b", e.b}});
  }
}

void set_span_sink(SpanSink* sink) {
  detail::g_span_sink.store(sink, std::memory_order_release);
  refresh_spans_on();
}

void set_flight_recorder(FlightRecorder* recorder) {
  detail::g_flight.store(recorder, std::memory_order_release);
  refresh_spans_on();
}

}  // namespace artmt::telemetry
