#!/usr/bin/env bash
# Rebuilds everything, runs the test suite, and regenerates every figure
# of the paper's evaluation into results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for bench in build/bench/bench_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "== $name =="
  "$bench" | tee "results/$name.txt"
done
echo "All figure outputs written to results/."
