// Decayed per-(FID, stage) access scores driving the background migration
// engine (ROADMAP item 2). Where telemetry::HotnessTable ranks FIDs by
// total traffic, this table keeps the per-stage resolution the planner
// needs (a re-slide candidate is judged by the activity in the stage being
// compacted) plus hysteretic coldness detection: a FID is cold only after
// `cold_ticks` consecutive epochs below `cold_threshold`, so one quiet
// interval does not demote a bursty service.
//
// Feeding follows the heatmap idiom: observe() absorbs the per-cell
// read/write delta since the previous observation (collisions are faults,
// not demand, and stay out of the score), decay() ages every cell by
// `decay_shift` (shift 1 = one-tick half-life under silence). tick() is
// one migration epoch: observe, then age, then advance cold streaks.
// Deterministic: plain maps, no clocks, no randomness.
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace artmt::telemetry {
class StageHeatmap;
}  // namespace artmt::telemetry

namespace artmt::alloc {

struct HotnessConfig {
  u32 decay_shift = 1;     // per-tick aging: score >>= decay_shift
  u64 cold_threshold = 8;  // total score at/below this marks a cold epoch
  u32 cold_ticks = 3;      // consecutive cold epochs before is_cold()
};

class HotnessTable {
 public:
  explicit HotnessTable(HotnessConfig config = {});

  // Absorbs each cell's read+write delta since the previous observation.
  void observe(const telemetry::StageHeatmap& heatmap);
  // Ages every score, then advances or resets each FID's cold streak.
  void decay();
  // One migration epoch: new traffic in, then age.
  void tick(const telemetry::StageHeatmap& heatmap) {
    observe(heatmap);
    decay();
  }
  // The FID departed; drop its row (a reused FID starts fresh).
  void forget(i32 fid);

  [[nodiscard]] u64 score(i32 fid) const;  // sum across stages
  [[nodiscard]] u64 stage_score(i32 fid, u32 stage) const;
  [[nodiscard]] u32 cold_streak(i32 fid) const;
  // Only FIDs with observed traffic are ever cold: a row is created by
  // activity, so a service that never sent a packet is not demoted on the
  // strength of an empty table.
  [[nodiscard]] bool is_cold(i32 fid) const;
  [[nodiscard]] bool tracked(i32 fid) const { return rows_.contains(fid); }
  [[nodiscard]] std::size_t tracked_count() const { return rows_.size(); }
  // (fid, total score) hottest first; equal scores order by ascending fid.
  [[nodiscard]] std::vector<std::pair<i32, u64>> ranked() const;
  // Aggregate per-stage pressure across every tracked FID: the
  // hotness-directed placement bias (a re-slide target prefers calmer
  // stages) and the fabric scoreboard's load signal.
  [[nodiscard]] std::vector<u64> stage_totals(u32 stages) const;
  // Sum of every tracked FID's score (whole-switch pressure).
  [[nodiscard]] u64 total_score() const;
  [[nodiscard]] const HotnessConfig& config() const { return config_; }

 private:
  struct Row {
    std::vector<u64> score;        // per-stage decayed read+write score
    std::vector<u64> last_reads;   // cumulative heatmap counts at the
    std::vector<u64> last_writes;  // previous observation (delta base)
    u64 total = 0;                 // sum of score[]
    u32 cold_streak = 0;
  };

  Row& row(i32 fid, u32 stages);

  HotnessConfig config_;
  std::map<i32, Row> rows_;
};

}  // namespace artmt::alloc
