// Tests for the ActiveRMT switch runtime: per-instruction semantics,
// control flow, memory protection, recirculation, RTS placement, packet
// shrinking, preloading, and deactivation.
#include <gtest/gtest.h>

#include "active/assembler.hpp"
#include "packet/active_packet.hpp"
#include "rmt/hash.hpp"
#include "runtime/runtime.hpp"

namespace artmt::runtime {
namespace {

using active::Opcode;
using packet::ActivePacket;
using packet::ActiveType;
using packet::ArgumentHeader;

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : pipeline_(config()), runtime_(pipeline_) {
    // FID 1 owns words [100, 200) in every stage with zero advance.
    for (u32 s = 0; s < pipeline_.stage_count(); ++s) {
      pipeline_.stage(s).install(1, 100, 200, 0);
    }
  }

  static rmt::PipelineConfig config() {
    rmt::PipelineConfig cfg;
    cfg.words_per_stage = 1024;
    cfg.block_words = 64;
    return cfg;
  }

  ActivePacket make_packet(const std::string& text,
                           const ArgumentHeader& args = {}, Fid fid = 1) {
    return ActivePacket::make_program(fid, args, active::assemble(text));
  }

  ExecutionResult run(ActivePacket& pkt, const PacketMeta& meta = {}) {
    return runtime_.execute(pkt, meta);
  }

  rmt::Pipeline pipeline_;
  ActiveRuntime runtime_;
};

// ---------- data copying & manipulation ----------

TEST_F(RuntimeTest, MbrLoadStore) {
  auto pkt = make_packet("MBR_LOAD $2\nMBR_STORE $3\nRETURN",
                         ArgumentHeader{{0, 0, 77, 0}});
  const auto res = run(pkt);
  EXPECT_EQ(res.verdict, Verdict::kForward);
  EXPECT_EQ(pkt.arguments->args[3], 77u);
  EXPECT_EQ(res.phv.mbr, 77u);
}

TEST_F(RuntimeTest, CopyChainAndSwap) {
  auto pkt = make_packet(R"(
      MBR_LOAD $0
      COPY_MBR2_MBR
      MBR_LOAD $1
      SWAP_MBR_MBR2
      COPY_MAR_MBR
      RETURN
  )",
                         ArgumentHeader{{5, 9, 0, 0}});
  const auto res = run(pkt);
  // MBR2 = 5, then MBR = 9; swap -> MBR = 5, MBR2 = 9; MAR <- 5.
  EXPECT_EQ(res.phv.mar, 5u);
  EXPECT_EQ(res.phv.mbr2, 9u);
}

TEST_F(RuntimeTest, ArithmeticOps) {
  auto pkt = make_packet(R"(
      MBR_LOAD $0
      MBR2_LOAD $1
      MBR_ADD_MBR2
      MAR_MBR_ADD_MBR2
      MBR_SUBTRACT_MBR2
      RETURN
  )",
                         ArgumentHeader{{10, 3, 0, 0}});
  const auto res = run(pkt);
  EXPECT_EQ(res.phv.mbr, 10u);  // (10+3)-3
  EXPECT_EQ(res.phv.mar, 16u);  // 13+3
}

TEST_F(RuntimeTest, MarAddVariants) {
  auto pkt = make_packet(R"(
      MAR_LOAD $0
      MBR_LOAD $1
      MAR_ADD_MBR
      MBR2_LOAD $2
      MAR_ADD_MBR2
      RETURN
  )",
                         ArgumentHeader{{100, 5, 7, 0}});
  EXPECT_EQ(run(pkt).phv.mar, 112u);
}

TEST_F(RuntimeTest, MinMaxRevminNot) {
  auto pkt = make_packet(R"(
      MBR_LOAD $0
      MBR2_LOAD $1
      MAX
      REVMIN
      MBR_NOT
      RETURN
  )",
                         ArgumentHeader{{4, 9, 0, 0}});
  const auto res = run(pkt);
  // MAX -> MBR = 9; REVMIN -> MBR2 = min(9, 9) = 9; NOT -> ~9.
  EXPECT_EQ(res.phv.mbr, ~9u);
  EXPECT_EQ(res.phv.mbr2, 9u);
}

TEST_F(RuntimeTest, MinKeepsSmaller) {
  auto pkt = make_packet("MBR_LOAD $0\nMBR2_LOAD $1\nMIN\nRETURN",
                         ArgumentHeader{{9, 4, 0, 0}});
  EXPECT_EQ(run(pkt).phv.mbr, 4u);
}

TEST_F(RuntimeTest, XorEqualityIdioms) {
  auto pkt = make_packet(R"(
      MBR_LOAD $0
      MBR2_LOAD $1
      MBR_EQUALS_MBR2
      RETURN
  )",
                         ArgumentHeader{{42, 42, 0, 0}});
  EXPECT_EQ(run(pkt).phv.mbr, 0u);

  auto pkt2 = make_packet("MBR_LOAD $0\nMBR_EQUALS_DATA $1\nRETURN",
                          ArgumentHeader{{42, 40, 0, 0}});
  EXPECT_NE(run(pkt2).phv.mbr, 0u);
}

TEST_F(RuntimeTest, BitOps) {
  auto pkt = make_packet(R"(
      MAR_LOAD $0
      MBR_LOAD $1
      BIT_AND_MAR_MBR
      MBR2_LOAD $2
      BIT_OR_MBR_MBR2
      RETURN
  )",
                         ArgumentHeader{{0xff, 0x0f, 0xf0, 0}});
  const auto res = run(pkt);
  EXPECT_EQ(res.phv.mar, 0x0fu);
  EXPECT_EQ(res.phv.mbr, 0xffu);
}

// ---------- control flow ----------

TEST_F(RuntimeTest, ReturnStopsExecution) {
  auto pkt = make_packet("MBR_LOAD $0\nRETURN\nMBR_LOAD $1",
                         ArgumentHeader{{1, 2, 0, 0}});
  const auto res = run(pkt);
  EXPECT_EQ(res.phv.mbr, 1u);
  EXPECT_TRUE(res.phv.complete);
  EXPECT_EQ(res.instructions_executed, 2u);
}

TEST_F(RuntimeTest, CretReturnsWhenTrue) {
  auto pkt = make_packet("MBR_LOAD $0\nCRET\nMBR_LOAD $1\nRETURN",
                         ArgumentHeader{{1, 99, 0, 0}});
  EXPECT_EQ(run(pkt).phv.mbr, 1u);  // returned at CRET

  auto pkt2 = make_packet("MBR_LOAD $0\nCRET\nMBR_LOAD $1\nRETURN",
                          ArgumentHeader{{0, 99, 0, 0}});
  EXPECT_EQ(run(pkt2).phv.mbr, 99u);  // fell through
}

TEST_F(RuntimeTest, CretiReturnsWhenFalse) {
  auto pkt = make_packet("MBR_LOAD $0\nCRETI\nMBR_LOAD $1\nRETURN",
                         ArgumentHeader{{0, 99, 0, 0}});
  EXPECT_EQ(run(pkt).phv.mbr, 0u);
}

TEST_F(RuntimeTest, CjumpSkipsToLabel) {
  auto pkt = make_packet(R"(
      MBR_LOAD $0
      CJUMP L1
      MBR_LOAD $1
      L1: MBR_STORE $3
      RETURN
  )",
                         ArgumentHeader{{7, 99, 0, 0}});
  const auto res = run(pkt);
  // Branch taken: the $1 load is skipped; the labeled store executes.
  EXPECT_EQ(pkt.arguments->args[3], 7u);
  // Skipped instructions still consume stages.
  EXPECT_EQ(res.stages_consumed, 5u);
}

TEST_F(RuntimeTest, CjumpFallsThroughWhenFalse) {
  auto pkt = make_packet(R"(
      MBR_LOAD $0
      CJUMP L1
      MBR_LOAD $1
      L1: MBR_STORE $3
      RETURN
  )",
                         ArgumentHeader{{0, 99, 0, 0}});
  run(pkt);
  EXPECT_EQ(pkt.arguments->args[3], 99u);
}

TEST_F(RuntimeTest, CjumpiBranchesOnZero) {
  auto pkt = make_packet(R"(
      MBR_LOAD $0
      CJUMPI L1
      MBR_LOAD $1
      L1: RETURN
  )",
                         ArgumentHeader{{0, 99, 0, 0}});
  EXPECT_EQ(run(pkt).phv.mbr, 0u);
}

TEST_F(RuntimeTest, UjumpAlwaysBranches) {
  auto pkt = make_packet(R"(
      UJUMP L1
      MBR_LOAD $1
      L1: RETURN
  )",
                         ArgumentHeader{{0, 99, 0, 0}});
  EXPECT_EQ(run(pkt).phv.mbr, 0u);
}

TEST_F(RuntimeTest, NestedSkipsConsumeStages) {
  auto pkt = make_packet(R"(
      MBR_LOAD $0
      CJUMP L3
      NOP
      NOP
      NOP
      L3: RETURN
  )",
                         ArgumentHeader{{1, 0, 0, 0}});
  const auto res = run(pkt);
  EXPECT_EQ(res.stages_consumed, 6u);
  EXPECT_EQ(res.instructions_executed, 3u);  // load, jump, return
}

// ---------- memory semantics ----------

TEST_F(RuntimeTest, MemWriteRead) {
  auto wr = make_packet("MAR_LOAD $0\nMBR_LOAD $1\nMEM_WRITE\nRETURN",
                        ArgumentHeader{{150, 1234, 0, 0}});
  EXPECT_EQ(run(wr).verdict, Verdict::kForward);
  EXPECT_EQ(pipeline_.stage(2).memory().read(150), 1234u);

  // Pad the read to stage 2 where the write landed.
  auto rd = make_packet("MAR_LOAD $0\nNOP\nMEM_READ\nMBR_STORE $3\nRETURN",
                        ArgumentHeader{{150, 0, 0, 0}});
  run(rd);
  EXPECT_EQ(rd.arguments->args[3], 1234u);
}

TEST_F(RuntimeTest, StagesHaveIndependentMemory) {
  auto wr = make_packet("MAR_LOAD $0\nMBR_LOAD $1\nMEM_WRITE\nRETURN",
                        ArgumentHeader{{150, 1, 0, 0}});
  run(wr);
  EXPECT_EQ(pipeline_.stage(2).memory().read(150), 1u);
  EXPECT_EQ(pipeline_.stage(3).memory().read(150), 0u);
}

TEST_F(RuntimeTest, MemIncrement) {
  auto pkt = make_packet("MAR_LOAD $0\nMEM_INCREMENT\nRETURN",
                         ArgumentHeader{{100, 0, 0, 0}});
  EXPECT_EQ(run(pkt).phv.mbr, 1u);
  auto pkt2 = make_packet("MAR_LOAD $0\nMEM_INCREMENT\nRETURN",
                          ArgumentHeader{{100, 0, 0, 0}});
  EXPECT_EQ(run(pkt2).phv.mbr, 2u);
}

TEST_F(RuntimeTest, MemMinread) {
  pipeline_.stage(1).memory().write(110, 5);
  auto pkt = make_packet("MAR_LOAD $0\nMEM_MINREAD\nRETURN",
                         ArgumentHeader{{110, 0, 0, 0}});
  // MBR starts 0: min(5, 0) = 0.
  EXPECT_EQ(run(pkt).phv.mbr, 0u);
}

TEST_F(RuntimeTest, MemMinreadincSketchSemantics) {
  // MBR2 carries the running min across counter bumps.
  auto pkt = make_packet(R"(
      MBR2_LOAD $1
      MAR_LOAD $0
      MEM_MINREADINC
      RETURN
  )",
                         ArgumentHeader{{120, 50, 0, 0}});
  const auto res = run(pkt);
  EXPECT_EQ(res.phv.mbr, 1u);   // post-increment count
  EXPECT_EQ(res.phv.mbr2, 1u);  // min(1, 50)
}

TEST_F(RuntimeTest, ProtectionViolationDrops) {
  auto pkt = make_packet("MAR_LOAD $0\nMEM_READ\nRETURN",
                         ArgumentHeader{{99, 0, 0, 0}});  // below the region
  const auto res = run(pkt);
  EXPECT_EQ(res.verdict, Verdict::kDrop);
  EXPECT_EQ(res.fault, Fault::kProtectionViolation);
  EXPECT_EQ(runtime_.stats().drops_protection, 1u);
}

TEST_F(RuntimeTest, ProtectionUpperBoundExclusive) {
  auto pkt = make_packet("MAR_LOAD $0\nMEM_READ\nRETURN",
                         ArgumentHeader{{200, 0, 0, 0}});
  EXPECT_EQ(run(pkt).fault, Fault::kProtectionViolation);
  auto ok = make_packet("MAR_LOAD $0\nMEM_READ\nRETURN",
                        ArgumentHeader{{199, 0, 0, 0}});
  EXPECT_EQ(run(ok).fault, Fault::kNone);
}

TEST_F(RuntimeTest, UnallocatedFidDrops) {
  auto pkt = make_packet("MAR_LOAD $0\nMEM_READ\nRETURN",
                         ArgumentHeader{{150, 0, 0, 0}}, /*fid=*/42);
  const auto res = run(pkt);
  EXPECT_EQ(res.fault, Fault::kNoAllocation);
  EXPECT_EQ(runtime_.stats().drops_no_allocation, 1u);
}

TEST_F(RuntimeTest, AdvanceWalksRegions) {
  // Stage 1 advances MAR by +64 after its access (next region's delta).
  pipeline_.stage(1).install(1, 100, 200, 64);
  pipeline_.stage(2).memory().write(174, 555);  // 110 + 64
  auto pkt = make_packet(R"(
      MAR_LOAD $0
      MEM_READ
      MEM_READ
      MBR_STORE $3
      RETURN
  )",
                         ArgumentHeader{{110, 0, 0, 0}});
  run(pkt);
  EXPECT_EQ(pkt.arguments->args[3], 555u);
}

// ---------- hashing & runtime translation ----------

TEST_F(RuntimeTest, HashIntoMar) {
  auto pkt = make_packet(R"(
      MBR_LOAD $0
      COPY_HASHDATA_MBR $0
      HASH $1
      COPY_MBR_MAR
      MBR_STORE $3
      RETURN
  )",
                         ArgumentHeader{{1234, 0, 0, 0}});
  run(pkt);
  const std::array<Word, active::kHashdataWords> data{1234, 0, 0, 0};
  EXPECT_EQ(pkt.arguments->args[3], rmt::hash_words(data, 1));
}

TEST_F(RuntimeTest, AddrMaskOffsetTranslateForNextAccess) {
  // Region is [100, 200): mask 63, offset 100. A hash-translated access
  // must land inside the region regardless of the hash value.
  auto pkt = make_packet(R"(
      MBR_LOAD $0
      COPY_HASHDATA_MBR $0
      HASH $0
      ADDR_MASK
      ADDR_OFFSET
      MEM_READ
      RETURN
  )",
                         ArgumentHeader{{0xabcdef01, 0, 0, 0}});
  const auto res = run(pkt);
  EXPECT_EQ(res.verdict, Verdict::kForward);
  EXPECT_GE(res.phv.mar, 100u);
  EXPECT_LT(res.phv.mar, 200u);
}

TEST_F(RuntimeTest, AddrMaskWithoutUpcomingAccessDrops) {
  auto pkt = make_packet("ADDR_MASK\nRETURN", ArgumentHeader{});
  const auto res = run(pkt);
  EXPECT_EQ(res.verdict, Verdict::kDrop);
  EXPECT_EQ(res.fault, Fault::kNoAllocation);
}

TEST_F(RuntimeTest, FiveTupleMetadataReachable) {
  PacketMeta meta;
  meta.five_tuple = {9, 8, 7, 6};
  auto pkt = make_packet(R"(
      COPY_HASHDATA_5TUPLE
      HASH $0
      COPY_MBR_MAR
      MBR_STORE $3
      RETURN
  )",
                         ArgumentHeader{});
  run(pkt, meta);
  EXPECT_EQ(pkt.arguments->args[3],
            rmt::hash_words(std::vector<Word>{9, 8, 7, 6}, 0));
}

// ---------- forwarding ----------

TEST_F(RuntimeTest, RtsSwapsAddressesAtIngress) {
  auto pkt = make_packet("RTS\nRETURN", ArgumentHeader{});
  pkt.ethernet.src = 0xaaa;
  pkt.ethernet.dst = 0xbbb;
  const auto res = run(pkt);
  EXPECT_EQ(res.verdict, Verdict::kReturnToSender);
  EXPECT_EQ(pkt.ethernet.src, 0xbbbu);
  EXPECT_EQ(pkt.ethernet.dst, 0xaaau);
  EXPECT_EQ(res.passes, 1u);  // RTS at stage 0 = ingress, no penalty
}

TEST_F(RuntimeTest, RtsAtEgressCostsARecirculation) {
  std::string text;
  for (int i = 0; i < 12; ++i) text += "NOP\n";
  text += "RTS\nRETURN";
  auto pkt = make_packet(text, ArgumentHeader{});
  const auto res = run(pkt);
  EXPECT_EQ(res.verdict, Verdict::kReturnToSender);
  EXPECT_EQ(res.passes, 2u);  // stage 12 is egress -> port change recircs
}

TEST_F(RuntimeTest, CrtsConditional) {
  auto pkt = make_packet("MBR_LOAD $0\nCRTS\nRETURN",
                         ArgumentHeader{{0, 0, 0, 0}});
  EXPECT_EQ(run(pkt).verdict, Verdict::kForward);
  auto pkt2 = make_packet("MBR_LOAD $0\nCRTS\nRETURN",
                          ArgumentHeader{{1, 0, 0, 0}});
  EXPECT_EQ(run(pkt2).verdict, Verdict::kReturnToSender);
}

TEST_F(RuntimeTest, DropVerdict) {
  auto pkt = make_packet("DROP\nRETURN", ArgumentHeader{});
  const auto res = run(pkt);
  EXPECT_EQ(res.verdict, Verdict::kDrop);
  EXPECT_EQ(res.fault, Fault::kExplicitDrop);
  EXPECT_EQ(runtime_.stats().drops_explicit, 1u);
}

TEST_F(RuntimeTest, SetDstOverrides) {
  auto pkt = make_packet("MBR_LOAD $0\nSET_DST\nRETURN",
                         ArgumentHeader{{3, 0, 0, 0}});
  const auto res = run(pkt);
  EXPECT_TRUE(res.phv.dst_overridden);
  EXPECT_EQ(res.phv.dst_value, 3u);
}

TEST_F(RuntimeTest, ForkSignalsCloneAndRecirculation) {
  auto pkt = make_packet("FORK\nRETURN", ArgumentHeader{});
  const auto res = run(pkt);
  EXPECT_TRUE(res.forked);
  EXPECT_EQ(res.passes, 2u);
}

// ---------- recirculation & latency ----------

TEST_F(RuntimeTest, LongProgramRecirculates) {
  std::string text;
  for (int i = 0; i < 25; ++i) text += "NOP\n";
  text += "RETURN";
  auto pkt = make_packet(text, ArgumentHeader{});
  const auto res = run(pkt);
  EXPECT_EQ(res.passes, 2u);
  // 26 instructions engage three 10-stage pipelines.
  EXPECT_EQ(res.latency, 3 * config().pass_latency);
  EXPECT_EQ(runtime_.stats().recirculations, 1u);
}

TEST_F(RuntimeTest, TwentyInstructionsFitOnePass) {
  std::string text;
  for (int i = 0; i < 19; ++i) text += "NOP\n";
  text += "RETURN";
  auto pkt = make_packet(text, ArgumentHeader{});
  EXPECT_EQ(run(pkt).passes, 1u);
}

TEST_F(RuntimeTest, RecirculationLimitDrops) {
  std::string text;
  for (int i = 0; i < 200; ++i) text += "NOP\n";
  text += "RETURN";
  auto pkt = make_packet(text, ArgumentHeader{});
  const auto res = run(pkt);
  EXPECT_EQ(res.verdict, Verdict::kDrop);
  EXPECT_EQ(res.fault, Fault::kRecircLimit);
}

// ---------- parser-side behaviors ----------

TEST_F(RuntimeTest, ExecutedInstructionsShrinkFromPacket) {
  auto pkt = make_packet("MBR_LOAD $0\nCRET\nMBR_LOAD $1\nRETURN",
                         ArgumentHeader{{1, 0, 0, 0}});
  run(pkt);
  // MBR_LOAD + CRET executed and discarded; the untouched tail remains.
  EXPECT_EQ(pkt.program->size(), 2u);
  EXPECT_EQ(pkt.program->code()[0].op, Opcode::kMbrLoad);
}

TEST_F(RuntimeTest, NoShrinkFlagKeepsInstructions) {
  auto pkt = make_packet("MBR_LOAD $0\nRETURN", ArgumentHeader{{1, 0, 0, 0}});
  pkt.initial.flags |= packet::kFlagNoShrink;
  run(pkt);
  EXPECT_EQ(pkt.program->size(), 2u);
}

TEST_F(RuntimeTest, PreloadMarReachesStageZero) {
  pipeline_.stage(0).memory().write(130, 777);
  auto pkt = make_packet("MEM_READ\nMBR_STORE $3\nRETURN",
                         ArgumentHeader{{130, 0, 0, 0}});
  pkt.program->preload_mar = true;
  pkt.initial.flags |= packet::kFlagPreloadMar;
  // Re-serialize to prove the flag survives the wire.
  auto parsed = ActivePacket::parse(pkt.serialize());
  run(parsed);
  EXPECT_EQ(parsed.arguments->args[3], 777u);
}

TEST_F(RuntimeTest, PreloadMbrSeedsValue) {
  auto pkt =
      make_packet("MEM_WRITE\nRETURN", ArgumentHeader{{140, 888, 0, 0}});
  pkt.program->preload_mar = true;
  pkt.program->preload_mbr = true;
  pkt.initial.flags |= packet::kFlagPreloadMar | packet::kFlagPreloadMbr;
  auto parsed = ActivePacket::parse(pkt.serialize());
  run(parsed);
  EXPECT_EQ(pipeline_.stage(0).memory().read(140), 888u);
}

// ---------- deactivation (Section 4.3) ----------

TEST_F(RuntimeTest, DeactivatedFidForwardsUnprocessed) {
  runtime_.deactivate(1);
  auto pkt = make_packet("MAR_LOAD $0\nMEM_READ\nRETURN",
                         ArgumentHeader{{150, 0, 0, 0}});
  const auto res = run(pkt);
  EXPECT_EQ(res.verdict, Verdict::kForward);
  EXPECT_FALSE(res.executed);
  EXPECT_EQ(res.fault, Fault::kDeactivated);
  EXPECT_EQ(runtime_.stats().forwarded_unprocessed, 1u);
}

TEST_F(RuntimeTest, ManagementCapsulesRunWhileDeactivated) {
  runtime_.deactivate(1);
  auto pkt = make_packet("MAR_LOAD $0\nMBR_LOAD $1\nMEM_WRITE\nRETURN",
                         ArgumentHeader{{150, 42, 0, 0}});
  pkt.initial.flags |= packet::kFlagManagement;
  const auto res = run(pkt);
  EXPECT_TRUE(res.executed);
  EXPECT_EQ(pipeline_.stage(2).memory().read(150), 42u);
}

TEST_F(RuntimeTest, ReactivationRestoresExecution) {
  runtime_.deactivate(1);
  runtime_.reactivate(1);
  auto pkt = make_packet("MBR_LOAD $0\nRETURN", ArgumentHeader{{5, 0, 0, 0}});
  EXPECT_TRUE(run(pkt).executed);
}

TEST_F(RuntimeTest, ControlPacketsForwardWithoutExecution) {
  auto pkt = ActivePacket::make_control(1, ActiveType::kExtractComplete);
  const auto res = run(pkt);
  EXPECT_EQ(res.verdict, Verdict::kForward);
  EXPECT_FALSE(res.executed);
}

TEST_F(RuntimeTest, EmptyProgramForwards) {
  auto pkt =
      ActivePacket::make_program(1, ArgumentHeader{}, active::Program{});
  const auto res = run(pkt);
  EXPECT_EQ(res.verdict, Verdict::kForward);
  EXPECT_EQ(res.passes, 1u);
}

// ---------- Section 7.2 extensions ----------

TEST_F(RuntimeTest, PrivilegeEnforcementBlocksForwardingOps) {
  runtime_.set_enforce_privilege(true);
  for (const char* op : {"FORK", "SET_DST", "DROP"}) {
    auto pkt = make_packet(std::string(op) + "\nRETURN", ArgumentHeader{});
    const auto res = run(pkt);
    EXPECT_EQ(res.verdict, Verdict::kDrop) << op;
    EXPECT_EQ(res.fault, Fault::kPrivilege) << op;
  }
  EXPECT_EQ(runtime_.stats().drops_privilege, 3u);
}

TEST_F(RuntimeTest, PrivilegedCapsulePasses) {
  runtime_.set_enforce_privilege(true);
  auto pkt = make_packet("FORK\nRETURN", ArgumentHeader{});
  pkt.initial.flags |= packet::kFlagPrivileged;
  const auto res = run(pkt);
  EXPECT_EQ(res.verdict, Verdict::kForward);
  EXPECT_TRUE(res.forked);
}

TEST_F(RuntimeTest, PrivilegeOffByDefault) {
  auto pkt = make_packet("SET_DST\nRETURN", ArgumentHeader{});
  EXPECT_EQ(run(pkt).fault, Fault::kNone);
}

TEST_F(RuntimeTest, RtsNeverNeedsPrivilege) {
  runtime_.set_enforce_privilege(true);
  auto pkt = make_packet("RTS\nRETURN", ArgumentHeader{});
  EXPECT_EQ(run(pkt).verdict, Verdict::kReturnToSender);
}

TEST_F(RuntimeTest, RecircBudgetDropsWhenExhausted) {
  // Two extra passes of burst, no refill: the first two recirculating
  // packets pass, the third is dropped.
  runtime_.set_recirc_budget(1, RecircBudget{1e-9, 2.0});
  std::string text;
  for (int i = 0; i < 25; ++i) text += "NOP\n";
  text += "RETURN";  // 26 instructions -> 1 extra pass each
  for (int i = 0; i < 2; ++i) {
    auto pkt = make_packet(text, ArgumentHeader{});
    EXPECT_EQ(runtime_.execute(pkt, {}, 0).verdict, Verdict::kForward) << i;
  }
  auto pkt = make_packet(text, ArgumentHeader{});
  const auto res = runtime_.execute(pkt, {}, 0);
  EXPECT_EQ(res.verdict, Verdict::kDrop);
  EXPECT_EQ(res.fault, Fault::kRecircBudget);
  EXPECT_EQ(runtime_.stats().drops_recirc_budget, 1u);
}

TEST_F(RuntimeTest, RecircBudgetRefillsOverTime) {
  runtime_.set_recirc_budget(1, RecircBudget{1.0, 1.0});  // 1 pass/s
  std::string text;
  for (int i = 0; i < 25; ++i) text += "NOP\n";
  text += "RETURN";
  auto pkt = make_packet(text, ArgumentHeader{});
  EXPECT_EQ(runtime_.execute(pkt, {}, 0).verdict, Verdict::kForward);
  auto starved = make_packet(text, ArgumentHeader{});
  EXPECT_EQ(runtime_.execute(starved, {}, kMillisecond).verdict,
            Verdict::kDrop);
  auto refilled = make_packet(text, ArgumentHeader{});
  EXPECT_EQ(runtime_.execute(refilled, {}, 2 * kSecond).verdict,
            Verdict::kForward);
}

TEST_F(RuntimeTest, RecircBudgetDoesNotAffectSinglePass) {
  runtime_.set_recirc_budget(1, RecircBudget{1e-9, 0.0});
  auto pkt = make_packet("MBR_LOAD $0\nRETURN", ArgumentHeader{{1, 0, 0, 0}});
  EXPECT_EQ(run(pkt).verdict, Verdict::kForward);
}

TEST_F(RuntimeTest, RecircBudgetClearable) {
  runtime_.set_recirc_budget(1, RecircBudget{1e-9, 0.0});
  runtime_.clear_recirc_budget(1);
  std::string text;
  for (int i = 0; i < 25; ++i) text += "NOP\n";
  text += "RETURN";
  auto pkt = make_packet(text, ArgumentHeader{});
  EXPECT_EQ(run(pkt).verdict, Verdict::kForward);
}

TEST_F(RuntimeTest, RecircBudgetIsPerFid) {
  runtime_.set_recirc_budget(1, RecircBudget{1e-9, 0.0});
  pipeline_.stage(5).install(42, 0, 64, 0);
  std::string text;
  for (int i = 0; i < 25; ++i) text += "NOP\n";
  text += "RETURN";
  auto other = make_packet(text, ArgumentHeader{}, /*fid=*/42);
  EXPECT_EQ(run(other).verdict, Verdict::kForward);  // 42 is unlimited
}

TEST_F(RuntimeTest, RecircBudgetBurstClampsAccumulation) {
  // High refill rate, burst of one extra pass: no matter how long the
  // bucket idles, only one recirculating packet is admitted per instant.
  runtime_.set_recirc_budget(1, RecircBudget{1000.0, 1.0});
  std::string text;
  for (int i = 0; i < 25; ++i) text += "NOP\n";
  text += "RETURN";  // 26 instructions -> 1 extra pass
  const SimTime later = 100 * kSecond;
  auto first = make_packet(text, ArgumentHeader{});
  EXPECT_EQ(runtime_.execute(first, {}, later).verdict, Verdict::kForward);
  auto second = make_packet(text, ArgumentHeader{});
  const auto res = runtime_.execute(second, {}, later);
  EXPECT_EQ(res.verdict, Verdict::kDrop);
  EXPECT_EQ(res.fault, Fault::kRecircBudget);
}

TEST_F(RuntimeTest, RecircBudgetZeroRateIsUnlimited) {
  // tokens_per_second <= 0 disables the governor even with zero burst.
  runtime_.set_recirc_budget(1, RecircBudget{0.0, 0.0});
  std::string text;
  for (int i = 0; i < 25; ++i) text += "NOP\n";
  text += "RETURN";
  for (int i = 0; i < 5; ++i) {
    auto pkt = make_packet(text, ArgumentHeader{});
    EXPECT_EQ(runtime_.execute(pkt, {}, 0).verdict, Verdict::kForward) << i;
  }
  EXPECT_EQ(runtime_.stats().drops_recirc_budget, 0u);
}

TEST_F(RuntimeTest, RecircBudgetZeroElapsedCallsStillCharge) {
  // Several packets arriving at the same virtual instant each pay for
  // their extra passes; the zero-elapsed refill adds nothing back.
  runtime_.set_recirc_budget(1, RecircBudget{1.0, 2.0});
  std::string text;
  for (int i = 0; i < 25; ++i) text += "NOP\n";
  text += "RETURN";
  const SimTime at = 3 * kSecond;
  for (int i = 0; i < 2; ++i) {
    auto pkt = make_packet(text, ArgumentHeader{});
    EXPECT_EQ(runtime_.execute(pkt, {}, at).verdict, Verdict::kForward) << i;
  }
  auto exhausted = make_packet(text, ArgumentHeader{});
  EXPECT_EQ(runtime_.execute(exhausted, {}, at).verdict, Verdict::kDrop);
}

// ---------- trace observer ----------

TEST_F(RuntimeTest, TraceReportsEveryConsumedStage) {
  std::vector<runtime::TraceEvent> events;
  runtime_.set_trace([&](const runtime::TraceEvent& e) { events.push_back(e); });
  auto pkt = make_packet(R"(
      MBR_LOAD $0
      CJUMP L1
      NOP
      L1: MBR_STORE $3
      RETURN
  )",
                         ArgumentHeader{{1, 0, 0, 0}});
  run(pkt);
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].op, Opcode::kMbrLoad);
  EXPECT_FALSE(events[0].skipped);
  EXPECT_TRUE(events[2].skipped);  // the NOP under a taken branch
  EXPECT_EQ(events[3].op, Opcode::kMbrStore);
  for (u32 i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].index, i);
    EXPECT_EQ(events[i].logical_stage, i);
    EXPECT_EQ(events[i].pass, 0u);
  }
  EXPECT_TRUE(events.back().phv.complete);
}

TEST_F(RuntimeTest, TracePassNumbersAcrossRecirculation) {
  std::vector<u32> passes;
  runtime_.set_trace(
      [&](const runtime::TraceEvent& e) { passes.push_back(e.pass); });
  std::string text;
  for (int i = 0; i < 24; ++i) text += "NOP\n";
  text += "RETURN";
  auto pkt = make_packet(text, ArgumentHeader{});
  run(pkt);
  ASSERT_EQ(passes.size(), 25u);
  EXPECT_EQ(passes[19], 0u);
  EXPECT_EQ(passes[20], 1u);
}

TEST_F(RuntimeTest, TraceDisablesWithEmptyFunction) {
  int calls = 0;
  runtime_.set_trace([&](const runtime::TraceEvent&) { ++calls; });
  runtime_.set_trace(nullptr);
  auto pkt = make_packet("RETURN", ArgumentHeader{});
  run(pkt);
  EXPECT_EQ(calls, 0);
}

// ---------- parameterized sweeps ----------

// Programs of every length from 1..45 instructions execute fully, engage
// ceil(n/10) pipelines of latency, and consume ceil(n/20) passes.
class ProgramLengthSweep : public RuntimeTest,
                           public ::testing::WithParamInterface<u32> {};

TEST_P(ProgramLengthSweep, PassAndLatencyArithmetic) {
  const u32 length = GetParam();
  std::string text;
  for (u32 i = 0; i + 1 < length; ++i) text += "NOP\n";
  text += "RETURN";
  auto pkt = make_packet(text, ArgumentHeader{});
  const auto res = run(pkt);
  EXPECT_EQ(res.verdict, Verdict::kForward);
  EXPECT_EQ(res.instructions_executed, length);
  EXPECT_EQ(res.passes, (length - 1) / 20 + 1);
  EXPECT_EQ(res.latency,
            static_cast<SimTime>((length + 9) / 10) *
                config().pass_latency);
  EXPECT_EQ(pkt.program->size(), 0u);  // everything executed and shrunk
}

INSTANTIATE_TEST_SUITE_P(Lengths, ProgramLengthSweep,
                         ::testing::Values(1u, 2u, 9u, 10u, 11u, 19u, 20u,
                                           21u, 30u, 39u, 40u, 41u, 45u));

// Memory round trips work in every logical stage.
class StageSweep : public RuntimeTest,
                   public ::testing::WithParamInterface<u32> {};

TEST_P(StageSweep, WriteReadAtEveryStage) {
  const u32 stage = GetParam();
  std::string pad;
  for (u32 i = 0; i < stage; ++i) pad += "NOP\n";
  // MAR_LOAD occupies index 0; pad so MEM_WRITE lands exactly at `stage`.
  std::string wr = "MAR_LOAD $0\nMBR_LOAD $1\n";
  for (u32 i = 2; i < stage; ++i) wr += "NOP\n";
  if (stage < 2) {
    // Stages 0/1 need the preload trick; emulate via direct memory.
    pipeline_.stage(stage).memory().write(150, 4242);
  } else {
    wr += "MEM_WRITE\nRETURN";
    auto wpkt = make_packet(wr, ArgumentHeader{{150, 4242, 0, 0}});
    ASSERT_EQ(run(wpkt).verdict, Verdict::kForward);
  }
  EXPECT_EQ(pipeline_.stage(stage).memory().read(150), 4242u);
}

INSTANTIATE_TEST_SUITE_P(Stages, StageSweep,
                         ::testing::Range(0u, 20u));

// The XOR-compare idiom is correct across word-boundary values.
class CompareSweep
    : public RuntimeTest,
      public ::testing::WithParamInterface<std::pair<Word, Word>> {};

TEST_P(CompareSweep, XorEqualitySemantics) {
  const auto [a, b] = GetParam();
  auto pkt = make_packet("MBR_LOAD $0\nMBR2_LOAD $1\nMBR_EQUALS_MBR2\nRETURN",
                         ArgumentHeader{{a, b, 0, 0}});
  const auto res = run(pkt);
  EXPECT_EQ(res.phv.mbr == 0, a == b);
}

INSTANTIATE_TEST_SUITE_P(
    Values, CompareSweep,
    ::testing::Values(std::pair<Word, Word>{0, 0},
                      std::pair<Word, Word>{0, 1},
                      std::pair<Word, Word>{0xffffffff, 0xffffffff},
                      std::pair<Word, Word>{0xffffffff, 0x7fffffff},
                      std::pair<Word, Word>{0x80000000, 0x80000000},
                      std::pair<Word, Word>{1u << 16, 1u << 15}));

}  // namespace
}  // namespace artmt::runtime
