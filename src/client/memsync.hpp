// Memory-synchronization capsules (Section 4.3, Appendix C): RDMA-style
// active programs that read or write specific physical memory locations,
// used to extract snapshots and (re)populate allocations from the data
// plane. Reads and writes are idempotent, so clients retransmit on
// timeout; RTS makes every successful capsule generate a response.
#pragma once

#include <optional>

#include "active/program.hpp"
#include "packet/active_packet.hpp"

namespace artmt::client {

// One word to access: physical word address within logical stage `stage`.
struct MemRef {
  u32 stage = 0;
  u32 address = 0;
};

// Builds a Listing-5 style read program: value arrives in args[1] of the
// returned packet. Applies the preloading optimization so stage 0 is
// reachable.
active::Program make_read_program(const MemRef& ref);

// Listing-6 style write of args[1] to `ref` (ack via RTS).
active::Program make_write_program(const MemRef& ref);

// Bulk variants: one capsule touching two stages at once (the paper's
// "set of memory indices" primitive). Addresses go in args[0]/args[2],
// values in args[1]/args[3]; second ref must be in a strictly later reachable
// position than the first.
active::Program make_read_pair_program(const MemRef& first,
                                       const MemRef& second);
active::Program make_write_pair_program(const MemRef& first,
                                        const MemRef& second);

// Argument header for a single write (addr + value).
packet::ArgumentHeader write_args(const MemRef& ref, Word value);
// Argument header for a paired write.
packet::ArgumentHeader write_pair_args(const MemRef& first, Word value1,
                                       const MemRef& second, Word value2);
// Argument header for reads (addresses only).
packet::ArgumentHeader read_args(const MemRef& ref);
packet::ArgumentHeader read_pair_args(const MemRef& first,
                                      const MemRef& second);

}  // namespace artmt::client
