# Empty compiler generated dependencies file for artmt_stats.
# This may be replaced when dependencies are built.
