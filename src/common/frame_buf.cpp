#include "common/frame_buf.hpp"

#include <new>
#include <utility>

namespace artmt {

namespace detail {

// Shared between the pool handle and every slab it minted. Slabs keep a
// weak reference: releases that outlive the pool free the slab instead of
// touching a destroyed freelist.
struct FramePoolState {
  explicit FramePoolState(std::size_t bytes) : slab_bytes(bytes) {}
  ~FramePoolState() {
    for (FrameSlab* slab : freelist) free_slab(slab);
  }
  FramePoolState(const FramePoolState&) = delete;
  FramePoolState& operator=(const FramePoolState&) = delete;

  std::size_t slab_bytes;
  std::vector<FrameSlab*> freelist;
  FramePool::Stats stats;
};

FrameSlab* new_slab(std::size_t capacity) {
  void* mem = ::operator new(sizeof(FrameSlab) + capacity);
  auto* slab = ::new (mem) FrameSlab();
  slab->capacity = static_cast<u32>(capacity);
  return slab;
}

void free_slab(FrameSlab* slab) {
  slab->~FrameSlab();
  ::operator delete(slab);
}

void release_slab(FrameSlab* slab) {
  if (--slab->refs != 0) return;
  if (auto pool = slab->pool.lock()) {
    if (slab->capacity == pool->slab_bytes) {
      slab->refs = 1;  // primed for the next acquire
      pool->freelist.push_back(slab);
      ++pool->stats.recycled;
      return;
    }
  }
  free_slab(slab);
}

}  // namespace detail

// --- FrameBuf -------------------------------------------------------------

FrameBuf::FrameBuf(std::size_t size, u8 fill) {
  slab_ = detail::new_slab(size);
  len_ = static_cast<u32>(size);
  if (size != 0) std::memset(slab_->bytes(), fill, size);
}

FrameBuf::FrameBuf(std::vector<u8> bytes) : FrameBuf(std::span<const u8>(bytes)) {}

FrameBuf::FrameBuf(std::span<const u8> bytes) {
  slab_ = detail::new_slab(bytes.size());
  len_ = static_cast<u32>(bytes.size());
  if (!bytes.empty()) std::memcpy(slab_->bytes(), bytes.data(), bytes.size());
}

FrameBuf::FrameBuf(const FrameBuf& other) noexcept
    : slab_(other.slab_), off_(other.off_), len_(other.len_) {
  if (slab_ != nullptr) ++slab_->refs;
}

FrameBuf& FrameBuf::operator=(const FrameBuf& other) noexcept {
  if (this == &other) return *this;
  if (other.slab_ != nullptr) ++other.slab_->refs;
  reset();
  slab_ = other.slab_;
  off_ = other.off_;
  len_ = other.len_;
  return *this;
}

FrameBuf::FrameBuf(FrameBuf&& other) noexcept
    : slab_(other.slab_), off_(other.off_), len_(other.len_) {
  other.slab_ = nullptr;
  other.off_ = 0;
  other.len_ = 0;
}

FrameBuf& FrameBuf::operator=(FrameBuf&& other) noexcept {
  if (this == &other) return *this;
  reset();
  slab_ = other.slab_;
  off_ = other.off_;
  len_ = other.len_;
  other.slab_ = nullptr;
  other.off_ = 0;
  other.len_ = 0;
  return *this;
}

void FrameBuf::reset() noexcept {
  if (slab_ != nullptr) detail::release_slab(slab_);
  slab_ = nullptr;
  off_ = 0;
  len_ = 0;
}

void FrameBuf::require_unique(const char* op) const {
  if (!unique()) {
    throw UsageError(std::string("FrameBuf::") + op +
                     ": buffer is shared (or empty)");
  }
}

void FrameBuf::drop_front(std::size_t n) {
  require_unique("drop_front");
  if (n > len_) throw UsageError("FrameBuf::drop_front: beyond frame end");
  off_ += static_cast<u32>(n);
  len_ -= static_cast<u32>(n);
}

void FrameBuf::grow_front(std::size_t n) {
  require_unique("grow_front");
  if (n > off_) throw UsageError("FrameBuf::grow_front: no headroom");
  off_ -= static_cast<u32>(n);
  len_ += static_cast<u32>(n);
}

void FrameBuf::resize(std::size_t n) {
  require_unique("resize");
  if (off_ + n > slab_->capacity) {
    throw UsageError("FrameBuf::resize: beyond slab capacity");
  }
  len_ = static_cast<u32>(n);
}

// --- FramePool ------------------------------------------------------------

FramePool::FramePool(std::size_t slab_bytes)
    : state_(std::make_shared<detail::FramePoolState>(
          std::max<std::size_t>(slab_bytes, 1))) {}

FrameBuf FramePool::acquire(std::size_t size, std::size_t headroom) {
  ++state_->stats.acquired;
  const std::size_t need = size + headroom;
  if (need > state_->slab_bytes) {
    // Oversize: exact standalone-capacity slab, pool-linked only so the
    // release path can tell it apart (capacity mismatch -> freed).
    ++state_->stats.oversize;
    detail::FrameSlab* slab = detail::new_slab(need);
    slab->pool = state_;
    return FrameBuf(slab, static_cast<u32>(headroom), static_cast<u32>(size));
  }
  detail::FrameSlab* slab;
  if (!state_->freelist.empty()) {
    slab = state_->freelist.back();
    state_->freelist.pop_back();
  } else {
    slab = detail::new_slab(state_->slab_bytes);
    slab->pool = state_;
    ++state_->stats.slabs_created;
  }
  return FrameBuf(slab, static_cast<u32>(headroom), static_cast<u32>(size));
}

FrameBuf FramePool::copy(std::span<const u8> bytes, std::size_t headroom) {
  FrameBuf buf = acquire(bytes.size(), headroom);
  if (!bytes.empty()) std::memcpy(buf.data(), bytes.data(), bytes.size());
  return buf;
}

FrameBuf FramePool::clone(const FrameBuf& src) {
  return copy(src.cspan(), src.headroom());
}

const FramePool::Stats& FramePool::stats() const { return state_->stats; }

std::size_t FramePool::free_slabs() const { return state_->freelist.size(); }

std::size_t FramePool::slab_bytes() const { return state_->slab_bytes; }

void FramePool::reserve(std::size_t slabs) {
  while (state_->freelist.size() < slabs) {
    detail::FrameSlab* slab = detail::new_slab(state_->slab_bytes);
    slab->pool = state_;
    ++state_->stats.slabs_created;
    state_->freelist.push_back(slab);
  }
}

}  // namespace artmt
