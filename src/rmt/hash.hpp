// Hash units available to the HASH instruction. The Tofino provides CRC
// engines (not cryptographically secure, as Section 7.2 notes); we model
// one CRC32C unit over the PHV hash-metadata words.
#pragma once

#include <span>

#include "common/types.hpp"

namespace artmt::rmt {

// CRC32C (Castagnoli) over a byte span.
u32 crc32c(std::span<const u8> data);

// Hash of a sequence of 32-bit hash-metadata words (big-endian byte order,
// matching what the parser would feed the hardware hash engine). `engine`
// selects among independent hash configurations (a Tofino exposes several
// CRC engines); different engines give uncorrelated outputs.
u32 hash_words(std::span<const Word> words, u32 engine = 0);

}  // namespace artmt::rmt
