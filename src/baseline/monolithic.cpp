#include "baseline/monolithic.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace artmt::baseline {

MonolithicBaseline::MonolithicBaseline(const BaselineConfig& config)
    : config_(config) {
  if (config.pipes == 0 || config.stages_per_pipe == 0 ||
      config.parallel_tables == 0 ||
      config.reserved_stages >= config.stages_per_pipe) {
    throw UsageError("MonolithicBaseline: bad configuration");
  }
}

u32 MonolithicBaseline::max_instances(const StaticApp& app) const {
  if (app.dependency_depth == 0) {
    throw UsageError("MonolithicBaseline: zero dependency depth");
  }
  const u32 usable = config_.stages_per_pipe - config_.reserved_stages;
  if (app.dependency_depth > usable) return 0;
  const u32 chains_per_pipe =
      usable * config_.parallel_tables / app.dependency_depth;
  return chains_per_pipe * config_.pipes;
}

SimTime MonolithicBaseline::redeployment_latency() const {
  return config_.compile_time + config_.reprovision_blackout;
}

SimTime MonolithicBaseline::traffic_disruption() const {
  return config_.reprovision_blackout;
}

double MonolithicBaseline::static_utilization(const StaticApp& app,
                                              u32 provisioned_instances,
                                              u32 active_instances) const {
  if (provisioned_instances == 0) return 0.0;
  const u32 cap = max_instances(app);
  const u32 provisioned = std::min(provisioned_instances, cap);
  const u32 active = std::min(active_instances, provisioned);
  // The image carves the memory of the stages each instance occupies into
  // fixed shares (one share per co-resident chain); departed tenants
  // strand theirs until the next image.
  const u64 total_words = static_cast<u64>(config_.pipes) *
                          config_.stages_per_pipe * config_.words_per_stage;
  const u64 per_stage_share =
      app.words_demanded != 0
          ? app.words_demanded
          : config_.words_per_stage / config_.parallel_tables;
  const u64 used =
      static_cast<u64>(active) * per_stage_share * app.memory_stages;
  return static_cast<double>(std::min(used, total_words)) /
         static_cast<double>(total_words);
}

}  // namespace artmt::baseline
