// Structural parameters of the modeled PISA/RMT device. Defaults mirror the
// paper's testbed: a Tofino with 20 logical stages (10 ingress + 10 egress),
// ~94K words of register memory per stage, 1-KB allocation blocks, and RTS
// only effective at ingress (Sections 3.1, 4.1, 6).
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"

namespace artmt::rmt {

struct PipelineConfig {
  u32 logical_stages = 20;
  u32 ingress_stages = 10;  // RTS/port changes must happen here (or recirc)
  u32 words_per_stage = 94'208;  // 32-bit registers per stage pool
  u32 block_words = 256;         // 1-KB allocation granularity (Section 6)
  u32 tcam_entries_per_stage = 512;  // range-match capacity (protection)
  u32 max_recirculations = 8;        // safety cap on passes per packet

  // Latency model: the paper measures ~0.5 us added per pipeline engaged
  // (Fig. 8b: 10, 20, 30 instructions sit 0.5 us apart); one "pipeline"
  // is an ingress or egress half (ingress_stages logical stages).
  SimTime pass_latency = 500;  // ns per 10-stage pipeline engaged

  [[nodiscard]] u32 blocks_per_stage() const {
    return words_per_stage / block_words;
  }

  void validate() const {
    if (logical_stages == 0 || ingress_stages == 0 ||
        ingress_stages > logical_stages) {
      throw UsageError("PipelineConfig: bad stage counts");
    }
    if (block_words == 0 || words_per_stage < block_words) {
      throw UsageError("PipelineConfig: bad memory geometry");
    }
  }
};

}  // namespace artmt::rmt
