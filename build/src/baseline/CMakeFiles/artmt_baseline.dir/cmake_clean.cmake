file(REMOVE_RECURSE
  "CMakeFiles/artmt_baseline.dir/monolithic.cpp.o"
  "CMakeFiles/artmt_baseline.dir/monolithic.cpp.o.d"
  "CMakeFiles/artmt_baseline.dir/netvrm.cpp.o"
  "CMakeFiles/artmt_baseline.dir/netvrm.cpp.o.d"
  "libartmt_baseline.a"
  "libartmt_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmt_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
