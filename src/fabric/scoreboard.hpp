// Per-switch allocator scoreboard: the compact capacity summary every
// switch piggybacks on its health acks (src/fabric health epochs). The
// global controller ranks admission and evacuation targets on these
// summaries alone -- they are heuristics for *ranking*, not feasibility
// proofs; the chosen switch's own allocator still has the final word and
// a denial makes the controller fall through to the next-best candidate.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace artmt::controller {
class SwitchNode;
}  // namespace artmt::controller

namespace artmt::fabric {

struct Scoreboard {
  u32 stages = 0;
  u32 blocks_per_stage = 0;
  u32 free_blocks = 0;      // sum over stages
  u32 fungible_blocks = 0;  // sum over stages (worst/best-fit currency)
  u32 largest_free_run = 0; // max over stages (contiguity headroom)
  u64 hotness_total = 0;    // decayed access pressure (background engine)
  std::vector<Fid> residents;  // ascending FIDs (revival reconciliation)

  [[nodiscard]] u32 total_blocks() const { return stages * blocks_per_stage; }

  // Wire form rides in a kHealthAck payload (big-endian, like every
  // other active header).
  [[nodiscard]] std::vector<u8> encode() const;
  static Scoreboard decode(std::span<const u8> bytes);

  friend bool operator==(const Scoreboard&, const Scoreboard&) = default;
};

// Summarizes a switch's current allocator + hotness state. This is what
// SwitchNode::set_scoreboard_provider should serialize (fabric::Topology
// wires it for every switch it builds).
Scoreboard build_scoreboard(controller::SwitchNode& node);

}  // namespace artmt::fabric
