// Integration tests for the exemplar services' active programs executed
// against a real pipeline + runtime + controller (no network): the cache
// query/populate pair, the frequent-item monitor, and the Cheetah LB.
#include <gtest/gtest.h>

#include "apps/kv.hpp"
#include "apps/programs.hpp"
#include "client/compiler.hpp"
#include "controller/controller.hpp"
#include "rmt/hash.hpp"

namespace artmt::apps {
namespace {

using client::ServiceSpec;
using client::SynthesizedProgram;
using packet::ActivePacket;
using packet::ArgumentHeader;
using runtime::Verdict;

class Fixture : public ::testing::Test {
 protected:
  Fixture()
      : pipeline_(rmt::PipelineConfig{}), runtime_(pipeline_),
        controller_(pipeline_, runtime_) {}

  Fid admit(const alloc::AllocationRequest& request) {
    const auto result = controller_.admit(request);
    EXPECT_TRUE(result.admitted);
    if (controller_.has_pending()) {
      controller_.timeout_pending();
      controller_.apply_pending();
    }
    return result.fid;
  }

  SynthesizedProgram synth(const ServiceSpec& spec, Fid fid) {
    return client::synthesize(spec, *controller_.mutant_of(fid),
                              controller_.response_for(fid), 20);
  }

  runtime::ExecutionResult run(Fid fid, const active::Program& program,
                               ArgumentHeader args, ActivePacket& out,
                               const runtime::PacketMeta& meta = {}) {
    out = ActivePacket::make_program(fid, args, program);
    out = ActivePacket::parse(out.serialize());
    return runtime_.execute(out, meta);
  }

  rmt::Pipeline pipeline_;
  runtime::ActiveRuntime runtime_;
  controller::Controller controller_;
};

// ---------- program shapes ----------

TEST(Programs, Listing1MatchesPaperLayout) {
  const auto p = cache_query_program();
  EXPECT_EQ(p.size(), 11u);
  const auto a = active::analyze(p);
  EXPECT_EQ(a.access_positions, (std::vector<u32>{1, 4, 8}));
  EXPECT_EQ(a.rts_positions, (std::vector<u32>{7}));
}

TEST(Programs, PopulateAlignsWithQueryViaPreload) {
  const auto p = cache_populate_program();
  EXPECT_TRUE(p.preload_mar);
  EXPECT_TRUE(p.preload_mbr);
  const auto a = active::analyze(p);
  ASSERT_EQ(a.access_positions.size(), 3u);
  // Populate accesses can always be padded out to the query's stages.
  const auto q = active::analyze(cache_query_program());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LE(a.access_positions[i], q.access_positions[i]);
  }
}

TEST(Programs, MonitorRecirculatesOnlyOnStore) {
  const auto p = hh_monitor_program();
  EXPECT_EQ(p.size(), 40u);
  const auto a = active::analyze(p);
  EXPECT_EQ(a.access_positions,
            (std::vector<u32>{7, 12, 16, 24, 29, 36}));
  // The early-out (CRETI at 19) keeps the common case in one pass.
}

TEST(Programs, LbProgramsAssemble) {
  EXPECT_EQ(active::analyze(lb_select_program()).access_positions,
            (std::vector<u32>{2, 5, 12}));
  EXPECT_TRUE(active::analyze(lb_route_program()).access_positions.empty());
}

// ---------- cache semantics ----------

class CacheFixture : public Fixture {
 protected:
  CacheFixture() {
    fid_ = admit(cache_request());
    query_ = synth(cache_service_spec(), fid_);
    ServiceSpec populate_spec;
    populate_spec.program = cache_populate_program();
    populate_spec.demands = {1, 1, 1};
    populate_ = synth(populate_spec, fid_);
  }

  u32 bucket_of(u64 key) const {
    const std::array<Word, 2> halves{key_half0(key), key_half1(key)};
    return rmt::hash_words(halves, 6) % query_.bucket_count();
  }

  void populate(u64 key, u32 value) {
    ArgumentHeader args;
    args.args[0] = populate_.access_base[0] + bucket_of(key);
    args.args[1] = key_half0(key);
    args.args[2] = key_half1(key);
    args.args[3] = value;
    ActivePacket pkt;
    const auto res = run(fid_, populate_.program, args, pkt);
    ASSERT_EQ(res.verdict, Verdict::kReturnToSender);  // populate ack
  }

  // Returns (hit, value).
  std::pair<bool, u32> query(u64 key) {
    ArgumentHeader args;
    args.args[0] = query_.access_base[0] + bucket_of(key);
    args.args[1] = key_half0(key);
    args.args[2] = key_half1(key);
    ActivePacket pkt;
    const auto res = run(fid_, query_.program, args, pkt);
    if (res.verdict == Verdict::kReturnToSender) {
      return {true, pkt.arguments->args[0]};
    }
    return {false, 0};
  }

  Fid fid_ = 0;
  SynthesizedProgram query_;
  SynthesizedProgram populate_;
};

TEST_F(CacheFixture, MissBeforePopulate) {
  const auto [hit, value] = query(0xdeadbeefcafeULL);
  EXPECT_FALSE(hit);
}

TEST_F(CacheFixture, HitAfterPopulate) {
  populate(0xdeadbeefcafeULL, 777);
  const auto [hit, value] = query(0xdeadbeefcafeULL);
  EXPECT_TRUE(hit);
  EXPECT_EQ(value, 777u);
}

TEST_F(CacheFixture, PartialKeyMatchIsMiss) {
  populate(0x1111111122222222ULL, 1);
  // Same first half, different second half: the second CRET fires.
  const auto [hit, value] = query(0x1111111133333333ULL);
  EXPECT_FALSE(hit);
}

TEST_F(CacheFixture, DifferentBucketsIndependent) {
  u64 a = 1, b = 2;
  // Find two keys in different buckets.
  while (bucket_of(a) == bucket_of(b)) ++b;
  populate(a, 10);
  populate(b, 20);
  EXPECT_EQ(query(a).second, 10u);
  EXPECT_EQ(query(b).second, 20u);
}

TEST_F(CacheFixture, CollisionLastWriterWins) {
  // Two keys forced into the same bucket: the second populate evicts.
  u64 a = 100, b = 101;
  while (bucket_of(b) != bucket_of(a)) ++b;
  populate(a, 1);
  populate(b, 2);
  EXPECT_FALSE(query(a).first);
  EXPECT_TRUE(query(b).first);
}

TEST_F(CacheFixture, QueryRunsInOnePass) {
  populate(42, 1);
  ArgumentHeader args;
  args.args[0] = query_.access_base[0] + bucket_of(42);
  args.args[1] = key_half0(42);
  args.args[2] = key_half1(42);
  ActivePacket pkt;
  const auto res = run(fid_, query_.program, args, pkt);
  // Listing 1: 11 instructions < 20 stages and RTS in ingress.
  EXPECT_EQ(res.passes, 1u);
}

TEST_F(CacheFixture, HitRateTracksZipfTopMass) {
  // Populate the top-64 keys of a Zipf universe and measure the hit rate
  // over draws: it should approximate the popularity mass of the top 64.
  const u32 kHot = 64;
  for (u32 rank = 0; rank < kHot; ++rank) {
    populate(0xa000000000ULL + rank, rank);
  }
  // Query hot and cold keys; hot ones must all hit.
  u32 hits = 0;
  for (u32 rank = 0; rank < kHot; ++rank) {
    if (query(0xa000000000ULL + rank).first) ++hits;
  }
  // A few collisions within the hot set are possible (last-writer-wins).
  EXPECT_GT(hits, kHot * 3 / 4);
  EXPECT_FALSE(query(0xb000000000ULL).first);
}

// ---------- frequent-item monitor semantics ----------

class HhFixture : public Fixture {
 protected:
  HhFixture() {
    fid_ = admit(hh_request());
    monitor_ = synth(hh_service_spec(), fid_);
  }

  runtime::ExecutionResult observe(u64 key) {
    ArgumentHeader args;
    args.args[0] = key_half0(key);
    args.args[1] = key_half1(key);
    ActivePacket pkt;
    return run(fid_, monitor_.program, args, pkt);
  }

  // Reads the stored key/threshold for `key`'s bucket directly.
  struct Bucket {
    Word key0, key1, threshold;
  };
  Bucket bucket_for(u64 key) {
    const std::array<Word, active::kHashdataWords> hashdata{
        key_half0(key), key_half1(key), 0, 0};
    const auto& mutant = *controller_.mutant_of(fid_);
    Bucket out{};
    const auto read = [&](u32 access) {
      const u32 stage = mutant[access] % 20;
      const auto* entry = pipeline_.stage(stage).lookup(fid_);
      const u32 index = rmt::hash_words(hashdata, 2) & entry->mask;
      return pipeline_.stage(stage).memory().read(entry->offset + index);
    };
    out.threshold = read(2);
    out.key0 = read(3);
    out.key1 = read(4);
    return out;
  }

  Fid fid_ = 0;
  SynthesizedProgram monitor_;
};

TEST_F(HhFixture, ColdKeyCompletesInOnePass) {
  // First observation: sketch = 1 > threshold 0 -> stores the key, which
  // needs the second pass.
  const auto res = observe(0x1234);
  EXPECT_EQ(res.verdict, Verdict::kForward);
  EXPECT_EQ(res.passes, 2u);
}

TEST_F(HhFixture, StoresKeyAndRaisesThreshold) {
  observe(0xabcdULL);
  const auto bucket = bucket_for(0xabcdULL);
  EXPECT_EQ(join_key(bucket.key0, bucket.key1), 0xabcdULL);
  EXPECT_EQ(bucket.threshold, 1u);
}

TEST_F(HhFixture, RepeatedKeyKeepsWinning) {
  for (int i = 0; i < 5; ++i) observe(0xabcdULL);
  const auto bucket = bucket_for(0xabcdULL);
  EXPECT_EQ(join_key(bucket.key0, bucket.key1), 0xabcdULL);
  EXPECT_EQ(bucket.threshold, 5u);
}

TEST_F(HhFixture, InfrequentKeyDoesNotEvictFrequentOne) {
  for (int i = 0; i < 10; ++i) observe(0x1111ULL);
  // A colliding-bucket challenger with fewer observations must not evict.
  // (Use the same key-bucket by construction: same key tables are indexed
  // by hash engine 2, so find a key with the same table index.)
  const auto& mutant = *controller_.mutant_of(fid_);
  const u32 stage = mutant[2] % 20;
  const auto* entry = pipeline_.stage(stage).lookup(fid_);
  const std::array<Word, 4> base{key_half0(0x1111ULL), key_half1(0x1111ULL),
                                 0, 0};
  const u32 want = rmt::hash_words(base, 2) & entry->mask;
  u64 challenger = 0x2222;
  for (;; ++challenger) {
    const std::array<Word, 4> h{key_half0(challenger),
                                key_half1(challenger), 0, 0};
    if ((rmt::hash_words(h, 2) & entry->mask) == want &&
        challenger != 0x1111ULL) {
      break;
    }
  }
  observe(challenger);  // sketch 1 <= threshold 10: early return
  const auto bucket = bucket_for(0x1111ULL);
  EXPECT_EQ(join_key(bucket.key0, bucket.key1), 0x1111ULL);
  EXPECT_EQ(bucket.threshold, 10u);
}

TEST_F(HhFixture, NonHeavyObservationIsOnePass) {
  for (int i = 0; i < 3; ++i) observe(0x7777ULL);
  // Build a distinct key that shares the threshold bucket (as above).
  const auto& mutant = *controller_.mutant_of(fid_);
  const u32 stage = mutant[2] % 20;
  const auto* entry = pipeline_.stage(stage).lookup(fid_);
  const std::array<Word, 4> base{key_half0(0x7777ULL), key_half1(0x7777ULL),
                                 0, 0};
  const u32 want = rmt::hash_words(base, 2) & entry->mask;
  u64 other = 0x9999;
  for (;; ++other) {
    const std::array<Word, 4> h{key_half0(other), key_half1(other), 0, 0};
    if ((rmt::hash_words(h, 2) & entry->mask) == want && other != 0x7777ULL) {
      break;
    }
  }
  const auto res = observe(other);
  EXPECT_EQ(res.passes, 1u);  // CRETI fired before the store pass
}

TEST_F(HhFixture, CmsCountsAcrossBothRows) {
  // Each observation bumps both CMS rows.
  observe(0x4242ULL);
  const auto& mutant = *controller_.mutant_of(fid_);
  const std::array<Word, 4> h{key_half0(0x4242ULL), key_half1(0x4242ULL), 0,
                              0};
  for (const u32 access : {0u, 1u}) {
    const u32 stage = mutant[access] % 20;
    const auto* entry = pipeline_.stage(stage).lookup(fid_);
    const u32 index = rmt::hash_words(h, access) & entry->mask;
    EXPECT_GE(pipeline_.stage(stage).memory().read(entry->offset + index),
              1u);
  }
}

// ---------- Cheetah LB semantics ----------

class LbFixture : public Fixture {
 protected:
  LbFixture() {
    fid_ = admit(lb_request());
    select_ = synth(lb_service_spec(), fid_);
    // Configure: pool mask and pool entries written straight into memory
    // (the service normally does this via memsync capsules).
    const auto& mutant = *controller_.mutant_of(fid_);
    const auto install = [&](u32 access, u32 index, Word value) {
      const u32 stage = mutant[access] % 20;
      const auto* entry = pipeline_.stage(stage).lookup(fid_);
      pipeline_.stage(stage).memory().write(entry->start_word + index, value);
    };
    install(0, 0, kPoolSize - 1);  // pool mask
    for (u32 i = 0; i < kPoolSize; ++i) install(2, i, kFirstPort + i);
  }

  static constexpr u32 kPoolSize = 4;
  static constexpr u32 kFirstPort = 10;

  runtime::ExecutionResult send_syn(u32 flow, ActivePacket& pkt) {
    ArgumentHeader args;
    args.args[0] = select_.access_base[0];
    args.args[1] = select_.access_base[1];
    args.args[2] = select_.access_base[2];
    runtime::PacketMeta meta;
    meta.five_tuple = {flow, flow * 7, flow * 13, 0};
    return run(fid_, select_.program, args, pkt, meta);
  }

  runtime::ExecutionResult send_data(u32 flow, Word cookie,
                                     ActivePacket& pkt) {
    ArgumentHeader args;
    args.args[0] = cookie;
    runtime::PacketMeta meta;
    meta.five_tuple = {flow, flow * 7, flow * 13, 0};
    return run(fid_, lb_route_program(), args, pkt, meta);
  }

  Fid fid_ = 0;
  SynthesizedProgram select_;
};

TEST_F(LbFixture, SynPicksServersRoundRobin) {
  std::vector<Word> picks;
  for (u32 flow = 1; flow <= 8; ++flow) {
    ActivePacket pkt;
    const auto res = send_syn(flow, pkt);
    ASSERT_EQ(res.verdict, Verdict::kForward);
    ASSERT_TRUE(res.phv.dst_overridden);
    picks.push_back(res.phv.dst_value);
  }
  // Round robin over 4 servers starting after the first increment.
  for (std::size_t i = 0; i < picks.size(); ++i) {
    EXPECT_EQ(picks[i], kFirstPort + (i + 1) % kPoolSize);
  }
}

TEST_F(LbFixture, CookieRoutesDataToSameServer) {
  for (u32 flow = 1; flow <= 10; ++flow) {
    ActivePacket syn;
    const auto syn_res = send_syn(flow, syn);
    const Word server = syn_res.phv.dst_value;
    const Word cookie = syn.arguments->args[3];

    ActivePacket data;
    const auto data_res = send_data(flow, cookie, data);
    ASSERT_TRUE(data_res.phv.dst_overridden);
    EXPECT_EQ(data_res.phv.dst_value, server) << "flow " << flow;
  }
}

TEST_F(LbFixture, WrongCookieRoutesElsewhere) {
  ActivePacket syn;
  const auto res = send_syn(1, syn);
  ActivePacket data;
  const auto wrong = send_data(1, syn.arguments->args[3] ^ 0x5, data);
  EXPECT_NE(wrong.phv.dst_value, res.phv.dst_value);
}

TEST_F(LbFixture, RoutingIsStateless) {
  // No memory accesses in the route program: works for any FID.
  ActivePacket syn;
  send_syn(3, syn);
  const Word cookie = syn.arguments->args[3];
  ArgumentHeader args;
  args.args[0] = cookie;
  runtime::PacketMeta meta;
  meta.five_tuple = {3, 21, 39, 0};
  ActivePacket pkt = ActivePacket::make_program(999, args, lb_route_program());
  const auto res = runtime_.execute(pkt, meta);
  EXPECT_TRUE(res.phv.dst_overridden);
}

}  // namespace
}  // namespace artmt::apps
