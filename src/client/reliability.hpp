// Unified retransmission for the client side of the paper's idempotent
// capsule protocols (Section 4.3, Appendix C): memory-sync reads/writes,
// cache populate write-backs, and the extraction handshake all ride on
// "send, wait, resend" loops that used to be re-implemented per app. A
// ReliabilityTracker owns that loop once: per-capsule timeout,
// exponential backoff with deterministic jitter, a retry budget, and a
// give-up callback. IDs are caller-chosen (request ids); the tracker
// never touches the wire itself -- it calls back into the owner to
// resend, so capsules keep their app-specific framing.
//
// Timers run on the owning node's simulator (supplied lazily via a
// callback, so a tracker can be constructed before its service is
// attached). Jitter comes from a seed-derived Rng substream; draws happen
// in the node's own event order, so schedules are deterministic under
// both engines and any shard count.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "netsim/simulator.hpp"

namespace artmt::telemetry {
class MetricsRegistry;
}  // namespace artmt::telemetry

namespace artmt::client {

class ReliabilityTracker {
 public:
  struct Options {
    SimTime rto = 5 * kMillisecond;        // first retransmit timeout
    double backoff = 2.0;                  // rto multiplier per attempt
    SimTime max_rto = 80 * kMillisecond;   // backoff ceiling
    u32 retry_budget = 12;                 // resends before giving up
    double jitter = 0.1;                   // deadline *= 1 + U(-j, +j)
    u64 seed = 0x7e11ab1e;                 // jitter substream root
  };

  struct Stats {
    u64 tracked = 0;
    u64 acked = 0;
    u64 retransmits = 0;
    u64 recovered = 0;  // acked after at least one retransmit
    u64 give_ups = 0;
  };

  using ResendFn = std::function<void(u32 id, u32 attempt)>;

  // `name` labels exported metrics; `sim` resolves the simulator at
  // schedule time (e.g. [this] -> node().sim()).
  ReliabilityTracker(std::string name,
                     std::function<netsim::Simulator&()> sim);
  ReliabilityTracker(std::string name,
                     std::function<netsim::Simulator&()> sim, Options opts);

  // Starts (or restarts) tracking `id`. `resend` fires on every timeout
  // until ack/cancel/give-up; the caller performs the initial send.
  void track(u32 id, ResendFn resend);
  // Stops tracking; returns true if `id` was outstanding.
  bool ack(u32 id);
  // Forgets `id` without counting an ack.
  void cancel(u32 id);
  void cancel_all();

  [[nodiscard]] bool tracking(u32 id) const { return entries_.contains(id); }
  [[nodiscard]] std::size_t outstanding() const { return entries_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  // Replaces the schedule parameters (and reseeds the jitter stream);
  // applies to entries tracked afterwards.
  void set_options(Options opts);

  // Fires after the retry budget is exhausted (the entry is already
  // forgotten when this runs; it may re-track).
  std::function<void(u32 id)> on_give_up;
  // Optional gate: while it returns true, expiries push their deadline
  // out by one rto instead of resending (used to pause write-backs while
  // the service is mid-reallocation, mirroring Section 5's transmission
  // pause). Paused expiries never charge the retry budget.
  std::function<bool()> paused;

  // Quiescent-only: mirrors stats into `metrics` under component
  // "reliability", labelled with `fid` -- counters
  // "<name>_retransmits" / "<name>_recovered" / "<name>_give_ups" plus a
  // "backoff_ns" histogram of every retransmit's timeout.
  void export_metrics(telemetry::MetricsRegistry& metrics, i32 fid) const;

 private:
  struct Entry {
    SimTime deadline = 0;
    SimTime rto = 0;
    u32 attempts = 0;
    u64 span = 0;  // span of the latest transmission attempt
    ResendFn resend;
  };

  [[nodiscard]] SimTime jittered(SimTime rto);
  void arm();
  void on_timer(u64 generation);

  std::string name_;
  std::function<netsim::Simulator&()> sim_;
  Options opts_;
  Rng rng_;
  std::map<u32, Entry> entries_;
  Stats stats_;
  std::vector<u64> backoff_samples_;  // rto of each retransmit, ns
  bool timer_armed_ = false;
  SimTime timer_at_ = 0;
  u64 timer_generation_ = 0;
};

}  // namespace artmt::client
