// Tests for the leveled logger (sink capture, threshold filtering, the
// ScopedLogLevel guard) and the stopwatch.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "common/stopwatch.hpp"

namespace artmt {
namespace {

// Installs a capturing sink for the test's lifetime, so assertions read
// structured lines instead of scraping a redirected stderr.
class LoggingTest : public ::testing::Test {
 protected:
  LoggingTest() : previous_(log_level()) {
    set_log_sink([this](LogLevel level, const std::string& line) {
      levels_.push_back(level);
      lines_.push_back(line);
    });
  }
  ~LoggingTest() override {
    set_log_sink({});
    set_log_level(previous_);
  }

  [[nodiscard]] std::string joined() const {
    std::string all;
    for (const std::string& line : lines_) {
      all += line;
      all += '\n';
    }
    return all;
  }

  LogLevel previous_;
  std::vector<LogLevel> levels_;
  std::vector<std::string> lines_;
};

TEST_F(LoggingTest, ThresholdFilters) {
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  log(LogLevel::kDebug, "hidden");
  log(LogLevel::kInfo, "hidden too");
  log(LogLevel::kWarn, "visible ", 42);
  log(LogLevel::kError, "also visible");
  const std::string captured = joined();
  EXPECT_EQ(captured.find("hidden"), std::string::npos);
  EXPECT_NE(captured.find("visible 42"), std::string::npos);
  EXPECT_NE(captured.find("[WARN ]"), std::string::npos);
  EXPECT_NE(captured.find("[ERROR]"), std::string::npos);
  ASSERT_EQ(levels_.size(), 2u);
  EXPECT_EQ(levels_[0], LogLevel::kWarn);
  EXPECT_EQ(levels_[1], LogLevel::kError);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  log(LogLevel::kError, "nope");
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LoggingTest, ConcatenatesMixedTypes) {
  set_log_level(LogLevel::kDebug);
  log(LogLevel::kInfo, "x=", 1, " y=", 2.5, " z=", "s");
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("x=1 y=2.5 z=s"), std::string::npos);
}

TEST_F(LoggingTest, ScopedLogLevelRestoresOnExit) {
  set_log_level(LogLevel::kOff);
  {
    ScopedLogLevel scope(LogLevel::kDebug);
    EXPECT_EQ(log_level(), LogLevel::kDebug);
    log(LogLevel::kDebug, "inside scope");
  }
  EXPECT_EQ(log_level(), LogLevel::kOff);
  log(LogLevel::kError, "after scope");
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("inside scope"), std::string::npos);
}

TEST_F(LoggingTest, ScopedLogLevelNests) {
  set_log_level(LogLevel::kWarn);
  {
    ScopedLogLevel outer(LogLevel::kInfo);
    {
      ScopedLogLevel inner(LogLevel::kError);
      EXPECT_EQ(log_level(), LogLevel::kError);
    }
    EXPECT_EQ(log_level(), LogLevel::kInfo);
  }
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST_F(LoggingTest, ConcurrentEmittersProduceWholeLines) {
  set_log_level(LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kLines = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        log(LogLevel::kInfo, "thread=", t, " line=", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(lines_.size(),
            static_cast<std::size_t>(kThreads) * kLines);
  for (const std::string& line : lines_) {
    // Every captured line is one complete message, never a splice.
    EXPECT_NE(line.find("thread="), std::string::npos);
    EXPECT_NE(line.find(" line="), std::string::npos);
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double ms = watch.elapsed_ms();
  EXPECT_GE(ms, 9.0);
  EXPECT_LT(ms, 500.0);
  EXPECT_NEAR(watch.elapsed_us(), watch.elapsed_ms() * 1000.0,
              watch.elapsed_ms() * 100.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  watch.reset();
  EXPECT_LT(watch.elapsed_ms(), 5.0);
}

}  // namespace
}  // namespace artmt
