// Structured trace export: one JSON object per line, stamped with the
// simulated clock. The sink is the single schema authority -- the
// runtime's per-stage TraceEvents, the controller's admission/release
// events, the allocator's placement decisions, and netsim frame drops all
// flow through emit(), so traces from the debugger (artmt_trace --json)
// and the simulator are diffable line-by-line.
//
// Envelope (stable field order):
//   {"v":2,"ts":<ns>,"component":"...","event":"...","fid":N, <fields...>}
// `fid` is omitted for events not attached to a flow (pass kNoFid).
//
// `v` is kTraceSchemaVersion. Every producer -- the live sink here, the
// debugger's artmt_trace --json writer, span dumps, flight-recorder dumps
// -- stamps the same constant, and parse_trace_line() rejects lines from
// another version, so the writer and the readers can never drift apart
// silently again (they did once: artmt_trace --json predated the `ts`
// field and nothing noticed until a consumer broke).
#pragma once

#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/types.hpp"
#include "telemetry/metrics.hpp"

namespace artmt::telemetry {

// Bump when the envelope's shape changes. v2 added the version stamp
// itself (v1 lines carried no "v" field).
inline constexpr u32 kTraceSchemaVersion = 2;

class TraceSink {
 public:
  // A typed key/value pair rendered into the JSON line.
  class Field {
   public:
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T> &&
                                          !std::is_same_v<T, bool>>>
    Field(std::string_view key, T v) : key_(key) {
      if constexpr (std::is_signed_v<T>) {
        kind_ = Kind::kInt;
        i_ = static_cast<i64>(v);
      } else {
        kind_ = Kind::kUint;
        u_ = static_cast<u64>(v);
      }
    }
    Field(std::string_view key, bool v) : key_(key), kind_(Kind::kBool) {
      b_ = v;
    }
    Field(std::string_view key, double v) : key_(key), kind_(Kind::kDouble) {
      d_ = v;
    }
    Field(std::string_view key, std::string_view v)
        : key_(key), kind_(Kind::kString), s_(v) {}
    Field(std::string_view key, const char* v)
        : Field(key, std::string_view(v)) {}

   private:
    friend class TraceSink;
    enum class Kind { kBool, kInt, kUint, kDouble, kString };

    std::string_view key_;
    Kind kind_;
    union {
      bool b_;
      i64 i_;
      u64 u_;
      double d_;
    };
    std::string_view s_;
  };

  explicit TraceSink(std::ostream& out) : out_(&out) {}

  // Timestamps come from this callback (the owner points it at the
  // simulator's clock); unset -> ts 0.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  void emit(std::string_view component, std::string_view event, i64 fid,
            std::initializer_list<Field> fields = {});

  [[nodiscard]] u64 emitted() const { return emitted_; }

 private:
  std::ostream* out_;
  std::function<SimTime()> clock_;
  std::mutex mu_;
  u64 emitted_ = 0;
};

// Process-wide trace sink; components emit only while one is installed
// (nullptr detaches -- the default, so tracing costs one load + branch on
// the paths that offer it).
void set_trace_sink(TraceSink* sink);
TraceSink* trace_sink();

// One parsed trace line. Values are stored as the raw JSON token text
// (strings unescaped); typed accessors convert on demand. A flat map is
// all the envelope needs -- emit() never nests.
struct TraceRecord {
  u32 version = 0;
  SimTime ts = 0;
  std::string component;
  std::string event;
  i32 fid = kNoFid;
  std::map<std::string, std::string> fields;

  [[nodiscard]] bool has(std::string_view key) const;
  // 0 when missing or non-numeric.
  [[nodiscard]] u64 unum(std::string_view key) const;
  [[nodiscard]] i64 num(std::string_view key) const;
  // "" when missing.
  [[nodiscard]] std::string_view str(std::string_view key) const;
};

// Parses one emit()-envelope line into `out`. Returns false (and sets
// *error when non-null) on malformed JSON or a schema-version mismatch --
// the round-trip contract every trace producer is tested against.
bool parse_trace_line(std::string_view line, TraceRecord* out,
                      std::string* error = nullptr);

}  // namespace artmt::telemetry
