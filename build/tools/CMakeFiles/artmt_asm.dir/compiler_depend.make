# Empty compiler generated dependencies file for artmt_asm.
# This may be replaced when dependencies are built.
