file(REMOVE_RECURSE
  "CMakeFiles/artmt_p4gen_cli.dir/artmt_p4gen.cpp.o"
  "CMakeFiles/artmt_p4gen_cli.dir/artmt_p4gen.cpp.o.d"
  "artmt_p4gen"
  "artmt_p4gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmt_p4gen_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
