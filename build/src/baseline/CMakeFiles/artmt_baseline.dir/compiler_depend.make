# Empty compiler generated dependencies file for artmt_baseline.
# This may be replaced when dependencies are built.
