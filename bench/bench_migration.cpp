// Background-migration bench gate (BENCH_migration.json), two sections:
//
//  A. Controller-level soak: a 10k-op PoissonChurn stream over a
//     contended 20x64-block pipeline, replayed twice -- migration off
//     and migration on (hotness-driven demotions plus fragmentation-
//     driven re-slides between churn bursts, every handshake driven
//     through force_finalize). Headline gate: migration-on sustains
//     >= 10% more utilization OR >= 15% fewer admission rejections.
//
//  B. End-to-end disruption: four cache tenants on one switch with the
//     background engine enabled; two tenants go idle mid-run (cold ->
//     demoted) and resume (hot -> promoted), every share move disturbing
//     the others. Per-tenant windowed hit rates plus move events feed
//     analyze_disruption: p99 dip depth and recovery time are reported
//     and gated. The same scenario must produce byte-identical merged
//     telemetry and reply digests at shards 1/2/4, and must survive a
//     2% uniform-loss FaultPlan.
//
// CI smoke mode: ARTMT_BENCH_QUICK=1 shrinks both sections and skips the
// perf gates; BENCH_migration.json is NOT rewritten so a smoke run never
// clobbers committed full-run numbers.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "alloc/hotness.hpp"
#include "apps/cache_service.hpp"
#include "apps/kv.hpp"
#include "apps/server_node.hpp"
#include "client/client_node.hpp"
#include "controller/controller.hpp"
#include "controller/migration.hpp"
#include "controller/switch_node.hpp"
#include "faults/injector.hpp"
#include "netsim/sharded.hpp"
#include "rmt/pipeline.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/heatmap.hpp"
#include "workload/churn.hpp"
#include "workload/zipf.hpp"

namespace artmt {
namespace {

bool quick_mode() {
  static const bool quick = std::getenv("ARTMT_BENCH_QUICK") != nullptr;
  return quick;
}

// --- Section A: controller-level churn soak -------------------------------

// Small-footprint service mix, tuned to fragment: churning 1-block
// services leave single-block holes that strand the 2-block demands.
alloc::AllocationRequest request_for_kind(workload::AppKind kind) {
  alloc::AllocationRequest r;
  r.program_length = 12;
  switch (kind) {
    case workload::AppKind::kCache:  // elastic, min 1 / cap 4 per stage
      r.accesses = {alloc::AccessDemand{5, 1, -1}};
      r.elastic = true;
      r.elastic_cap_blocks = 4;
      break;
    case workload::AppKind::kHeavyHitter:  // two pinned two-block regions
      r.accesses = {alloc::AccessDemand{3, 2, -1},
                    alloc::AccessDemand{7, 2, -1}};
      break;
    case workload::AppKind::kLoadBalancer:  // single pinned block
      r.accesses = {alloc::AccessDemand{4, 1, -1}};
      break;
  }
  return r;
}

// Deterministic 25% hot split by FID hash: hot services keep their
// hotness score alive, the rest decay to cold and become demotion fodder.
bool fid_is_hot(Fid fid) {
  return (static_cast<u64>(fid) * 2654435761ull >> 4) % 4 == 0;
}

struct SoakSide {
  double sustained_utilization = 0.0;  // mean over the second half
  u64 admissions = 0;
  u64 rejections = 0;
  controller::ControllerStats stats;
};

struct SoakResult {
  std::size_t events = 0;
  SoakSide off;
  SoakSide on;
  double utilization_gain_pct = 0.0;
  double rejection_reduction_pct = 0.0;
  bool gate_pass = false;
};

SoakSide run_soak_side(const std::vector<workload::ChurnEvent>& events,
                       bool migration_on) {
  rmt::PipelineConfig pipe;
  pipe.words_per_stage = 64 * pipe.block_words;  // 64 blocks/stage: contended
  pipe.tcam_entries_per_stage = 2048;
  rmt::Pipeline pipeline(pipe);
  runtime::ActiveRuntime runtime(pipeline);
  // Batched+coalesced driver updates: the deployment configuration the
  // migration engine assumes (see the Fig. 8a composition shift in
  // EXPERIMENTS.md) -- remaps ride the same ranged-batch cost model as
  // admissions.
  controller::CostModel costs;
  costs.batched_updates = true;
  controller::Controller ctrl(pipeline, runtime, alloc::Scheme::kWorstFit,
                              alloc::MutantPolicy::most_constrained(), costs);
  ctrl.set_compute_model(alloc::ComputeModel::deterministic());

  telemetry::StageHeatmap heatmap(pipe.logical_stages);
  alloc::HotnessTable hotness;
  controller::MigrationPolicy policy;
  policy.max_plans_per_cycle = 16;
  policy.cooldown_cycles = 3;
  policy.frag_threshold = 0.9;
  policy.min_frag_blocks = 2;
  controller::MigrationPlanner planner(policy);
  controller::RemapQueue queue(64);

  std::map<u64, Fid> fid_of_service;
  std::vector<double> utilization;
  constexpr std::size_t kCycleEvery = 5;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& event = events[i];
    if (event.type == workload::ChurnEvent::Type::kArrival) {
      const auto result = ctrl.admit(request_for_kind(event.kind));
      if (result.pending) ctrl.force_finalize();
      if (result.admitted) fid_of_service.emplace(event.service, result.fid);
    } else {
      const auto it = fid_of_service.find(event.service);
      if (it != fid_of_service.end()) {
        ctrl.release(it->second);
        hotness.forget(static_cast<i32>(it->second));
        queue.drop_fid(it->second);
        fid_of_service.erase(it);
      }
    }

    if ((i + 1) % kCycleEvery != 0) continue;
    // One migration epoch: synthetic traffic (hot services loud, cold
    // ones a trickle so every resident has a hotness row), then the
    // planner + at most one cycle's worth of executed remaps.
    for (const Fid fid : ctrl.resident_fids()) {
      const u32 reads = fid_is_hot(fid) ? 64 : 1;
      for (u32 k = 0; k < reads; ++k) {
        heatmap.record_read(0, static_cast<i32>(fid));
      }
    }
    hotness.tick(heatmap);
    if (migration_on) {
      planner.plan(ctrl, hotness, queue);
      u32 steps = 0;
      while (steps < policy.max_plans_per_cycle) {
        const auto request = queue.pop();
        if (!request) break;
        if (!ctrl.resident(request->fid)) continue;
        const auto move = ctrl.migrate(*request);
        if (move.pending) ctrl.force_finalize();
        ++steps;
      }
    }
    utilization.push_back(ctrl.allocator().utilization());
  }

  SoakSide side;
  side.stats = ctrl.stats();
  side.admissions = side.stats.admissions;
  side.rejections = side.stats.rejections;
  double sum = 0.0;
  const std::size_t half = utilization.size() / 2;
  for (std::size_t i = half; i < utilization.size(); ++i) {
    sum += utilization[i];
  }
  side.sustained_utilization =
      utilization.size() > half
          ? sum / static_cast<double>(utilization.size() - half)
          : 0.0;
  return side;
}

SoakResult run_soak(std::size_t event_count) {
  workload::ChurnConfig churn;
  churn.arrival_rate = 40.0;
  churn.mean_lifetime = 16.0;  // ~640 residents vs 1280 blocks: contended
  churn.kind_weights = {0.2, 0.4, 0.4};
  churn.seed = 9;
  const auto events = workload::PoissonChurn::generate(churn, event_count);

  SoakResult r;
  r.events = event_count;
  r.off = run_soak_side(events, false);
  r.on = run_soak_side(events, true);
  r.utilization_gain_pct =
      r.off.sustained_utilization > 0.0
          ? 100.0 * (r.on.sustained_utilization - r.off.sustained_utilization) /
                r.off.sustained_utilization
          : 0.0;
  r.rejection_reduction_pct =
      r.off.rejections > 0
          ? 100.0 *
                (static_cast<double>(r.off.rejections) -
                 static_cast<double>(r.on.rejections)) /
                static_cast<double>(r.off.rejections)
          : 0.0;
  r.gate_pass =
      r.utilization_gain_pct >= 10.0 || r.rejection_reduction_pct >= 15.0;
  return r;
}

// --- Section B: end-to-end disruption under live migration ----------------

constexpr packet::MacAddr kSwitchMac = 0x0000aa;
constexpr packet::MacAddr kServerMac = 0x0000bb;
constexpr packet::MacAddr kClientMacBase = 0x000100;

struct Digest {
  u64 h = 1469598103934665603ull;
  void mix(u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

struct ScenarioKnobs {
  u32 shards = 1;
  u32 universe = 20'000;
  double rps = 2'000.0;
  SimTime stop = 12 * kSecond;
  // Idle windows: tenant 1 pauses in [pause1, resume1), tenant 2 in
  // [pause2, resume2). resume2 == 0 disables the second cycle.
  SimTime pause1 = 3 * kSecond;
  SimTime resume1 = 6 * kSecond;
  SimTime pause2 = 7 * kSecond;
  SimTime resume2 = 9'500 * kMillisecond;
  const faults::FaultPlan* plan = nullptr;
};

// One cache tenant with a pausable Zipf request stream, windowed hit
// rates, and a move-event log (the disruption-analysis input).
struct Tenant {
  Tenant(netsim::Network& net, controller::SwitchNode& sw, u32 index,
         u32 universe, double alpha, double rps, u64 seed)
      : net(&net),
        index(index),
        zipf(universe, alpha),
        rng(seed),
        gap_ns(static_cast<SimTime>(1e9 / rps)) {
    client = std::make_shared<client::ClientNode>(
        "tenant" + std::to_string(index), kClientMacBase + index, kSwitchMac);
    net.attach(client);
    net.connect(sw, index + 1, *client, 0);
    sw.bind(kClientMacBase + index, index + 1);
    cache = std::make_shared<apps::CacheService>("cache" + std::to_string(index),
                                                 kServerMac);
    client->register_service(cache);
    client->on_passive = [this](netsim::Frame& frame) {
      const auto msg = apps::KvMessage::parse(std::span<const u8>(frame).subspan(
          packet::EthernetHeader::kWireSize));
      if (msg) cache->handle_server_reply(*msg);
    };
    // The reply digest is PER TENANT: tenants live on different shards,
    // so a digest shared across them would mix in cross-shard completion
    // order (racy, and different between shard counts). Each tenant's
    // stream is shard-local and ordered; the scenario combines the four
    // digests in tenant order after the run.
    cache->on_result = [this](u32 seq, u64 key, u32 value, bool hit) {
      record(hit);
      replies.mix(static_cast<u64>(this->net->simulator().now()));
      replies.mix(seq);
      replies.mix(key);
      replies.mix(value);
      replies.mix(hit ? 1 : 0);
    };
    cache->on_relocated = [this] {
      move_events.push_back(windows.size());
      // An idle tenant does not repopulate: there is no traffic to serve,
      // and the write-back would read as recovered hotness.
      if (repopulate_on_move) cache->populate(hot_set_for_allocation());
    };
  }

  u64 key_for_rank(u32 rank) const {
    return (static_cast<u64>(index + 1) << 40) ^
           workload::ZipfGenerator::key_for_rank(rank);
  }

  void seed_server(apps::ServerNode& server) const {
    for (u32 rank = 0; rank < zipf.universe(); ++rank) {
      server.put(key_for_rank(rank), rank + 1);
    }
  }

  std::vector<std::pair<u64, u32>> hot_set_for_allocation() const {
    const u32 k = std::min(cache->bucket_count(), zipf.universe());
    std::vector<std::pair<u64, u32>> out;
    out.reserve(k);
    for (u32 rank = k; rank-- > 0;) {
      out.emplace_back(key_for_rank(rank), rank + 1);
    }
    return out;
  }

  void start_traffic(SimTime stop) {
    stop_time = stop;
    tick();
  }

  // Always through net->simulator(): it resolves to the owning shard's
  // clock and queue from worker context (ShardedSimulator's quiescent
  // now()/schedule_after are stale mid-run).
  void tick() {
    if (net->simulator().now() >= stop_time) return;
    cache->get(key_for_rank(zipf.next_rank(rng)));
    net->simulator().schedule_after(gap_ns, [this] { tick(); });
  }

  void record(bool hit) {
    const SimTime now = net->simulator().now();
    if (window_start < 0) window_start = now;
    if (now - window_start >= kWindow) {
      windows.push_back(static_cast<double>(window_hits) /
                        std::max<u64>(1, window_total));
      window_start = now;
      window_hits = 0;
      window_total = 0;
    }
    ++window_total;
    if (hit) ++window_hits;
  }

  static constexpr SimTime kWindow = 50 * kMillisecond;

  netsim::Network* net;
  u32 index;
  workload::ZipfGenerator zipf;
  Rng rng;
  SimTime gap_ns;
  SimTime stop_time = 0;
  bool repopulate_on_move = true;
  std::shared_ptr<client::ClientNode> client;
  std::shared_ptr<apps::CacheService> cache;

  SimTime window_start = -1;
  u64 window_hits = 0;
  u64 window_total = 0;
  std::vector<double> windows;
  std::vector<std::size_t> move_events;
  Digest replies;
};

struct ScenarioOut {
  controller::DisruptionReport disruption;  // pooled over all tenants
  u64 move_events = 0;
  controller::SwitchNode::MigrationEngineStats engine;
  controller::ControllerStats ctrl;
  std::string snapshot;  // merged telemetry (shard-determinism key)
  u64 reply_digest = 0;
  SimTime completed_at = 0;
};

ScenarioOut run_scenario(const ScenarioKnobs& knobs) {
  netsim::ShardedSimulator ssim(knobs.shards);
  netsim::Network net(ssim);
  std::unique_ptr<faults::FaultInjector> injector;
  if (knobs.plan != nullptr) {
    injector =
        std::make_unique<faults::FaultInjector>(*knobs.plan, knobs.shards);
    net.set_transmit_hook(injector.get());
  }

  controller::SwitchNode::Config cfg;
  cfg.compute_model = alloc::ComputeModel::deterministic();
  cfg.costs.extraction_timeout = 300 * kMillisecond;
  cfg.batched_table_updates = true;  // deployment config (EXPERIMENTS.md)
  cfg.metrics = &ssim.shard_metrics(0);
  cfg.migration.enabled = true;
  cfg.migration.interval = 100 * kMillisecond;
  auto sw = std::make_shared<controller::SwitchNode>("switch", cfg);
  net.attach(sw);
  ssim.pin(*sw, 0);
  auto server = std::make_shared<apps::ServerNode>("server", kServerMac);
  net.attach(server);
  net.connect(*sw, 0, *server, 0);
  sw->bind(kServerMac, 0);

  std::vector<std::unique_ptr<Tenant>> tenants;
  for (u32 i = 0; i < 4; ++i) {
    tenants.push_back(std::make_unique<Tenant>(net, *sw, i, knobs.universe,
                                               /*alpha=*/1.0, knobs.rps,
                                               101 + i));
    tenants.back()->seed_server(*server);
  }

  // Allocation + traffic timeline. Tenants 1 and 2 pause mid-run (going
  // cold -> demoted) and resume (hot again -> promoted); tenants 0 and 3
  // run throughout and absorb every share move.
  for (u32 i = 0; i < 4; ++i) {
    Tenant& t = *tenants[i];
    const SimTime first_stop =
        i == 1 ? knobs.pause1
               : (i == 2 && knobs.resume2 > 0 ? knobs.pause2 : knobs.stop);
    t.cache->on_ready = [&t, first_stop] {
      t.cache->populate(t.hot_set_for_allocation());
      t.start_traffic(first_stop);
    };
    ssim.schedule_on(*t.client, (i + 1) * 100 * kMillisecond,
                     [&t] { t.cache->request_allocation(); });
  }
  Tenant& t1 = *tenants[1];
  ssim.schedule_on(*t1.client, knobs.pause1,
                   [&t1] { t1.repopulate_on_move = false; });
  ssim.schedule_on(*t1.client, knobs.resume1, [&t1, stop = knobs.stop] {
    t1.repopulate_on_move = true;
    t1.start_traffic(stop);
  });
  if (knobs.resume2 > 0) {
    Tenant& t2 = *tenants[2];
    ssim.schedule_on(*t2.client, knobs.pause2,
                     [&t2] { t2.repopulate_on_move = false; });
    ssim.schedule_on(*t2.client, knobs.resume2, [&t2, stop = knobs.stop] {
      t2.repopulate_on_move = true;
      t2.start_traffic(stop);
    });
  }

  ssim.run_until(knobs.stop + 2 * kSecond);

  ScenarioOut out;
  // Pool every tenant's (series, events) pair through one analysis: the
  // p99 is over all per-service disruption events, as the gate demands.
  std::vector<double> series;
  std::vector<std::size_t> events;
  for (const auto& t : tenants) {
    for (const std::size_t w : t->move_events) {
      if (w > 0 && w < t->windows.size()) {
        events.push_back(series.size() + w);
      }
    }
    series.insert(series.end(), t->windows.begin(), t->windows.end());
    out.move_events += t->move_events.size();
  }
  out.disruption = controller::analyze_disruption(series, events);
  out.engine = sw->migration_stats();
  out.ctrl = sw->controller().stats();
  Digest combined;
  for (const auto& t : tenants) combined.mix(t->replies.h);
  out.reply_digest = combined.h;
  out.completed_at = ssim.now();
  telemetry::MetricsRegistry merged;
  ssim.merge_metrics_into(merged);
  std::ostringstream os;
  merged.snapshot_json(os);
  out.snapshot = os.str();
  return out;
}

// --- JSON ------------------------------------------------------------------

std::string soak_json(const SoakResult& r) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "  \"soak\": {\n"
      "    \"events\": %zu,\n"
      "    \"migration_off\": {\"sustained_utilization\": %.4f, "
      "\"admissions\": %llu, \"rejections\": %llu},\n"
      "    \"migration_on\": {\"sustained_utilization\": %.4f, "
      "\"admissions\": %llu, \"rejections\": %llu,\n"
      "      \"migrations\": %llu, \"reslides\": %llu, \"demotions\": %llu, "
      "\"promotions\": %llu,\n"
      "      \"noops\": %llu, \"tcam_skips\": %llu, \"blocks_migrated\": "
      "%llu},\n"
      "    \"utilization_gain_pct\": %.2f,\n"
      "    \"rejection_reduction_pct\": %.2f,\n"
      "    \"gate_pass\": %s\n"
      "  }",
      r.events, r.off.sustained_utilization,
      static_cast<unsigned long long>(r.off.admissions),
      static_cast<unsigned long long>(r.off.rejections),
      r.on.sustained_utilization,
      static_cast<unsigned long long>(r.on.admissions),
      static_cast<unsigned long long>(r.on.rejections),
      static_cast<unsigned long long>(r.on.stats.migrations),
      static_cast<unsigned long long>(r.on.stats.migration_reslides),
      static_cast<unsigned long long>(r.on.stats.migration_demotions),
      static_cast<unsigned long long>(r.on.stats.migration_promotions),
      static_cast<unsigned long long>(r.on.stats.migration_noops),
      static_cast<unsigned long long>(r.on.stats.migration_tcam_skips),
      static_cast<unsigned long long>(r.on.stats.blocks_migrated),
      r.utilization_gain_pct, r.rejection_reduction_pct,
      r.gate_pass ? "true" : "false");
  return buf;
}

std::string disruption_json(const char* key, const ScenarioOut& out) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    \"%s\": {\"move_events\": %llu, \"analyzed_events\": %llu,\n"
      "      \"p99_dip\": %.3f, \"max_dip\": %.3f,\n"
      "      \"p99_recovery_windows\": %llu, \"max_recovery_windows\": %llu,\n"
      "      \"migrations\": %llu, \"demotions\": %llu, \"promotions\": %llu, "
      "\"ticks\": %llu}",
      key, static_cast<unsigned long long>(out.move_events),
      static_cast<unsigned long long>(out.disruption.events),
      out.disruption.p99_dip, out.disruption.max_dip,
      static_cast<unsigned long long>(out.disruption.p99_recovery_windows),
      static_cast<unsigned long long>(out.disruption.max_recovery_windows),
      static_cast<unsigned long long>(out.ctrl.migrations),
      static_cast<unsigned long long>(out.ctrl.migration_demotions),
      static_cast<unsigned long long>(out.ctrl.migration_promotions),
      static_cast<unsigned long long>(out.engine.ticks));
  return buf;
}

}  // namespace
}  // namespace artmt

int main() {
  using namespace artmt;
  const bool quick = quick_mode();

  // --- Section A ---
  const SoakResult soak = run_soak(quick ? 2'000 : 10'000);
  std::printf(
      "soak (%zu events): util %.4f -> %.4f (%+.1f%%), rejections %llu -> "
      "%llu (%+.1f%% fewer)\n",
      soak.events, soak.off.sustained_utilization,
      soak.on.sustained_utilization, soak.utilization_gain_pct,
      static_cast<unsigned long long>(soak.off.rejections),
      static_cast<unsigned long long>(soak.on.rejections),
      soak.rejection_reduction_pct);
  std::printf(
      "  migrations=%llu (reslides=%llu demotions=%llu promotions=%llu "
      "noops=%llu tcam_skips=%llu)\n",
      static_cast<unsigned long long>(soak.on.stats.migrations),
      static_cast<unsigned long long>(soak.on.stats.migration_reslides),
      static_cast<unsigned long long>(soak.on.stats.migration_demotions),
      static_cast<unsigned long long>(soak.on.stats.migration_promotions),
      static_cast<unsigned long long>(soak.on.stats.migration_noops),
      static_cast<unsigned long long>(soak.on.stats.migration_tcam_skips));

  // --- Section B ---
  ScenarioKnobs knobs;
  if (quick) {
    knobs.universe = 4'000;
    knobs.rps = 1'500.0;
    knobs.stop = 5 * kSecond;
    knobs.pause1 = 1'500 * kMillisecond;
    knobs.resume1 = 3 * kSecond;
    knobs.resume2 = 0;  // one idle cycle is enough for smoke
  }
  const ScenarioOut base = run_scenario(knobs);
  std::printf(
      "disruption: %llu move events, p99 dip %.3f, p99 recovery %llu "
      "windows (max %llu), %llu migrations over %llu ticks\n",
      static_cast<unsigned long long>(base.move_events), base.disruption.p99_dip,
      static_cast<unsigned long long>(base.disruption.p99_recovery_windows),
      static_cast<unsigned long long>(base.disruption.max_recovery_windows),
      static_cast<unsigned long long>(base.ctrl.migrations),
      static_cast<unsigned long long>(base.engine.ticks));
  std::printf(
      "  engine: deferred=%llu executed=%llu noops=%llu departed=%llu "
      "planned(d/p/r)=%llu/%llu/%llu cooldown_skips=%llu enqueued=%llu\n",
      static_cast<unsigned long long>(base.engine.deferred),
      static_cast<unsigned long long>(base.engine.executed),
      static_cast<unsigned long long>(base.engine.noops),
      static_cast<unsigned long long>(base.engine.departed),
      static_cast<unsigned long long>(base.engine.planner.demotions_planned),
      static_cast<unsigned long long>(base.engine.planner.promotions_planned),
      static_cast<unsigned long long>(base.engine.planner.reslides_planned),
      static_cast<unsigned long long>(base.engine.planner.cooldown_skips),
      static_cast<unsigned long long>(base.engine.queue.enqueued));

  bool shards_match = true;
  for (const u32 shards : quick ? std::vector<u32>{2} : std::vector<u32>{2, 4}) {
    ScenarioKnobs k = knobs;
    k.shards = shards;
    const ScenarioOut r = run_scenario(k);
    const bool ok = r.snapshot == base.snapshot &&
                    r.reply_digest == base.reply_digest &&
                    r.completed_at == base.completed_at;
    std::printf("shards=%u: %s\n", shards, ok ? "byte-identical" : "DIVERGED");
    shards_match &= ok;
  }
  if (!shards_match) {
    std::fprintf(stderr, "FAIL: migration scenario diverges across shards\n");
    return 1;
  }

  const faults::FaultPlan plan = faults::FaultPlan::uniform_loss(5, 0.02);
  ScenarioKnobs faulted_knobs = knobs;
  faulted_knobs.plan = &plan;
  const ScenarioOut faulted = run_scenario(faulted_knobs);
  std::printf(
      "faulted (2%% loss): %llu move events, p99 dip %.3f, p99 recovery "
      "%llu windows, %llu migrations\n",
      static_cast<unsigned long long>(faulted.move_events),
      faulted.disruption.p99_dip,
      static_cast<unsigned long long>(faulted.disruption.p99_recovery_windows),
      static_cast<unsigned long long>(faulted.ctrl.migrations));

  if (!quick) {
    // --- JSON + gates (full mode only) ---
    std::string json = "{\n  \"quick\": false,\n";
    json += soak_json(soak);
    json += ",\n  \"disruption\": {\n";
    json += disruption_json("baseline", base);
    json += ",\n";
    json += disruption_json("faulted", faulted);
    json += ",\n    \"shard_digests_match\": true\n  }\n}\n";
    std::fputs(json.c_str(), stdout);
    if (std::FILE* f = std::fopen("BENCH_migration.json", "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
    }

    if (!soak.gate_pass) {
      std::fprintf(stderr,
                   "FAIL: migration-on gained %.1f%% utilization / %.1f%% "
                   "fewer rejections (gate: >=10%% util or >=15%% "
                   "rejections)\n",
                   soak.utilization_gain_pct, soak.rejection_reduction_pct);
      return 1;
    }
  }
  // The remaining gates are pure virtual-time facts (no machine-speed
  // ratios), so quick mode keeps them at full strength -- this is what
  // the migration-soak CI job leans on.
  for (const ScenarioOut* run : {&base, &faulted}) {
    const char* label = run == &base ? "baseline" : "faulted";
    if (run->ctrl.migrations == 0 || run->disruption.events == 0) {
      std::fprintf(stderr, "FAIL: %s scenario executed no migrations\n",
                   label);
      return 1;
    }
    // Disruption bound: every affected service must recover within 3 s of
    // windows (60 x 50 ms) at the 99th percentile.
    if (run->disruption.p99_recovery_windows > 60) {
      std::fprintf(stderr,
                   "FAIL: %s p99 recovery %llu windows exceeds the "
                   "60-window (3 s) bound\n",
                   label,
                   static_cast<unsigned long long>(
                       run->disruption.p99_recovery_windows));
      return 1;
    }
  }
  return 0;
}
