#include "workload/churn.hpp"

#include "common/error.hpp"

namespace artmt::workload {

namespace {

// Substream tags (arbitrary distinct constants; stable across versions so
// seeded traces replay identically).
constexpr u64 kGapsTag = 0x6368726e'00000001ULL;
constexpr u64 kLifetimesTag = 0x6368726e'00000002ULL;
constexpr u64 kKindsTag = 0x6368726e'00000003ULL;

}  // namespace

PoissonChurn::PoissonChurn(const ChurnConfig& config)
    : config_(config),
      gaps_(Rng::substream(config.seed, kGapsTag)),
      lifetimes_(Rng::substream(config.seed, kLifetimesTag)),
      kinds_(Rng::substream(config.seed, kKindsTag)) {
  if (config.arrival_rate <= 0.0) {
    throw UsageError("PoissonChurn: arrival_rate must be positive");
  }
  if (config.mean_lifetime <= 0.0) {
    throw UsageError("PoissonChurn: mean_lifetime must be positive");
  }
  next_arrival_ = gaps_.exponential(config_.arrival_rate);
}

AppKind PoissonChurn::draw_kind() {
  double total = 0.0;
  for (const double w : config_.kind_weights) total += w;
  if (total <= 0.0) {
    return static_cast<AppKind>(kinds_.uniform(kAppKinds));
  }
  double x = kinds_.uniform_double() * total;
  for (u32 k = 0; k < kAppKinds; ++k) {
    x -= config_.kind_weights[k];
    if (x < 0.0) return static_cast<AppKind>(k);
  }
  return static_cast<AppKind>(kAppKinds - 1);  // fp round-off fallback
}

ChurnEvent PoissonChurn::next() {
  ChurnEvent event;
  if (!departures_.empty() && departures_.top().time <= next_arrival_) {
    const PendingDeparture dep = departures_.top();
    departures_.pop();
    event.type = ChurnEvent::Type::kDeparture;
    event.time = dep.time;
    event.service = dep.service;
    event.kind = dep.kind;
    return event;
  }
  event.type = ChurnEvent::Type::kArrival;
  event.time = next_arrival_;
  event.service = next_service_++;
  event.kind = draw_kind();
  departures_.push(PendingDeparture{
      event.time + lifetimes_.exponential(1.0 / config_.mean_lifetime),
      event.service, event.kind});
  next_arrival_ += gaps_.exponential(config_.arrival_rate);
  return event;
}

std::vector<ChurnEvent> PoissonChurn::generate(const ChurnConfig& config,
                                               std::size_t count) {
  PoissonChurn churn(config);
  std::vector<ChurnEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) events.push_back(churn.next());
  return events;
}

}  // namespace artmt::workload
