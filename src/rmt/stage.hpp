// One logical match-action stage: the stage-local register array plus the
// per-FID match-table state the control plane installs at allocation time.
// Each installed entry consumes one TCAM range entry (memory protection is
// range matching on MAR, Section 3.1); TCAM capacity is the admission
// bottleneck the paper calls out.
#pragma once

#include <optional>
#include <unordered_map>

#include "common/types.hpp"
#include "rmt/register_array.hpp"

namespace artmt::rmt {

// Match-table entry for one application in one stage: the protected word
// range, the translation pair (mask/offset) used by ADDR_MASK /
// ADDR_OFFSET for runtime address translation of hash results, and the
// MAR advance applied after a memory access (action data that re-targets
// MAR at the application's region in its *next* memory stage, enabling
// Listing 1's single-MAR_LOAD bucket walk when per-stage offsets differ).
struct FidEntry {
  u32 start_word = 0;
  u32 limit_word = 0;  // half-open
  Word mask = 0;       // largest 2^k - 1 <= region size
  Word offset = 0;     // == start_word
  i32 advance = 0;     // start(next mem stage) - start(this stage)

  [[nodiscard]] u32 words() const { return limit_word - start_word; }
  [[nodiscard]] bool covers(u32 word_index) const {
    return word_index >= start_word && word_index < limit_word;
  }
};

class Stage {
 public:
  Stage(u32 words, u32 tcam_capacity);

  // Installs (or replaces) the entry for `fid`; computes mask/offset from
  // the region. Returns false if TCAM capacity would be exceeded (the
  // controller turns that into an admission failure).
  bool install(Fid fid, u32 start_word, u32 limit_word, i32 advance = 0);

  // Removes the entry; no-op if absent.
  void remove(Fid fid);

  [[nodiscard]] const FidEntry* lookup(Fid fid) const;

  [[nodiscard]] u32 tcam_used() const { return static_cast<u32>(entries_.size()); }
  [[nodiscard]] u32 tcam_capacity() const { return tcam_capacity_; }

  [[nodiscard]] RegisterArray& memory() { return memory_; }
  [[nodiscard]] const RegisterArray& memory() const { return memory_; }

 private:
  RegisterArray memory_;
  u32 tcam_capacity_;
  std::unordered_map<Fid, FidEntry> entries_;
};

// Largest mask of the form 2^k - 1 that keeps start + mask < limit (i.e.
// hash & mask + offset always lands inside the region). Zero-size regions
// get mask 0.
Word translation_mask(u32 start_word, u32 limit_word);

}  // namespace artmt::rmt
