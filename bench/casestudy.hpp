// Shared testbed for the case-study figures (9 and 10): an event-driven
// network with one switch, one application server, and N cache tenants
// issuing Zipf-distributed object requests. Collects windowed hit rates.
#pragma once

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/cache_service.hpp"
#include "apps/hh_service.hpp"
#include "apps/server_node.hpp"
#include "client/client_node.hpp"
#include "controller/switch_node.hpp"
#include "workload/zipf.hpp"

namespace artmt::bench {

constexpr packet::MacAddr kSwitchMac = 0x0000aa;
constexpr packet::MacAddr kServerMac = 0x0000bb;
constexpr packet::MacAddr kClientMacBase = 0x000100;

// One tenant: a client node with a cache service and a Zipf request
// stream over a private key space.
class Tenant {
 public:
  Tenant(netsim::Simulator& sim, netsim::Network& net,
         controller::SwitchNode& sw, u32 index, u32 universe, double alpha,
         double requests_per_second, u64 seed)
      : sim_(&sim),
        index_(index),
        zipf_(universe, alpha),
        rng_(seed),
        gap_ns_(static_cast<SimTime>(1e9 / requests_per_second)) {
    client_ = std::make_shared<client::ClientNode>(
        "tenant" + std::to_string(index), kClientMacBase + index, kSwitchMac);
    net.attach(client_);
    net.connect(sw, index + 1, *client_, 0);
    sw.bind(kClientMacBase + index, index + 1);

    cache_ = std::make_shared<apps::CacheService>(
        "cache" + std::to_string(index), kServerMac);
    client_->register_service(cache_);
    client_->on_passive = [this](netsim::Frame& frame) {
      const auto msg = apps::KvMessage::parse(std::span<const u8>(frame).subspan(
          packet::EthernetHeader::kWireSize));
      if (msg) cache_->handle_server_reply(*msg);
    };
    cache_->on_result = [this](u32, u64, u32, bool hit) {
      record(hit);
    };
  }

  // Keys are private to the tenant (disjoint cache contents).
  u64 key_for_rank(u32 rank) const {
    return (static_cast<u64>(index_ + 1) << 40) ^
           workload::ZipfGenerator::key_for_rank(rank);
  }

  // Starts the request stream (continues until stop_time).
  void start_traffic(SimTime stop_time) {
    stop_time_ = stop_time;
    tick();
  }

  // Seeds the authoritative store for this tenant's keys.
  void seed_server(apps::ServerNode& server) const {
    for (u32 rank = 0; rank < zipf_.universe(); ++rank) {
      server.put(key_for_rank(rank), rank + 1);
    }
  }

  // The ideal hot set: the top-k most popular keys, ordered least-popular
  // first so that on bucket collisions the LAST write -- the most popular
  // key -- wins (the "most-frequent key per bucket" policy of Section
  // 3.4's cache-management discussion).
  std::vector<std::pair<u64, u32>> hot_set(u32 k) const {
    k = std::min(k, zipf_.universe());
    std::vector<std::pair<u64, u32>> out;
    out.reserve(k);
    for (u32 rank = k; rank-- > 0;) {
      out.emplace_back(key_for_rank(rank), rank + 1);
    }
    return out;
  }

  // As much of the hot set as the current allocation can hold.
  std::vector<std::pair<u64, u32>> hot_set_for_allocation() const {
    return hot_set(cache_->bucket_count());
  }

  // Windowed hit-rate series: one point per window_ns of traffic.
  void set_window(SimTime window_ns) { window_ns_ = window_ns; }
  [[nodiscard]] const std::vector<std::pair<double, double>>& windows()
      const {
    return windows_;
  }

  apps::CacheService& cache() { return *cache_; }
  client::ClientNode& client() { return *client_; }
  const workload::ZipfGenerator& zipf() const { return zipf_; }

 private:
  void tick() {
    if (sim_->now() >= stop_time_) return;
    const u32 rank = zipf_.next_rank(rng_);
    cache_->get(key_for_rank(rank));
    sim_->schedule_after(gap_ns_, [this] { tick(); });
  }

  void record(bool hit) {
    const SimTime now = sim_->now();
    if (window_start_ < 0) window_start_ = now;
    if (now - window_start_ >= window_ns_) {
      windows_.emplace_back(window_start_ / 1e9, window_hits_ > 0 || window_total_ > 0
                                                     ? static_cast<double>(window_hits_) /
                                                           std::max<u64>(1, window_total_)
                                                     : 0.0);
      window_start_ = now;
      window_hits_ = 0;
      window_total_ = 0;
    }
    ++window_total_;
    if (hit) ++window_hits_;
  }

  netsim::Simulator* sim_;
  u32 index_;
  workload::ZipfGenerator zipf_;
  Rng rng_;
  SimTime gap_ns_;
  SimTime stop_time_ = 0;
  std::shared_ptr<client::ClientNode> client_;
  std::shared_ptr<apps::CacheService> cache_;

  SimTime window_ns_ = 100 * kMillisecond;
  SimTime window_start_ = -1;
  u64 window_hits_ = 0;
  u64 window_total_ = 0;
  std::vector<std::pair<double, double>> windows_;
};

struct CaseStudyBed {
  explicit CaseStudyBed(u32 tenants, u32 universe = 10'000,
                        double alpha = 1.2,
                        double requests_per_second = 5'000)
      : net(sim) {
    controller::SwitchNode::Config cfg;
    cfg.policy = alloc::MutantPolicy::most_constrained();
    sw = std::make_shared<controller::SwitchNode>("switch", cfg);
    net.attach(sw);
    server = std::make_shared<apps::ServerNode>("server", kServerMac);
    net.attach(server);
    net.connect(*sw, 0, *server, 0);
    sw->bind(kServerMac, 0);
    for (u32 i = 0; i < tenants; ++i) {
      tenant.push_back(std::make_unique<Tenant>(
          sim, net, *sw, i, universe, alpha, requests_per_second, 77 + i));
      tenant.back()->seed_server(*server);
    }
  }

  netsim::Simulator sim;
  netsim::Network net;
  std::shared_ptr<controller::SwitchNode> sw;
  std::shared_ptr<apps::ServerNode> server;
  std::vector<std::unique_ptr<Tenant>> tenant;
};

inline void print_windows(const char* label, const Tenant& tenant,
                          std::size_t stride = 1) {
  std::printf("# %s: time_s,hit_rate\n", label);
  const auto& windows = tenant.windows();
  for (std::size_t i = 0; i < windows.size(); i += stride) {
    std::printf("%.2f,%.3f\n", windows[i].first, windows[i].second);
  }
}

}  // namespace artmt::bench
