// Digest-keyed interner for compiled active programs. A service's capsule
// carries the same instruction stream on every packet, so the switch parser
// decodes and compiles it once and subsequent packets execute the shared,
// read-only CompiledProgram: the steady-state packet path performs no
// program decode and no per-packet program allocation.
//
// Keys are 64-bit FNV-1a digests over the preload flags and the raw
// instruction bytes. Digest collisions are detected (the stored artifact's
// wire bytes are compared on every hit) and resolved by recompiling, so a
// collision can never execute the wrong program. Capacity is bounded with
// LRU eviction; evicted artifacts stay alive for as long as any in-flight
// packet still holds the shared_ptr.
#pragma once

#include <list>
#include <memory>
#include <unordered_map>

#include "active/compiled_program.hpp"

namespace artmt::telemetry {
class Counter;
class MetricsRegistry;
}  // namespace artmt::telemetry

namespace artmt::active {

class ProgramCache {
 public:
  using HashFn = u64 (*)(std::span<const u8> wire_code, bool preload_mar,
                         bool preload_mbr);

  static constexpr std::size_t kDefaultCapacity = 1024;

  // `hash` is injectable so tests can force collisions; production code
  // uses the default digest.
  explicit ProgramCache(std::size_t capacity = kDefaultCapacity,
                        HashFn hash = &CompiledProgram::compute_digest);

  // Returns the interned artifact for the given wire instruction stream
  // (2 bytes per instruction, EOF excluded), compiling on first sight.
  // Throws ParseError when the stream contains an unknown opcode.
  std::shared_ptr<const CompiledProgram> intern(std::span<const u8> wire_code,
                                                bool preload_mar,
                                                bool preload_mbr);

  // Convenience for already-decoded programs (client/tool paths).
  std::shared_ptr<const CompiledProgram> intern(const Program& program);

  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 evictions = 0;
    u64 collisions = 0;  // digest matched, bytes differed
  };

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear();

  // Mirrors hit/miss/eviction/collision counts into `metrics` under
  // component "program_cache" (nullptr detaches). The internal Stats
  // struct keeps counting regardless.
  void set_metrics(telemetry::MetricsRegistry* metrics);

 private:
  struct Entry {
    std::shared_ptr<const CompiledProgram> program;
    std::list<u64>::iterator lru_it;
  };

  std::shared_ptr<const CompiledProgram> insert(
      u64 digest, std::shared_ptr<const CompiledProgram> program);
  void touch(Entry& entry);

  std::size_t capacity_;
  HashFn hash_;
  Stats stats_;
  telemetry::Counter* m_hits_ = nullptr;
  telemetry::Counter* m_misses_ = nullptr;
  telemetry::Counter* m_evictions_ = nullptr;
  telemetry::Counter* m_collisions_ = nullptr;
  std::list<u64> lru_;  // front = most recently used
  std::unordered_map<u64, Entry> entries_;
};

}  // namespace artmt::active
