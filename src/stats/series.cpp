#include "stats/series.hpp"

#include "common/error.hpp"

namespace artmt::stats {

double Series::mean_y() const {
  if (points_.empty()) throw UsageError("Series::mean_y: empty series");
  double sum = 0.0;
  for (const Point& p : points_) sum += p.y;
  return sum / static_cast<double>(points_.size());
}

double Series::last_y() const {
  if (points_.empty()) throw UsageError("Series::last_y: empty series");
  return points_.back().y;
}

void write_csv(std::ostream& out, const std::vector<Series>& series,
               const std::string& x_label) {
  if (series.empty()) return;
  out << x_label;
  for (const Series& s : series) out << "," << s.name();
  out << "\n";
  std::size_t rows = 0;
  for (const Series& s : series) rows = std::max(rows, s.points().size());
  for (std::size_t i = 0; i < rows; ++i) {
    // x comes from the first series that has this row.
    double x = 0.0;
    for (const Series& s : series) {
      if (i < s.points().size()) {
        x = s.points()[i].x;
        break;
      }
    }
    out << x;
    for (const Series& s : series) {
      out << ",";
      if (i < s.points().size()) out << s.points()[i].y;
    }
    out << "\n";
  }
}

Series thin(const Series& series, std::size_t stride) {
  if (stride == 0) throw UsageError("thin: zero stride");
  Series out(series.name());
  const auto& pts = series.points();
  for (std::size_t i = 0; i < pts.size(); i += stride) {
    out.add(pts[i].x, pts[i].y);
  }
  if (!pts.empty() && (pts.size() - 1) % stride != 0) {
    out.add(pts.back().x, pts.back().y);
  }
  return out;
}

}  // namespace artmt::stats
