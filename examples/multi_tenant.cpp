// Multi-tenancy demo (the Figure 9b/10 scenario in miniature): three
// cache tenants arrive in sequence; the third cannot get exclusive
// stages and forces a reallocation of the first -- watch the handshake
// (deactivate, snapshot, extract, re-layout, repopulate) play out without
// disrupting the other tenants.
//
// Build & run:  ./build/examples/multi_tenant
#include <cstdio>

#include "apps/cache_service.hpp"
#include "apps/server_node.hpp"
#include "client/client_node.hpp"
#include "common/logging.hpp"
#include "controller/switch_node.hpp"

using namespace artmt;

int main() {
  set_log_level(LogLevel::kInfo);

  netsim::Simulator sim;
  netsim::Network net(sim);
  controller::SwitchNode::Config cfg;
  cfg.scheme = alloc::Scheme::kFirstFit;  // forces early sharing
  auto sw = std::make_shared<controller::SwitchNode>("switch", cfg);
  auto server = std::make_shared<apps::ServerNode>("server", 0xbb);
  net.attach(sw);
  net.attach(server);
  net.connect(*sw, 0, *server, 0);
  sw->bind(0xbb, 0);

  std::vector<std::shared_ptr<client::ClientNode>> clients;
  std::vector<std::shared_ptr<apps::CacheService>> caches;
  for (u32 i = 0; i < 3; ++i) {
    auto client = std::make_shared<client::ClientNode>(
        "tenant" + std::to_string(i), 0x100 + i, 0xaa);
    net.attach(client);
    net.connect(*sw, i + 1, *client, 0);
    sw->bind(0x100 + i, i + 1);
    auto cache = std::make_shared<apps::CacheService>(
        "cache" + std::to_string(i), 0xbb);
    client->register_service(cache);
    clients.push_back(std::move(client));
    caches.push_back(std::move(cache));
  }

  for (u32 i = 0; i < 3; ++i) {
    const u32 index = i;
    caches[i]->on_ready = [&, index] {
      std::printf("[t=%.3fs] tenant %u operational: %u buckets across its "
                  "stages\n",
                  sim.now() / 1e9, index, caches[index]->bucket_count());
      caches[index]->populate({{0x1000 + index, index + 1}});
    };
    caches[i]->on_relocated = [&, index] {
      std::printf("[t=%.3fs] tenant %u RELOCATED: now %u buckets; "
                  "repopulating hot set\n",
                  sim.now() / 1e9, index, caches[index]->bucket_count());
      caches[index]->populate({{0x1000 + index, index + 1}});
    };
    sim.schedule_at(i * 2 * kSecond, [&, index] {
      std::printf("[t=%.3fs] tenant %u requesting allocation\n",
                  sim.now() / 1e9, index);
      caches[index]->request_allocation();
    });
  }

  sim.run_until(10 * kSecond);

  std::printf("\nfinal state:\n");
  for (u32 i = 0; i < 3; ++i) {
    std::printf("  tenant %u: %s, %u buckets\n", i,
                caches[i]->operational() ? "operational" : "NOT operational",
                caches[i]->bucket_count());
  }
  const auto& stats = sw->controller().stats();
  std::printf("controller: %llu admissions, %llu reallocations, %llu table "
              "updates, %llu blocks snapshotted\n",
              static_cast<unsigned long long>(stats.admissions),
              static_cast<unsigned long long>(stats.reallocations),
              static_cast<unsigned long long>(stats.table_entry_updates),
              static_cast<unsigned long long>(stats.blocks_snapshotted));
  return 0;
}
