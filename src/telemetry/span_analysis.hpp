// Offline span-trace analysis: loads a canonical span dump (SpanSink::dump
// or a flight-recorder file) back into SpanEvents, reconstructs one
// request record per root span -- stitching retransmit chains and
// recirculation children back together -- and reduces the records to
// per-FID, per-phase latency breakdowns (queue vs execute vs wire vs
// retry). Lives in the telemetry library (not the tools) so the
// round-trip is unit-testable; artmt_spans and artmt_stats --spans are
// thin wrappers over these functions.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "telemetry/span.hpp"

namespace artmt::telemetry {

// Parses a JSON-lines span dump. Lines whose component is not "span"
// (e.g. a flight-recorder header) are skipped; malformed lines or a
// schema-version mismatch fail the load. Returns false and sets *error
// (when non-null) on failure.
bool load_span_events(std::istream& in, std::vector<SpanEvent>* out,
                      std::string* error = nullptr);

// One reconstructed request: a root send (parent == 0) plus everything
// causally downstream of it -- retransmit attempts, switch execution,
// recirculation hops, and the reply. All durations are virtual
// nanoseconds.
struct SpanRequest {
  u64 root = 0;        // the root transmission's span id
  i32 fid = kNoFid;    // first fid seen anywhere in the request's tree
  u32 attempts = 1;    // 1 + retransmits
  u32 recircs = 0;     // recirculation hops across the tree
  bool completed = false;  // a kRecv terminates the tree
  bool gave_up = false;    // the tracker abandoned the request
  SimTime total = 0;   // root send -> recv (completed requests only)
  SimTime retry_wait = 0;  // root send -> final attempt's send
  SimTime wire = 0;    // link transit on the final attempt's path
  SimTime exec = 0;    // modeled switch latency on the final attempt's path
  SimTime queue = 0;   // total - retry_wait - wire - exec, clamped at 0
};

// Rebuilds requests from a (canonically ordered or not) event list.
[[nodiscard]] std::vector<SpanRequest> reconstruct_requests(
    const std::vector<SpanEvent>& events);

// Per-FID p50/p90/p99 tables over total/queue/exec/wire/retry_wait,
// via telemetry::Histogram so the quantiles are deterministic. Shared by
// artmt_spans and artmt_stats --spans.
void print_span_breakdown(std::ostream& out,
                          const std::vector<SpanRequest>& requests);

}  // namespace artmt::telemetry
