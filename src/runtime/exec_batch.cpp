#include "runtime/exec_batch.hpp"

namespace artmt::runtime {

void ExecBatch::add(const active::CompiledProgram& program, ExecContext& ctx,
                    active::ExecCursor& cursor, const PacketMeta& meta,
                    SimTime now) {
  lanes_.emplace_back();
  runtime_->lane_begin(program, ctx, cursor, meta, now, lanes_.back());
}

void ExecBatch::execute() {
  const u32 stages = runtime_->pipeline().config().logical_stages;
  // A trace observer must see stages in per-packet order, so tracing
  // degrades the whole batch to the reference schedule.
  const bool tracing = static_cast<bool>(runtime_->trace_);

  std::size_t i = 0;
  while (i < lanes_.size()) {
    const bool sweepable =
        !tracing && lanes_[i].program->size() <= stages;
    if (!sweepable) {
      LaneState& lane = lanes_[i];
      while (!lane.halted) runtime_->lane_step(lane, /*memo=*/nullptr);
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < lanes_.size() && lanes_[j].program->size() <= stages) ++j;
    run_sweep(i, j);
    i = j;
  }
}

void ExecBatch::run_sweep(std::size_t begin, std::size_t end) {
  // Every live lane in [begin, end) sits at the same logical stage: each
  // sweep iteration consumes exactly one stage per lane (or halts it), so
  // the single-slot memo is keyed to the iteration's stage and amortizes
  // the protection lookup across all same-FID lanes.
  StageMemo memo;
  bool live = true;
  while (live) {
    live = false;
    memo.reset();
    for (std::size_t i = begin; i < end; ++i) {
      LaneState& lane = lanes_[i];
      if (lane.halted) continue;
      runtime_->lane_step(lane, &memo);
      if (!lane.halted) live = true;
    }
  }
}

ExecutionResult ExecBatch::result(std::size_t i) {
  return runtime_->lane_finish(lanes_[i]);
}

}  // namespace artmt::runtime
