# Empty compiler generated dependencies file for artmt_runtime.
# This may be replaced when dependencies are built.
