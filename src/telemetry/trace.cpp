#include "telemetry/trace.hpp"

#include <atomic>
#include <ostream>

namespace artmt::telemetry {

namespace {

// Minimal JSON string escaping; trace payloads are identifiers and
// mnemonics, so the common case copies straight through.
void write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

std::atomic<TraceSink*> g_sink{nullptr};

}  // namespace

void TraceSink::emit(std::string_view component, std::string_view event,
                     i64 fid, std::initializer_list<Field> fields) {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostream& out = *out_;
  out << "{\"ts\":" << (clock_ ? clock_() : 0) << ",\"component\":";
  write_escaped(out, component);
  out << ",\"event\":";
  write_escaped(out, event);
  if (fid >= 0) out << ",\"fid\":" << fid;
  for (const Field& f : fields) {
    out << ',';
    write_escaped(out, f.key_);
    out << ':';
    switch (f.kind_) {
      case Field::Kind::kBool:
        out << (f.b_ ? "true" : "false");
        break;
      case Field::Kind::kInt:
        out << f.i_;
        break;
      case Field::Kind::kUint:
        out << f.u_;
        break;
      case Field::Kind::kDouble:
        out << f.d_;
        break;
      case Field::Kind::kString:
        write_escaped(out, f.s_);
        break;
    }
  }
  out << "}\n";
  ++emitted_;
}

void set_trace_sink(TraceSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

TraceSink* trace_sink() { return g_sink.load(std::memory_order_acquire); }

}  // namespace artmt::telemetry
