#include "client/memsync.hpp"

#include "client/compiler.hpp"
#include "common/error.hpp"

namespace artmt::client {

using active::Instruction;
using active::Opcode;
using active::Program;

namespace {

void pad_to(Program& program, u32 index) {
  while (program.size() < index) program.push(Instruction{Opcode::kNop});
}

}  // namespace

Program make_read_program(const MemRef& ref) {
  if (ref.stage == 0) {
    // Only the preload trick reaches stage 0 (Appendix C).
    Program q;
    q.push(Instruction{Opcode::kMarLoad, 0});
    q.push(Instruction{Opcode::kMemRead});
    q.push(Instruction{Opcode::kMbrStore, 1});
    q.push(Instruction{Opcode::kRts});
    q.push(Instruction{Opcode::kReturn});
    apply_preload(q);
    return q;
  }
  Program p;
  p.push(Instruction{Opcode::kMarLoad, 0});
  // MEM_READ must land on the target stage; instruction i runs at stage i.
  pad_to(p, ref.stage);
  p.push(Instruction{Opcode::kMemRead});
  p.push(Instruction{Opcode::kMbrStore, 1});
  p.push(Instruction{Opcode::kRts});
  p.push(Instruction{Opcode::kReturn});
  return p;
}

Program make_write_program(const MemRef& ref) {
  Program p;
  p.push(Instruction{Opcode::kMarLoad, 0});
  p.push(Instruction{Opcode::kMbrLoad, 1});
  if (ref.stage <= 1) {
    // Preload both registers to reach stages 0 and 1.
    Program q;
    q.push(Instruction{Opcode::kMarLoad, 0});
    q.push(Instruction{Opcode::kMbrLoad, 1});
    pad_to(q, 2 + ref.stage);
    q.push(Instruction{Opcode::kMemWrite});
    q.push(Instruction{Opcode::kRts});
    q.push(Instruction{Opcode::kReturn});
    apply_preload(q);
    return q;
  }
  pad_to(p, ref.stage);
  p.push(Instruction{Opcode::kMemWrite});
  p.push(Instruction{Opcode::kRts});
  p.push(Instruction{Opcode::kReturn});
  return p;
}

Program make_read_pair_program(const MemRef& first, const MemRef& second) {
  if (second.stage <= first.stage) {
    throw UsageError("make_read_pair_program: stages must increase");
  }
  Program p = make_read_program(first);
  // Drop the trailing RTS/RETURN of the single-read program. After
  // apply_preload the instruction index equals the execution stage, so
  // p.size() is the stage the next pushed instruction runs in.
  p.code().pop_back();
  p.code().pop_back();
  p.push(Instruction{Opcode::kMarLoad, 2});
  if (second.stage < p.size() + 1) {
    throw UsageError("make_read_pair_program: second stage unreachable");
  }
  while (p.size() < second.stage) p.push(Instruction{Opcode::kNop});
  p.push(Instruction{Opcode::kMemRead});
  p.push(Instruction{Opcode::kMbrStore, 3});
  p.push(Instruction{Opcode::kRts});
  p.push(Instruction{Opcode::kReturn});
  return p;
}

Program make_write_pair_program(const MemRef& first, const MemRef& second) {
  if (second.stage <= first.stage) {
    throw UsageError("make_write_pair_program: stages must increase");
  }
  Program p = make_write_program(first);
  p.code().pop_back();
  p.code().pop_back();
  p.push(Instruction{Opcode::kMarLoad, 2});
  p.push(Instruction{Opcode::kMbrLoad, 3});
  if (second.stage < p.size() + 1) {
    throw UsageError("make_write_pair_program: second stage unreachable");
  }
  while (p.size() < second.stage) p.push(Instruction{Opcode::kNop});
  p.push(Instruction{Opcode::kMemWrite});
  p.push(Instruction{Opcode::kRts});
  p.push(Instruction{Opcode::kReturn});
  return p;
}

packet::ArgumentHeader read_args(const MemRef& ref) {
  packet::ArgumentHeader args;
  args.args[0] = ref.address;
  return args;
}

packet::ArgumentHeader read_pair_args(const MemRef& first,
                                      const MemRef& second) {
  packet::ArgumentHeader args;
  args.args[0] = first.address;
  args.args[2] = second.address;
  return args;
}

packet::ArgumentHeader write_args(const MemRef& ref, Word value) {
  packet::ArgumentHeader args;
  args.args[0] = ref.address;
  args.args[1] = value;
  return args;
}

packet::ArgumentHeader write_pair_args(const MemRef& first, Word value1,
                                       const MemRef& second, Word value2) {
  packet::ArgumentHeader args;
  args.args[0] = first.address;
  args.args[1] = value1;
  args.args[2] = second.address;
  args.args[3] = value2;
  return args;
}

}  // namespace artmt::client
