# Empty dependencies file for test_stage_state.
# This may be replaced when dependencies are built.
