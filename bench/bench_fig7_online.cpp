// Figure 7: the online scenario -- Poisson arrivals (mean 2) and
// departures (mean 1) over 1000 epochs, uniform application mix, 10
// trials, both mutant policies. Reports:
//   (a) utilization (mean and min-max band across trials),
//   (b) resident-application count,
//   (c) fraction of elastic apps reallocated per epoch (EWMA 0.6),
//   (d) Jain fairness across cache instances.
#include <algorithm>
#include <cstdio>

#include "common/ewma.hpp"
#include "harness.hpp"

namespace artmt::bench {
namespace {

constexpr u32 kEpochs = 1000;
constexpr u32 kTrials = 10;

struct Aggregates {
  std::vector<double> util_mean, util_min, util_max;
  std::vector<double> residents_mean;
  std::vector<double> realloc_frac_ewma;  // mean of per-trial EWMA
  std::vector<double> fairness_mean;
  double admitted_late = 0.0;  // admission ratio after epoch 500
  double arrivals_late = 0.0;
};

Aggregates run_policy(const alloc::MutantPolicy& policy) {
  Aggregates agg;
  agg.util_mean.assign(kEpochs, 0.0);
  agg.util_min.assign(kEpochs, 1.0);
  agg.util_max.assign(kEpochs, 0.0);
  agg.residents_mean.assign(kEpochs, 0.0);
  agg.realloc_frac_ewma.assign(kEpochs, 0.0);
  agg.fairness_mean.assign(kEpochs, 0.0);

  for (u32 trial = 0; trial < kTrials; ++trial) {
    ChurnConfig config;
    config.epochs = kEpochs;
    config.seed = 40 + trial;
    const auto metrics =
        run_churn(config, alloc::Scheme::kWorstFit, policy);
    Ewma ewma(0.6);
    for (u32 e = 0; e < kEpochs; ++e) {
      const auto& m = metrics[e];
      agg.util_mean[e] += m.utilization / kTrials;
      agg.util_min[e] = std::min(agg.util_min[e], m.utilization);
      agg.util_max[e] = std::max(agg.util_max[e], m.utilization);
      agg.residents_mean[e] += static_cast<double>(m.residents) / kTrials;
      const double frac =
          m.elastic_residents == 0
              ? 0.0
              : static_cast<double>(m.reallocated) / m.elastic_residents;
      agg.realloc_frac_ewma[e] += ewma.update(frac) / kTrials;
      agg.fairness_mean[e] += m.fairness / kTrials;
      if (e >= kEpochs / 2) {
        agg.admitted_late += m.admitted;
        agg.arrivals_late += m.arrivals;
      }
    }
  }
  return agg;
}

void report(const char* policy_name, const Aggregates& agg) {
  std::printf("\n### policy: %s\n", policy_name);

  stats::Series util("util_mean");
  stats::Series lo("util_min");
  stats::Series hi("util_max");
  stats::Series residents("residents");
  stats::Series realloc_frac("realloc_frac");
  stats::Series fairness("fairness");
  for (u32 e = 0; e < kEpochs; ++e) {
    util.add(e, agg.util_mean[e]);
    lo.add(e, agg.util_min[e]);
    hi.add(e, agg.util_max[e]);
    residents.add(e, agg.residents_mean[e]);
    realloc_frac.add(e, agg.realloc_frac_ewma[e]);
    fairness.add(e, agg.fairness_mean[e]);
  }
  std::printf("## Fig 7a: utilization (mean over %u trials)\n", kTrials);
  print_series("epoch,utilization", util, 50);
  std::printf("band: min(final)=%.3f max(final)=%.3f\n", lo.last_y(),
              hi.last_y());
  std::printf("## Fig 7b: resident applications\n");
  print_series("epoch,residents", residents, 50);
  std::printf("## Fig 7c: reallocated fraction of elastic apps, EWMA(0.6)\n");
  print_series("epoch,realloc_fraction", realloc_frac, 50);
  std::printf("## Fig 7d: Jain fairness among elastic instances\n");
  print_series("epoch,fairness", fairness, 50);
  std::printf(
      "summary: final_utilization=%.3f final_residents=%.1f "
      "final_fairness=%.4f late_admission_ratio=%.3f\n",
      agg.util_mean.back(), agg.residents_mean.back(),
      agg.fairness_mean.back(),
      agg.arrivals_late > 0 ? agg.admitted_late / agg.arrivals_late : 0.0);
}

}  // namespace
}  // namespace artmt::bench

int main() {
  std::printf(
      "=== Figure 7: online arrivals/departures (Poisson 2/1, %u epochs, "
      "%u trials) ===\n",
      artmt::bench::kEpochs, artmt::bench::kTrials);
  const auto mc =
      artmt::bench::run_policy(artmt::alloc::MutantPolicy::most_constrained());
  artmt::bench::report("most-constrained", mc);
  const auto lc = artmt::bench::run_policy(
      artmt::alloc::MutantPolicy::least_constrained(1));
  artmt::bench::report("least-constrained", lc);
  return 0;
}
