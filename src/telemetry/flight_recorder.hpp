// Fault flight recorder: a fixed-size lock-free ring buffer per lane
// (shard) holding the last N span events, with zero steady-state
// allocation -- the rings are sized once at construction and every record
// is a plain array store by the lane's single writer.
//
// On a trigger -- a brownout up-edge (SwitchNode::wipe_registers), a
// worker-exception abort (ShardedSimulator::store_error), a chaos-soak
// digest mismatch or an artmt_chaos gate failure -- the buffered tail is
// dumped to a JSON-lines file so the failure ships with its own forensic
// capture. dump() writes the calling lane's ring and is safe from that
// lane's worker thread; dump_all() merges every lane and must only run
// while the engine is quiescent.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "telemetry/span.hpp"

namespace artmt::telemetry {

class FlightRecorder {
 public:
  // Default ring size for the always-on configuration: 256 events x 48
  // bytes = 12 KiB per lane stays L1-resident next to the datapath's
  // working set, which is what keeps armed-recorder overhead low (a 48
  // KiB ring cycling through L2 measurably slows the hot path). Forensic
  // consumers that want a deeper tail (artmt_chaos --flight-dir) pass a
  // larger capacity explicitly and pay for it only in those runs.
  static constexpr std::size_t kDefaultCapacity = 256;

  // `capacity_per_lane` is rounded up to the next power of two so the
  // hot-path ring index is a mask, not a division.
  explicit FlightRecorder(std::size_t capacity_per_lane = kDefaultCapacity,
                          u32 lanes = 1);

  // Directory dump files land in ("" disables dumping; recording still
  // runs so tests can inspect lane_events()).
  void set_dump_dir(std::string dir) { dir_ = std::move(dir); }
  [[nodiscard]] const std::string& dump_dir() const { return dir_; }

  // Hot path: overwrites the oldest slot once the ring is full. No
  // allocation, no synchronization -- each lane has one writer.
  void record(u32 lane, const SpanEvent& event) { slot(lane) = event; }

  // Claims the next slot of `lane`'s ring for in-place construction (the
  // caller overwrites every field; span_emit_with resets the slot first).
  SpanEvent& slot(u32 lane) {
    Ring& ring = rings_[lane < rings_.size() ? lane : 0];
    SpanEvent& s =
        ring.buf[static_cast<std::size_t>(ring.head) & (capacity_ - 1)];
    ++ring.head;
    return s;
  }

  // Quiescent-only: forget everything buffered (e.g. between chaos runs).
  void clear();

  // Dumps lane `lane`'s buffered events (oldest first) to
  // <dir>/flight_<seq>_<reason>.json. Returns the file path, or "" when
  // no dump dir is set. Callable from the lane's own worker thread.
  std::string dump(u32 lane, std::string_view reason);

  // Quiescent-only: every lane merged into one canonically sorted dump.
  std::string dump_all(std::string_view reason);

  [[nodiscard]] u32 lanes() const { return static_cast<u32>(rings_.size()); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] u64 recorded() const;
  [[nodiscard]] u64 dumps_written() const {
    return dump_seq_.load(std::memory_order_relaxed);
  }

  // The events currently buffered in `lane`, oldest first (test hook; the
  // same view dump() serializes).
  [[nodiscard]] std::vector<SpanEvent> lane_events(u32 lane) const;

 private:
  struct alignas(64) Ring {
    std::vector<SpanEvent> buf;  // fixed capacity, preallocated
    u64 head = 0;                // total events ever recorded to this lane
  };

  std::string write_dump(const std::vector<SpanEvent>& events,
                         std::string_view reason, u64 buffered_total);

  std::size_t capacity_;
  std::vector<Ring> rings_;
  std::string dir_;
  std::atomic<u64> dump_seq_{0};
};

// Declared in span.hpp; defined here so the whole emission path -- the
// consumer loads, the lane lookup, and the stores -- inlines into the
// call sites (which all include this header).
inline void span_emit(const SpanEvent& event) {
  const u32 lane = detail::tls_span_lane;
  if (SpanSink* sink = detail::g_span_sink.load(std::memory_order_relaxed)) {
    sink->record(lane, event);
  }
  if (FlightRecorder* recorder =
          detail::g_flight.load(std::memory_order_relaxed)) {
    recorder->record(lane, event);
  }
}

// Emission with in-place construction: `fill` assigns the event's fields.
// In the always-on configuration -- flight recorder armed, no full-capture
// sink -- the event is built directly in the ring slot (the default-reset
// stores that `fill` overwrites are dead and fold away once this inlines),
// so each field is written exactly once. With a sink attached the event is
// staged on the stack and copied to each consumer, as span_emit does.
template <class Fill>
inline void span_emit_with(Fill&& fill) {
  const u32 lane = detail::tls_span_lane;
  SpanSink* sink = detail::g_span_sink.load(std::memory_order_relaxed);
  FlightRecorder* recorder = detail::g_flight.load(std::memory_order_relaxed);
  if (recorder != nullptr && sink == nullptr) {
    SpanEvent& slot = recorder->slot(lane);
    slot = SpanEvent{};
    fill(slot);
    return;
  }
  SpanEvent event;
  fill(event);
  if (sink != nullptr) sink->record(lane, event);
  if (recorder != nullptr) recorder->record(lane, event);
}

}  // namespace artmt::telemetry
