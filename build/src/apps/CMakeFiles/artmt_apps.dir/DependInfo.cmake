
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cache_service.cpp" "src/apps/CMakeFiles/artmt_apps.dir/cache_service.cpp.o" "gcc" "src/apps/CMakeFiles/artmt_apps.dir/cache_service.cpp.o.d"
  "/root/repo/src/apps/extra_services.cpp" "src/apps/CMakeFiles/artmt_apps.dir/extra_services.cpp.o" "gcc" "src/apps/CMakeFiles/artmt_apps.dir/extra_services.cpp.o.d"
  "/root/repo/src/apps/hh_service.cpp" "src/apps/CMakeFiles/artmt_apps.dir/hh_service.cpp.o" "gcc" "src/apps/CMakeFiles/artmt_apps.dir/hh_service.cpp.o.d"
  "/root/repo/src/apps/kv.cpp" "src/apps/CMakeFiles/artmt_apps.dir/kv.cpp.o" "gcc" "src/apps/CMakeFiles/artmt_apps.dir/kv.cpp.o.d"
  "/root/repo/src/apps/lb_service.cpp" "src/apps/CMakeFiles/artmt_apps.dir/lb_service.cpp.o" "gcc" "src/apps/CMakeFiles/artmt_apps.dir/lb_service.cpp.o.d"
  "/root/repo/src/apps/programs.cpp" "src/apps/CMakeFiles/artmt_apps.dir/programs.cpp.o" "gcc" "src/apps/CMakeFiles/artmt_apps.dir/programs.cpp.o.d"
  "/root/repo/src/apps/server_node.cpp" "src/apps/CMakeFiles/artmt_apps.dir/server_node.cpp.o" "gcc" "src/apps/CMakeFiles/artmt_apps.dir/server_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/client/CMakeFiles/artmt_client.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/artmt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/artmt_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/artmt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/artmt_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/artmt_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/artmt_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/artmt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/artmt_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/active/CMakeFiles/artmt_active.dir/DependInfo.cmake"
  "/root/repo/build/src/rmt/CMakeFiles/artmt_rmt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
