// Big-endian (network order) byte cursors used to serialize and parse the
// active-packet header formats of Section 3.3. Readers throw ParseError on
// truncation so malformed capsules are rejected at the switch parser, never
// silently misread.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace artmt {

// Appends integral values in network byte order to a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u16(u16 v);
  void put_u32(u32 v);
  void put_bytes(std::span<const u8> bytes);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<u8>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<u8> take() { return std::move(buf_); }

 private:
  std::vector<u8> buf_;
};

// Sequentially consumes network-order values from a fixed view.
class ByteReader {
 public:
  explicit ByteReader(std::span<const u8> data) : data_(data) {}

  [[nodiscard]] u8 get_u8();
  [[nodiscard]] u16 get_u16();
  [[nodiscard]] u32 get_u32();
  // Returns a view of the next n bytes and advances past them.
  [[nodiscard]] std::span<const u8> get_bytes(std::size_t n);
  void skip(std::size_t n);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }

 private:
  void require(std::size_t n) const;

  std::span<const u8> data_;
  std::size_t pos_ = 0;
};

}  // namespace artmt
