// Ordered per-stage score indexes for the incremental allocator. The
// admission search consults three orderings of the stage set -- fungible
// blocks (worst-fit wants the max, best-fit the min), elastic headroom,
// and the largest admissible inelastic demand -- and each must stay
// current across thousands of allocate/deallocate events per second.
// This index mirrors those three per-stage scalars into multisets so the
// extremes are O(1) reads and a stage refresh after a mutation is
// O(log S), replacing the per-admission rescans of every stage.
//
// The headroom/fit maxima double as a global feasibility bound: a request
// whose bottleneck demand exceeds the best stage's capability cannot be
// placed by any mutant, so the allocator rejects it without enumerating
// the mutant space at all (the "hopeless mutant" prune).
#pragma once

#include <set>
#include <vector>

#include "alloc/stage_state.hpp"
#include "common/types.hpp"

namespace artmt::alloc {

class StageScoreIndex {
 public:
  StageScoreIndex() = default;

  // (Re)builds every entry from scratch; O(S log S).
  void reset(const std::vector<StageState>& stages);

  // Re-syncs one stage's entries after a mutation; O(log S).
  void refresh(u32 stage, const StageState& state);

  // --- extremes (O(1): multiset ends) ---
  // Most fungible memory anywhere (worst-fit's candidate score).
  [[nodiscard]] u32 max_fungible() const { return max_of(by_fungible_); }
  // Least fungible memory anywhere (best-fit's candidate score).
  [[nodiscard]] u32 min_fungible() const { return min_of(by_fungible_); }
  // Largest elastic minimum any single stage can still admit.
  [[nodiscard]] u32 max_elastic_headroom() const {
    return max_of(by_headroom_);
  }
  // Largest inelastic demand any single stage can still admit.
  [[nodiscard]] u32 max_inelastic_fit() const { return max_of(by_inelastic_); }

  // --- candidate stages (O(1)) ---
  // Stage holding the most fungible memory (ties: highest stage index).
  [[nodiscard]] u32 worst_fit_stage() const {
    return by_fungible_.empty() ? 0 : std::prev(by_fungible_.end())->second;
  }
  // Stage holding the least fungible memory (ties: lowest stage index,
  // the multiset's ordering).
  [[nodiscard]] u32 best_fit_stage() const {
    return by_fungible_.empty() ? 0 : by_fungible_.begin()->second;
  }

  // Whether `request_max_demand` could possibly be placed somewhere.
  [[nodiscard]] bool feasible_anywhere(bool elastic, u32 max_demand) const {
    return elastic ? max_elastic_headroom() >= max_demand
                   : max_inelastic_fit() >= max_demand;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  using Order = std::multiset<std::pair<u32, u32>>;  // (value, stage)

  struct Entry {
    u32 fungible = 0;
    u32 headroom = 0;
    u32 inelastic_fit = 0;
  };

  static u32 max_of(const Order& order) {
    return order.empty() ? 0 : std::prev(order.end())->first;
  }
  static u32 min_of(const Order& order) {
    return order.empty() ? 0 : order.begin()->first;
  }

  std::vector<Entry> entries_;  // current value per stage, for erasure
  Order by_fungible_;
  Order by_headroom_;
  Order by_inelastic_;
};

}  // namespace artmt::alloc
