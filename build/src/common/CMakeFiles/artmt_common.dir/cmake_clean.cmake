file(REMOVE_RECURSE
  "CMakeFiles/artmt_common.dir/bytes.cpp.o"
  "CMakeFiles/artmt_common.dir/bytes.cpp.o.d"
  "CMakeFiles/artmt_common.dir/fairness.cpp.o"
  "CMakeFiles/artmt_common.dir/fairness.cpp.o.d"
  "CMakeFiles/artmt_common.dir/interval.cpp.o"
  "CMakeFiles/artmt_common.dir/interval.cpp.o.d"
  "CMakeFiles/artmt_common.dir/logging.cpp.o"
  "CMakeFiles/artmt_common.dir/logging.cpp.o.d"
  "CMakeFiles/artmt_common.dir/rng.cpp.o"
  "CMakeFiles/artmt_common.dir/rng.cpp.o.d"
  "libartmt_common.a"
  "libartmt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
