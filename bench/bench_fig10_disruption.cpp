// Figure 10: fine-grained view of the multi-tenant scenario -- each
// tenant's hit rate from its own arrival (provisioning gap, population
// ramp, steady state), and the disruption the first tenant suffers when
// the fourth arrives and forces a reallocation of its memory.
#include <cstdio>

#include "casestudy.hpp"

namespace artmt::bench {
namespace {

void fig10() {
  CaseStudyBed bed(4, /*universe=*/500'000, /*alpha=*/0.8);
  constexpr SimTime kStop = 28 * kSecond;

  std::vector<double> requested_at(4, 0.0);
  std::vector<double> operational_at(4, 0.0);
  double tenant0_moved_at = -1.0;
  double tenant0_repopulated_at = -1.0;

  for (u32 i = 0; i < 4; ++i) {
    Tenant& tenant = *bed.tenant[i];
    tenant.set_window(50 * kMillisecond);  // finer than Fig 9
    bed.sim.schedule_at(i * 5 * kSecond, [&bed, &tenant, &requested_at,
                                          &operational_at, i, kStop] {
      requested_at[i] = bed.sim.now() / 1e9;
      tenant.cache().on_ready = [&bed, &tenant, &operational_at, i, kStop] {
        operational_at[i] = bed.sim.now() / 1e9;
        tenant.cache().populate(tenant.hot_set_for_allocation());
        tenant.start_traffic(kStop);
      };
      tenant.cache().request_allocation();
    });
  }
  // Instrument tenant 0's reallocation when tenant 3 arrives.
  bed.tenant[0]->cache().on_relocated = [&] {
    tenant0_moved_at = bed.sim.now() / 1e9;
    bed.tenant[0]->cache().populate(
        bed.tenant[0]->hot_set_for_allocation(), [&] {
          tenant0_repopulated_at = bed.sim.now() / 1e9;
        });
  };

  bed.sim.run_until(kStop);

  for (u32 i = 0; i < 4; ++i) {
    std::printf("\n### tenant %u (requested t=%.2fs, operational t=%.2fs, "
                "provisioning %.0f ms)\n",
                i, requested_at[i], operational_at[i],
                (operational_at[i] - requested_at[i]) * 1e3);
    // Print the first three seconds after arrival plus the window around
    // the fourth arrival (t = 15 s).
    const auto& windows = bed.tenant[i]->windows();
    std::printf("# time_s,hit_rate\n");
    for (const auto& [t, rate] : windows) {
      const bool after_arrival =
          t >= requested_at[i] && t <= requested_at[i] + 3.0;
      const bool around_fourth = t >= 14.5 && t <= 17.5;
      if (after_arrival || around_fourth) {
        std::printf("%.2f,%.3f\n", t, rate);
      }
    }
  }

  // Disruption of tenant 0: zero-hit-rate span around tenant 3's arrival.
  const auto& w0 = bed.tenant[0]->windows();
  double disruption_start = -1.0;
  double disruption_end = -1.0;
  for (const auto& [t, rate] : w0) {
    if (t < 15.0 || t > 20.0) continue;
    if (rate < 0.05) {
      if (disruption_start < 0) disruption_start = t;
      disruption_end = t;
    }
  }
  std::printf("\ntenant 0 relocation: notice at t=%.2fs, repopulated at "
              "t=%.2fs\n",
              tenant0_moved_at, tenant0_repopulated_at);
  if (disruption_start >= 0) {
    std::printf(
        "tenant 0 zero-hit disruption: %.2fs .. %.2fs (~%.0f ms; paper "
        "reports ~150 ms)\n",
        disruption_start, disruption_end,
        (disruption_end - disruption_start + 0.05) * 1e3);
  } else {
    std::printf("tenant 0 saw no zero-hit window (disruption below the "
                "50 ms sampling window)\n");
  }
}

}  // namespace
}  // namespace artmt::bench

int main() {
  std::printf(
      "=== Figure 10: per-tenant hit rates at arrival + reallocation "
      "disruption ===\n");
  artmt::bench::fig10();
  return 0;
}
