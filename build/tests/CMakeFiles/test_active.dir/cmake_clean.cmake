file(REMOVE_RECURSE
  "CMakeFiles/test_active.dir/test_active.cpp.o"
  "CMakeFiles/test_active.dir/test_active.cpp.o.d"
  "test_active"
  "test_active.pdb"
  "test_active[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
