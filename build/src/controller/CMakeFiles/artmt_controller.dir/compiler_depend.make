# Empty compiler generated dependencies file for artmt_controller.
# This may be replaced when dependencies are built.
