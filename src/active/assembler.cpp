#include "active/assembler.hpp"

#include <cctype>
#include <charconv>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace artmt::active {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw CompileError("line " + std::to_string(line_no) + ": " + message);
}

std::string_view strip(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Parses "Lk" into k; returns 0 if the token is not a label.
u8 parse_label(std::string_view token) {
  if (token.size() < 2 || token[0] != 'L') return 0;
  unsigned value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data() + 1, token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) return 0;
  if (value == 0 || value > kMaxLabel) return 0;
  return static_cast<u8>(value);
}

}  // namespace

Program assemble(std::string_view text) {
  Program program;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    // Drop comments.
    if (const auto comment = line.find("//"); comment != std::string_view::npos) {
      line = line.substr(0, comment);
    }
    line = strip(line);
    if (line.empty()) continue;

    Instruction insn;

    // Optional leading label definition "Lk:".
    if (const auto colon = line.find(':'); colon != std::string_view::npos) {
      const u8 label = parse_label(strip(line.substr(0, colon)));
      if (label == 0) fail(line_no, "bad label definition");
      insn.label = label;
      line = strip(line.substr(colon + 1));
      if (line.empty()) fail(line_no, "label must prefix an instruction");
    }

    // Mnemonic token.
    std::size_t space = line.find_first_of(" \t");
    const std::string_view name =
        space == std::string_view::npos ? line : line.substr(0, space);
    std::string_view rest =
        space == std::string_view::npos ? std::string_view{}
                                        : strip(line.substr(space));

    const auto op = opcode_from_mnemonic(name);
    if (!op) fail(line_no, "unknown mnemonic '" + std::string(name) + "'");
    insn.op = *op;

    const OpcodeInfo* info = opcode_info(*op);
    switch (info->operand) {
      case OperandKind::kArgIndex: {
        // "$k" is optional and defaults to field 0, matching the paper's
        // listings which omit it for implicit next-field semantics.
        if (!rest.empty()) {
          if (rest[0] != '$') fail(line_no, "expected $argIndex operand");
          unsigned value = 0;
          const auto [ptr, ec] = std::from_chars(
              rest.data() + 1, rest.data() + rest.size(), value);
          if (ec != std::errc{} || ptr != rest.data() + rest.size() ||
              value >= kArgFields) {
            fail(line_no, "argument index must be $0..$3");
          }
          insn.operand = static_cast<u8>(value);
        }
        break;
      }
      case OperandKind::kLabel: {
        const u8 label = parse_label(rest);
        if (label == 0) fail(line_no, "branch requires a label operand L1..L15");
        if (insn.label != 0) fail(line_no, "a branch cannot also be a target");
        insn.label = label;
        break;
      }
      case OperandKind::kNone:
        if (!rest.empty()) fail(line_no, "unexpected operand");
        break;
    }
    if (insn.op == Opcode::kEof) fail(line_no, "EOF is implicit; do not write it");
    program.push(insn);
  }

  // Validate forward-only branches and label existence.
  const ProgramAnalysis analysis = analyze(program);
  if (!analysis.branches_forward) {
    throw CompileError("branch target missing or not after the branch");
  }
  return program;
}

}  // namespace artmt::active
