#include "netsim/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <string>
#include <thread>
#include <utility>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace artmt::netsim {

namespace detail {
thread_local const ShardContext* tls_shard = nullptr;
}  // namespace detail

// Total order over drained messages derived from simulation state alone
// (never from shard packing or wall clock), so every shard count drains
// the same barrier batch in the same order.
bool ShardedSimulator::mail_before(const MailMsg* a, const MailMsg* b) {
  if (a->arrival != b->arrival) return a->arrival < b->arrival;
  if (a->send != b->send) return a->send < b->send;
  if (a->src_index != b->src_index) return a->src_index < b->src_index;
  return a->tx_seq < b->tx_seq;
}

bool ShardedSimulator::mail_before_val(const MailMsg& a, const MailMsg& b) {
  return mail_before(&a, &b);
}

namespace {

u64 elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - since)
                              .count());
}

}  // namespace

// Reusable two-phase rendezvous. The last arriver runs `serial` while
// holding the barrier mutex, so serial-section writes (next epoch window,
// done flag) are ordered before every other worker's wakeup -- the
// happens-before edge that keeps the engine's plain epoch state and
// mailbox vectors race-free.
class ShardedSimulator::Barrier {
 public:
  explicit Barrier(u32 n) : n_(n) {}

  template <typename F>
  void arrive_and_wait(F&& serial) {
    std::unique_lock<std::mutex> lock(mu_);
    if (++arrived_ == n_) {
      serial();
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    const u64 gen = generation_;
    cv_.wait(lock, [&] { return generation_ != gen; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  u32 n_;
  u32 arrived_ = 0;
  u64 generation_ = 0;
};

ShardedSimulator::ShardedSimulator(u32 shards) {
  if (shards == 0) {
    throw UsageError("ShardedSimulator: shard count must be >= 1");
  }
  shards_.reserve(shards);
  for (u32 i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->metrics = std::make_unique<telemetry::MetricsRegistry>();
    shard->sim.set_metrics(shard->metrics.get());
    shard->outbox.resize(shards);
    shards_.push_back(std::move(shard));
  }
  shard_bound_.assign(shards, kNoEvent);
  barrier_ = std::make_unique<Barrier>(shards);
}

ShardedSimulator::~ShardedSimulator() = default;

void ShardedSimulator::bind_network(Network& net) {
  if (net_ != nullptr) {
    throw UsageError("ShardedSimulator: already driving a Network");
  }
  net_ = &net;
}

void ShardedSimulator::pin(Node& node, u32 shard) {
  if (shard >= shards()) {
    throw UsageError("ShardedSimulator::pin: shard out of range");
  }
  if (detail::tls_shard != nullptr) {
    throw UsageError("ShardedSimulator::pin: only while quiescent");
  }
  if (node.shard_assigned_) {
    throw UsageError("ShardedSimulator::pin: node '" + node.name() +
                     "' already assigned (pin before the first run)");
  }
  node.shard_ = shard;
  node.shard_assigned_ = true;
}

void ShardedSimulator::schedule_at(SimTime at, Simulator::Action action) {
  const auto* ctx = detail::tls_shard;
  if (ctx != nullptr && ctx->owner == this) {
    ctx->sim->schedule_at(at, std::move(action));
    return;
  }
  shards_[0]->sim.schedule_at(at, std::move(action));
}

void ShardedSimulator::schedule_after(SimTime delay, Simulator::Action action) {
  const auto* ctx = detail::tls_shard;
  if (ctx != nullptr && ctx->owner == this) {
    ctx->sim->schedule_after(delay, std::move(action));
    return;
  }
  shards_[0]->sim.schedule_after(delay, std::move(action));
}

void ShardedSimulator::schedule_on(const Node& node, SimTime at,
                                   Simulator::Action action) {
  if (detail::tls_shard != nullptr) {
    throw UsageError(
        "ShardedSimulator::schedule_on: only while quiescent (workers "
        "schedule through their own network().simulator())");
  }
  assign_unowned_nodes();  // the node may predate the first run
  shards_[node.shard_]->sim.schedule_at(at, std::move(action));
}

const ShardStats& ShardedSimulator::shard_stats(u32 shard) const {
  if (shard >= shards()) {
    throw UsageError("ShardedSimulator::shard_stats: shard out of range");
  }
  return shards_[shard]->stats;
}

telemetry::MetricsRegistry& ShardedSimulator::shard_metrics(u32 shard) {
  if (shard >= shards()) {
    throw UsageError("ShardedSimulator::shard_metrics: shard out of range");
  }
  return *shards_[shard]->metrics;
}

void ShardedSimulator::merge_metrics_into(
    telemetry::MetricsRegistry& out) const {
  for (const auto& shard : shards_) {
    out.merge_from(*shard->metrics);
  }
}

void ShardedSimulator::export_shard_stats(
    telemetry::MetricsRegistry& out) const {
  // merge_add accumulates: export once per snapshot registry.
  for (u32 i = 0; i < shards(); ++i) {
    const ShardStats& s = shards_[i]->stats;
    const auto fid = static_cast<i32>(i);
    out.counter("sharding", "events_dispatched", fid)
        .merge_add(s.events_dispatched);
    out.counter("sharding", "epochs", fid).merge_add(s.epochs);
    out.counter("sharding", "frames_in", fid).merge_add(s.frames_in);
    out.counter("sharding", "frames_out", fid).merge_add(s.frames_out);
    out.counter("sharding", "barrier_wait_ns", fid)
        .merge_add(s.barrier_wait_ns);
  }
  // Engine-wide scheduler shape: widths of bounded epoch windows and the
  // count of unbounded (no cross-shard constraint) ones. Lives here and
  // not in merge_metrics_into because the epoch partition varies with the
  // shard count.
  out.histogram("sharding", "epoch_width_ns").merge_from(epoch_width_);
  out.counter("sharding", "unbounded_epochs").merge_add(unbounded_epochs_);
}

void ShardedSimulator::enqueue(MailMsg msg) {
  const auto* ctx = detail::tls_shard;
  if (ctx != nullptr && ctx->owner == this) {
    Shard& src = *shards_[ctx->index];
    const u32 dst = msg.dest->shard_;
    if (dst != ctx->index) ++src.stats.frames_out;
    src.outbox[dst].push_back(std::move(msg));
    return;
  }
  // Quiescent injection (tools priming a scenario before run()): the
  // frame was built from some shard's pool, so clone it into the
  // destination shard's pool now -- no workers are running -- and hold
  // it until the next run's initial drain.
  assign_unowned_nodes();
  msg.src_shard = msg.dest->shard_;  // clone already done: drain moves it
  msg.frame = shards_[msg.dest->shard_]->pool.clone(msg.frame);
  external_mail_.push_back(std::move(msg));
}

void ShardedSimulator::assign_unowned_nodes() {
  if (net_ == nullptr) return;
  const u32 n = shards();
  for (const auto& node : net_->nodes_) {
    if (node->shard_assigned_) continue;
    // Default policy: shard 0 is reserved for pinned nodes (the switch
    // pipeline); unpinned fleets round-robin over the remaining shards.
    node->shard_ = (n == 1) ? 0 : 1 + (next_rr_++ % (n - 1));
    node->shard_assigned_ = true;
  }
}

void ShardedSimulator::compute_lookahead() {
  const u32 n = shards();
  // Direct per-shard-pair minima: reach_[j][i] starts as the cheapest
  // link whose sender lives on shard j and receiver on shard i. Same-shard
  // links never constrain a window (those deliveries are scheduled
  // directly at transmit time) but their latency is still validated --
  // a zero-latency link would break the serial engine's causality too.
  reach_.assign(static_cast<std::size_t>(n) * n, kNoEvent);
  SimTime w = kNoEvent;
  for (const auto& [key, egress] : net_->egress_) {
    if (egress.spec.latency <= 0) {
      throw UsageError(
          "ShardedSimulator: every link needs latency >= 1ns -- the minimum "
          "latency is the conservative lookahead window");
    }
    const u32 src = key.node->shard_;
    const u32 dst = egress.peer.node->shard_;
    if (src == dst) continue;
    w = std::min(w, egress.spec.latency);
    SimTime& edge = reach_[static_cast<std::size_t>(src) * n + dst];
    edge = std::min(edge, egress.spec.latency);
  }
  lookahead_ = w;  // kNoEvent when no link crosses shards: unbounded epochs
  // Close the matrix over relays (Floyd-Warshall on the shard graph): a
  // frame can take j -> k -> i across successive epochs, with same-shard
  // forwarding treated as free so the result stays a lower bound on any
  // multi-hop arrival. Relaxing the diagonal yields the shortest round
  // trip j -> ... -> j through another shard, which is exactly the bound
  // a shard needs against replies triggered by its own traffic.
  for (u32 k = 0; k < n; ++k) {
    for (u32 j = 0; j < n; ++j) {
      const SimTime jk = reach_[static_cast<std::size_t>(j) * n + k];
      if (jk == kNoEvent) continue;
      for (u32 i = 0; i < n; ++i) {
        const SimTime ki = reach_[static_cast<std::size_t>(k) * n + i];
        if (ki == kNoEvent || ki >= kNoEvent - jk) continue;
        SimTime& ji = reach_[static_cast<std::size_t>(j) * n + i];
        ji = std::min(ji, jk + ki);
      }
    }
  }
}

void ShardedSimulator::prepare() {
  if (net_ != nullptr) {
    assign_unowned_nodes();
    compute_lookahead();
  }
  drain_external();
}

void ShardedSimulator::schedule_delivery(Simulator& sim, MailMsg& msg,
                                         Frame frame, u32 shard) {
  Network* net = msg.net;
  Node* dest = msg.dest;
  const u32 port = msg.port;
  // The delivery key (arrival, send, src_index, tx_seq) reproduces the
  // mailbox sort order inside the event queue itself, so a message's
  // dispatch position is independent of which barrier drained it -- the
  // property that lets same-shard traffic skip the mailbox entirely.
  sim.schedule_delivery(msg.arrival, msg.send, msg.src_index, msg.tx_seq,
                        [net, dest, port, shard,
                         span = telemetry::span_id(msg.src_index, msg.tx_seq),
                         f = std::move(frame)]() mutable {
                          // Cross-shard deliveries carry the same causal
                          // span context the direct paths set.
                          telemetry::SpanScope scope(span);
                          net->deliver(*dest, port, std::move(f), shard);
                        });
}

void ShardedSimulator::drain_external() {
  if (external_mail_.empty()) return;
  std::sort(external_mail_.begin(), external_mail_.end(), mail_before_val);
  for (MailMsg& msg : external_mail_) {
    // Frames were cloned into the destination pool at enqueue time.
    schedule_delivery(shards_[msg.dest->shard_]->sim, msg,
                      std::move(msg.frame), msg.dest->shard_);
  }
  external_mail_.clear();
}

void ShardedSimulator::drain_inboxes(u32 dst_idx) {
  Shard& dst = *shards_[dst_idx];
  std::vector<MailMsg*>& batch = dst.drain_scratch;
  batch.clear();
  for (const auto& src : shards_) {
    for (MailMsg& msg : src->outbox[dst_idx]) batch.push_back(&msg);
  }
  // Each outbox is appended in the sender's dispatch (send-time) order,
  // so with one source shard and uniform links the batch usually arrives
  // pre-sorted; the O(n) check dodges the sort on the common path.
  if (!std::is_sorted(batch.begin(), batch.end(), mail_before)) {
    std::sort(batch.begin(), batch.end(), mail_before);
  }
  for (MailMsg* msg : batch) {
    Frame frame;
    if (msg->src_shard == dst_idx) {
      // Same-shard delivery: the slab already belongs to our pool.
      frame = std::move(msg->frame);
    } else {
      // Cross-shard handoff: deep-copy into our pool; the source shard
      // releases the original when it clears its outboxes next epoch.
      frame = dst.pool.clone(msg->frame);
      ++dst.stats.frames_in;
    }
    schedule_delivery(dst.sim, *msg, std::move(frame), dst_idx);
  }
}

void ShardedSimulator::store_error(std::exception_ptr err) {
  // The worker is about to abort the run: capture its flight-recorder
  // lane first so the forensic tail ships with the error.
  if (auto* recorder = telemetry::flight_recorder()) {
    try {
      recorder->dump(telemetry::span_lane(), "worker_exception");
    } catch (...) {
      // A failed dump must not mask the original error.
    }
  }
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!first_error_) first_error_ = err;
  }
  abort_.store(true, std::memory_order_relaxed);
}

// Opens the epoch whose earliest event sits at `start`: computes every
// shard's window bound from the reachability matrix and the current
// per-shard next-event times, and records the epoch's shape. Runs only
// while quiescent or inside a barrier serial section.
void ShardedSimulator::open_window(SimTime start) {
  const u32 n = shards();
  SimTime min_bound = kNoEvent;
  for (u32 i = 0; i < n; ++i) {
    SimTime bound = kNoEvent;
    for (u32 j = 0; j < n; ++j) {
      const SimTime nj = shards_[j]->sim.next_event_time();
      if (nj == kNoEvent) continue;
      const SimTime r = reach_[static_cast<std::size_t>(j) * n + i];
      if (r == kNoEvent || r >= kNoEvent - nj) continue;
      bound = std::min(bound, nj + r);
    }
    shard_bound_[i] = bound;
    min_bound = std::min(min_bound, bound);
  }
  if (min_bound == kNoEvent) {
    ++unbounded_epochs_;
  } else {
    // reach_ entries are >= 1ns and start is the global minimum next
    // event, so bounded widths are always positive.
    epoch_width_.record(static_cast<u64>(min_bound - start));
  }
  ++epochs_;
}

void ShardedSimulator::select_next_window(SimTime limit) {
  if (abort_.load(std::memory_order_relaxed)) {
    done_ = true;
    return;
  }
  SimTime next = kNoEvent;
  for (const auto& s : shards_) {
    next = std::min(next, s->sim.next_event_time());
  }
  if (next == kNoEvent || next > limit) {
    done_ = true;
    return;
  }
  // Skip-empty fast-forward falls out for free: `next` is wherever the
  // earliest pending event actually is, however far beyond the previous
  // window that may be.
  open_window(next);
}

void ShardedSimulator::worker_loop(u32 shard_idx, SimTime limit) {
  Shard& shard = *shards_[shard_idx];
  const detail::ShardContext ctx{this, shard_idx, &shard.sim, &shard.pool};
  detail::tls_shard = &ctx;
  telemetry::set_span_lane(shard_idx);

  while (true) {
    // Phase A: reclaim last epoch's outbox frames (their slabs return to
    // this shard's pool), then run this epoch's window of events.
    try {
      for (auto& box : shard.outbox) box.clear();
      if (!abort_.load(std::memory_order_relaxed)) {
        // Events with at < bound and at <= limit; the shard clock stays
        // at its last event (never outrunning it) and is aligned
        // globally once the run quiesces.
        SimTime bound = shard_bound_[shard_idx];  // kNoEvent: drain all
        if (limit != kNoEvent && limit < bound - 1) bound = limit + 1;
        shard.sim.run_window(bound);
      }
    } catch (...) {
      store_error(std::current_exception());
    }

    auto wait_from = std::chrono::steady_clock::now();
    barrier_->arrive_and_wait([this, limit] {
      // If no shard posted cross-shard mail this epoch there is nothing
      // to drain: pick the next window right here and let everyone skip
      // phase B and its second rendezvous.
      skip_drain_ = true;
      for (const auto& s : shards_) {
        for (const auto& box : s->outbox) {
          if (!box.empty()) {
            skip_drain_ = false;
            return;
          }
        }
      }
      select_next_window(limit);
    });
    shard.stats.barrier_wait_ns += elapsed_ns(wait_from);

    if (!skip_drain_) {
      // Phase B: drain every mailbox addressed to this shard -- all of
      // them carry arrivals at or beyond every receiver's next bound,
      // because arrival >= next_sender + direct link >= bound_receiver.
      try {
        if (!abort_.load(std::memory_order_relaxed)) drain_inboxes(shard_idx);
      } catch (...) {
        store_error(std::current_exception());
      }

      wait_from = std::chrono::steady_clock::now();
      barrier_->arrive_and_wait([this, limit] {
        // Serial section: pick the next epoch window from the globally
        // earliest pending event (shard-count-invariant by induction).
        select_next_window(limit);
      });
      shard.stats.barrier_wait_ns += elapsed_ns(wait_from);
    }
    ++shard.stats.epochs;

    if (done_) break;  // ordered by the barrier mutex
  }

  telemetry::set_span_lane(0);
  detail::tls_shard = nullptr;
}

// shards == 1: no cross-shard link can exist, so the whole run is one
// unbounded window on the calling thread -- no barriers, no mailboxes,
// no worker threads. Deliveries carry the same canonical keys as under
// the multi-shard engine, so this bypass is byte-identical to it.
void ShardedSimulator::run_single_shard(SimTime limit) {
  Shard& shard = *shards_[0];
  const detail::ShardContext ctx{this, 0, &shard.sim, &shard.pool};
  detail::tls_shard = &ctx;
  try {
    shard.sim.run_window(limit == kNoEvent ? kNoEvent : limit + 1);
  } catch (...) {
    detail::tls_shard = nullptr;
    throw;
  }
  detail::tls_shard = nullptr;
  ++shard.stats.epochs;
}

void ShardedSimulator::run_epochs(SimTime limit) {
  if (detail::tls_shard != nullptr) {
    throw UsageError("ShardedSimulator::run: re-entrant run");
  }
  prepare();

  SimTime start = kNoEvent;
  for (const auto& s : shards_) {
    start = std::min(start, s->sim.next_event_time());
  }
  if (start != kNoEvent && start <= limit) {
    done_ = false;
    skip_drain_ = false;
    abort_.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    open_window(start);

    const u32 n = shards();
    if (n == 1) {
      // One shard cannot have cross-shard links, so the epoch machinery
      // degenerates to a plain serial run; bypass it entirely (exceptions
      // propagate directly, no rendezvous to keep alive).
      run_single_shard(limit);
    } else {
      std::vector<std::thread> workers;
      workers.reserve(n);
      for (u32 i = 0; i < n; ++i) {
        workers.emplace_back([this, i, limit] { worker_loop(i, limit); });
      }
      for (auto& t : workers) t.join();
      if (first_error_) {
        std::exception_ptr err = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(err);
      }
    }
  }

  // Quiescent again: release frames still parked in outboxes (the final
  // epoch's cross-shard originals) and align every shard clock.
  for (const auto& s : shards_) {
    for (auto& box : s->outbox) box.clear();
  }
  SimTime final_time = global_now_;
  if (limit != kNoEvent) final_time = std::max(final_time, limit);
  for (const auto& s : shards_) {
    final_time = std::max(final_time, s->sim.now());
  }
  for (const auto& s : shards_) {
    // Pending events (beyond `limit`) all sit after final_time, so this
    // only advances the clock.
    s->sim.run_until(final_time);
  }
  global_now_ = final_time;
  for (const auto& s : shards_) {
    s->stats.events_dispatched = s->sim.events_dispatched();
  }
}

void ShardedSimulator::run() { run_epochs(kNoEvent); }

void ShardedSimulator::run_until(SimTime until) { run_epochs(until); }

}  // namespace artmt::netsim
