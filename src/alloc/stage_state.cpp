#include "alloc/stage_state.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace artmt::alloc {

StageState::StageState(u32 capacity_blocks) : capacity_(capacity_blocks) {
  if (capacity_blocks == 0) throw UsageError("StageState: zero capacity");
}

bool StageState::inelastic_fits(u32 demand) const {
  if (demand == 0) throw UsageError("StageState: zero inelastic demand");
  if (holes_.max_size() >= demand) return true;
  // Extend the frontier: elastic members can be squeezed to their minima.
  return capacity_ - frontier_ >= demand + elastic_min_total_;
}

bool StageState::inelastic_needs_frontier(u32 demand) const {
  return holes_.max_size() < demand;
}

u32 StageState::max_inelastic_fit() const {
  const u32 pool = capacity_ - frontier_;
  const u32 frontier_room =
      pool > elastic_min_total_ ? pool - elastic_min_total_ : 0;
  return std::max(holes_.max_size(), frontier_room);
}

u32 StageState::largest_free_run() const {
  const u32 tail = capacity_ - layout_end_;
  return std::max(holes_.max_size(), tail);
}

void StageState::add_inelastic(AppId id, u32 demand) {
  if (regions_.contains(id)) {
    throw UsageError("StageState: app already resident in stage");
  }
  Interval region;
  if (const auto hole = holes_.find_first_fit(demand)) {
    region = Interval{hole->begin, hole->begin + demand};
    holes_.remove(region);
  } else {
    if (capacity_ - frontier_ < demand + elastic_min_total_) {
      throw UsageError("StageState: inelastic demand does not fit");
    }
    region = Interval{frontier_, frontier_ + demand};
    frontier_ += demand;
  }
  inelastic_[id] = region;
  regions_[id] = region;
  inelastic_total_ += demand;
  rebalance();
}

void StageState::remove_inelastic(AppId id) {
  const auto it = inelastic_.find(id);
  if (it == inelastic_.end()) {
    throw UsageError("StageState: unknown inelastic app");
  }
  holes_.insert(it->second);
  inelastic_total_ -= it->second.size();
  inelastic_.erase(it);
  regions_.erase(id);
  // Return frontier-adjacent free space to the elastic pool.
  while (true) {
    const auto& hs = holes_.intervals();
    if (hs.empty() || hs.back().end != frontier_) break;
    const Interval tail = hs.back();  // copy: remove() mutates the set
    frontier_ = tail.begin;
    holes_.remove(tail);
  }
  rebalance();
}

bool StageState::elastic_fits(u32 min_blocks) const {
  if (min_blocks == 0) throw UsageError("StageState: zero elastic minimum");
  return elastic_headroom() >= min_blocks;
}

void StageState::add_elastic(AppId id, u32 min_blocks, u32 cap_blocks) {
  if (regions_.contains(id)) {
    throw UsageError("StageState: app already resident in stage");
  }
  if (!elastic_fits(min_blocks)) {
    throw UsageError("StageState: elastic minimum does not fit");
  }
  elastic_.push_back(ElasticMember{id, min_blocks, cap_blocks});
  elastic_min_total_ += min_blocks;
  rebalance();
}

void StageState::remove_elastic(AppId id) {
  const auto it =
      std::find_if(elastic_.begin(), elastic_.end(),
                   [id](const ElasticMember& m) { return m.id == id; });
  if (it == elastic_.end()) throw UsageError("StageState: unknown elastic app");
  elastic_min_total_ -= it->min_blocks;
  elastic_.erase(it);
  regions_.erase(id);
  rebalance();
}

void StageState::set_elastic_cap(AppId id, u32 cap_blocks) {
  const auto it =
      std::find_if(elastic_.begin(), elastic_.end(),
                   [id](const ElasticMember& m) { return m.id == id; });
  if (it == elastic_.end()) throw UsageError("StageState: unknown elastic app");
  if (cap_blocks != 0 && cap_blocks < it->min_blocks) {
    throw UsageError("StageState: elastic cap below minimum");
  }
  if (it->cap_blocks == cap_blocks) {
    changed_.clear();  // no-op: nothing rebalances, nobody is disturbed
    return;
  }
  it->cap_blocks = cap_blocks;
  rebalance();
}

void StageState::rebalance() {
  const u32 pool = capacity_ - frontier_;
  // Progressive filling (the paper's max-min approximation): start every
  // member at its minimum share, then hand out one block at a time to the
  // member with the smallest share that is not yet at its cap.
  std::vector<u32> share(elastic_.size());
  u32 used = 0;
  for (std::size_t i = 0; i < elastic_.size(); ++i) {
    share[i] = elastic_[i].min_blocks;
    used += share[i];
  }
  if (used > pool) {
    throw UsageError("StageState::rebalance: minima exceed pool");
  }

  using Entry = std::pair<u32, std::size_t>;  // (share, member index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t i = 0; i < elastic_.size(); ++i) heap.emplace(share[i], i);
  u32 remaining = pool - used;
  while (remaining > 0 && !heap.empty()) {
    const auto [s, i] = heap.top();
    heap.pop();
    if (s != share[i]) continue;  // stale entry
    const u32 cap = elastic_[i].cap_blocks;
    if (cap != 0 && share[i] >= cap) continue;  // member is saturated
    ++share[i];
    --remaining;
    heap.emplace(share[i], i);
  }

  // Contiguous layout in arrival order, with regions_ updated in place and
  // every moved member recorded for the allocator's disturbance report.
  changed_.clear();
  u32 cursor = frontier_;
  u32 share_total = 0;
  for (std::size_t i = 0; i < elastic_.size(); ++i) {
    const Interval region{cursor, cursor + share[i]};
    auto [it, inserted] = regions_.try_emplace(elastic_[i].id, region);
    if (!inserted) {
      if (it->second != region) {
        it->second = region;
        changed_.push_back(elastic_[i].id);
      }
    } else {
      changed_.push_back(elastic_[i].id);
    }
    cursor += share[i];
    share_total += share[i];
  }
  layout_end_ = cursor;
  elastic_share_total_ = share_total;
  std::sort(changed_.begin(), changed_.end());
}

}  // namespace artmt::alloc
