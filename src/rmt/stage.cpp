#include "rmt/stage.hpp"

#include "common/error.hpp"

namespace artmt::rmt {

Word translation_mask(u32 start_word, u32 limit_word) {
  if (limit_word <= start_word) return 0;
  const u32 size = limit_word - start_word;
  Word mask = 0;
  while (((mask << 1) | 1) < size) mask = (mask << 1) | 1;
  return mask;
}

Stage::Stage(u32 words, u32 tcam_capacity)
    : memory_(words), tcam_capacity_(tcam_capacity) {}

bool Stage::install(Fid fid, u32 start_word, u32 limit_word, i32 advance) {
  if (limit_word < start_word || limit_word > memory_.size()) {
    throw UsageError("Stage::install: region out of bounds");
  }
  const bool replacing = entries_.contains(fid);
  if (!replacing && entries_.size() >= tcam_capacity_) return false;
  FidEntry entry;
  entry.start_word = start_word;
  entry.limit_word = limit_word;
  entry.mask = translation_mask(start_word, limit_word);
  entry.offset = start_word;
  entry.advance = advance;
  entries_[fid] = entry;
  return true;
}

void Stage::remove(Fid fid) { entries_.erase(fid); }

const FidEntry* Stage::lookup(Fid fid) const {
  const auto it = entries_.find(fid);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace artmt::rmt
