#include "common/logging.hpp"

#include <atomic>
#include <iostream>

namespace artmt {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  std::cerr << "[" << tag(level) << "] " << message << "\n";
}

}  // namespace artmt
