#include "packet/program_view.hpp"

#include "common/error.hpp"

namespace artmt::packet {

bool ProgramView::is_program_frame(std::span<const u8> frame) {
  // Ethertype at offset 12, initial-header type byte at offset 16
  // (dst 6 + src 6 + ethertype 2 + fid 2).
  if (frame.size() < EthernetHeader::kWireSize + InitialHeader::kWireSize) {
    return false;
  }
  const u16 ethertype = static_cast<u16>(frame[12]) << 8 | frame[13];
  return ethertype == kEtherTypeActive &&
         frame[16] == static_cast<u8>(ActiveType::kProgram);
}

ProgramView ProgramView::parse(std::span<const u8> frame,
                               active::ProgramCache& cache) {
  ByteReader in(frame);
  ProgramView view;
  view.ethernet = EthernetHeader::parse(in);
  if (view.ethernet.ethertype != kEtherTypeActive) {
    throw ParseError("ProgramView: not an active frame");
  }
  view.initial = InitialHeader::parse(in);
  if (view.initial.type != ActiveType::kProgram) {
    throw ParseError("ProgramView: not a program capsule");
  }
  view.arguments = ArgumentHeader::parse(in);
  // Same EOF scan as the owning parser: only the EOF opcode is matched
  // here; opcode validation happens inside the cache (byte-compare against
  // a validated artifact on hits, compile on misses).
  const std::size_t code_begin = in.position();
  std::size_t code_end = code_begin;
  for (;;) {
    if (code_end + 2 > frame.size()) {
      throw ParseError("ProgramView: program missing EOF");
    }
    if (frame[code_end] == static_cast<u8>(active::Opcode::kEof)) break;
    code_end += 2;
  }
  view.code_begin = static_cast<u32>(code_begin);
  view.code_end = static_cast<u32>(code_end);
  view.payload_begin = static_cast<u32>(code_end + 2);
  view.compiled = cache.intern(
      frame.subspan(code_begin, code_end - code_begin),
      (view.initial.flags & kFlagPreloadMar) != 0,
      (view.initial.flags & kFlagPreloadMbr) != 0);
  return view;
}

}  // namespace artmt::packet
