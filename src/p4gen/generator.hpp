// P4 source generation for the shared switch runtime. The paper's
// prototype is ~10K lines of P4 targeting the Tofino (Section 5); this
// generator emits the equivalent TNA-style program from the same tables
// that drive the C++ model -- the active-header parser, the three PHV
// variables, one instruction table + register extern + stateful actions
// per logical stage, and the memory-protection/translation entry layout
// the controller populates at allocation time.
//
// The output is a faithful architectural skeleton: it compiles the
// paper's design into concrete P4 constructs so the mapping from model
// to hardware is explicit and reviewable. (We do not ship a bf-p4c
// toolchain, so it is validated structurally, not by compilation.)
#pragma once

#include <string>

#include "rmt/config.hpp"

namespace artmt::p4gen {

struct GeneratorOptions {
  rmt::PipelineConfig pipeline;
  // Maximum instruction headers the parser extracts per pass.
  u32 parsed_instructions = 20;
  std::string program_name = "activermt_runtime";
};

// Emits the full P4_16 program text.
std::string generate_runtime(const GeneratorOptions& options = {});

// Emitted sub-sections (exposed for tests and tooling).
std::string generate_headers(const GeneratorOptions& options);
std::string generate_parser(const GeneratorOptions& options);
std::string generate_stage(const GeneratorOptions& options, u32 stage);
std::string generate_controls(const GeneratorOptions& options);

// The control-plane table-entry recipe for one admitted allocation:
// what the Controller's install_with_advance() does, expressed as the
// bfrt entries a real deployment would program. Useful for docs and for
// eyeballing the protection model.
std::string describe_entries(u32 fid, u32 stage, u32 start_word,
                             u32 limit_word, i32 advance);

}  // namespace artmt::p4gen
