// artmt_trace -- execute an ActiveRMT program on a fresh modeled switch
// and print a per-stage execution trace (the debugger the paper's
// ecosystem lacks).
//
// The tool admits the program as an inelastic service with one block per
// memory access, synthesizes the compact mutant, and runs one capsule.
//
// Usage:
//   artmt_trace [options] [file]      (reads stdin when no file given)
//     --args a,b,c,d    argument-header words (decimal or 0x hex)
//     --elastic         request an elastic allocation instead
//     --json            emit telemetry::TraceSink JSON-lines on stdout
//                       (same schema as the simulator's trace export, so
//                       debugger and simulator traces diff line-by-line)
//
// Example:
//   echo 'MAR_LOAD $0
//         MEM_INCREMENT
//         MBR_STORE $1
//         RTS
//         RETURN' | ./build/tools/artmt_trace --args 0,0,0,0
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "active/assembler.hpp"
#include "active/compiled_program.hpp"
#include "client/compiler.hpp"
#include "controller/controller.hpp"
#include "telemetry/trace.hpp"

using namespace artmt;

namespace {

const char* verdict_name(runtime::Verdict verdict) {
  switch (verdict) {
    case runtime::Verdict::kForward:
      return "FORWARD";
    case runtime::Verdict::kReturnToSender:
      return "RETURN-TO-SENDER";
    case runtime::Verdict::kDrop:
      return "DROP";
  }
  return "?";
}

const char* fault_name(runtime::Fault fault) {
  switch (fault) {
    case runtime::Fault::kNone:
      return "none";
    case runtime::Fault::kExplicitDrop:
      return "explicit DROP";
    case runtime::Fault::kProtectionViolation:
      return "memory protection violation";
    case runtime::Fault::kNoAllocation:
      return "no allocation in stage";
    case runtime::Fault::kRecircLimit:
      return "recirculation limit";
    case runtime::Fault::kRecircBudget:
      return "recirculation budget";
    case runtime::Fault::kPrivilege:
      return "privilege violation";
    default:
      return "other";
  }
}

}  // namespace

int main(int argc, char** argv) {
  packet::ArgumentHeader args;
  bool elastic = false;
  bool json = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--args") == 0 && i + 1 < argc) {
      std::stringstream ss(argv[++i]);
      std::string token;
      for (auto& word : args.args) {
        if (!std::getline(ss, token, ',')) break;
        word = static_cast<Word>(std::stoul(token, nullptr, 0));
      }
    } else if (std::strcmp(argv[i], "--elastic") == 0) {
      elastic = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(
          stderr,
          "usage: artmt_trace [--args a,b,c,d] [--elastic] [--json] [file]\n");
      return 2;
    } else {
      path = argv[i];
    }
  }

  std::string text;
  if (path != nullptr) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "artmt_trace: cannot open %s\n", path);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  }

  client::ServiceSpec spec;
  try {
    spec.program = active::assemble(text);
  } catch (const CompileError& error) {
    std::fprintf(stderr, "artmt_trace: %s\n", error.what());
    return 1;
  }
  const auto analysis = active::analyze(spec.program);
  spec.demands.assign(analysis.access_positions.size(), 1);
  spec.elastic = elastic;

  rmt::PipelineConfig config;
  rmt::Pipeline pipeline(config);
  runtime::ActiveRuntime runtime(pipeline);
  controller::Controller controller(pipeline, runtime);

  Fid fid = 0;
  active::Program to_run = spec.program;
  if (!analysis.access_positions.empty()) {
    const auto admitted = controller.admit(client::build_request(spec));
    if (!admitted.admitted) {
      std::fprintf(stderr, "artmt_trace: admission failed\n");
      return 1;
    }
    fid = admitted.fid;
    const auto synthesized = client::synthesize(
        spec, *controller.mutant_of(fid), controller.response_for(fid),
        config.logical_stages);
    to_run = synthesized.program;
    if (!json) {
      std::printf("allocated fid=%u; per-access regions:\n", fid);
      for (std::size_t i = 0; i < synthesized.access_base.size(); ++i) {
        std::printf("  access %zu -> stage %u, words [%u, %u)\n", i,
                    (*controller.mutant_of(fid))[i] % config.logical_stages,
                    synthesized.access_base[i],
                    synthesized.access_base[i] + synthesized.access_words[i]);
      }
    }
    // Direct-addressed programs expect args[0] to be a physical address;
    // default it into the first region when the caller left it at 0.
    if (args.args[0] == 0) args.args[0] = synthesized.access_base[0];
  }

  // JSON mode: the same schema (and the same emitter) as the simulator's
  // structured trace export, one object per consumed stage.
  telemetry::TraceSink sink(std::cout);
  if (json) {
    runtime.set_trace([&sink, fid](const runtime::TraceEvent& event) {
      sink.emit("runtime", "stage", fid,
                {{"index", event.index},
                 {"stage", event.logical_stage},
                 {"pass", event.pass},
                 {"op", active::mnemonic(event.op)},
                 {"skipped", event.skipped},
                 {"mar", event.phv.mar},
                 {"mbr", event.phv.mbr},
                 {"mbr2", event.phv.mbr2},
                 {"complete", event.phv.complete},
                 {"disabled", event.phv.disabled},
                 {"rts", event.phv.rts}});
    });
  } else {
    std::printf("\n%-5s %-6s %-5s %-20s %-10s %-10s %-10s flags\n", "idx",
                "stage", "pass", "instruction", "MAR", "MBR", "MBR2");
    runtime.set_trace([](const runtime::TraceEvent& event) {
      std::printf("%-5u %-6u %-5u %-20s %-10u %-10u %-10u %s%s%s\n",
                  event.index, event.logical_stage, event.pass,
                  event.skipped
                      ? "(skipped)"
                      : std::string(active::mnemonic(event.op)).c_str(),
                  event.phv.mar, event.phv.mbr, event.phv.mbr2,
                  event.phv.complete ? "complete " : "",
                  event.phv.disabled ? "disabled " : "",
                  event.phv.rts ? "rts" : "");
    });
  }

  const auto compiled = std::make_shared<const active::CompiledProgram>(
      active::CompiledProgram::compile(to_run));
  auto capsule = packet::ActivePacket::make_program(fid, args, compiled);
  active::ExecCursor cursor;
  const auto result = runtime.execute(*compiled, capsule, cursor);

  if (json) {
    sink.emit("runtime", "execute_done", fid,
              {{"verdict", verdict_name(result.verdict)},
               {"fault", fault_name(result.fault)},
               {"passes", result.passes},
               {"latency_ns", result.latency},
               {"instructions", result.instructions_executed}});
    return result.verdict == runtime::Verdict::kDrop ? 1 : 0;
  }

  std::printf("\nverdict: %s", verdict_name(result.verdict));
  if (result.fault != runtime::Fault::kNone) {
    std::printf(" (%s)", fault_name(result.fault));
  }
  std::printf("\npasses: %u  latency: %lld ns  instructions: %u\n",
              result.passes, static_cast<long long>(result.latency),
              result.instructions_executed);
  u32 remaining = 0;
  for (u32 i = 0; i < compiled->code().size(); ++i) {
    if (!(compiled->code()[i].wire_done || cursor.done(i))) ++remaining;
  }
  std::printf("on-wire instructions after shrink: %u of %zu\n", remaining,
              compiled->code().size());
  std::printf("final args: %u %u %u %u\n", capsule.arguments->args[0],
              capsule.arguments->args[1], capsule.arguments->args[2],
              capsule.arguments->args[3]);
  return 0;
}
