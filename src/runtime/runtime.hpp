// The ActiveRMT switch runtime: interprets active programs one instruction
// per logical stage as packets flow through the pipeline (Section 3.1),
// enforcing memory protection via the per-FID table entries the control
// plane installed, and modeling recirculation, RTS placement, packet
// shrinking, and execution faults.
//
// Execution is zero-mutation: the hot path runs an immutable
// active::CompiledProgram shared by every packet of a recurring program,
// and all per-packet mutable state (done-bits, branch-resume point, the
// shrink decision) lives in a caller-provided active::ExecCursor. On the
// cache-hit steady state the interpreter performs no heap allocation and
// no writes to program storage; the wire-level "shrink" reply is
// synthesized from the cursor afterwards (proto::encode_executed).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "active/compiled_program.hpp"
#include "packet/active_packet.hpp"
#include "packet/program_view.hpp"
#include "rmt/pipeline.hpp"
#include "runtime/phv.hpp"

namespace artmt::telemetry {
class MetricsRegistry;
class StageHeatmap;
}  // namespace artmt::telemetry

namespace artmt::runtime {

struct RuntimeMetrics;  // telemetry handle bundle (runtime.cpp)
struct LaneState;       // per-packet execution lane (exec_core.hpp)
struct StageMemo;       // per-stage protection-table memo (exec_core.hpp)
class ExecBatch;        // batched stage-sweep engine (exec_batch.hpp)

// What the switch should do with the packet after execution.
enum class Verdict {
  kForward,         // to the resolved destination
  kReturnToSender,  // RTS: swap src/dst, send back out the ingress port
  kDrop,            // DROP instruction or execution fault
};

// Why a packet was dropped (kDrop verdicts only).
enum class Fault {
  kNone,
  kExplicitDrop,        // program executed DROP
  kProtectionViolation, // memory access outside the FID's region
  kNoAllocation,        // memory access by a FID with no entry in the stage
  kRecircLimit,         // exceeded the per-packet recirculation cap
  kRecircBudget,        // FID exhausted its recirculation-bandwidth budget
  kPrivilege,           // unprivileged program used a privileged opcode
  kMalformed,           // unparseable capsule
  kDeactivated,         // FID quiesced during reallocation (packet forwarded
                        // unprocessed; verdict stays kForward)
};

struct ExecutionResult {
  Verdict verdict = Verdict::kForward;
  Fault fault = Fault::kNone;
  Phv phv;                 // final PHV state (MBR etc. for tests)
  u32 passes = 1;          // pipeline passes consumed (1 = no recirculation)
  u32 stages_consumed = 0; // logical stages traversed while executing
  u32 instructions_executed = 0;
  bool executed = false;   // false when the FID was deactivated
  SimTime latency = 0;     // modeled in-switch latency (passes * pass cost)
  // Clone produced by FORK (continues as a forwarded packet).
  bool forked = false;
};

// Aggregate data-plane counters.
struct RuntimeStats {
  u64 packets = 0;
  u64 instructions = 0;
  u64 recirculations = 0;
  u64 drops_protection = 0;
  u64 drops_no_allocation = 0;
  u64 drops_recirc_limit = 0;
  u64 drops_recirc_budget = 0;
  u64 drops_privilege = 0;
  u64 drops_explicit = 0;
  u64 rts_packets = 0;
  u64 forwarded_unprocessed = 0;  // deactivated FIDs
};

// Per-FID recirculation-bandwidth governor (Section 7.2 contemplates a
// fairness controller that accounts for bandwidth inflation due to
// recirculations and rate-limits services): a token bucket of extra
// passes, refilled at `tokens_per_second`, holding at most `burst`.
struct RecircBudget {
  double tokens_per_second = 0.0;  // 0 = unlimited
  double burst = 0.0;
};

// Metadata the parser extracts from the surrounding (passive) headers and
// makes available to instructions (COPY_HASHDATA_5TUPLE).
struct PacketMeta {
  std::array<Word, active::kHashdataWords> five_tuple{};
};

// One executed (or skipped) instruction, as seen by a trace observer.
struct TraceEvent {
  u32 index = 0;          // instruction index in the capsule
  u32 logical_stage = 0;  // stage it occupied
  u32 pass = 0;           // 0-based pipeline pass
  active::Opcode op = active::Opcode::kNop;
  bool skipped = false;   // consumed its stage while branch-disabled
  Phv phv;                // PHV state AFTER the instruction
};

// Observer invoked per consumed stage; installed for debugging/tooling.
using TraceFn = std::function<void(const TraceEvent&)>;

// The per-packet state the interpreter reads and writes, decoupled from
// how the capsule is held: an owning ActivePacket and a zero-copy
// ProgramView both project onto this. `args` is required; the Ethernet
// address pointers are optional (RTS swaps them when present).
struct ExecContext {
  std::array<Word, active::kArgFields>* args = nullptr;
  Fid fid = 0;
  u8 flags = 0;
  packet::MacAddr* eth_src = nullptr;
  packet::MacAddr* eth_dst = nullptr;
};

class ActiveRuntime {
 public:
  explicit ActiveRuntime(rmt::Pipeline& pipeline);
  ~ActiveRuntime();

  // Core hot path: executes the immutable `program` against `ctx`,
  // threading all mutable execution state through `cursor` (reset
  // internally). Argument fields are updated through ctx.args by
  // MBR_STORE; executed instructions are recorded as done-bits in the
  // cursor; the program itself is never written. Performs no heap
  // allocation. `now` is the virtual time (feeds the recirculation
  // governor).
  ExecutionResult execute(const active::CompiledProgram& program,
                          ExecContext& ctx, active::ExecCursor& cursor,
                          const PacketMeta& meta = {}, SimTime now = 0);

  // Owning-packet adapter (bench/test paths and injected packets).
  ExecutionResult execute(const active::CompiledProgram& program,
                          packet::ActivePacket& pkt,
                          active::ExecCursor& cursor,
                          const PacketMeta& meta = {}, SimTime now = 0);

  // Zero-copy adapter: executes a parsed ProgramView in place. The view's
  // argument header and Ethernet addresses are updated; the frame buffer
  // it was parsed from is untouched (proto::encode_executed re-emits the
  // mutated headers).
  ExecutionResult execute(packet::ProgramView& view,
                          active::ExecCursor& cursor,
                          const PacketMeta& meta = {}, SimTime now = 0);

  // Compatibility wrapper: compiles `pkt.program` on the fly (or reuses
  // `pkt.compiled`), executes, then mirrors the cursor back into
  // `pkt.program` when present -- done flags are set and, unless
  // kFlagNoShrink, executed instructions are dropped from the wire form,
  // exactly as the pre-cursor runtime mutated packets in place.
  ExecutionResult execute(packet::ActivePacket& pkt,
                          const PacketMeta& meta = {}, SimTime now = 0);

  // --- Section 7.2 extensions ---
  // When enabled, forwarding-affecting opcodes (FORK, SET_DST, DROP)
  // require the kFlagPrivileged capsule flag (set by a trusted shim).
  void set_enforce_privilege(bool enforce) { enforce_privilege_ = enforce; }
  [[nodiscard]] bool enforce_privilege() const { return enforce_privilege_; }

  // Rate-limits a FID's recirculation bandwidth; packets whose extra
  // passes exceed the remaining budget are dropped (kRecircBudget).
  void set_recirc_budget(Fid fid, const RecircBudget& budget);
  void clear_recirc_budget(Fid fid);

  // Installs a per-stage trace observer (empty function disables).
  void set_trace(TraceFn trace) { trace_ = std::move(trace); }

  // Reallocation quiescing (Section 4.3): packets of a deactivated FID are
  // forwarded without execution until reactivated.
  void deactivate(Fid fid) { deactivated_.insert(fid); }
  void reactivate(Fid fid) { deactivated_.erase(fid); }
  [[nodiscard]] bool is_deactivated(Fid fid) const {
    return deactivated_.contains(fid);
  }

  [[nodiscard]] const RuntimeStats& stats() const { return stats_; }
  [[nodiscard]] rmt::Pipeline& pipeline() { return *pipeline_; }

  // Mirrors RuntimeStats into `metrics` under component "runtime"
  // (packets and recirculations also per-FID); nullptr detaches.
  void set_metrics(telemetry::MetricsRegistry* metrics);

  // Attaches a per-(stage, FID) memory-access heatmap; every memory op in
  // lane_step records a read/write/collision cell (gated by
  // telemetry::enabled(), like the metric handles). nullptr detaches. The
  // heatmap must be single-writer from this runtime's thread.
  void set_heatmap(telemetry::StageHeatmap* heatmap) { heatmap_ = heatmap; }
  [[nodiscard]] telemetry::StageHeatmap* heatmap() const { return heatmap_; }

 private:
  // The batch engine drives the same lane protocol the per-packet path
  // uses, so its results are byte-identical by construction.
  friend class ExecBatch;

  // Lane protocol (shared with ExecBatch; state structs in exec_core.hpp).
  // lane_begin runs the prologue (accounting, cursor reset, deactivation
  // early-out, preload); returns false when the lane finished there.
  // lane_step consumes exactly one logical stage (or marks the lane
  // halted); `memo` optionally amortizes the stage's protection lookup
  // across lanes of a sweep (nullptr on the per-packet path). lane_finish
  // runs the epilogue (passes, latency, recirculation charge, verdict)
  // and returns the result.
  bool lane_begin(const active::CompiledProgram& program, ExecContext& ctx,
                  active::ExecCursor& cursor, const PacketMeta& meta,
                  SimTime now, LaneState& lane);
  void lane_step(LaneState& lane, StageMemo* memo);
  ExecutionResult lane_finish(LaneState& lane);

  // Charges `extra_passes` against the FID's token bucket at time `now`;
  // false when the budget is exhausted.
  bool charge_recirculation(Fid fid, u32 extra_passes, SimTime now);

  struct BucketState {
    RecircBudget budget;
    double tokens = 0.0;
    SimTime last_refill = 0;
  };

  rmt::Pipeline* pipeline_;
  RuntimeStats stats_;
  std::unique_ptr<RuntimeMetrics> metrics_;
  std::unordered_set<Fid> deactivated_;
  std::unordered_map<Fid, BucketState> recirc_buckets_;
  bool enforce_privilege_ = false;
  TraceFn trace_;
  telemetry::StageHeatmap* heatmap_ = nullptr;
};

}  // namespace artmt::runtime
