#include "netsim/network.hpp"

#include <utility>

#include "netsim/sharded.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace.hpp"

namespace artmt::netsim {

void Node::assert_confined() const {
  const auto* ctx = detail::tls_shard;
  if (ctx == nullptr) return;  // serial engine or quiescent main thread
  if (network_ == nullptr || network_->sharded_ == nullptr) return;
  if (ctx->owner != network_->sharded_ || ctx->index != shard_) {
    throw UsageError("Node '" + name_ + "' owned by shard " +
                     std::to_string(shard_) +
                     " was touched from shard worker " +
                     std::to_string(ctx->index) +
                     " (schedule node work via schedule_on or the node's "
                     "own network().simulator())");
  }
}

Network::Network(ShardedSimulator& sharded) : sharded_(&sharded) {
  sharded.bind_network(*this);
  const u32 n = sharded.shards();
  shard_counters_.resize(n);
  for (u32 i = 0; i < n; ++i) {
    telemetry::MetricsRegistry& reg = sharded.shard_metrics(i);
    shard_counters_[i].m_delivered = &reg.counter("netsim", "frames_delivered");
    shard_counters_[i].m_bytes = &reg.counter("netsim", "bytes_delivered");
    shard_counters_[i].m_dropped = &reg.counter("netsim", "frames_dropped");
  }
}

Simulator& Network::shard_simulator() const {
  const auto* ctx = detail::tls_shard;
  if (ctx != nullptr && ctx->owner == sharded_) return *ctx->sim;
  // Quiescent: all shard clocks agree, so shard 0 stands in for "the"
  // simulator (tool code scheduling here lands on shard 0; use
  // ShardedSimulator::schedule_on to target another node's shard).
  return sharded_->shard_sim(0);
}

FramePool& Network::shard_pool() {
  const auto* ctx = detail::tls_shard;
  if (ctx != nullptr && ctx->owner == sharded_) return *ctx->pool;
  return sharded_->shard_pool(0);
}

void Network::set_metrics(telemetry::MetricsRegistry* metrics) {
  if (sharded_ != nullptr) {
    throw UsageError(
        "Network::set_metrics: sharded mode wires per-shard registries "
        "automatically; merge them via ShardedSimulator::merge_metrics_into");
  }
  if (metrics == nullptr) {
    m_delivered_ = nullptr;
    m_bytes_ = nullptr;
    m_dropped_ = nullptr;
    return;
  }
  m_delivered_ = &metrics->counter("netsim", "frames_delivered");
  m_bytes_ = &metrics->counter("netsim", "bytes_delivered");
  m_dropped_ = &metrics->counter("netsim", "frames_dropped");
}

u64 Network::frames_delivered() const {
  u64 total = frames_delivered_;
  for (const auto& c : shard_counters_) total += c.delivered;
  return total;
}

u64 Network::bytes_delivered() const {
  u64 total = bytes_delivered_;
  for (const auto& c : shard_counters_) total += c.bytes;
  return total;
}

u64 Network::frames_dropped() const {
  u64 total = frames_dropped_;
  for (const auto& c : shard_counters_) total += c.dropped;
  return total;
}

void Network::attach(std::shared_ptr<Node> node) {
  if (node == nullptr) throw UsageError("Network::attach: null node");
  if (node->network_ != nullptr) {
    throw UsageError("Network::attach: node already attached");
  }
  node->network_ = this;
  node->attach_index_ = static_cast<u32>(nodes_.size());
  nodes_.push_back(std::move(node));
  nodes_.back()->on_attach();
}

void Network::connect(Node& node_a, u32 port_a, Node& node_b, u32 port_b,
                      const LinkSpec& spec) {
  if (egress_.contains({&node_a, port_a}) ||
      egress_.contains({&node_b, port_b})) {
    throw UsageError("Network::connect: port already connected");
  }
  egress_.emplace(PortKey{&node_a, port_a}, Egress{{&node_b, port_b}, spec});
  egress_.emplace(PortKey{&node_b, port_b}, Egress{{&node_a, port_a}, spec});
}

void Network::count_drop(const Node& from, u32 port, std::size_t bytes) {
  if (sharded_ != nullptr) {
    const auto* ctx = detail::tls_shard;
    const u32 shard =
        (ctx != nullptr && ctx->owner == sharded_) ? ctx->index : 0;
    ShardCounters& c = shard_counters_[shard];
    ++c.dropped;
    if (c.m_dropped != nullptr) c.m_dropped->inc();
    // Trace emission is skipped under workers: the sink is a process
    // global and the hot path stays lock-free.
    return;
  }
  ++frames_dropped_;
  if (m_dropped_ != nullptr) m_dropped_->inc();
  if (auto* sink = telemetry::trace_sink()) {
    sink->emit("netsim", "frame_dropped", telemetry::kNoFid,
               {{"node", from.name()}, {"port", port}, {"bytes", bytes}});
  }
}

void Network::deliver(Node& dest, u32 port, Frame frame, u32 shard) {
  ShardCounters& c = shard_counters_[shard];
  ++c.delivered;
  c.bytes += frame.size();
  if (c.m_delivered != nullptr) {
    c.m_delivered->inc();
    c.m_bytes->inc(frame.size());
  }
  dest.on_frame(std::move(frame), port);
}

void Network::dispatch(const Endpoint& dest, Node& from, u64 tx_seq,
                       SimTime send, SimTime arrival, Frame frame) {
  if (sharded_ != nullptr) {
    const auto* ctx = detail::tls_shard;
    if (ctx != nullptr && ctx->owner == sharded_ &&
        dest.node->shard_ == ctx->index) {
      // Same-shard delivery: the slab already lives in this shard's pool
      // and no other worker can observe the event, so schedule it
      // directly instead of parking it in a mailbox until the barrier.
      // The canonical delivery key makes the queue position identical to
      // what a barrier drain would have produced, so this is purely a
      // scheduling relaxation -- it also frees the epoch window to be
      // derived from cross-shard link latencies alone.
      Node* node = dest.node;
      const u32 port = dest.port;
      const u32 shard = ctx->index;
      ctx->sim->schedule_delivery(
          arrival, send, from.attach_index_, tx_seq,
          [this, node, port, shard,
           span = telemetry::span_id(from.attach_index_, tx_seq),
           f = std::move(frame)]() mutable {
            // Delivery runs under the transmission's span, so anything the
            // handler sends is causally parented to this frame.
            telemetry::SpanScope scope(span);
            deliver(*node, port, std::move(f), shard);
          });
      return;
    }
    // Cross-shard (or quiescent) delivery: mailbox, drained at the epoch
    // barrier; ordering stays canonical because the drain schedules with
    // the same delivery key.
    ShardedSimulator::MailMsg msg;
    msg.net = this;
    msg.dest = dest.node;
    msg.port = dest.port;
    msg.src_shard = from.shard_;
    msg.src_index = from.attach_index_;
    msg.tx_seq = tx_seq;
    msg.send = send;
    msg.arrival = arrival;
    msg.frame = std::move(frame);
    sharded_->enqueue(std::move(msg));
    return;
  }
  sim_->schedule_delivery(
      arrival, send, from.attach_index_, tx_seq,
      [this, dest, span = telemetry::span_id(from.attach_index_, tx_seq),
       f = std::move(frame)]() mutable {
        telemetry::SpanScope scope(span);
        ++frames_delivered_;
        bytes_delivered_ += f.size();
        if (m_delivered_ != nullptr) {
          m_delivered_->inc();
          m_bytes_->inc(f.size());
        }
        dest.node->on_frame(std::move(f), dest.port);
      });
}

void Network::transmit(Node& from, u32 port, Frame frame) {
  from.assert_confined();
  const auto it = egress_.find({&from, port});
  if (it == egress_.end()) {
    count_drop(from, port, frame.size());  // unplugged port: frame is lost
    return;
  }
  const Egress& out = it->second;
  const Endpoint dest = out.peer;
  // Consumed unconditionally, by both engines, hook or not: the pair
  // (attach_index, tx_seq) names this transmission identically no matter
  // how the scenario is run, which is what keeps injected faults
  // shard-count-invariant.
  const u64 tx_seq = from.tx_seq_++;

  SimTime send;
  if (sharded_ != nullptr) {
    const auto* ctx = detail::tls_shard;
    send = (ctx != nullptr && ctx->owner == sharded_) ? ctx->sim->now()
                                                      : sharded_->now();
  } else {
    send = sim_->now();
  }

  // Span ids reuse the fault injector's (attach_index, tx_seq) key, so
  // they are byte-identical across engines and shard counts. Noted before
  // the hook runs: a dropped send still names a span, which is what lets
  // the reliability layer chain retransmits of lost frames.
  const bool spans = telemetry::spans_active();
  u64 span = 0;
  if (spans) {
    span = telemetry::span_id(from.attach_index_, tx_seq);
    telemetry::note_tx_span(span);
  }

  TransmitHook::Verdict verdict;
  if (hook_ != nullptr) {
    verdict = hook_->on_transmit(from, *dest.node, send, tx_seq, frame, pool());
    if (verdict.drop || verdict.copies == 0) {
      if (spans) {
        telemetry::span_emit_with([&](telemetry::SpanEvent& event) {
          event.ts = send;
          event.span = span;
          event.parent = telemetry::current_span();
          event.phase = telemetry::SpanPhase::kDrop;
          event.node = static_cast<u16>(from.attach_index_);
          event.b = frame.size();
        });
      }
      return;
    }
  }

  // Serialization delay: bytes * 8 / rate. At 40 Gbps a 256-byte frame
  // serializes in ~51 ns.
  const double bits = static_cast<double>(frame.size()) * 8.0;
  const auto serialize =
      static_cast<SimTime>(bits / out.spec.gbps);  // Gbps -> bits/ns
  const SimTime nominal = send + serialize + out.spec.latency;

  const auto emit_send = [&](u64 send_span, u64 parent, SimTime arrival,
                             std::size_t bytes) {
    telemetry::span_emit_with([&](telemetry::SpanEvent& event) {
      event.ts = send;
      event.span = send_span;
      event.parent = parent;
      event.phase = telemetry::SpanPhase::kSend;
      event.node = static_cast<u16>(from.attach_index_);
      event.a = static_cast<u64>(arrival);
      event.b = bytes;
    });
  };

  if (verdict.copies > 1) {
    // Injected duplicates: independent deep copies on the same link, each
    // consuming its own tx sequence slot (cloned before the original is
    // moved out, dispatched after it so same-arrival duplicates trail the
    // original in both engines' orderings).
    std::vector<Frame> dups;
    dups.reserve(verdict.copies - 1);
    for (u32 i = 1; i < verdict.copies; ++i) dups.push_back(pool().clone(frame));
    const SimTime arrival = nominal + verdict.extra_delay;
    if (spans) emit_send(span, telemetry::current_span(), arrival, frame.size());
    dispatch(dest, from, tx_seq, send, arrival, std::move(frame));
    for (auto& dup : dups) {
      const u64 dup_seq = from.tx_seq_++;
      const SimTime dup_arrival = nominal + verdict.dup_delay;
      if (spans) {
        // A duplicate is its own transmission, causally a child of the
        // original send.
        emit_send(telemetry::span_id(from.attach_index_, dup_seq), span,
                  dup_arrival, dup.size());
      }
      dispatch(dest, from, dup_seq, send, dup_arrival, std::move(dup));
    }
    return;
  }
  const SimTime arrival = nominal + verdict.extra_delay;
  if (spans) emit_send(span, telemetry::current_span(), arrival, frame.size());
  dispatch(dest, from, tx_seq, send, arrival, std::move(frame));
}

}  // namespace artmt::netsim
