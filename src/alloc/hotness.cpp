#include "alloc/hotness.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/heatmap.hpp"

namespace artmt::alloc {

HotnessTable::HotnessTable(HotnessConfig config) : config_(config) {
  if (config_.decay_shift == 0 || config_.decay_shift >= 64) {
    throw UsageError("HotnessTable: decay_shift must be in [1, 63]");
  }
}

HotnessTable::Row& HotnessTable::row(i32 fid, u32 stages) {
  Row& r = rows_[fid];
  if (r.score.size() < stages) {
    r.score.resize(stages, 0);
    r.last_reads.resize(stages, 0);
    r.last_writes.resize(stages, 0);
  }
  return r;
}

void HotnessTable::observe(const telemetry::StageHeatmap& heatmap) {
  const u32 stages = heatmap.stages();
  for (const i32 fid : heatmap.fids()) {
    Row& r = row(fid, stages);
    for (u32 s = 0; s < stages; ++s) {
      const auto* cell = heatmap.find(s, fid);
      if (cell == nullptr) continue;
      // Cumulative counters never regress while the heatmap lives; a
      // clear() resets them, so the delta base clamps rather than wraps.
      const u64 reads = std::max(cell->reads, r.last_reads[s]);
      const u64 writes = std::max(cell->writes, r.last_writes[s]);
      const u64 delta = (reads - r.last_reads[s]) + (writes - r.last_writes[s]);
      r.last_reads[s] = cell->reads;
      r.last_writes[s] = cell->writes;
      r.score[s] += delta;
      r.total += delta;
    }
  }
}

void HotnessTable::decay() {
  for (auto& [fid, r] : rows_) {
    u64 total = 0;
    for (u64& s : r.score) {
      s >>= config_.decay_shift;
      total += s;
    }
    r.total = total;
    if (total <= config_.cold_threshold) {
      ++r.cold_streak;
    } else {
      r.cold_streak = 0;
    }
  }
}

void HotnessTable::forget(i32 fid) { rows_.erase(fid); }

u64 HotnessTable::score(i32 fid) const {
  const auto it = rows_.find(fid);
  return it == rows_.end() ? 0 : it->second.total;
}

u64 HotnessTable::stage_score(i32 fid, u32 stage) const {
  const auto it = rows_.find(fid);
  if (it == rows_.end() || stage >= it->second.score.size()) return 0;
  return it->second.score[stage];
}

u32 HotnessTable::cold_streak(i32 fid) const {
  const auto it = rows_.find(fid);
  return it == rows_.end() ? 0 : it->second.cold_streak;
}

bool HotnessTable::is_cold(i32 fid) const {
  const auto it = rows_.find(fid);
  return it != rows_.end() && it->second.cold_streak >= config_.cold_ticks;
}

std::vector<std::pair<i32, u64>> HotnessTable::ranked() const {
  std::vector<std::pair<i32, u64>> out;
  out.reserve(rows_.size());
  for (const auto& [fid, r] : rows_) out.emplace_back(fid, r.total);
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

std::vector<u64> HotnessTable::stage_totals(u32 stages) const {
  std::vector<u64> totals(stages, 0);
  for (const auto& [fid, r] : rows_) {
    const std::size_t n = std::min<std::size_t>(stages, r.score.size());
    for (std::size_t s = 0; s < n; ++s) totals[s] += r.score[s];
  }
  return totals;
}

u64 HotnessTable::total_score() const {
  u64 total = 0;
  for (const auto& [fid, r] : rows_) total += r.total;
  return total;
}

}  // namespace artmt::alloc
