file(REMOVE_RECURSE
  "CMakeFiles/artmt_alloc.dir/allocator.cpp.o"
  "CMakeFiles/artmt_alloc.dir/allocator.cpp.o.d"
  "CMakeFiles/artmt_alloc.dir/mutant.cpp.o"
  "CMakeFiles/artmt_alloc.dir/mutant.cpp.o.d"
  "CMakeFiles/artmt_alloc.dir/stage_state.cpp.o"
  "CMakeFiles/artmt_alloc.dir/stage_state.cpp.o.d"
  "libartmt_alloc.a"
  "libartmt_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artmt_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
