#!/usr/bin/env python3
"""Throughput regression gate over the committed bench baselines.

Collects every throughput leaf in the working-tree bench JSONs --
``packets_per_sec`` in BENCH_datapath.json, ``indexed_allocs_per_sec``,
``speedup`` and ``admissions_per_sec`` in BENCH_alloc.json, and the
migration soak's ``sustained_utilization`` / ``rejection_reduction_pct``
in BENCH_migration.json, and the fabric failure drill's
``downtime_p99_ms`` / ``downtime_max_ms`` / ``zero_state_loss_fraction``
in BENCH_fabric.json -- and compares each against the
committed baseline (``git show HEAD:<file>`` by default). Exits nonzero
when any section regresses by more than the threshold (10% unless
--threshold says otherwise). Sections present on only one side are
reported but never fail the gate: new benchmarks have no baseline, and
retired ones have no current value. A bench file missing from the
working tree is skipped with a notice (its bench may not have run).

Stdlib only; runs anywhere git and python3 exist.

Usage: scripts/bench_compare.py [--threshold 0.10]
                                [--file BENCH_datapath.json]
                                [--alloc-file BENCH_alloc.json]
                                [--migration-file BENCH_migration.json]
                                [--fabric-file BENCH_fabric.json]
                                [--baseline-ref HEAD]
"""

import argparse
import json
import subprocess
import sys


def metric_leaves(obj, keys, path=""):
    """Yields (section-path, value) for every leaf named in `keys`."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            child = f"{path}.{key}" if path else key
            if key in keys and isinstance(value, (int, float)):
                yield child, float(value)
            else:
                yield from metric_leaves(value, keys, child)
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            yield from metric_leaves(value, keys, f"{path}[{i}]")


def load_json(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError):
        return None


def load_baseline(ref, path):
    try:
        text = subprocess.run(
            ["git", "show", f"{ref}:{path}"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (subprocess.CalledProcessError, OSError):
        return None
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return None


def compare(name, current, baseline, threshold, skip_section=None,
            lower_is_better=frozenset()):
    """Prints the per-section report; returns the regression list.

    Sections whose leaf key is in `lower_is_better` regress when they
    grow (latency-style metrics) instead of when they shrink.
    """
    regressions = []
    skipped = []
    for section in sorted(current.keys() | baseline.keys()):
        if skip_section is not None and skip_section(section):
            skipped.append(section)
            continue
        cur = current.get(section)
        base = baseline.get(section)
        if cur is None:
            print(f"  {section}: retired (baseline {base:.0f})")
            continue
        if base is None:
            print(f"  {section}: new ({cur:.0f}, no baseline)")
            continue
        if base <= 0:
            continue
        delta = cur / base - 1.0
        if section.rsplit(".", 1)[-1] in lower_is_better:
            delta = -delta
        mark = ""
        if delta < -threshold:
            regressions.append((section, base, cur, delta))
            mark = "  << REGRESSION"
        print(f"  {section}: {base:.0f} -> {cur:.0f} ({delta:+.1%}){mark}")
    for section in skipped:
        print(f"  {section}: SKIPPED (single-core/unenforced run)")
    if regressions:
        print(f"bench_compare: {name}: {len(regressions)} section(s) "
              f"regressed more than {threshold:.0%}", file=sys.stderr)
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional drop (default 0.10)")
    parser.add_argument("--file", default="BENCH_datapath.json")
    parser.add_argument("--alloc-file", default="BENCH_alloc.json")
    parser.add_argument("--migration-file", default="BENCH_migration.json")
    parser.add_argument("--fabric-file", default="BENCH_fabric.json")
    parser.add_argument("--baseline-ref", default="HEAD")
    args = parser.parse_args()

    regressions = []
    compared_any = False

    # --- datapath: packets_per_sec leaves ---
    datapath = load_json(args.file)
    if datapath is None:
        print(f"bench_compare: cannot read {args.file}", file=sys.stderr)
        return 2
    current = dict(metric_leaves(datapath, {"packets_per_sec"}))

    # Sharded speedup numbers are contention-distorted on hosts without
    # enough cores to actually run the workers in parallel; bench_micro
    # records the host core count and whether it enforced the speedup
    # gates. Skip those sections here with an unmissable notice instead
    # of letting a cramped runner quietly pass (or fail) the comparison.
    cores = datapath.get("cores")
    enforced = datapath.get("sharding", {}).get("gates_enforced", True)
    skip_sharding = (cores is not None and cores < 4) or not enforced
    if skip_sharding:
        print("=" * 68, file=sys.stderr)
        print(f"bench_compare: NOTICE: host has {cores} core(s) and "
              f"gates_enforced={str(enforced).lower()} -- sharded speedup "
              "sections SKIPPED,\nnot compared. Rerun on a >=4-core host "
              "to exercise the sharding gates.", file=sys.stderr)
        print("=" * 68, file=sys.stderr)

    baseline_json = load_baseline(args.baseline_ref, args.file)
    if baseline_json is None:
        print(f"bench_compare: no baseline {args.file} at "
              f"{args.baseline_ref}; nothing to compare")
    else:
        compared_any = True
        baseline = dict(metric_leaves(baseline_json, {"packets_per_sec"}))
        regressions += compare(
            args.file, current, baseline, args.threshold,
            skip_section=(lambda s: s.startswith("sharding."))
            if skip_sharding else None)

    # --- allocator: allocations/sec + indexed-vs-rescan speedup ---
    # The speedup ratio is intra-process (both sides timed in the same
    # run), so it stays meaningful on slow or contended runners where
    # absolute allocs/sec would flake.
    alloc_keys = {"indexed_allocs_per_sec", "speedup", "admissions_per_sec"}
    alloc = load_json(args.alloc_file)
    if alloc is None:
        print(f"bench_compare: NOTICE: {args.alloc_file} not present; "
              "allocator sections not compared (run bench_alloc first)")
    else:
        alloc_baseline = load_baseline(args.baseline_ref, args.alloc_file)
        if alloc_baseline is None:
            print(f"bench_compare: no baseline {args.alloc_file} at "
                  f"{args.baseline_ref}; nothing to compare")
        else:
            compared_any = True
            regressions += compare(
                args.alloc_file, dict(metric_leaves(alloc, alloc_keys)),
                dict(metric_leaves(alloc_baseline, alloc_keys)),
                args.threshold)

    # --- migration soak: sustained utilization + rejection reduction ---
    # Both are virtual-time quantities (modeled compute), so a drop means
    # the engine's steady-state win shrank, not that the runner was slow.
    # The full-mode soak takes minutes, so an absent file is a loud skip,
    # never a silent pass.
    mig_keys = {"sustained_utilization", "rejection_reduction_pct"}
    migration = load_json(args.migration_file)
    if migration is None:
        print("=" * 68, file=sys.stderr)
        print(f"bench_compare: NOTICE: {args.migration_file} not present -- "
              "migration soak sections\nSKIPPED, not compared. Run "
              "bench_migration (full mode, no ARTMT_BENCH_QUICK)\nto "
              "regenerate it.", file=sys.stderr)
        print("=" * 68, file=sys.stderr)
    else:
        mig_baseline = load_baseline(args.baseline_ref, args.migration_file)
        if mig_baseline is None:
            print(f"bench_compare: no baseline {args.migration_file} at "
                  f"{args.baseline_ref}; nothing to compare")
        else:
            compared_any = True
            regressions += compare(
                args.migration_file, dict(metric_leaves(migration, mig_keys)),
                dict(metric_leaves(mig_baseline, mig_keys)),
                args.threshold)

    # --- fabric failure drill: downtime percentiles + state-loss ---
    # Virtual-time quantities from the deterministic fabric drill, so any
    # movement is a behavior change, not runner noise. Downtime regresses
    # when it GROWS; zero_state_loss_fraction regresses when it shrinks.
    # The full-mode drill rewrites BENCH_fabric.json; an absent file is a
    # loud skip, never a silent pass.
    fabric_keys = {"downtime_p99_ms", "downtime_max_ms",
                   "zero_state_loss_fraction"}
    fabric = load_json(args.fabric_file)
    if fabric is None:
        print("=" * 68, file=sys.stderr)
        print(f"bench_compare: NOTICE: {args.fabric_file} not present -- "
              "fabric failure-drill sections\nSKIPPED, not compared. Run "
              "bench_fabric (full mode, no ARTMT_BENCH_QUICK)\nto "
              "regenerate it.", file=sys.stderr)
        print("=" * 68, file=sys.stderr)
    else:
        fab_baseline = load_baseline(args.baseline_ref, args.fabric_file)
        if fab_baseline is None:
            print(f"bench_compare: no baseline {args.fabric_file} at "
                  f"{args.baseline_ref}; nothing to compare")
        else:
            compared_any = True
            regressions += compare(
                args.fabric_file, dict(metric_leaves(fabric, fabric_keys)),
                dict(metric_leaves(fab_baseline, fabric_keys)),
                args.threshold,
                lower_is_better=frozenset(
                    {"downtime_p99_ms", "downtime_max_ms"}))

    if regressions:
        return 1
    print("bench_compare: OK" if compared_any
          else "bench_compare: nothing to compare")
    return 0


if __name__ == "__main__":
    sys.exit(main())
