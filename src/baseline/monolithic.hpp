// The deployment model ActiveRMT replaces: a monolithic P4 image that
// statically composes every service instance at compile time. Sections
// 1, 2.1, 6.1 and 6.2 characterize it: each instance consumes dedicated
// match-action resources laid out along its dependency chain, changing
// the service set requires a full recompile (28.79 s measured for a
// 22-instance cache image) plus a switch re-provision that blacks out
// all traffic for tens of milliseconds, and memory shares are fixed
// until the next recompile. Default parameters reproduce the paper's
// 22-instance bound for the minimal two-stage cache.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace artmt::baseline {

struct BaselineConfig {
  u32 pipes = 2;             // independent ingress+egress pipe pairs used
  u32 stages_per_pipe = 12;  // physical match-action stages per pipe
  u32 reserved_stages = 1;   // parser/forwarding overhead per pipe
  u32 parallel_tables = 2;   // independent table instances per stage
  u32 words_per_stage = 94'208;

  // Measured constants from the paper (Section 6.2 / [5]).
  SimTime compile_time = static_cast<SimTime>(28.79 * kSecond);
  SimTime reprovision_blackout = 50 * kMillisecond;
};

// A service as the static composer sees it: the length of its
// read-after-read dependency chain (stages it must occupy in sequence)
// and the register words it wants per memory stage.
struct StaticApp {
  u32 dependency_depth = 2;  // the minimal cache: key stage -> value stage
  u32 memory_stages = 2;
  u32 words_demanded = 0;  // 0 = takes an equal share
};

class MonolithicBaseline {
 public:
  explicit MonolithicBaseline(const BaselineConfig& config = {});

  // Maximum isolated instances of `app` a single image can hold: each
  // pipe stacks `parallel_tables` chains side by side along
  // floor(usable_stages / depth) sequential slots.
  [[nodiscard]] u32 max_instances(const StaticApp& app) const;

  // Latency to change the deployed service set (any change: add, remove,
  // or resize one instance): recompile + re-provision. Every packet of
  // every service is disrupted for the blackout.
  [[nodiscard]] SimTime redeployment_latency() const;
  [[nodiscard]] SimTime traffic_disruption() const;

  // Static memory partitioning: with `instances` equal-share tenants of
  // `app`, the fraction of total register memory actually usable. Shares
  // cannot be rebalanced between recompiles, so departed tenants' memory
  // is stranded until the next image (the utilization penalty ActiveRMT's
  // Section 4 removes).
  [[nodiscard]] double static_utilization(const StaticApp& app,
                                          u32 provisioned_instances,
                                          u32 active_instances) const;

  [[nodiscard]] const BaselineConfig& config() const { return config_; }

 private:
  BaselineConfig config_;
};

}  // namespace artmt::baseline
