# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("netsim")
subdirs("packet")
subdirs("active")
subdirs("rmt")
subdirs("runtime")
subdirs("alloc")
subdirs("proto")
subdirs("baseline")
subdirs("p4gen")
subdirs("controller")
subdirs("workload")
subdirs("stats")
subdirs("client")
subdirs("apps")
