// Active-program representation and its on-wire instruction encoding.
// Each instruction is two bytes (Section 3.3): a one-byte opcode and a
// one-byte flag. Flag layout in this implementation:
//   bit 7       `done` -- set once executed so the parser can discard the
//               field (the packet-shrink optimization of Section 3.1)
//   bits 3..6   label id (1..15; 0 = unlabeled / no target)
//   bits 0..2   operand (argument-field index for loads/stores)
#pragma once

#include <string>
#include <vector>

#include "active/isa.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"

namespace artmt::active {

struct Instruction {
  Opcode op = Opcode::kNop;
  u8 operand = 0;  // arg-field index (0..3) where OperandKind::kArgIndex
  u8 label = 0;    // for branches: target label; for any insn: its own label
  bool done = false;

  [[nodiscard]] u8 flag_byte() const;
  static Instruction from_bytes(u8 opcode_byte, u8 flag_byte);

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

// A sequence of instructions (EOF terminator is implicit in memory and
// explicit on the wire). Also carries the pre-load metadata of Appendix C:
// initial MAR/MBR values taken from argument fields before stage 0 executes,
// which lets memory in the first stage be addressed without a MAR_LOAD.
class Program {
 public:
  Program() = default;
  explicit Program(std::vector<Instruction> code) : code_(std::move(code)) {}

  [[nodiscard]] const std::vector<Instruction>& code() const { return code_; }
  [[nodiscard]] std::vector<Instruction>& code() { return code_; }
  [[nodiscard]] std::size_t size() const { return code_.size(); }
  [[nodiscard]] bool empty() const { return code_.empty(); }

  void push(Instruction insn) { code_.push_back(insn); }

  // Appendix C "preloading": when set, the runtime seeds MAR (resp. MBR)
  // from args[0] (resp. args[1]) before the first stage.
  bool preload_mar = false;
  bool preload_mbr = false;

  // Serializes instructions followed by an EOF marker.
  void serialize(ByteWriter& out) const;

  // Parses up to and including the EOF marker; throws ParseError if EOF is
  // missing or an opcode byte is unknown.
  static Program parse(ByteReader& in);

  // Disassembly for diagnostics ("MAR_LOAD $0\nMEM_READ\n...").
  [[nodiscard]] std::string to_text() const;

  // Wire size in bytes including the EOF instruction.
  [[nodiscard]] std::size_t wire_size() const { return (code_.size() + 1) * 2; }

  friend bool operator==(const Program&, const Program&) = default;

 private:
  std::vector<Instruction> code_;
};

// Static analysis used by the client compiler and the allocator front end.
struct ProgramAnalysis {
  // 0-based instruction indices of memory-access instructions, in order.
  std::vector<u32> access_positions;
  // 0-based indices of RTS/CRTS instructions (want ingress placement).
  std::vector<u32> rts_positions;
  // 0-based indices of FORK instructions (force recirculation).
  std::vector<u32> fork_positions;
  // Total instruction count (excluding EOF).
  u32 length = 0;
  // True when every branch target label exists at a position after the
  // branch (the sequential-execution requirement of Section 3.1).
  bool branches_forward = true;
};

ProgramAnalysis analyze(const Program& program);

// Rewrites the program so that its i-th memory access executes at logical
// stage `stage_of_access[i]` (0-based), by inserting NOPs ("mutation",
// Section 4.1). Positions must be non-decreasing in gaps relative to the
// original program; throws UsageError otherwise.
Program mutate(const Program& program, std::span<const u32> stage_of_access);

}  // namespace artmt::active
