
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rmt/hash.cpp" "src/rmt/CMakeFiles/artmt_rmt.dir/hash.cpp.o" "gcc" "src/rmt/CMakeFiles/artmt_rmt.dir/hash.cpp.o.d"
  "/root/repo/src/rmt/pipeline.cpp" "src/rmt/CMakeFiles/artmt_rmt.dir/pipeline.cpp.o" "gcc" "src/rmt/CMakeFiles/artmt_rmt.dir/pipeline.cpp.o.d"
  "/root/repo/src/rmt/register_array.cpp" "src/rmt/CMakeFiles/artmt_rmt.dir/register_array.cpp.o" "gcc" "src/rmt/CMakeFiles/artmt_rmt.dir/register_array.cpp.o.d"
  "/root/repo/src/rmt/stage.cpp" "src/rmt/CMakeFiles/artmt_rmt.dir/stage.cpp.o" "gcc" "src/rmt/CMakeFiles/artmt_rmt.dir/stage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/artmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
