# Empty compiler generated dependencies file for artmt_trace.
# This may be replaced when dependencies are built.
