#include "packet/ethernet.hpp"

namespace artmt::packet {

namespace {

template <typename Writer>
void put_mac(Writer& out, MacAddr mac) {
  out.put_u16(static_cast<u16>(mac >> 32));
  out.put_u32(static_cast<u32>(mac));
}

MacAddr get_mac(ByteReader& in) {
  const u64 high = in.get_u16();
  const u64 low = in.get_u32();
  return (high << 32) | low;
}

}  // namespace

void EthernetHeader::serialize(ByteWriter& out) const {
  put_mac(out, dst);
  put_mac(out, src);
  out.put_u16(ethertype);
}

void EthernetHeader::serialize(SpanWriter& out) const {
  put_mac(out, dst);
  put_mac(out, src);
  out.put_u16(ethertype);
}

EthernetHeader EthernetHeader::parse(ByteReader& in) {
  EthernetHeader header;
  header.dst = get_mac(in);
  header.src = get_mac(in);
  header.ethertype = in.get_u16();
  return header;
}

}  // namespace artmt::packet
