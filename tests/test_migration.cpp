// Tests for the background migration & defragmentation engine (ROADMAP
// item 2): the decayed hotness table (half-life, coldness hysteresis,
// observation clamping), heatmap shard-merge edge cases, the bounded
// remap queue, planner determinism, the allocator's demote / promote /
// re-slide primitives, Controller::migrate's sentinel handshake, and the
// end-to-end SwitchNode engine -- post-migration register state must be
// byte-identical across shard counts, fault-free and under a FaultPlan.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "alloc/hotness.hpp"
#include "apps/cache_service.hpp"
#include "apps/kv.hpp"
#include "apps/programs.hpp"
#include "apps/server_node.hpp"
#include "client/client_node.hpp"
#include "controller/controller.hpp"
#include "controller/migration.hpp"
#include "controller/switch_node.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "netsim/sharded.hpp"
#include "telemetry/heatmap.hpp"
#include "workload/zipf.hpp"

namespace artmt {
namespace {

using controller::MigrationPlanner;
using controller::MigrationPolicy;
using controller::RemapKind;
using controller::RemapQueue;
using controller::RemapRequest;

// --- hotness table ---------------------------------------------------------

TEST(Hotness, DecayShiftOneIsOneTickHalfLife) {
  telemetry::StageHeatmap heatmap(4);
  alloc::HotnessTable table;  // decay_shift 1
  for (int i = 0; i < 64; ++i) heatmap.record_read(0, 7);

  table.tick(heatmap);  // observe 64, then one decay
  EXPECT_EQ(table.score(7), 32u);
  for (u64 expect : {16u, 8u, 4u, 2u, 1u, 0u}) {
    table.tick(heatmap);  // cumulative counters unchanged: pure decay
    EXPECT_EQ(table.score(7), expect);
  }
}

TEST(Hotness, ColdOnlyAfterConsecutiveQuietTicks) {
  telemetry::StageHeatmap heatmap(4);
  alloc::HotnessTable table;  // threshold 8, cold_ticks 3
  for (int i = 0; i < 64; ++i) heatmap.record_read(0, 7);

  // 64 -> 32 -> 16 are warm; 8 is the first cold epoch; cold on the third.
  table.tick(heatmap);
  table.tick(heatmap);
  EXPECT_EQ(table.cold_streak(7), 0u);
  table.tick(heatmap);  // 8 <= threshold
  EXPECT_EQ(table.cold_streak(7), 1u);
  table.tick(heatmap);
  EXPECT_FALSE(table.is_cold(7));
  table.tick(heatmap);
  EXPECT_TRUE(table.is_cold(7));

  // Fresh traffic resets the streak in one tick.
  for (int i = 0; i < 64; ++i) heatmap.record_read(1, 7);
  table.tick(heatmap);
  EXPECT_EQ(table.cold_streak(7), 0u);
  EXPECT_FALSE(table.is_cold(7));
}

TEST(Hotness, SingleSampleDecaysToZeroThenColds) {
  telemetry::StageHeatmap heatmap(2);
  alloc::HotnessTable table;
  heatmap.record_read(0, 3);

  table.tick(heatmap);  // 1 >> 1 == 0: immediately below threshold
  EXPECT_EQ(table.score(3), 0u);
  EXPECT_EQ(table.cold_streak(3), 1u);
  table.tick(heatmap);
  table.tick(heatmap);
  EXPECT_TRUE(table.is_cold(3));
  EXPECT_TRUE(table.tracked(3));
}

TEST(Hotness, UntrackedFidIsNeverCold) {
  alloc::HotnessTable table;
  EXPECT_FALSE(table.is_cold(42));
  EXPECT_EQ(table.score(42), 0u);
  EXPECT_EQ(table.cold_streak(42), 0u);
}

TEST(Hotness, ForgetDropsTheRow) {
  telemetry::StageHeatmap heatmap(2);
  alloc::HotnessTable table;
  for (int i = 0; i < 32; ++i) heatmap.record_write(0, 9);
  table.tick(heatmap);
  ASSERT_GT(table.score(9), 0u);

  table.forget(9);
  EXPECT_FALSE(table.tracked(9));
  EXPECT_EQ(table.score(9), 0u);
  // A reused FID starts fresh: the old cumulative base is gone, so the
  // full current counter is absorbed as new traffic.
  table.tick(heatmap);
  EXPECT_EQ(table.score(9), 16u);
}

TEST(Hotness, ObserveClampsAfterHeatmapClear) {
  telemetry::StageHeatmap heatmap(2);
  alloc::HotnessTable table;
  for (int i = 0; i < 16; ++i) heatmap.record_read(0, 5);
  table.tick(heatmap);
  EXPECT_EQ(table.score(5), 8u);

  // A cleared heatmap regresses the cumulative counters; the delta base
  // clamps (no u64 wrap-around explosion) and re-bases on the new counts.
  heatmap.clear();
  for (int i = 0; i < 4; ++i) heatmap.record_read(0, 5);
  table.tick(heatmap);
  EXPECT_EQ(table.score(5), 4u);  // 8 >> 1, no new delta absorbed
  for (int i = 0; i < 4; ++i) heatmap.record_read(0, 5);
  table.tick(heatmap);
  EXPECT_EQ(table.score(5), 4u);  // (4 + 4-new) >> 1: re-based cleanly
}

TEST(Hotness, RankedOrdersHottestFirstWithFidTiebreak) {
  telemetry::StageHeatmap heatmap(2);
  alloc::HotnessTable table;
  for (int i = 0; i < 8; ++i) heatmap.record_read(0, 2);
  for (int i = 0; i < 32; ++i) heatmap.record_read(0, 1);
  for (int i = 0; i < 8; ++i) heatmap.record_read(1, 3);
  table.tick(heatmap);

  const auto ranked = table.ranked();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].first, 1);  // 16
  EXPECT_EQ(ranked[1].first, 2);  // 4, fid tiebreak vs 3
  EXPECT_EQ(ranked[2].first, 3);
}

// --- heatmap shard merges --------------------------------------------------

std::string heatmap_json(const telemetry::StageHeatmap& h) {
  std::ostringstream os;
  h.snapshot_json(os);
  return os.str();
}

TEST(HeatmapMerge, OrderInvariantAndEmptyShardSafe) {
  telemetry::StageHeatmap a(4);
  telemetry::StageHeatmap b(4);
  telemetry::StageHeatmap empty(4);
  for (int i = 0; i < 10; ++i) a.record_read(0, 1);
  for (int i = 0; i < 5; ++i) a.record_write(1, 2);
  for (int i = 0; i < 3; ++i) b.record_read(0, 1);  // overlaps a's cell
  b.record_collision(3, 2);

  telemetry::StageHeatmap forward(4);
  forward.merge_from(a);
  forward.merge_from(b);
  forward.merge_from(empty);
  telemetry::StageHeatmap backward(4);
  backward.merge_from(empty);
  backward.merge_from(b);
  backward.merge_from(a);

  EXPECT_EQ(heatmap_json(forward), heatmap_json(backward));
  EXPECT_EQ(forward.total_accesses(1), 13u);
  EXPECT_EQ(forward.total_accesses(2), 6u);
  // Merging an empty shard into an empty map stays empty.
  telemetry::StageHeatmap still_empty(4);
  still_empty.merge_from(empty);
  EXPECT_TRUE(still_empty.fids().empty());
}

TEST(HeatmapMerge, MergedShardsFeedHotnessLikeOneMap) {
  telemetry::StageHeatmap a(2);
  telemetry::StageHeatmap b(2);
  for (int i = 0; i < 12; ++i) a.record_read(0, 1);
  for (int i = 0; i < 20; ++i) b.record_write(1, 1);

  telemetry::StageHeatmap merged(2);
  merged.merge_from(b);
  merged.merge_from(a);
  alloc::HotnessTable from_merged;
  from_merged.tick(merged);

  telemetry::StageHeatmap single(2);
  for (int i = 0; i < 12; ++i) single.record_read(0, 1);
  for (int i = 0; i < 20; ++i) single.record_write(1, 1);
  alloc::HotnessTable from_single;
  from_single.tick(single);

  EXPECT_EQ(from_merged.score(1), from_single.score(1));
  EXPECT_EQ(from_merged.stage_score(1, 0), from_single.stage_score(1, 0));
  EXPECT_EQ(from_merged.stage_score(1, 1), from_single.stage_score(1, 1));
}

// --- remap queue -----------------------------------------------------------

TEST(RemapQueueTest, DedupThenCongestionThenFifo) {
  RemapQueue queue(2);
  EXPECT_TRUE(queue.push({1, RemapKind::kDemote, 0, 0}));
  EXPECT_FALSE(queue.push({1, RemapKind::kReslide, 3, 0}));  // dup FID
  EXPECT_TRUE(queue.push({2, RemapKind::kPromote, 0, 0}));
  EXPECT_FALSE(queue.push({3, RemapKind::kDemote, 0, 0}));  // full

  EXPECT_EQ(queue.stats().duplicates, 1u);
  EXPECT_EQ(queue.stats().congestion_drops, 1u);
  EXPECT_EQ(queue.stats().high_water, 2u);

  const auto first = queue.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->fid, 1u);
  EXPECT_EQ(first->kind, RemapKind::kDemote);
  EXPECT_FALSE(queue.contains(1));
  EXPECT_TRUE(queue.push({3, RemapKind::kDemote, 0, 0}));  // slot freed
  EXPECT_EQ(queue.pop()->fid, 2u);
  EXPECT_EQ(queue.pop()->fid, 3u);
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_EQ(queue.stats().popped, 3u);
}

TEST(RemapQueueTest, DropFidPurgesQueuedRequest) {
  RemapQueue queue(4);
  queue.push({1, RemapKind::kDemote, 0, 0});
  queue.push({2, RemapKind::kReslide, 5, 0});
  queue.drop_fid(1);
  queue.drop_fid(9);  // absent: no-op
  EXPECT_EQ(queue.stats().purged, 1u);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.pop()->fid, 2u);
}

TEST(RemapQueueTest, ZeroDepthThrows) {
  EXPECT_THROW(RemapQueue(0), UsageError);
}

TEST(PlannerConfig, ZeroPlansPerCycleThrows) {
  MigrationPolicy policy;
  policy.max_plans_per_cycle = 0;
  EXPECT_THROW(MigrationPlanner{policy}, UsageError);
}

// --- allocator migration primitives ---------------------------------------

constexpr alloc::StageGeometry kGeom{20, 10};

alloc::AllocationRequest inelastic_two_blocks() {
  alloc::AllocationRequest r;
  r.accesses = {alloc::AccessDemand{4, 2, -1}};
  r.program_length = 12;
  return r;
}

TEST(AllocatorMigration, DemotePromoteRoundTrip) {
  alloc::Allocator alloc(kGeom, 368);
  const auto cache = alloc.allocate(apps::cache_request());
  ASSERT_TRUE(cache.success);
  const auto grown = alloc.regions_of(cache.app);
  u64 grown_blocks = 0;
  for (const auto& [stage, region] : grown) grown_blocks += region.size();
  ASSERT_GT(grown_blocks, grown.size());  // uncapped: more than the minimum

  const auto demoted = alloc.demote_elastic(cache.app);
  EXPECT_TRUE(alloc.demoted(cache.app));
  ASSERT_FALSE(demoted.empty());  // the target's own share moved
  u64 min_blocks = 0;
  for (const auto& [stage, region] : alloc.regions_of(cache.app)) {
    min_blocks += region.size();
  }
  EXPECT_EQ(min_blocks, grown.size());  // one block (the minimum) per stage
  // Idempotent: demoting a demoted app is a graceful no-op.
  EXPECT_TRUE(alloc.demote_elastic(cache.app).empty());

  const auto promoted = alloc.promote_elastic(cache.app);
  EXPECT_FALSE(alloc.demoted(cache.app));
  ASSERT_FALSE(promoted.empty());
  EXPECT_EQ(alloc.regions_of(cache.app), grown);  // share fully restored
  EXPECT_TRUE(alloc.promote_elastic(cache.app).empty());
}

TEST(AllocatorMigration, DemoteRejectsInelasticAndUnknown) {
  alloc::Allocator alloc(kGeom, 368);
  const auto hh = alloc.allocate(apps::hh_request());
  ASSERT_TRUE(hh.success);
  EXPECT_TRUE(alloc.demote_elastic(hh.app).empty());
  EXPECT_FALSE(alloc.demoted(hh.app));
  EXPECT_TRUE(alloc.demote_elastic(12345).empty());
  EXPECT_TRUE(alloc.promote_elastic(12345).empty());
}

TEST(AllocatorMigration, ReslideCompactsAFragmentedStage) {
  // First-fit so the compaction direction is deterministic: freed holes
  // are reused lowest-first.
  alloc::Allocator alloc(kGeom, 8, alloc::Scheme::kFirstFit);
  const auto a = alloc.allocate(inelastic_two_blocks());
  const auto b = alloc.allocate(inelastic_two_blocks());
  const auto c = alloc.allocate(inelastic_two_blocks());
  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  ASSERT_TRUE(c.success);
  ASSERT_EQ(a.regions.begin()->first, b.regions.begin()->first);
  ASSERT_EQ(b.regions.begin()->first, c.regions.begin()->first);
  const u32 stage = a.regions.begin()->first;

  alloc.deallocate(b.app);  // two-block hole below c's region
  ASSERT_LT(alloc.stage(stage).largest_free_run(),
            alloc.stage(stage).free_blocks());

  const auto move = alloc.reallocate_app(c.app);
  EXPECT_TRUE(move.success);
  EXPECT_TRUE(move.moved);
  EXPECT_NE(move.old_regions, move.new_regions);
  // The stage is compact again: every free block is in one run.
  EXPECT_EQ(alloc.stage(stage).largest_free_run(),
            alloc.stage(stage).free_blocks());

  // Re-sliding an already-compact resident reports !moved, no disturbance.
  const auto again = alloc.reallocate_app(c.app);
  EXPECT_TRUE(again.success);
  EXPECT_FALSE(again.moved);
  EXPECT_TRUE(again.reallocated.empty());
  EXPECT_FALSE(alloc.reallocate_app(9999).success);
}

// --- planner ---------------------------------------------------------------

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest()
      : pipeline_(rmt::PipelineConfig{}), runtime_(pipeline_),
        controller_(pipeline_, runtime_) {}

  void finalize_if_pending() {
    if (controller_.has_pending()) controller_.force_finalize();
  }

  rmt::Pipeline pipeline_;
  runtime::ActiveRuntime runtime_;
  controller::Controller controller_;
  telemetry::StageHeatmap heatmap_{20};
  alloc::HotnessTable hotness_;
};

TEST_F(PlannerTest, ColdElasticServiceIsDemotedThenPromotedOnRecovery) {
  const auto cache = controller_.admit(apps::cache_request());
  ASSERT_TRUE(cache.admitted);
  finalize_if_pending();

  MigrationPolicy policy;
  policy.cooldown_cycles = 1;
  MigrationPlanner planner(policy);
  RemapQueue queue(8);

  // Nothing proposed while the service has no observed traffic (an empty
  // table must not demote a service that never sent a packet).
  EXPECT_EQ(planner.plan(controller_, hotness_, queue), 0u);

  // Traffic, then silence until cold.
  for (int i = 0; i < 64; ++i) {
    heatmap_.record_read(0, static_cast<i32>(cache.fid));
  }
  for (int i = 0; i < 8; ++i) hotness_.tick(heatmap_);
  ASSERT_TRUE(hotness_.is_cold(static_cast<i32>(cache.fid)));

  ASSERT_EQ(planner.plan(controller_, hotness_, queue), 1u);
  auto request = queue.pop();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->fid, cache.fid);
  EXPECT_EQ(request->kind, RemapKind::kDemote);

  // Execute the demotion, then let the traffic recover: the planner
  // proposes the promotion once the decayed score crosses promote_score.
  const auto result = controller_.migrate(*request);
  ASSERT_TRUE(result.applied);
  if (result.pending) controller_.force_finalize();

  for (int i = 0; i < 512; ++i) {
    heatmap_.record_read(0, static_cast<i32>(cache.fid));
  }
  hotness_.tick(heatmap_);
  ASSERT_GE(hotness_.score(static_cast<i32>(cache.fid)),
            planner.policy().promote_score);
  ASSERT_EQ(planner.plan(controller_, hotness_, queue), 1u);
  request = queue.pop();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->kind, RemapKind::kPromote);
  EXPECT_EQ(planner.stats().demotions_planned, 1u);
  EXPECT_EQ(planner.stats().promotions_planned, 1u);
}

TEST_F(PlannerTest, CooldownSuppressesRePlanning) {
  const auto cache = controller_.admit(apps::cache_request());
  ASSERT_TRUE(cache.admitted);
  finalize_if_pending();
  for (int i = 0; i < 64; ++i) {
    heatmap_.record_read(0, static_cast<i32>(cache.fid));
  }
  for (int i = 0; i < 8; ++i) hotness_.tick(heatmap_);

  MigrationPolicy policy;
  policy.cooldown_cycles = 3;
  MigrationPlanner planner(policy);
  RemapQueue queue(8);
  ASSERT_EQ(planner.plan(controller_, hotness_, queue), 1u);
  queue.pop();  // drain without executing: the service stays cold
  EXPECT_EQ(planner.plan(controller_, hotness_, queue), 0u);
  EXPECT_EQ(planner.plan(controller_, hotness_, queue), 0u);
  EXPECT_EQ(planner.stats().cooldown_skips, 2u);
  // Cooldown expired: re-proposed.
  EXPECT_EQ(planner.plan(controller_, hotness_, queue), 1u);
}

TEST_F(PlannerTest, FragmentedStageYieldsReslideOfTopmostInelastic) {
  // First-fit stacks the three inelastic two-block apps into one stage;
  // releasing the middle one leaves a hole under the topmost region.
  // (Worst-fit would spread them across stages and never fragment.)
  rmt::Pipeline pipeline(rmt::PipelineConfig{});
  runtime::ActiveRuntime runtime(pipeline);
  controller::Controller ctrl(pipeline, runtime, alloc::Scheme::kFirstFit);
  const auto finalize = [&ctrl] {
    if (ctrl.has_pending()) ctrl.force_finalize();
  };
  const auto a = ctrl.admit(inelastic_two_blocks());
  finalize();
  const auto b = ctrl.admit(inelastic_two_blocks());
  finalize();
  const auto c = ctrl.admit(inelastic_two_blocks());
  finalize();
  ASSERT_TRUE(a.admitted && b.admitted && c.admitted);
  ctrl.release(b.fid);

  MigrationPolicy policy;
  policy.min_frag_blocks = 2;
  policy.frag_threshold = 1.0;  // any split free space counts
  MigrationPlanner planner(policy);
  RemapQueue queue(8);
  const u32 planned = planner.plan(ctrl, hotness_, queue);
  ASSERT_GE(planned, 1u);
  bool saw_reslide = false;
  while (auto request = queue.pop()) {
    if (request->kind != RemapKind::kReslide) continue;
    saw_reslide = true;
    EXPECT_EQ(request->fid, c.fid);  // topmost inelastic region
  }
  EXPECT_TRUE(saw_reslide);
  EXPECT_EQ(planner.stats().reslides_planned, planned);
}

TEST_F(PlannerTest, PlanningIsDeterministic) {
  std::vector<Fid> caches;
  for (int i = 0; i < 4; ++i) {
    const auto result = controller_.admit(apps::cache_request());
    ASSERT_TRUE(result.admitted);
    finalize_if_pending();
    caches.push_back(result.fid);
  }
  for (const Fid fid : caches) {
    for (int i = 0; i < 64; ++i) heatmap_.record_read(0, static_cast<i32>(fid));
  }
  for (int i = 0; i < 8; ++i) hotness_.tick(heatmap_);

  const auto drain = [&](RemapQueue& queue) {
    std::vector<std::pair<Fid, RemapKind>> out;
    while (auto request = queue.pop()) out.emplace_back(request->fid, request->kind);
    return out;
  };
  MigrationPlanner p1;
  MigrationPlanner p2;
  RemapQueue q1(16);
  RemapQueue q2(16);
  p1.plan(controller_, hotness_, q1);
  p2.plan(controller_, hotness_, q2);
  const auto first = drain(q1);
  EXPECT_EQ(first, drain(q2));
  ASSERT_EQ(first.size(), 4u);  // every cold cache, ascending FID
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].first, caches[i]);
    EXPECT_EQ(first[i].second, RemapKind::kDemote);
  }
}

// --- Controller::migrate ---------------------------------------------------

class ControllerMigrateTest : public ::testing::Test {
 protected:
  ControllerMigrateTest()
      : pipeline_(rmt::PipelineConfig{}), runtime_(pipeline_),
        controller_(pipeline_, runtime_) {}

  rmt::Pipeline pipeline_;
  runtime::ActiveRuntime runtime_;
  controller::Controller controller_;
};

TEST_F(ControllerMigrateTest, DepartedFidIsGracefulNoop) {
  const auto result = controller_.migrate({999, RemapKind::kDemote, 0, 0});
  EXPECT_FALSE(result.applied);
  EXPECT_FALSE(result.pending);
  EXPECT_TRUE(result.disturbed.empty());
  EXPECT_EQ(controller_.stats().migrations, 0u);
}

TEST_F(ControllerMigrateTest, DemoteRunsSentinelHandshake) {
  const auto cache = controller_.admit(apps::cache_request());
  ASSERT_TRUE(cache.admitted);
  if (controller_.has_pending()) controller_.force_finalize();
  const auto before = controller_.response_for(cache.fid);

  const auto result = controller_.migrate({cache.fid, RemapKind::kDemote, 0, 0});
  EXPECT_TRUE(result.applied);
  ASSERT_TRUE(result.pending);  // uncapped share shrank: handshake runs
  ASSERT_FALSE(result.disturbed.empty());
  EXPECT_TRUE(controller_.has_pending());
  EXPECT_TRUE(runtime_.is_deactivated(cache.fid));
  // A second migration while the handshake is outstanding is a usage bug.
  EXPECT_THROW(controller_.migrate({cache.fid, RemapKind::kPromote, 0, 0}),
               UsageError);

  controller_.force_finalize();
  EXPECT_FALSE(controller_.has_pending());
  EXPECT_FALSE(runtime_.is_deactivated(cache.fid));
  EXPECT_TRUE(controller_.resident(cache.fid));  // no admission rode along
  EXPECT_EQ(controller_.stats().migrations, 1u);
  EXPECT_EQ(controller_.stats().migration_demotions, 1u);

  // Table entries re-synced to the shrunken share: fewer words per stage.
  const auto after = controller_.response_for(cache.fid);
  u64 words_before = 0;
  u64 words_after = 0;
  for (u32 s = 0; s < packet::kResponseStages; ++s) {
    if (before.regions[s].allocated()) {
      words_before += before.regions[s].limit_word - before.regions[s].start_word;
    }
    if (after.regions[s].allocated()) {
      words_after += after.regions[s].limit_word - after.regions[s].start_word;
    }
  }
  EXPECT_LT(words_after, words_before);
}

TEST_F(ControllerMigrateTest, RedundantDemoteIsNoopNotHandshake) {
  const auto cache = controller_.admit(apps::cache_request());
  ASSERT_TRUE(cache.admitted);
  if (controller_.has_pending()) controller_.force_finalize();
  auto result = controller_.migrate({cache.fid, RemapKind::kDemote, 0, 0});
  if (result.pending) controller_.force_finalize();
  ASSERT_TRUE(result.applied);

  result = controller_.migrate({cache.fid, RemapKind::kDemote, 0, 0});
  EXPECT_FALSE(result.applied);
  EXPECT_FALSE(result.pending);
  EXPECT_EQ(controller_.stats().migration_noops, 1u);
  // Promote while nothing was promoted-from: applied, layout restored.
  result = controller_.migrate({cache.fid, RemapKind::kPromote, 0, 0});
  EXPECT_TRUE(result.applied);
  if (result.pending) controller_.force_finalize();
  EXPECT_EQ(controller_.stats().migration_promotions, 1u);
}

TEST_F(ControllerMigrateTest, ReslideSkipsWhenTcamHasNoHeadroom) {
  rmt::PipelineConfig tight;
  tight.tcam_entries_per_stage = 1;
  rmt::Pipeline pipeline(tight);
  runtime::ActiveRuntime runtime(pipeline);
  controller::Controller ctrl(pipeline, runtime);
  const auto cache = ctrl.admit(apps::cache_request());
  ASSERT_TRUE(cache.admitted);
  if (ctrl.has_pending()) ctrl.force_finalize();

  const auto result = ctrl.migrate({cache.fid, RemapKind::kReslide, 0, 0});
  EXPECT_FALSE(result.applied);
  EXPECT_FALSE(result.pending);
  EXPECT_EQ(ctrl.stats().migration_tcam_skips, 1u);
}

// --- end-to-end: the SwitchNode engine -------------------------------------

constexpr packet::MacAddr kSwitchMac = 0x0000aa;
constexpr packet::MacAddr kServerMac = 0x0000bb;
constexpr packet::MacAddr kClientMacBase = 0x000100;

struct Digest {
  u64 h = 1469598103934665603ull;
  void mix(u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

// The migration-parity key: every register word of every stage. Equal
// digests mean the post-migration state (extract -> reallocate ->
// repopulate, plus all surviving residents) is byte-identical.
u64 register_digest(rmt::Pipeline& pipeline) {
  Digest digest;
  for (u32 s = 0; s < pipeline.stage_count(); ++s) {
    rmt::RegisterArray& memory = pipeline.stage(s).memory();
    for (const Word w : memory.dump(0, memory.size())) digest.mix(w);
  }
  return digest.h;
}

struct MigScenarioOut {
  u64 reg_digest = 0;
  u64 reply_digest = 0;
  std::string snapshot;
  SimTime completed_at = 0;
  controller::SwitchNode::MigrationEngineStats engine;
  u64 late_hits = 0;  // tenant 0 hits after the promote window opened
  u64 bad_values = 0;  // hits whose value contradicts the seeded server
};

// Two cache tenants; tenant 1 idles mid-run (cold -> demoted) and then
// resumes (hot -> promoted), both moves disturbing tenant 0, which
// repopulates through the extraction datapath while its traffic keeps
// flowing. Drivable at any shard count, with an optional fault plan.
MigScenarioOut run_mig_scenario(u32 shards, const faults::FaultPlan* plan) {
  netsim::ShardedSimulator ssim(shards);
  netsim::Network net(ssim);
  std::unique_ptr<faults::FaultInjector> injector;
  if (plan != nullptr) {
    injector = std::make_unique<faults::FaultInjector>(*plan, shards);
    net.set_transmit_hook(injector.get());
  }

  controller::SwitchNode::Config cfg;
  cfg.costs.table_entry_update = 100 * kMicrosecond;
  cfg.costs.snapshot_per_block = 1 * kMicrosecond;
  cfg.costs.clear_per_block = 1 * kMicrosecond;
  cfg.costs.extraction_timeout = 200 * kMillisecond;
  cfg.compute_model = alloc::ComputeModel::deterministic();
  cfg.metrics = &ssim.shard_metrics(0);
  cfg.migration.enabled = true;
  cfg.migration.interval = 50 * kMillisecond;
  auto sw = std::make_shared<controller::SwitchNode>("switch", cfg);
  net.attach(sw);
  ssim.pin(*sw, 0);
  auto server = std::make_shared<apps::ServerNode>("server", kServerMac);
  net.attach(server);
  net.connect(*sw, 0, *server, 0);
  sw->bind(kServerMac, 0);

  constexpr SimTime kStop = 3 * kSecond;
  constexpr SimTime kPause = 1 * kSecond;
  constexpr SimTime kResume = 2'200 * kMillisecond;

  struct Tenant {
    std::shared_ptr<client::ClientNode> client;
    std::shared_ptr<apps::CacheService> cache;
    workload::ZipfGenerator zipf{2'000, 1.2};
    Rng rng{0};
    Digest replies;
    u64 late_hits = 0;
    u64 bad_values = 0;
    SimTime stop_time = 0;
    std::function<void()> drive;  // self-rescheduling request driver
  };
  std::vector<std::unique_ptr<Tenant>> tenants;
  for (u32 i = 0; i < 2; ++i) {
    auto t = std::make_unique<Tenant>();
    t->rng = Rng(1000 + i);
    t->client = std::make_shared<client::ClientNode>(
        "tenant" + std::to_string(i), kClientMacBase + i, kSwitchMac);
    net.attach(t->client);
    net.connect(*sw, i + 1, *t->client, 0);
    sw->bind(kClientMacBase + i, i + 1);
    t->cache = std::make_shared<apps::CacheService>(
        "cache" + std::to_string(i), kServerMac);
    t->client->register_service(t->cache);
    tenants.push_back(std::move(t));
  }

  const auto key_of = [](u32 tenant, u32 rank) {
    return (static_cast<u64>(tenant + 1) << 40) ^
           workload::ZipfGenerator::key_for_rank(rank);
  };
  for (u32 i = 0; i < 2; ++i) {
    for (u32 rank = 0; rank < tenants[i]->zipf.universe(); ++rank) {
      server->put(key_of(i, rank), rank + 1);
    }
  }

  for (u32 i = 0; i < 2; ++i) {
    Tenant& t = *tenants[i];
    t.client->on_passive = [&t](netsim::Frame& frame) {
      const auto msg = apps::KvMessage::parse(std::span<const u8>(frame).subspan(
          packet::EthernetHeader::kWireSize));
      if (msg) t.cache->handle_server_reply(*msg);
    };
    t.cache->on_result = [&t, &net, i](u32 seq, u64 key, u32 value, bool hit) {
      const SimTime now = net.simulator().now();
      if (hit) {
        // Content-preservation check: a hit must serve the seeded value
        // (rank + 1), even right after an extract -> repopulate cycle.
        const u64 base = key ^ (static_cast<u64>(i + 1) << 40);
        if (value != static_cast<u32>(base & 0xffffffff) &&
            value == 0) {
          ++t.bad_values;
        }
        if (i == 0 && now >= kResume) ++t.late_hits;
      }
      t.replies.mix(static_cast<u64>(now));
      t.replies.mix(seq);
      t.replies.mix(key);
      t.replies.mix(value);
      t.replies.mix(hit ? 1 : 0);
    };
    const auto hot_set = [&t, i, key_of] {
      const u32 k = std::min(t.cache->bucket_count(), t.zipf.universe());
      std::vector<std::pair<u64, u32>> out;
      out.reserve(k);
      for (u32 rank = k; rank-- > 0;) out.emplace_back(key_of(i, rank), rank + 1);
      return out;
    };
    t.cache->on_relocated = [&t, hot_set] { t.cache->populate(hot_set()); };

    // Self-rescheduling request driver (runs on the client's shard). The
    // tenant owns it, so the recursive capture is a plain reference --
    // no shared_ptr cycle for LeakSanitizer to flag.
    t.drive = [&t, &net, i, key_of] {
      if (net.simulator().now() >= t.stop_time) return;
      t.cache->get(key_of(i, t.zipf.next_rank(t.rng)));
      net.simulator().schedule_after(500 * kMicrosecond, [&t] { t.drive(); });
    };
    t.cache->on_ready = [&t, hot_set, i] {
      t.cache->populate(hot_set());
      t.stop_time = i == 1 ? kPause : kStop;
      t.drive();
    };
    ssim.schedule_on(*t.client, (i + 1) * 100 * kMillisecond,
                     [&t] { t.cache->request_allocation(); });
    if (i == 1) {
      ssim.schedule_on(*t.client, kResume, [&t] {
        t.stop_time = kStop;
        t.drive();
      });
    }
  }

  ssim.run_until(kStop + kSecond);

  MigScenarioOut out;
  out.reg_digest = register_digest(sw->pipeline());
  Digest combined;
  for (const auto& t : tenants) {
    combined.mix(t->replies.h);
    out.late_hits += t->late_hits;
    out.bad_values += t->bad_values;
  }
  out.reply_digest = combined.h;
  out.completed_at = ssim.now();
  out.engine = sw->migration_stats();
  telemetry::MetricsRegistry merged;
  ssim.merge_metrics_into(merged);
  std::ostringstream os;
  merged.snapshot_json(os);
  out.snapshot = os.str();
  return out;
}

TEST(MigrationE2E, ShardCountsProduceByteIdenticalState) {
  const auto one = run_mig_scenario(1, nullptr);
  ASSERT_GE(one.engine.executed, 2u);  // at least the demote and promote
  ASSERT_GE(one.engine.planner.demotions_planned, 1u);
  ASSERT_GE(one.engine.planner.promotions_planned, 1u);
  EXPECT_EQ(one.bad_values, 0u);
  EXPECT_GT(one.late_hits, 0u);  // tenant 0 kept serving post-migration

  for (const u32 shards : {2u, 4u}) {
    const auto result = run_mig_scenario(shards, nullptr);
    EXPECT_EQ(result.reg_digest, one.reg_digest) << shards << " shards";
    EXPECT_EQ(result.reply_digest, one.reply_digest) << shards << " shards";
    EXPECT_EQ(result.snapshot, one.snapshot) << shards << " shards";
    EXPECT_EQ(result.completed_at, one.completed_at) << shards << " shards";
  }
}

TEST(MigrationE2E, SurvivesFaultPlanByteIdenticallyAcrossShards) {
  const auto plan = faults::FaultPlan::uniform_loss(5, 0.02);
  const auto one = run_mig_scenario(1, &plan);
  ASSERT_GE(one.engine.executed, 1u);
  EXPECT_EQ(one.bad_values, 0u);  // loss may cost hits, never wrong values

  for (const u32 shards : {2u, 4u}) {
    const auto result = run_mig_scenario(shards, &plan);
    EXPECT_EQ(result.reg_digest, one.reg_digest) << shards << " shards";
    EXPECT_EQ(result.reply_digest, one.reply_digest) << shards << " shards";
    EXPECT_EQ(result.snapshot, one.snapshot) << shards << " shards";
  }
}

}  // namespace
}  // namespace artmt
