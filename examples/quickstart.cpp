// Quickstart: the smallest complete ActiveRMT round trip, no network.
//
//  1. stand up a modeled RMT pipeline with the shared runtime,
//  2. admit a service (memory allocation + table installation),
//  3. assemble an active program, synthesize it for the granted
//     placement, and execute a capsule through the pipeline,
//  4. observe the result the switch wrote back into the packet.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "active/assembler.hpp"
#include "client/compiler.hpp"
#include "controller/controller.hpp"

using namespace artmt;

int main() {
  // --- 1. the switch: pipeline + data-plane runtime + control plane ---
  rmt::PipelineConfig config;  // 20 stages, 94K words each, 1-KB blocks
  rmt::Pipeline pipeline(config);
  runtime::ActiveRuntime runtime(pipeline);
  controller::Controller controller(pipeline, runtime);

  // --- 2. a tiny counting service: one counter bumped per packet ---
  client::ServiceSpec spec;
  spec.program = active::assemble(R"(
      MAR_LOAD $0      // counter slot (client-translated physical address)
      MEM_INCREMENT    // bump it; the new count lands in MBR
      MBR_STORE $1     // report the count back in the packet
      RTS              // return to sender
      RETURN
  )");
  spec.demands = {1};  // one block of one stage
  spec.elastic = false;

  const auto request = client::build_request(spec);
  const auto admission = controller.admit(request);
  if (!admission.admitted) {
    std::printf("admission failed\n");
    return 1;
  }
  std::printf("admitted fid=%u; memory in stage %u\n", admission.fid,
              admission.outcome.chosen[0] % config.logical_stages);

  // --- 3. client-side synthesis: mutate + link to the granted region ---
  const auto synthesized = client::synthesize(
      spec, *controller.mutant_of(admission.fid),
      controller.response_for(admission.fid), config.logical_stages);

  // --- 4. send a few capsules and watch the counter grow ---
  for (int i = 0; i < 3; ++i) {
    packet::ArgumentHeader args;
    args.args[0] = synthesized.access_base[0];  // counter address
    auto capsule = packet::ActivePacket::make_program(admission.fid, args,
                                                      synthesized.program);
    const auto result = runtime.execute(capsule);
    std::printf("capsule %d: verdict=%s count=%u latency=%lldns\n", i,
                result.verdict == runtime::Verdict::kReturnToSender
                    ? "returned-to-sender"
                    : "other",
                capsule.arguments->args[1],
                static_cast<long long>(result.latency));
  }

  controller.release(admission.fid);
  std::printf("released; resident services: %u\n",
              controller.allocator().resident_count());
  return 0;
}
