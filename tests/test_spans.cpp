// Causal span tracing, heatmaps and the flight recorder.
//
// The determinism contract under test: a span dump's bytes are a pure
// function of the simulated scenario -- identical across the serial and
// sharded engines and across shard counts 1/2/4, fault-free AND under an
// active FaultPlan -- because span ids derive from (attach_index, tx_seq)
// and the canonical dump sorts the merged lane buffers totally. The same
// holds for the per-switch heatmap snapshot. The flight recorder must
// wrap without allocating and dump the switch's final events on a
// brownout up-edge.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "active/assembler.hpp"
#include "apps/programs.hpp"
#include "controller/switch_node.hpp"
#include "faults/injector.hpp"
#include "netsim/sharded.hpp"
#include "packet/active_packet.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/span.hpp"
#include "telemetry/span_analysis.hpp"

namespace artmt {
namespace {

using netsim::LinkSpec;
using netsim::Network;

constexpr packet::MacAddr kClientMac = 0x0c;
constexpr packet::MacAddr kServerMac = 0x0b;
constexpr u32 kWaves = 20;
constexpr SimTime kWavePeriod = 10 * kMicrosecond;

class CountSink : public netsim::Node {
 public:
  explicit CountSink(std::string name) : netsim::Node(std::move(name)) {}
  void on_frame(netsim::Frame /*frame*/, u32 /*port*/) override {
    ++received;
  }
  u64 received = 0;
};

// 25 instructions against a 20-stage pipeline: wraps into a second pass,
// so the scenario exercises kRecirc child spans.
active::Program long_walk_program() {
  std::string text = "MAR_LOAD $0\n";
  for (int i = 0; i < 23; ++i) text += "MEM_INCREMENT\n";
  text += "RETURN\n";
  return active::assemble(text);
}

std::vector<u8> make_wire(Fid fid, const packet::ArgumentHeader& args,
                          const active::Program& program) {
  auto pkt = packet::ActivePacket::make_program(fid, args, program);
  pkt.ethernet.src = kClientMac;
  pkt.ethernet.dst = kServerMac;
  pkt.payload.assign(64, 0x5a);
  return pkt.serialize();
}

std::vector<std::vector<u8>> make_wires() {
  std::vector<std::vector<u8>> wires;
  wires.push_back(make_wire(1, packet::ArgumentHeader{{10, 2, 3, 7}},
                            apps::cache_populate_program()));
  wires.push_back(make_wire(1, packet::ArgumentHeader{{12, 4, 5, 9}},
                            apps::cache_populate_program()));
  wires.push_back(make_wire(1, packet::ArgumentHeader{{10, 2, 3, 0}},
                            apps::cache_query_program()));
  // FID 2 is never installed: a no-allocation collision and a drop.
  wires.push_back(make_wire(2, packet::ArgumentHeader{{10, 2, 3, 0}},
                            apps::cache_query_program()));
  wires.push_back(
      make_wire(1, packet::ArgumentHeader{{20, 0, 0, 0}}, long_walk_program()));
  return wires;
}

struct WaveInjector {
  Network* net;
  netsim::Node* client;
  const std::vector<std::vector<u8>>* wires;
  u32 remaining;
  void operator()() {
    for (const auto& w : *wires) {
      net->transmit(*client, 0, net->pool().copy(w));
    }
    if (--remaining > 0) {
      net->simulator().schedule_after(kWavePeriod, *this);
    }
  }
};

struct SpanRun {
  std::string span_dump;    // canonical sorted JSON-lines dump
  std::string heatmap;      // the switch's heatmap snapshot
  u64 span_events = 0;
  u64 replies = 0;
};

// `shards` == 0 selects the serial engine; otherwise the sharded engine.
// `wipe_after` models a brownout up-edge once the run is quiescent.
SpanRun run_scenario(u32 shards, const faults::FaultPlan* plan,
                     bool wipe_after = false) {
  telemetry::SpanSink sink(shards > 0 ? shards : 1);
  telemetry::set_span_sink(&sink);

  std::unique_ptr<netsim::Simulator> sim;
  std::unique_ptr<netsim::ShardedSimulator> ssim;
  std::unique_ptr<Network> net_holder;
  if (shards > 0) {
    ssim = std::make_unique<netsim::ShardedSimulator>(shards);
    net_holder = std::make_unique<Network>(*ssim);
  } else {
    sim = std::make_unique<netsim::Simulator>();
    net_holder = std::make_unique<Network>(*sim);
  }
  Network& net = *net_holder;

  std::unique_ptr<faults::FaultInjector> injector;
  if (plan != nullptr) {
    injector = std::make_unique<faults::FaultInjector>(
        *plan, shards > 0 ? shards : 1);
    net.set_transmit_hook(injector.get());
  }

  controller::SwitchNode::Config cfg;
  cfg.compute_model = alloc::ComputeModel::deterministic();
  auto sw = std::make_shared<controller::SwitchNode>("sw", cfg);
  auto client = std::make_shared<CountSink>("client");
  auto server = std::make_shared<CountSink>("server");
  LinkSpec link;
  link.latency = kMicrosecond;
  net.attach(sw);
  net.attach(client);
  net.attach(server);
  net.connect(*sw, 0, *client, 0, link);
  net.connect(*sw, 1, *server, 0, link);
  sw->bind(kClientMac, 0);
  sw->bind(kServerMac, 1);
  for (u32 s = 0; s < sw->pipeline().stage_count(); ++s) {
    sw->pipeline().stage(s).install(1, 0, 4096, 0);
  }

  const std::vector<std::vector<u8>> wires = make_wires();
  WaveInjector inj{&net, client.get(), &wires, kWaves};
  if (ssim) {
    ssim->pin(*sw, 0);
    ssim->schedule_on(*client, ssim->now(), inj);
    ssim->run();
  } else {
    sim->schedule_at(0, inj);
    sim->run();
  }

  if (wipe_after) sw->wipe_registers();
  telemetry::set_span_sink(nullptr);
  SpanRun out;
  std::ostringstream dump;
  sink.dump(dump);
  out.span_dump = dump.str();
  out.span_events = sink.recorded();
  std::ostringstream heat;
  sw->heatmap().snapshot_json(heat);
  out.heatmap = heat.str();
  out.replies = client->received + server->received;
  return out;
}

TEST(SpanTrace, DumpBytesInvariantAcrossEnginesAndShards) {
  const SpanRun serial = run_scenario(0, nullptr);
  EXPECT_GT(serial.span_events, 0u);
  EXPECT_GT(serial.replies, 0u);
  // The scenario exercised execution, recirculation and collisions.
  EXPECT_NE(serial.span_dump.find("\"exec\""), std::string::npos);
  EXPECT_NE(serial.span_dump.find("\"recirc\""), std::string::npos);
  EXPECT_NE(serial.heatmap.find("\"c\""), std::string::npos);
  for (const u32 shards : {1u, 2u, 4u}) {
    const SpanRun sharded = run_scenario(shards, nullptr);
    EXPECT_EQ(serial.span_dump, sharded.span_dump) << "shards=" << shards;
    EXPECT_EQ(serial.heatmap, sharded.heatmap) << "shards=" << shards;
    EXPECT_EQ(serial.replies, sharded.replies) << "shards=" << shards;
  }
}

TEST(SpanTrace, DumpBytesInvariantUnderFaultPlan) {
  const faults::FaultPlan plan = faults::FaultPlan::uniform_loss(7, 0.05);
  const SpanRun serial = run_scenario(0, &plan);
  EXPECT_GT(serial.span_events, 0u);
  // The plan actually dropped sends, and drops carry their own phase.
  EXPECT_NE(serial.span_dump.find("\"drop\""), std::string::npos);
  for (const u32 shards : {1u, 2u, 4u}) {
    const SpanRun sharded = run_scenario(shards, &plan);
    EXPECT_EQ(serial.span_dump, sharded.span_dump) << "shards=" << shards;
    EXPECT_EQ(serial.heatmap, sharded.heatmap) << "shards=" << shards;
  }
}

TEST(SpanTrace, DumpRoundTripsThroughLoader) {
  const SpanRun run = run_scenario(1, nullptr);
  std::istringstream in(run.span_dump);
  std::vector<telemetry::SpanEvent> events;
  std::string error;
  ASSERT_TRUE(telemetry::load_span_events(in, &events, &error)) << error;
  EXPECT_EQ(events.size(), run.span_events);
  const std::vector<telemetry::SpanRequest> requests =
      telemetry::reconstruct_requests(events);
  EXPECT_GT(requests.size(), 0u);
}

TEST(Heatmap, MergeMatchesSerialRecording) {
  // Two "shards" record disjoint slices of one access stream; merging
  // them must equal recording the whole stream into one map.
  telemetry::StageHeatmap reference(4);
  telemetry::StageHeatmap a(4), b(4);
  for (u32 i = 0; i < 100; ++i) {
    const u32 stage = i % 4;
    const i32 fid = static_cast<i32>(1 + i % 3);
    telemetry::StageHeatmap& half = (i % 2 == 0) ? a : b;
    reference.record_read(stage, fid);
    half.record_read(stage, fid);
    if (i % 5 == 0) {
      reference.record_write(stage, fid);
      half.record_write(stage, fid);
    }
    if (i % 7 == 0) {
      reference.record_collision(stage, fid);
      half.record_collision(stage, fid);
    }
  }
  telemetry::StageHeatmap merged(4);
  merged.merge_from(a);
  merged.merge_from(b);
  std::ostringstream want, got;
  reference.snapshot_json(want);
  merged.snapshot_json(got);
  EXPECT_EQ(want.str(), got.str());
  EXPECT_EQ(merged.total_accesses(1), reference.total_accesses(1));
}

TEST(Heatmap, HotnessTableDecaysAndRanks) {
  telemetry::StageHeatmap heat(2);
  for (u32 i = 0; i < 10; ++i) heat.record_read(0, 1);
  for (u32 i = 0; i < 4; ++i) heat.record_read(1, 2);
  telemetry::HotnessTable hotness;
  hotness.observe(heat);
  EXPECT_EQ(hotness.score(1), 10u);
  EXPECT_EQ(hotness.score(2), 4u);
  auto ranked = hotness.ranked();
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].first, 1);
  hotness.decay();
  EXPECT_EQ(hotness.score(1), 5u);
  // A second observation absorbs only the delta since the first.
  for (u32 i = 0; i < 3; ++i) heat.record_write(1, 2);
  hotness.observe(heat);
  EXPECT_EQ(hotness.score(2), 2u + 3u);
}

TEST(FlightRecorder, WraparoundKeepsLastN) {
  telemetry::FlightRecorder recorder(4, 1);
  for (u64 i = 0; i < 10; ++i) {
    telemetry::SpanEvent event;
    event.ts = static_cast<SimTime>(i);
    event.span = i;
    recorder.record(0, event);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  const std::vector<telemetry::SpanEvent> kept = recorder.lane_events(0);
  ASSERT_EQ(kept.size(), 4u);
  for (u64 i = 0; i < 4; ++i) {
    EXPECT_EQ(kept[i].span, 6 + i);  // oldest surviving event first
  }
}

TEST(FlightRecorder, BrownoutUpEdgeDumpsFinalEvents) {
  const std::string dir = ::testing::TempDir();
  telemetry::FlightRecorder recorder(1024, 1);
  recorder.set_dump_dir(dir);
  telemetry::set_flight_recorder(&recorder);

  // Run the capsule scenario with the recorder armed: every span event
  // lands in the ring, then the brownout up-edge wipes the registers and
  // auto-dumps the buffered tail.
  run_scenario(0, nullptr, /*wipe_after=*/true);
  EXPECT_GT(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.dumps_written(), 1u);  // wipe fired exactly once

  telemetry::set_flight_recorder(nullptr);

  std::ifstream dump_file(dir + "/flight_0_brownout.json");
  ASSERT_TRUE(dump_file.is_open());
  std::vector<telemetry::SpanEvent> events;
  std::string error;
  ASSERT_TRUE(telemetry::load_span_events(dump_file, &events, &error))
      << error;
  ASSERT_FALSE(events.empty());
  // The dump ends with the wipe marker and carries the switch's final
  // pre-wipe activity.
  EXPECT_EQ(events.back().phase, telemetry::SpanPhase::kWipe);
  EXPECT_GT(events.back().a, 0u);  // the populate writes were wiped
  bool saw_exec = false;
  for (const auto& event : events) {
    if (event.phase == telemetry::SpanPhase::kExec) saw_exec = true;
  }
  EXPECT_TRUE(saw_exec);
}

}  // namespace
}  // namespace artmt
