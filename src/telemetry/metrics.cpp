#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace artmt::telemetry {

namespace detail {
std::atomic<bool> g_enabled{true};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

u64 Histogram::percentile(double p) const {
  const u64 total = count();
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const u64 rank = std::max<u64>(
      1, static_cast<u64>(std::ceil(p * static_cast<double>(total))));
  u64 cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cumulative += bucket_count(b);
    if (cumulative >= rank) {
      return std::min(bucket_upper_bound(b), max());
    }
  }
  return max();
}

void Histogram::merge_from(const Histogram& other) {
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const u64 n = other.bucket_count(b);
    if (n != 0) {
      buckets_[b].store(buckets_[b].load(std::memory_order_relaxed) + n,
                        std::memory_order_relaxed);
    }
  }
  count_.store(count_.load(std::memory_order_relaxed) + other.count(),
               std::memory_order_relaxed);
  sum_.store(sum_.load(std::memory_order_relaxed) + other.sum(),
             std::memory_order_relaxed);
  const u64 other_max = other.max();
  if (other_max > max_.load(std::memory_order_relaxed)) {
    max_.store(other_max, std::memory_order_relaxed);
  }
}

CounterFamily::CounterFamily(MetricsRegistry& registry, std::string component,
                             std::string name)
    : registry_(&registry),
      component_(std::move(component)),
      name_(std::move(name)) {}

Counter& CounterFamily::lookup(i32 fid) {
  auto it = cache_.find(fid);
  if (it == cache_.end()) {
    it = cache_.emplace(fid, &registry_->counter(component_, name_, fid))
             .first;
  }
  last_fid_ = fid;
  last_ = it->second;
  return *last_;
}

namespace {

template <typename Map, typename Make>
auto& get_or_create(Map& map, std::string_view component,
                    std::string_view name, i32 fid, Make make) {
  const auto it = map.find({std::string(component), std::string(name), fid});
  if (it != map.end()) return *it->second;
  auto [inserted, ok] = map.emplace(
      typename Map::key_type{std::string(component), std::string(name), fid},
      make());
  (void)ok;
  return *inserted->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view component,
                                  std::string_view name, i32 fid) {
  std::lock_guard<std::mutex> lock(mu_);
  return get_or_create(counters_, component, name, fid,
                       [] { return std::make_unique<Counter>(); });
}

Gauge& MetricsRegistry::gauge(std::string_view component,
                              std::string_view name, i32 fid) {
  std::lock_guard<std::mutex> lock(mu_);
  return get_or_create(gauges_, component, name, fid,
                       [] { return std::make_unique<Gauge>(); });
}

Histogram& MetricsRegistry::histogram(std::string_view component,
                                      std::string_view name, i32 fid) {
  std::lock_guard<std::mutex> lock(mu_);
  return get_or_create(histograms_, component, name, fid,
                       [] { return std::make_unique<Histogram>(); });
}

u64 MetricsRegistry::counter_value(std::string_view component,
                                   std::string_view name, i32 fid) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it =
      counters_.find({std::string(component), std::string(name), fid});
  return it == counters_.end() ? 0 : it->second->value();
}

i64 MetricsRegistry::gauge_value(std::string_view component,
                                 std::string_view name, i32 fid) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it =
      gauges_.find({std::string(component), std::string(name), fid});
  return it == gauges_.end() ? 0 : it->second->value();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view component,
                                                 std::string_view name,
                                                 i32 fid) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it =
      histograms_.find({std::string(component), std::string(name), fid});
  return it == histograms_.end() ? nullptr : it->second.get();
}

u64 MetricsRegistry::sum_counters(std::string_view component,
                                  std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 total = 0;
  for (const auto& [key, counter] : counters_) {
    if (key.component == component && key.name == name) {
      total += counter->value();
    }
  }
  return total;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  if (this == &other) {
    throw UsageError("MetricsRegistry::merge_from: self-merge");
  }
  // Copy `other`'s entries out under its lock, then apply under our own
  // (get-or-create takes it), so the two locks are never held together.
  std::vector<std::pair<Key, u64>> counters;
  std::vector<std::pair<Key, i64>> gauges;
  std::vector<std::pair<Key, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    counters.reserve(other.counters_.size());
    for (const auto& [key, counter] : other.counters_) {
      counters.emplace_back(key, counter->value());
    }
    gauges.reserve(other.gauges_.size());
    for (const auto& [key, gauge] : other.gauges_) {
      gauges.emplace_back(key, gauge->value());
    }
    histograms.reserve(other.histograms_.size());
    for (const auto& [key, hist] : other.histograms_) {
      histograms.emplace_back(key, hist.get());
    }
  }
  for (const auto& [key, value] : counters) {
    counter(key.component, key.name, key.fid).merge_add(value);
  }
  for (const auto& [key, value] : gauges) {
    gauge(key.component, key.name, key.fid).merge_add(value);
  }
  // Histogram pointers stay valid after the lock drops: handles are
  // stable for the registry's lifetime and the caller keeps `other`
  // alive across the merge.
  for (const auto& [key, hist] : histograms) {
    histogram(key.component, key.name, key.fid).merge_from(*hist);
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

namespace {

void write_key(std::ostream& out, const std::string& component,
               const std::string& name, i32 fid) {
  out << '"' << component << '.' << name;
  if (fid != kNoFid) out << "{fid=" << fid << '}';
  out << '"';
}

}  // namespace

void MetricsRegistry::snapshot_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [key, counter] : counters_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_key(out, key.component, key.name, key.fid);
    out << ": " << counter->value();
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [key, gauge] : gauges_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_key(out, key.component, key.name, key.fid);
    out << ": " << gauge->value();
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [key, hist] : histograms_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_key(out, key.component, key.name, key.fid);
    out << ": {\"count\": " << hist->count() << ", \"sum\": " << hist->sum()
        << ", \"max\": " << hist->max()
        << ", \"p50\": " << hist->percentile(0.50)
        << ", \"p90\": " << hist->percentile(0.90)
        << ", \"p99\": " << hist->percentile(0.99) << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const u64 n = hist->bucket_count(b);
      if (n == 0) continue;
      if (!first_bucket) out << ", ";
      first_bucket = false;
      out << '[' << Histogram::bucket_upper_bound(b) << ", " << n << ']';
    }
    out << "]}";
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

void snapshot_json(std::ostream& out) { registry().snapshot_json(out); }

}  // namespace artmt::telemetry
