// One stage's stateful register array with the four register-ALU actions of
// Section 3.2. On a Tofino each register has a stateful ALU whose
// micro-program is selected per packet; here each action is a method. All
// arithmetic is 32-bit wrap-around, as on the hardware.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace artmt::rmt {

class RegisterArray {
 public:
  explicit RegisterArray(u32 size);

  // Plain read/write.
  [[nodiscard]] Word read(u32 index) const;
  void write(u32 index, Word value);

  // mem[index] += inc; returns the post-increment value.
  Word increment(u32 index, Word inc);

  // Returns min(mem[index], operand) without modifying memory.
  [[nodiscard]] Word min_read(u32 index, Word operand) const;

  // mem[index] += inc; returns the post-increment value (the caller combines
  // it with the PHV min, per the MEM_MINREADINC semantics).
  Word min_read_increment(u32 index, Word inc) { return increment(index, inc); }

  [[nodiscard]] u32 size() const { return static_cast<u32>(cells_.size()); }

  // Bulk access for snapshots and controller-driven population.
  [[nodiscard]] std::vector<Word> dump(u32 start, u32 count) const;
  void load(u32 start, std::span<const Word> values);
  void fill(u32 start, u32 count, Word value);

 private:
  void check(u32 index) const;

  std::vector<Word> cells_;
};

}  // namespace artmt::rmt
