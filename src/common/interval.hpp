// Half-open block intervals and a free-list style interval set, the
// bookkeeping primitive beneath per-stage block allocation (Section 4.1:
// applications receive a contiguous set of blocks per logical stage).
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"

namespace artmt {

// [begin, end) over block indices. Empty when begin == end.
struct Interval {
  u32 begin = 0;
  u32 end = 0;

  [[nodiscard]] u32 size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin == end; }
  [[nodiscard]] bool contains(u32 index) const {
    return index >= begin && index < end;
  }
  [[nodiscard]] bool overlaps(const Interval& other) const {
    return begin < other.end && other.begin < end;
  }

  friend bool operator==(const Interval&, const Interval&) = default;
};

// Ordered set of disjoint intervals with merge-on-insert. Tracks the free
// space of one stage's block pool.
class IntervalSet {
 public:
  IntervalSet() = default;
  // Starts with a single interval [0, size).
  explicit IntervalSet(u32 size);

  // Inserts an interval, coalescing with neighbors. Throws UsageError if it
  // overlaps existing content (double free).
  void insert(const Interval& iv);

  // Removes an interval that must be fully contained in the set.
  void remove(const Interval& iv);

  // First interval of at least `size` blocks, lowest address first.
  [[nodiscard]] std::optional<Interval> find_first_fit(u32 size) const;

  // Smallest interval that still fits `size` blocks (ties: lowest address).
  [[nodiscard]] std::optional<Interval> find_best_fit(u32 size) const;

  // Largest interval (ties: lowest address); caller checks it fits.
  [[nodiscard]] std::optional<Interval> find_largest() const;

  [[nodiscard]] u32 total() const;
  [[nodiscard]] bool contains(const Interval& iv) const;
  [[nodiscard]] const std::vector<Interval>& intervals() const {
    return intervals_;
  }

 private:
  std::vector<Interval> intervals_;  // sorted by begin, disjoint, non-empty
};

}  // namespace artmt
